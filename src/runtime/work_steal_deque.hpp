#pragma once

// A Chase–Lev work-stealing deque (Chase & Lev, SPAA'05) in the
// C11-memory-model formulation of Lê, Pop, Cohen & Zappa Nardelli
// (PPoPP'13). One owner thread pushes and pops at the bottom (LIFO, for
// cache locality on freshly-spawned dependents); any number of thieves
// steal from the top (FIFO, so stolen work is the oldest — typically the
// largest remaining subgraph).
//
// Deviations from the published pseudo-code, both deliberate:
//   * every top_/bottom_ access is seq_cst instead of relying on
//     standalone fences — ThreadSanitizer does not model
//     atomic_thread_fence, and the seq_cst total order is exactly the
//     property the owner/thief race on the last element needs;
//   * retired ring buffers are kept alive until the deque dies (a thief
//     may still hold the old buffer pointer across a grow), so no
//     hazard-pointer machinery is needed.
//
// Elements must be trivially copyable: the cells are std::atomic<T> and
// a racing thief may read a cell that is about to be overwritten; the
// top_ CAS decides after the fact whose copy is authoritative.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace pipoly::rt {

template <typename T>
class WorkStealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "cells race by design; T must be trivially copyable");

public:
  explicit WorkStealDeque(std::size_t initialCapacity = 256) {
    buffers_.push_back(std::make_unique<Buffer>(initialCapacity));
    buffer_.store(buffers_.back().get(), std::memory_order_release);
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: pushes at the bottom, growing the ring if full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      grow(t, b);
      buf = buffer_.load(std::memory_order_relaxed);
    }
    buf->cell(b).store(value, std::memory_order_relaxed);
    // seq_cst (not just release) also closes the sleeper-wakeup Dekker
    // race with EventCount::notifyOne's sleeper check — see
    // event_count.hpp.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pops the most recently pushed element.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    std::optional<T> result;
    if (t <= b) {
      result = buf->cell(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via top_.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          result.reset();
        bottom_.store(b + 1, std::memory_order_seq_cst);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return result;
  }

  /// Owner only: size estimate (exact between owner operations).
  std::size_t sizeApprox() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Any thread: steals the oldest element. May spuriously fail (lost a
  /// race); callers are expected to sweep victims in a retry loop.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
      return std::nullopt;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    // Read before the CAS: after winning, the owner may reuse the cell.
    const T value = buf->cell(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;
    return value;
  }

private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::atomic<T>& cell(std::int64_t i) {
      return cells[static_cast<std::size_t>(i) & mask];
    }
    std::size_t capacity;
    std::size_t mask; // capacity is always a power of two
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  void grow(std::int64_t t, std::int64_t b) {
    Buffer* old = buffer_.load(std::memory_order_relaxed);
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      fresh->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    buffer_.store(fresh.get(), std::memory_order_release);
    buffers_.push_back(std::move(fresh));
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  // Owner only. All buffers ever used, retired ones included: thieves
  // may dereference a stale buffer pointer until the deque dies.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

} // namespace pipoly::rt
