#include "runtime/topology.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pipoly::rt {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("topology: " + what);
}

/// Even domain-major split of `workers` worker slots over `domains`
/// domains: domain d gets the d-th contiguous chunk, earlier domains one
/// slot larger when the division does not come out even.
std::vector<unsigned> evenSplit(unsigned workers, unsigned domains) {
  std::vector<unsigned> map;
  map.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    map.push_back(domains != 0
                      ? static_cast<unsigned>(
                            (static_cast<std::uint64_t>(w) * domains) /
                            std::max(1u, workers))
                      : 0);
  return map;
}

/// Minimal strict JSON reader — just enough for the topology spec
/// grammar (objects, arrays, numbers, strings), rejecting everything it
/// does not understand with a position-carrying diagnostic. Deliberately
/// not a general JSON library: the spec is tiny and the point is the
/// parse-and-reject contract.
class JsonCursor {
public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* where) {
    if (!consume(c))
      fail(std::string("expected '") + c + "' " + where + " at offset " +
           std::to_string(pos_));
  }

  std::string parseString() {
    expect('"', "before string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c == '\\')
        fail("escape sequences are not part of the topology spec grammar");
      out.push_back(c);
    }
    expect('"', "after string");
    return out;
  }

  double parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (start == pos_)
      fail("expected a number at offset " + std::to_string(start));
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(start, pos_ - start), &used);
    } catch (const std::exception&) {
      fail("malformed number at offset " + std::to_string(start));
    }
    if (used != pos_ - start)
      fail("malformed number at offset " + std::to_string(start));
    return value;
  }

  std::vector<double> parseNumberArray() {
    expect('[', "before array");
    std::vector<double> out;
    if (consume(']'))
      return out;
    do
      out.push_back(parseNumber());
    while (consume(','));
    expect(']', "after array");
    return out;
  }

  std::vector<std::vector<double>> parseNestedArray() {
    expect('[', "before nested array");
    std::vector<std::vector<double>> out;
    if (consume(']'))
      return out;
    do
      out.push_back(parseNumberArray());
    while (consume(','));
    expect(']', "after nested array");
    return out;
  }

  void expectEnd() {
    skipWs();
    if (pos_ != text_.size())
      fail("trailing garbage at offset " + std::to_string(pos_));
  }

private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Integer-valued spec fields (worker ids, cpu ids) must round-trip.
int asIndex(double v, const char* what) {
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v || i < 0)
    fail(std::string(what) + " must be a non-negative integer");
  return i;
}

} // namespace

double Topology::costClass(unsigned a, unsigned b) const {
  if (a >= classCost.size() || b >= classCost.size() ||
      b >= classCost[a].size())
    return 1.0;
  return classCost[a][b];
}

bool Topology::uniform() const {
  if (numDomains() <= 1)
    return true;
  const double first = classCost[0][0];
  for (const std::vector<double>& row : classCost)
    for (double c : row)
      if (c != first)
        return false;
  return true;
}

void Topology::validate() const {
  if (classCost.empty())
    fail("no domains (empty cost matrix)");
  for (const std::vector<double>& row : classCost) {
    if (row.size() != classCost.size())
      fail("cost matrix is not square");
    for (double c : row)
      if (!(c > 0.0) || !std::isfinite(c))
        fail("cost classes must be positive finite numbers");
  }
  if (domainOfWorker.empty())
    fail("no worker slots");
  for (unsigned d : domainOfWorker)
    if (d >= numDomains())
      fail("worker mapped to a domain outside the cost matrix");
  if (!cpusOfDomain.empty() && cpusOfDomain.size() != classCost.size())
    fail("cpu lists must cover every domain or be absent");
}

Topology Topology::resized(unsigned workers) const {
  Topology t = *this;
  t.domainOfWorker = evenSplit(std::max(1u, workers), numDomains());
  return t;
}

Topology Topology::uma(unsigned workers) {
  Topology t;
  t.name = "uma";
  t.classCost = {{1.0}};
  t.domainOfWorker.assign(std::max(1u, workers), 0);
  return t;
}

Topology Topology::numa2(unsigned workers, double remoteCost) {
  Topology t;
  t.name = "2x-numa";
  t.classCost = {{1.0, remoteCost}, {remoteCost, 1.0}};
  t.domainOfWorker = evenSplit(std::max(2u, workers), 2);
  return t;
}

Topology Topology::ring(unsigned workers, unsigned domains, double hopCost) {
  PIPOLY_CHECK_MSG(domains >= 1, "ring topology needs at least one domain");
  Topology t;
  t.name = "ring";
  t.classCost.assign(domains, std::vector<double>(domains, 1.0));
  for (unsigned a = 0; a < domains; ++a)
    for (unsigned b = 0; b < domains; ++b) {
      const unsigned forward = (b + domains - a) % domains;
      const unsigned dist = std::min(forward, domains - forward);
      t.classCost[a][b] = 1.0 + hopCost * static_cast<double>(dist);
    }
  t.domainOfWorker = evenSplit(std::max(domains, workers), domains);
  return t;
}

std::optional<Topology> Topology::preset(const std::string& name,
                                         unsigned workers) {
  if (name == "uma")
    return uma(workers);
  if (name == "2x-numa")
    return numa2(workers);
  if (name == "ring")
    return ring(workers);
  return std::nullopt;
}

Topology Topology::detectHost(unsigned workers) {
  // Linux sysfs: one directory per online NUMA node. Reading the files
  // cannot throw into the caller — any irregularity degrades to uma.
#if defined(__linux__)
  try {
    std::vector<std::vector<int>> cpus;
    std::vector<std::vector<double>> distance;
    for (unsigned node = 0; node < 256; ++node) {
      const std::string base =
          "/sys/devices/system/node/node" + std::to_string(node);
      std::ifstream cpulist(base + "/cpulist");
      if (!cpulist.good())
        break;
      std::string list;
      std::getline(cpulist, list);
      std::vector<int> ids;
      std::stringstream ss(list);
      std::string range;
      while (std::getline(ss, range, ',')) {
        const std::size_t dash = range.find('-');
        const int lo = std::stoi(range.substr(0, dash));
        const int hi = dash == std::string::npos
                           ? lo
                           : std::stoi(range.substr(dash + 1));
        for (int c = lo; c <= hi; ++c)
          ids.push_back(c);
      }
      cpus.push_back(std::move(ids));

      std::vector<double> row;
      std::ifstream dist(base + "/distance");
      if (dist.good()) {
        // sysfs distances are ACPI SLIT values, 10 = local; normalize so
        // the diagonal is class 1.0.
        double v = 0.0;
        while (dist >> v)
          row.push_back(v / 10.0);
      }
      distance.push_back(std::move(row));
    }
    if (cpus.size() > 1) {
      Topology t;
      t.name = "host";
      const auto nodes = static_cast<unsigned>(cpus.size());
      t.classCost.assign(nodes, std::vector<double>(nodes, 1.0));
      for (unsigned a = 0; a < nodes; ++a)
        for (unsigned b = 0; b < nodes; ++b)
          t.classCost[a][b] = b < distance[a].size() && distance[a][b] > 0.0
                                  ? distance[a][b]
                                  : (a == b ? 1.0 : 2.0);
      t.cpusOfDomain = std::move(cpus);
      t.domainOfWorker = evenSplit(std::max(1u, workers), nodes);
      t.validate();
      return t;
    }
  } catch (const std::exception&) {
    // fall through to uma
  }
#endif
  return uma(workers);
}

Topology Topology::fromJson(const std::string& text) {
  JsonCursor cur(text);
  cur.expect('{', "before topology object");

  Topology t;
  t.name = "spec";
  std::vector<std::vector<double>> domains;
  std::vector<std::vector<double>> cpus;
  bool sawDomains = false, sawCost = false, sawCpus = false;

  if (!cur.consume('}')) {
    do {
      const std::string key = cur.parseString();
      cur.expect(':', "after key");
      if (key == "name") {
        t.name = cur.parseString();
      } else if (key == "domains") {
        if (sawDomains)
          fail("duplicate \"domains\" key");
        domains = cur.parseNestedArray();
        sawDomains = true;
      } else if (key == "cost") {
        if (sawCost)
          fail("duplicate \"cost\" key");
        t.classCost = cur.parseNestedArray();
        sawCost = true;
      } else if (key == "cpus") {
        if (sawCpus)
          fail("duplicate \"cpus\" key");
        cpus = cur.parseNestedArray();
        sawCpus = true;
      } else {
        fail("unknown key \"" + key + "\"");
      }
    } while (cur.consume(','));
    cur.expect('}', "after topology object");
  }
  cur.expectEnd();

  if (!sawDomains || domains.empty())
    fail("spec must list at least one domain (\"domains\")");
  if (!sawCost)
    fail("spec must carry a \"cost\" matrix");

  // "domains" partitions worker ids 0..W-1: every id exactly once.
  std::size_t workerCount = 0;
  for (const std::vector<double>& d : domains)
    workerCount += d.size();
  if (workerCount == 0)
    fail("spec names no workers");
  t.domainOfWorker.assign(workerCount, 0);
  std::vector<bool> seen(workerCount, false);
  for (std::size_t d = 0; d < domains.size(); ++d)
    for (double raw : domains[d]) {
      const int w = asIndex(raw, "worker id");
      if (static_cast<std::size_t>(w) >= workerCount)
        fail("worker id " + std::to_string(w) +
             " out of range (ids must form 0..W-1)");
      if (seen[static_cast<std::size_t>(w)])
        fail("worker id " + std::to_string(w) + " listed twice");
      seen[static_cast<std::size_t>(w)] = true;
      t.domainOfWorker[static_cast<std::size_t>(w)] =
          static_cast<unsigned>(d);
    }

  if (t.classCost.size() != domains.size())
    fail("cost matrix does not match the domain count");

  if (sawCpus) {
    if (cpus.size() != domains.size())
      fail("cpu lists must cover every domain");
    for (const std::vector<double>& row : cpus) {
      std::vector<int> ids;
      ids.reserve(row.size());
      for (double raw : row)
        ids.push_back(asIndex(raw, "cpu id"));
      t.cpusOfDomain.push_back(std::move(ids));
    }
  }

  t.validate();
  return t;
}

Topology Topology::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    fail("cannot read spec file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (buf.str().empty())
    fail("spec file '" + path + "' is empty");
  Topology t = fromJson(buf.str());
  if (t.name == "spec")
    t.name = path;
  return t;
}

Topology Topology::fromSpec(const std::string& spec, unsigned workers) {
  if (spec == "host")
    return detectHost(workers);
  if (std::optional<Topology> t = preset(spec, workers))
    return *t;
  return fromFile(spec);
}

std::string Topology::toString() const {
  std::ostringstream os;
  os << name << ": " << numDomains() << " domain(s), " << numWorkers()
     << " worker slot(s), classes [";
  for (std::size_t a = 0; a < classCost.size(); ++a) {
    if (a != 0)
      os << "; ";
    for (std::size_t b = 0; b < classCost[a].size(); ++b) {
      if (b != 0)
        os << ' ';
      os << classCost[a][b];
    }
  }
  os << "]";
  return os.str();
}

} // namespace pipoly::rt
