#include "runtime/placement.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <tuple>

namespace pipoly::rt {

namespace {

/// The PR 8 DP on the stage subrange [lo, hi): partitions it into
/// `workers` contiguous non-empty ranges, lexicographic (maxLoad,
/// severed cut weight). `load` is the global task-count prefix sum and
/// `cutWeight[p]` the traffic severed by a cut between stages p-1 and p
/// — both global, so on [0, S) this is the original computation
/// unchanged (bit-identity anchor for the uma differential test).
/// Returns the `workers - 1` interior cut positions (ascending, global
/// stage indices); empty when workers == 1.
std::vector<std::size_t>
balancedCuts(const std::vector<std::uint64_t>& load,
             const std::vector<std::uint64_t>& cutWeight, std::size_t lo,
             std::size_t hi, unsigned workers) {
  const std::size_t numStages = hi - lo;
  struct Cell {
    std::uint64_t maxLoad = UINT64_MAX;
    std::uint64_t cross = UINT64_MAX;
    std::size_t prev = 0;
  };
  // dp[w][i]: stages [lo, lo + i) over w workers.
  std::vector<std::vector<Cell>> dp(workers + 1,
                                    std::vector<Cell>(numStages + 1));
  dp[0][0] = {0, 0, 0};
  for (unsigned w = 1; w <= workers; ++w)
    for (std::size_t i = w; i + (workers - w) <= numStages; ++i)
      for (std::size_t j = w - 1; j < i; ++j) {
        const Cell& base = dp[w - 1][j];
        if (base.maxLoad == UINT64_MAX)
          continue;
        Cell cand{std::max(base.maxLoad, load[lo + i] - load[lo + j]),
                  base.cross + (j != 0 ? cutWeight[lo + j] : 0), j};
        Cell& best = dp[w][i];
        if (std::tie(cand.maxLoad, cand.cross) <
            std::tie(best.maxLoad, best.cross))
          best = cand;
      }

  std::vector<std::size_t> cuts(workers - 1, 0);
  std::size_t end = numStages;
  for (unsigned w = workers; w >= 2; --w) {
    end = dp[w][end].prev;
    cuts[w - 2] = lo + end;
  }
  return cuts;
}

std::vector<std::uint64_t> taskPrefix(const std::vector<std::size_t>& tasks) {
  std::vector<std::uint64_t> load(tasks.size() + 1, 0);
  for (std::size_t s = 0; s < tasks.size(); ++s)
    load[s + 1] = load[s] + tasks[s];
  return load;
}

std::vector<std::uint64_t> cutWeights(std::size_t numStages,
                                      const std::vector<StageEdge>& edges) {
  std::vector<std::uint64_t> cutWeight(numStages + 1, 0);
  for (const StageEdge& e : edges) {
    const auto [lo, hi] = std::minmax(e.src, e.tgt);
    for (std::size_t p = lo + 1; p <= hi; ++p)
      cutWeight[p] += e.bytes;
  }
  return cutWeight;
}

/// Fills workerOfStage/domainOfStage and every diagnostic from
/// ownedStages; the scalarized objective uses `scale` precomputed by the
/// caller (totalLoad / totalBytes) so candidates compare consistently.
void finalize(Placement& p, const std::vector<std::size_t>& stageTasks,
              const std::vector<StageEdge>& edges, const Topology* topology,
              double lambda, double scale) {
  const std::size_t numStages = stageTasks.size();
  p.workerOfStage.assign(numStages, 0);
  p.domainOfStage.assign(numStages, 0);
  p.maxLoad = 0;
  for (std::size_t w = 0; w < p.ownedStages.size(); ++w) {
    std::uint64_t load = 0;
    for (const std::size_t s : p.ownedStages[w]) {
      p.workerOfStage[s] = w;
      if (topology != nullptr && w < topology->domainOfWorker.size())
        p.domainOfStage[s] = topology->domainOfWorker[w];
      load += stageTasks[s];
    }
    p.maxLoad = std::max(p.maxLoad, load);
  }
  p.crossWorkerBytes = 0;
  p.crossDomainBytes = 0;
  p.commCost = 0.0;
  for (const StageEdge& e : edges) {
    if (p.workerOfStage[e.src] == p.workerOfStage[e.tgt])
      continue;
    p.crossWorkerBytes += e.bytes;
    const unsigned da = p.domainOfStage[e.src];
    const unsigned db = p.domainOfStage[e.tgt];
    if (da != db)
      p.crossDomainBytes += e.bytes;
    const double cls = topology != nullptr ? topology->costClass(da, db) : 1.0;
    p.commCost += static_cast<double>(e.bytes) * cls;
  }
  p.objective =
      static_cast<double>(p.maxLoad) + lambda * p.commCost * scale;
}

} // namespace

Placement placeStagesBalanced(const std::vector<std::size_t>& stageTasks,
                              unsigned workers,
                              const std::vector<StageEdge>& edges) {
  Placement p;
  workers = std::max(workers, 1u);
  p.ownedStages.assign(workers, {});
  const std::size_t numStages = stageTasks.size();
  if (numStages == 0) {
    finalize(p, stageTasks, edges, nullptr, 0.0, 0.0);
    return p;
  }
  const unsigned eff = static_cast<unsigned>(
      std::min<std::size_t>(workers, numStages));
  const std::vector<std::uint64_t> load = taskPrefix(stageTasks);
  const std::vector<std::uint64_t> cutWeight = cutWeights(numStages, edges);
  const std::vector<std::size_t> cuts =
      balancedCuts(load, cutWeight, 0, numStages, eff);
  std::size_t begin = 0;
  for (unsigned w = 0; w < eff; ++w) {
    const std::size_t end = w + 1 < eff ? cuts[w] : numStages;
    for (std::size_t s = begin; s < end; ++s)
      p.ownedStages[w].push_back(s);
    begin = end;
  }
  finalize(p, stageTasks, edges, nullptr, 0.0, 0.0);
  return p;
}

Placement placeStagesTopology(const std::vector<std::size_t>& stageTasks,
                              unsigned workers,
                              const std::vector<StageEdge>& edges,
                              const Topology& topology,
                              const PlacementOptions& options) {
  workers = std::max(workers, 1u);
  const std::size_t numStages = stageTasks.size();

  // A uniform topology cannot distinguish placements by domain, so the
  // result is *defined* to be the PR 8 DP's — bit-identical, which the
  // uma differential test in channel_backend_test pins down.
  if (topology.uniform() || numStages == 0) {
    Placement p = placeStagesBalanced(stageTasks, workers, edges);
    const Topology topo = topology.numWorkers() == workers
                              ? topology
                              : topology.resized(workers);
    // Re-derive domain stats against the real topology (domains may
    // exist even when their classes are all equal).
    finalize(p, stageTasks, edges, &topo, 0.0, 0.0);
    return p;
  }

  const Topology topo = topology.numWorkers() == workers
                            ? topology
                            : topology.resized(workers);
  const unsigned numDomains = topo.numDomains();

  // Workers of each domain, ascending worker id: domain d's stage range
  // is dealt out to these in order (contiguous subranges per worker).
  std::vector<std::vector<unsigned>> workersOfDomain(numDomains);
  for (unsigned w = 0; w < workers; ++w)
    workersOfDomain[topo.domainOfWorker[w]].push_back(w);

  const std::vector<std::uint64_t> load = taskPrefix(stageTasks);
  const std::vector<std::uint64_t> cutWeight = cutWeights(numStages, edges);
  const std::uint64_t totalLoad = load[numStages];
  std::uint64_t totalBytes = 0;
  for (const StageEdge& e : edges)
    totalBytes += e.bytes;
  const double scale = static_cast<double>(totalLoad) /
                       static_cast<double>(std::max<std::uint64_t>(totalBytes,
                                                                   1));

  // Builds the full placement for one domain cut vector: domain d owns
  // stages [cut[d], cut[d+1]), split among its workers by the PR 8 DP.
  // Returns false when a stage lands in a worker-less domain.
  auto buildCandidate = [&](const std::vector<std::size_t>& cut,
                            Placement& p) -> bool {
    p.ownedStages.assign(workers, {});
    for (unsigned d = 0; d < numDomains; ++d) {
      const std::size_t lo = cut[d];
      const std::size_t hi = cut[d + 1];
      if (lo == hi)
        continue;
      const std::vector<unsigned>& ws = workersOfDomain[d];
      if (ws.empty())
        return false;
      const unsigned eff = static_cast<unsigned>(
          std::min<std::size_t>(ws.size(), hi - lo));
      const std::vector<std::size_t> cuts =
          balancedCuts(load, cutWeight, lo, hi, eff);
      std::size_t begin = lo;
      for (unsigned k = 0; k < eff; ++k) {
        const std::size_t end = k + 1 < eff ? cuts[k] : hi;
        for (std::size_t s = begin; s < end; ++s)
          p.ownedStages[ws[k]].push_back(s);
        begin = end;
      }
    }
    finalize(p, stageTasks, edges, &topo, options.lambda, scale);
    p.topologyAware = true;
    return true;
  };

  Placement best;
  bool haveBest = false;
  auto consider = [&](const std::vector<std::size_t>& cut) {
    Placement cand;
    if (!buildCandidate(cut, cand))
      return;
    if (!haveBest ||
        std::tie(cand.objective, cand.maxLoad, cand.commCost) <
            std::tie(best.objective, best.maxLoad, best.commCost)) {
      best = std::move(cand);
      haveBest = true;
    }
  };

  // Candidate count is C(S + D - 1, D - 1); stage counts are statement
  // counts (tiny), so exhaustive enumeration is the norm. The guard only
  // trips on degenerate inputs, where a single load-proportional cut
  // vector stands in.
  double combos = 1.0;
  for (unsigned d = 1; d < numDomains; ++d)
    combos *= static_cast<double>(numStages + d) / static_cast<double>(d);
  if (combos <= 200000.0) {
    // Ascending-lexicographic enumeration of interior cut positions
    // 0 <= c_1 <= ... <= c_{D-1} <= S (deterministic tie-break order).
    std::vector<std::size_t> cut(numDomains + 1, 0);
    cut[numDomains] = numStages;
    auto rec = [&](auto&& self, unsigned d) -> void {
      if (d == numDomains) {
        consider(cut);
        return;
      }
      for (std::size_t c = cut[d - 1]; c <= numStages; ++c) {
        cut[d] = c;
        self(self, d + 1);
      }
    };
    rec(rec, 1);
  }
  if (!haveBest) {
    // Fallback: cut stage space proportionally to each domain's share of
    // worker slots (worker-less domains get nothing), then let the inner
    // DP balance within domains.
    std::vector<std::size_t> cut(numDomains + 1, 0);
    std::size_t assignedWorkers = 0;
    for (unsigned d = 0; d < numDomains; ++d) {
      assignedWorkers += workersOfDomain[d].size();
      cut[d + 1] = std::max(
          cut[d], std::min<std::size_t>(
                      numStages, (numStages * assignedWorkers) / workers));
    }
    cut[numDomains] = numStages;
    // Stages past the last worker-owning domain fold into it.
    for (unsigned d = numDomains; d-- > 0;) {
      if (!workersOfDomain[d].empty())
        break;
      cut[d] = cut[d + 1] = numStages;
    }
    consider(cut);
  }
  if (!haveBest) {
    // Last resort (every domain worker-less is impossible — every worker
    // slot names a domain — but stay total): everything on worker 0.
    Placement p;
    p.ownedStages.assign(workers, {});
    for (std::size_t s = 0; s < numStages; ++s)
      p.ownedStages[0].push_back(s);
    finalize(p, stageTasks, edges, &topo, options.lambda, scale);
    p.topologyAware = true;
    return p;
  }
  return best;
}

} // namespace pipoly::rt
