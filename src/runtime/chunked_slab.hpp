#pragma once

// A grow-only slab with stable addresses and lock-free indexed reads.
//
// The thread pool's task nodes and dependency edges live here: ids are
// dense indices handed out by an atomic counter, elements are
// default-constructed in fixed-size chunks, and nothing is freed until
// the slab dies. That gives three properties the executor leans on:
//   * submit() allocates a node with one fetch_add — no per-task
//     unique_ptr/deque churn and no global lock on the hot path;
//   * a TaskId stays dereferenceable forever, so late dependencies on
//     long-finished tasks are just an indexed load;
//   * operator[] never takes a lock — the grow mutex is touched only on
//     the (rare) first allocation inside a fresh chunk.

#include "support/assert.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>

namespace pipoly::rt {

template <typename T, std::size_t ChunkSizeLog2 = 10,
          std::size_t MaxChunks = 4096>
class ChunkedSlab {
public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << ChunkSizeLog2;

  ChunkedSlab() = default;
  ChunkedSlab(const ChunkedSlab&) = delete;
  ChunkedSlab& operator=(const ChunkedSlab&) = delete;

  ~ChunkedSlab() {
    for (auto& chunk : chunks_)
      delete[] chunk.load(std::memory_order_acquire);
  }

  /// Thread-safe: reserves the next index and makes sure its chunk
  /// exists. The element is default-constructed (at chunk creation).
  std::size_t allocate() {
    const std::size_t i = count_.fetch_add(1, std::memory_order_relaxed);
    ensureChunk(i >> ChunkSizeLog2);
    return i;
  }

  /// Thread-safe for any index obtained from a completed allocate()
  /// (publication of the index carries the happens-before edge).
  T& operator[](std::size_t i) {
    T* chunk = chunks_[i >> ChunkSizeLog2].load(std::memory_order_acquire);
    PIPOLY_ASSERT(chunk != nullptr);
    return chunk[i & (kChunkSize - 1)];
  }

  /// Number of indices handed out so far.
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

private:
  void ensureChunk(std::size_t c) {
    PIPOLY_CHECK_MSG(c < MaxChunks, "ChunkedSlab capacity exhausted");
    if (chunks_[c].load(std::memory_order_acquire) != nullptr)
      return;
    std::lock_guard lock(growMutex_);
    if (chunks_[c].load(std::memory_order_relaxed) == nullptr)
      chunks_[c].store(new T[kChunkSize](), std::memory_order_release);
  }

  std::atomic<std::size_t> count_{0};
  std::mutex growMutex_;
  std::array<std::atomic<T*>, MaxChunks> chunks_{};
};

} // namespace pipoly::rt
