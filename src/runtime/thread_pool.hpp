#pragma once

// A dependency-tracking thread pool: tasks are submitted with explicit
// predecessor task ids and become runnable once all predecessors have
// finished. This is the substrate of the thread-pool tasking backend —
// the "other tasking platform" the paper's §7 anticipates plugging in
// beneath its language-agnostic CreateTask layer.
//
// Since the work-stealing rewrite the scheduler is lock-free on the hot
// path:
//
//   * Per-worker Chase–Lev deques (work_steal_deque.hpp). A task made
//     runnable by a worker goes to that worker's own deque bottom
//     (LIFO, cache-warm); idle workers steal from the top of victims'
//     deques in randomized sweep order, so the oldest — typically
//     largest — subgraphs migrate first.
//   * Tasks submitted from outside the pool land in per-worker-indexed
//     injection shards (small mutexed queues, sharded by task id), which
//     workers drain alongside their deques.
//   * Task nodes and dependency edges live in grow-only slabs
//     (chunked_slab.hpp): submit() is an atomic id reservation plus
//     per-predecessor CAS registration — no global lock, no per-task
//     unique_ptr churn, ids stay valid for the pool's lifetime.
//   * Each node carries an atomic countdown of unfinished predecessors
//     plus a +1 submission guard; finish() seals the node's dependent
//     list with a sentinel exchange, so a racing late registration
//     either enqueues onto the live list or observes "already done" —
//     never both, never blocked.
//   * Idle workers park on an event count (event_count.hpp): producers
//     pay one atomic load when nobody sleeps, instead of the old
//     broadcast over every worker on every finished task.
//
// Contracts:
//   * submit() is thread-safe against itself and against workers; in
//     particular a task body may submit follow-up tasks (nested blocks
//     in the pipeline blocking maps need this). A dependency must be an
//     id obtained from a submit() that happened-before this one —
//     anything else (self, forward, out-of-range ids) throws
//     pipoly::Error and leaves the pool usable.
//   * waitAll() returns when every task whose submission happened-before
//     the call (including tasks those tasks spawned) has finished. It
//     rethrows the first exception recorded from a task body and resets
//     it; the pool stays usable. A failed task's dependents still run —
//     errors are reported, never used to cancel the graph.
//   * The destructor drains outstanding work but swallows unreported
//     task errors (destructors must not throw).

#include "runtime/chunked_slab.hpp"
#include "runtime/event_count.hpp"
#include "runtime/work_steal_deque.hpp"
#include "support/rng.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

namespace pipoly::rt {

/// Parses a PIPOLY_POOL_WAKE_CAP-style override. Accepts only a plain
/// positive decimal integer (optional leading/trailing whitespace) that
/// fits an unsigned; anything else — null, empty, garbage, trailing
/// junk, zero, negative, out of range — yields nullopt and the caller's
/// default stands.
std::optional<unsigned> parseWakeCap(const char* text);

/// A dependency graph frozen for repeated execution. Built once (addNode
/// with predecessor ids, then freeze()), it can be run any number of
/// times through DependencyThreadPool::runGraph: each run only resets the
/// per-node atomic ready counters — no node allocation, no dependency
/// registration, no closure churn. This is the pool-level substrate of
/// the tasking::CompiledPipeline replay executor.
///
/// Streaming runs (numBatches > 1) pipeline consecutive batches
/// Pipeflow-style. Batch b+1 of node n may start once
///   * n's in-batch predecessors finished batch b+1,
///   * n itself finished batch b (the write-after-write self edge),
///   * n's direct in-batch successors finished batch b (the
///     write-after-read anti edge: n's next batch overwrites data its
///     consumers may still be reading), and
///   * every member of n's batch group — if one was declared via
///     addBatchGroup — finished batch b. Groups close the hazard the
///     edge set alone cannot see: when a node reads data that a LATER
///     node of the same stage writes (forward self-neighbourhoods like
///     A[i+1][j+1]), the value crosses the batch boundary backwards, and
///     no RAW edge exists to order the reader's batch b+1 after the
///     writer's batch b. Grouping a stage's nodes keeps the stage
///     batch-serial (it cannot lap itself), exactly matching the channel
///     backend's in-order stage semantics.
///   * every member of every group with a declared anti edge INTO n's
///     group (addGroupAntiEdge) finished batch b. This is the
///     cross-stage write-after-read constraint at stage granularity: a
///     writer stage may overwrite its arrays for batch b+1 only after
///     every stage that reads them is done with batch b. The per-node
///     anti edges (third bullet) cover only DIRECT graph consumers —
///     after transitive reduction a reader whose block edges were all
///     implied by a longer path has no direct edge left, so the writer
///     would lap it. Group anti edges carry the readership relation
///     independently of which block edges survived optimization.
/// The anti edges bound the batch skew between adjacent stages to one,
/// which is exactly what makes the two-slot (batch-parity) counter
/// scheme race-free: a node's counter slot for batch b+2 is re-armed
/// when batch b fires, and every possible decrement of that slot
/// happens-after batch b finished (see runGraph's implementation notes).
/// Group counters follow the same parity discipline: the finisher that
/// drops a group's batch-b count to zero re-arms the slot for batch b+2
/// before releasing batch b+1, and every batch-b+2 decrement
/// happens-after that release.
class ReplayGraph {
public:
  using NodeId = std::uint32_t;
  /// The node body: invoked as body(context, node, batch). The context is
  /// the pointer passed to runGraph, so one frozen graph can execute
  /// different payloads across runs.
  using Body = void (*)(void* context, NodeId node, std::size_t batch);

  /// Group id returned by addBatchGroup for an empty member list; valid
  /// ids are dense and start at 0.
  static constexpr std::uint32_t kNoGroup = UINT32_MAX;

  /// Adds a node depending on the given earlier nodes (every id must come
  /// from a previous addNode — creation order is the topological order).
  /// Must be called before freeze().
  NodeId addNode(std::span<const NodeId> deps);

  /// Declares a batch group and returns its id: in streaming runs, batch
  /// b+1 of any member may start only after every member finished batch b
  /// (the stage is batch-serial — see the class comment for why edges
  /// alone cannot express this). Nodes must already exist and each node
  /// may belong to at most one group. Singleton groups are kept — their
  /// batch-serial constraint is redundant with the self edge, but they
  /// still anchor addGroupAntiEdge constraints. An empty member list
  /// returns kNoGroup. Must be called before freeze().
  std::uint32_t addBatchGroup(std::span<const NodeId> members);

  /// Declares a cross-group anti edge: in streaming runs, batch b+1 of
  /// any member of `writerGroup` may start only after every member of
  /// `readerGroup` finished batch b (see the class comment's fifth
  /// bullet). Self edges are ignored (the batch group itself already
  /// serialises a stage); duplicates are deduplicated by freeze(). Must
  /// be called before freeze().
  void addGroupAntiEdge(std::uint32_t readerGroup, std::uint32_t writerGroup);

  /// Seals the graph: builds the flat successor/predecessor lists, the
  /// ready-count templates and the counter storage. Required before the
  /// first runGraph; addNode afterwards throws.
  void freeze();

  bool frozen() const { return frozen_; }
  std::size_t size() const { return predOffsets_.empty() ? buildPreds_.size()
                                                         : predOffsets_.size() - 1; }
  std::size_t numEdges() const { return preds_.size(); }
  std::size_t numGroups() const {
    return groupOffsets_.empty() ? 0 : groupOffsets_.size() - 1;
  }

  /// Heap footprint of the frozen structures: ready counters, CSR
  /// adjacency, and batch-group tables (for retainedBytes accounting).
  std::size_t storageBytes() const;

private:
  friend class DependencyThreadPool;

  /// Two ready counters per node (batch parity), cacheline-separated so
  /// token traffic for different nodes never false-shares.
  struct alignas(64) Counters {
    std::atomic<std::uint32_t> slot[2];
  };

  // Build-time state (cleared by freeze()).
  std::vector<std::vector<NodeId>> buildPreds_;
  std::vector<std::vector<NodeId>> buildGroups_;
  // Per reader group: the writer groups its completion releases.
  std::vector<std::vector<std::uint32_t>> buildGroupEdges_;

  // Frozen CSR adjacency + ready-count templates.
  std::vector<NodeId> preds_, succs_;
  std::vector<std::uint32_t> predOffsets_, succOffsets_;
  std::vector<std::uint32_t> indegFirst_;  // batch 0: in-batch preds only
  std::vector<std::uint32_t> indegSteady_; // batch >= 1: preds+succs+self+group
  std::vector<NodeId> roots_;              // indegFirst == 0
  std::unique_ptr<Counters[]> counters_;
  // Batch groups: CSR member lists, per-node membership, and one parity
  // counter pair per group counting that batch's unfinished members.
  std::vector<NodeId> groupMembers_;
  std::vector<std::uint32_t> groupOffsets_;
  std::vector<std::uint32_t> groupOf_;
  std::unique_ptr<Counters[]> groupCounters_;
  // Cross-group anti edges, CSR keyed by reader group: completing batch b
  // hands every member of each target (writer) group a batch-b+1 token.
  std::vector<std::uint32_t> groupEdgeTargets_;
  std::vector<std::uint32_t> groupEdgeOffsets_;
  bool frozen_ = false;
};

class DependencyThreadPool {
public:
  using TaskId = std::size_t;

  /// Spawns `numThreads` workers (at least 1).
  explicit DependencyThreadPool(unsigned numThreads);
  ~DependencyThreadPool();

  DependencyThreadPool(const DependencyThreadPool&) = delete;
  DependencyThreadPool& operator=(const DependencyThreadPool&) = delete;

  /// Submits a task that may start only after all `deps` have finished.
  /// Dependencies must be ids returned by submit() calls that
  /// happened-before this one; violations throw pipoly::Error.
  /// Thread-safe: may be called concurrently from any thread, including
  /// from inside running task bodies.
  TaskId submit(std::function<void()> fn, std::span<const TaskId> deps);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception thrown by a task body, if any.
  void waitAll();

  /// Executes a frozen ReplayGraph `numBatches` times on the pool's
  /// workers and blocks until every (node, batch) execution finished.
  /// Per run the cost is one relaxed counter store per node plus the
  /// token traffic along the edges — no submit(), no node allocation, no
  /// dependent registration. Batches are pipelined under the constraints
  /// documented on ReplayGraph. The first exception thrown by a body is
  /// rethrown after the run drains (mirroring waitAll: a failed node's
  /// dependents still execute).
  ///
  /// Contract: one graph run at a time per pool, never from inside a
  /// task body, and no interleaved submit() traffic during the run.
  void runGraph(ReplayGraph& graph, std::size_t numBatches,
                ReplayGraph::Body body, void* context);

  unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

private:
  struct DepEdge {
    TaskId dependent = 0;
    DepEdge* next = nullptr;
  };

  struct alignas(64) Node {
    std::function<void()> fn;
    // Unfinished predecessors + 1 submission guard; the task is
    // runnable when this hits 0.
    std::atomic<std::size_t> remaining{0};
    // Intrusive list of registered dependents; sealedTag() once the
    // task has finished.
    std::atomic<DepEdge*> dependents{nullptr};
  };

  struct Worker {
    explicit Worker(std::uint64_t seed) : rng(seed) {}
    WorkStealDeque<TaskId> deque;
    SplitMix64 rng; // victim-selection randomness, owner-thread only
    // Cumulative successful steals, owner-thread only; sampled into the
    // "pool.steals" trace counter when a trace session is active.
    std::uint64_t steals = 0;
  };

  struct InjectionShard {
    std::mutex mutex;
    std::deque<TaskId> queue;
    // queue.size(), republished after every mutation; lets sweepers skip
    // empty shards without taking the lock (seq_cst on both sides so the
    // parking recheck cannot miss a push — see shouldWake()).
    std::atomic<std::size_t> count{0};
  };

  /// Graph executions travel through the same deques/injection shards as
  /// ordinary tasks, distinguished by the top TaskId bit; the remaining
  /// bits encode (batch, node). Ordinary slab ids never reach the flag.
  static constexpr TaskId kGraphFlag = TaskId(1) << 63;
  static constexpr std::size_t kMaxGraphBatches = std::size_t(1) << 30;

  static TaskId encodeGraphTask(ReplayGraph::NodeId node, std::size_t batch) {
    return kGraphFlag | (static_cast<TaskId>(batch) << 32) | node;
  }

  static DepEdge* sealedTag();
  bool shouldWake(std::size_t searchingAllowance = 0) const;
  bool registerDependent(Node& pred, DepEdge& edge);
  void makeReady(TaskId id);
  void runTask(TaskId id);
  void finishTask(TaskId id);
  void runGraphTask(TaskId id);
  void sendGraphToken(ReplayGraph& graph, ReplayGraph::NodeId node,
                      std::size_t batch);
  bool tryFindWork(unsigned self, TaskId& out);
  bool tryDrainInjection(unsigned self, std::size_t shard, TaskId& out);
  void workerLoop(unsigned index);

  ChunkedSlab<Node> nodes_;
  ChunkedSlab<DepEdge> edges_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<InjectionShard>> injection_;

  std::atomic<std::size_t> pending_{0}; // submitted but not finished
  // Workers currently sweeping for work. Producers skip the wakeup when
  // a sweep is in flight: the sweeper's post-announcement recheck (see
  // workerLoop) is guaranteed to observe freshly published work, so the
  // gate only suppresses redundant futex traffic, never progress.
  std::atomic<std::size_t> searching_{0};
  // Wake throttle: producers stop waking sleepers once this many workers
  // are already awake. Defaults to hardware_concurrency (workers beyond
  // the core count only add context-switch pressure); override with the
  // PIPOLY_POOL_WAKE_CAP environment variable (clamped to numThreads).
  // Assumes task bodies run to completion without blocking on anything
  // other than their declared dependencies — waiting between tasks must
  // go through deps, which the contract already requires.
  unsigned wakeCap_ = 1;
  std::mutex doneMutex_; // waitAll() parking, cold
  std::condition_variable doneCv_;

  // Active runGraph() state. Written by the (single) runGraph caller
  // before the roots are published and read by workers only while they
  // hold a graph-flagged task, so the publication happens-before every
  // read (injection-shard mutex / deque seq_cst handoff).
  ReplayGraph* graph_ = nullptr;
  ReplayGraph::Body graphBody_ = nullptr;
  void* graphContext_ = nullptr;
  std::size_t graphBatches_ = 0;
  std::atomic<std::size_t> graphRemaining_{0};

  std::mutex errorMutex_;
  std::exception_ptr firstError_; // guarded by errorMutex_

  EventCount idle_;
  std::atomic<bool> shutdown_{false};
  std::vector<std::jthread> threads_;
};

} // namespace pipoly::rt
