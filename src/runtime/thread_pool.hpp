#pragma once

// A dependency-tracking thread pool: tasks are submitted with explicit
// predecessor task ids and become runnable once all predecessors have
// finished. This is the substrate of the thread-pool tasking backend —
// the "other tasking platform" the paper's §7 anticipates plugging in
// beneath its language-agnostic CreateTask layer.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace pipoly::rt {

class DependencyThreadPool {
public:
  using TaskId = std::size_t;

  /// Spawns `numThreads` workers (at least 1).
  explicit DependencyThreadPool(unsigned numThreads);
  ~DependencyThreadPool();

  DependencyThreadPool(const DependencyThreadPool&) = delete;
  DependencyThreadPool& operator=(const DependencyThreadPool&) = delete;

  /// Submits a task that may start only after all `deps` have finished.
  /// Dependencies must be ids returned by earlier submit() calls.
  /// Thread-safe with respect to workers, but submissions must come from
  /// a single thread.
  TaskId submit(std::function<void()> fn, std::span<const TaskId> deps);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception thrown by a task body, if any.
  void waitAll();

  unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

private:
  struct Node {
    std::function<void()> fn;
    std::size_t remaining = 0;
    bool done = false;
    std::vector<TaskId> dependents;
  };

  void workerLoop();
  void finish(TaskId id);

  std::mutex mutex_;
  std::condition_variable readyCv_;
  std::condition_variable idleCv_;
  std::deque<std::unique_ptr<Node>> nodes_;
  std::deque<TaskId> readyQueue_;
  std::size_t pending_ = 0; // submitted but not finished
  std::exception_ptr firstError_;
  bool shutdown_ = false;
  std::vector<std::jthread> workers_;
};

} // namespace pipoly::rt
