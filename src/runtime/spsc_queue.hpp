#pragma once

// Lock-free bounded single-producer/single-consumer ring buffer — the
// channel primitive of the channel tasking backend (tasking/channel_backend).
// One pipeline edge = one SpscQueue carrying block-completion tokens from
// the producer stage's worker to the consumer stage's worker.
//
// The classic two-counter design (Lamport queue with cached indices):
// monotone 64-bit head/tail, each written by exactly one side, each side
// keeping a cached copy of the other side's counter so the common case of
// tryPush/tryPop touches only one shared cache line.
//
// Capacity contract: the requested capacity is a MINIMUM — construction
// rounds it up to the next power of two so slot indexing is a mask, not
// an integer division (the `% capacity` of the exact-capacity design was
// a div on every push/pop, on the hottest channel path there is).
// capacity() and storageBytes() report the rounded (actual) values;
// callers that account ring memory (ChannelPipeline::retainedBytes) see
// what is really allocated, not what was asked for. The rounding only
// ever adds slack, so every sizing bound derived from the requested
// capacity (comm-analysis no-stall slots, batch-skew acks) still holds.
// Fixed at construction; the queue never allocates afterwards.
//
// tryPush/tryPop are wait-free. There is deliberately no blocking API:
// waiting strategies (spin, yield, cooperative stage polling) belong to
// the scheduler that owns the threads, not to the data structure.

#include "support/assert.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace pipoly::rt {

template <typename T> class SpscQueue {
public:
  explicit SpscQueue(std::size_t capacity)
      : capacity_(roundUpPow2(capacity)), mask_(capacity_ - 1) {
    PIPOLY_CHECK_MSG(capacity >= 1, "SpscQueue capacity must be >= 1");
    PIPOLY_CHECK_MSG((capacity_ & mask_) == 0,
                     "SpscQueue capacity rounding produced a non-power-of-2");
    slots_.resize(capacity_);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Actual slot count: the requested capacity rounded up to a power of
  /// two (see the capacity contract above). Never smaller than requested.
  std::size_t capacity() const { return capacity_; }

  /// Producer side. Returns false when the ring is full or closed.
  bool tryPush(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - headCache_ >= capacity_) {
      headCache_ = head_.load(std::memory_order_acquire);
      if (tail - headCache_ >= capacity_)
        return false;
    }
    if (closed_.load(std::memory_order_relaxed))
      return false;
    slots_[static_cast<std::size_t>(tail & mask_)] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side space probe: true when the next tryPush will succeed.
  /// Single-producer, so a true result cannot be invalidated by anyone
  /// but the caller (the consumer only frees slots). Lets a scheduler
  /// check for space *before* running work whose completion it could not
  /// otherwise un-publish.
  bool canPush() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - headCache_ < capacity_)
      return true;
    headCache_ = head_.load(std::memory_order_acquire);
    return tail - headCache_ < capacity_;
  }

  /// Consumer side. Empty optional when the ring is empty.
  std::optional<T> tryPop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tailCache_) {
      tailCache_ = tail_.load(std::memory_order_acquire);
      if (head == tailCache_)
        return std::nullopt;
    }
    T value = std::move(slots_[static_cast<std::size_t>(head & mask_)]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Either side may close; a closed queue rejects pushes but drains
  /// normally. Lets a cancelled producer or consumer unwind without a
  /// handshake.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Racy by nature — a monitoring/diagnostic value only.
  std::size_t sizeApprox() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail >= head ? tail - head : 0);
  }

  /// Heap footprint of the ring storage (for retainedBytes accounting).
  std::size_t storageBytes() const { return slots_.capacity() * sizeof(T); }

  /// Reset to empty. Caller must guarantee neither side is active (the
  /// channel engine resets between runs, behind a full barrier).
  void resetUnsafe() {
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    headCache_ = 0;
    tailCache_ = 0;
    closed_.store(false, std::memory_order_relaxed);
  }

private:
  // A fixed 64 rather than std::hardware_destructive_interference_size:
  // the constant is ABI-stable across translation units and every target
  // this runs on has 64-byte (or smaller) destructive interference.
  static constexpr std::size_t kCacheLine = 64;

  static constexpr std::size_t roundUpPow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v)
      p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<T> slots_;
  // Producer-owned line: tail plus the producer's cached head.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t headCache_ = 0;
  // Consumer-owned line: head plus the consumer's cached tail.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tailCache_ = 0;
  alignas(kCacheLine) std::atomic<bool> closed_{false};
};

} // namespace pipoly::rt
