#pragma once

// A small event count: the park/unpark primitive under the
// work-stealing executor's idle workers. It replaces the old scheduler's
// broadcast condition variable — which woke every worker on every
// finished task — with targeted wakeups that are a single relaxed-ish
// atomic load when nobody sleeps.
//
// Worker-side protocol (the two-phase check is what makes it
// race-free):
//
//   std::uint64_t ticket = ec.prepareWait();   // announce intent
//   if (workAppeared()) { ec.cancelWait(); ... }
//   else ec.wait(ticket);                      // sleep unless notified
//
// Producer side: publish work, then notifyOne(). The lost-wakeup
// argument needs sequential consistency between the work-publication
// store, the producer's sleeper check, and the worker's sleeper
// announcement: if notifyOne() reads sleepers_ == 0, the worker's
// seq_cst announcement is later in the total order, so the worker's
// recheck (also seq_cst — the deque indices and the injection-shard
// mutexes qualify) is guaranteed to observe the published work and
// cancel the wait. If notifyOne() reads sleepers_ > 0, it bumps the
// version under the mutex, which either flips the sleeping predicate or
// arrives before the worker blocks; the condition variable handles the
// rest. Everything slow lives behind the mutex; the hot no-sleeper path
// is one atomic load.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace pipoly::rt {

class EventCount {
public:
  /// Announces this thread as a prospective sleeper and returns the
  /// ticket to pass to wait(). Must be paired with wait() or
  /// cancelWait().
  std::uint64_t prepareWait() {
    std::lock_guard lock(mutex_);
    sleepers_.store(sleepers_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_seq_cst);
    return version_;
  }

  /// Withdraws a prepareWait() announcement (work was found on the
  /// recheck).
  void cancelWait() {
    std::lock_guard lock(mutex_);
    sleepers_.store(sleepers_.load(std::memory_order_relaxed) - 1,
                    std::memory_order_seq_cst);
  }

  /// Blocks until a notify arrives that post-dates the ticket.
  void wait(std::uint64_t ticket) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return version_ != ticket; });
    sleepers_.store(sleepers_.load(std::memory_order_relaxed) - 1,
                    std::memory_order_seq_cst);
  }

  /// How many threads are currently announced as sleepers. Advisory:
  /// the value may be stale by the time the caller acts on it, but the
  /// seq_cst load participates in the same total order as the sleeper
  /// announcements, which is what the pool's wake-throttle Dekker
  /// argument needs (see thread_pool.cpp::shouldWake).
  std::size_t sleepersApprox() const {
    return sleepers_.load(std::memory_order_seq_cst);
  }

  /// Wakes one parked worker, if any. Callers must publish the work
  /// with a seq_cst store before calling (see file comment).
  void notifyOne() {
    if (sleepers_.load(std::memory_order_seq_cst) == 0)
      return;
    {
      std::lock_guard lock(mutex_);
      ++version_;
    }
    cv_.notify_one();
  }

  /// Wakes every parked worker (shutdown).
  void notifyAll() {
    {
      std::lock_guard lock(mutex_);
      ++version_;
    }
    cv_.notify_all();
  }

private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t version_ = 0; // guarded by mutex_
  // Written under mutex_, peeked lock-free by notifyOne().
  std::atomic<std::size_t> sleepers_{0};
};

} // namespace pipoly::rt
