#pragma once

// Hardware-topology model for stage placement (the ROADMAP's
// "NUMA/distributed channel scenarios" item): workers live in *domains*
// (sockets / NUMA nodes / ring segments) and every domain pair carries a
// relative *cost class* — the per-byte price of moving channel traffic
// between them, normalized so 1.0 is a domain-local transfer. The
// channel backend's partitioner (rt/placement.hpp), the simulator's
// channel cost model and the optimizer's placement objective all consume
// the same Topology, so predicted and measured placements agree by
// construction.
//
// Three sources, in the order a deployment typically reaches for them:
//   * synthetic presets (`uma`, `2x-numa`, `ring`) — reproducible
//     topologies for CI and for the E22 placement ablation; `2x-numa` is
//     the gatekeeping shape (two domains, penalized cross-domain class),
//   * a JSON spec file (`Topology::fromFile`) — pin down a real machine's
//     shape once and replay it in tests, strict parse-and-reject on
//     malformed input (pipolyc turns the failure into an exit-2
//     diagnostic),
//   * OS detection (`Topology::detectHost`) — Linux sysfs NUMA nodes
//     (node*/cpulist + node*/distance) where available, falling back to
//     a single uma domain everywhere else.
//
// A Topology is a pure description: it never allocates threads or touches
// affinity itself. The channel engine optionally pins its workers to
// their domain's cpu list when one was detected/specified.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pipoly::rt {

struct Topology {
  /// Diagnostic label ("uma", "2x-numa", "ring", a file name, "host").
  std::string name = "uma";

  /// Worker slot -> domain index. The partitioner places stages onto
  /// worker slots; slot w of the channel engine is pinned/charged as
  /// domain domainOfWorker[w]. Must be non-empty and name every domain
  /// in [0, numDomains()).
  std::vector<unsigned> domainOfWorker;

  /// classCost[a][b]: relative per-byte cost of an a -> b transfer.
  /// Square, symmetric in every preset (not enforced — a spec may model
  /// asymmetric links), diagonal expected to be the cheapest class.
  std::vector<std::vector<double>> classCost;

  /// Optional OS cpu ids per domain (from detection or the JSON spec),
  /// used by the channel engine for per-domain worker pinning. Empty
  /// when the topology is synthetic.
  std::vector<std::vector<int>> cpusOfDomain;

  unsigned numDomains() const {
    return static_cast<unsigned>(classCost.size());
  }
  unsigned numWorkers() const {
    return static_cast<unsigned>(domainOfWorker.size());
  }

  /// The cost class of a domain pair (1.0 on out-of-range input so a
  /// defaulted Topology behaves like uma).
  double costClass(unsigned a, unsigned b) const;

  /// True when placement cannot distinguish domains: a single domain, or
  /// every class (including the diagonal) equal — the partitioner then
  /// reproduces the topology-agnostic PR 8 DP bit for bit.
  bool uniform() const;

  /// Throws std::runtime_error with a one-line diagnostic when the model
  /// is inconsistent (empty, non-square cost matrix, worker naming a
  /// missing domain, non-positive class cost).
  void validate() const;

  /// Same domains/classes re-spread over `workers` worker slots
  /// (domain-major, even split). Lets one spec serve any engine size.
  Topology resized(unsigned workers) const;

  /// Single domain, every transfer class 1.0.
  static Topology uma(unsigned workers);

  /// Two domains (sockets), workers split evenly domain-major, remote
  /// class `remoteCost`. The synthetic gate topology of bench_channel
  /// --numa.
  static Topology numa2(unsigned workers, double remoteCost = 4.0);

  /// `domains` ring segments, workers split evenly; the class of a pair
  /// grows linearly with ring hop distance: 1 + hopCost * distance.
  static Topology ring(unsigned workers, unsigned domains = 4,
                       double hopCost = 1.0);

  /// Parses a preset name ("uma" | "2x-numa" | "ring") for `workers`
  /// worker slots. Empty optional on an unknown name.
  static std::optional<Topology> preset(const std::string& name,
                                        unsigned workers);

  /// Detects the host topology from Linux sysfs NUMA nodes; single-domain
  /// uma fallback when unavailable. Never throws.
  static Topology detectHost(unsigned workers);

  /// Strict JSON spec parser. Accepts exactly
  ///   {"name": str?, "domains": [[workerId...]...],
  ///    "cost": [[num...]...], "cpus": [[cpuId...]...]?}
  /// where "domains" partitions worker ids 0..W-1 and "cost" is square
  /// over the domain count. Throws std::runtime_error with a parse
  /// diagnostic on anything else (trailing garbage, unknown keys,
  /// non-positive costs, duplicate/missing workers).
  static Topology fromJson(const std::string& text);

  /// fromJson over a file's contents; throws when the file is unreadable.
  static Topology fromFile(const std::string& path);

  /// Resolves a --topology=SPEC argument: a preset name first, then a
  /// file path. Throws std::runtime_error with a diagnostic when neither.
  static Topology fromSpec(const std::string& spec, unsigned workers);

  std::string toString() const;
};

} // namespace pipoly::rt
