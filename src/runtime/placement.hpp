#pragma once

// Stage placement for the channel execution route: partition the
// pipeline's stages (statement order = pipeline order, data flows
// forward) into contiguous per-worker ranges.
//
// Two partitioners share this header:
//
//   * placeStagesBalanced — the topology-agnostic PR 8 DP, kept bit for
//     bit: primary objective is load balance (max per-worker task
//     count), secondary the channel bytes severed by the chosen cuts,
//     lexicographically. Every core pair is implicitly equidistant.
//
//   * placeStagesTopology — the NUMA-weighted partitioner: workers live
//     in rt::Topology domains, and the objective trades load balance
//     against the *class-weighted* bytes the placement moves across
//     workers:
//
//         minimize  maxWorkerLoad + lambda * commCost * scale
//         commCost  = sum over cross-worker edges of
//                     bytes * classCost(domain(src), domain(tgt))
//         scale     = totalLoad / totalEdgeBytes   (dimensionless lambda)
//
//     Domain ranges are contiguous in stage space (workers dealt out
//     domain-major), chosen by exhaustive enumeration of the domain cut
//     vector — stage counts are statement counts, tiny — with the PR 8
//     DP splitting each domain's range among its own workers. On a
//     uniform topology (single domain, or all classes equal) the result
//     is defined to be placeStagesBalanced's, bit-identical, so uma
//     placements never drift from the PR 8 baseline.
//
// lambda is the knob the E22 ablation sweeps: 0 recovers pure load
// balance (topology only reorders tie-breaks), large values accept
// imbalance to keep heavy edges domain-local.

#include "runtime/topology.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pipoly::rt {

/// One weighted stage-graph edge: producer stage `src` feeds consumer
/// stage `tgt` with `bytes` of channel traffic per streamed batch (1 when
/// no communication analysis sized the edge — edge counting).
struct StageEdge {
  std::size_t src = 0;
  std::size_t tgt = 0;
  std::uint64_t bytes = 1;
};

struct PlacementOptions {
  /// Load-vs-bytes exchange rate of the scalarized objective (see file
  /// comment); dimensionless thanks to the totalLoad/totalBytes scale.
  double lambda = 1.0;
};

struct Placement {
  /// Per worker, the owned stages (each a contiguous ascending range;
  /// possibly empty on the topology route when a domain is starved).
  std::vector<std::vector<std::size_t>> ownedStages;
  /// Per stage: owning worker and that worker's domain.
  std::vector<std::size_t> workerOfStage;
  std::vector<unsigned> domainOfStage;

  /// Diagnostics of the chosen partition.
  std::uint64_t maxLoad = 0;          // max per-worker task count
  std::uint64_t crossWorkerBytes = 0; // bytes on edges spanning workers
  std::uint64_t crossDomainBytes = 0; // subset spanning domains
  double commCost = 0.0;   // class-weighted cross-worker bytes
  double objective = 0.0;  // scalarized objective of the winner
  bool topologyAware = false;

  double costClassOf(std::size_t srcStage, std::size_t tgtStage,
                     const Topology& topology) const {
    return topology.costClass(domainOfStage[srcStage],
                              domainOfStage[tgtStage]);
  }
};

/// The PR 8 comm-weighted contiguous DP (topology-agnostic): stages
/// 0..S-1 over min(workers, stage count) non-empty contiguous ranges,
/// lexicographic (maxLoad, severed bytes). Workers past the stage count
/// own nothing (their ownedStages entry is empty); workers == 0 is
/// treated as 1.
Placement placeStagesBalanced(const std::vector<std::size_t>& stageTasks,
                              unsigned workers,
                              const std::vector<StageEdge>& edges);

/// The topology-weighted partitioner (see file comment). `workers` is
/// clamped to the stage count by the caller (channel engine) exactly as
/// on the balanced route; the topology is re-spread over that worker
/// count when its slot count differs.
Placement placeStagesTopology(const std::vector<std::size_t>& stageTasks,
                              unsigned workers,
                              const std::vector<StageEdge>& edges,
                              const Topology& topology,
                              const PlacementOptions& options = {});

} // namespace pipoly::rt
