#include "runtime/thread_pool.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <utility>

namespace pipoly::rt {

DependencyThreadPool::DependencyThreadPool(unsigned numThreads) {
  numThreads = std::max(1u, numThreads);
  workers_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

DependencyThreadPool::~DependencyThreadPool() {
  waitAll();
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  readyCv_.notify_all();
  // jthread joins on destruction.
}

DependencyThreadPool::TaskId
DependencyThreadPool::submit(std::function<void()> fn,
                             std::span<const TaskId> deps) {
  std::unique_lock lock(mutex_);
  const TaskId id = nodes_.size();
  auto node = std::make_unique<Node>();
  node->fn = std::move(fn);
  for (TaskId dep : deps) {
    PIPOLY_CHECK_MSG(dep < id, "dependency on a not-yet-submitted task");
    if (!nodes_[dep]->done) {
      nodes_[dep]->dependents.push_back(id);
      ++node->remaining;
    }
  }
  const bool ready = node->remaining == 0;
  nodes_.push_back(std::move(node));
  ++pending_;
  if (ready) {
    readyQueue_.push_back(id);
    lock.unlock();
    readyCv_.notify_one();
  }
  return id;
}

void DependencyThreadPool::workerLoop() {
  std::unique_lock lock(mutex_);
  while (true) {
    readyCv_.wait(lock, [this] { return shutdown_ || !readyQueue_.empty(); });
    if (shutdown_ && readyQueue_.empty())
      return;
    const TaskId id = readyQueue_.front();
    readyQueue_.pop_front();
    // Run the body without holding the lock. A throwing body must not
    // wedge the pool: record the first error and keep draining.
    std::function<void()> fn = std::move(nodes_[id]->fn);
    lock.unlock();
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !firstError_)
      firstError_ = error;
    finish(id);
  }
}

void DependencyThreadPool::finish(TaskId id) {
  // Called with mutex_ held.
  Node& node = *nodes_[id];
  node.done = true;
  bool anyReady = false;
  for (TaskId dep : node.dependents) {
    Node& d = *nodes_[dep];
    PIPOLY_ASSERT(d.remaining > 0);
    if (--d.remaining == 0) {
      readyQueue_.push_back(dep);
      anyReady = true;
    }
  }
  node.dependents.clear();
  --pending_;
  if (anyReady)
    readyCv_.notify_all();
  if (pending_ == 0)
    idleCv_.notify_all();
}

void DependencyThreadPool::waitAll() {
  std::unique_lock lock(mutex_);
  idleCv_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

} // namespace pipoly::rt
