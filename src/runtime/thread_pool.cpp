#include "runtime/thread_pool.hpp"

#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace pipoly::rt {

namespace {

/// Identifies the worker the current thread belongs to, if any, so
/// makeReady() can push to the thread's own deque instead of the
/// injection shards. Set once per worker thread; a pool's threads are
/// joined before the pool dies, so a binding never outlives its pool.
struct TlsBinding {
  DependencyThreadPool* pool = nullptr;
  unsigned index = 0;
};
thread_local TlsBinding tlsBinding;

} // namespace

std::optional<unsigned> parseWakeCap(const char* text) {
  if (text == nullptr)
    return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*text)))
    ++text;
  // strtoul silently accepts a leading minus (wrapping the value), so
  // reject anything that does not start with a digit outright.
  if (!std::isdigit(static_cast<unsigned char>(*text)))
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (errno == ERANGE || end == text)
    return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*end)))
    ++end;
  if (*end != '\0') // trailing garbage ("4cores", "2 4", ...)
    return std::nullopt;
  if (v == 0 || v > UINT_MAX)
    return std::nullopt;
  return static_cast<unsigned>(v);
}

ReplayGraph::NodeId ReplayGraph::addNode(std::span<const NodeId> deps) {
  PIPOLY_CHECK_MSG(!frozen_, "ReplayGraph::addNode after freeze()");
  const auto id = static_cast<NodeId>(buildPreds_.size());
  PIPOLY_CHECK_MSG(buildPreds_.size() < UINT32_MAX, "ReplayGraph too large");
  for (NodeId dep : deps)
    PIPOLY_CHECK_MSG(dep < id,
                     "ReplayGraph dependency on a not-yet-added node");
  buildPreds_.emplace_back(deps.begin(), deps.end());
  return id;
}

std::uint32_t ReplayGraph::addBatchGroup(std::span<const NodeId> members) {
  PIPOLY_CHECK_MSG(!frozen_, "ReplayGraph::addBatchGroup after freeze()");
  if (members.empty())
    return kNoGroup;
  for (NodeId m : members)
    PIPOLY_CHECK_MSG(m < buildPreds_.size(),
                     "ReplayGraph batch group names a not-yet-added node");
  buildGroups_.emplace_back(members.begin(), members.end());
  buildGroupEdges_.emplace_back();
  return static_cast<std::uint32_t>(buildGroups_.size() - 1);
}

void ReplayGraph::addGroupAntiEdge(std::uint32_t readerGroup,
                                   std::uint32_t writerGroup) {
  PIPOLY_CHECK_MSG(!frozen_, "ReplayGraph::addGroupAntiEdge after freeze()");
  PIPOLY_CHECK_MSG(readerGroup < buildGroups_.size() &&
                       writerGroup < buildGroups_.size(),
                   "ReplayGraph anti edge names an unknown group");
  if (readerGroup == writerGroup)
    return; // the group itself already serialises a stage's batches
  buildGroupEdges_[readerGroup].push_back(writerGroup);
}

void ReplayGraph::freeze() {
  PIPOLY_CHECK_MSG(!frozen_, "ReplayGraph::freeze called twice");
  const std::size_t n = buildPreds_.size();
  predOffsets_.reserve(n + 1);
  predOffsets_.push_back(0);
  std::vector<std::uint32_t> succCount(n, 0);
  for (const std::vector<NodeId>& deps : buildPreds_) {
    for (NodeId dep : deps) {
      preds_.push_back(dep);
      ++succCount[dep];
    }
    predOffsets_.push_back(static_cast<std::uint32_t>(preds_.size()));
  }
  succOffsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    succOffsets_[i + 1] = succOffsets_[i] + succCount[i];
  succs_.resize(preds_.size());
  std::vector<std::uint32_t> cursor(succOffsets_.begin(),
                                    succOffsets_.begin() +
                                        static_cast<std::ptrdiff_t>(n));
  for (std::size_t v = 0; v < n; ++v)
    for (std::uint32_t k = predOffsets_[v]; k < predOffsets_[v + 1]; ++k)
      succs_[cursor[preds_[k]]++] = static_cast<NodeId>(v);

  indegFirst_.resize(n);
  indegSteady_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t nPreds = predOffsets_[v + 1] - predOffsets_[v];
    const std::uint32_t nSuccs = succOffsets_[v + 1] - succOffsets_[v];
    indegFirst_[v] = nPreds;
    // Later batches additionally wait for the node's own previous batch
    // (+1) and for each direct consumer's previous batch (anti edges).
    indegSteady_[v] = nPreds + nSuccs + 1;
    if (nPreds == 0)
      roots_.push_back(static_cast<NodeId>(v));
  }
  counters_ = std::make_unique<Counters[]>(n);

  // Batch groups: membership map, CSR member lists, one parity counter
  // pair per group, and +1 steady-state token per member (the group
  // release for the previous batch).
  groupOf_.assign(n, kNoGroup);
  groupOffsets_.push_back(0);
  for (std::size_t g = 0; g < buildGroups_.size(); ++g) {
    for (NodeId m : buildGroups_[g]) {
      PIPOLY_CHECK_MSG(groupOf_[m] == kNoGroup,
                       "ReplayGraph node in two batch groups");
      groupOf_[m] = static_cast<std::uint32_t>(g);
      groupMembers_.push_back(m);
      ++indegSteady_[m];
    }
    groupOffsets_.push_back(static_cast<std::uint32_t>(groupMembers_.size()));
  }
  if (!buildGroups_.empty())
    groupCounters_ = std::make_unique<Counters[]>(buildGroups_.size());

  // Cross-group anti edges: CSR by reader group, and one extra
  // steady-state token per incoming edge for every member of the writer
  // group (the reader stage's batch-b release of the writer's batch b+1).
  groupEdgeOffsets_.push_back(0);
  for (std::vector<std::uint32_t>& targets : buildGroupEdges_) {
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (std::uint32_t w : targets) {
      groupEdgeTargets_.push_back(w);
      for (std::uint32_t k = groupOffsets_[w]; k < groupOffsets_[w + 1]; ++k)
        ++indegSteady_[groupMembers_[k]];
    }
    groupEdgeOffsets_.push_back(
        static_cast<std::uint32_t>(groupEdgeTargets_.size()));
  }

  buildPreds_.clear();
  buildPreds_.shrink_to_fit();
  buildGroups_.clear();
  buildGroups_.shrink_to_fit();
  buildGroupEdges_.clear();
  buildGroupEdges_.shrink_to_fit();
  frozen_ = true;
}

std::size_t ReplayGraph::storageBytes() const {
  const std::size_t n = size();
  std::size_t bytes = n * sizeof(Counters) + numGroups() * sizeof(Counters);
  bytes += (preds_.capacity() + succs_.capacity() + roots_.capacity() +
            groupMembers_.capacity()) *
           sizeof(NodeId);
  bytes += (predOffsets_.capacity() + succOffsets_.capacity() +
            indegFirst_.capacity() + indegSteady_.capacity() +
            groupOffsets_.capacity() + groupOf_.capacity() +
            groupEdgeTargets_.capacity() + groupEdgeOffsets_.capacity()) *
           sizeof(std::uint32_t);
  return bytes;
}

DependencyThreadPool::DepEdge* DependencyThreadPool::sealedTag() {
  // Distinct, never-dereferenced sentinel marking a finished task's
  // dependent list.
  static DepEdge sealed;
  return &sealed;
}

DependencyThreadPool::DependencyThreadPool(unsigned numThreads) {
  numThreads = std::max(1u, numThreads);
  // Wake throttle (see shouldWake). Oversubscribed pools keep their
  // extra workers parked instead of timesharing one core.
  const unsigned hw = std::thread::hardware_concurrency();
  wakeCap_ = std::min(numThreads, hw != 0 ? hw : numThreads);
  if (std::optional<unsigned> cap =
          parseWakeCap(std::getenv("PIPOLY_POOL_WAKE_CAP")))
    wakeCap_ = std::min(numThreads, *cap);
  workers_.reserve(numThreads);
  injection_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i) {
    workers_.push_back(std::make_unique<Worker>(0x9e3779b9u + i));
    injection_.push_back(std::make_unique<InjectionShard>());
  }
  threads_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i)
    threads_.emplace_back([this, i] { workerLoop(i); });
}

DependencyThreadPool::~DependencyThreadPool() {
  // Drain, but swallow unreported task errors: a destructor must not
  // throw (the old scheduler rethrew here and would have terminated).
  {
    std::unique_lock lock(doneMutex_);
    doneCv_.wait(lock,
                 [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  shutdown_.store(true, std::memory_order_release);
  idle_.notifyAll();
  // jthread joins on destruction.
}

DependencyThreadPool::TaskId
DependencyThreadPool::submit(std::function<void()> fn,
                             std::span<const TaskId> deps) {
  // Validate against the published id horizon *before* reserving a node,
  // so a rejected submit leaves no half-armed task behind. Any id >= the
  // current count cannot come from a submit() that happened-before this
  // one: it is a self-, forward- or out-of-range dependency.
  const std::size_t horizon = nodes_.size();
  for (TaskId dep : deps)
    PIPOLY_CHECK_MSG(dep < horizon,
                     "dependency on a not-yet-submitted task (self-, forward- "
                     "or out-of-range id)");

  const TaskId id = nodes_.allocate();
  Node& node = nodes_[id];
  node.fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);

  if (deps.empty()) {
    // Independent task: no registration window to guard, ready now.
    node.remaining.store(0, std::memory_order_relaxed);
    makeReady(id);
    return id;
  }

  // +1 guard: the task cannot fire while registration is in progress,
  // even if every predecessor finishes concurrently.
  node.remaining.store(deps.size() + 1, std::memory_order_relaxed);

  std::size_t alreadyDone = 1; // the guard
  for (TaskId dep : deps) {
    DepEdge& edge = edges_[edges_.allocate()];
    edge.dependent = id;
    if (!registerDependent(nodes_[dep], edge))
      ++alreadyDone; // predecessor already finished
  }
  if (node.remaining.fetch_sub(alreadyDone, std::memory_order_acq_rel) ==
      alreadyDone)
    makeReady(id);
  return id;
}

bool DependencyThreadPool::registerDependent(Node& pred, DepEdge& edge) {
  DepEdge* head = pred.dependents.load(std::memory_order_acquire);
  while (true) {
    if (head == sealedTag())
      return false;
    edge.next = head;
    if (pred.dependents.compare_exchange_weak(head, &edge,
                                              std::memory_order_release,
                                              std::memory_order_acquire))
      return true;
  }
}

bool DependencyThreadPool::shouldWake(std::size_t searchingAllowance) const {
  // Skip the wakeup when a sweep (beyond the caller's own) is already in
  // flight — the sweeper's post-announcement recheck observes any work
  // published before this load (both are seq_cst) — or when enough
  // workers are already awake that another one would only contend for
  // cores. The awake estimate may be stale, but staleness is one-sided
  // safe: a worker counts as awake until its prepareWait() announcement
  // (seq_cst sleepers_ bump) — and after announcing it rechecks for
  // work, so any publication this thread made before reading the stale
  // count is observed by that recheck. Lost wakeups are impossible;
  // only redundant ones are suppressed.
  if (searching_.load(std::memory_order_seq_cst) > searchingAllowance)
    return false;
  const std::size_t asleep =
      std::min(idle_.sleepersApprox(), workers_.size());
  return workers_.size() - asleep < wakeCap_;
}

void DependencyThreadPool::makeReady(TaskId id) {
  if (tlsBinding.pool == this) {
    // On a worker thread of this pool: push to its own deque (only the
    // owner may push). Thieves pick it up if this worker stays busy.
    Worker& me = *workers_[tlsBinding.index];
    const bool hadBacklog = me.deque.sizeApprox() > 0;
    me.deque.push(id);
    // An empty deque means this worker will pop the task itself as soon
    // as it returns to its loop — waking a sibling for it would only
    // burn a futex. With backlog there is real parallel slack, so wake
    // a thief if the throttle allows one.
    if (hadBacklog && shouldWake())
      idle_.notifyOne();
  } else {
    {
      InjectionShard& shard = *injection_[id % injection_.size()];
      std::lock_guard lock(shard.mutex);
      shard.queue.push_back(id);
      shard.count.store(shard.queue.size(), std::memory_order_seq_cst);
    }
    if (shouldWake())
      idle_.notifyOne();
  }
}

void DependencyThreadPool::runTask(TaskId id) {
  if (id & kGraphFlag) {
    runGraphTask(id);
    return;
  }
  Node& node = nodes_[id];
  // Release the closure eagerly: nodes live for the pool's lifetime,
  // captured state should not.
  std::function<void()> fn = std::move(node.fn);
  node.fn = nullptr;
  try {
    fn();
  } catch (...) {
    std::lock_guard lock(errorMutex_);
    if (!firstError_)
      firstError_ = std::current_exception();
  }
  finishTask(id);
}

void DependencyThreadPool::finishTask(TaskId id) {
  Node& node = nodes_[id];
  // Seal the dependent list: registrations racing with this exchange
  // either made it onto the list (we publish them below) or observe the
  // sentinel and count the dependency as satisfied.
  DepEdge* head = node.dependents.exchange(sealedTag(),
                                           std::memory_order_acq_rel);
  for (DepEdge* e = head; e != nullptr; e = e->next)
    if (nodes_[e->dependent].remaining.fetch_sub(
            1, std::memory_order_acq_rel) == 1)
      makeReady(e->dependent);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Empty critical section pairs with waitAll()'s predicate check so
    // the notify cannot slip between its pending_ load and its sleep.
    std::lock_guard lock(doneMutex_);
    doneCv_.notify_all();
  }
}

void DependencyThreadPool::sendGraphToken(ReplayGraph& graph,
                                          ReplayGraph::NodeId node,
                                          std::size_t batch) {
  std::atomic<std::uint32_t>& counter = graph.counters_[node].slot[batch & 1];
  if (counter.fetch_sub(1, std::memory_order_acq_rel) == 1)
    makeReady(encodeGraphTask(node, batch));
}

void DependencyThreadPool::runGraphTask(TaskId id) {
  const auto node = static_cast<ReplayGraph::NodeId>(id & 0xffffffffu);
  const std::size_t batch = (id & ~kGraphFlag) >> 32;
  ReplayGraph& graph = *graph_;

  // Re-arm this node's parity slot for batch + 2 before the body runs:
  // every decrement of that slot happens-after this execution finished
  // (the earliest candidates — our own batch+1 self token, a consumer's
  // batch+1 anti token, a producer's batch+2 pred token — all sit behind
  // the self token this execution emits below), so the relaxed store
  // cannot race a token.
  if (batch + 2 < graphBatches_)
    graph.counters_[node].slot[batch & 1].store(graph.indegSteady_[node],
                                                std::memory_order_relaxed);

  try {
    graphBody_(graphContext_, node, batch);
  } catch (...) {
    std::lock_guard lock(errorMutex_);
    if (!firstError_)
      firstError_ = std::current_exception();
  }

  // Token emission (see ReplayGraph's constraint list). A failed body
  // still releases its dependents — errors are reported, never used to
  // cancel the stream.
  for (std::uint32_t k = graph.succOffsets_[node];
       k < graph.succOffsets_[node + 1]; ++k)
    sendGraphToken(graph, graph.succs_[k], batch);
  if (batch + 1 < graphBatches_) {
    sendGraphToken(graph, node, batch + 1); // self (write-after-write)
    for (std::uint32_t k = graph.predOffsets_[node];
         k < graph.predOffsets_[node + 1]; ++k)
      sendGraphToken(graph, graph.preds_[k], batch + 1); // anti
  }

  // Batch-group completion: the member that drops the group's batch-b
  // count to zero re-arms the parity slot for batch b+2 (every b+2
  // decrement happens-after the b+1 release below — a member must
  // receive that release before it can start, let alone finish, b+2),
  // then hands each member its batch-b+1 group token and releases batch
  // b+1 of every writer group this group holds an anti edge to. The
  // writer members' parity slots for b+1 were re-armed when they started
  // batch b-1, which happens-before this release: the writer group's own
  // batch-serial constraint orders all its members' batch b-1 before any
  // member's batch b, and this reader stage's batch b sits behind the
  // writer's batch b along at least one surviving RAW path.
  const std::uint32_t g = graph.groupOf_[node];
  if (g != ReplayGraph::kNoGroup) {
    std::atomic<std::uint32_t>& count = graph.groupCounters_[g].slot[batch & 1];
    if (count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      count.store(graph.groupOffsets_[g + 1] - graph.groupOffsets_[g],
                  std::memory_order_relaxed);
      if (batch + 1 < graphBatches_) {
        for (std::uint32_t k = graph.groupOffsets_[g];
             k < graph.groupOffsets_[g + 1]; ++k)
          sendGraphToken(graph, graph.groupMembers_[k], batch + 1);
        for (std::uint32_t e = graph.groupEdgeOffsets_[g];
             e < graph.groupEdgeOffsets_[g + 1]; ++e) {
          const std::uint32_t w = graph.groupEdgeTargets_[e];
          for (std::uint32_t k = graph.groupOffsets_[w];
               k < graph.groupOffsets_[w + 1]; ++k)
            sendGraphToken(graph, graph.groupMembers_[k], batch + 1);
        }
      }
    }
  }

  if (graphRemaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Empty critical section pairs with runGraph()'s predicate check so
    // the notify cannot slip between its load and its sleep.
    std::lock_guard lock(doneMutex_);
    doneCv_.notify_all();
  }
}

void DependencyThreadPool::runGraph(ReplayGraph& graph, std::size_t numBatches,
                                    ReplayGraph::Body body, void* context) {
  PIPOLY_CHECK_MSG(graph.frozen_, "runGraph on an unfrozen ReplayGraph");
  PIPOLY_CHECK_MSG(tlsBinding.pool != this,
                   "runGraph from inside a task body would deadlock");
  PIPOLY_CHECK_MSG(graph_ == nullptr, "concurrent runGraph on one pool");
  PIPOLY_CHECK_MSG(numBatches <= kMaxGraphBatches, "too many batches");
  const std::size_t n = graph.size();
  if (n == 0 || numBatches == 0)
    return;

  // Reset the ready counters — the whole per-run cost of the graph.
  for (std::size_t v = 0; v < n; ++v) {
    graph.counters_[v].slot[0].store(graph.indegFirst_[v],
                                     std::memory_order_relaxed);
    graph.counters_[v].slot[1].store(
        numBatches > 1 ? graph.indegSteady_[v] : 0,
        std::memory_order_relaxed);
  }
  for (std::size_t g = 0; g < graph.numGroups(); ++g) {
    const std::uint32_t members =
        graph.groupOffsets_[g + 1] - graph.groupOffsets_[g];
    graph.groupCounters_[g].slot[0].store(members, std::memory_order_relaxed);
    graph.groupCounters_[g].slot[1].store(members, std::memory_order_relaxed);
  }
  graph_ = &graph;
  graphBody_ = body;
  graphContext_ = context;
  graphBatches_ = numBatches;
  graphRemaining_.store(n * numBatches, std::memory_order_relaxed);

  // Publish: the injection-shard mutex inside makeReady orders all the
  // plain stores above before any worker touches a graph task.
  for (ReplayGraph::NodeId root : graph.roots_)
    makeReady(encodeGraphTask(root, 0));

  {
    std::unique_lock lock(doneMutex_);
    doneCv_.wait(lock, [&] {
      return graphRemaining_.load(std::memory_order_acquire) == 0;
    });
  }
  graph_ = nullptr;
  graphBody_ = nullptr;
  graphContext_ = nullptr;
  graphBatches_ = 0;

  std::exception_ptr error;
  {
    std::lock_guard lock(errorMutex_);
    error = std::exchange(firstError_, nullptr);
  }
  if (error)
    std::rethrow_exception(error);
}

bool DependencyThreadPool::tryDrainInjection(unsigned self, std::size_t shard,
                                             TaskId& out) {
  // Drain a batch in one lock acquisition: the first task is returned,
  // the rest go to this worker's deque where siblings can steal them.
  constexpr std::size_t kBatch = 32;
  InjectionShard& s = *injection_[shard];
  // Lock-free emptiness peek; seq_cst pairs with the producer's count
  // republish so the parking recheck cannot miss a push (shouldWake()
  // explains the one-sided-staleness argument).
  if (s.count.load(std::memory_order_seq_cst) == 0)
    return false;
  std::size_t moved = 0;
  bool leftover = false;
  {
    std::lock_guard lock(s.mutex);
    if (s.queue.empty())
      return false;
    out = s.queue.front();
    s.queue.pop_front();
    Worker& me = *workers_[self];
    while (moved < kBatch && !s.queue.empty()) {
      me.deque.push(s.queue.front());
      s.queue.pop_front();
      ++moved;
    }
    leftover = !s.queue.empty();
    s.count.store(s.queue.size(), std::memory_order_seq_cst);
  }
  // Cascade: surface the slack we just created to a sibling. Self holds
  // one searching_ unit, hence the allowance.
  if ((leftover || moved > 0) && shouldWake(1))
    idle_.notifyOne();
  return true;
}

bool DependencyThreadPool::tryFindWork(unsigned self, TaskId& out) {
  Worker& me = *workers_[self];
  // 1. Own deque, newest first (cache-warm dependents).
  if (std::optional<TaskId> t = me.deque.pop()) {
    out = *t;
    return true;
  }
  // 2. Injection shards, own shard first.
  const std::size_t nShards = injection_.size();
  for (std::size_t k = 0; k < nShards; ++k)
    if (tryDrainInjection(self, (self + k) % nShards, out))
      return true;
  // 3. Steal, randomized sweep; retry once since steals fail spuriously
  //    when racing other thieves or the owner.
  const std::size_t n = workers_.size();
  for (int round = 0; round < 2; ++round) {
    const std::size_t start = n > 1 ? me.rng.nextBelow(n) : 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (start + k) % n;
      if (victim == self)
        continue;
      if (std::optional<TaskId> t = workers_[victim]->deque.steal()) {
        // Batch: grab a few more while the victim is hot, amortizing
        // the sweep. Extras go to our own deque (stealable again).
        ++me.steals;
        for (int extra = 0; extra < 7; ++extra) {
          std::optional<TaskId> more = workers_[victim]->deque.steal();
          if (!more)
            break;
          me.deque.push(*more);
          ++me.steals;
        }
        trace::counter("pool.steals", static_cast<double>(me.steals));
        out = *t;
        return true;
      }
    }
  }
  return false;
}

void DependencyThreadPool::workerLoop(unsigned index) {
  tlsBinding = TlsBinding{this, index};
  trace::setThreadName("pool worker " + std::to_string(index));
  Worker& me = *workers_[index];
  TaskId task = 0;
  while (true) {
    // Fast path: drain the own deque without touching the searching_
    // gate. A worker with local work never suppresses producer wakeups
    // (it does not announce itself as sweeping), so the gate's
    // invariant is untouched.
    if (std::optional<TaskId> t = me.deque.pop()) {
      runTask(*t);
      continue;
    }
    searching_.fetch_add(1, std::memory_order_seq_cst);
    const bool found = tryFindWork(index, task);
    searching_.fetch_sub(1, std::memory_order_seq_cst);
    if (found) {
      runTask(task);
      continue;
    }
    // Nothing visible: announce as sleeper, recheck (the announcement
    // and the producers' publications are seq_cst, so one side always
    // sees the other — see event_count.hpp), then park. This final
    // recheck is also what makes the searching_ wakeup gate safe: a
    // producer that skipped its notify because we were sweeping is
    // guaranteed to have its work observed here.
    const std::uint64_t ticket = idle_.prepareWait();
    if (shutdown_.load(std::memory_order_acquire)) {
      idle_.cancelWait();
      return;
    }
    if (tryFindWork(index, task)) {
      idle_.cancelWait();
      runTask(task);
      continue;
    }
    trace::instant("pool.park");
    idle_.wait(ticket);
    trace::instant("pool.unpark");
    if (shutdown_.load(std::memory_order_acquire))
      return;
  }
}

void DependencyThreadPool::waitAll() {
  {
    std::unique_lock lock(doneMutex_);
    doneCv_.wait(lock,
                 [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(errorMutex_);
    error = std::exchange(firstError_, nullptr);
  }
  if (error)
    std::rethrow_exception(error);
}

} // namespace pipoly::rt
