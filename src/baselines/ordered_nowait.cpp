#include "baselines/ordered_nowait.hpp"

#include "scop/dependences.hpp"
#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::baselines {

OrderedNowaitApplicability orderedNowaitApplicable(const scop::Scop& scop) {
  for (std::size_t t = 1; t < scop.numStatements(); ++t) {
    for (std::size_t s = 0; s < t; ++s) {
      pb::IntMap flow = scop::flowDependences(scop, s, t);
      if (flow.empty())
        continue;
      if (t != s + 1)
        return {false, "dependence skips a nest (" +
                           scop.statement(s).name() + " -> " +
                           scop.statement(t).name() +
                           "), but ordered/nowait chains consecutive "
                           "nests only"};
      // Condition (1): identical iteration domains.
      if (scop.statement(s).domain().points() !=
          scop.statement(t).domain().points())
        return {false, "nests " + scop.statement(s).name() + " and " +
                           scop.statement(t).name() +
                           " have different iteration domains"};
      // Condition (2): target iteration depends only on same-or-earlier
      // source iterations.
      for (const auto& [i, j] : flow.pairs())
        if (i > j)
          return {false, "iteration " + j.toString() + " of " +
                             scop.statement(t).name() +
                             " depends on the later iteration " +
                             i.toString() + " of " +
                             scop.statement(s).name()};
    }
  }
  return {true, ""};
}

std::optional<double> orderedNowaitTime(const scop::Scop& scop,
                                        const sim::CostModel& model,
                                        unsigned threads) {
  PIPOLY_CHECK(threads >= 1);
  if (!orderedNowaitApplicable(scop).applicable)
    return std::nullopt;

  // All nests share one domain and run concurrently on one thread each
  // (the [40] scheme binds one nest per thread within a parallel region);
  // iteration i of nest k starts after iteration i of nest k-1. With
  // per-iteration costs c_k, steady state runs at the pace of the
  // slowest nest; the fill adds one iteration of every earlier nest.
  const std::size_t nests = scop.numStatements();
  const auto usable = static_cast<std::size_t>(
      std::min<std::size_t>(threads, nests));
  const double iterations =
      static_cast<double>(scop.statement(0).domain().size());

  // If fewer threads than nests, the surplus nests serialize round-robin:
  // model as ceil(nests / threads) nests stacked per thread.
  const double stacking = static_cast<double>((nests + usable - 1) / usable);

  double maxCost = 0.0, fill = 0.0, total = 0.0;
  for (std::size_t k = 0; k < nests; ++k) {
    maxCost = std::max(maxCost, model.iterationCost.at(k));
    total += model.iterationCost.at(k);
    if (k + 1 < nests)
      fill += model.iterationCost.at(k);
  }
  const double steady = iterations * maxCost * stacking;
  return std::min(fill + steady, iterations * total);
}

} // namespace pipoly::baselines
