#include "baselines/polly_like.hpp"

#include "scop/dependences.hpp"
#include "support/assert.hpp"

#include <algorithm>
#include <set>

namespace pipoly::baselines {

namespace {

std::size_t tripCount(const scop::Statement& stmt, std::size_t dim) {
  std::set<pb::Value> values;
  for (const pb::Tuple& t : stmt.domain().points())
    values.insert(t[dim]);
  return values.size();
}

} // namespace

PollyResult pollyLikeSchedule(const scop::Scop& scop,
                              const sim::CostModel& model,
                              const PollyConfig& config) {
  PIPOLY_CHECK(config.threads >= 1);
  PollyResult result;
  result.nests.reserve(scop.numStatements());

  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const scop::Statement& stmt = scop.statement(s);
    const double work = static_cast<double>(stmt.domain().size()) *
                        model.iterationCost.at(s);

    NestPlan plan;
    std::vector<bool> parallel = scop::parallelDims(scop, s);
    auto it = std::find(parallel.begin(), parallel.end(), true);
    if (it != parallel.end()) {
      plan.parallelized = true;
      plan.parallelDim = static_cast<std::size_t>(it - parallel.begin());
      plan.parallelTrip = tripCount(stmt, plan.parallelDim);
      const double ways = static_cast<double>(
          std::min<std::size_t>(config.threads, plan.parallelTrip));
      plan.time = work / ways + config.parallelOverheadPerNest;
      ++result.numParallelNests;
    } else {
      plan.time = work;
    }
    result.totalTime += plan.time;
    result.nests.push_back(plan);
  }
  return result;
}

} // namespace pipoly::baselines
