#pragma once

// A Polly-like per-loop-nest auto-parallelizing baseline (what the paper
// compares against as `polly` / `polly_8` in Fig. 11, i.e. Pluto's
// scheduling inside Polly):
//
//   * per nest, find the outermost dependence-free dimension and run it in
//     parallel across the configured thread count (fork/join per nest);
//   * nests with dependences in every dimension run sequentially — the
//     paper's key observation is that all gnmm/gnmmt nests (and all of the
//     first benchmark set) fall into this bucket, so Polly gains nothing;
//   * tiling is modelled as a measured per-iteration cost improvement
//     (the caller supplies the tiled cost model; see bench/).
//
// Times are analytic (the quad-core substitution documented in DESIGN.md):
// a parallel nest takes work / min(threads, trip(parallel dim)) plus a
// fork/join overhead; nests execute back to back like Polly's generated
// code.

#include "scop/scop.hpp"
#include "sim/simulator.hpp"

#include <optional>
#include <vector>

namespace pipoly::baselines {

struct PollyConfig {
  unsigned threads = 8;
  /// Fork/join cost charged once per parallelized nest (seconds).
  double parallelOverheadPerNest = 0.0;
};

struct NestPlan {
  bool parallelized = false;
  /// Outermost dependence-free dimension (when parallelized).
  std::size_t parallelDim = 0;
  /// Trip count of that dimension.
  std::size_t parallelTrip = 1;
  double time = 0.0;
};

struct PollyResult {
  std::vector<NestPlan> nests;
  double totalTime = 0.0;
  std::size_t numParallelNests = 0;
};

/// Analyses and "executes" the SCoP the way Polly would, using the given
/// per-iteration cost model (pass the tiled cost model to account for
/// Polly's locality optimisation).
PollyResult pollyLikeSchedule(const scop::Scop& scop,
                              const sim::CostModel& model,
                              const PollyConfig& config);

} // namespace pipoly::baselines
