#pragma once

// Executable realization of the Polly-like baseline: instead of the
// analytic time model, lower the per-nest parallelization to an actual
// TaskProgram that runs on the tasking backends and the machine
// simulator — the same substrate the pipelined programs use, so the two
// strategies can be compared with one methodology (and executed for real
// on multi-core hosts).
//
//  * a parallelizable nest becomes up to `threads` chunk tasks over its
//    outermost dependence-free dimension;
//  * a serial nest becomes one task;
//  * consecutive nests are separated by a full barrier (every task of
//    nest k depends on every task of nest k-1), which is what Polly's
//    generated code does with one parallel loop per nest.

#include "codegen/task_program.hpp"
#include "scop/scop.hpp"

namespace pipoly::baselines {

codegen::TaskProgram pollyTaskProgram(const scop::Scop& scop,
                                      unsigned threads);

} // namespace pipoly::baselines
