#include "baselines/polly_tasks.hpp"

#include "scop/dependences.hpp"
#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::baselines {

codegen::TaskProgram pollyTaskProgram(const scop::Scop& scop,
                                      unsigned threads) {
  PIPOLY_CHECK(threads >= 1);
  codegen::TaskProgram prog;
  prog.numStatements = scop.numStatements();
  prog.chainOrdering = false; // chunks of one nest run concurrently

  std::vector<codegen::TaskDep> previousNest;
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const scop::Statement& stmt = scop.statement(s);
    const auto& points = stmt.domain().points();

    // Chunk boundaries over the outermost parallel dimension (whole
    // domain as a single chunk when the nest is serial). Chunks must be
    // splits at changes of the parallel dim's coordinate so that no
    // dependence crosses chunks.
    std::vector<bool> parallel = scop::parallelDims(scop, s);
    std::vector<std::pair<std::size_t, std::size_t>> chunks; // [begin,end)
    auto outermost = std::find(parallel.begin(), parallel.end(), true);
    if (outermost == parallel.end() || threads == 1) {
      chunks.emplace_back(0, points.size());
    } else {
      const auto dim =
          static_cast<std::size_t>(outermost - parallel.begin());
      PIPOLY_CHECK_MSG(dim == 0,
                       "Polly-like chunking expects the outermost "
                       "dimension to be the parallel one");
      // Distinct leading coordinates, split into <= threads groups.
      std::vector<std::size_t> rowStarts{0};
      for (std::size_t k = 1; k < points.size(); ++k)
        if (points[k][0] != points[k - 1][0])
          rowStarts.push_back(k);
      const std::size_t rows = rowStarts.size();
      const std::size_t ways = std::min<std::size_t>(threads, rows);
      for (std::size_t c = 0; c < ways; ++c) {
        const std::size_t loRow = c * rows / ways;
        const std::size_t hiRow = (c + 1) * rows / ways;
        const std::size_t begin = rowStarts[loRow];
        const std::size_t end =
            hiRow == rows ? points.size() : rowStarts[hiRow];
        chunks.emplace_back(begin, end);
      }
    }

    std::vector<codegen::TaskDep> thisNest;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      codegen::Task task;
      task.id = prog.tasks.size();
      task.stmtIdx = s;
      task.iterations.assign(
          points.begin() + static_cast<long>(chunks[c].first),
          points.begin() + static_cast<long>(chunks[c].second));
      PIPOLY_CHECK(!task.iterations.empty());
      task.blockRep = task.iterations.back();
      task.out = codegen::TaskDep{
          static_cast<int>(s), codegen::linearizeBlockVector(task.blockRep)};
      task.in = previousNest; // full barrier between nests
      thisNest.push_back(task.out);
      prog.tasks.push_back(std::move(task));
    }
    previousNest = std::move(thisNest);
  }

  // writeNum: statements feeding later statements.
  std::vector<bool> isSource(scop.numStatements(), false);
  for (std::size_t t = 0; t < scop.numStatements(); ++t)
    for (std::size_t s = 0; s < t; ++s)
      if (scop::dependsOn(scop, t, s))
        isSource[s] = true;
  prog.writeNum = static_cast<std::size_t>(
      std::count(isSource.begin(), isSource.end(), true));
  return prog;
}

} // namespace pipoly::baselines
