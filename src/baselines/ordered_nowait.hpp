#pragma once

// The restricted pipelined-multithreading baseline the paper contrasts
// with in §2 (Razanajato et al. [40]): pipelining via OpenMP `ordered` +
// `nowait` between consecutive parallelized loop nests. Per the paper,
// that technique applies only when
//
//   (1) the considered nests have identical iteration domains (and chunk
//       sizes), and
//   (2) each iteration of the target depends only on the same or earlier
//       iterations of its source (a lexicographically non-positive...
//       i.e. non-forward dependence pattern).
//
// This module implements the *applicability test* and an analytic time
// model for the cases where it applies, so benchmarks can show where the
// paper's general task-based approach wins simply by being applicable.

#include "scop/scop.hpp"
#include "sim/simulator.hpp"

#include <optional>

namespace pipoly::baselines {

struct OrderedNowaitApplicability {
  bool applicable = false;
  std::string reason; // why not, when !applicable
};

/// Checks conditions (1) and (2) for every dependent pair of consecutive
/// nests in the SCoP.
OrderedNowaitApplicability
orderedNowaitApplicable(const scop::Scop& scop);

/// Analytic execution time when applicable: all nests run concurrently,
/// iteration i of nest k+1 waits for iteration i of nest k — time is the
/// max nest time plus the per-stage fill delay of one iteration.
/// Returns nullopt when the technique does not apply.
std::optional<double> orderedNowaitTime(const scop::Scop& scop,
                                        const sim::CostModel& model,
                                        unsigned threads);

} // namespace pipoly::baselines
