#pragma once

// Affine expressions and multi-dimensional affine maps over a fixed number
// of input dimensions. These form the symbolic front end of the library:
// iteration domains and access relations are *written* as affine objects
// and *evaluated* into explicit sets once the parameters are fixed.

#include "presburger/tuple.hpp"
#include "support/assert.hpp"

#include <numeric>
#include <string>
#include <vector>

namespace pipoly::pb {

/// c0*x0 + ... + c{n-1}*x{n-1} + constant, over n input dimensions.
class AffineExpr {
public:
  AffineExpr() = default;
  explicit AffineExpr(std::size_t numDims, Value constant = 0)
      : coeffs_(numDims, 0), constant_(constant) {}
  AffineExpr(std::vector<Value> coeffs, Value constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// The expression `x_idx` over numDims dimensions.
  static AffineExpr dim(std::size_t numDims, std::size_t idx) {
    PIPOLY_CHECK(idx < numDims);
    AffineExpr e(numDims);
    e.coeffs_[idx] = 1;
    return e;
  }

  /// The constant expression `c` over numDims dimensions.
  static AffineExpr constant(std::size_t numDims, Value c) {
    return AffineExpr(numDims, c);
  }

  std::size_t numDims() const { return coeffs_.size(); }
  Value coeff(std::size_t i) const { return coeffs_[i]; }
  Value& coeff(std::size_t i) { return coeffs_[i]; }
  Value constantTerm() const { return constant_; }
  Value& constantTerm() { return constant_; }

  bool isConstant() const {
    for (Value c : coeffs_)
      if (c != 0)
        return false;
    return true;
  }

  Value evaluate(const Tuple& point) const {
    PIPOLY_ASSERT(point.size() == coeffs_.size());
    Value acc = constant_;
    for (std::size_t i = 0; i < coeffs_.size(); ++i)
      acc += coeffs_[i] * point[i];
    return acc;
  }

  /// Returns a copy of this expression extended to `numDims` dimensions
  /// (the new trailing dimensions get coefficient zero).
  AffineExpr extendedTo(std::size_t numDims) const {
    PIPOLY_CHECK(numDims >= coeffs_.size());
    AffineExpr e = *this;
    e.coeffs_.resize(numDims, 0);
    return e;
  }

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
    PIPOLY_CHECK(a.numDims() == b.numDims());
    for (std::size_t i = 0; i < a.coeffs_.size(); ++i)
      a.coeffs_[i] += b.coeffs_[i];
    a.constant_ += b.constant_;
    return a;
  }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
    PIPOLY_CHECK(a.numDims() == b.numDims());
    for (std::size_t i = 0; i < a.coeffs_.size(); ++i)
      a.coeffs_[i] -= b.coeffs_[i];
    a.constant_ -= b.constant_;
    return a;
  }
  friend AffineExpr operator-(AffineExpr a) {
    for (auto& c : a.coeffs_)
      c = -c;
    a.constant_ = -a.constant_;
    return a;
  }
  friend AffineExpr operator*(Value k, AffineExpr a) {
    for (auto& c : a.coeffs_)
      c *= k;
    a.constant_ *= k;
    return a;
  }
  friend AffineExpr operator*(AffineExpr a, Value k) { return k * std::move(a); }
  friend AffineExpr operator+(AffineExpr a, Value k) {
    a.constant_ += k;
    return a;
  }
  friend AffineExpr operator+(Value k, AffineExpr a) { return std::move(a) + k; }
  friend AffineExpr operator-(AffineExpr a, Value k) {
    a.constant_ -= k;
    return a;
  }

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

  /// Renders with dimension names d0, d1, ... or caller-provided names.
  std::string toString(const std::vector<std::string>& dimNames = {}) const;

private:
  std::vector<Value> coeffs_;
  Value constant_ = 0;
};

/// An affine function Z^n -> Z^m given by m affine expressions.
class AffineMap {
public:
  AffineMap() = default;
  AffineMap(std::size_t numInputs, std::vector<AffineExpr> outputs)
      : numInputs_(numInputs), outputs_(std::move(outputs)) {
    for (const AffineExpr& e : outputs_)
      PIPOLY_CHECK(e.numDims() == numInputs_);
  }

  static AffineMap identity(std::size_t n) {
    std::vector<AffineExpr> outs;
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      outs.push_back(AffineExpr::dim(n, i));
    return AffineMap(n, std::move(outs));
  }

  std::size_t numInputs() const { return numInputs_; }
  std::size_t numOutputs() const { return outputs_.size(); }
  const std::vector<AffineExpr>& outputs() const { return outputs_; }
  const AffineExpr& output(std::size_t i) const { return outputs_[i]; }

  Tuple evaluate(const Tuple& point) const {
    PIPOLY_ASSERT(point.size() == numInputs_);
    std::vector<Value> out;
    out.reserve(outputs_.size());
    for (const AffineExpr& e : outputs_)
      out.push_back(e.evaluate(point));
    return Tuple(std::move(out));
  }

  friend bool operator==(const AffineMap&, const AffineMap&) = default;

  std::string toString(const std::vector<std::string>& dimNames = {}) const;

private:
  std::size_t numInputs_ = 0;
  std::vector<AffineExpr> outputs_;
};

} // namespace pipoly::pb
