#pragma once

// Flat row-major point storage shared by IntTupleSet and IntMap, plus the
// algorithms the rewritten set algebra runs on it.
//
// A "row buffer" is one contiguous std::vector<Value> holding n rows of a
// fixed width w (the arity of the space, or the summed arities of a map's
// two spaces), sorted lexicographically and duplicate-free. Sets and maps
// hold their buffer behind a shared_ptr<const ...>: copying a set, or
// deriving one that is content-identical (unite with the empty set,
// restrictions that keep everything, per-domain extrema of single-valued
// maps), shares the buffer instead of deep-copying — buffers are immutable
// once published, so sharing is copy-on-write by construction.
//
// TupleRange / PairRange are the iteration façade: lightweight random-
// access ranges yielding TupleView / PairView per row. They retain the
// underlying buffer, so a range outlives the set or map it was taken from
// (safe even when points() is called on a temporary).

#include "presburger/tuple.hpp"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

namespace pipoly::pb {

using RowBuffer = std::vector<Value>;
using RowsPtr = std::shared_ptr<const RowBuffer>;

namespace rows {

/// Lexicographic three-way comparison of two width-`w` rows.
inline int compare(const Value* a, const Value* b, std::size_t w) {
  for (std::size_t i = 0; i < w; ++i) {
    if (a[i] != b[i])
      return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

inline bool less(const Value* a, const Value* b, std::size_t w) {
  return compare(a, b, w) < 0;
}

inline bool equal(const Value* a, const Value* b, std::size_t w) {
  return compare(a, b, w) == 0;
}

inline void append(RowBuffer& out, const Value* row, std::size_t w) {
  out.insert(out.end(), row, row + w);
}

/// True when the buffer holds strictly increasing width-`w` rows.
inline bool isSortedUnique(const RowBuffer& data, std::size_t w) {
  if (w == 0)
    return data.empty();
  const std::size_t n = data.size() / w;
  for (std::size_t i = 1; i < n; ++i)
    if (compare(&data[(i - 1) * w], &data[i * w], w) >= 0)
      return false;
  return true;
}

/// Sorts the rows lexicographically and drops duplicates. Already-sorted
/// input (the common case: most producers emit in order) is detected in
/// one linear pass and returned untouched.
inline void sortUnique(RowBuffer& data, std::size_t w) {
  if (w == 0) {
    data.clear();
    return;
  }
  if (isSortedUnique(data, w))
    return;
  const std::size_t n = data.size() / w;
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](std::uint32_t x, std::uint32_t y) {
    return compare(&data[x * w], &data[y * w], w) < 0;
  });
  RowBuffer out;
  out.reserve(data.size());
  const Value* prev = nullptr;
  for (std::uint32_t i : idx) {
    const Value* r = &data[i * w];
    if (prev != nullptr && equal(prev, r, w))
      continue;
    append(out, r, w);
    prev = r;
  }
  data = std::move(out);
}

/// First index in [from, n) whose leading `keyW` values compare >= `key`
/// (rows have width `w`; keyW <= w). Plain binary search.
inline std::size_t lowerBound(const Value* base, std::size_t n, std::size_t w,
                              std::size_t from, const Value* key,
                              std::size_t keyW) {
  std::size_t lo = from, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (compare(base + mid * w, key, keyW) < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// First index in [from, n) whose leading `keyW` values compare > `key`.
inline std::size_t upperBound(const Value* base, std::size_t n, std::size_t w,
                              std::size_t from, const Value* key,
                              std::size_t keyW) {
  std::size_t lo = from, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (compare(base + mid * w, key, keyW) <= 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Galloping (exponential) variant of lowerBound: doubles the step from
/// `from` until the key is bracketed, then binary-searches the bracket.
/// O(log distance) instead of O(log n) — the win the merge loops below
/// rely on when one side is much denser than the other.
inline std::size_t gallopLowerBound(const Value* base, std::size_t n,
                                    std::size_t w, std::size_t from,
                                    const Value* key, std::size_t keyW) {
  std::size_t step = 1, probe = from;
  while (probe < n && compare(base + probe * w, key, keyW) < 0) {
    from = probe + 1;
    probe += step;
    step *= 2;
  }
  return lowerBound(base, std::min(probe, n), w, from, key, keyW);
}

/// a ∪ b over sorted-unique width-`w` buffers (linear merge).
inline RowBuffer unionRows(const RowBuffer& a, const RowBuffer& b,
                           std::size_t w) {
  RowBuffer out;
  out.reserve(a.size() + b.size());
  const std::size_t na = a.size() / w, nb = b.size() / w;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const int c = compare(&a[i * w], &b[j * w], w);
    if (c < 0)
      append(out, &a[i++ * w], w);
    else if (c > 0)
      append(out, &b[j++ * w], w);
    else {
      append(out, &a[i * w], w);
      ++i;
      ++j;
    }
  }
  if (i < na)
    out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i * w),
               a.end());
  if (j < nb)
    out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j * w),
               b.end());
  return out;
}

/// Size ratio beyond which the merge loops switch from stepping to
/// galloping through the larger side.
inline constexpr std::size_t kGallopRatio = 8;

/// a ∩ b (linear merge; gallops through the larger side on skew).
inline RowBuffer intersectRows(const RowBuffer& a, const RowBuffer& b,
                               std::size_t w) {
  const RowBuffer& small = a.size() <= b.size() ? a : b;
  const RowBuffer& large = a.size() <= b.size() ? b : a;
  const std::size_t ns = small.size() / w, nl = large.size() / w;
  RowBuffer out;
  out.reserve(small.size());
  const bool gallop = nl / std::max<std::size_t>(ns, 1) >= kGallopRatio;
  std::size_t i = 0, j = 0;
  while (i < ns && j < nl) {
    if (gallop) {
      j = gallopLowerBound(large.data(), nl, w, j, &small[i * w], w);
      if (j == nl)
        break;
    }
    const int c = compare(&small[i * w], &large[j * w], w);
    if (c == 0) {
      append(out, &small[i * w], w);
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

/// a \ b (linear merge; gallops through b when it is much larger).
inline RowBuffer differenceRows(const RowBuffer& a, const RowBuffer& b,
                                std::size_t w) {
  const std::size_t na = a.size() / w, nb = b.size() / w;
  RowBuffer out;
  out.reserve(a.size());
  const bool gallop = nb / std::max<std::size_t>(na, 1) >= kGallopRatio;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (gallop)
      j = gallopLowerBound(b.data(), nb, w, j, &a[i * w], w);
    if (j == nb)
      break;
    const int c = compare(&a[i * w], &b[j * w], w);
    if (c < 0)
      append(out, &a[i++ * w], w);
    else if (c > 0)
      ++j;
    else {
      ++i;
      ++j;
    }
  }
  if (i < na)
    out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i * w),
               a.end());
  return out;
}

/// a ⊇ b? (linear merge; gallops through a when it is much larger).
inline bool includesRows(const RowBuffer& a, const RowBuffer& b,
                         std::size_t w) {
  const std::size_t na = a.size() / w, nb = b.size() / w;
  if (nb > na)
    return false;
  const bool gallop = na / std::max<std::size_t>(nb, 1) >= kGallopRatio;
  std::size_t i = 0, j = 0;
  while (j < nb) {
    if (gallop)
      i = gallopLowerBound(a.data(), na, w, i, &b[j * w], w);
    else
      while (i < na && compare(&a[i * w], &b[j * w], w) < 0)
        ++i;
    if (i == na || !equal(&a[i * w], &b[j * w], w))
      return false;
    ++i;
    ++j;
  }
  return true;
}

} // namespace rows

/// Random-access range over the points of a flat row buffer, yielding a
/// TupleView per row. Holds a reference on the buffer, so the range (and
/// any iterator derived from it) stays valid after the originating set or
/// map is gone.
class TupleRange {
public:
  class iterator {
  public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = TupleView;
    using difference_type = std::ptrdiff_t;
    using reference = TupleView;
    using pointer = void;

    iterator() = default;
    iterator(const Value* base, std::size_t arity, std::size_t idx)
        : base_(base), arity_(arity), idx_(idx) {}

    TupleView operator*() const {
      return TupleView(base_ + idx_ * arity_, arity_);
    }
    TupleView operator[](difference_type k) const { return *(*this + k); }

    iterator& operator++() {
      ++idx_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++idx_;
      return t;
    }
    iterator& operator--() {
      --idx_;
      return *this;
    }
    iterator operator--(int) {
      iterator t = *this;
      --idx_;
      return t;
    }
    iterator& operator+=(difference_type k) {
      idx_ = static_cast<std::size_t>(static_cast<difference_type>(idx_) + k);
      return *this;
    }
    iterator& operator-=(difference_type k) { return *this += -k; }
    friend iterator operator+(iterator it, difference_type k) {
      return it += k;
    }
    friend iterator operator+(difference_type k, iterator it) {
      return it += k;
    }
    friend iterator operator-(iterator it, difference_type k) {
      return it -= k;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.idx_) -
             static_cast<difference_type>(b.idx_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.idx_ == b.idx_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.idx_ <=> b.idx_;
    }

  private:
    const Value* base_ = nullptr;
    std::size_t arity_ = 0;
    std::size_t idx_ = 0;
  };

  TupleRange() = default;
  TupleRange(RowsPtr keepAlive, std::size_t count, std::size_t arity)
      : keepAlive_(std::move(keepAlive)), count_(count), arity_(arity) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  iterator begin() const { return iterator(base(), arity_, 0); }
  iterator end() const { return iterator(base(), arity_, count_); }

  TupleView operator[](std::size_t i) const {
    PIPOLY_ASSERT(i < count_);
    return TupleView(base() + i * arity_, arity_);
  }
  TupleView front() const { return (*this)[0]; }
  TupleView back() const { return (*this)[count_ - 1]; }

  friend bool operator==(const TupleRange& a, const TupleRange& b) {
    if (a.count_ != b.count_ || a.arity_ != b.arity_)
      return false;
    return std::equal(a.base(), a.base() + a.count_ * a.arity_, b.base());
  }
  friend bool operator==(const TupleRange& a, const std::vector<Tuple>& b) {
    if (a.count_ != b.size())
      return false;
    for (std::size_t i = 0; i < a.count_; ++i)
      if (!(a[i] == b[i]))
        return false;
    return true;
  }

private:
  const Value* base() const { return keepAlive_ ? keepAlive_->data() : nullptr; }

  RowsPtr keepAlive_;
  std::size_t count_ = 0;
  std::size_t arity_ = 0;
};

/// Random-access range over the pairs of a flat map buffer (row width =
/// domain arity + range arity), yielding a PairView per row. Retains the
/// buffer like TupleRange.
class PairRange {
public:
  class iterator {
  public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = PairView;
    using difference_type = std::ptrdiff_t;
    using reference = PairView;
    using pointer = void;

    iterator() = default;
    iterator(const Value* base, std::size_t inArity, std::size_t outArity,
             std::size_t idx)
        : base_(base), inArity_(inArity), outArity_(outArity), idx_(idx) {}

    PairView operator*() const {
      const Value* row = base_ + idx_ * (inArity_ + outArity_);
      return PairView{TupleView(row, inArity_),
                      TupleView(row + inArity_, outArity_)};
    }
    PairView operator[](difference_type k) const { return *(*this + k); }

    iterator& operator++() {
      ++idx_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++idx_;
      return t;
    }
    iterator& operator--() {
      --idx_;
      return *this;
    }
    iterator operator--(int) {
      iterator t = *this;
      --idx_;
      return t;
    }
    iterator& operator+=(difference_type k) {
      idx_ = static_cast<std::size_t>(static_cast<difference_type>(idx_) + k);
      return *this;
    }
    iterator& operator-=(difference_type k) { return *this += -k; }
    friend iterator operator+(iterator it, difference_type k) {
      return it += k;
    }
    friend iterator operator+(difference_type k, iterator it) {
      return it += k;
    }
    friend iterator operator-(iterator it, difference_type k) {
      return it -= k;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.idx_) -
             static_cast<difference_type>(b.idx_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.idx_ == b.idx_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.idx_ <=> b.idx_;
    }

  private:
    const Value* base_ = nullptr;
    std::size_t inArity_ = 0;
    std::size_t outArity_ = 0;
    std::size_t idx_ = 0;
  };

  PairRange() = default;
  PairRange(RowsPtr keepAlive, std::size_t count, std::size_t inArity,
            std::size_t outArity)
      : keepAlive_(std::move(keepAlive)), count_(count), inArity_(inArity),
        outArity_(outArity) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  iterator begin() const { return iterator(base(), inArity_, outArity_, 0); }
  iterator end() const {
    return iterator(base(), inArity_, outArity_, count_);
  }

  PairView operator[](std::size_t i) const {
    PIPOLY_ASSERT(i < count_);
    const Value* row = base() + i * (inArity_ + outArity_);
    return PairView{TupleView(row, inArity_),
                    TupleView(row + inArity_, outArity_)};
  }
  PairView front() const { return (*this)[0]; }
  PairView back() const { return (*this)[count_ - 1]; }

  friend bool operator==(const PairRange& a, const PairRange& b) {
    if (a.count_ != b.count_ || a.inArity_ != b.inArity_ ||
        a.outArity_ != b.outArity_)
      return false;
    const std::size_t w = a.inArity_ + a.outArity_;
    return std::equal(a.base(), a.base() + a.count_ * w, b.base());
  }
  friend bool operator==(const PairRange& a,
                         const std::vector<std::pair<Tuple, Tuple>>& b) {
    if (a.count_ != b.size())
      return false;
    for (std::size_t i = 0; i < a.count_; ++i)
      if (!(a[i] == b[i]))
        return false;
    return true;
  }

private:
  const Value* base() const { return keepAlive_ ? keepAlive_->data() : nullptr; }

  RowsPtr keepAlive_;
  std::size_t count_ = 0;
  std::size_t inArity_ = 0;
  std::size_t outArity_ = 0;
};

} // namespace pipoly::pb
