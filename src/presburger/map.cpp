#include "presburger/map.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace pipoly::pb {

IntMap::IntMap(Space in, Space out, std::vector<Pair> pairs)
    : in_(std::move(in)), out_(std::move(out)), pairs_(std::move(pairs)) {
  for (const Pair& p : pairs_) {
    PIPOLY_CHECK_MSG(p.first.size() == in_.arity(),
                     "map pair domain arity mismatch in " + in_.name());
    PIPOLY_CHECK_MSG(p.second.size() == out_.arity(),
                     "map pair range arity mismatch in " + out_.name());
  }
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

IntMap IntMap::identity(const IntTupleSet& set) {
  std::vector<Pair> pairs;
  pairs.reserve(set.size());
  for (const Tuple& t : set.points())
    pairs.emplace_back(t, t);
  IntMap m(set.space(), set.space());
  m.pairs_ = std::move(pairs); // already sorted and unique
  return m;
}

IntMap IntMap::fromFunction(const IntTupleSet& domain, Space out,
                            const std::function<Tuple(const Tuple&)>& f) {
  std::vector<Pair> pairs;
  pairs.reserve(domain.size());
  for (const Tuple& t : domain.points())
    pairs.emplace_back(t, f(t));
  return IntMap(domain.space(), std::move(out), std::move(pairs));
}

IntMap IntMap::lexLeSet(const IntTupleSet& from, const IntTupleSet& bounds) {
  PIPOLY_CHECK(from.space() == bounds.space());
  std::vector<Pair> pairs;
  for (const Tuple& i : from.points())
    for (const Tuple& b : bounds.points())
      if (i <= b)
        pairs.emplace_back(i, b);
  IntMap m(from.space(), from.space());
  m.pairs_ = std::move(pairs);
  std::sort(m.pairs_.begin(), m.pairs_.end());
  return m;
}

IntMap IntMap::lexGeContains(const IntTupleSet& set) {
  std::vector<Pair> pairs;
  for (const Tuple& x : set.points())
    for (const Tuple& y : set.points())
      if (y <= x)
        pairs.emplace_back(x, y);
  IntMap m(set.space(), set.space());
  m.pairs_ = std::move(pairs);
  std::sort(m.pairs_.begin(), m.pairs_.end());
  return m;
}

bool IntMap::contains(const Tuple& in, const Tuple& out) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), Pair(in, out));
}

IntMap IntMap::inverse() const {
  IntMap m(out_, in_);
  m.pairs_.reserve(pairs_.size());
  for (const Pair& p : pairs_)
    m.pairs_.emplace_back(p.second, p.first);
  std::sort(m.pairs_.begin(), m.pairs_.end());
  return m;
}

IntTupleSet IntMap::domain() const {
  std::vector<Tuple> pts;
  pts.reserve(pairs_.size());
  for (const Pair& p : pairs_)
    if (pts.empty() || pts.back() != p.first)
      pts.push_back(p.first); // pairs_ sorted by first => pts sorted
  return IntTupleSet(in_, std::move(pts));
}

IntTupleSet IntMap::range() const {
  std::vector<Tuple> pts;
  pts.reserve(pairs_.size());
  for (const Pair& p : pairs_)
    pts.push_back(p.second);
  return IntTupleSet(out_, std::move(pts));
}

IntMap IntMap::compose(const IntMap& inner) const {
  PIPOLY_CHECK_MSG(inner.out_ == in_,
                   "composition space mismatch: inner range " +
                       inner.out_.name() + " vs outer domain " + in_.name());
  // Look up each inner image among this map's inputs. Blocking and
  // access maps are usually monotone in their images, so consecutive
  // lookups land at or after the previous hit: keep a hint iterator and
  // only search the tail past it, falling back to a full search when the
  // key order regresses. Monotone inners thus compose in O(m + n).
  const auto firstLess = [](const Pair& p, const Tuple& key) {
    return p.first < key;
  };
  std::vector<Pair> result;
  result.reserve(inner.pairs_.size());
  auto hint = pairs_.begin();
  for (const Pair& ab : inner.pairs_) {
    auto lo = (hint == pairs_.end() || !(hint->first < ab.second))
                  ? std::lower_bound(pairs_.begin(), hint, ab.second, firstLess)
                  : std::lower_bound(hint, pairs_.end(), ab.second, firstLess);
    hint = lo;
    for (auto it = lo; it != pairs_.end() && it->first == ab.second; ++it)
      result.emplace_back(ab.first, it->second);
  }
  return IntMap(inner.in_, out_, std::move(result));
}

IntTupleSet IntMap::apply(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == in_);
  std::vector<Tuple> out;
  for (const Tuple& t : set.points())
    for (const Tuple& img : imagesOf(t))
      out.push_back(img);
  return IntTupleSet(out_, std::move(out));
}

std::vector<Tuple> IntMap::imagesOf(const Tuple& in) const {
  std::vector<Tuple> out;
  auto lo = std::lower_bound(
      pairs_.begin(), pairs_.end(), in,
      [](const Pair& p, const Tuple& key) { return p.first < key; });
  for (auto it = lo; it != pairs_.end() && it->first == in; ++it)
    out.push_back(it->second);
  return out;
}

std::optional<Tuple> IntMap::singleImageOf(const Tuple& in) const {
  std::vector<Tuple> imgs = imagesOf(in);
  if (imgs.empty())
    return std::nullopt;
  PIPOLY_CHECK_MSG(imgs.size() == 1, "map is not single-valued at " +
                                         in.toString() + " in space " +
                                         in_.name());
  return imgs.front();
}

IntMap IntMap::lexmaxPerDomain() const {
  if (isSingleValued())
    return *this;
  IntMap m(in_, out_);
  m.pairs_.reserve(pairs_.size());
  for (const Pair& p : pairs_) {
    if (!m.pairs_.empty() && m.pairs_.back().first == p.first)
      m.pairs_.back().second = std::max(m.pairs_.back().second, p.second);
    else
      m.pairs_.push_back(p);
  }
  return m;
}

IntMap IntMap::lexminPerDomain() const {
  // A single-valued map is its own per-domain extremum; skip the rebuild.
  if (isSingleValued())
    return *this;
  IntMap m(in_, out_);
  m.pairs_.reserve(pairs_.size());
  for (const Pair& p : pairs_) {
    // pairs_ is sorted by (in, out): the first pair of each input group
    // already carries the lexicographically smallest output.
    if (m.pairs_.empty() || m.pairs_.back().first != p.first)
      m.pairs_.push_back(p);
  }
  return m;
}

IntMap IntMap::restrictDomain(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == in_);
  IntMap m(in_, out_);
  std::copy_if(pairs_.begin(), pairs_.end(), std::back_inserter(m.pairs_),
               [&](const Pair& p) { return set.contains(p.first); });
  return m;
}

IntMap IntMap::restrictRange(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == out_);
  IntMap m(in_, out_);
  std::copy_if(pairs_.begin(), pairs_.end(), std::back_inserter(m.pairs_),
               [&](const Pair& p) { return set.contains(p.second); });
  return m;
}

IntMap IntMap::unite(const IntMap& other) const {
  PIPOLY_CHECK_MSG(in_ == other.in_ && out_ == other.out_,
                   "union of maps across different spaces");
  if (pairs_.empty())
    return other;
  if (other.pairs_.empty())
    return *this;
  IntMap m(in_, out_);
  m.pairs_.reserve(pairs_.size() + other.pairs_.size());
  // Disjoint-range fast path: accumulating unions (producer relations,
  // dependence sweeps) typically append strictly later pair ranges.
  if (pairs_.back() < other.pairs_.front()) {
    m.pairs_.insert(m.pairs_.end(), pairs_.begin(), pairs_.end());
    m.pairs_.insert(m.pairs_.end(), other.pairs_.begin(), other.pairs_.end());
    return m;
  }
  std::set_union(pairs_.begin(), pairs_.end(), other.pairs_.begin(),
                 other.pairs_.end(), std::back_inserter(m.pairs_));
  return m;
}

IntMap IntMap::intersect(const IntMap& other) const {
  PIPOLY_CHECK_MSG(in_ == other.in_ && out_ == other.out_,
                   "intersection of maps across different spaces");
  IntMap m(in_, out_);
  std::set_intersection(pairs_.begin(), pairs_.end(), other.pairs_.begin(),
                        other.pairs_.end(), std::back_inserter(m.pairs_));
  return m;
}

IntMap IntMap::subtract(const IntMap& other) const {
  PIPOLY_CHECK_MSG(in_ == other.in_ && out_ == other.out_,
                   "difference of maps across different spaces");
  IntMap m(in_, out_);
  std::set_difference(pairs_.begin(), pairs_.end(), other.pairs_.begin(),
                      other.pairs_.end(), std::back_inserter(m.pairs_));
  return m;
}

bool IntMap::isSubsetOf(const IntMap& other) const {
  PIPOLY_CHECK_MSG(in_ == other.in_ && out_ == other.out_,
                   "subset test across different spaces");
  return std::includes(other.pairs_.begin(), other.pairs_.end(),
                       pairs_.begin(), pairs_.end());
}

bool IntMap::isInjective() const {
  std::vector<Tuple> outs;
  outs.reserve(pairs_.size());
  for (const Pair& p : pairs_)
    outs.push_back(p.second);
  std::sort(outs.begin(), outs.end());
  return std::adjacent_find(outs.begin(), outs.end()) == outs.end();
}

bool IntMap::isSingleValued() const {
  for (std::size_t i = 1; i < pairs_.size(); ++i)
    if (pairs_[i].first == pairs_[i - 1].first)
      return false;
  return true;
}

IntTupleSet IntMap::deltas() const {
  PIPOLY_CHECK_MSG(in_.arity() == out_.arity(),
                   "deltas need equal-arity domain and range");
  std::vector<Tuple> diffs;
  diffs.reserve(pairs_.size());
  for (const auto& [in, out] : pairs_) {
    std::vector<Value> d(in.size());
    for (std::size_t k = 0; k < in.size(); ++k)
      d[k] = out[k] - in[k];
    diffs.emplace_back(std::move(d));
  }
  return IntTupleSet(Space("delta", in_.arity()), std::move(diffs));
}

IntMap IntMap::transitiveClosure() const {
  PIPOLY_CHECK_MSG(in_ == out_,
                   "transitive closure needs a relation on one space");
  // DFS with memoisation; colours detect cycles.
  enum class Color { White, Grey, Black };
  std::map<Tuple, Color> color;
  std::map<Tuple, std::vector<Tuple>> reach; // x -> all transitively reached

  std::function<const std::vector<Tuple>&(const Tuple&)> visit =
      [&](const Tuple& x) -> const std::vector<Tuple>& {
    auto [it, fresh] = color.try_emplace(x, Color::White);
    PIPOLY_CHECK_MSG(it->second != Color::Grey,
                     "transitive closure of a cyclic relation");
    if (it->second == Color::Black)
      return reach[x];
    it->second = Color::Grey;
    std::vector<Tuple> acc;
    for (const Tuple& y : imagesOf(x)) {
      acc.push_back(y);
      const std::vector<Tuple>& more = visit(y);
      acc.insert(acc.end(), more.begin(), more.end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    color[x] = Color::Black;
    return reach[x] = std::move(acc);
  };

  std::vector<Pair> result;
  const IntTupleSet dom = domain();
  for (const Tuple& x : dom.points())
    for (const Tuple& y : visit(x))
      result.emplace_back(x, y);
  return IntMap(in_, out_, std::move(result));
}

std::string IntMap::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMap& m) {
  os << "{ ";
  bool first = true;
  for (const auto& [in, out] : m.pairs()) {
    if (!first)
      os << "; ";
    os << m.domainSpace().name() << in << " -> " << m.rangeSpace().name()
       << out;
    first = false;
  }
  return os << " }";
}

} // namespace pipoly::pb
