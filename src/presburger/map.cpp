#include "presburger/map.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

namespace pipoly::pb {

void IntMap::adoptSorted(RowBuffer&& data) {
  const std::size_t w = width();
  PIPOLY_ASSERT(w > 0 || data.empty());
  PIPOLY_ASSERT(rows::isSortedUnique(data, w));
  if (data.empty()) {
    rows_.reset();
    count_ = 0;
    return;
  }
  count_ = data.size() / w;
  rows_ = std::make_shared<const RowBuffer>(std::move(data));
}

void IntMap::requireSameSpaces(const IntMap& other, const char* what) const {
  PIPOLY_CHECK_MSG(in_ == other.in_ && out_ == other.out_, what);
}

IntMap::IntMap(Space in, Space out, std::vector<Pair> pairs)
    : in_(std::move(in)), out_(std::move(out)) {
  const std::size_t inA = inArity(), outA = outArity();
  for (const Pair& p : pairs) {
    PIPOLY_CHECK_MSG(p.first.size() == inA,
                     "map pair domain arity mismatch in " + in_.name());
    PIPOLY_CHECK_MSG(p.second.size() == outA,
                     "map pair range arity mismatch in " + out_.name());
  }
  if (inA + outA == 0) {
    count_ = pairs.empty() ? 0 : 1;
    return;
  }
  RowBuffer data;
  data.reserve(pairs.size() * (inA + outA));
  for (const Pair& p : pairs) {
    rows::append(data, p.first.data(), inA);
    rows::append(data, p.second.data(), outA);
  }
  // Pair order (first, then second) is exactly row order on (in ++ out).
  rows::sortUnique(data, inA + outA);
  adoptSorted(std::move(data));
}

IntMap IntMap::identity(const IntTupleSet& set) {
  IntMap m(set.space(), set.space());
  const std::size_t a = set.arity();
  if (a == 0) {
    m.count_ = set.size();
    return m;
  }
  const RowBuffer& src = set.rowData();
  RowBuffer data;
  data.reserve(src.size() * 2);
  for (std::size_t i = 0; i < set.size(); ++i) {
    rows::append(data, &src[i * a], a);
    rows::append(data, &src[i * a], a);
  }
  m.adoptSorted(std::move(data)); // set order is already (x, x) order
  return m;
}

IntMap IntMap::lexLeSet(const IntTupleSet& from, const IntTupleSet& bounds) {
  PIPOLY_CHECK(from.space() == bounds.space());
  IntMap m(from.space(), from.space());
  const std::size_t a = from.space().arity();
  if (a == 0) {
    m.count_ = (from.size() > 0 && bounds.size() > 0) ? 1 : 0;
    return m;
  }
  const RowBuffer& fr = from.rowData();
  const RowBuffer& bd = bounds.rowData();
  const std::size_t nf = from.size(), nb = bounds.size();
  RowBuffer data;
  // Each source point pairs with the sorted suffix of bounds at or above
  // it, so emission order is already (in, out) order; as `in` grows the
  // suffix start only moves forward, hence the running lower bound.
  std::size_t lo = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    const Value* x = &fr[i * a];
    lo = rows::lowerBound(bd.data(), nb, a, lo, x, a);
    for (std::size_t j = lo; j < nb; ++j) {
      rows::append(data, x, a);
      rows::append(data, &bd[j * a], a);
    }
  }
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::lexGeContains(const IntTupleSet& set) {
  IntMap m(set.space(), set.space());
  const std::size_t a = set.arity();
  if (a == 0) {
    m.count_ = set.size();
    return m;
  }
  const RowBuffer& src = set.rowData();
  const std::size_t n = set.size();
  RowBuffer data;
  data.reserve(n * (n + 1) * a);
  // x at sorted index i dominates exactly the prefix [0, i]; emitting the
  // prefix per x yields (in, out)-sorted rows directly.
  for (std::size_t i = 0; i < n; ++i) {
    const Value* x = &src[i * a];
    for (std::size_t j = 0; j <= i; ++j) {
      rows::append(data, x, a);
      rows::append(data, &src[j * a], a);
    }
  }
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::fromSortedRows(Space in, Space out, RowBuffer rowsData) {
  IntMap m(std::move(in), std::move(out));
  PIPOLY_CHECK_MSG(m.width() > 0 || rowsData.empty(),
                   "fromSortedRows needs a non-zero width");
  PIPOLY_CHECK(m.width() == 0 || rowsData.size() % m.width() == 0);
  m.adoptSorted(std::move(rowsData));
  return m;
}

IntMap IntMap::fromRows(Space in, Space out, RowBuffer rowsData) {
  IntMap m(std::move(in), std::move(out));
  PIPOLY_CHECK_MSG(m.width() > 0 || rowsData.empty(),
                   "fromRows needs a non-zero width");
  PIPOLY_CHECK(m.width() == 0 || rowsData.size() % m.width() == 0);
  rows::sortUnique(rowsData, m.width());
  m.adoptSorted(std::move(rowsData));
  return m;
}

bool IntMap::contains(const Tuple& in, const Tuple& out) const {
  if (in.size() != inArity() || out.size() != outArity() || empty())
    return false;
  const std::size_t w = width();
  if (w == 0)
    return true; // non-empty arity-0 relation holds exactly () -> ()
  RowBuffer key;
  key.reserve(w);
  rows::append(key, in.data(), in.size());
  rows::append(key, out.data(), out.size());
  const RowBuffer& data = *rows_;
  const std::size_t i =
      rows::lowerBound(data.data(), count_, w, 0, key.data(), w);
  return i < count_ && rows::equal(&data[i * w], key.data(), w);
}

IntMap IntMap::inverse() const {
  IntMap m(out_, in_);
  const std::size_t inA = inArity(), outA = outArity();
  if (inA + outA == 0) {
    m.count_ = count_;
    return m;
  }
  if (empty())
    return m;
  const RowBuffer& src = *rows_;
  RowBuffer data;
  data.reserve(src.size());
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &src[i * (inA + outA)];
    rows::append(data, row + inA, outA);
    rows::append(data, row, inA);
  }
  rows::sortUnique(data, inA + outA);
  m.adoptSorted(std::move(data));
  return m;
}

IntTupleSet IntMap::domain() const {
  const std::size_t inA = inArity(), w = width();
  if (inA == 0)
    return IntTupleSet(in_, std::vector<Tuple>(count_ > 0 ? 1 : 0));
  // Rows are sorted by (in, out): distinct in-prefixes appear as sorted
  // contiguous groups, so one dedup pass emits the domain in order.
  RowBuffer data;
  data.reserve(count_ * inA);
  const Value* prev = nullptr;
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    if (prev == nullptr || !rows::equal(prev, row, inA)) {
      rows::append(data, row, inA);
      prev = row;
    }
  }
  return IntTupleSet::fromSortedRows(in_, std::move(data));
}

IntTupleSet IntMap::range() const {
  const std::size_t inA = inArity(), outA = outArity(), w = width();
  if (outA == 0)
    return IntTupleSet(out_, std::vector<Tuple>(count_ > 0 ? 1 : 0));
  RowBuffer data;
  data.reserve(count_ * outA);
  for (std::size_t i = 0; i < count_; ++i)
    rows::append(data, &(*rows_)[i * w + inA], outA);
  return IntTupleSet::fromRows(out_, std::move(data));
}

IntMap IntMap::compose(const IntMap& inner) const {
  PIPOLY_CHECK_MSG(inner.out_ == in_,
                   "composition space mismatch: inner range " +
                       inner.out_.name() + " vs outer domain " + in_.name());
  const std::size_t aA = inner.inArity(), bA = inner.outArity();
  const std::size_t cA = outArity(), wIn = aA + bA, wOut = bA + cA;
  if (aA + cA == 0) {
    // Arity-0 result: non-empty iff some inner image is an outer input.
    IntMap m(inner.in_, out_);
    for (std::size_t i = 0; i < inner.count_ && m.count_ == 0; ++i) {
      const Value* b = wIn == 0 ? nullptr : &(*inner.rows_)[i * wIn + aA];
      if (empty())
        break;
      if (bA == 0) {
        m.count_ = 1;
        continue;
      }
      const std::size_t lo =
          rows::lowerBound(rows_->data(), count_, wOut, 0, b, bA);
      if (lo < count_ && rows::equal(&(*rows_)[lo * wOut], b, bA))
        m.count_ = 1;
    }
    return m;
  }
  if (wIn == 0) {
    // inner is (at most) the single () -> () pair and bA == 0 matches
    // every outer row: the result is this map's rows re-labelled.
    IntMap m(inner.in_, out_);
    if (inner.count_ > 0) {
      m.rows_ = rows_;
      m.count_ = count_;
    }
    return m;
  }
  // Look up each inner image among this map's inputs. Blocking and access
  // maps are usually monotone in their images, so consecutive lookups land
  // at or after the previous hit: keep a hint index and only search the
  // tail past it, falling back to the head range when the key order
  // regresses. Monotone inners thus compose in O(m + n).
  RowBuffer data;
  data.reserve(inner.count_ * (aA + cA));
  const Value* outerBase = empty() ? nullptr : rows_->data();
  std::size_t hint = 0;
  for (std::size_t i = 0; i < inner.count_; ++i) {
    const Value* abRow = &(*inner.rows_)[i * wIn];
    const Value* b = abRow + aA;
    std::size_t lo;
    if (hint >= count_ || rows::compare(outerBase + hint * wOut, b, bA) >= 0)
      lo = rows::lowerBound(outerBase, hint, wOut, 0, b, bA);
    else
      lo = rows::lowerBound(outerBase, count_, wOut, hint, b, bA);
    hint = lo;
    for (std::size_t j = lo;
         j < count_ && rows::equal(outerBase + j * wOut, b, bA); ++j) {
      rows::append(data, abRow, aA);
      rows::append(data, outerBase + j * wOut + bA, cA);
    }
  }
  // Single-valued monotone composition emits in order (the common case for
  // blocking maps); fromRows detects that in one pass and skips the sort.
  return fromRows(inner.in_, out_, std::move(data));
}

IntTupleSet IntMap::apply(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == in_);
  const std::size_t inA = inArity(), outA = outArity(), w = width();
  if (set.empty() || empty())
    return IntTupleSet(out_);
  if (inA == 0) {
    // The whole range is the image of the single empty input.
    return range();
  }
  if (outA == 0) {
    // Any pair whose input lies in `set` puts the empty tuple in the image.
    for (std::size_t i = 0; i < count_; ++i)
      if (set.contains(TupleView(&(*rows_)[i * w], inA)))
        return IntTupleSet(out_, std::vector<Tuple>(1));
    return IntTupleSet(out_);
  }
  RowBuffer data;
  const RowBuffer& pts = set.rowData();
  // Both sides are sorted by the input tuple: walk the map once, advancing
  // a running lower bound per point.
  std::size_t lo = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const Value* x = &pts[i * inA];
    lo = rows::lowerBound(rows_->data(), count_, w, lo, x, inA);
    for (std::size_t j = lo;
         j < count_ && rows::equal(&(*rows_)[j * w], x, inA); ++j)
      rows::append(data, &(*rows_)[j * w + inA], outA);
  }
  return IntTupleSet::fromRows(out_, std::move(data));
}

std::vector<Tuple> IntMap::imagesOf(const Tuple& in) const {
  std::vector<Tuple> out;
  if (in.size() != inArity() || empty())
    return out;
  const std::size_t inA = inArity(), outA = outArity(), w = width();
  if (w == 0) {
    out.emplace_back();
    return out;
  }
  const std::size_t lo =
      rows::lowerBound(rows_->data(), count_, w, 0, in.data(), inA);
  for (std::size_t j = lo;
       j < count_ && rows::equal(&(*rows_)[j * w], in.data(), inA); ++j)
    out.emplace_back(&(*rows_)[j * w + inA], outA);
  return out;
}

std::optional<Tuple> IntMap::singleImageOf(const Tuple& in) const {
  std::vector<Tuple> imgs = imagesOf(in);
  if (imgs.empty())
    return std::nullopt;
  PIPOLY_CHECK_MSG(imgs.size() == 1, "map is not single-valued at " +
                                         in.toString() + " in space " +
                                         in_.name());
  return imgs.front();
}

IntMap IntMap::lexmaxPerDomain() const {
  // A single-valued map is its own per-domain extremum; share the buffer.
  if (isSingleValued())
    return *this;
  const std::size_t inA = inArity(), w = width();
  // Rows are sorted by (in, out): the last row of each input group carries
  // the lexicographically largest output.
  RowBuffer data;
  data.reserve(count_ * w);
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    if (i + 1 < count_ && rows::equal(row, &(*rows_)[(i + 1) * w], inA))
      continue;
    rows::append(data, row, w);
  }
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::lexminPerDomain() const {
  if (isSingleValued())
    return *this;
  const std::size_t inA = inArity(), w = width();
  // The first row of each input group carries the smallest output.
  RowBuffer data;
  data.reserve(count_ * w);
  const Value* prev = nullptr;
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    if (prev != nullptr && rows::equal(prev, row, inA))
      continue;
    rows::append(data, row, w);
    prev = row;
  }
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::restrictDomain(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == in_);
  const std::size_t inA = inArity(), w = width();
  if (empty())
    return *this;
  if (inA == 0)
    return set.empty() ? IntMap(in_, out_) : *this;
  RowBuffer data;
  data.reserve(rows_->size());
  // Merge walk: both sides are sorted by the input tuple, so one running
  // index over the set suffices. Keeping a subsequence preserves order.
  const RowBuffer& pts = set.rowData();
  const std::size_t n = set.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    while (j < n && rows::compare(&pts[j * inA], row, inA) < 0)
      ++j;
    if (j < n && rows::equal(&pts[j * inA], row, inA))
      rows::append(data, row, w);
  }
  if (data.size() == rows_->size())
    return *this; // kept everything: share
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::restrictRange(const IntTupleSet& set) const {
  PIPOLY_CHECK(set.space() == out_);
  const std::size_t inA = inArity(), outA = outArity(), w = width();
  if (empty())
    return *this;
  if (outA == 0)
    return set.empty() ? IntMap(in_, out_) : *this;
  RowBuffer data;
  data.reserve(rows_->size());
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    if (set.contains(TupleView(row + inA, outA)))
      rows::append(data, row, w);
  }
  if (data.size() == rows_->size())
    return *this; // kept everything: share
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::unite(const IntMap& other) const {
  requireSameSpaces(other, "union of maps across different spaces");
  if (empty())
    return other;
  if (other.empty() || rows_ == other.rows_)
    return *this;
  const std::size_t w = width();
  if (w == 0) {
    IntMap m(in_, out_);
    m.count_ = 1;
    return m;
  }
  const RowBuffer& a = *rows_;
  const RowBuffer& b = *other.rows_;
  IntMap m(in_, out_);
  // Disjoint-range fast path: accumulating unions (producer relations,
  // dependence sweeps) typically append strictly later pair ranges.
  if (rows::less(&a[a.size() - w], b.data(), w)) {
    RowBuffer data;
    data.reserve(a.size() + b.size());
    data.insert(data.end(), a.begin(), a.end());
    data.insert(data.end(), b.begin(), b.end());
    m.adoptSorted(std::move(data));
    return m;
  }
  if (rows::less(&b[b.size() - w], a.data(), w)) {
    RowBuffer data;
    data.reserve(a.size() + b.size());
    data.insert(data.end(), b.begin(), b.end());
    data.insert(data.end(), a.begin(), a.end());
    m.adoptSorted(std::move(data));
    return m;
  }
  m.adoptSorted(rows::unionRows(a, b, w));
  return m;
}

IntMap IntMap::intersect(const IntMap& other) const {
  requireSameSpaces(other, "intersection of maps across different spaces");
  if (rows_ == other.rows_ && count_ == other.count_)
    return *this;
  if (empty() || other.empty())
    return IntMap(in_, out_);
  const std::size_t w = width();
  if (w == 0) {
    IntMap m(in_, out_);
    m.count_ = 1;
    return m;
  }
  RowBuffer data = rows::intersectRows(*rows_, *other.rows_, w);
  if (data.size() == rows_->size())
    return *this; // everything survived: share
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

IntMap IntMap::subtract(const IntMap& other) const {
  requireSameSpaces(other, "difference of maps across different spaces");
  if (empty() || other.empty())
    return *this;
  if (rows_ == other.rows_ && count_ == other.count_)
    return IntMap(in_, out_);
  const std::size_t w = width();
  if (w == 0)
    return IntMap(in_, out_); // both non-empty: the one pair is removed
  RowBuffer data = rows::differenceRows(*rows_, *other.rows_, w);
  if (data.size() == rows_->size())
    return *this; // nothing removed: share
  IntMap m(in_, out_);
  m.adoptSorted(std::move(data));
  return m;
}

bool IntMap::isSubsetOf(const IntMap& other) const {
  requireSameSpaces(other, "subset test across different spaces");
  if (empty() || (rows_ == other.rows_ && count_ == other.count_))
    return true;
  if (count_ > other.count_)
    return false;
  const std::size_t w = width();
  if (w == 0)
    return other.count_ > 0;
  return rows::includesRows(*other.rows_, *rows_, w);
}

bool IntMap::isInjective() const {
  const std::size_t inA = inArity(), outA = outArity(), w = width();
  (void)inA;
  if (count_ < 2)
    return true;
  if (outA == 0)
    return false; // two or more inputs all map to the empty tuple
  RowBuffer outs;
  outs.reserve(count_ * outA);
  for (std::size_t i = 0; i < count_; ++i)
    rows::append(outs, &(*rows_)[i * w + inArity()], outA);
  // Pairs are unique, so a duplicate output can only come from two
  // distinct inputs sharing it.
  rows::sortUnique(outs, outA);
  return outs.size() == count_ * outA;
}

bool IntMap::isSingleValued() const {
  const std::size_t inA = inArity(), w = width();
  if (count_ < 2)
    return true;
  if (inA == 0)
    return false; // two or more outputs for the single empty input
  for (std::size_t i = 1; i < count_; ++i)
    if (rows::equal(&(*rows_)[(i - 1) * w], &(*rows_)[i * w], inA))
      return false;
  return true;
}

IntTupleSet IntMap::deltas() const {
  PIPOLY_CHECK_MSG(in_.arity() == out_.arity(),
                   "deltas need equal-arity domain and range");
  const std::size_t a = inArity(), w = width();
  const Space deltaSpace("delta", a);
  if (a == 0)
    return IntTupleSet(deltaSpace, std::vector<Tuple>(count_ > 0 ? 1 : 0));
  RowBuffer data;
  data.reserve(count_ * a);
  for (std::size_t i = 0; i < count_; ++i) {
    const Value* row = &(*rows_)[i * w];
    for (std::size_t k = 0; k < a; ++k)
      data.push_back(row[a + k] - row[k]);
  }
  return IntTupleSet::fromRows(deltaSpace, std::move(data));
}

IntMap IntMap::transitiveClosure() const {
  PIPOLY_CHECK_MSG(in_ == out_,
                   "transitive closure needs a relation on one space");
  // DFS with memoisation; colours detect cycles. Closure construction is
  // inherently node-at-a-time, so this stays on owning Tuples.
  enum class Color { White, Grey, Black };
  std::map<Tuple, Color> color;
  std::map<Tuple, std::vector<Tuple>> reach; // x -> all transitively reached

  std::function<const std::vector<Tuple>&(const Tuple&)> visit =
      [&](const Tuple& x) -> const std::vector<Tuple>& {
    auto [it, fresh] = color.try_emplace(x, Color::White);
    PIPOLY_CHECK_MSG(it->second != Color::Grey,
                     "transitive closure of a cyclic relation");
    if (it->second == Color::Black)
      return reach[x];
    it->second = Color::Grey;
    std::vector<Tuple> acc;
    for (const Tuple& y : imagesOf(x)) {
      acc.push_back(y);
      const std::vector<Tuple>& more = visit(y);
      acc.insert(acc.end(), more.begin(), more.end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    color[x] = Color::Black;
    return reach[x] = std::move(acc);
  };

  std::vector<Pair> result;
  const IntTupleSet dom = domain();
  for (TupleView xv : dom.points()) {
    const Tuple x(xv);
    for (const Tuple& y : visit(x))
      result.emplace_back(x, y);
  }
  return IntMap(in_, out_, std::move(result));
}

std::string IntMap::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMap& m) {
  os << "{ ";
  bool first = true;
  for (const auto& [in, out] : m.pairs()) {
    if (!first)
      os << "; ";
    os << m.domainSpace().name() << in << " -> " << m.rangeSpace().name()
       << out;
    first = false;
  }
  return os << " }";
}

} // namespace pipoly::pb
