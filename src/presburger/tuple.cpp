#include "presburger/tuple.hpp"

#include <sstream>

namespace pipoly::pb {

namespace {

template <typename T> std::string renderTuple(const T& t) {
  std::ostringstream os;
  os << t;
  return os.str();
}

template <typename T> std::ostream& printTuple(std::ostream& os, const T& t) {
  os << '[';
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i)
      os << ", ";
    os << t[i];
  }
  return os << ']';
}

} // namespace

std::string Tuple::toString() const { return renderTuple(*this); }
std::string TupleView::toString() const { return renderTuple(*this); }

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return printTuple(os, t);
}

std::ostream& operator<<(std::ostream& os, const TupleView& t) {
  return printTuple(os, t);
}

} // namespace pipoly::pb
