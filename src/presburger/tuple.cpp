#include "presburger/tuple.hpp"

#include <sstream>

namespace pipoly::pb {

std::string Tuple::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  os << '[';
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i)
      os << ", ";
    os << t[i];
  }
  return os << ']';
}

} // namespace pipoly::pb
