#pragma once

// Affine constraints: `expr >= 0` (inequality) or `expr == 0` (equality).

#include "presburger/affine.hpp"

#include <string>

namespace pipoly::pb {

class Constraint {
public:
  enum class Kind { GE, EQ };

  Constraint(AffineExpr expr, Kind kind)
      : expr_(std::move(expr)), kind_(kind) {}

  /// expr >= 0
  static Constraint ge(AffineExpr expr) {
    return Constraint(std::move(expr), Kind::GE);
  }
  /// expr == 0
  static Constraint eq(AffineExpr expr) {
    return Constraint(std::move(expr), Kind::EQ);
  }
  /// lhs >= rhs
  static Constraint ge(const AffineExpr& lhs, const AffineExpr& rhs) {
    return ge(lhs - rhs);
  }
  /// lhs <= rhs
  static Constraint le(const AffineExpr& lhs, const AffineExpr& rhs) {
    return ge(rhs - lhs);
  }
  /// lhs < rhs  (integer: lhs <= rhs - 1)
  static Constraint lt(const AffineExpr& lhs, const AffineExpr& rhs) {
    return ge(rhs - lhs - 1);
  }

  const AffineExpr& expr() const { return expr_; }
  Kind kind() const { return kind_; }
  bool isEquality() const { return kind_ == Kind::EQ; }

  bool isSatisfied(const Tuple& point) const {
    Value v = expr_.evaluate(point);
    return kind_ == Kind::EQ ? v == 0 : v >= 0;
  }

  std::string toString(const std::vector<std::string>& dimNames = {}) const {
    return expr_.toString(dimNames) + (isEquality() ? " = 0" : " >= 0");
  }

  friend bool operator==(const Constraint&, const Constraint&) = default;

private:
  AffineExpr expr_;
  Kind kind_;
};

} // namespace pipoly::pb
