#pragma once

// An integer polyhedron: the set of integer points satisfying a conjunction
// of affine constraints over n dimensions. Supports Fourier–Motzkin
// projection, per-dimension bound extraction, and exact integer-point
// enumeration (domains must be bounded, which holds for every instantiated
// SCoP the library processes).

#include "presburger/constraint.hpp"
#include "presburger/tuple.hpp"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pipoly::pb {

struct DimBounds {
  Value lower;
  Value upper; // inclusive
};

class Polyhedron {
public:
  explicit Polyhedron(std::size_t numDims) : numDims_(numDims) {}
  Polyhedron(std::size_t numDims, std::vector<Constraint> constraints);

  std::size_t numDims() const { return numDims_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  Polyhedron& add(Constraint c);

  bool contains(const Tuple& point) const;

  /// Fourier–Motzkin elimination of the *last* dimension. The result is a
  /// rational projection; for the way the library uses it (computing outer
  /// enumeration bounds that are then filtered exactly) this is sufficient
  /// and sound: the projection is a superset of the true integer shadow.
  Polyhedron projectOutLastDim() const;

  /// Bounds of dimension `dim` given fixed values for dimensions 0..dim-1.
  /// Uses only constraints whose support is within 0..dim, so call it on a
  /// system where later dimensions have been projected out.
  /// Returns nullopt when the slice is empty; throws if unbounded.
  std::optional<DimBounds> boundsOfDim(std::size_t dim,
                                       const Tuple& prefix) const;

  /// Enumerates all integer points in lexicographic order.
  std::vector<Tuple> enumerate() const;

  /// Visits all integer points in lexicographic order without materialising
  /// them; `visit` may return false to stop early.
  void forEachPoint(const std::function<bool(const Tuple&)>& visit) const;

  bool isEmpty() const;

  /// Outer bounding box (per-dimension bounds ignoring coupling).
  /// Throws if any dimension is unbounded.
  std::vector<DimBounds> boundingBox() const;

  std::string toString(const std::vector<std::string>& dimNames = {}) const;

private:
  /// prefixSystems()[k] contains only constraints over dims 0..k (for k =
  /// numDims-1 that is the original system; lower k are FM projections).
  const std::vector<Polyhedron>& prefixSystems() const;

  std::size_t numDims_;
  std::vector<Constraint> constraints_;
  mutable std::vector<Polyhedron> prefixCache_;
};

} // namespace pipoly::pb
