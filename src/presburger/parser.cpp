#include "presburger/parser.hpp"

#include "presburger/constraint.hpp"
#include "presburger/polyhedron.hpp"
#include "support/assert.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace pipoly::pb {

namespace {

struct Token {
  enum class Kind {
    Ident,
    Int,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Colon,
    Arrow,
    Plus,
    Minus,
    Star,
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
    And,
    End,
  };
  Kind kind;
  std::string text;
  Value value = 0;
};

class Lexer {
public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  bool accept(Token::Kind k) {
    if (current_.kind != k)
      return false;
    advance();
    return true;
  }

  Token expect(Token::Kind k, const char* what) {
    PIPOLY_CHECK_MSG(current_.kind == k, std::string("parse error: expected ") +
                                             what + " near '" +
                                             current_.text + "'");
    return take();
  }

private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::End, "<end>"};
      return;
    }
    const char c = text_[pos_];
    auto single = [&](Token::Kind k) {
      current_ = {k, std::string(1, c)};
      ++pos_;
    };
    switch (c) {
    case '{':
      return single(Token::Kind::LBrace);
    case '}':
      return single(Token::Kind::RBrace);
    case '[':
      return single(Token::Kind::LBracket);
    case ']':
      return single(Token::Kind::RBracket);
    case '(':
      return single(Token::Kind::LParen);
    case ')':
      return single(Token::Kind::RParen);
    case ',':
      return single(Token::Kind::Comma);
    case ':':
      return single(Token::Kind::Colon);
    case '+':
      return single(Token::Kind::Plus);
    case '*':
      return single(Token::Kind::Star);
    case '-':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        current_ = {Token::Kind::Arrow, "->"};
        pos_ += 2;
        return;
      }
      return single(Token::Kind::Minus);
    case '<':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        current_ = {Token::Kind::Le, "<="};
        pos_ += 2;
        return;
      }
      return single(Token::Kind::Lt);
    case '>':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        current_ = {Token::Kind::Ge, ">="};
        pos_ += 2;
        return;
      }
      return single(Token::Kind::Gt);
    case '=':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=')
        ++pos_;
      current_ = {Token::Kind::Eq, "="};
      ++pos_;
      return;
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      std::string num(text_.substr(start, pos_ - start));
      current_ = {Token::Kind::Int, num, std::stoll(num)};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      std::string word(text_.substr(start, pos_ - start));
      if (word == "and")
        current_ = {Token::Kind::And, word};
      else
        current_ = {Token::Kind::Ident, word};
      return;
    }
    PIPOLY_UNREACHABLE(std::string("parse error: unexpected character '") + c +
                       "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

struct TupleDecl {
  std::string spaceName;
  std::vector<std::string> vars;
};

class Parser {
public:
  Parser(std::string_view text, const ParamBindings& params)
      : lexer_(text), params_(params) {}

  /// Parses either a set or a map body; `isMap` selects the shape.
  void parseBody(bool isMap) {
    lexer_.expect(Token::Kind::LBrace, "'{'");
    in_ = parseTupleDecl("S");
    if (isMap) {
      lexer_.expect(Token::Kind::Arrow, "'->'");
      out_ = parseTupleDecl("T");
    }
    bindVars(isMap);
    if (lexer_.accept(Token::Kind::Colon))
      parseCondition();
    lexer_.expect(Token::Kind::RBrace, "'}'");
    lexer_.expect(Token::Kind::End, "end of input");
  }

  IntTupleSet buildSet() const {
    Polyhedron poly(numDims_, constraints_);
    return IntTupleSet::fromPolyhedron(Space(in_.spaceName, in_.vars.size()),
                                       poly);
  }

  IntMap buildMap() const {
    Polyhedron poly(numDims_, constraints_);
    const std::size_t inArity = in_.vars.size();
    const std::size_t outArity = out_.vars.size();
    std::vector<IntMap::Pair> pairs;
    for (const Tuple& pt : poly.enumerate())
      pairs.emplace_back(pt.slice(0, inArity),
                         pt.slice(inArity, inArity + outArity));
    return IntMap(Space(in_.spaceName, inArity), Space(out_.spaceName, outArity),
                  std::move(pairs));
  }

private:
  TupleDecl parseTupleDecl(const char* defaultName) {
    TupleDecl decl;
    decl.spaceName = defaultName;
    if (lexer_.peek().kind == Token::Kind::Ident)
      decl.spaceName = lexer_.take().text;
    lexer_.expect(Token::Kind::LBracket, "'['");
    if (lexer_.peek().kind != Token::Kind::RBracket) {
      decl.vars.push_back(
          lexer_.expect(Token::Kind::Ident, "tuple variable").text);
      while (lexer_.accept(Token::Kind::Comma))
        decl.vars.push_back(
            lexer_.expect(Token::Kind::Ident, "tuple variable").text);
    }
    lexer_.expect(Token::Kind::RBracket, "']'");
    return decl;
  }

  void bindVars(bool isMap) {
    numDims_ = in_.vars.size() + (isMap ? out_.vars.size() : 0);
    std::size_t idx = 0;
    for (const std::string& v : in_.vars)
      varIndex_[v] = idx++;
    if (isMap)
      for (const std::string& v : out_.vars) {
        PIPOLY_CHECK_MSG(!varIndex_.count(v),
                         "duplicate tuple variable '" + v + "'");
        varIndex_[v] = idx++;
      }
  }

  void parseCondition() {
    parseChainedRelation();
    while (lexer_.accept(Token::Kind::And))
      parseChainedRelation();
  }

  void parseChainedRelation() {
    AffineExpr lhs = parseExpr();
    bool any = false;
    while (true) {
      Token::Kind k = lexer_.peek().kind;
      if (k != Token::Kind::Le && k != Token::Kind::Lt &&
          k != Token::Kind::Ge && k != Token::Kind::Gt &&
          k != Token::Kind::Eq)
        break;
      lexer_.take();
      AffineExpr rhs = parseExpr();
      switch (k) {
      case Token::Kind::Le:
        constraints_.push_back(Constraint::le(lhs, rhs));
        break;
      case Token::Kind::Lt:
        constraints_.push_back(Constraint::lt(lhs, rhs));
        break;
      case Token::Kind::Ge:
        constraints_.push_back(Constraint::le(rhs, lhs));
        break;
      case Token::Kind::Gt:
        constraints_.push_back(Constraint::lt(rhs, lhs));
        break;
      case Token::Kind::Eq:
        constraints_.push_back(Constraint::eq(lhs - rhs));
        break;
      default:
        PIPOLY_UNREACHABLE("relation");
      }
      lhs = std::move(rhs);
      any = true;
    }
    PIPOLY_CHECK_MSG(any, "expected a comparison operator in condition");
  }

  AffineExpr parseExpr() {
    AffineExpr acc = parseTerm();
    while (true) {
      if (lexer_.accept(Token::Kind::Plus))
        acc = acc + parseTerm();
      else if (lexer_.accept(Token::Kind::Minus))
        acc = acc - parseTerm();
      else
        return acc;
    }
  }

  AffineExpr parseTerm() {
    if (lexer_.accept(Token::Kind::Minus))
      return -parseTerm();
    if (lexer_.peek().kind == Token::Kind::LParen) {
      lexer_.take();
      AffineExpr e = parseExpr();
      lexer_.expect(Token::Kind::RParen, "')'");
      return e;
    }
    if (lexer_.peek().kind == Token::Kind::Int) {
      Value v = lexer_.take().value;
      // Optional multiplication: 2*i or 2i or 2*N.
      bool star = lexer_.accept(Token::Kind::Star);
      if (star || lexer_.peek().kind == Token::Kind::Ident) {
        AffineExpr var = parseAtomVar();
        return v * var;
      }
      return AffineExpr::constant(numDims_, v);
    }
    return parseAtomVar();
  }

  AffineExpr parseAtomVar() {
    Token t = lexer_.expect(Token::Kind::Ident, "variable or parameter");
    auto it = varIndex_.find(t.text);
    if (it != varIndex_.end())
      return AffineExpr::dim(numDims_, it->second);
    auto pit = params_.find(t.text);
    PIPOLY_CHECK_MSG(pit != params_.end(),
                     "unknown identifier '" + t.text +
                         "' (not a tuple variable, no parameter binding)");
    return AffineExpr::constant(numDims_, pit->second);
  }

  Lexer lexer_;
  const ParamBindings& params_;
  TupleDecl in_, out_;
  std::size_t numDims_ = 0;
  std::map<std::string, std::size_t> varIndex_;
  std::vector<Constraint> constraints_;
};

} // namespace

IntTupleSet parseSet(std::string_view text, const ParamBindings& params) {
  Parser p(text, params);
  p.parseBody(/*isMap=*/false);
  return p.buildSet();
}

IntMap parseMap(std::string_view text, const ParamBindings& params) {
  Parser p(text, params);
  p.parseBody(/*isMap=*/true);
  return p.buildMap();
}

} // namespace pipoly::pb
