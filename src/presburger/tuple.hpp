#pragma once

// Integer tuples: the points of the explicit integer sets and maps.
// Tuples compare lexicographically, which is the order every algorithm in
// the paper (lexmin / lexmax / lexleset) is defined over.
//
// Tuple owns its coordinates with a small-buffer representation: arities
// up to kInlineCapacity (4, which covers every kernel in the paper — the
// deepest nests are depth 2 and map pairs concatenate to 4) live inline
// with no heap allocation; larger arities spill to the heap. TupleView is
// the non-owning counterpart: a (pointer, size) window into a flat
// row-major point buffer, used by IntTupleSet / IntMap to iterate points
// without materialising Tuples. A TupleView converts implicitly to Tuple
// (a cheap inline copy for arity <= 4), so call sites that bind
// `const Tuple&` keep working.

#include "support/assert.hpp"

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pipoly::pb {

using Value = std::int64_t;

class TupleView;

/// A point in Z^n. Comparison is lexicographic.
class Tuple {
public:
  /// Arities up to this bound are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 4;

  Tuple() noexcept : size_(0) {}
  Tuple(std::initializer_list<Value> values)
      : Tuple(values.begin(), values.size()) {}
  explicit Tuple(const std::vector<Value>& values)
      : Tuple(values.data(), values.size()) {}
  Tuple(const Value* data, std::size_t size) : size_(size) {
    Value* dst = allocate();
    std::copy_n(data, size, dst);
  }
  /// The zero tuple of a given arity.
  static Tuple zeros(std::size_t arity) {
    Tuple t;
    t.size_ = arity;
    Value* dst = t.allocate();
    std::fill_n(dst, arity, Value{0});
    return t;
  }

  inline Tuple(const TupleView& view); // implicit: materialise a view

  Tuple(const Tuple& other) : Tuple(other.data(), other.size_) {}
  Tuple(Tuple&& other) noexcept : size_(other.size_) {
    if (isInline()) {
      std::copy_n(other.storage_.inlineVals, size_, storage_.inlineVals);
    } else {
      storage_.heap = other.storage_.heap;
      other.size_ = 0;
    }
  }
  Tuple& operator=(const Tuple& other) {
    if (this != &other)
      assign(other.data(), other.size_);
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this == &other)
      return *this;
    release();
    size_ = other.size_;
    if (isInline()) {
      std::copy_n(other.storage_.inlineVals, size_, storage_.inlineVals);
    } else {
      storage_.heap = other.storage_.heap;
      other.size_ = 0;
    }
    return *this;
  }
  ~Tuple() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value operator[](std::size_t i) const {
    PIPOLY_ASSERT(i < size_);
    return data()[i];
  }
  Value& operator[](std::size_t i) {
    PIPOLY_ASSERT(i < size_);
    return data()[i];
  }

  const Value* data() const {
    return isInline() ? storage_.inlineVals : storage_.heap;
  }
  Value* data() { return isInline() ? storage_.inlineVals : storage_.heap; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  friend auto operator<=>(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  /// Concatenation, used to couple map pairs into single points.
  friend Tuple concat(const Tuple& a, const Tuple& b) {
    Tuple t;
    t.size_ = a.size_ + b.size_;
    Value* dst = t.allocate();
    std::copy_n(a.data(), a.size_, dst);
    std::copy_n(b.data(), b.size_, dst + a.size_);
    return t;
  }

  /// Sub-tuple [begin, end).
  Tuple slice(std::size_t begin, std::size_t end) const {
    PIPOLY_ASSERT(begin <= end && end <= size_);
    return Tuple(data() + begin, end - begin);
  }

  std::string toString() const;

private:
  bool isInline() const { return size_ <= kInlineCapacity; }
  /// Prepares storage for the current size_ and returns the write pointer.
  Value* allocate() {
    if (isInline())
      return storage_.inlineVals;
    storage_.heap = new Value[size_];
    return storage_.heap;
  }
  void release() {
    if (!isInline())
      delete[] storage_.heap;
  }
  void assign(const Value* data, std::size_t size) {
    if (size == size_ || (size <= kInlineCapacity && isInline())) {
      size_ = size;
      std::copy_n(data, size, this->data());
      return;
    }
    release();
    size_ = size;
    Value* dst = allocate();
    std::copy_n(data, size, dst);
  }

  std::size_t size_;
  union {
    Value inlineVals[kInlineCapacity];
    Value* heap;
  } storage_{}; // value-init: a never-filled tuple still has defined bytes
};

/// A non-owning view of one point: a (pointer, size) window into a flat
/// row-major buffer. The underlying storage must outlive the view (the
/// row ranges returned by IntTupleSet::points() / IntMap::pairs() keep
/// their buffer alive, so views obtained from them are safe for the
/// lifetime of the range).
class TupleView {
public:
  TupleView() = default;
  TupleView(const Value* data, std::size_t size) : data_(data), size_(size) {}
  explicit TupleView(const Tuple& t) : data_(t.data()), size_(t.size()) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](std::size_t i) const {
    PIPOLY_ASSERT(i < size_);
    return data_[i];
  }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  friend auto operator<=>(const TupleView& a, const TupleView& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }
  friend bool operator==(const TupleView& a, const TupleView& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  // Mixed comparisons (the reversed directions are synthesised).
  friend auto operator<=>(const TupleView& a, const Tuple& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }
  friend bool operator==(const TupleView& a, const Tuple& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

  std::string toString() const;

private:
  const Value* data_ = nullptr;
  std::size_t size_ = 0;
};

inline Tuple::Tuple(const TupleView& view) : Tuple(view.data(), view.size()) {}

/// A non-owning view of one map pair: domain and range windows into a
/// flat row (the range window directly follows the domain window).
/// Converts implicitly to the owning std::pair<Tuple, Tuple>.
struct PairView {
  TupleView first;
  TupleView second;

  operator std::pair<Tuple, Tuple>() const {
    return {Tuple(first), Tuple(second)};
  }

  friend auto operator<=>(const PairView& a, const PairView& b) {
    if (auto c = a.first <=> b.first; c != 0)
      return c;
    return a.second <=> b.second;
  }
  friend bool operator==(const PairView& a, const PairView& b) {
    return a.first == b.first && a.second == b.second;
  }
  friend bool operator==(const PairView& a, const std::pair<Tuple, Tuple>& b) {
    return a.first == b.first && a.second == b.second;
  }
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);
std::ostream& operator<<(std::ostream& os, const TupleView& t);

} // namespace pipoly::pb
