#pragma once

// Integer tuples: the points of the explicit integer sets and maps.
// Tuples compare lexicographically, which is the order every algorithm in
// the paper (lexmin / lexmax / lexleset) is defined over.

#include "support/assert.hpp"

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pipoly::pb {

using Value = std::int64_t;

/// A point in Z^n. Comparison is lexicographic.
class Tuple {
public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  /// The zero tuple of a given arity.
  static Tuple zeros(std::size_t arity) {
    return Tuple(std::vector<Value>(arity, 0));
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Value operator[](std::size_t i) const {
    PIPOLY_ASSERT(i < values_.size());
    return values_[i];
  }
  Value& operator[](std::size_t i) {
    PIPOLY_ASSERT(i < values_.size());
    return values_[i];
  }

  const std::vector<Value>& values() const { return values_; }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  friend auto operator<=>(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare_three_way(
        a.values_.begin(), a.values_.end(), b.values_.begin(),
        b.values_.end());
  }
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }

  /// Concatenation, used to couple map pairs into single points.
  friend Tuple concat(const Tuple& a, const Tuple& b) {
    std::vector<Value> v;
    v.reserve(a.size() + b.size());
    v.insert(v.end(), a.values_.begin(), a.values_.end());
    v.insert(v.end(), b.values_.begin(), b.values_.end());
    return Tuple(std::move(v));
  }

  /// Sub-tuple [begin, end).
  Tuple slice(std::size_t begin, std::size_t end) const {
    PIPOLY_ASSERT(begin <= end && end <= values_.size());
    return Tuple(std::vector<Value>(values_.begin() + static_cast<long>(begin),
                                    values_.begin() + static_cast<long>(end)));
  }

  std::string toString() const;

private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

} // namespace pipoly::pb
