#include "presburger/affine.hpp"

#include <sstream>

namespace pipoly::pb {

namespace {
std::string dimName(const std::vector<std::string>& names, std::size_t i) {
  if (i < names.size())
    return names[i];
  return "d" + std::to_string(i);
}
} // namespace

std::string AffineExpr::toString(const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool any = false;
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    Value c = coeffs_[i];
    if (c == 0)
      continue;
    if (any)
      os << (c > 0 ? " + " : " - ");
    else if (c < 0)
      os << '-';
    Value a = c > 0 ? c : -c;
    if (a != 1)
      os << a << '*';
    os << dimName(names, i);
    any = true;
  }
  if (constant_ != 0 || !any) {
    if (any)
      os << (constant_ >= 0 ? " + " : " - ");
    Value a = constant_;
    if (any && a < 0)
      a = -a;
    os << a;
  }
  return os.str();
}

std::string AffineMap::toString(const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (i)
      os << ", ";
    os << outputs_[i].toString(names);
  }
  os << ')';
  return os.str();
}

} // namespace pipoly::pb
