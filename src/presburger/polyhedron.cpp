#include "presburger/polyhedron.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pipoly::pb {

namespace {

using Wide = __int128;

Value narrow(Wide v) {
  PIPOLY_CHECK_MSG(v >= Wide(std::numeric_limits<Value>::min()) &&
                       v <= Wide(std::numeric_limits<Value>::max()),
                   "coefficient overflow in Fourier–Motzkin elimination");
  return static_cast<Value>(v);
}

/// Combines two inequalities to eliminate dimension `dim`:
/// lower has coeff > 0 on dim, upper has coeff < 0.
AffineExpr combine(const AffineExpr& lower, const AffineExpr& upper,
                   std::size_t dim) {
  const Wide a = lower.coeff(dim);  // > 0
  const Wide b = -upper.coeff(dim); // > 0
  const std::size_t n = lower.numDims();
  std::vector<Value> coeffs(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    coeffs[i] = narrow(b * Wide(lower.coeff(i)) + a * Wide(upper.coeff(i)));
  Value cst =
      narrow(b * Wide(lower.constantTerm()) + a * Wide(upper.constantTerm()));
  PIPOLY_ASSERT(coeffs[dim] == 0);
  return AffineExpr(std::move(coeffs), cst);
}

/// Integer tightening: divide an inequality a·x + c >= 0 by g = gcd of the
/// coefficients and floor the constant.
AffineExpr tightenGE(AffineExpr e) {
  Value g = 0;
  for (std::size_t i = 0; i < e.numDims(); ++i)
    g = std::gcd(g, e.coeff(i));
  if (g <= 1)
    return e;
  for (std::size_t i = 0; i < e.numDims(); ++i)
    e.coeff(i) /= g;
  // floor division of the constant keeps all integer solutions.
  Value c = e.constantTerm();
  e.constantTerm() = (c >= 0) ? c / g : -((-c + g - 1) / g);
  return e;
}

bool isTriviallyTrue(const Constraint& c) {
  if (!c.expr().isConstant())
    return false;
  Value v = c.expr().constantTerm();
  return c.isEquality() ? v == 0 : v >= 0;
}

} // namespace

Polyhedron::Polyhedron(std::size_t numDims, std::vector<Constraint> constraints)
    : numDims_(numDims), constraints_(std::move(constraints)) {
  for (const Constraint& c : constraints_)
    PIPOLY_CHECK(c.expr().numDims() == numDims_);
}

Polyhedron& Polyhedron::add(Constraint c) {
  PIPOLY_CHECK(c.expr().numDims() == numDims_);
  constraints_.push_back(std::move(c));
  prefixCache_.clear();
  return *this;
}

bool Polyhedron::contains(const Tuple& point) const {
  PIPOLY_CHECK(point.size() == numDims_);
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&](const Constraint& c) { return c.isSatisfied(point); });
}

Polyhedron Polyhedron::projectOutLastDim() const {
  PIPOLY_CHECK(numDims_ > 0);
  const std::size_t dim = numDims_ - 1;

  // Split equalities involving `dim` into two inequalities first.
  std::vector<AffineExpr> lowers, uppers;
  std::vector<Constraint> kept;
  for (const Constraint& c : constraints_) {
    const Value coeff = c.expr().coeff(dim);
    if (coeff == 0) {
      // Keep, narrowed to the smaller dimensionality.
      AffineExpr e = c.expr();
      std::vector<Value> coeffs(e.numDims() - 1);
      for (std::size_t i = 0; i + 1 < e.numDims(); ++i)
        coeffs[i] = e.coeff(i);
      kept.emplace_back(AffineExpr(std::move(coeffs), e.constantTerm()),
                        c.kind());
      continue;
    }
    if (c.isEquality()) {
      lowers.push_back(c.expr());
      uppers.push_back(-c.expr());
      if (coeff < 0)
        std::swap(lowers.back(), uppers.back());
    } else if (coeff > 0) {
      lowers.push_back(c.expr());
    } else {
      uppers.push_back(c.expr());
    }
  }

  Polyhedron out(numDims_ - 1, std::move(kept));
  for (const AffineExpr& lo : lowers) {
    for (const AffineExpr& up : uppers) {
      AffineExpr combined = tightenGE(combine(lo, up, dim));
      std::vector<Value> coeffs(combined.numDims() - 1);
      for (std::size_t i = 0; i + 1 < combined.numDims(); ++i)
        coeffs[i] = combined.coeff(i);
      Constraint c =
          Constraint::ge(AffineExpr(std::move(coeffs), combined.constantTerm()));
      if (!isTriviallyTrue(c))
        out.add(std::move(c));
    }
  }
  return out;
}

std::optional<DimBounds> Polyhedron::boundsOfDim(std::size_t dim,
                                                 const Tuple& prefix) const {
  PIPOLY_CHECK(dim < numDims_);
  PIPOLY_CHECK(prefix.size() >= dim);

  bool hasLower = false, hasUpper = false;
  Value lower = 0, upper = 0;
  for (const Constraint& c : constraints_) {
    const AffineExpr& e = c.expr();
    const Value coeff = e.coeff(dim);
    // Only constraints with support within dims 0..dim are usable here; the
    // caller provides a projected system, but be defensive and skip others.
    bool usable = true;
    for (std::size_t i = dim + 1; i < numDims_; ++i)
      if (e.coeff(i) != 0)
        usable = false;
    if (!usable || coeff == 0)
      continue;

    Value rest = e.constantTerm();
    for (std::size_t i = 0; i < dim; ++i)
      rest += e.coeff(i) * prefix[i];
    // coeff * x + rest >= 0  (equality contributes both directions)
    if (coeff > 0 || c.isEquality()) {
      const Value a = coeff > 0 ? coeff : -coeff;
      const Value r = coeff > 0 ? rest : -rest;
      // x >= ceil(-r / a)
      Value bound = -r >= 0 ? (-r + a - 1) / a : -((r) / a);
      if (!hasLower || bound > lower)
        lower = bound;
      hasLower = true;
    }
    if (coeff < 0 || c.isEquality()) {
      const Value a = coeff < 0 ? -coeff : coeff;
      const Value r = coeff < 0 ? rest : -rest;
      // x <= floor(r / a)
      Value bound = r >= 0 ? r / a : -((-r + a - 1) / a);
      if (!hasUpper || bound < upper)
        upper = bound;
      hasUpper = true;
    }
  }
  PIPOLY_CHECK_MSG(hasLower && hasUpper,
                   "dimension is unbounded; sets must be bounded");
  if (lower > upper)
    return std::nullopt;
  return DimBounds{lower, upper};
}

const std::vector<Polyhedron>& Polyhedron::prefixSystems() const {
  if (!prefixCache_.empty())
    return prefixCache_;
  prefixCache_.resize(numDims_, Polyhedron(0));
  Polyhedron cur = *this;
  for (std::size_t k = numDims_; k-- > 0;) {
    prefixCache_[k] = cur;
    if (k > 0)
      cur = cur.projectOutLastDim();
  }
  return prefixCache_;
}

void Polyhedron::forEachPoint(
    const std::function<bool(const Tuple&)>& visit) const {
  if (numDims_ == 0) {
    if (contains(Tuple{}))
      visit(Tuple{});
    return;
  }
  const auto& systems = prefixSystems();

  std::vector<Value> current(numDims_, 0);
  // Recursive descent over dimensions with exact filtering at each level:
  // systems[k] only contains dims 0..k, so a point failing there can be
  // pruned immediately.
  std::function<bool(std::size_t)> descend = [&](std::size_t k) -> bool {
    Tuple prefix(std::vector<Value>(current.begin(),
                                    current.begin() + static_cast<long>(k)));
    auto bounds = systems[k].boundsOfDim(k, prefix);
    if (!bounds)
      return true;
    for (Value v = bounds->lower; v <= bounds->upper; ++v) {
      current[k] = v;
      Tuple pt(std::vector<Value>(current.begin(),
                                  current.begin() + static_cast<long>(k) + 1));
      if (!systems[k].contains(pt))
        continue;
      if (k + 1 == numDims_) {
        if (!visit(pt))
          return false;
      } else if (!descend(k + 1)) {
        return false;
      }
    }
    return true;
  };
  descend(0);
}

std::vector<Tuple> Polyhedron::enumerate() const {
  std::vector<Tuple> out;
  forEachPoint([&](const Tuple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool Polyhedron::isEmpty() const {
  bool found = false;
  forEachPoint([&](const Tuple&) {
    found = true;
    return false;
  });
  return !found;
}

namespace {
/// Returns a copy with dimensions `a` and `b` swapped.
Polyhedron swapDims(const Polyhedron& p, std::size_t a, std::size_t b) {
  if (a == b)
    return p;
  std::vector<Constraint> cs;
  cs.reserve(p.constraints().size());
  for (const Constraint& c : p.constraints()) {
    const AffineExpr& e = c.expr();
    std::vector<Value> coeffs(e.numDims());
    for (std::size_t i = 0; i < e.numDims(); ++i)
      coeffs[i] = e.coeff(i);
    std::swap(coeffs[a], coeffs[b]);
    cs.emplace_back(AffineExpr(std::move(coeffs), e.constantTerm()), c.kind());
  }
  return Polyhedron(p.numDims(), std::move(cs));
}
} // namespace

std::vector<DimBounds> Polyhedron::boundingBox() const {
  std::vector<DimBounds> box;
  box.reserve(numDims_);
  for (std::size_t k = 0; k < numDims_; ++k) {
    // Move dim k to the front, then project the other dims out from the
    // back; what remains is a one-dimensional system in dim k alone.
    Polyhedron p = swapDims(*this, 0, k);
    while (p.numDims() > 1)
      p = p.projectOutLastDim();
    auto b = p.boundsOfDim(0, Tuple{});
    PIPOLY_CHECK_MSG(b.has_value(), "empty polyhedron has no bounding box");
    box.push_back(*b);
  }
  return box;
}

std::string Polyhedron::toString(const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i)
      os << " and ";
    os << constraints_[i].toString(names);
  }
  os << " }";
  return os.str();
}

} // namespace pipoly::pb
