#include "presburger/param.hpp"

#include "support/assert.hpp"

#include <sstream>

namespace pipoly::pb {

Value ParamExpr::evaluate(const ParamBindings& bindings) const {
  Value acc = constant_;
  for (const auto& [name, coeff] : coeffs_) {
    auto it = bindings.find(name);
    PIPOLY_CHECK_MSG(it != bindings.end(),
                     "unbound parameter '" + name + "'");
    acc += coeff * it->second;
  }
  return acc;
}

ParamExpr operator+(ParamExpr a, const ParamExpr& b) {
  for (const auto& [name, coeff] : b.coeffs_)
    if ((a.coeffs_[name] += coeff) == 0)
      a.coeffs_.erase(name);
  a.constant_ += b.constant_;
  return a;
}

ParamExpr operator-(ParamExpr a, const ParamExpr& b) {
  for (const auto& [name, coeff] : b.coeffs_)
    if ((a.coeffs_[name] -= coeff) == 0)
      a.coeffs_.erase(name);
  a.constant_ -= b.constant_;
  return a;
}

ParamExpr operator*(Value k, ParamExpr a) {
  if (k == 0)
    return ParamExpr(0);
  for (auto& [name, coeff] : a.coeffs_)
    coeff *= k;
  a.constant_ *= k;
  return a;
}

std::string ParamExpr::toString() const {
  std::ostringstream os;
  bool any = false;
  for (const auto& [name, coeff] : coeffs_) {
    if (any)
      os << (coeff > 0 ? " + " : " - ");
    else if (coeff < 0)
      os << '-';
    Value a = coeff > 0 ? coeff : -coeff;
    if (a != 1)
      os << a << '*';
    os << name;
    any = true;
  }
  if (constant_ != 0 || !any) {
    if (any)
      os << (constant_ >= 0 ? " + " : " - ");
    os << (any && constant_ < 0 ? -constant_ : constant_);
  }
  return os.str();
}

Constraint ParamConstraint::instantiate(const ParamBindings& bindings) const {
  AffineExpr e(dimCoeffs.size(), paramPart.evaluate(bindings));
  for (std::size_t d = 0; d < dimCoeffs.size(); ++d)
    e.coeff(d) = dimCoeffs[d];
  return Constraint(std::move(e), kind);
}

std::string
ParamConstraint::toString(const std::vector<std::string>& dimNames) const {
  std::ostringstream os;
  bool any = false;
  for (std::size_t d = 0; d < dimCoeffs.size(); ++d) {
    const Value c = dimCoeffs[d];
    if (c == 0)
      continue;
    if (any)
      os << (c > 0 ? " + " : " - ");
    else if (c < 0)
      os << '-';
    const Value a = c > 0 ? c : -c;
    if (a != 1)
      os << a << '*';
    os << (d < dimNames.size() ? dimNames[d] : "d" + std::to_string(d));
    any = true;
  }
  const std::string params = paramPart.toString();
  if (!any)
    os << params;
  else if (params != "0")
    os << " + " << params;
  os << (kind == Constraint::Kind::EQ ? " = 0" : " >= 0");
  return os.str();
}

ParamSet& ParamSet::add(ParamConstraint c) {
  PIPOLY_CHECK(c.dimCoeffs.size() == space_.arity());
  constraints_.push_back(std::move(c));
  return *this;
}

ParamSet& ParamSet::bound(std::size_t dim, const ParamExpr& lo,
                          const ParamExpr& hi) {
  PIPOLY_CHECK(dim < space_.arity());
  ParamConstraint lower;
  lower.dimCoeffs.assign(space_.arity(), 0);
  lower.dimCoeffs[dim] = 1;
  lower.paramPart = ParamExpr(0) - lo;
  add(std::move(lower));
  ParamConstraint upper;
  upper.dimCoeffs.assign(space_.arity(), 0);
  upper.dimCoeffs[dim] = -1;
  upper.paramPart = hi - ParamExpr(1);
  return add(std::move(upper));
}

Polyhedron ParamSet::instantiate(const ParamBindings& bindings) const {
  Polyhedron p(space_.arity());
  for (const ParamConstraint& c : constraints_)
    p.add(c.instantiate(bindings));
  return p;
}

IntTupleSet ParamSet::points(const ParamBindings& bindings) const {
  return IntTupleSet::fromPolyhedron(space_, instantiate(bindings));
}

std::string ParamSet::toString() const {
  std::ostringstream os;
  os << "{ " << space_.name() << '[';
  for (std::size_t d = 0; d < space_.arity(); ++d)
    os << (d ? ", " : "")
       << (d < dimNames_.size() ? dimNames_[d] : "d" + std::to_string(d));
  os << "] : ";
  for (std::size_t i = 0; i < constraints_.size(); ++i)
    os << (i ? " and " : "") << constraints_[i].toString(dimNames_);
  os << " }";
  return os.str();
}

ParamMap& ParamMap::add(ParamConstraint c) {
  PIPOLY_CHECK(c.dimCoeffs.size() == numDims());
  constraints_.push_back(std::move(c));
  return *this;
}

IntMap ParamMap::instantiate(const ParamBindings& bindings) const {
  Polyhedron p(numDims());
  for (const ParamConstraint& c : constraints_)
    p.add(c.instantiate(bindings));
  std::vector<IntMap::Pair> pairs;
  for (const Tuple& pt : p.enumerate())
    pairs.emplace_back(pt.slice(0, in_.arity()),
                       pt.slice(in_.arity(), numDims()));
  return IntMap(in_, out_, std::move(pairs));
}

std::string ParamMap::toString() const {
  std::ostringstream os;
  auto dimName = [&](std::size_t d) {
    return d < dimNames_.size() ? dimNames_[d] : "d" + std::to_string(d);
  };
  os << "{ " << in_.name() << '[';
  for (std::size_t d = 0; d < in_.arity(); ++d)
    os << (d ? ", " : "") << dimName(d);
  os << "] -> " << out_.name() << '[';
  for (std::size_t d = 0; d < out_.arity(); ++d)
    os << (d ? ", " : "") << dimName(in_.arity() + d);
  os << "] : ";
  for (std::size_t i = 0; i < constraints_.size(); ++i)
    os << (i ? " and " : "") << constraints_[i].toString(dimNames_);
  os << " }";
  return os.str();
}

} // namespace pipoly::pb
