#pragma once

// A light parametric layer over the explicit core: sets and maps whose
// constraints are affine in the tuple dimensions with *parameter-affine*
// constant terms (e.g. `0 <= i <= N - 2`). This is the form the paper's
// own formulas take (§4.1 keeps N symbolic); instantiating the parameters
// lowers a ParamSet/ParamMap onto the exact explicit machinery.
//
// Division does not exist at this level: a bound like N/2 - 1 is modelled
// by introducing a derived parameter (e.g. M bound to N/2 at
// instantiation time), mirroring how the paper's own example fixes N=20.

#include "presburger/map.hpp"
#include "presburger/parser.hpp"
#include "presburger/polyhedron.hpp"
#include "presburger/set.hpp"

#include <map>
#include <string>
#include <vector>

namespace pipoly::pb {

/// Affine expression over named parameters: sum of c_p * p plus a
/// constant.
class ParamExpr {
public:
  ParamExpr() = default;
  /*implicit*/ ParamExpr(Value constant) : constant_(constant) {}

  static ParamExpr param(std::string name, Value coeff = 1) {
    ParamExpr e;
    if (coeff != 0)
      e.coeffs_[std::move(name)] = coeff;
    return e;
  }

  Value evaluate(const ParamBindings& bindings) const;

  bool isConstant() const { return coeffs_.empty(); }
  Value constantTerm() const { return constant_; }

  friend ParamExpr operator+(ParamExpr a, const ParamExpr& b);
  friend ParamExpr operator-(ParamExpr a, const ParamExpr& b);
  friend ParamExpr operator*(Value k, ParamExpr a);

  std::string toString() const;

  friend bool operator==(const ParamExpr&, const ParamExpr&) = default;

private:
  std::map<std::string, Value> coeffs_;
  Value constant_ = 0;
};

/// sum(dimCoeffs_d * x_d) + paramPart  (>= 0 | == 0).
struct ParamConstraint {
  std::vector<Value> dimCoeffs;
  ParamExpr paramPart;
  Constraint::Kind kind = Constraint::Kind::GE;

  Constraint instantiate(const ParamBindings& bindings) const;
  std::string toString(const std::vector<std::string>& dimNames) const;
};

/// A parametric set over one tuple space.
class ParamSet {
public:
  ParamSet(Space space, std::vector<std::string> dimNames = {})
      : space_(std::move(space)), dimNames_(std::move(dimNames)) {}

  const Space& space() const { return space_; }

  ParamSet& add(ParamConstraint c);
  /// lo <= dim_k < hi.
  ParamSet& bound(std::size_t dim, const ParamExpr& lo, const ParamExpr& hi);

  Polyhedron instantiate(const ParamBindings& bindings) const;
  IntTupleSet points(const ParamBindings& bindings) const;

  std::string toString() const;

private:
  Space space_;
  std::vector<std::string> dimNames_;
  std::vector<ParamConstraint> constraints_;
};

/// A parametric relation between two tuple spaces; constraints range over
/// the concatenated (in, out) dimensions.
class ParamMap {
public:
  ParamMap(Space in, Space out, std::vector<std::string> dimNames = {})
      : in_(std::move(in)), out_(std::move(out)),
        dimNames_(std::move(dimNames)) {}

  const Space& domainSpace() const { return in_; }
  const Space& rangeSpace() const { return out_; }
  std::size_t numDims() const { return in_.arity() + out_.arity(); }

  ParamMap& add(ParamConstraint c);

  IntMap instantiate(const ParamBindings& bindings) const;

  std::string toString() const;

private:
  Space in_, out_;
  std::vector<std::string> dimNames_;
  std::vector<ParamConstraint> constraints_;
};

} // namespace pipoly::pb
