#pragma once

// IntTupleSet: an explicit, lexicographically sorted set of integer tuples
// in a named space. This is the instantiated counterpart of an isl_set:
// once the parameters of a SCoP are fixed, every set the paper manipulates
// is finite and is represented here exactly.
//
// Points are stored as one contiguous row-major RowBuffer (arity values
// per row, rows sorted lexicographically and unique) behind a shared
// immutable pointer: copying a set, or deriving a content-identical set
// (unite with the empty set, a filter or subtract that keeps everything),
// shares the buffer instead of deep-copying. points() returns a
// TupleRange — a lightweight random-access range of TupleViews that keeps
// the buffer alive independently of the set.

#include "presburger/polyhedron.hpp"
#include "presburger/rows.hpp"
#include "presburger/space.hpp"
#include "presburger/tuple.hpp"

#include <string>
#include <utility>
#include <vector>

namespace pipoly::pb {

class IntTupleSet {
public:
  IntTupleSet() = default;
  explicit IntTupleSet(Space space) : space_(std::move(space)) {}
  /// Takes arbitrary points; sorts and deduplicates them.
  IntTupleSet(Space space, std::vector<Tuple> points);

  /// All integer points of `poly`, living in `space`.
  static IntTupleSet fromPolyhedron(Space space, const Polyhedron& poly);

  /// The rectangular set [0,ext0) x [0,ext1) x ...
  static IntTupleSet rectangle(Space space, const std::vector<Value>& extents);

  /// Wraps a flat row-major buffer that is already sorted and unique
  /// (debug-asserted). The cheap construction path for producers that
  /// emit points in order. Requires a non-zero arity unless `rows` is
  /// empty.
  static IntTupleSet fromSortedRows(Space space, RowBuffer rows);

  /// Wraps a flat row-major buffer, sorting and deduplicating when needed
  /// (one linear sortedness check first, so in-order input costs no sort).
  static IntTupleSet fromRows(Space space, RowBuffer rows);

  const Space& space() const { return space_; }
  std::size_t arity() const { return space_.arity(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// The points as a row-view range (random access, yields TupleView).
  TupleRange points() const { return TupleRange(rows_, count_, arity()); }

  /// The raw sorted row-major storage (count() * arity() values).
  const RowBuffer& rowData() const {
    return rows_ ? *rows_ : emptyRowBuffer();
  }

  bool contains(TupleView t) const;
  bool contains(const Tuple& t) const { return contains(TupleView(t)); }

  IntTupleSet unite(const IntTupleSet& other) const;
  IntTupleSet intersect(const IntTupleSet& other) const;
  IntTupleSet subtract(const IntTupleSet& other) const;

  /// Keeps the points satisfying `keep`. The callable is invoked with a
  /// `const Tuple&` (materialised inline — no allocation for arity <= 4).
  template <typename Pred> IntTupleSet filter(Pred&& keep) const {
    const std::size_t w = arity();
    IntTupleSet out(space_);
    if (w == 0) {
      if (count_ > 0 && keep(Tuple()))
        out.count_ = 1;
      return out;
    }
    if (empty())
      return out;
    const RowBuffer& src = *rows_;
    RowBuffer data;
    data.reserve(src.size());
    for (std::size_t i = 0; i < count_; ++i) {
      const Tuple t(&src[i * w], w);
      if (keep(t))
        rows::append(data, t.data(), w);
    }
    if (data.size() == src.size())
      return *this; // kept everything: share the buffer
    out.adoptSorted(std::move(data));
    return out;
  }

  bool isSubsetOf(const IntTupleSet& other) const;

  /// Lexicographic extrema; the set must be non-empty.
  Tuple lexmin() const;
  Tuple lexmax() const;

  /// Per-dimension bounds of the smallest enclosing box; the set must be
  /// non-empty.
  std::vector<DimBounds> rectangularHull() const;

  /// The common stride of dimension `dim`: the gcd of all offsets of
  /// that coordinate from its minimum (e.g. {0, 2, 4, 8} -> 2). Returns
  /// 1 for dense or irregular dims and 0 when the coordinate is constant.
  Value strideOfDim(std::size_t dim) const;

  friend bool operator==(const IntTupleSet& a, const IntTupleSet& b) {
    return a.space_ == b.space_ && a.count_ == b.count_ &&
           a.rowData() == b.rowData();
  }

  std::string toString() const;

private:
  friend class IntMap;

  static const RowBuffer& emptyRowBuffer();
  void requireSameSpace(const IntTupleSet& other) const;
  /// Publishes a sorted-unique buffer as this set's storage.
  void adoptSorted(RowBuffer&& data);

  Space space_;
  RowsPtr rows_;          // row-major, sorted lexicographically, unique
  std::size_t count_ = 0; // number of points (explicit: arity may be 0)
};

std::ostream& operator<<(std::ostream& os, const IntTupleSet& s);

} // namespace pipoly::pb
