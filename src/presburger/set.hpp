#pragma once

// IntTupleSet: an explicit, lexicographically sorted set of integer tuples
// in a named space. This is the instantiated counterpart of an isl_set:
// once the parameters of a SCoP are fixed, every set the paper manipulates
// is finite and is represented here exactly.

#include "presburger/polyhedron.hpp"
#include "presburger/space.hpp"
#include "presburger/tuple.hpp"

#include <functional>
#include <string>
#include <vector>

namespace pipoly::pb {

class IntTupleSet {
public:
  IntTupleSet() = default;
  explicit IntTupleSet(Space space) : space_(std::move(space)) {}
  /// Takes arbitrary points; sorts and deduplicates them.
  IntTupleSet(Space space, std::vector<Tuple> points);

  /// All integer points of `poly`, living in `space`.
  static IntTupleSet fromPolyhedron(Space space, const Polyhedron& poly);

  /// The rectangular set [0,ext0) x [0,ext1) x ...
  static IntTupleSet rectangle(Space space, const std::vector<Value>& extents);

  const Space& space() const { return space_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<Tuple>& points() const { return points_; }

  bool contains(const Tuple& t) const;

  IntTupleSet unite(const IntTupleSet& other) const;
  IntTupleSet intersect(const IntTupleSet& other) const;
  IntTupleSet subtract(const IntTupleSet& other) const;
  IntTupleSet filter(const std::function<bool(const Tuple&)>& keep) const;

  bool isSubsetOf(const IntTupleSet& other) const;

  /// Lexicographic extrema; the set must be non-empty.
  const Tuple& lexmin() const;
  const Tuple& lexmax() const;

  /// Per-dimension bounds of the smallest enclosing box; the set must be
  /// non-empty.
  std::vector<DimBounds> rectangularHull() const;

  /// The common stride of dimension `dim`: the gcd of all offsets of
  /// that coordinate from its minimum (e.g. {0, 2, 4, 8} -> 2). Returns
  /// 1 for dense or irregular dims and 0 when the coordinate is constant.
  Value strideOfDim(std::size_t dim) const;

  friend bool operator==(const IntTupleSet& a, const IntTupleSet& b) {
    return a.space_ == b.space_ && a.points_ == b.points_;
  }

  std::string toString() const;

private:
  void requireSameSpace(const IntTupleSet& other) const;

  Space space_;
  std::vector<Tuple> points_; // sorted lexicographically, unique
};

std::ostream& operator<<(std::ostream& os, const IntTupleSet& s);

} // namespace pipoly::pb
