#pragma once

// IntMap: an explicit binary relation between two tuple spaces, mirroring
// isl_map for instantiated (finite) problems. Implements every operation
// the paper's Algorithm 1 uses: inverse, composition, domain/range,
// per-domain lexmax/lexmin (the paper's lexmax(M)), lexleset, unions,
// identity maps, and injectivity checks.
//
// Pairs are stored as one contiguous row-major RowBuffer — each row is
// the domain tuple immediately followed by the range tuple (width =
// domain arity + range arity), rows sorted lexicographically (which is
// exactly the (in, out) pair order) and unique — behind a shared
// immutable pointer. Copies and content-identical derivations (per-domain
// extrema of single-valued maps, restrictions that keep every pair) share
// the buffer. pairs() returns a PairRange of PairViews that keeps the
// buffer alive independently of the map.

#include "presburger/rows.hpp"
#include "presburger/set.hpp"
#include "presburger/space.hpp"
#include "presburger/tuple.hpp"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pipoly::pb {

class IntMap {
public:
  using Pair = std::pair<Tuple, Tuple>;

  IntMap() = default;
  IntMap(Space in, Space out) : in_(std::move(in)), out_(std::move(out)) {}
  /// Takes arbitrary pairs; sorts and deduplicates them.
  IntMap(Space in, Space out, std::vector<Pair> pairs);

  /// { x -> x : x in set }
  static IntMap identity(const IntTupleSet& set);

  /// { x -> f(x) : x in domain }, where f maps into `out`. The callable
  /// is invoked with a `const Tuple&` and must return a Tuple of the
  /// output arity.
  template <typename Fn>
  static IntMap fromFunction(const IntTupleSet& domain, Space out, Fn&& f) {
    IntMap m(domain.space(), std::move(out));
    const std::size_t inA = m.in_.arity(), outA = m.out_.arity();
    if (inA + outA == 0) {
      m.count_ = domain.size();
      return m;
    }
    RowBuffer data;
    data.reserve(domain.size() * (inA + outA));
    for (TupleView t : domain.points()) {
      const Tuple in(t);
      const Tuple img = f(in);
      PIPOLY_CHECK_MSG(img.size() == outA,
                       "map pair range arity mismatch in " + m.out_.name());
      rows::append(data, in.data(), inA);
      rows::append(data, img.data(), outA);
    }
    // Domain points are strictly increasing, so the rows already are.
    m.adoptSorted(std::move(data));
    return m;
  }

  /// The paper's lexleset(I, B): { i -> b : i in I, b in B, i lexle b }.
  /// Both sets must share a space.
  static IntMap lexLeSet(const IntTupleSet& from, const IntTupleSet& bounds);

  /// { x -> y : x, y in set, y lexle x } — the D' relation of §4.1 when
  /// applied to Dom(P).
  static IntMap lexGeContains(const IntTupleSet& set);

  /// Wraps a flat row-major pair buffer (width = in.arity() + out.arity())
  /// that is already sorted and unique (debug-asserted). The cheap
  /// construction path for producers that emit pairs in order. Requires a
  /// non-zero total width unless `rows` is empty.
  static IntMap fromSortedRows(Space in, Space out, RowBuffer rows);

  /// Wraps a flat row-major pair buffer, sorting and deduplicating when
  /// needed (one linear sortedness check first).
  static IntMap fromRows(Space in, Space out, RowBuffer rows);

  const Space& domainSpace() const { return in_; }
  const Space& rangeSpace() const { return out_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// The pairs as a row-view range (random access, yields PairView).
  PairRange pairs() const {
    return PairRange(rows_, count_, in_.arity(), out_.arity());
  }

  /// The raw sorted row-major storage (size() * width() values, each row
  /// the domain tuple followed by the range tuple).
  const RowBuffer& rowData() const {
    return rows_ ? *rows_ : IntTupleSet::emptyRowBuffer();
  }

  bool contains(const Tuple& in, const Tuple& out) const;

  IntMap inverse() const;
  IntTupleSet domain() const;
  IntTupleSet range() const;

  /// Composition this(inner): { a -> c : exists b, (a,b) in inner and
  /// (b,c) in this }. Matches the paper's M1(M2) notation.
  IntMap compose(const IntMap& inner) const;

  /// Image of a set under the map.
  IntTupleSet apply(const IntTupleSet& set) const;

  /// Images of a single point.
  std::vector<Tuple> imagesOf(const Tuple& in) const;

  /// The unique image of `in`; throws if the map is not single-valued at
  /// that point, returns nullopt if `in` is outside the domain.
  std::optional<Tuple> singleImageOf(const Tuple& in) const;

  /// Per-domain-element lexicographic max/min of the images — the paper's
  /// lexmax(M) / lexmin(M). The result is single-valued.
  IntMap lexmaxPerDomain() const;
  IntMap lexminPerDomain() const;

  IntMap restrictDomain(const IntTupleSet& set) const;
  IntMap restrictRange(const IntTupleSet& set) const;

  IntMap unite(const IntMap& other) const;
  IntMap intersect(const IntMap& other) const;
  IntMap subtract(const IntMap& other) const;
  bool isSubsetOf(const IntMap& other) const;

  bool isInjective() const;    // no two inputs share an output
  bool isSingleValued() const; // no input has two outputs

  /// The set of differences out - in over all pairs; both sides must live
  /// in spaces of equal arity. This is the classic dependence-distance
  /// set: uniform dependences yield a singleton.
  IntTupleSet deltas() const;

  /// Transitive closure of a relation on a single space: x relates to y
  /// in the result iff a non-empty path x -> ... -> y exists. The
  /// relation must be acyclic (throws otherwise). Useful for
  /// reachability questions on block/task dependence graphs.
  IntMap transitiveClosure() const;

  friend bool operator==(const IntMap& a, const IntMap& b) {
    return a.in_ == b.in_ && a.out_ == b.out_ && a.count_ == b.count_ &&
           a.rowData() == b.rowData();
  }

  std::string toString() const;

private:
  std::size_t inArity() const { return in_.arity(); }
  std::size_t outArity() const { return out_.arity(); }
  std::size_t width() const { return in_.arity() + out_.arity(); }
  /// Publishes a sorted-unique buffer as this map's storage.
  void adoptSorted(RowBuffer&& data);
  void requireSameSpaces(const IntMap& other, const char* what) const;

  Space in_, out_;
  RowsPtr rows_;          // row-major (in ++ out), sorted by (in, out)
  std::size_t count_ = 0; // number of pairs (explicit: width may be 0)
};

std::ostream& operator<<(std::ostream& os, const IntMap& m);

} // namespace pipoly::pb
