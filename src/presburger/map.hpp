#pragma once

// IntMap: an explicit binary relation between two tuple spaces, mirroring
// isl_map for instantiated (finite) problems. Implements every operation
// the paper's Algorithm 1 uses: inverse, composition, domain/range,
// per-domain lexmax/lexmin (the paper's lexmax(M)), lexleset, unions,
// identity maps, and injectivity checks.

#include "presburger/set.hpp"
#include "presburger/space.hpp"
#include "presburger/tuple.hpp"

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pipoly::pb {

class IntMap {
public:
  using Pair = std::pair<Tuple, Tuple>;

  IntMap() = default;
  IntMap(Space in, Space out) : in_(std::move(in)), out_(std::move(out)) {}
  /// Takes arbitrary pairs; sorts and deduplicates them.
  IntMap(Space in, Space out, std::vector<Pair> pairs);

  /// { x -> x : x in set }
  static IntMap identity(const IntTupleSet& set);

  /// { x -> f(x) : x in domain }, where f maps into `out`.
  static IntMap fromFunction(const IntTupleSet& domain, Space out,
                             const std::function<Tuple(const Tuple&)>& f);

  /// The paper's lexleset(I, B): { i -> b : i in I, b in B, i lexle b }.
  /// Both sets must share a space.
  static IntMap lexLeSet(const IntTupleSet& from, const IntTupleSet& bounds);

  /// { x -> y : x, y in set, y lexle x } — the D' relation of §4.1 when
  /// applied to Dom(P).
  static IntMap lexGeContains(const IntTupleSet& set);

  const Space& domainSpace() const { return in_; }
  const Space& rangeSpace() const { return out_; }
  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<Pair>& pairs() const { return pairs_; }

  bool contains(const Tuple& in, const Tuple& out) const;

  IntMap inverse() const;
  IntTupleSet domain() const;
  IntTupleSet range() const;

  /// Composition this(inner): { a -> c : exists b, (a,b) in inner and
  /// (b,c) in this }. Matches the paper's M1(M2) notation.
  IntMap compose(const IntMap& inner) const;

  /// Image of a set under the map.
  IntTupleSet apply(const IntTupleSet& set) const;

  /// Images of a single point.
  std::vector<Tuple> imagesOf(const Tuple& in) const;

  /// The unique image of `in`; throws if the map is not single-valued at
  /// that point, returns nullopt if `in` is outside the domain.
  std::optional<Tuple> singleImageOf(const Tuple& in) const;

  /// Per-domain-element lexicographic max/min of the images — the paper's
  /// lexmax(M) / lexmin(M). The result is single-valued.
  IntMap lexmaxPerDomain() const;
  IntMap lexminPerDomain() const;

  IntMap restrictDomain(const IntTupleSet& set) const;
  IntMap restrictRange(const IntTupleSet& set) const;

  IntMap unite(const IntMap& other) const;
  IntMap intersect(const IntMap& other) const;
  IntMap subtract(const IntMap& other) const;
  bool isSubsetOf(const IntMap& other) const;

  bool isInjective() const;    // no two inputs share an output
  bool isSingleValued() const; // no input has two outputs

  /// The set of differences out - in over all pairs; both sides must live
  /// in spaces of equal arity. This is the classic dependence-distance
  /// set: uniform dependences yield a singleton.
  IntTupleSet deltas() const;

  /// Transitive closure of a relation on a single space: x relates to y
  /// in the result iff a non-empty path x -> ... -> y exists. The
  /// relation must be acyclic (throws otherwise). Useful for
  /// reachability questions on block/task dependence graphs.
  IntMap transitiveClosure() const;

  friend bool operator==(const IntMap& a, const IntMap& b) {
    return a.in_ == b.in_ && a.out_ == b.out_ && a.pairs_ == b.pairs_;
  }

  std::string toString() const;

private:
  Space in_, out_;
  std::vector<Pair> pairs_; // sorted by (in, out), unique
};

std::ostream& operator<<(std::ostream& os, const IntMap& m);

} // namespace pipoly::pb
