#pragma once

// A (name, arity) pair identifying the tuple space of a set or of one side
// of a map, mirroring isl's named spaces ("S[i,j]", "A[a0,a1]", ...).

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>

namespace pipoly::pb {

class Space {
public:
  Space() : name_("?"), arity_(0) {}
  Space(std::string name, std::size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  std::size_t arity() const { return arity_; }

  friend bool operator==(const Space& a, const Space& b) {
    return a.arity_ == b.arity_ && a.name_ == b.name_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Space& s) {
    return os << s.name_ << '/' << s.arity_;
  }

private:
  std::string name_;
  std::size_t arity_;
};

} // namespace pipoly::pb
