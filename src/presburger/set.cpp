#include "presburger/set.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pipoly::pb {

IntTupleSet::IntTupleSet(Space space, std::vector<Tuple> points)
    : space_(std::move(space)), points_(std::move(points)) {
  for (const Tuple& t : points_)
    PIPOLY_CHECK_MSG(t.size() == space_.arity(),
                     "tuple arity does not match space " + space_.name());
  std::sort(points_.begin(), points_.end());
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
}

IntTupleSet IntTupleSet::fromPolyhedron(Space space, const Polyhedron& poly) {
  PIPOLY_CHECK(space.arity() == poly.numDims());
  // Polyhedron enumeration is already lexicographic and duplicate-free.
  IntTupleSet s(std::move(space));
  s.points_ = poly.enumerate();
  return s;
}

IntTupleSet IntTupleSet::rectangle(Space space,
                                   const std::vector<Value>& extents) {
  PIPOLY_CHECK(space.arity() == extents.size());
  Polyhedron p(extents.size());
  for (std::size_t i = 0; i < extents.size(); ++i) {
    AffineExpr x = AffineExpr::dim(extents.size(), i);
    p.add(Constraint::ge(x));
    p.add(Constraint::lt(x, AffineExpr::constant(extents.size(), extents[i])));
  }
  return fromPolyhedron(std::move(space), p);
}

bool IntTupleSet::contains(const Tuple& t) const {
  return std::binary_search(points_.begin(), points_.end(), t);
}

void IntTupleSet::requireSameSpace(const IntTupleSet& other) const {
  PIPOLY_CHECK_MSG(space_ == other.space_,
                   "set operation across different spaces: " + space_.name() +
                       " vs " + other.space_.name());
}

IntTupleSet IntTupleSet::unite(const IntTupleSet& other) const {
  requireSameSpace(other);
  if (points_.empty())
    return other;
  if (other.points_.empty())
    return *this;
  IntTupleSet out(space_);
  out.points_.reserve(points_.size() + other.points_.size());
  // Disjoint-range fast path: unions accumulated in sweep order append
  // strictly later point ranges.
  if (points_.back() < other.points_.front()) {
    out.points_.insert(out.points_.end(), points_.begin(), points_.end());
    out.points_.insert(out.points_.end(), other.points_.begin(),
                       other.points_.end());
    return out;
  }
  std::set_union(points_.begin(), points_.end(), other.points_.begin(),
                 other.points_.end(), std::back_inserter(out.points_));
  return out;
}

IntTupleSet IntTupleSet::intersect(const IntTupleSet& other) const {
  requireSameSpace(other);
  IntTupleSet out(space_);
  std::set_intersection(points_.begin(), points_.end(), other.points_.begin(),
                        other.points_.end(), std::back_inserter(out.points_));
  return out;
}

IntTupleSet IntTupleSet::subtract(const IntTupleSet& other) const {
  requireSameSpace(other);
  IntTupleSet out(space_);
  std::set_difference(points_.begin(), points_.end(), other.points_.begin(),
                      other.points_.end(), std::back_inserter(out.points_));
  return out;
}

IntTupleSet
IntTupleSet::filter(const std::function<bool(const Tuple&)>& keep) const {
  IntTupleSet out(space_);
  std::copy_if(points_.begin(), points_.end(), std::back_inserter(out.points_),
               keep);
  return out;
}

bool IntTupleSet::isSubsetOf(const IntTupleSet& other) const {
  requireSameSpace(other);
  return std::includes(other.points_.begin(), other.points_.end(),
                       points_.begin(), points_.end());
}

const Tuple& IntTupleSet::lexmin() const {
  PIPOLY_CHECK_MSG(!points_.empty(), "lexmin of an empty set");
  return points_.front();
}

const Tuple& IntTupleSet::lexmax() const {
  PIPOLY_CHECK_MSG(!points_.empty(), "lexmax of an empty set");
  return points_.back();
}

std::vector<DimBounds> IntTupleSet::rectangularHull() const {
  PIPOLY_CHECK_MSG(!points_.empty(), "hull of an empty set");
  std::vector<DimBounds> box(space_.arity());
  for (std::size_t d = 0; d < space_.arity(); ++d)
    box[d] = {points_.front()[d], points_.front()[d]};
  for (const Tuple& t : points_) {
    for (std::size_t d = 0; d < space_.arity(); ++d) {
      box[d].lower = std::min(box[d].lower, t[d]);
      box[d].upper = std::max(box[d].upper, t[d]);
    }
  }
  return box;
}

Value IntTupleSet::strideOfDim(std::size_t dim) const {
  PIPOLY_CHECK(dim < space_.arity());
  PIPOLY_CHECK_MSG(!points_.empty(), "stride of an empty set");
  Value base = points_.front()[dim];
  Value lo = base;
  for (const Tuple& t : points_)
    lo = std::min(lo, t[dim]);
  Value g = 0;
  for (const Tuple& t : points_)
    g = std::gcd(g, t[dim] - lo);
  return g;
}

std::string IntTupleSet::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntTupleSet& s) {
  os << "{ ";
  bool first = true;
  for (const Tuple& t : s.points()) {
    if (!first)
      os << "; ";
    os << s.space().name() << t;
    first = false;
  }
  return os << " }";
}

} // namespace pipoly::pb
