#include "presburger/set.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pipoly::pb {

const RowBuffer& IntTupleSet::emptyRowBuffer() {
  static const RowBuffer empty;
  return empty;
}

void IntTupleSet::adoptSorted(RowBuffer&& data) {
  const std::size_t w = arity();
  PIPOLY_ASSERT(w > 0 || data.empty());
  PIPOLY_ASSERT(rows::isSortedUnique(data, w));
  if (data.empty()) {
    rows_.reset();
    count_ = 0;
    return;
  }
  count_ = data.size() / w;
  rows_ = std::make_shared<const RowBuffer>(std::move(data));
}

IntTupleSet::IntTupleSet(Space space, std::vector<Tuple> points)
    : space_(std::move(space)) {
  const std::size_t w = arity();
  for (const Tuple& t : points)
    PIPOLY_CHECK_MSG(t.size() == w,
                     "tuple arity does not match space " + space_.name());
  if (w == 0) {
    count_ = points.empty() ? 0 : 1;
    return;
  }
  RowBuffer data;
  data.reserve(points.size() * w);
  for (const Tuple& t : points)
    rows::append(data, t.data(), w);
  rows::sortUnique(data, w);
  adoptSorted(std::move(data));
}

IntTupleSet IntTupleSet::fromPolyhedron(Space space, const Polyhedron& poly) {
  PIPOLY_CHECK(space.arity() == poly.numDims());
  // Polyhedron enumeration is already lexicographic and duplicate-free:
  // emit rows straight into flat storage, no build-then-sort.
  IntTupleSet s(std::move(space));
  const std::size_t w = s.arity();
  RowBuffer data;
  std::size_t visits = 0;
  poly.forEachPoint([&](const Tuple& t) {
    ++visits;
    rows::append(data, t.data(), w);
    return true;
  });
  if (w == 0) {
    s.count_ = visits > 0 ? 1 : 0;
    return s;
  }
  s.adoptSorted(std::move(data));
  return s;
}

IntTupleSet IntTupleSet::rectangle(Space space,
                                   const std::vector<Value>& extents) {
  PIPOLY_CHECK(space.arity() == extents.size());
  IntTupleSet s(std::move(space));
  const std::size_t w = extents.size();
  if (w == 0) {
    s.count_ = 1; // the empty product contains exactly the empty tuple
    return s;
  }
  std::size_t count = 1;
  for (Value e : extents) {
    if (e <= 0)
      return s; // empty rectangle
    count *= static_cast<std::size_t>(e);
  }
  // Odometer emit: rows are generated directly in lexicographic order.
  RowBuffer data;
  data.reserve(count * w);
  std::vector<Value> cur(w, 0);
  for (;;) {
    data.insert(data.end(), cur.begin(), cur.end());
    std::size_t d = w;
    while (d > 0) {
      --d;
      if (++cur[d] < extents[d])
        break;
      cur[d] = 0;
      if (d == 0) {
        s.adoptSorted(std::move(data));
        return s;
      }
    }
  }
}

IntTupleSet IntTupleSet::fromSortedRows(Space space, RowBuffer rowsData) {
  IntTupleSet s(std::move(space));
  PIPOLY_CHECK_MSG(s.arity() > 0 || rowsData.empty(),
                   "fromSortedRows needs a non-zero arity");
  PIPOLY_CHECK(s.arity() == 0 || rowsData.size() % s.arity() == 0);
  s.adoptSorted(std::move(rowsData));
  return s;
}

IntTupleSet IntTupleSet::fromRows(Space space, RowBuffer rowsData) {
  IntTupleSet s(std::move(space));
  PIPOLY_CHECK_MSG(s.arity() > 0 || rowsData.empty(),
                   "fromRows needs a non-zero arity");
  PIPOLY_CHECK(s.arity() == 0 || rowsData.size() % s.arity() == 0);
  rows::sortUnique(rowsData, s.arity());
  s.adoptSorted(std::move(rowsData));
  return s;
}

bool IntTupleSet::contains(TupleView t) const {
  const std::size_t w = arity();
  if (t.size() != w || empty())
    return false;
  if (w == 0)
    return true; // non-empty arity-0 set holds exactly the empty tuple
  const RowBuffer& data = *rows_;
  const std::size_t i =
      rows::lowerBound(data.data(), count_, w, 0, t.data(), w);
  return i < count_ && rows::equal(&data[i * w], t.data(), w);
}

void IntTupleSet::requireSameSpace(const IntTupleSet& other) const {
  PIPOLY_CHECK_MSG(space_ == other.space_,
                   "set operation across different spaces: " + space_.name() +
                       " vs " + other.space_.name());
}

IntTupleSet IntTupleSet::unite(const IntTupleSet& other) const {
  requireSameSpace(other);
  if (empty())
    return other;
  if (other.empty() || rows_ == other.rows_)
    return *this;
  const std::size_t w = arity();
  if (w == 0) {
    IntTupleSet out(space_);
    out.count_ = 1;
    return out;
  }
  const RowBuffer& a = *rows_;
  const RowBuffer& b = *other.rows_;
  IntTupleSet out(space_);
  // Disjoint-range fast path: unions accumulated in sweep order append
  // strictly later point ranges.
  if (rows::less(&a[a.size() - w], b.data(), w)) {
    RowBuffer data;
    data.reserve(a.size() + b.size());
    data.insert(data.end(), a.begin(), a.end());
    data.insert(data.end(), b.begin(), b.end());
    out.adoptSorted(std::move(data));
    return out;
  }
  if (rows::less(&b[b.size() - w], a.data(), w)) {
    RowBuffer data;
    data.reserve(a.size() + b.size());
    data.insert(data.end(), b.begin(), b.end());
    data.insert(data.end(), a.begin(), a.end());
    out.adoptSorted(std::move(data));
    return out;
  }
  out.adoptSorted(rows::unionRows(a, b, w));
  return out;
}

IntTupleSet IntTupleSet::intersect(const IntTupleSet& other) const {
  requireSameSpace(other);
  if (rows_ == other.rows_ && count_ == other.count_)
    return *this;
  if (empty() || other.empty())
    return IntTupleSet(space_);
  const std::size_t w = arity();
  if (w == 0) {
    IntTupleSet out(space_);
    out.count_ = 1;
    return out;
  }
  RowBuffer data = rows::intersectRows(*rows_, *other.rows_, w);
  if (data.size() == rows_->size())
    return *this; // everything survived: share
  IntTupleSet out(space_);
  out.adoptSorted(std::move(data));
  return out;
}

IntTupleSet IntTupleSet::subtract(const IntTupleSet& other) const {
  requireSameSpace(other);
  if (empty() || other.empty())
    return *this;
  if (rows_ == other.rows_ && count_ == other.count_)
    return IntTupleSet(space_);
  const std::size_t w = arity();
  if (w == 0)
    return IntTupleSet(space_); // both non-empty: () - () = {}
  RowBuffer data = rows::differenceRows(*rows_, *other.rows_, w);
  if (data.size() == rows_->size())
    return *this; // nothing removed: share
  IntTupleSet out(space_);
  out.adoptSorted(std::move(data));
  return out;
}

bool IntTupleSet::isSubsetOf(const IntTupleSet& other) const {
  requireSameSpace(other);
  if (empty() || (rows_ == other.rows_ && count_ == other.count_))
    return true;
  if (count_ > other.count_)
    return false;
  const std::size_t w = arity();
  if (w == 0)
    return other.count_ > 0;
  return rows::includesRows(*other.rows_, *rows_, w);
}

Tuple IntTupleSet::lexmin() const {
  PIPOLY_CHECK_MSG(!empty(), "lexmin of an empty set");
  return Tuple(points().front());
}

Tuple IntTupleSet::lexmax() const {
  PIPOLY_CHECK_MSG(!empty(), "lexmax of an empty set");
  return Tuple(points().back());
}

std::vector<DimBounds> IntTupleSet::rectangularHull() const {
  PIPOLY_CHECK_MSG(!empty(), "hull of an empty set");
  const std::size_t w = arity();
  std::vector<DimBounds> box(w);
  if (w == 0)
    return box;
  const RowBuffer& data = *rows_;
  for (std::size_t d = 0; d < w; ++d)
    box[d] = {data[d], data[d]};
  for (std::size_t i = 1; i < count_; ++i) {
    const Value* row = &data[i * w];
    for (std::size_t d = 0; d < w; ++d) {
      box[d].lower = std::min(box[d].lower, row[d]);
      box[d].upper = std::max(box[d].upper, row[d]);
    }
  }
  return box;
}

Value IntTupleSet::strideOfDim(std::size_t dim) const {
  PIPOLY_CHECK(dim < arity());
  PIPOLY_CHECK_MSG(!empty(), "stride of an empty set");
  const std::size_t w = arity();
  const RowBuffer& data = *rows_;
  Value lo = data[dim];
  for (std::size_t i = 1; i < count_; ++i)
    lo = std::min(lo, data[i * w + dim]);
  Value g = 0;
  for (std::size_t i = 0; i < count_; ++i)
    g = std::gcd(g, data[i * w + dim] - lo);
  return g;
}

std::string IntTupleSet::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntTupleSet& s) {
  os << "{ ";
  bool first = true;
  for (TupleView t : s.points()) {
    if (!first)
      os << "; ";
    os << s.space().name() << t;
    first = false;
  }
  return os << " }";
}

} // namespace pipoly::pb
