#pragma once

// A small parser for isl-like set/map notation, used by tests and examples:
//
//   parseSet("{ S[i,j] : 0 <= i < N and 0 <= j <= i }", {{"N", 8}})
//   parseMap("{ S[i,j] -> A[i, 2*j] : 0 <= i < 4 and 0 <= j < 4 }", {})
//
// Conditions are conjunctions of (possibly chained) affine comparisons over
// the tuple variables and the provided parameter bindings. The described
// region must be bounded; the parser enumerates its integer points into an
// explicit IntTupleSet / IntMap.

#include "presburger/map.hpp"
#include "presburger/set.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pipoly::pb {

using ParamBindings = std::map<std::string, Value>;

IntTupleSet parseSet(std::string_view text, const ParamBindings& params = {});
IntMap parseMap(std::string_view text, const ParamBindings& params = {});

} // namespace pipoly::pb
