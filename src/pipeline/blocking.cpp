#include "pipeline/blocking.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

pb::IntMap blockingMap(const pb::IntTupleSet& domain,
                       const pb::IntTupleSet& boundaries) {
  PIPOLY_CHECK(boundaries.isSubsetOf(domain));
  PIPOLY_CHECK_MSG(!domain.empty(), "blocking an empty domain");
  const auto& bounds = boundaries.points();
  const pb::Tuple& last = domain.lexmax();
  std::vector<pb::IntMap::Pair> pairs;
  pairs.reserve(domain.size());
  // Both point vectors are sorted, so the smallest boundary lexge each
  // iteration advances monotonically: one merge sweep instead of a
  // binary search per iteration.
  auto bound = bounds.begin();
  for (const pb::Tuple& it : domain.points()) {
    while (bound != bounds.end() && *bound < it)
      ++bound;
    pairs.emplace_back(it, bound == bounds.end() ? last : *bound);
  }
  pb::IntMap result(domain.space(), domain.space(), std::move(pairs));
  PIPOLY_ASSERT(result.isSingleValued());
  return result;
}

pb::IntMap blockingMapNaive(const pb::IntTupleSet& domain,
                            const pb::IntTupleSet& boundaries) {
  // Eq. 2: B' = lexleset(I, B); V = lexmin(B').
  pb::IntMap covered = pb::IntMap::lexLeSet(domain, boundaries)
                           .lexminPerDomain();
  // Remainder rule: iterations past the last boundary map to lexmax(I).
  pb::IntTupleSet rest = domain.subtract(covered.domain());
  std::vector<pb::IntMap::Pair> extra;
  for (const pb::Tuple& it : rest.points())
    extra.emplace_back(it, domain.lexmax());
  return covered.unite(
      pb::IntMap(domain.space(), domain.space(), std::move(extra)));
}

pb::IntMap sourceBlockingMap(const pb::IntTupleSet& srcDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(srcDomain, pipelineMap.domain());
}

pb::IntMap targetBlockingMap(const pb::IntTupleSet& tgtDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(tgtDomain, pipelineMap.range());
}

pb::IntMap integrateBlockingMaps(const std::vector<pb::IntMap>& maps) {
  PIPOLY_CHECK_MSG(!maps.empty(), "no blocking maps to integrate");
  if (maps.size() == 1)
    return maps.front().lexminPerDomain();

  // Blocking maps are total and single-valued on one shared domain, so
  // every map lists the same domain points at the same indices and Σ is a
  // per-index lexmin over the k image columns — one O(k·|domain|) sweep
  // instead of the old pairwise unite chain (O(k²·|domain|) with a full
  // re-merge per step).
  const pb::IntMap& first = maps.front();
  bool aligned = true;
  for (const pb::IntMap& m : maps)
    aligned = aligned && m.size() == first.size() &&
              m.domainSpace() == first.domainSpace() &&
              m.rangeSpace() == first.rangeSpace();
  if (aligned) {
    std::vector<pb::IntMap::Pair> pairs;
    pairs.reserve(first.size());
    for (std::size_t i = 0; i < first.size() && aligned; ++i) {
      const pb::IntMap::Pair* best = &first.pairs()[i];
      for (std::size_t k = 1; k < maps.size(); ++k) {
        const pb::IntMap::Pair& p = maps[k].pairs()[i];
        if (p.first != best->first) {
          aligned = false; // different domains after all; fall back
          break;
        }
        if (p.second < best->second)
          best = &p;
      }
      pairs.push_back(*best);
    }
    if (aligned)
      return pb::IntMap(first.domainSpace(), first.rangeSpace(),
                        std::move(pairs));
  }

  // General fallback for maps over differing domains: merge all sorted
  // pair vectors at once, then keep the smallest image per domain point.
  std::vector<pb::IntMap::Pair> all;
  std::size_t total = 0;
  for (const pb::IntMap& m : maps)
    total += m.size();
  all.reserve(total);
  for (const pb::IntMap& m : maps)
    all.insert(all.end(), m.pairs().begin(), m.pairs().end());
  return pb::IntMap(first.domainSpace(), first.rangeSpace(), std::move(all))
      .lexminPerDomain();
}

} // namespace pipoly::pipeline
