#include "pipeline/blocking.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

pb::IntMap blockingMap(const pb::IntTupleSet& domain,
                       const pb::IntTupleSet& boundaries) {
  PIPOLY_CHECK(boundaries.isSubsetOf(domain));
  PIPOLY_CHECK_MSG(!domain.empty(), "blocking an empty domain");
  const std::size_t a = domain.arity();
  if (a == 0)
    return pb::IntMap(domain.space(), domain.space(),
                      {{pb::Tuple{}, pb::Tuple{}}});
  const pb::RowBuffer& dom = domain.rowData();
  const pb::RowBuffer& bnd = boundaries.rowData();
  const std::size_t nd = domain.size(), nb = boundaries.size();
  const pb::Tuple last = domain.lexmax();
  pb::RowBuffer rows;
  rows.reserve(nd * 2 * a);
  // Both row buffers are sorted, so the smallest boundary lexge each
  // iteration advances monotonically: one merge sweep instead of a
  // binary search per iteration. Emission is keyed by the iteration, so
  // the rows come out sorted.
  std::size_t j = 0;
  for (std::size_t i = 0; i < nd; ++i) {
    const pb::Value* it = &dom[i * a];
    while (j < nb && pb::rows::less(&bnd[j * a], it, a))
      ++j;
    pb::rows::append(rows, it, a);
    pb::rows::append(rows, j == nb ? last.data() : &bnd[j * a], a);
  }
  pb::IntMap result = pb::IntMap::fromSortedRows(
      domain.space(), domain.space(), std::move(rows));
  PIPOLY_ASSERT(result.isSingleValued());
  return result;
}

pb::IntMap blockingMapNaive(const pb::IntTupleSet& domain,
                            const pb::IntTupleSet& boundaries) {
  // Eq. 2: B' = lexleset(I, B); V = lexmin(B').
  pb::IntMap covered = pb::IntMap::lexLeSet(domain, boundaries)
                           .lexminPerDomain();
  // Remainder rule: iterations past the last boundary map to lexmax(I).
  pb::IntTupleSet rest = domain.subtract(covered.domain());
  std::vector<pb::IntMap::Pair> extra;
  for (const pb::Tuple& it : rest.points())
    extra.emplace_back(it, domain.lexmax());
  return covered.unite(
      pb::IntMap(domain.space(), domain.space(), std::move(extra)));
}

pb::IntMap sourceBlockingMap(const pb::IntTupleSet& srcDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(srcDomain, pipelineMap.domain());
}

pb::IntMap targetBlockingMap(const pb::IntTupleSet& tgtDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(tgtDomain, pipelineMap.range());
}

pb::IntMap integrateBlockingMaps(const std::vector<pb::IntMap>& maps) {
  PIPOLY_CHECK_MSG(!maps.empty(), "no blocking maps to integrate");
  if (maps.size() == 1)
    return maps.front().lexminPerDomain();

  const pb::IntMap& first = maps.front();
  const std::size_t inA = first.domainSpace().arity();
  const std::size_t outA = first.rangeSpace().arity();
  const std::size_t w = inA + outA;
  if (w == 0) {
    pb::IntMap acc = first;
    for (const pb::IntMap& m : maps)
      acc = acc.unite(m);
    return acc;
  }

  // Blocking maps are total and single-valued on one shared domain, so
  // every map lists the same domain points at the same row indices and Σ
  // is a per-index lexmin over the k image columns — one O(k·|domain|)
  // sweep instead of the old pairwise unite chain (O(k²·|domain|) with a
  // full re-merge per step).
  bool aligned = true;
  for (const pb::IntMap& m : maps)
    aligned = aligned && m.size() == first.size() &&
              m.domainSpace() == first.domainSpace() &&
              m.rangeSpace() == first.rangeSpace();
  if (aligned) {
    const std::size_t n = first.size();
    std::vector<const pb::RowBuffer*> bufs;
    bufs.reserve(maps.size());
    for (const pb::IntMap& m : maps)
      bufs.push_back(&m.rowData());
    pb::RowBuffer rows;
    rows.reserve(n * w);
    for (std::size_t i = 0; i < n && aligned; ++i) {
      const pb::Value* best = &(*bufs[0])[i * w];
      for (std::size_t k = 1; k < maps.size(); ++k) {
        const pb::Value* p = &(*bufs[k])[i * w];
        if (!pb::rows::equal(p, best, inA)) {
          aligned = false; // different domains after all; fall back
          break;
        }
        if (pb::rows::less(p + inA, best + inA, outA))
          best = p;
      }
      if (aligned)
        pb::rows::append(rows, best, w);
    }
    if (aligned)
      return pb::IntMap::fromRows(first.domainSpace(), first.rangeSpace(),
                                  std::move(rows));
  }

  // General fallback for maps over differing domains: concatenate all row
  // buffers, sort once, then keep the smallest image per domain point.
  pb::RowBuffer all;
  std::size_t total = 0;
  for (const pb::IntMap& m : maps)
    total += m.size();
  all.reserve(total * w);
  for (const pb::IntMap& m : maps)
    all.insert(all.end(), m.rowData().begin(), m.rowData().end());
  return pb::IntMap::fromRows(first.domainSpace(), first.rangeSpace(),
                              std::move(all))
      .lexminPerDomain();
}

} // namespace pipoly::pipeline
