#include "pipeline/blocking.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

pb::IntMap blockingMap(const pb::IntTupleSet& domain,
                       const pb::IntTupleSet& boundaries) {
  PIPOLY_CHECK(boundaries.isSubsetOf(domain));
  PIPOLY_CHECK_MSG(!domain.empty(), "blocking an empty domain");
  const auto& bounds = boundaries.points();
  const pb::Tuple& last = domain.lexmax();
  std::vector<pb::IntMap::Pair> pairs;
  pairs.reserve(domain.size());
  for (const pb::Tuple& it : domain.points()) {
    auto bound = std::lower_bound(bounds.begin(), bounds.end(), it);
    pairs.emplace_back(it, bound == bounds.end() ? last : *bound);
  }
  pb::IntMap result(domain.space(), domain.space(), std::move(pairs));
  PIPOLY_ASSERT(result.isSingleValued());
  return result;
}

pb::IntMap blockingMapNaive(const pb::IntTupleSet& domain,
                            const pb::IntTupleSet& boundaries) {
  // Eq. 2: B' = lexleset(I, B); V = lexmin(B').
  pb::IntMap covered = pb::IntMap::lexLeSet(domain, boundaries)
                           .lexminPerDomain();
  // Remainder rule: iterations past the last boundary map to lexmax(I).
  pb::IntTupleSet rest = domain.subtract(covered.domain());
  std::vector<pb::IntMap::Pair> extra;
  for (const pb::Tuple& it : rest.points())
    extra.emplace_back(it, domain.lexmax());
  return covered.unite(
      pb::IntMap(domain.space(), domain.space(), std::move(extra)));
}

pb::IntMap sourceBlockingMap(const pb::IntTupleSet& srcDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(srcDomain, pipelineMap.domain());
}

pb::IntMap targetBlockingMap(const pb::IntTupleSet& tgtDomain,
                             const pb::IntMap& pipelineMap) {
  return blockingMap(tgtDomain, pipelineMap.range());
}

pb::IntMap integrateBlockingMaps(const std::vector<pb::IntMap>& maps) {
  PIPOLY_CHECK_MSG(!maps.empty(), "no blocking maps to integrate");
  pb::IntMap acc = maps.front();
  for (std::size_t i = 1; i < maps.size(); ++i)
    acc = acc.unite(maps[i]);
  return acc.lexminPerDomain();
}

} // namespace pipoly::pipeline
