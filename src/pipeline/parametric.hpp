#pragma once

// §4.1 in symbolic form. The paper's pipeline map for Listing 1 keeps N
// parametric; this module reproduces that: for the common shape of an
// identity-write source and a single separable strided read
//
//   source S:  domain  lo^S_d <= i_d < hi^S_d (parametric rectangles),
//              writes  A[i_0]...[i_{n-1}]
//   target T:  domain  lo^T_d <= j_d < hi^T_d,
//              reads   A[c_0 j_0 + o_0]...[c_{n-1} j_{n-1} + o_{n-1}],
//              with c_d >= 1
//
// the pipeline map is the closed form
//
//   T_{S,T} = { S[i] -> T[j] : i_d = c_d j_d + o_d,
//               j in dom(T), i in dom(S) }
//
// returned as a pb::ParamMap whose instantiation is bit-identical to the
// explicit pipelineMap() (tests check this for many parameter values).

#include "presburger/param.hpp"

#include <optional>
#include <string>
#include <vector>

namespace pipoly::pipeline {

/// A parametric rectangular statement description.
struct ParamRectStatement {
  std::string name;
  /// Per dimension: lo <= x_d < hi.
  std::vector<std::pair<pb::ParamExpr, pb::ParamExpr>> bounds;

  std::size_t depth() const { return bounds.size(); }
  pb::ParamSet domain(const std::vector<std::string>& dimNames = {}) const;
};

/// A separable strided read: subscript_d = coeff_d * j_d + offset_d. The
/// offsets may be parameter-affine (constants convert implicitly).
struct SeparableRead {
  std::vector<pb::Value> coeffs;     // all >= 1
  std::vector<pb::ParamExpr> offsets;
};

/// The closed-form symbolic pipeline map. Throws on malformed input
/// (mismatched depths, non-positive coefficients).
pb::ParamMap parametricPipelineMap(const ParamRectStatement& source,
                                   const ParamRectStatement& target,
                                   const SeparableRead& read);

} // namespace pipoly::pipeline
