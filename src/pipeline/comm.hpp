#pragma once

// Communication analysis for the channel execution route (the ROADMAP's
// "communication-aware blocking" item, after Alias, *Improving
// Communication Patterns in Polyhedral Process Networks*). The blocking
// maps already define producer/consumer block pairs, so for every
// pipeline edge T_{S,T} this pass computes, polyhedrally:
//
//   * the inter-block communication volume — the distinct array elements
//     the producer statement writes that the consumer statement reads
//     (per edge, and the per-producer-block maximum),
//   * the per-edge peak in-flight footprint — the largest number of
//     produced-but-not-yet-consumed block tokens (and their bytes) under
//     the unthrottled ASAP lockstep schedule, where every stage finishes
//     one block per round as soon as its eq.-4 requirements are met, and
//   * from that peak a bounded channel capacity: the minimum SPSC ring
//     size such that the steady-state skew of the blocking maps never
//     blocks that legal schedule.
//
// Separable pairs (symbolic.hpp's closed-form shape) get a parametric
// volume fast path mirroring param_detect: the element count is a product
// of per-dimension interval counts, no set intersection materialized.
//
// The result feeds the channel tasking backend (ring capacities), the
// simulator's communication cost model, the JSON/DOT exports and the
// pipolyc report.

#include "pipeline/detect.hpp"
#include "runtime/placement.hpp"
#include "scop/scop.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pipoly::pipeline {

struct CommOptions {
  /// Bytes per array element. The kernel suite's arrays hold 64-bit
  /// integers (exact oracle fingerprints), so 8 is the default.
  std::size_t elementSize = 8;

  /// Mirror of DetectOptions::parametricMode for the volume computation:
  /// Auto takes the closed form on separable pairs (bit-identical to the
  /// explicit intersection), Off always materializes the intersection.
  enum class ParametricMode { Off, Auto };
  ParametricMode parametricMode = ParametricMode::Auto;

  /// Floor for the sized channel capacity. Two slots keep one block in
  /// flight while the next is produced even on edges with lockstep peak 1.
  std::uint32_t minCapacitySlots = 2;
};

/// Communication summary of one pipeline edge (one PipelineInfo::maps
/// entry): statement `srcIdx` produces for statement `tgtIdx`.
struct EdgeComm {
  std::size_t srcIdx = 0;
  std::size_t tgtIdx = 0;
  std::size_t mapIdx = 0; // index into PipelineInfo::maps

  /// Distinct array elements written by src and read by tgt.
  std::uint64_t elements = 0;
  std::uint64_t totalBytes = 0; // elements * elementSize
  /// Largest number of bytes any single producer block feeds the edge.
  std::uint64_t maxBlockBytes = 0;

  /// Peak produced-but-unconsumed block tokens under the ASAP lockstep
  /// schedule, and the live bytes at that peak.
  std::uint32_t peakInFlightTokens = 0;
  std::uint64_t peakInFlightBytes = 0;
  /// max(minCapacitySlots, peakInFlightTokens): ring slots such that the
  /// ASAP schedule never stalls on a full channel.
  std::uint32_t capacitySlots = 2;

  /// The volume came from the separable closed form (no intersection
  /// materialized).
  bool parametric = false;
};

struct CommInfo {
  /// One entry per PipelineInfo::maps entry, in the same order.
  std::vector<EdgeComm> edges;

  std::uint64_t totalBytes() const {
    std::uint64_t sum = 0;
    for (const EdgeComm& e : edges)
      sum += e.totalBytes;
    return sum;
  }

  /// The edge for a statement pair (pipeline maps are unique per pair),
  /// or nullptr.
  const EdgeComm* edge(std::size_t srcIdx, std::size_t tgtIdx) const {
    for (const EdgeComm& e : edges)
      if (e.srcIdx == srcIdx && e.tgtIdx == tgtIdx)
        return &e;
    return nullptr;
  }

  /// Sized ring capacity for a statement pair; `fallback` when the pair
  /// has no analyzed edge (the channel backend's default capacity).
  std::uint32_t capacityFor(std::size_t srcIdx, std::size_t tgtIdx,
                            std::uint32_t fallback) const {
    const EdgeComm* e = edge(srcIdx, tgtIdx);
    return e != nullptr ? e->capacitySlots : fallback;
  }

  /// The analyzed per-edge bytes as stage-partitioner weights:
  /// `stmtOfStage` maps stage index -> statement index (the channel
  /// backend's / simulator's stage order), and every analyzed edge whose
  /// endpoints are both staged becomes one rt::StageEdge weighted by its
  /// totalBytes (floor 1 so an empty-volume edge still counts as an
  /// edge). This is the single place the polyhedral byte counts cross
  /// into the placement layer — the channel backend, the simulator and
  /// the optimizer's placement objective all weigh the same edges.
  std::vector<rt::StageEdge>
  stageEdges(const std::vector<std::size_t>& stmtOfStage) const;
};

/// Computes the per-edge communication summary for a detection result.
CommInfo analyzeCommunication(const scop::Scop& scop, const PipelineInfo& info,
                              const CommOptions& options = {});

/// Test oracle: the edge volume by brute-force point counting — enumerate
/// every written and every read element through the raw affine accesses
/// (no IntMap machinery) and count the distinct elements in both sets.
std::uint64_t commVolumeNaive(const scop::Scop& scop, std::size_t srcIdx,
                              std::size_t tgtIdx);

} // namespace pipoly::pipeline
