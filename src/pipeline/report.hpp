#pragma once

// Human-readable diagnostics for the pipeline detection: per statement
// pair, *why* a pipeline exists (or does not) — dependence distances,
// block counts, pipeline-map strides, per-nest parallelism — plus a
// per-statement blocking summary. Tooling support for users adopting the
// library (surfaced by `pipolyc`).

#include "pipeline/comm.hpp"
#include "pipeline/detect.hpp"
#include "scop/scop.hpp"

#include <string>

namespace pipoly::pipeline {

/// Renders a report like:
///
///   statement S: 361 iterations, serial (carried deps at dims 0, 1)
///   statement R: 81 iterations, serial (carried deps at dims 0, 1)
///   pipeline S -> R: 81 stage boundaries, source stride (0, 2),
///     enables one R block per 2 S iterations
///   blocking: S -> 82 blocks (median 4 its), R -> 81 blocks (median 1 its)
///
/// With a communication analysis (`comm` non-null) the report appends a
/// per-edge communication section: polyhedral volume, peak in-flight
/// footprint and the sized channel capacity of each pipeline edge.
std::string renderReport(const scop::Scop& scop, const PipelineInfo& info,
                         const CommInfo* comm = nullptr);

} // namespace pipoly::pipeline
