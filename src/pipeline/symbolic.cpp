#include "pipeline/symbolic.hpp"

#include "pipeline/lattice.hpp"
#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

namespace {

/// The write relation is the identity access A[i0][i1]...: rank equals
/// depth, subscript d is exactly dimension d.
bool isIdentityWrite(const scop::Statement& stmt, const scop::Access& w) {
  if (w.numAuxDims() != 0 || w.subscripts.numOutputs() != stmt.depth())
    return false;
  for (std::size_t d = 0; d < stmt.depth(); ++d) {
    const pb::AffineExpr& e = w.subscripts.output(d);
    if (e.constantTerm() != 0)
      return false;
    for (std::size_t k = 0; k < e.numDims(); ++k)
      if (e.coeff(k) != (k == d ? 1 : 0))
        return false;
  }
  return true;
}

/// Aux coefficients must be non-negative so the aux-rectangle maximum sits
/// at the upper corner.
bool auxMonotone(const scop::Access& r, std::size_t depth) {
  for (const pb::AffineExpr& e : r.subscripts.outputs())
    for (std::size_t k = depth; k < e.numDims(); ++k)
      if (e.coeff(k) < 0)
        return false;
  return true;
}

/// Evaluates a read access at iteration `j`, with aux dims pinned to the
/// upper corner of their rectangle.
pb::Tuple evalAtAuxCorner(const scop::Access& r, const pb::Tuple& j) {
  std::vector<pb::Value> full(j.begin(), j.end());
  for (pb::Value ext : r.auxExtents)
    full.push_back(ext - 1);
  return r.subscripts.evaluate(pb::Tuple(std::move(full)));
}

} // namespace

bool symbolicPipelineApplies(const scop::Scop& scop, std::size_t srcIdx,
                             std::size_t tgtIdx) {
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx)) {
    bool read = false;
    for (const scop::Access& r : tgt.reads())
      read = read || r.arrayId == arrayId;
    if (!read)
      continue;
    for (const scop::Access& w : src.writes())
      if (w.arrayId == arrayId && !isIdentityWrite(src, w))
        return false;
    for (const scop::Access& r : tgt.reads())
      if (r.arrayId == arrayId && !auxMonotone(r, tgt.depth()))
        return false;
  }
  return true;
}

std::optional<pb::IntMap> trySymbolicPipelineMap(const scop::Scop& scop,
                                                 std::size_t srcIdx,
                                                 std::size_t tgtIdx) {
  if (!symbolicPipelineApplies(scop, srcIdx, tgtIdx))
    return std::nullopt;
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  const pb::IntTupleSet& srcDomain = src.domain();

  // The reads that touch arrays written (identically) by the source.
  std::vector<const scop::Access*> reads;
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx))
    for (const scop::Access& r : tgt.reads())
      if (r.arrayId == arrayId)
        reads.push_back(&r);
  if (reads.empty())
    return pb::IntMap(src.space(), tgt.space());

  // H as a running prefix-lexmax of the pointwise requirement. Identity
  // writes mean the producing iteration *is* the subscript vector.
  std::vector<pb::IntMap::Pair> hPairs; // (target j, last required i)
  bool haveRunning = false;
  pb::Tuple running;
  for (const pb::Tuple& j : tgt.domain().points()) {
    bool havePoint = false;
    pb::Tuple point;
    for (const scop::Access* r : reads) {
      pb::Tuple candidate = evalAtAuxCorner(*r, j);
      if (!srcDomain.contains(candidate)) {
        if (r->numAuxDims() != 0)
          return std::nullopt; // corner argument breaks down; fall back
        continue;              // element never written: no producer
      }
      if (!havePoint || candidate > point) {
        point = std::move(candidate);
        havePoint = true;
      }
    }
    if (!havePoint)
      continue;
    if (!haveRunning || point > running) {
      running = std::move(point);
      haveRunning = true;
    }
    hPairs.emplace_back(j, running);
  }

  // T = lexmax(H^-1): within each run of equal requirement, the last
  // target wins; hPairs is ordered by j with non-decreasing requirement.
  std::vector<pb::IntMap::Pair> tPairs;
  for (std::size_t k = 0; k < hPairs.size(); ++k) {
    if (k + 1 < hPairs.size() && hPairs[k + 1].second == hPairs[k].second)
      continue;
    tPairs.emplace_back(hPairs[k].second, hPairs[k].first);
  }
  return pb::IntMap(src.space(), tgt.space(), std::move(tPairs));
}

const char* toString(ParametricFallback f) {
  switch (f) {
  case ParametricFallback::None:
    return "none";
  case ParametricFallback::NoSharedArray:
    return "no_shared_array";
  case ParametricFallback::MultipleReads:
    return "multiple_reads";
  case ParametricFallback::NonIdentityWrite:
    return "non_identity_write";
  case ParametricFallback::AuxRead:
    return "aux_read";
  case ParametricFallback::NonSeparableRead:
    return "non_separable_read";
  case ParametricFallback::NonMonotoneRead:
    return "non_monotone_read";
  case ParametricFallback::NonRectangularDomain:
    return "non_rectangular_domain";
  case ParametricFallback::kCount:
    break;
  }
  PIPOLY_UNREACHABLE("bad ParametricFallback");
}

namespace {

/// A domain is a full rectangle exactly when it fills its bounding box.
bool isRectangle(const pb::IntTupleSet& domain,
                 const std::vector<pb::DimBounds>& box) {
  pb::Value cells = 1;
  for (const pb::DimBounds& b : box)
    cells *= b.upper - b.lower + 1;
  return static_cast<pb::Value>(domain.size()) == cells;
}

} // namespace

SeparablePairShape classifySeparablePair(const scop::Scop& scop,
                                         std::size_t srcIdx,
                                         std::size_t tgtIdx) {
  SeparablePairShape shape;
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);

  // Exactly one array written by the source and read by the target,
  // through exactly one read access.
  const scop::Access* read = nullptr;
  std::size_t sharedArrays = 0, sharedReads = 0, sharedArrayId = 0;
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx)) {
    std::size_t readsOfArray = 0;
    for (const scop::Access& r : tgt.reads())
      if (r.arrayId == arrayId) {
        ++readsOfArray;
        read = &r;
      }
    if (readsOfArray > 0) {
      ++sharedArrays;
      sharedArrayId = arrayId;
      sharedReads += readsOfArray;
    }
  }
  if (sharedArrays == 0) {
    shape.fallback = ParametricFallback::NoSharedArray;
    return shape;
  }
  if (sharedArrays > 1 || sharedReads > 1) {
    shape.fallback = ParametricFallback::MultipleReads;
    return shape;
  }
  for (const scop::Access& w : src.writes())
    if (w.arrayId == sharedArrayId && !isIdentityWrite(src, w)) {
      shape.fallback = ParametricFallback::NonIdentityWrite;
      return shape;
    }
  if (read->numAuxDims() != 0) {
    shape.fallback = ParametricFallback::AuxRead;
    return shape;
  }

  // Separable monotone read: subscript_d = c_d * j_d + o_d, c_d >= 1.
  const std::size_t n = src.depth();
  if (n == 0 || tgt.depth() != n || read->subscripts.numOutputs() != n) {
    shape.fallback = ParametricFallback::NonSeparableRead;
    return shape;
  }
  shape.coeffs.reserve(n);
  shape.offsets.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    const pb::AffineExpr& e = read->subscripts.output(d);
    for (std::size_t k = 0; k < e.numDims(); ++k)
      if (k != d && e.coeff(k) != 0) {
        shape.fallback = ParametricFallback::NonSeparableRead;
        return shape;
      }
    if (e.coeff(d) < 1) {
      shape.fallback = ParametricFallback::NonMonotoneRead;
      return shape;
    }
    shape.coeffs.push_back(e.coeff(d));
    shape.offsets.push_back(e.constantTerm());
  }

  // Full-rectangle domains (empty domains are trivially fine: no map).
  if (src.domain().empty() || tgt.domain().empty()) {
    shape.vacuous = true;
    return shape;
  }
  shape.srcBox = src.domain().rectangularHull();
  shape.tgtBox = tgt.domain().rectangularHull();
  if (!isRectangle(src.domain(), shape.srcBox) ||
      !isRectangle(tgt.domain(), shape.tgtBox)) {
    shape.fallback = ParametricFallback::NonRectangularDomain;
    shape.srcBox.clear();
    shape.tgtBox.clear();
    return shape;
  }
  return shape;
}

pb::IntMap separablePipelineMap(const scop::Scop& scop, std::size_t srcIdx,
                                std::size_t tgtIdx,
                                const SeparablePairShape& shape) {
  PIPOLY_CHECK(shape.ok());
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  pb::IntMap empty(src.space(), tgt.space());
  if (shape.vacuous)
    return empty;

  // The readers rectangle R: the target box clipped per dimension by the
  // preimage of the source box under j_d -> c_d*j_d + o_d. This is
  // exactly { j : j in Dom(T), c⊙j+o in Dom(S) } — srcDomain.contains of
  // the legacy path, resolved in closed form.
  const std::size_t n = shape.coeffs.size();
  std::vector<pb::Value> lo(n), hi(n);
  std::size_t count = 1;
  for (std::size_t d = 0; d < n; ++d) {
    const pb::Value c = shape.coeffs[d], o = shape.offsets[d];
    lo[d] = std::max(shape.tgtBox[d].lower,
                     ceilDiv(shape.srcBox[d].lower - o, c));
    hi[d] = std::min(shape.tgtBox[d].upper,
                     floorDiv(shape.srcBox[d].upper - o, c));
    if (lo[d] > hi[d])
      return empty; // no read hits the written region: no dependence
    count *= static_cast<std::size_t>(hi[d] - lo[d] + 1);
  }

  // T = { c⊙j+o -> j : j in R }. j runs in lexicographic order and
  // j -> c⊙j+o preserves it (c_d >= 1), so the rows come out sorted.
  pb::RowBuffer data;
  data.reserve(count * 2 * n);
  std::vector<pb::Value> j = lo;
  for (;;) {
    for (std::size_t d = 0; d < n; ++d)
      data.push_back(shape.coeffs[d] * j[d] + shape.offsets[d]);
    data.insert(data.end(), j.begin(), j.end());
    std::size_t d = n;
    while (d-- > 0) {
      if (++j[d] <= hi[d])
        break;
      j[d] = lo[d];
      if (d == 0)
        return pb::IntMap::fromSortedRows(src.space(), tgt.space(),
                                          std::move(data));
    }
  }
}

} // namespace pipoly::pipeline
