#include "pipeline/symbolic.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

namespace {

/// The write relation is the identity access A[i0][i1]...: rank equals
/// depth, subscript d is exactly dimension d.
bool isIdentityWrite(const scop::Statement& stmt, const scop::Access& w) {
  if (w.numAuxDims() != 0 || w.subscripts.numOutputs() != stmt.depth())
    return false;
  for (std::size_t d = 0; d < stmt.depth(); ++d) {
    const pb::AffineExpr& e = w.subscripts.output(d);
    if (e.constantTerm() != 0)
      return false;
    for (std::size_t k = 0; k < e.numDims(); ++k)
      if (e.coeff(k) != (k == d ? 1 : 0))
        return false;
  }
  return true;
}

/// Aux coefficients must be non-negative so the aux-rectangle maximum sits
/// at the upper corner.
bool auxMonotone(const scop::Access& r, std::size_t depth) {
  for (const pb::AffineExpr& e : r.subscripts.outputs())
    for (std::size_t k = depth; k < e.numDims(); ++k)
      if (e.coeff(k) < 0)
        return false;
  return true;
}

/// Evaluates a read access at iteration `j`, with aux dims pinned to the
/// upper corner of their rectangle.
pb::Tuple evalAtAuxCorner(const scop::Access& r, const pb::Tuple& j) {
  std::vector<pb::Value> full(j.begin(), j.end());
  for (pb::Value ext : r.auxExtents)
    full.push_back(ext - 1);
  return r.subscripts.evaluate(pb::Tuple(std::move(full)));
}

} // namespace

bool symbolicPipelineApplies(const scop::Scop& scop, std::size_t srcIdx,
                             std::size_t tgtIdx) {
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx)) {
    bool read = false;
    for (const scop::Access& r : tgt.reads())
      read = read || r.arrayId == arrayId;
    if (!read)
      continue;
    for (const scop::Access& w : src.writes())
      if (w.arrayId == arrayId && !isIdentityWrite(src, w))
        return false;
    for (const scop::Access& r : tgt.reads())
      if (r.arrayId == arrayId && !auxMonotone(r, tgt.depth()))
        return false;
  }
  return true;
}

std::optional<pb::IntMap> trySymbolicPipelineMap(const scop::Scop& scop,
                                                 std::size_t srcIdx,
                                                 std::size_t tgtIdx) {
  if (!symbolicPipelineApplies(scop, srcIdx, tgtIdx))
    return std::nullopt;
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  const pb::IntTupleSet& srcDomain = src.domain();

  // The reads that touch arrays written (identically) by the source.
  std::vector<const scop::Access*> reads;
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx))
    for (const scop::Access& r : tgt.reads())
      if (r.arrayId == arrayId)
        reads.push_back(&r);
  if (reads.empty())
    return pb::IntMap(src.space(), tgt.space());

  // H as a running prefix-lexmax of the pointwise requirement. Identity
  // writes mean the producing iteration *is* the subscript vector.
  std::vector<pb::IntMap::Pair> hPairs; // (target j, last required i)
  bool haveRunning = false;
  pb::Tuple running;
  for (const pb::Tuple& j : tgt.domain().points()) {
    bool havePoint = false;
    pb::Tuple point;
    for (const scop::Access* r : reads) {
      pb::Tuple candidate = evalAtAuxCorner(*r, j);
      if (!srcDomain.contains(candidate)) {
        if (r->numAuxDims() != 0)
          return std::nullopt; // corner argument breaks down; fall back
        continue;              // element never written: no producer
      }
      if (!havePoint || candidate > point) {
        point = std::move(candidate);
        havePoint = true;
      }
    }
    if (!havePoint)
      continue;
    if (!haveRunning || point > running) {
      running = std::move(point);
      haveRunning = true;
    }
    hPairs.emplace_back(j, running);
  }

  // T = lexmax(H^-1): within each run of equal requirement, the last
  // target wins; hPairs is ordered by j with non-decreasing requirement.
  std::vector<pb::IntMap::Pair> tPairs;
  for (std::size_t k = 0; k < hPairs.size(); ++k) {
    if (k + 1 < hPairs.size() && hPairs[k + 1].second == hPairs[k].second)
      continue;
    tPairs.emplace_back(hPairs[k].second, hPairs[k].first);
  }
  return pb::IntMap(src.space(), tgt.space(), std::move(tPairs));
}

} // namespace pipoly::pipeline
