#include "pipeline/param_detect.hpp"

#include "pipeline/parametric.hpp"
#include "support/assert.hpp"

#include <algorithm>
#include <utility>

namespace pipoly::pipeline {

namespace {

/// Symbolic counterpart of symbolic.cpp's isIdentityWrite: subscript d is
/// exactly dimension d with a zero (constant) offset.
bool isIdentityWrite(const scop::ParamStatement& stmt,
                     const scop::ParamAccess& w) {
  if (w.rank() != stmt.depth())
    return false;
  for (std::size_t d = 0; d < stmt.depth(); ++d) {
    if (!(w.offsets[d] == pb::ParamExpr(0)))
      return false;
    for (std::size_t k = 0; k < stmt.depth(); ++k)
      if (w.coeffs[d][k] != (k == d ? 1 : 0))
        return false;
  }
  return true;
}

/// Classifies one candidate pair, mirroring classifySeparablePair's
/// ladder on the symbolic description. `shares` reports whether the pair
/// shares an array at all (pairs that don't are not candidates).
ParamPairPlan classifyPair(const scop::ParamScop& pscop, std::size_t srcIdx,
                           std::size_t tgtIdx, bool& shares) {
  const scop::ParamStatement& src = pscop.statement(srcIdx);
  const scop::ParamStatement& tgt = pscop.statement(tgtIdx);
  ParamPairPlan plan;
  plan.srcIdx = srcIdx;
  plan.tgtIdx = tgtIdx;

  std::vector<std::size_t> written;
  for (const scop::ParamAccess& w : src.writes)
    written.push_back(w.arrayId);
  std::sort(written.begin(), written.end());
  written.erase(std::unique(written.begin(), written.end()), written.end());

  // Exactly one array written by the source and read by the target,
  // through exactly one read access.
  const scop::ParamAccess* read = nullptr;
  std::size_t sharedArrays = 0, sharedReads = 0, sharedArrayId = 0;
  for (std::size_t arrayId : written) {
    std::size_t readsOfArray = 0;
    for (const scop::ParamAccess& r : tgt.reads)
      if (r.arrayId == arrayId) {
        ++readsOfArray;
        read = &r;
      }
    if (readsOfArray > 0) {
      ++sharedArrays;
      sharedArrayId = arrayId;
      sharedReads += readsOfArray;
    }
  }
  shares = sharedArrays > 0;
  if (!shares) {
    plan.fallback = ParametricFallback::NoSharedArray;
    return plan;
  }
  if (sharedArrays > 1 || sharedReads > 1) {
    plan.fallback = ParametricFallback::MultipleReads;
    return plan;
  }
  for (const scop::ParamAccess& w : src.writes)
    if (w.arrayId == sharedArrayId && !isIdentityWrite(src, w)) {
      plan.fallback = ParametricFallback::NonIdentityWrite;
      return plan;
    }

  // Separable monotone read: subscript_d = c_d * j_d + o_d, c_d >= 1
  // (the offsets stay parameter-affine).
  const std::size_t n = src.depth();
  if (tgt.depth() != n || read->rank() != n) {
    plan.fallback = ParametricFallback::NonSeparableRead;
    return plan;
  }
  plan.coeffs.reserve(n);
  plan.offsets.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t k = 0; k < n; ++k)
      if (k != d && read->coeffs[d][k] != 0) {
        plan.fallback = ParametricFallback::NonSeparableRead;
        plan.coeffs.clear();
        plan.offsets.clear();
        return plan;
      }
    if (read->coeffs[d][d] < 1) {
      plan.fallback = ParametricFallback::NonMonotoneRead;
      plan.coeffs.clear();
      plan.offsets.clear();
      return plan;
    }
    plan.coeffs.push_back(read->coeffs[d][d]);
    plan.offsets.push_back(read->offsets[d]);
  }

  // ParamScop domains are parametric rectangles by construction, so the
  // shape is complete: build the closed-form symbolic map.
  ParamRectStatement ps{src.name, src.bounds};
  ParamRectStatement pt{tgt.name, tgt.bounds};
  plan.map =
      parametricPipelineMap(ps, pt, SeparableRead{plan.coeffs, plan.offsets});
  return plan;
}

} // namespace

ParamDetection detectParametric(scop::ParamScop pscop) {
  ParamDetection det(std::move(pscop));
  const std::size_t n = det.scop_.numStatements();
  // Same (t outer, s inner) candidate order as detectPipeline's phase 1.
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t s = 0; s < t; ++s) {
      bool shares = false;
      ParamPairPlan plan = classifyPair(det.scop_, s, t, shares);
      if (shares)
        det.plans_.push_back(std::move(plan));
    }
  return det;
}

std::size_t ParamDetection::regularPlans() const {
  return static_cast<std::size_t>(
      std::count_if(plans_.begin(), plans_.end(),
                    [](const ParamPairPlan& p) { return p.regular(); }));
}

std::size_t ParamDetection::irregularPlans() const {
  return plans_.size() - regularPlans();
}

std::optional<std::vector<pb::DimBounds>>
ParamDetection::evalBox(std::size_t stmtIdx,
                        const pb::ParamBindings& bindings) const {
  const scop::ParamStatement& stmt = scop_.statement(stmtIdx);
  std::vector<pb::DimBounds> box;
  box.reserve(stmt.depth());
  for (const auto& [lo, hi] : stmt.bounds) {
    pb::DimBounds b{lo.evaluate(bindings), hi.evaluate(bindings) - 1};
    if (b.upper < b.lower)
      return std::nullopt; // empty domain
    box.push_back(b);
  }
  return box;
}

std::optional<std::vector<pb::DimBounds>>
ParamDetection::readersRect(const ParamPairPlan& plan,
                            const pb::ParamBindings& bindings) const {
  PIPOLY_CHECK(plan.regular());
  auto srcBox = evalBox(plan.srcIdx, bindings);
  auto tgtBox = evalBox(plan.tgtIdx, bindings);
  if (!srcBox || !tgtBox)
    return std::nullopt;
  const std::size_t n = plan.coeffs.size();
  std::vector<pb::DimBounds> r(n);
  for (std::size_t d = 0; d < n; ++d) {
    const pb::Value c = plan.coeffs[d];
    const pb::Value o = plan.offsets[d].evaluate(bindings);
    r[d].lower =
        std::max((*tgtBox)[d].lower, ceilDiv((*srcBox)[d].lower - o, c));
    r[d].upper =
        std::min((*tgtBox)[d].upper, floorDiv((*srcBox)[d].upper - o, c));
    if (r[d].lower > r[d].upper)
      return std::nullopt; // no read hits the written region
  }
  return r;
}

std::vector<BoundaryLattice>
ParamDetection::boundaryLattices(std::size_t stmtIdx,
                                 const pb::ParamBindings& bindings) const {
  std::vector<BoundaryLattice> out;
  for (const ParamPairPlan& p : plans_) {
    const bool isSrc = p.srcIdx == stmtIdx;
    const bool isTgt = p.tgtIdx == stmtIdx;
    if (!isSrc && !isTgt)
      continue;
    PIPOLY_CHECK_MSG(p.regular(),
                     "statement is touched by a non-parametric pair");
    auto r = readersRect(p, bindings);
    if (!r)
      continue; // vacuous plan contributes no boundaries
    BoundaryLattice lat;
    lat.dims.reserve(r->size());
    for (std::size_t d = 0; d < r->size(); ++d) {
      const pb::Value count = (*r)[d].upper - (*r)[d].lower + 1;
      if (isSrc) {
        // Dom(T) = f(R): start at f(lo), stride c_d.
        const pb::Value o = p.offsets[d].evaluate(bindings);
        lat.dims.push_back(
            {p.coeffs[d] * (*r)[d].lower + o, p.coeffs[d], count});
      } else {
        // Range(T) = R itself, dense.
        lat.dims.push_back({(*r)[d].lower, 1, count});
      }
    }
    out.push_back(std::move(lat));
  }
  return out;
}

ParamSummary ParamDetection::summarize(const pb::ParamBindings& bindings) const {
  PIPOLY_CHECK_MSG(fullyRegular(),
                   "summarize needs a fully parametric scop "
                   "(irregular pairs require the explicit route)");
  ParamSummary out;
  out.statements.reserve(scop_.numStatements());
  for (std::size_t i = 0; i < scop_.numStatements(); ++i) {
    ParamStatementSummary s;
    s.name = scop_.statement(i).name;
    auto box = evalBox(i, bindings);
    if (!box) {
      out.statements.push_back(std::move(s)); // empty: 0 points, 0 blocks
      continue;
    }
    s.domainSize = 1;
    std::vector<pb::Value> hi;
    hi.reserve(box->size());
    for (const pb::DimBounds& b : *box) {
      s.domainSize *= b.upper - b.lower + 1;
      hi.push_back(b.upper);
    }
    std::vector<BoundaryLattice> lats = boundaryLattices(i, bindings);
    if (lats.empty()) {
      s.blockCount = 1; // no pipeline map touches it: one block
    } else {
      // |union of boundary sets|, plus the trailing block whose rep is
      // the domain lexmax when that is not itself a boundary.
      const pb::Tuple lexmax(hi);
      s.blockCount =
          unionSize(lats) + (unionContains(lats, lexmax) ? 0 : 1);
    }
    out.totalBlocks += s.blockCount;
    out.statements.push_back(std::move(s));
  }
  for (const ParamPairPlan& p : plans_)
    if (readersRect(p, bindings))
      ++out.pipelineMaps;
  return out;
}

pb::IntTupleSet
ParamDetection::blockReps(std::size_t stmtIdx,
                          const pb::ParamBindings& bindings) const {
  const scop::ParamStatement& stmt = scop_.statement(stmtIdx);
  pb::Space space(stmt.name, stmt.depth());
  auto box = evalBox(stmtIdx, bindings);
  if (!box)
    return pb::IntTupleSet(space);
  std::vector<pb::Tuple> pts;
  for (const BoundaryLattice& lat : boundaryLattices(stmtIdx, bindings))
    for (const pb::Tuple& t : lat.points(space).points())
      pts.push_back(t);
  std::vector<pb::Value> hi;
  hi.reserve(box->size());
  for (const pb::DimBounds& b : *box)
    hi.push_back(b.upper);
  pts.emplace_back(hi);
  return pb::IntTupleSet(space, std::move(pts));
}

pb::Tuple
ParamDetection::requiredSourceRep(std::size_t planIdx,
                                  const pb::Tuple& targetRep,
                                  const pb::ParamBindings& bindings) const {
  const ParamPairPlan& plan = plans_.at(planIdx);
  PIPOLY_CHECK_MSG(plan.regular(), "requiredSourceRep needs a regular plan");
  auto r = readersRect(plan, bindings);
  PIPOLY_CHECK_MSG(r.has_value(),
                   "pair carries no dependence under these bindings");
  const std::size_t n = r->size();
  PIPOLY_CHECK_MSG(targetRep.size() == n, "target rep arity mismatch");

  // Y_T(rep): the smallest Range(T) = R boundary lex>= the target rep; a
  // rep past every boundary provably reads nothing new, and the explicit
  // route requires the whole pipelined prefix (f of the last reader).
  BoundaryLattice rangeL;
  rangeL.dims.reserve(n);
  for (std::size_t d = 0; d < n; ++d)
    rangeL.dims.push_back(
        {(*r)[d].lower, 1, (*r)[d].upper - (*r)[d].lower + 1});
  std::optional<pb::Tuple> ceil = rangeL.lexCeil(targetRep);
  const pb::Tuple reader = ceil ? std::move(*ceil) : rangeL.lexmax();

  // required = T^-1(boundary) = f(reader).
  pb::Tuple required = pb::Tuple::zeros(n);
  for (std::size_t d = 0; d < n; ++d)
    required[d] =
        plan.coeffs[d] * reader[d] + plan.offsets[d].evaluate(bindings);

  // Sigma_src(required): the source block that produces it.
  std::vector<BoundaryLattice> srcLats =
      boundaryLattices(plan.srcIdx, bindings);
  if (std::optional<pb::Tuple> rep = unionLexCeil(srcLats, required))
    return *rep;
  auto srcBox = evalBox(plan.srcIdx, bindings);
  PIPOLY_CHECK(srcBox.has_value());
  std::vector<pb::Value> hi;
  hi.reserve(srcBox->size());
  for (const pb::DimBounds& b : *srcBox)
    hi.push_back(b.upper);
  return pb::Tuple(hi);
}

} // namespace pipoly::pipeline
