#pragma once

// A symbolic fast path for the pipeline map (§4.1). The explicit
// computation builds the producer relation P = Wr^-1(Rd) point by point —
// O(|target domain| x reads). For the very common shape
//
//   * the source writes A[i0][i1]... (the identity access), and
//   * every target read of A is separable and monotone:
//     A[c0*j0 + o0][c1*j1 + o1]... with c_d >= 1
//
// the map has a closed form: P is lexicographically monotone, so
// H(j) = lexmax over reads of (c*j + o) and T = H^-1 directly — no
// relation materialisation and no prefix maximisation needed.
//
// The result is bit-identical to pipelineMap() (tests cross-check); the
// driver uses it automatically when it applies.

#include "presburger/map.hpp"
#include "scop/scop.hpp"

#include <optional>

namespace pipoly::pipeline {

/// Attempts the symbolic computation; nullopt when the accesses do not
/// have the required shape (the caller falls back to the explicit path).
std::optional<pb::IntMap> trySymbolicPipelineMap(const scop::Scop& scop,
                                                 std::size_t srcIdx,
                                                 std::size_t tgtIdx);

/// True when the source/target pair satisfies the fast-path conditions.
bool symbolicPipelineApplies(const scop::Scop& scop, std::size_t srcIdx,
                             std::size_t tgtIdx);

} // namespace pipoly::pipeline
