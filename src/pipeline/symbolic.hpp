#pragma once

// A symbolic fast path for the pipeline map (§4.1). The explicit
// computation builds the producer relation P = Wr^-1(Rd) point by point —
// O(|target domain| x reads). For the very common shape
//
//   * the source writes A[i0][i1]... (the identity access), and
//   * every target read of A is separable and monotone:
//     A[c0*j0 + o0][c1*j1 + o1]... with c_d >= 1
//
// the map has a closed form: P is lexicographically monotone, so
// H(j) = lexmax over reads of (c*j + o) and T = H^-1 directly — no
// relation materialisation and no prefix maximisation needed.
//
// The result is bit-identical to pipelineMap() (tests cross-check); the
// driver uses it automatically when it applies.

#include "presburger/map.hpp"
#include "scop/scop.hpp"

#include <optional>
#include <vector>

namespace pipoly::pipeline {

/// Attempts the symbolic computation; nullopt when the accesses do not
/// have the required shape (the caller falls back to the explicit path).
std::optional<pb::IntMap> trySymbolicPipelineMap(const scop::Scop& scop,
                                                 std::size_t srcIdx,
                                                 std::size_t tgtIdx);

/// True when the source/target pair satisfies the fast-path conditions.
bool symbolicPipelineApplies(const scop::Scop& scop, std::size_t srcIdx,
                             std::size_t tgtIdx);

// ---------------------------------------------------------------------
// The parametric-first route (detect.hpp's ParametricMode): a stricter
// shape than the per-point symbolic path above, in exchange for a fully
// closed-form pipeline map. A pair qualifies when
//
//   * the target reads exactly one array the source writes, through
//     exactly one access with no aux dims,
//   * every source write of that array is the identity access,
//   * the read is separable and monotone: subscript_d = c_d*j_d + o_d
//     with c_d >= 1 (equal depths), and
//   * both iteration domains are full rectangles.
//
// Then T = { c⊙j+o -> j : j in R } where R clips the target rectangle by
// the preimage of the source rectangle — emitted directly in sorted row
// order, no dependence test and no per-point requirement scan needed.
// The result is bit-identical to trySymbolicPipelineMap / pipelineMap.

/// Why classifySeparablePair rejected a pair (order matters: the first
/// failing condition is reported, and detect's route counters index on
/// these values).
enum class ParametricFallback : unsigned char {
  None = 0,             // shape accepted
  NoSharedArray,        // vacuous pair: target reads nothing source writes
  MultipleReads,        // several shared arrays or several reads of one
  NonIdentityWrite,     // source write is not the identity access
  AuxRead,              // the read has auxiliary dimensions
  NonSeparableRead,     // coupled subscripts or mismatched depths
  NonMonotoneRead,      // some per-dim coefficient < 1
  NonRectangularDomain, // a domain is not a full rectangle
  kCount
};

const char* toString(ParametricFallback f);

/// The classified shape of a parametric-eligible pair. The coefficient,
/// offset and inclusive-box fields are valid only when ok() and both
/// domains are non-empty (`vacuous == false`).
struct SeparablePairShape {
  ParametricFallback fallback = ParametricFallback::None;
  bool vacuous = false; // accepted, but a domain is empty: no map
  std::vector<pb::Value> coeffs;  // c_d >= 1
  std::vector<pb::Value> offsets; // o_d, any sign
  std::vector<pb::DimBounds> srcBox, tgtBox; // inclusive per-dim bounds

  bool ok() const { return fallback == ParametricFallback::None; }
};

SeparablePairShape classifySeparablePair(const scop::Scop& scop,
                                         std::size_t srcIdx,
                                         std::size_t tgtIdx);

/// The closed-form pipeline map for an accepted shape. Empty when the
/// pair has no dependence (the readers rectangle R is empty) — exactly
/// the condition under which the legacy route finds no map.
pb::IntMap separablePipelineMap(const scop::Scop& scop, std::size_t srcIdx,
                                std::size_t tgtIdx,
                                const SeparablePairShape& shape);

} // namespace pipoly::pipeline
