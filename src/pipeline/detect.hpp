#pragma once

// §4 / Algorithm 1 — the full pipeline detection pass. For a SCoP of
// consecutive loop nests it computes, per statement S:
//
//   Σ_S      the integrated pipeline blocking map (eq. 3): iteration ->
//            block representative. Each block is one atomic task.
//   Q_S      the array of in-dependency maps (eq. 4): block representative
//            of S -> last required block representative of a source
//            statement, one map per pipeline map that targets S.
//   Q_S^out  the out-dependency map: the identity on Range(Σ_S).
//
// plus the list of pairwise pipeline maps T_{S,T} the blocks derive from.

#include "pipeline/blocking.hpp"
#include "pipeline/pipeline_map.hpp"
#include "scop/scop.hpp"

#include <vector>

namespace pipoly::pipeline {

struct PipelineMapEntry {
  std::size_t srcIdx;
  std::size_t tgtIdx;
  pb::IntMap map; // T_{S,T}: source space -> target space
};

/// One in-dependency family of a statement: which block of `srcStmtIdx`
/// must have finished before a given block of this statement may run.
struct InRequirement {
  std::size_t srcStmtIdx;
  /// { block rep of this statement -> required block rep(s) of the
  /// source }. Partial: block reps with no requirement from this source
  /// (e.g. the remainder block) are absent. Single-valued under the
  /// paper's chain ordering (eq. 4); multi-valued (exact data-flow
  /// edges) under relaxed same-nest ordering.
  pb::IntMap map;
};

struct StatementPipelineInfo {
  /// Σ_S: iteration -> block representative (total, single-valued).
  pb::IntMap blocking;
  /// Σ_S^-1: block representative -> member iterations (the expansion /
  /// contraction relation used by the schedule tree).
  pb::IntMap expansion;
  /// Range(Σ_S): all block representatives, in execution order.
  pb::IntTupleSet blockReps;
  /// Q_S: one entry per pipeline map targeting this statement.
  std::vector<InRequirement> inRequirements;
  /// Q_S^out: identity on blockReps (what finishing a block publishes).
  pb::IntMap outDependency;
  /// Same-nest ordering. When `chainOrdering` is true (the paper's
  /// semantics, Fig. 8 funcCount protocol), blocks of this statement run
  /// strictly in order. Otherwise (the §7 combination with per-nest
  /// parallelism) only the edges of `selfEdges` — the cross-block
  /// self-dependences — are enforced, and independent blocks of the same
  /// nest may run concurrently.
  bool chainOrdering = true;
  /// { block rep -> earlier block rep it must wait for }; may be
  /// multi-valued. Only meaningful when chainOrdering is false.
  pb::IntMap selfEdges;
};

struct PipelineInfo {
  std::vector<PipelineMapEntry> maps;
  std::vector<StatementPipelineInfo> statements; // indexed by statement

  bool hasPipeline() const { return !maps.empty(); }
  /// Total number of blocks (= tasks) across all statements.
  std::size_t totalBlocks() const;
};

struct DetectOptions {
  /// How the per-pair blocking maps are combined into Σ_S.
  enum class Integration {
    /// Eq. 3: lexmin of the union of all blocking maps (the paper's
    /// optimal blocks, §4.2).
    LexminUnion,
    /// Ablation: keep only the blocking of the first pipeline map each
    /// statement participates in (what a naive pairwise scheme would do).
    FirstMapOnly,
  };
  Integration integration = Integration::LexminUnion;

  /// Task-granularity knob (§7 future work): merge `coarsening`
  /// consecutive blocks into one task. 1 = the paper's blocks.
  std::size_t coarsening = 1;

  /// §7 relaxation: accept sources whose write relations overwrite
  /// locations (P then relates reads to every writer, so requirements
  /// cover the last write).
  bool allowNonInjectiveWrites = false;

  /// §7 combination with per-nest parallelism: replace the unconditional
  /// same-nest block chain by the exact cross-block self-dependence
  /// edges, letting independent blocks of one nest run concurrently
  /// (e.g. the fully parallel nmm nests, or nests whose dependences do
  /// not cross block boundaries).
  bool relaxSameNestOrdering = false;

  /// Workers for the detection pass itself. 0 (the default) runs
  /// everything inline on the caller's thread — the serial reference
  /// path. Any other value dispatches the per-pair pipeline/blocking-map
  /// computations, the per-statement integrations and the per-map
  /// in-dependency derivations as independent tasks on a work-stealing
  /// DependencyThreadPool; results are gathered positionally in the
  /// serial iteration order, so the returned PipelineInfo is
  /// bit-identical for every thread count.
  unsigned numThreads = 0;
};

/// Algorithm 1. Computes pipeline maps for every dependent statement pair,
/// derives per-statement blocking, and attaches dependency relations.
PipelineInfo detectPipeline(const scop::Scop& scop,
                            const DetectOptions& options = {});

} // namespace pipoly::pipeline
