#pragma once

// §4 / Algorithm 1 — the full pipeline detection pass. For a SCoP of
// consecutive loop nests it computes, per statement S:
//
//   Σ_S      the integrated pipeline blocking map (eq. 3): iteration ->
//            block representative. Each block is one atomic task.
//   Q_S      the array of in-dependency maps (eq. 4): block representative
//            of S -> last required block representative of a source
//            statement, one map per pipeline map that targets S.
//   Q_S^out  the out-dependency map: the identity on Range(Σ_S).
//
// plus the list of pairwise pipeline maps T_{S,T} the blocks derive from.

#include "pipeline/blocking.hpp"
#include "pipeline/pipeline_map.hpp"
#include "pipeline/reduction.hpp"
#include "pipeline/symbolic.hpp"
#include "scop/scop.hpp"

#include <array>
#include <cstddef>
#include <vector>

namespace pipoly::pipeline {

struct PipelineMapEntry {
  std::size_t srcIdx;
  std::size_t tgtIdx;
  pb::IntMap map; // T_{S,T}: source space -> target space
};

/// One in-dependency family of a statement: which block of `srcStmtIdx`
/// must have finished before a given block of this statement may run.
struct InRequirement {
  std::size_t srcStmtIdx;
  /// { block rep of this statement -> required block rep(s) of the
  /// source }. Partial: block reps with no requirement from this source
  /// (e.g. the remainder block) are absent. Single-valued under the
  /// paper's chain ordering (eq. 4); multi-valued (exact data-flow
  /// edges) under relaxed same-nest ordering.
  pb::IntMap map;
  /// True when the source is a relaxed reduction statement: the
  /// dependence is on the source's *combine* step (which restores the
  /// array value from the partial accumulators), not on any individual
  /// block. `map` then relates every block rep of this statement to the
  /// lexmax source block rep — the lowering rewrites it to the combine
  /// task's tag.
  bool viaCombine = false;
};

struct StatementPipelineInfo {
  /// Σ_S: iteration -> block representative (total, single-valued).
  pb::IntMap blocking;
  /// Σ_S^-1: block representative -> member iterations (the expansion /
  /// contraction relation used by the schedule tree).
  pb::IntMap expansion;
  /// Range(Σ_S): all block representatives, in execution order.
  pb::IntTupleSet blockReps;
  /// Q_S: one entry per pipeline map targeting this statement.
  std::vector<InRequirement> inRequirements;
  /// Q_S^out: identity on blockReps (what finishing a block publishes).
  pb::IntMap outDependency;
  /// Same-nest ordering. When `chainOrdering` is true (the paper's
  /// semantics, Fig. 8 funcCount protocol), blocks of this statement run
  /// strictly in order. Otherwise (the §7 combination with per-nest
  /// parallelism) only the edges of `selfEdges` — the cross-block
  /// self-dependences — are enforced, and independent blocks of the same
  /// nest may run concurrently.
  bool chainOrdering = true;
  /// { block rep -> earlier block rep it must wait for }; may be
  /// multi-valued. Only meaningful when chainOrdering is false.
  pb::IntMap selfEdges;
  /// Reduction relaxation (reduction.hpp). When `relaxed`, the
  /// statement's self-dependences on the reduction array were dropped
  /// from the blocking construction: its blocks are independent partial
  /// accumulations (chainOrdering is forced off with empty selfEdges),
  /// and the lowering appends one combine task that folds the partial
  /// accumulators back into the array in deterministic block order.
  ReductionInfo reduction;
};

/// Per-run route accounting for the candidate pairs of Algorithm 1,
/// lines 1-7. Deterministic (gathered in the serial candidate order) and
/// deliberately *not* part of the result's bit-identity contract: the
/// semantic fields of PipelineInfo are equal across parametric modes,
/// the stats record which route produced them.
struct DetectStats {
  /// Ordered candidate pairs (s < t) examined.
  std::size_t candidatePairs = 0;
  /// Pairs the closed-form parametric route fully handled (including
  /// pairs it proved independent: an empty readers rectangle).
  std::size_t parametricPairs = 0;
  /// Pairs the per-point symbolic fast path handled after a parametric
  /// fallback (or with the parametric route off).
  std::size_t symbolicPairs = 0;
  /// Pairs that needed the explicit Wr^-1(Rd) composition.
  std::size_t explicitPairs = 0;
  /// Pairs with no dependence, discovered on the legacy route (the
  /// parametric route counts its independent pairs as parametric).
  std::size_t independentPairs = 0;
  /// Dependent pairs whose source is a relaxed reduction statement: no
  /// pipeline map, the target depends on the source's combine step.
  std::size_t reductionPairs = 0;
  /// Statements the reduction classifier relaxed (reductionMode=auto).
  std::size_t reductionStatements = 0;
  /// Parametric-route rejections by reason, indexed by ParametricFallback
  /// (only meaningful in Auto/Force modes; NoSharedArray rejections are
  /// vacuous pairs, not fallbacks, but are tallied here too).
  std::array<std::size_t, static_cast<std::size_t>(ParametricFallback::kCount)>
      fallbackByReason{};

  /// Pairs that fell back from the parametric to a legacy route (excludes
  /// vacuous no-shared-array pairs).
  std::size_t fallbackPairs() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < fallbackByReason.size(); ++i)
      if (i != static_cast<std::size_t>(ParametricFallback::None) &&
          i != static_cast<std::size_t>(ParametricFallback::NoSharedArray))
        n += fallbackByReason[i];
    return n;
  }
  std::size_t fallbacks(ParametricFallback f) const {
    return fallbackByReason[static_cast<std::size_t>(f)];
  }
};

struct PipelineInfo {
  std::vector<PipelineMapEntry> maps;
  std::vector<StatementPipelineInfo> statements; // indexed by statement
  /// Route accounting for this run. Cached results carry the stats of the
  /// run that computed them.
  DetectStats stats;

  bool hasPipeline() const { return !maps.empty(); }
  /// Total number of blocks (= tasks) across all statements.
  std::size_t totalBlocks() const;
};

struct DetectOptions {
  /// How the per-pair blocking maps are combined into Σ_S.
  enum class Integration {
    /// Eq. 3: lexmin of the union of all blocking maps (the paper's
    /// optimal blocks, §4.2).
    LexminUnion,
    /// Ablation: keep only the blocking of the first pipeline map each
    /// statement participates in (what a naive pairwise scheme would do).
    FirstMapOnly,
  };
  Integration integration = Integration::LexminUnion;

  /// Task-granularity knob (§7 future work): merge `coarsening`
  /// consecutive blocks into one task. 1 = the paper's blocks.
  std::size_t coarsening = 1;

  /// §7 relaxation: accept sources whose write relations overwrite
  /// locations (P then relates reads to every writer, so requirements
  /// cover the last write).
  bool allowNonInjectiveWrites = false;

  /// §7 combination with per-nest parallelism: replace the unconditional
  /// same-nest block chain by the exact cross-block self-dependence
  /// edges, letting independent blocks of one nest run concurrently
  /// (e.g. the fully parallel nmm nests, or nests whose dependences do
  /// not cross block boundaries).
  bool relaxSameNestOrdering = false;

  /// The parametric-first route (the closed-form pipeline maps of
  /// symbolic.hpp's separable shape).
  enum class ParametricMode {
    /// Bit-identical legacy: per-pair dependence test, then the
    /// per-point symbolic fast path or the explicit composition.
    Off,
    /// The default: classify each candidate pair; separable pairs take
    /// the closed form (skipping the explicit dependence test entirely),
    /// the rest fall back per-pair to the legacy route. The resulting
    /// PipelineInfo is bit-identical to Off.
    Auto,
    /// Like Auto, but a *dependent* pair that the parametric route
    /// cannot handle throws pipoly::Error instead of falling back —
    /// the regression guard for suites that must stay fully regular.
    Force,
  };
  ParametricMode parametricMode = ParametricMode::Auto;

  /// Reduction dependence relaxation (reduction.hpp).
  enum class ReductionMode {
    /// Bit-identical legacy: reduction statements keep their
    /// self-dependences and serialize (a non-injective accumulation
    /// write still needs allowNonInjectiveWrites, exactly as before).
    Off,
    /// The default: classify every statement; relaxed reductions drop
    /// their reduction self-dependences from the blocking construction,
    /// split into parallel partial blocks and gain a combine step.
    /// Non-reduction statements behave exactly as under Off.
    Auto,
  };
  ReductionMode reductionMode = ReductionMode::Auto;

  /// Target number of partial-reduction blocks for a relaxed statement
  /// that no incoming pipeline map subdivides (a pure accumulation nest):
  /// its domain is split into min(reductionBlocks, |domain|) contiguous
  /// chunks. Result-affecting, so part of the DetectCache fingerprint.
  std::size_t reductionBlocks = 8;

  /// Workers for the detection pass itself. 0 (the default) runs
  /// everything inline on the caller's thread — the serial reference
  /// path. Any other value dispatches the per-pair pipeline/blocking-map
  /// computations, the per-statement integrations and the per-map
  /// in-dependency derivations as independent tasks on a work-stealing
  /// DependencyThreadPool; results are gathered positionally in the
  /// serial iteration order, so the returned PipelineInfo is
  /// bit-identical for every thread count.
  unsigned numThreads = 0;
};

/// Algorithm 1. Computes pipeline maps for every dependent statement pair,
/// derives per-statement blocking, and attaches dependency relations.
PipelineInfo detectPipeline(const scop::Scop& scop,
                            const DetectOptions& options = {});

} // namespace pipoly::pipeline
