#include "pipeline/detect_cache.hpp"

#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <utility>

namespace pipoly::pipeline {

namespace {

/// Length-prefixed, delimiter-separated serialisation: every token is
/// unambiguous, so distinct inputs always produce distinct keys.
class KeyBuilder {
public:
  void num(std::int64_t v) {
    key_ += std::to_string(v);
    key_ += ',';
  }
  void str(const std::string& s) {
    num(static_cast<std::int64_t>(s.size()));
    key_ += s;
    key_ += ';';
  }
  void rows(const pb::RowBuffer& data) {
    num(static_cast<std::int64_t>(data.size()));
    for (pb::Value v : data)
      num(v);
  }
  void affine(const pb::AffineMap& m) {
    num(static_cast<std::int64_t>(m.numInputs()));
    num(static_cast<std::int64_t>(m.numOutputs()));
    for (const pb::AffineExpr& e : m.outputs()) {
      num(e.constantTerm());
      for (std::size_t i = 0; i < e.numDims(); ++i)
        num(e.coeff(i));
    }
  }
  void access(const scop::Access& a) {
    num(static_cast<std::int64_t>(a.arrayId));
    affine(a.subscripts);
    num(static_cast<std::int64_t>(a.auxExtents.size()));
    for (pb::Value v : a.auxExtents)
      num(v);
  }

  std::string take() { return std::move(key_); }

private:
  std::string key_;
};

} // namespace

std::string detectFingerprint(const scop::Scop& scop,
                              const DetectOptions& options) {
  KeyBuilder k;
  k.str("pipoly-detect-v3");
  k.num(static_cast<std::int64_t>(options.integration));
  k.num(static_cast<std::int64_t>(options.coarsening));
  k.num(options.allowNonInjectiveWrites ? 1 : 0);
  k.num(options.relaxSameNestOrdering ? 1 : 0);
  // parametricMode is part of the key even though the semantic result is
  // bit-identical across modes: the DetectStats riding on PipelineInfo
  // record the route, and a cached entry must replay the stats of the
  // options it was computed under.
  k.num(static_cast<std::int64_t>(options.parametricMode));
  // reductionMode changes the detected blocking and requirements for
  // reduction statements; reductionBlocks sizes their uniform split.
  // Both are result-affecting and must separate cache entries.
  k.num(static_cast<std::int64_t>(options.reductionMode));
  k.num(static_cast<std::int64_t>(options.reductionBlocks));
  // numThreads deliberately excluded: the result is bit-identical for
  // every thread count (detect.hpp's contract), so serial and parallel
  // runs share entries.

  k.str(scop.name());
  k.num(static_cast<std::int64_t>(scop.arrays().size()));
  for (const scop::Array& a : scop.arrays()) {
    k.str(a.name);
    k.num(static_cast<std::int64_t>(a.shape.size()));
    for (pb::Value v : a.shape)
      k.num(v);
  }
  k.num(static_cast<std::int64_t>(scop.numStatements()));
  for (const scop::Statement& s : scop.statements()) {
    k.str(s.name());
    k.num(static_cast<std::int64_t>(s.depth()));
    k.str(s.domain().space().name());
    k.num(static_cast<std::int64_t>(s.domain().arity()));
    k.num(static_cast<std::int64_t>(s.domain().size()));
    k.rows(s.domain().rowData());
    k.num(static_cast<std::int64_t>(s.writes().size()));
    for (const scop::Access& a : s.writes())
      k.access(a);
    k.num(static_cast<std::int64_t>(s.reads().size()));
    for (const scop::Access& a : s.reads())
      k.access(a);
    // The declared reduction operator gates the relaxation under
    // reductionMode=auto, so two SCoPs differing only in it must not
    // alias.
    k.num(static_cast<std::int64_t>(s.reductionOp()));
  }
  return k.take();
}

DetectCache::DetectCache(std::size_t capacity) : capacity_(capacity) {
  PIPOLY_CHECK_MSG(capacity > 0, "detect cache needs a non-zero capacity");
}

const PipelineInfo* DetectCache::lookupLocked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end())
    return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second); // move to front
  return &it->second->info;
}

void DetectCache::insertLocked(std::string key, const PipelineInfo& info) {
  if (index_.find(key) != index_.end())
    return; // a concurrent miss got here first; keep its entry
  lru_.push_front(Entry{std::move(key), info});
  index_.emplace(lru_.front().key, lru_.begin());
  if (lru_.size() > capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

PipelineInfo DetectCache::getOrCompute(const scop::Scop& scop,
                                       const DetectOptions& options) {
  std::string key = detectFingerprint(scop, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const PipelineInfo* hit = lookupLocked(key)) {
      ++stats_.hits;
      trace::instant("detect.cache.hit");
      return *hit; // cheap: shares the presburger row buffers
    }
    ++stats_.misses;
  }
  trace::instant("detect.cache.miss");
  // Compute outside the lock so a slow miss never blocks hits on other
  // keys (or the counters).
  PipelineInfo info = detectPipeline(scop, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(std::move(key), info);
    trace::counter("detect.cache.size", static_cast<double>(lru_.size()));
  }
  return info;
}

DetectCache::Stats DetectCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

void DetectCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

} // namespace pipoly::pipeline
