#include "pipeline/report.hpp"

#include "scop/dependences.hpp"
#include "support/assert.hpp"

#include <algorithm>
#include <sstream>

namespace pipoly::pipeline {

namespace {

std::string describeParallelism(const scop::Scop& scop, std::size_t s) {
  std::vector<bool> par = scop::parallelDims(scop, s);
  std::vector<std::size_t> carried;
  for (std::size_t d = 0; d < par.size(); ++d)
    if (!par[d])
      carried.push_back(d);
  if (carried.empty())
    return "fully parallel";
  std::ostringstream os;
  os << "serial (carried deps at dim" << (carried.size() > 1 ? "s " : " ");
  for (std::size_t i = 0; i < carried.size(); ++i)
    os << (i ? ", " : "") << carried[i];
  os << ')';
  return os.str();
}

std::string describeStride(const pb::IntTupleSet& boundaries) {
  std::ostringstream os;
  os << '(';
  for (std::size_t d = 0; d < boundaries.space().arity(); ++d)
    os << (d ? ", " : "") << boundaries.strideOfDim(d);
  os << ')';
  return os.str();
}

std::size_t medianBlockSize(const StatementPipelineInfo& st) {
  std::vector<std::size_t> sizes;
  sizes.reserve(st.blockReps.size());
  for (const pb::Tuple& rep : st.blockReps.points())
    sizes.push_back(st.expansion.imagesOf(rep).size());
  PIPOLY_CHECK(!sizes.empty());
  std::sort(sizes.begin(), sizes.end());
  return sizes[sizes.size() / 2];
}

} // namespace

std::string renderReport(const scop::Scop& scop, const PipelineInfo& info,
                         const CommInfo* comm) {
  std::ostringstream os;
  os << "pipeline report for scop '" << scop.name() << "'\n";

  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const scop::Statement& stmt = scop.statement(s);
    os << "  statement " << stmt.name() << ": " << stmt.domain().size()
       << " iterations (depth " << stmt.depth() << "), "
       << describeParallelism(scop, s) << '\n';
  }

  // Relaxed reductions (printed before the early return: a pure
  // accumulation SCoP has no pipeline maps yet still splits).
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const StatementPipelineInfo& st = info.statements[s];
    if (!st.reduction.relaxed)
      continue;
    os << "  reduction " << scop.statement(s).name() << ": relaxed "
       << relaxedSelfDependences(scop, s).size()
       << " self-dependences on array "
       << scop.array(st.reduction.arrayId).name << " (op "
       << scop::reductionOpName(st.reduction.op) << "), "
       << st.blockReps.size() << " partial block"
       << (st.blockReps.size() == 1 ? "" : "s") << " + combine\n";
  }

  if (info.maps.empty()) {
    if (info.stats.reductionStatements == 0)
      os << "  no cross-loop pipeline opportunities detected\n";
    return os.str();
  }

  for (const PipelineMapEntry& entry : info.maps) {
    const std::string& src = scop.statement(entry.srcIdx).name();
    const std::string& tgt = scop.statement(entry.tgtIdx).name();
    const pb::IntTupleSet sources = entry.map.domain();
    os << "  pipeline " << src << " -> " << tgt << ": " << entry.map.size()
       << " stage boundaries, source boundary stride "
       << describeStride(sources) << '\n';
    // Dependence distance flavour: how far ahead the source must be.
    const auto& first = entry.map.pairs().front();
    const auto& last = entry.map.pairs().back();
    os << "    first stage: finish " << src << first.first.toString()
       << " to enable " << tgt << first.second.toString() << "; last: "
       << src << last.first.toString() << " -> " << tgt
       << last.second.toString() << '\n';
  }

  os << "  blocking (eq. 3):";
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const StatementPipelineInfo& st = info.statements[s];
    os << (s ? ", " : " ") << scop.statement(s).name() << " -> "
       << st.blockReps.size() << " blocks (median "
       << medianBlockSize(st) << " its, " << st.inRequirements.size()
       << " in-dep map" << (st.inRequirements.size() == 1 ? "" : "s")
       << ')';
  }
  os << "\n  total tasks: " << info.totalBlocks() << '\n';

  if (comm != nullptr) {
    os << "  communication: " << comm->totalBytes() << " bytes across "
       << comm->edges.size() << " edge" << (comm->edges.size() == 1 ? "" : "s")
       << '\n';
    for (const EdgeComm& e : comm->edges)
      os << "    " << scop.statement(e.srcIdx).name() << " -> "
         << scop.statement(e.tgtIdx).name() << ": " << e.elements
         << " elements (" << e.totalBytes << " B"
         << (e.parametric ? ", parametric" : "") << "), peak in flight "
         << e.peakInFlightTokens << " token"
         << (e.peakInFlightTokens == 1 ? "" : "s") << " ("
         << e.peakInFlightBytes << " B), channel capacity "
         << e.capacitySlots << " slots\n";
  }
  return os.str();
}

} // namespace pipoly::pipeline
