#pragma once

// The N-independent detection route. detectParametric() analyses a
// scop::ParamScop once — classifying every candidate pair against the
// separable shape (identity-write source, a single separable monotone
// read, rectangular domains) and building the closed-form symbolic
// pipeline map for the pairs that match. All of the shape reasoning
// happens on the symbolic description, so the analysis cost depends on
// the number of statements and dims, never on the iteration counts.
//
// Once parameters are bound, summarize() turns the plans into the
// paper's headline numbers — per-statement block counts, total blocks,
// live pipeline maps — through the product-lattice closed forms of
// pipeline/lattice.hpp: O(pairs * 2^k * dims) arithmetic per binding.
// requiredSourceRep() answers the eq.-4 requirement question at block
// granularity the same way. blockReps() materialises a statement's
// block representatives for small bindings so the differential harness
// can prove the route bit-identical to the explicit detectPipeline().
//
// Pairs that do not match the shape are kept as irregular plans with
// their ParametricFallback reason; summaries over such scops refuse
// (the explicit route is the fallback, exactly as in detectPipeline's
// per-pair ladder).

#include "pipeline/lattice.hpp"
#include "pipeline/symbolic.hpp"
#include "presburger/param.hpp"
#include "scop/param_scop.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pipoly::pipeline {

/// One candidate pair (source writes an array the target reads) with its
/// classification. `fallback == None` means the pair is regular and the
/// symbolic closed forms below are populated.
struct ParamPairPlan {
  std::size_t srcIdx = 0;
  std::size_t tgtIdx = 0;
  ParametricFallback fallback = ParametricFallback::None;

  /// Regular pairs only: the read is subscript_d = coeffs[d]*j_d +
  /// offsets[d] with coeffs[d] >= 1, and `map` is the closed-form
  /// symbolic pipeline map T (instantiates bit-identically to the
  /// explicit pipelineMap()).
  std::vector<pb::Value> coeffs;
  std::vector<pb::ParamExpr> offsets;
  std::optional<pb::ParamMap> map;

  bool regular() const { return fallback == ParametricFallback::None; }
};

/// Per-statement summary under one parameter binding.
struct ParamStatementSummary {
  std::string name;
  pb::Value domainSize = 0;
  pb::Value blockCount = 0;
};

/// The paper's Table-9 style numbers for one binding, computed in closed
/// form (no domain is ever materialised).
struct ParamSummary {
  std::vector<ParamStatementSummary> statements;
  pb::Value totalBlocks = 0;
  /// Regular plans whose dependence is non-vacuous under this binding
  /// (the clipped readers rectangle R is non-empty).
  std::size_t pipelineMaps = 0;
};

class ParamDetection {
public:
  const scop::ParamScop& scop() const { return scop_; }
  const std::vector<ParamPairPlan>& plans() const { return plans_; }

  std::size_t regularPlans() const;
  std::size_t irregularPlans() const;
  /// True when every candidate pair matched the separable shape.
  bool fullyRegular() const { return irregularPlans() == 0; }

  /// Closed-form block counts under `bindings`. Requires fullyRegular().
  ParamSummary summarize(const pb::ParamBindings& bindings) const;

  /// The boundary lattices contributing block boundaries to statement
  /// `stmtIdx` under `bindings`: Dom(T) for plans where it is the source,
  /// Range(T) = R for plans where it is the target. Only non-vacuous
  /// plans contribute. Requires every plan touching the statement to be
  /// regular.
  std::vector<BoundaryLattice>
  boundaryLattices(std::size_t stmtIdx,
                   const pb::ParamBindings& bindings) const;

  /// The statement's block representatives under `bindings`, materialised
  /// (union of the boundary lattices plus the domain lexmax). Matches the
  /// explicit route's StatementPipelineInfo::blockReps bit for bit; meant
  /// for differential tests at small bindings.
  pb::IntTupleSet blockReps(std::size_t stmtIdx,
                            const pb::ParamBindings& bindings) const;

  /// Eq.-4 at block granularity: the source block representative whose
  /// completion the target block represented by `targetRep` must wait
  /// for, along plan `planIdx` (which must be regular and non-vacuous
  /// under `bindings`).
  pb::Tuple requiredSourceRep(std::size_t planIdx, const pb::Tuple& targetRep,
                              const pb::ParamBindings& bindings) const;

private:
  friend ParamDetection detectParametric(scop::ParamScop pscop);
  explicit ParamDetection(scop::ParamScop s) : scop_(std::move(s)) {}

  /// The inclusive per-dim box of a statement's domain; nullopt when the
  /// domain is empty under `bindings`.
  std::optional<std::vector<pb::DimBounds>>
  evalBox(std::size_t stmtIdx, const pb::ParamBindings& bindings) const;

  /// The clipped readers rectangle R of a regular plan; nullopt when the
  /// dependence is vacuous under `bindings`.
  std::optional<std::vector<pb::DimBounds>>
  readersRect(const ParamPairPlan& plan,
              const pb::ParamBindings& bindings) const;

  scop::ParamScop scop_;
  std::vector<ParamPairPlan> plans_;
};

/// Analyses the parametric SCoP once. Never fails: pairs that do not
/// match the separable shape become irregular plans carrying their
/// fallback reason.
ParamDetection detectParametric(scop::ParamScop pscop);

} // namespace pipoly::pipeline
