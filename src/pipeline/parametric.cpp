#include "pipeline/parametric.hpp"

#include "support/assert.hpp"

namespace pipoly::pipeline {

pb::ParamSet
ParamRectStatement::domain(const std::vector<std::string>& dimNames) const {
  pb::ParamSet set(pb::Space(name, depth()), dimNames);
  for (std::size_t d = 0; d < depth(); ++d)
    set.bound(d, bounds[d].first, bounds[d].second);
  return set;
}

pb::ParamMap parametricPipelineMap(const ParamRectStatement& source,
                                   const ParamRectStatement& target,
                                   const SeparableRead& read) {
  const std::size_t n = source.depth();
  PIPOLY_CHECK_MSG(target.depth() == n && read.coeffs.size() == n &&
                       read.offsets.size() == n,
                   "parametric pipeline map needs matching depths");
  for (pb::Value c : read.coeffs)
    PIPOLY_CHECK_MSG(c >= 1, "separable read coefficients must be >= 1");

  // Dim names: i0..i{n-1} for the source side, o0..o{n-1} for the target
  // (matching the paper's §4.1 naming).
  std::vector<std::string> dimNames;
  for (std::size_t d = 0; d < n; ++d)
    dimNames.push_back("i" + std::to_string(d));
  for (std::size_t d = 0; d < n; ++d)
    dimNames.push_back("o" + std::to_string(d));

  pb::ParamMap map(pb::Space(source.name, n), pb::Space(target.name, n),
                   dimNames);
  const std::size_t total = 2 * n;

  // i_d = c_d * o_d + o_d^offset.
  for (std::size_t d = 0; d < n; ++d) {
    pb::ParamConstraint eq;
    eq.dimCoeffs.assign(total, 0);
    eq.dimCoeffs[d] = 1;
    eq.dimCoeffs[n + d] = -read.coeffs[d];
    eq.paramPart = pb::ParamExpr(0) - read.offsets[d];
    eq.kind = pb::Constraint::Kind::EQ;
    map.add(std::move(eq));
  }

  // Target domain bounds on the o dims; source domain bounds on the i
  // dims (the latter restrict to reads of actually-written elements).
  auto addBounds = [&](const ParamRectStatement& stmt, std::size_t base) {
    for (std::size_t d = 0; d < stmt.depth(); ++d) {
      pb::ParamConstraint lower;
      lower.dimCoeffs.assign(total, 0);
      lower.dimCoeffs[base + d] = 1;
      lower.paramPart = pb::ParamExpr(0) - stmt.bounds[d].first;
      map.add(std::move(lower));
      pb::ParamConstraint upper;
      upper.dimCoeffs.assign(total, 0);
      upper.dimCoeffs[base + d] = -1;
      upper.paramPart = stmt.bounds[d].second - pb::ParamExpr(1);
      map.add(std::move(upper));
    }
  };
  addBounds(target, n);
  addBounds(source, 0);
  return map;
}

} // namespace pipoly::pipeline
