#include "pipeline/pipeline_map.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::pipeline {

pb::IntMap producerRelation(const scop::Scop& scop, std::size_t srcIdx,
                            std::size_t tgtIdx, bool allowNonInjective) {
  const scop::Statement& src = scop.statement(srcIdx);
  const scop::Statement& tgt = scop.statement(tgtIdx);
  pb::IntMap p(tgt.space(), src.space());
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx)) {
    pb::IntMap wr = scop.writeRelation(srcIdx, arrayId);
    pb::IntMap rd = scop.readRelation(tgtIdx, arrayId);
    if (wr.empty() || rd.empty())
      continue;
    PIPOLY_CHECK_MSG(allowNonInjective || wr.isInjective(),
                     "statement " + src.name() + " overwrites array " +
                         scop.array(arrayId).name +
                         " (the paper assumes injective write relations; "
                         "set allowNonInjectiveWrites to relax)");
    p = p.unite(wr.inverse().compose(rd));
  }
  return p;
}

pb::IntMap lastRequirementMap(const pb::IntMap& producer) {
  // H(j) = lexmax over { P(j') : j' lexle j, j' in Dom(P) }. The pairs of
  // lexmaxPerDomain(P) are sorted by target iteration, so H is a running
  // lexmax over that order.
  pb::IntMap perIteration = producer.lexmaxPerDomain();
  std::vector<pb::IntMap::Pair> pairs;
  pairs.reserve(perIteration.size());
  bool first = true;
  pb::Tuple running;
  for (const auto& [j, i] : perIteration.pairs()) {
    if (first || i > running) {
      running = i;
      first = false;
    }
    pairs.emplace_back(j, running);
  }
  return pb::IntMap(producer.domainSpace(), producer.rangeSpace(),
                    std::move(pairs));
}

pb::IntMap pipelineMap(const scop::Scop& scop, std::size_t srcIdx,
                       std::size_t tgtIdx, bool allowNonInjective) {
  pb::IntMap p = producerRelation(scop, srcIdx, tgtIdx, allowNonInjective);
  if (p.empty())
    return pb::IntMap(scop.statement(srcIdx).space(),
                      scop.statement(tgtIdx).space());
  pb::IntMap h = lastRequirementMap(p);
  return h.inverse().lexmaxPerDomain();
}

pb::IntMap pipelineMapNaive(const scop::Scop& scop, std::size_t srcIdx,
                            std::size_t tgtIdx, bool allowNonInjective) {
  pb::IntMap p = producerRelation(scop, srcIdx, tgtIdx, allowNonInjective);
  if (p.empty())
    return pb::IntMap(scop.statement(srcIdx).space(),
                      scop.statement(tgtIdx).space());
  // D' maps each member of Dom(P) to all members lexle it.
  pb::IntMap dPrime = pb::IntMap::lexGeContains(p.domain());
  pb::IntMap h = p.compose(dPrime).lexmaxPerDomain();
  return h.inverse().lexmaxPerDomain();
}

} // namespace pipoly::pipeline
