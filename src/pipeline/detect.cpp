#include "pipeline/detect.hpp"

#include "pipeline/symbolic.hpp"
#include "scop/dependences.hpp"
#include "support/assert.hpp"

namespace pipoly::pipeline {

std::size_t PipelineInfo::totalBlocks() const {
  std::size_t n = 0;
  for (const StatementPipelineInfo& s : statements)
    n += s.blockReps.size();
  return n;
}

namespace {

/// Merges every `factor` consecutive blocks into one by keeping every
/// factor-th boundary (and always the last), then re-deriving the blocking
/// map over the coarsened boundary set.
pb::IntMap coarsenBlocking(const pb::IntTupleSet& domain,
                           const pb::IntMap& blocking, std::size_t factor) {
  if (factor <= 1)
    return blocking;
  const pb::IntTupleSet reps = blocking.range();
  std::vector<pb::Tuple> kept;
  const auto& points = reps.points();
  for (std::size_t i = factor - 1; i < points.size(); i += factor)
    kept.push_back(points[i]);
  if (kept.empty() || kept.back() != points.back())
    kept.push_back(points.back());
  return blockingMap(domain,
                     pb::IntTupleSet(domain.space(), std::move(kept)));
}

} // namespace

PipelineInfo detectPipeline(const scop::Scop& scop,
                            const DetectOptions& options) {
  scop::validateProgramModel(scop);
  PIPOLY_CHECK(options.coarsening >= 1);
  const std::size_t n = scop.numStatements();
  PipelineInfo info;
  info.statements.resize(n);

  // Algorithm 1, lines 1-7: pipeline maps and per-pair blocking maps.
  std::vector<std::vector<pb::IntMap>> blockingMaps(n);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t s = 0; s < t; ++s) {
      if (!scop::dependsOn(scop, t, s))
        continue;
      // The symbolic fast path covers identity-write sources (most
      // kernels); the explicit Wr^-1(Rd) composition is the general case.
      pb::IntMap tMap;
      if (std::optional<pb::IntMap> fast = trySymbolicPipelineMap(scop, s, t))
        tMap = std::move(*fast);
      else
        tMap = pipelineMap(scop, s, t, options.allowNonInjectiveWrites);
      if (tMap.empty())
        continue;
      blockingMaps[s].push_back(
          sourceBlockingMap(scop.statement(s).domain(), tMap));
      blockingMaps[t].push_back(
          targetBlockingMap(scop.statement(t).domain(), tMap));
      info.maps.push_back(PipelineMapEntry{s, t, std::move(tMap)});
    }
  }

  // Algorithm 1, lines 8-10: integrate blocking maps (eq. 3) and build the
  // out-dependency identity. Statements not involved in any pipeline map
  // become a single block (their whole domain as one task).
  for (std::size_t s = 0; s < n; ++s) {
    StatementPipelineInfo& st = info.statements[s];
    const pb::IntTupleSet& domain = scop.statement(s).domain();
    if (blockingMaps[s].empty()) {
      st.blocking = blockingMap(domain, pb::IntTupleSet(domain.space()));
    } else if (options.integration == DetectOptions::Integration::LexminUnion) {
      st.blocking = integrateBlockingMaps(blockingMaps[s]);
    } else {
      st.blocking = blockingMaps[s].front();
    }
    st.blocking = coarsenBlocking(domain, st.blocking, options.coarsening);
    st.expansion = st.blocking.inverse();
    st.blockReps = st.blocking.range();
    st.outDependency = pb::IntMap::identity(st.blockReps);

    if (options.relaxSameNestOrdering) {
      // §7 combination with per-nest parallelism: compute the exact
      // cross-block self-dependence edges. Blocks with no incoming edge
      // from another block may run as soon as their cross-statement
      // requirements are met.
      st.chainOrdering = false;
      std::vector<pb::IntMap::Pair> edges;
      const pb::IntMap selfDeps = scop::selfDependences(scop, s);
      for (const auto& [i, j] : selfDeps.pairs()) {
        pb::Tuple from = *st.blocking.singleImageOf(i);
        pb::Tuple to = *st.blocking.singleImageOf(j);
        if (from != to)
          edges.emplace_back(std::move(to), std::move(from));
      }
      st.selfEdges = pb::IntMap(scop.statement(s).space(),
                                scop.statement(s).space(), std::move(edges));
    }
  }

  // Algorithm 1, lines 11-12: in-dependency maps (eq. 4). For each
  // pipeline map T_{S,T}, every block of T needs the last source block
  // that enables it: Q = T^-1 ( Y_T ( Range(Σ_T) ) ).
  //
  // With relaxed same-nest ordering the prefix argument behind eq. 4 no
  // longer holds (finishing a source block does not imply earlier source
  // blocks finished), so the requirements switch to the exact data-flow
  // edges: each target block depends on every source block it actually
  // reads from, derived from P = Wr^-1(Rd).
  for (const PipelineMapEntry& entry : info.maps) {
    const scop::Statement& tgt = scop.statement(entry.tgtIdx);
    StatementPipelineInfo& tgtInfo = info.statements[entry.tgtIdx];
    const StatementPipelineInfo& srcInfo = info.statements[entry.srcIdx];

    if (options.relaxSameNestOrdering) {
      pb::IntMap p = producerRelation(scop, entry.srcIdx, entry.tgtIdx,
                                      options.allowNonInjectiveWrites);
      std::vector<pb::IntMap::Pair> pairs;
      pairs.reserve(p.size());
      for (const auto& [j, i] : p.pairs())
        pairs.emplace_back(*tgtInfo.blocking.singleImageOf(j),
                           *srcInfo.blocking.singleImageOf(i));
      tgtInfo.inRequirements.push_back(InRequirement{
          entry.srcIdx,
          pb::IntMap(tgt.space(), scop.statement(entry.srcIdx).space(),
                     std::move(pairs))});
      continue;
    }

    pb::IntMap y = targetBlockingMap(tgt.domain(), entry.map);
    pb::IntMap tInv = entry.map.inverse(); // single-valued (T is injective)
    pb::IntTupleSet tRange = entry.map.range();
    const pb::Tuple lastSource = entry.map.domain().lexmax();

    std::vector<pb::IntMap::Pair> pairs;
    for (const pb::Tuple& rep : tgtInfo.blockReps.points()) {
      std::optional<pb::Tuple> boundary = y.singleImageOf(rep);
      PIPOLY_CHECK_MSG(boundary.has_value(),
                       "target blocking map not total on block reps");
      pb::Tuple required;
      if (tRange.contains(*boundary)) {
        std::optional<pb::Tuple> req = tInv.singleImageOf(*boundary);
        PIPOLY_CHECK(req.has_value());
        required = std::move(*req);
      } else {
        // The block maps past the last pipeline boundary. With the
        // integrated Σ of eq. 3 such a block provably contains no reader
        // of this source, but under coarsening or FirstMapOnly it may;
        // require the whole pipelined source prefix (conservative, and a
        // no-op when the block truly reads nothing).
        required = lastSource;
      }
      // The required iteration is a blocking boundary of the source map,
      // so mapping through Σ_src names the block that produces it (with a
      // coarsened Σ it lands on the enclosing, later block — still safe).
      std::optional<pb::Tuple> srcBlock =
          srcInfo.blocking.singleImageOf(required);
      PIPOLY_CHECK(srcBlock.has_value());
      pairs.emplace_back(rep, std::move(*srcBlock));
    }
    tgtInfo.inRequirements.push_back(InRequirement{
        entry.srcIdx,
        pb::IntMap(tgt.space(), scop.statement(entry.srcIdx).space(),
                   std::move(pairs))});
  }

  return info;
}

} // namespace pipoly::pipeline
