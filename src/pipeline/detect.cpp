#include "pipeline/detect.hpp"

#include "pipeline/symbolic.hpp"
#include "runtime/thread_pool.hpp"
#include "scop/dependences.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace pipoly::pipeline {

std::size_t PipelineInfo::totalBlocks() const {
  std::size_t n = 0;
  for (const StatementPipelineInfo& s : statements)
    n += s.blockReps.size();
  return n;
}

namespace {

/// Merges every `factor` consecutive blocks into one by keeping every
/// factor-th boundary (and always the last), then re-deriving the blocking
/// map over the coarsened boundary set.
pb::IntMap coarsenBlocking(const pb::IntTupleSet& domain,
                           const pb::IntMap& blocking, std::size_t factor) {
  if (factor <= 1)
    return blocking;
  const pb::IntTupleSet reps = blocking.range();
  std::vector<pb::Tuple> kept;
  const auto& points = reps.points();
  for (std::size_t i = factor - 1; i < points.size(); i += factor)
    kept.push_back(points[i]);
  if (kept.empty() || kept.back() != points.back())
    kept.push_back(points.back());
  return blockingMap(domain,
                     pb::IntTupleSet(domain.space(), std::move(kept)));
}

/// Which route produced (or dismissed) one candidate pair.
enum class PairRoute : unsigned char {
  Parametric,  // closed-form separable map (possibly empty: independent)
  Symbolic,    // per-point symbolic fast path
  Explicit,    // explicit Wr^-1(Rd) composition
  Independent, // no dependence, discovered on the legacy route
  Reduction,   // source is a relaxed reduction: combine edge, no map
};

/// Result of Algorithm 1, lines 1-7, for one dependent (source, target)
/// candidate pair; `hasMap == false` when the pair yields no pipeline map
/// (no dependence, or an empty map).
struct PairResult {
  pb::IntMap map;         // T_{S,T}
  pb::IntMap srcBlocking; // V_S over the source domain
  pb::IntMap tgtBlocking; // Y_T over the target domain
  bool hasMap = false;
  /// Dependent pair whose source is a relaxed reduction statement: the
  /// target must wait for the source's combine step (which materializes
  /// the reduced values), not for any individual partial block.
  bool combineEdge = false;
  PairRoute route = PairRoute::Independent;
  ParametricFallback fallback = ParametricFallback::None;
};

PairResult computePair(const scop::Scop& scop, std::size_t s, std::size_t t,
                       const DetectOptions& options,
                       const std::vector<ReductionInfo>& reductions) {
  using ParametricMode = DetectOptions::ParametricMode;
  PairResult r;
  // A relaxed reduction source publishes its array only through its
  // combine step, so the pair contributes no pipeline map (and no
  // blocking): the dependence — if any — is a single combine edge. This
  // check must precede the parametric/legacy ladder, whose map
  // construction would serialize on (or throw over) the non-injective
  // accumulation write.
  if (!reductions.empty() && reductions[s].relaxed) {
    if (scop::dependsOn(scop, t, s)) {
      r.route = PairRoute::Reduction;
      r.combineEdge = true;
      // Keep the legacy source-side blocking: the relaxed statement's
      // partition must *refine* the Off-mode one (its block count only
      // ever grows — the adds-parallelism contract the differential
      // suite checks). The accumulation write is non-injective by
      // definition, so the explicit map is built with the relaxation
      // the Off route would need anyway.
      const pb::IntMap tMap =
          pipelineMap(scop, s, t, /*allowNonInjective=*/true);
      r.srcBlocking = sourceBlockingMap(scop.statement(s).domain(), tMap);
    }
    return r; // else: route stays Independent
  }
  pb::IntMap tMap;
  bool haveMap = false;
  if (options.parametricMode != ParametricMode::Off) {
    const SeparablePairShape shape = classifySeparablePair(scop, s, t);
    if (shape.ok()) {
      // Closed form; an empty map *is* the no-dependence verdict, so the
      // explicit dependence test is skipped entirely.
      tMap = separablePipelineMap(scop, s, t, shape);
      r.route = PairRoute::Parametric;
      if (tMap.empty())
        return r;
      haveMap = true;
    } else {
      r.fallback = shape.fallback;
      if (options.parametricMode == ParametricMode::Force &&
          shape.fallback != ParametricFallback::NoSharedArray &&
          scop::dependsOn(scop, t, s))
        PIPOLY_CHECK_MSG(false,
                         std::string("parametricMode=force: pair ") +
                             scop.statement(s).name() + " -> " +
                             scop.statement(t).name() +
                             " is not parametric: " +
                             toString(shape.fallback));
    }
  }
  if (!haveMap) {
    if (!scop::dependsOn(scop, t, s))
      return r; // route stays Independent
    // The symbolic fast path covers identity-write sources (most
    // kernels); the explicit Wr^-1(Rd) composition is the general case.
    if (std::optional<pb::IntMap> fast = trySymbolicPipelineMap(scop, s, t)) {
      tMap = std::move(*fast);
      r.route = PairRoute::Symbolic;
    } else {
      tMap = pipelineMap(scop, s, t, options.allowNonInjectiveWrites);
      r.route = PairRoute::Explicit;
    }
    if (tMap.empty())
      return r;
  }
  r.srcBlocking = sourceBlockingMap(scop.statement(s).domain(), tMap);
  r.tgtBlocking = targetBlockingMap(scop.statement(t).domain(), tMap);
  r.map = std::move(tMap);
  r.hasMap = true;
  return r;
}

/// Trace instants for the per-pair route decisions (static names only;
/// emitted from the serial gather loop so serial and parallel runs
/// produce identical event streams).
void traceRoute(const PairResult& r, std::int64_t pairIdx) {
  if (!trace::enabled())
    return;
  switch (r.route) {
  case PairRoute::Parametric:
    trace::instant("detect.route.parametric", pairIdx);
    break;
  case PairRoute::Symbolic:
    trace::instant("detect.route.symbolic", pairIdx);
    break;
  case PairRoute::Explicit:
    trace::instant("detect.route.explicit", pairIdx);
    break;
  case PairRoute::Independent:
    trace::instant("detect.route.independent", pairIdx);
    break;
  case PairRoute::Reduction:
    trace::instant("detect.route.reduction", pairIdx);
    break;
  }
  switch (r.fallback) {
  case ParametricFallback::None:
  case ParametricFallback::NoSharedArray: // vacuous, not a fallback
  case ParametricFallback::kCount:
    break;
  case ParametricFallback::MultipleReads:
    trace::instant("detect.fallback.multiple_reads", pairIdx);
    break;
  case ParametricFallback::NonIdentityWrite:
    trace::instant("detect.fallback.non_identity_write", pairIdx);
    break;
  case ParametricFallback::AuxRead:
    trace::instant("detect.fallback.aux_read", pairIdx);
    break;
  case ParametricFallback::NonSeparableRead:
    trace::instant("detect.fallback.non_separable_read", pairIdx);
    break;
  case ParametricFallback::NonMonotoneRead:
    trace::instant("detect.fallback.non_monotone_read", pairIdx);
    break;
  case ParametricFallback::NonRectangularDomain:
    trace::instant("detect.fallback.non_rectangular_domain", pairIdx);
    break;
  }
}

/// Contiguous uniform split of a non-empty domain into
/// min(k, |domain|) blocks — the blocking a pure accumulation nest gets
/// once its reduction self-dependences are relaxed and no incoming
/// pipeline map subdivides it.
pb::IntMap uniformBlocking(const pb::IntTupleSet& domain, std::size_t k) {
  const std::size_t n = domain.size();
  k = std::max<std::size_t>(1, std::min(k, n));
  const auto& points = domain.points();
  std::vector<pb::Tuple> boundaries;
  boundaries.reserve(k);
  for (std::size_t b = 1; b <= k; ++b)
    boundaries.push_back(points[n * b / k - 1]);
  return blockingMap(domain,
                     pb::IntTupleSet(domain.space(), std::move(boundaries)));
}

/// Algorithm 1, lines 8-10, for one statement: integrate its blocking
/// maps (eq. 3) and build the out-dependency identity. Statements not
/// involved in any pipeline map become a single block (their whole domain
/// as one task); statements with an empty iteration domain get zero
/// blocks and no dependencies.
void computeStatementInfo(const scop::Scop& scop, std::size_t s,
                          const std::vector<pb::IntMap>& maps,
                          const DetectOptions& options,
                          const ReductionInfo& reduction,
                          StatementPipelineInfo& st) {
  const pb::IntTupleSet& domain = scop.statement(s).domain();
  if (options.relaxSameNestOrdering || reduction.relaxed)
    st.chainOrdering = false;
  if (domain.empty()) {
    st.blocking = pb::IntMap(domain.space(), domain.space());
    st.expansion = st.blocking;
    st.blockReps = domain;
    st.outDependency = st.blocking;
    if (!st.chainOrdering)
      st.selfEdges = pb::IntMap(scop.statement(s).space(),
                                scop.statement(s).space());
    return;
  }
  if (maps.empty()) {
    st.blocking = blockingMap(domain, pb::IntTupleSet(domain.space()));
  } else if (options.integration == DetectOptions::Integration::LexminUnion) {
    st.blocking = integrateBlockingMaps(maps);
  } else {
    st.blocking = maps.front();
  }
  st.blocking = coarsenBlocking(domain, st.blocking, options.coarsening);
  if (reduction.relaxed && st.blocking.range().size() <= 1 &&
      domain.size() > 1) {
    // A pure accumulation nest: nothing upstream subdivides it, and with
    // the reduction self-dependences relaxed its iterations are freely
    // re-partitionable — split into parallel partial blocks directly.
    st.blocking = uniformBlocking(domain, options.reductionBlocks);
  }
  st.expansion = st.blocking.inverse();
  st.blockReps = st.blocking.range();
  st.outDependency = pb::IntMap::identity(st.blockReps);

  if (reduction.relaxed) {
    // Every self-dependence of a classified reduction statement is
    // carried by its single (reduction) write, and all of those are
    // relaxed: the partial blocks are mutually independent. The combine
    // step the lowering appends restores the serial semantics.
    st.reduction = reduction;
    st.selfEdges = pb::IntMap(scop.statement(s).space(),
                              scop.statement(s).space());
    return;
  }

  if (options.relaxSameNestOrdering) {
    // §7 combination with per-nest parallelism: compute the exact
    // cross-block self-dependence edges. Blocks with no incoming edge
    // from another block may run as soon as their cross-statement
    // requirements are met.
    std::vector<pb::IntMap::Pair> edges;
    const pb::IntMap selfDeps = scop::selfDependences(scop, s);
    for (const auto& [i, j] : selfDeps.pairs()) {
      pb::Tuple from = *st.blocking.singleImageOf(i);
      pb::Tuple to = *st.blocking.singleImageOf(j);
      if (from != to)
        edges.emplace_back(std::move(to), std::move(from));
    }
    st.selfEdges = pb::IntMap(scop.statement(s).space(),
                              scop.statement(s).space(), std::move(edges));
  }
}

/// Algorithm 1, lines 11-12, for one pipeline map: the in-dependency map
/// (eq. 4). Reads the per-statement info computed by computeStatementInfo
/// (all of it must be complete) and returns the requirement to attach to
/// the target statement.
InRequirement computeInRequirement(const scop::Scop& scop,
                                   const PipelineMapEntry& entry,
                                   const PipelineInfo& info,
                                   const DetectOptions& options) {
  const scop::Statement& tgt = scop.statement(entry.tgtIdx);
  const StatementPipelineInfo& tgtInfo = info.statements[entry.tgtIdx];
  const StatementPipelineInfo& srcInfo = info.statements[entry.srcIdx];

  // With relaxed same-nest ordering the prefix argument behind eq. 4 no
  // longer holds (finishing a source block does not imply earlier source
  // blocks finished), so the requirements switch to the exact data-flow
  // edges: each target block depends on every source block it actually
  // reads from, derived from P = Wr^-1(Rd).
  if (options.relaxSameNestOrdering) {
    pb::IntMap p = producerRelation(scop, entry.srcIdx, entry.tgtIdx,
                                    options.allowNonInjectiveWrites);
    std::vector<pb::IntMap::Pair> pairs;
    pairs.reserve(p.size());
    for (const auto& [j, i] : p.pairs())
      pairs.emplace_back(*tgtInfo.blocking.singleImageOf(j),
                         *srcInfo.blocking.singleImageOf(i));
    return InRequirement{entry.srcIdx,
                         pb::IntMap(tgt.space(),
                                    scop.statement(entry.srcIdx).space(),
                                    std::move(pairs))};
  }

  // Q = T^-1 ( Y_T ( Range(Σ_T) ) ): every block of the target needs the
  // last source block that enables it.
  pb::IntMap y = targetBlockingMap(tgt.domain(), entry.map);
  pb::IntMap tInv = entry.map.inverse(); // single-valued (T is injective)
  pb::IntTupleSet tRange = entry.map.range();
  const pb::Tuple lastSource = entry.map.domain().lexmax();

  std::vector<pb::IntMap::Pair> pairs;
  for (const pb::Tuple& rep : tgtInfo.blockReps.points()) {
    std::optional<pb::Tuple> boundary = y.singleImageOf(rep);
    PIPOLY_CHECK_MSG(boundary.has_value(),
                     "target blocking map not total on block reps");
    pb::Tuple required;
    if (tRange.contains(*boundary)) {
      std::optional<pb::Tuple> req = tInv.singleImageOf(*boundary);
      PIPOLY_CHECK(req.has_value());
      required = std::move(*req);
    } else {
      // The block maps past the last pipeline boundary. With the
      // integrated Σ of eq. 3 such a block provably contains no reader
      // of this source, but under coarsening or FirstMapOnly it may;
      // require the whole pipelined source prefix (conservative, and a
      // no-op when the block truly reads nothing).
      required = lastSource;
    }
    // The required iteration is a blocking boundary of the source map,
    // so mapping through Σ_src names the block that produces it (with a
    // coarsened Σ it lands on the enclosing, later block — still safe).
    std::optional<pb::Tuple> srcBlock =
        srcInfo.blocking.singleImageOf(required);
    PIPOLY_CHECK(srcBlock.has_value());
    pairs.emplace_back(rep, std::move(*srcBlock));
  }
  return InRequirement{entry.srcIdx,
                       pb::IntMap(tgt.space(),
                                  scop.statement(entry.srcIdx).space(),
                                  std::move(pairs))};
}

/// Runs `fn(0) .. fn(count-1)` — inline when `pool` is null (the serial
/// reference path), otherwise as independent tasks on the pool with a
/// barrier at the end. Each unit writes only its own result slot, so the
/// outcome is identical either way; waitAll() rethrows the first failure.
template <typename Fn>
void forEachUnit(rt::DependencyThreadPool* pool, std::size_t count, Fn&& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i)
      fn(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i)
    pool->submit([&fn, i] { fn(i); }, {});
  pool->waitAll();
}

} // namespace

PipelineInfo detectPipeline(const scop::Scop& scop,
                            const DetectOptions& options) {
  // Algorithm-1 phase spans; the per-unit spans inside the phases land in
  // each pool worker's own trace buffer on the parallel path. All probes
  // cost one relaxed load when no trace session is active.
  trace::Span detectSpan("detect.pipeline");
  scop::validateProgramModel(scop);
  PIPOLY_CHECK(options.coarsening >= 1);
  const std::size_t n = scop.numStatements();
  PipelineInfo info;
  info.statements.resize(n);

  // numThreads == 0 keeps everything inline on the caller's thread; any
  // other value runs the three phases' units on a work-stealing pool.
  // Results are gathered positionally in the serial iteration order, so
  // PipelineInfo is bit-identical regardless of the thread count.
  std::optional<rt::DependencyThreadPool> pool;
  if (options.numThreads > 0)
    pool.emplace(options.numThreads);
  rt::DependencyThreadPool* poolPtr = pool ? &*pool : nullptr;

  // Reduction pre-pass (reduction.hpp): classify every statement once.
  // Off leaves the vector empty — computePair and computeStatementInfo
  // then behave bit-identically to the legacy route.
  std::vector<ReductionInfo> reductions;
  if (options.reductionMode == DetectOptions::ReductionMode::Auto) {
    trace::Span phase("detect.reductions");
    reductions.resize(n);
    forEachUnit(poolPtr, n, [&](std::size_t s) {
      reductions[s] = classifyReduction(scop, s);
    });
    for (std::size_t s = 0; s < n; ++s)
      if (reductions[s].relaxed) {
        ++info.stats.reductionStatements;
        trace::instant("detect.reduction.relax",
                       static_cast<std::int64_t>(s));
      }
  }
  static const ReductionInfo kNoReduction{};

  // Phase 1 (Algorithm 1, lines 1-7): pipeline maps and per-pair blocking
  // maps for every candidate pair, enumerated in the serial (t outer,
  // s inner) order.
  std::vector<std::pair<std::size_t, std::size_t>> candidates; // (s, t)
  candidates.reserve(n * n / 2);
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t s = 0; s < t; ++s)
      candidates.emplace_back(s, t);

  std::vector<PairResult> pairResults(candidates.size());
  {
    trace::Span phase("detect.pairs");
    forEachUnit(poolPtr, candidates.size(), [&](std::size_t i) {
      trace::Span unit("detect.pair", static_cast<std::int64_t>(i));
      pairResults[i] = computePair(scop, candidates[i].first,
                                   candidates[i].second, options, reductions);
    });
  }

  // Deterministic gather preserving the serial push order; the route
  // counters and their trace instants are tallied here (not in the
  // workers) so they are identical for every thread count.
  info.stats.candidatePairs = candidates.size();
  std::vector<std::vector<pb::IntMap>> blockingMaps(n);
  // Per target, the relaxed-reduction sources it depends on (combine
  // edges), in the deterministic candidate order.
  std::vector<std::vector<std::size_t>> combineSources(n);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    PairResult& r = pairResults[i];
    switch (r.route) {
    case PairRoute::Parametric:
      ++info.stats.parametricPairs;
      break;
    case PairRoute::Symbolic:
      ++info.stats.symbolicPairs;
      break;
    case PairRoute::Explicit:
      ++info.stats.explicitPairs;
      break;
    case PairRoute::Independent:
      ++info.stats.independentPairs;
      break;
    case PairRoute::Reduction:
      ++info.stats.reductionPairs;
      break;
    }
    if (r.fallback != ParametricFallback::None)
      ++info.stats.fallbackByReason[static_cast<std::size_t>(r.fallback)];
    traceRoute(r, static_cast<std::int64_t>(i));
    if (r.combineEdge) {
      combineSources[candidates[i].second].push_back(candidates[i].first);
      if (!r.srcBlocking.empty())
        blockingMaps[candidates[i].first].push_back(std::move(r.srcBlocking));
    }
    if (!r.hasMap)
      continue;
    const auto [s, t] = candidates[i];
    blockingMaps[s].push_back(std::move(r.srcBlocking));
    blockingMaps[t].push_back(std::move(r.tgtBlocking));
    info.maps.push_back(PipelineMapEntry{s, t, std::move(r.map)});
  }
  pairResults.clear();

  // Phase 2 (lines 8-10): integrate blocking maps (eq. 3) per statement.
  {
    trace::Span phase("detect.integrate");
    forEachUnit(poolPtr, n, [&](std::size_t s) {
      trace::Span unit("detect.statement", static_cast<std::int64_t>(s));
      computeStatementInfo(scop, s, blockingMaps[s], options,
                           reductions.empty() ? kNoReduction : reductions[s],
                           info.statements[s]);
    });
  }

  // Phase 3 (lines 11-12): in-dependency maps (eq. 4), one per pipeline
  // map, attached to the targets in map order.
  std::vector<InRequirement> requirements(info.maps.size());
  {
    trace::Span phase("detect.requirements");
    forEachUnit(poolPtr, info.maps.size(), [&](std::size_t i) {
      trace::Span unit("detect.requirement", static_cast<std::int64_t>(i));
      requirements[i] =
          computeInRequirement(scop, info.maps[i], info, options);
    });
  }
  for (std::size_t i = 0; i < info.maps.size(); ++i)
    info.statements[info.maps[i].tgtIdx].inRequirements.push_back(
        std::move(requirements[i]));

  // Combine-edge requirements: a target of a relaxed reduction source
  // waits for the source's combine step. Appended after the map-based
  // requirements in the deterministic (target, source) candidate order;
  // the map relates every target block to the lexmax source block (the
  // lowering rewrites it to the combine task's tag).
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t s : combineSources[t]) {
      const StatementPipelineInfo& srcInfo = info.statements[s];
      if (srcInfo.blockReps.empty())
        continue; // empty source domain: nothing to wait for
      const pb::Tuple lastSrcRep = srcInfo.blockReps.lexmax();
      std::vector<pb::IntMap::Pair> pairs;
      pairs.reserve(info.statements[t].blockReps.size());
      for (const pb::Tuple& rep : info.statements[t].blockReps.points())
        pairs.emplace_back(rep, lastSrcRep);
      info.statements[t].inRequirements.push_back(
          InRequirement{s,
                        pb::IntMap(scop.statement(t).space(),
                                   scop.statement(s).space(),
                                   std::move(pairs)),
                        /*viaCombine=*/true});
    }
  }

  return info;
}

} // namespace pipoly::pipeline
