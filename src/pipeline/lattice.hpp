#pragma once

// Boundary lattices — the symbolic form of the block-boundary sets the
// separable closed forms produce. For a separable pair (identity-write
// source, single monotone read subscript_d = c_d*j_d + o_d, rectangular
// domains) the pipeline map is T = { c⊙j+o -> j : j in R } with R a
// clipped rectangle, so
//
//   Dom(T)   = product of per-dim progressions with stride c_d, and
//   Range(T) = R, a product of stride-1 progressions.
//
// Both are *product lattices*: cartesian products of per-dimension
// arithmetic progressions. Everything the N-independent detection route
// (param_detect) needs from a boundary set has a closed form here:
//
//   * membership and lexicographic ceiling (the blockingMap image of an
//     iteration) in O(dims),
//   * the size of a union of lattices by inclusion-exclusion, where
//     lattice intersections reduce to per-dim progression intersections
//     (a CRT/gcd computation),
//
// so block counts and eq.-4 requirement checks cost O(pairs * 2^k * dims)
// arithmetic — independent of the iteration counts N.

#include "presburger/set.hpp"
#include "presburger/tuple.hpp"

#include <optional>
#include <vector>

namespace pipoly::pipeline {

/// Floor/ceil division with a positive divisor (C++ '/' truncates toward
/// zero; the clipping arithmetic needs the mathematical variants).
inline pb::Value floorDiv(pb::Value a, pb::Value b) {
  pb::Value q = a / b;
  if (a % b != 0 && a < 0)
    --q;
  return q;
}

inline pb::Value ceilDiv(pb::Value a, pb::Value b) { return -floorDiv(-a, b); }

/// The arithmetic progression { first + stride*k : 0 <= k < count },
/// stride >= 1. count == 0 is the empty progression.
struct DimProgression {
  pb::Value first = 0;
  pb::Value stride = 1;
  pb::Value count = 0;

  bool empty() const { return count == 0; }
  pb::Value last() const { return first + stride * (count - 1); }
  bool contains(pb::Value v) const;
  /// The smallest element >= v; nullopt when v > last() (or empty).
  std::optional<pb::Value> ceil(pb::Value v) const;
  /// The smallest element > v; nullopt when none.
  std::optional<pb::Value> ceilStrict(pb::Value v) const { return ceil(v + 1); }
};

/// Intersection of two progressions: solves the congruence pair via the
/// extended gcd (CRT) and clips to both windows. Strides must be >= 1.
DimProgression intersect(const DimProgression& a, const DimProgression& b);

/// A product lattice P_0 x ... x P_{n-1}. Empty when any factor is empty
/// (a lattice over zero dims holds exactly the empty tuple).
struct BoundaryLattice {
  std::vector<DimProgression> dims;

  std::size_t arity() const { return dims.size(); }
  bool empty() const;
  /// Number of points (product of the per-dim counts).
  pb::Value size() const;
  /// Lexicographic extrema; the lattice must be non-empty.
  pb::Tuple lexmin() const;
  pb::Tuple lexmax() const;
  bool contains(const pb::Tuple& t) const;
  /// The smallest lattice point lexicographically >= x — the blockingMap
  /// image of x under this boundary set. O(arity). nullopt when every
  /// lattice point is lex< x.
  std::optional<pb::Tuple> lexCeil(const pb::Tuple& x) const;
  /// Materialises the points in lexicographic order (cross-checks and
  /// small instantiations only — size() grows with the domain).
  pb::IntTupleSet points(pb::Space space) const;
};

BoundaryLattice intersect(const BoundaryLattice& a, const BoundaryLattice& b);

/// |L_0 ∪ ... ∪ L_{k-1}| by inclusion-exclusion (2^k intersection terms;
/// k is the number of pipeline maps touching one statement, a handful).
pb::Value unionSize(const std::vector<BoundaryLattice>& lattices);

/// True when some lattice contains x.
bool unionContains(const std::vector<BoundaryLattice>& lattices,
                   const pb::Tuple& x);

/// The smallest point >= x across all lattices (lex-min of the per-lattice
/// ceilings) — the integrated-Σ image of x. nullopt when none.
std::optional<pb::Tuple>
unionLexCeil(const std::vector<BoundaryLattice>& lattices, const pb::Tuple& x);

} // namespace pipoly::pipeline
