#pragma once

// §4.1 — the pipeline map T_{S,T} between a source statement S and a
// target statement T:
//
//   (i, j) ∈ T_{S,T}  iff  after running all iterations of S up to i, all
//   iterations of T up to j can safely run, with i lex-minimal and j
//   lex-maximal for that property.
//
// Computed as in the paper:
//   P  = Wr^-1 (Rd)                    (relates target to source iterations)
//   D' = { j -> j' : j' lexle j }      (over Dom(P))
//   H  = lexmax(P(D'))                 (last source iteration j transitively
//                                       depends on)
//   T_{S,T} = lexmax(H^-1)
//
// Two implementations are provided: the literal composition (used by tests
// as ground truth) and a streaming one that exploits the monotonicity of H
// over the lexicographic order to avoid materialising the O(|J|^2) D' map.

#include "presburger/map.hpp"
#include "scop/scop.hpp"

namespace pipoly::pipeline {

/// The relation P = Wr^-1(Rd) over every array written by `srcIdx` and
/// read by `tgtIdx`: { target iteration -> source iteration producing one
/// of its operands }. By default this checks the paper's no-overwrite
/// assumption (each per-array write relation must be injective).
///
/// With `allowNonInjective` (the §7 relaxation) overwriting sources are
/// accepted: P then relates a read to *every* writer of the location, so
/// the lexmax in H covers the last writer and a target block only runs
/// once the location holds its final value — which is exactly the value
/// the original sequential program reads.
pb::IntMap producerRelation(const scop::Scop& scop, std::size_t srcIdx,
                            std::size_t tgtIdx,
                            bool allowNonInjective = false);

/// The pipeline map T_{S,T} (source space -> target space). Returns an
/// empty map when the target does not read anything the source writes.
pb::IntMap pipelineMap(const scop::Scop& scop, std::size_t srcIdx,
                       std::size_t tgtIdx, bool allowNonInjective = false);

/// Reference implementation by literal composition with the explicit D'
/// map; quadratic in |Dom(P)|. Used to cross-check `pipelineMap`.
pb::IntMap pipelineMapNaive(const scop::Scop& scop, std::size_t srcIdx,
                            std::size_t tgtIdx,
                            bool allowNonInjective = false);

/// The H relation (target iteration -> last transitively-required source
/// iteration); exposed for tests and for the AST annotations.
pb::IntMap lastRequirementMap(const pb::IntMap& producer);

} // namespace pipoly::pipeline
