#include "pipeline/reduction.hpp"

#include "support/assert.hpp"

namespace pipoly::pipeline {

std::string_view toString(ReductionReject r) {
  switch (r) {
  case ReductionReject::None:
    return "none";
  case ReductionReject::NotSingleWrite:
    return "not-single-write";
  case ReductionReject::AuxDims:
    return "aux-dims";
  case ReductionReject::NoMatchingRead:
    return "no-matching-read";
  case ReductionReject::ExtraArrayRead:
    return "extra-array-read";
  case ReductionReject::NoDeclaredOp:
    return "no-declared-op";
  case ReductionReject::NoSelfDependence:
    return "no-self-dependence";
  case ReductionReject::kCount:
    break;
  }
  return "?";
}

namespace {

bool sameSubscripts(const pb::AffineMap& a, const pb::AffineMap& b) {
  if (a.numInputs() != b.numInputs() || a.numOutputs() != b.numOutputs())
    return false;
  for (std::size_t o = 0; o < a.numOutputs(); ++o) {
    const pb::AffineExpr& ea = a.outputs()[o];
    const pb::AffineExpr& eb = b.outputs()[o];
    if (ea.constantTerm() != eb.constantTerm())
      return false;
    for (std::size_t d = 0; d < ea.numDims(); ++d)
      if (ea.coeff(d) != eb.coeff(d))
        return false;
  }
  return true;
}

} // namespace

ReductionInfo classifyReduction(const scop::Scop& scop, std::size_t stmtIdx) {
  const scop::Statement& stmt = scop.statement(stmtIdx);
  ReductionInfo info;
  auto reject = [&](ReductionReject r) {
    info.reject = r;
    return info;
  };

  if (stmt.writes().size() != 1)
    return reject(ReductionReject::NotSingleWrite);
  const scop::Access& write = stmt.writes().front();
  if (write.numAuxDims() != 0)
    return reject(ReductionReject::AuxDims);

  // Exactly one read of the written array, with the identical subscript
  // function: the A[f(i)] operand itself. Any other read of A would feed
  // the combined expression with order-dependent values.
  const scop::Access* arrayRead = nullptr;
  for (const scop::Access& read : stmt.reads()) {
    if (read.arrayId != write.arrayId)
      continue;
    if (arrayRead != nullptr)
      return reject(ReductionReject::ExtraArrayRead);
    arrayRead = &read;
  }
  if (arrayRead == nullptr || arrayRead->numAuxDims() != 0 ||
      !sameSubscripts(arrayRead->subscripts, write.subscripts))
    return reject(ReductionReject::NoMatchingRead);

  if (stmt.reductionOp() == scop::ReductionOp::None)
    return reject(ReductionReject::NoDeclaredOp);

  // A write relation that is injective over the domain accumulates into
  // each element at most once — no self-dependence, nothing to relax, and
  // the legacy route handles the statement as-is.
  if (scop.writeRelation(stmtIdx, write.arrayId).isInjective())
    return reject(ReductionReject::NoSelfDependence);

  info.relaxed = true;
  info.arrayId = write.arrayId;
  info.op = stmt.reductionOp();
  return info;
}

std::vector<ReductionInfo> classifyReductions(const scop::Scop& scop) {
  std::vector<ReductionInfo> infos(scop.numStatements());
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    infos[s] = classifyReduction(scop, s);
  return infos;
}

pb::IntMap relaxedSelfDependences(const scop::Scop& scop,
                                  std::size_t stmtIdx) {
  const ReductionInfo info = classifyReduction(scop, stmtIdx);
  const scop::Statement& stmt = scop.statement(stmtIdx);
  if (!info.relaxed)
    return pb::IntMap(stmt.space(), stmt.space());
  // All accesses of the classified statement into the reduction array:
  // the single write and the matching read. Flow, anti and output pairs
  // all join on the same relation, so one symmetric join suffices.
  const pb::IntMap wr = scop.writeRelation(stmtIdx, info.arrayId);
  const pb::IntMap rel = wr.inverse().compose(wr);
  std::vector<pb::IntMap::Pair> pairs;
  for (const auto& [i, j] : rel.pairs())
    if (i < j)
      pairs.emplace_back(i, j);
  return pb::IntMap(stmt.space(), stmt.space(), std::move(pairs));
}

} // namespace pipoly::pipeline
