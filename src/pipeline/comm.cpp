#include "pipeline/comm.hpp"

#include "pipeline/symbolic.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pipoly::pipeline {

namespace {

// Floor/ceil division with a positive divisor (pb::Value is signed).
pb::Value floorDiv(pb::Value a, pb::Value b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
pb::Value ceilDiv(pb::Value a, pb::Value b) {
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

/// The closed-form edge volume for a separable pair: the consumer reads
/// subscript c_d*j_d + o_d over its rectangle, the producer writes the
/// identity over its rectangle, and c_d >= 1 makes the read injective —
/// so the distinct shared elements are exactly the j kept by clipping the
/// target box against the preimage of the source box, a per-dimension
/// interval count (mirrors param_detect: no set is materialized).
std::uint64_t separableVolume(const SeparablePairShape& shape) {
  std::uint64_t total = 1;
  for (std::size_t d = 0; d < shape.coeffs.size(); ++d) {
    const pb::Value c = shape.coeffs[d];
    const pb::Value o = shape.offsets[d];
    const pb::Value lo = std::max(shape.tgtBox[d].lower,
                                  ceilDiv(shape.srcBox[d].lower - o, c));
    const pb::Value hi = std::min(shape.tgtBox[d].upper,
                                  floorDiv(shape.srcBox[d].upper - o, c));
    if (hi < lo)
      return 0;
    total *= static_cast<std::uint64_t>(hi - lo + 1);
  }
  return total;
}

/// Sorted intersection of two sorted id vectors (arraysWrittenBy /
/// arraysReadBy results are ascending).
std::vector<std::size_t> sharedArrays(std::vector<std::size_t> written,
                                      std::vector<std::size_t> read) {
  std::sort(written.begin(), written.end());
  std::sort(read.begin(), read.end());
  std::vector<std::size_t> out;
  std::set_intersection(written.begin(), written.end(), read.begin(),
                        read.end(), std::back_inserter(out));
  return out;
}

/// Ordinal of a block representative within a statement's ordered rep
/// list (blockReps rows are sorted, which is execution order).
std::size_t repOrdinal(const std::vector<pb::Tuple>& reps,
                       const pb::Tuple& rep) {
  const auto it = std::lower_bound(reps.begin(), reps.end(), rep);
  PIPOLY_CHECK_MSG(it != reps.end() && *it == rep,
                   "block representative not found in its statement");
  return static_cast<std::size_t>(it - reps.begin());
}

std::vector<pb::Tuple> materializeReps(const pb::IntTupleSet& reps) {
  std::vector<pb::Tuple> out;
  out.reserve(reps.size());
  for (const pb::Tuple& rep : reps.points())
    out.push_back(rep);
  return out;
}

/// Per-edge scheduling data kept alongside the public EdgeComm while the
/// lockstep occupancy simulation runs.
struct EdgeWork {
  EdgeComm comm;
  /// Tokens (producer blocks, by ordinal) consumer block k needs before
  /// it may run; 0 = no requirement from this edge.
  std::vector<std::uint64_t> reqTokens;
  /// Prefix sums of per-producer-block consumed bytes: prefixBytes[p] =
  /// bytes of blocks [0, p).
  std::vector<std::uint64_t> prefixBytes;
  std::uint64_t popped = 0; // running max of started consumers' reqTokens
  std::uint32_t peakTokens = 0;
  std::uint64_t peakBytes = 0;
};

} // namespace

CommInfo analyzeCommunication(const scop::Scop& scop, const PipelineInfo& info,
                              const CommOptions& options) {
  trace::Span span("comm.analyze");
  CommInfo result;
  if (info.maps.empty())
    return result;

  const std::size_t numStmts = scop.numStatements();
  std::vector<std::vector<pb::Tuple>> reps(numStmts);
  for (std::size_t s = 0; s < numStmts; ++s)
    if (s < info.statements.size())
      reps[s] = materializeReps(info.statements[s].blockReps);

  // Phase A: per-edge volumes, per-block consumed bytes, and the token
  // requirement of every consumer block.
  std::vector<EdgeWork> work;
  work.reserve(info.maps.size());
  std::vector<std::size_t> inReqSeen(numStmts, 0); // inRequirements cursor
  for (std::size_t m = 0; m < info.maps.size(); ++m) {
    const PipelineMapEntry& entry = info.maps[m];
    const std::size_t src = entry.srcIdx;
    const std::size_t tgt = entry.tgtIdx;
    EdgeWork w;
    w.comm.srcIdx = src;
    w.comm.tgtIdx = tgt;
    w.comm.mapIdx = m;

    const std::vector<std::size_t> shared =
        sharedArrays(scop.arraysWrittenBy(src), scop.arraysReadBy(tgt));

    // Volume: the separable closed form when the pair qualifies,
    // otherwise the explicit range intersection per shared array.
    bool parametric = false;
    if (options.parametricMode == CommOptions::ParametricMode::Auto) {
      const SeparablePairShape shape = classifySeparablePair(scop, src, tgt);
      if (shape.ok() && !shape.vacuous) {
        w.comm.elements = separableVolume(shape);
        parametric = true;
      }
    }
    // The per-array relations are needed for the per-block pass anyway.
    std::vector<pb::IntMap> wrRels, rdInvRels;
    std::vector<pb::IntTupleSet> rdRanges;
    std::uint64_t explicitElements = 0;
    for (const std::size_t a : shared) {
      pb::IntMap wr = scop.writeRelation(src, a);
      pb::IntMap rd = scop.readRelation(tgt, a);
      pb::IntTupleSet rdRange = rd.range();
      if (!parametric)
        explicitElements += wr.range().intersect(rdRange).size();
      wrRels.push_back(std::move(wr));
      rdInvRels.push_back(rd.inverse());
      rdRanges.push_back(std::move(rdRange));
    }
    if (!parametric)
      w.comm.elements = explicitElements;
    w.comm.parametric = parametric;
    w.comm.totalBytes = w.comm.elements * options.elementSize;

    // Per producer block: consumed bytes and (implicitly, through the
    // requirement tokens below) the consumer blocks that read it.
    const std::vector<pb::Tuple>& srcReps = reps[src];
    const StatementPipelineInfo& srcInfo = info.statements[src];
    w.prefixBytes.assign(srcReps.size() + 1, 0);
    std::vector<pb::Tuple> elems;
    for (std::size_t p = 0; p < srcReps.size(); ++p) {
      const std::vector<pb::Tuple> members =
          srcInfo.expansion.imagesOf(srcReps[p]);
      std::uint64_t blockElems = 0;
      for (std::size_t ai = 0; ai < shared.size(); ++ai) {
        elems.clear();
        for (const pb::Tuple& it : members)
          for (const pb::Tuple& elem : wrRels[ai].imagesOf(it))
            if (rdRanges[ai].contains(elem))
              elems.push_back(elem);
        std::sort(elems.begin(), elems.end());
        elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
        blockElems += elems.size();
      }
      const std::uint64_t bytes = blockElems * options.elementSize;
      w.comm.maxBlockBytes = std::max(w.comm.maxBlockBytes, bytes);
      w.prefixBytes[p + 1] = w.prefixBytes[p] + bytes;
    }

    // Requirement tokens per consumer block, from the eq.-4 map of this
    // edge (inRequirements are appended in pipeline-map order, one per
    // map targeting the statement).
    const StatementPipelineInfo& tgtInfo = info.statements[tgt];
    const std::size_t reqIdx = inReqSeen[tgt]++;
    PIPOLY_CHECK_MSG(reqIdx < tgtInfo.inRequirements.size() &&
                         tgtInfo.inRequirements[reqIdx].srcStmtIdx == src,
                     "in-requirement order does not match the pipeline maps");
    const pb::IntMap& req = tgtInfo.inRequirements[reqIdx].map;
    const std::vector<pb::Tuple>& tgtReps = reps[tgt];
    w.reqTokens.assign(tgtReps.size(), 0);
    for (std::size_t k = 0; k < tgtReps.size(); ++k) {
      std::uint64_t need = 0;
      for (const pb::Tuple& srcRep : req.imagesOf(tgtReps[k]))
        need = std::max(need, static_cast<std::uint64_t>(
                                  repOrdinal(srcReps, srcRep) + 1));
      w.reqTokens[k] = need;
    }
    work.push_back(std::move(w));
  }

  // Phase B: the unthrottled ASAP lockstep schedule. Every stage finishes
  // at most one block per round, starting its next block as soon as each
  // in-edge's producer had completed the required tokens by the end of
  // the previous round. Channel occupancy peaks under this schedule give
  // the capacity that never throttles it.
  std::vector<std::size_t> completed(numStmts, 0), totals(numStmts, 0);
  for (std::size_t s = 0; s < numStmts; ++s)
    totals[s] = reps[s].size();
  // Statements with blocks but outside every edge still terminate the
  // loop; they just advance unconstrained.
  bool done = false;
  std::vector<std::size_t> advancing;
  while (!done) {
    advancing.clear();
    for (std::size_t s = 0; s < numStmts; ++s) {
      if (completed[s] >= totals[s])
        continue;
      bool ready = true;
      for (const EdgeWork& w : work)
        if (w.comm.tgtIdx == s &&
            static_cast<std::uint64_t>(completed[w.comm.srcIdx]) <
                w.reqTokens[completed[s]]) {
          ready = false;
          break;
        }
      if (ready)
        advancing.push_back(s);
    }
    done = true;
    for (std::size_t s = 0; s < numStmts; ++s)
      if (completed[s] < totals[s])
        done = false;
    if (done)
      break;
    PIPOLY_CHECK_MSG(!advancing.empty(),
                     "lockstep schedule stuck: cyclic block requirements");
    // Consumers starting a block pop its required tokens first...
    for (EdgeWork& w : work) {
      const std::size_t tgt = w.comm.tgtIdx;
      if (completed[tgt] < totals[tgt] &&
          std::find(advancing.begin(), advancing.end(), tgt) !=
              advancing.end())
        w.popped = std::max(w.popped, w.reqTokens[completed[tgt]]);
    }
    for (const std::size_t s : advancing)
      ++completed[s];
    // ... then producers finishing this round push theirs; measure the
    // in-flight peak after the pushes.
    for (EdgeWork& w : work) {
      const std::uint64_t pushed = completed[w.comm.srcIdx];
      const std::uint64_t popped = std::min<std::uint64_t>(w.popped, pushed);
      w.peakTokens = std::max(w.peakTokens,
                              static_cast<std::uint32_t>(pushed - popped));
      w.peakBytes =
          std::max(w.peakBytes,
                   w.prefixBytes[static_cast<std::size_t>(pushed)] -
                       w.prefixBytes[static_cast<std::size_t>(popped)]);
    }
  }

  result.edges.reserve(work.size());
  for (EdgeWork& w : work) {
    w.comm.peakInFlightTokens = w.peakTokens;
    w.comm.peakInFlightBytes = w.peakBytes;
    w.comm.capacitySlots = std::max(options.minCapacitySlots, w.peakTokens);
    result.edges.push_back(w.comm);
  }
  return result;
}

std::uint64_t commVolumeNaive(const scop::Scop& scop, std::size_t srcIdx,
                              std::size_t tgtIdx) {
  // Enumerate every accessed element through the raw affine subscripts —
  // no relation machinery shared with the analyzed path.
  const auto elementsOf = [&scop](std::size_t stmtIdx,
                                  const std::vector<scop::Access>& accesses,
                                  std::size_t arrayId) {
    std::vector<pb::Tuple> out;
    const scop::Statement& stmt = scop.statements()[stmtIdx];
    for (const scop::Access& access : accesses) {
      if (access.arrayId != arrayId)
        continue;
      for (const pb::Tuple& point : stmt.domain().points()) {
        // Odometer over the auxiliary dimensions (multi-element reads).
        std::vector<pb::Value> ext(point.size() + access.numAuxDims());
        for (std::size_t d = 0; d < point.size(); ++d)
          ext[d] = point[d];
        std::vector<pb::Value> aux(access.numAuxDims(), 0);
        bool more = true;
        while (more) {
          for (std::size_t d = 0; d < aux.size(); ++d)
            ext[point.size() + d] = aux[d];
          out.push_back(access.subscripts.evaluate(pb::Tuple(ext)));
          more = false;
          for (std::size_t d = aux.size(); d-- > 0;) {
            if (++aux[d] < access.auxExtents[d]) {
              more = true;
              break;
            }
            aux[d] = 0;
          }
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  std::uint64_t total = 0;
  for (std::size_t a = 0; a < scop.arrays().size(); ++a) {
    const std::vector<pb::Tuple> written =
        elementsOf(srcIdx, scop.statements()[srcIdx].writes(), a);
    if (written.empty())
      continue;
    const std::vector<pb::Tuple> read =
        elementsOf(tgtIdx, scop.statements()[tgtIdx].reads(), a);
    std::vector<pb::Tuple> both;
    std::set_intersection(written.begin(), written.end(), read.begin(),
                          read.end(), std::back_inserter(both));
    total += both.size();
  }
  return total;
}

std::vector<rt::StageEdge>
CommInfo::stageEdges(const std::vector<std::size_t>& stmtOfStage) const {
  std::vector<std::size_t> stageOf;
  for (std::size_t s = 0; s < stmtOfStage.size(); ++s) {
    if (stmtOfStage[s] >= stageOf.size())
      stageOf.resize(stmtOfStage[s] + 1, SIZE_MAX);
    stageOf[stmtOfStage[s]] = s;
  }
  std::vector<rt::StageEdge> out;
  out.reserve(edges.size());
  for (const EdgeComm& e : edges) {
    if (e.srcIdx >= stageOf.size() || e.tgtIdx >= stageOf.size())
      continue;
    const std::size_t src = stageOf[e.srcIdx];
    const std::size_t tgt = stageOf[e.tgtIdx];
    if (src == SIZE_MAX || tgt == SIZE_MAX)
      continue;
    out.push_back({src, tgt, std::max<std::uint64_t>(e.totalBytes, 1)});
  }
  return out;
}

} // namespace pipoly::pipeline
