#pragma once

// Detection result cache. Pipeline detection is a pure function of the
// instantiated SCoP and the detection options (PipelineInfo is guaranteed
// bit-identical for every thread count), so drivers that analyse the same
// program repeatedly — parameter sweeps, schedule re-runs, the REPL-style
// pipolyc invocations — can memoize it.
//
// The key is an exact byte-serialisation of everything detection reads:
// statement names/depths/domains, access relations (array id, affine
// subscripts, aux extents), array names/shapes, and every option except
// numThreads. No hashing-with-collisions shortcut: equal keys mean equal
// inputs, so a hit returns a result bit-identical to recomputation.
// Cached PipelineInfo values share their presburger row buffers, so a hit
// copies a few shared_ptrs instead of re-running Algorithm 1.
//
// Bounded LRU, thread-safe; hit/miss/eviction counters are exposed via
// stats() and emitted as trace instants/counters when a trace session is
// active.

#include "pipeline/detect.hpp"

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pipoly::pipeline {

/// The exact cache key for one (scop, options) detection input. Excludes
/// DetectOptions::numThreads — the result is bit-identical across thread
/// counts by construction.
std::string detectFingerprint(const scop::Scop& scop,
                              const DetectOptions& options);

class DetectCache {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  explicit DetectCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the memoized PipelineInfo for (scop, options), running
  /// detectPipeline on a miss. Safe to call concurrently; a miss computes
  /// outside the lock, so concurrent misses on the same key may both
  /// compute (the results are identical and the first insert wins).
  PipelineInfo getOrCompute(const scop::Scop& scop,
                            const DetectOptions& options = {});

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  static constexpr std::size_t kDefaultCapacity = 64;

private:
  struct Entry {
    std::string key;
    PipelineInfo info;
  };

  /// Returns the cached value, or nullptr. Caller must hold mutex_.
  const PipelineInfo* lookupLocked(const std::string& key);
  void insertLocked(std::string key, const PipelineInfo& info);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_; // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

} // namespace pipoly::pipeline
