#pragma once

// §4.2 — blocking maps. A blocking map partitions an iteration domain into
// contiguous (in lexicographic order) blocks, mapping every iteration to
// the lexicographically largest member of its block (the block
// *representative*). Block boundaries come from a pipeline map: Dom(T) for
// the source statement, Range(T) for the target statement (eq. 2).
// Iterations past the last boundary form a remainder block represented by
// lexmax of the domain (the paper's final-block rule).
//
// The integrated per-statement map Σ_S (eq. 3) is the lexmin of the union
// of all source and target blocking maps of S: every iteration gets the
// smallest block it belongs to across all pipeline maps involving S.

#include "presburger/map.hpp"
#include "presburger/set.hpp"

#include <vector>

namespace pipoly::pipeline {

/// Generic blocking: maps every iteration of `domain` to the smallest
/// element of `boundaries` that is lexge it, or to lexmax(domain) when
/// there is none. `boundaries` must be a subset of `domain`.
pb::IntMap blockingMap(const pb::IntTupleSet& domain,
                       const pb::IntTupleSet& boundaries);

/// Reference implementation via the paper's formula (eq. 2):
/// lexmin(lexleset(domain, boundaries)), plus the remainder rule. Used by
/// tests to cross-check `blockingMap`.
pb::IntMap blockingMapNaive(const pb::IntTupleSet& domain,
                            const pb::IntTupleSet& boundaries);

/// Source blocking map V_S for pipeline map T (eq. 2, source side).
pb::IntMap sourceBlockingMap(const pb::IntTupleSet& srcDomain,
                             const pb::IntMap& pipelineMap);

/// Target blocking map Y_T for pipeline map T (eq. 2, target side).
pb::IntMap targetBlockingMap(const pb::IntTupleSet& tgtDomain,
                             const pb::IntMap& pipelineMap);

/// Σ_S (eq. 3): lexmin of the union of all blocking maps of one statement.
/// All maps must share the statement's space and be total on its domain.
pb::IntMap integrateBlockingMaps(const std::vector<pb::IntMap>& maps);

} // namespace pipoly::pipeline
