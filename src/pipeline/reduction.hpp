#pragma once

// Reduction dependence detection (after Doerfert et al., "Polly's
// Polyhedral Scheduling in the Presence of Reductions"). A statement of
// the shape
//
//   A[f(i)] = A[f(i)] ⊕ expr        (⊕ associative and commutative,
//                                     expr not reading A)
//
// carries self-dependences only through the accumulation chain on A.
// Because ⊕ is associative and commutative those dependences do not
// constrain the order of the partial combinations — Algorithm 1 may drop
// them when building the blocking maps (eq. 2/3), split the nest into
// parallel partial-reduction blocks that accumulate into privatized
// partial buffers, and restore the original value with one combine step
// per block (the lowering emits it as an extra task; MARS-style legality
// of the re-partitioning: every relaxed edge is a self-dependence on the
// reduction access, everything else still flows through the pipeline
// maps).
//
// The classifier is deliberately strict: a statement qualifies only when
// its single write and exactly one read of the written array use the
// identical subscript function (no aux dims), a combination operator is
// declared on the statement, and the write relation is genuinely
// non-injective over the domain (otherwise there is nothing to relax and
// the legacy route already pipelines it).

#include "presburger/map.hpp"
#include "scop/scop.hpp"

#include <string_view>
#include <vector>

namespace pipoly::pipeline {

/// Why a statement was not classified as a relaxable reduction (for
/// stats, traces and the fuzz oracle).
enum class ReductionReject : unsigned char {
  None, // classified
  NotSingleWrite,
  AuxDims,
  NoMatchingRead,
  ExtraArrayRead,
  NoDeclaredOp,
  NoSelfDependence,
  kCount,
};

std::string_view toString(ReductionReject r);

/// Classification result for one statement.
struct ReductionInfo {
  bool relaxed = false;
  std::size_t arrayId = 0; // the reduction array (valid when relaxed)
  scop::ReductionOp op = scop::ReductionOp::None;
  ReductionReject reject = ReductionReject::None;
};

/// Classifies one statement. Pure structural analysis over the declared
/// accesses plus one injectivity check of the write relation.
ReductionInfo classifyReduction(const scop::Scop& scop, std::size_t stmtIdx);

/// Classifies every statement of the SCoP.
std::vector<ReductionInfo> classifyReductions(const scop::Scop& scop);

/// The dependences the relaxation drops for a classified statement: the
/// lex-increasing self-dependence pairs carried by the reduction array.
/// For a statement the classifier accepted this equals ALL of its
/// self-dependences (the single write is the reduction access), which is
/// what makes the relaxed nest fully parallel across blocks. Exposed for
/// the differential/fuzz suites.
pb::IntMap relaxedSelfDependences(const scop::Scop& scop,
                                  std::size_t stmtIdx);

} // namespace pipoly::pipeline
