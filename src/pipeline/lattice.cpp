#include "pipeline/lattice.hpp"

#include "presburger/rows.hpp"
#include "support/assert.hpp"

#include <numeric>

namespace pipoly::pipeline {

bool DimProgression::contains(pb::Value v) const {
  return !empty() && v >= first && v <= last() &&
         (v - first) % stride == 0;
}

std::optional<pb::Value> DimProgression::ceil(pb::Value v) const {
  if (empty())
    return std::nullopt;
  if (v <= first)
    return first;
  const pb::Value k = ceilDiv(v - first, stride);
  if (k >= count)
    return std::nullopt;
  return first + k * stride;
}

DimProgression intersect(const DimProgression& a, const DimProgression& b) {
  DimProgression out; // count = 0: empty by default
  if (a.empty() || b.empty())
    return out;
  PIPOLY_CHECK(a.stride >= 1 && b.stride >= 1);

  // Solve x ≡ a.first (mod a.stride), x ≡ b.first (mod b.stride).
  // Extended gcd in 128-bit: the values are iteration coordinates times
  // small strides, but the intermediate products deserve headroom.
  using I = __int128;
  I s = a.stride, t = b.stride;
  I oldR = s, r = t, oldP = 1, p = 0;
  while (r != 0) {
    const I q = oldR / r;
    I tmp = oldR - q * r;
    oldR = r;
    r = tmp;
    tmp = oldP - q * p;
    oldP = p;
    p = tmp;
  }
  const I g = oldR; // gcd(s, t), with s*oldP ≡ g (mod t)
  const I diff = static_cast<I>(b.first) - static_cast<I>(a.first);
  if (diff % g != 0)
    return out;
  const I lcm = s / g * t;
  // x0 = a.first + s * ((diff/g * oldP) mod (t/g)) is one solution.
  const I tg = t / g;
  I m = (diff / g % tg) * (oldP % tg) % tg;
  if (m < 0)
    m += tg;
  const I x0 = static_cast<I>(a.first) + s * m;

  const I lo = std::max<I>(a.first, b.first);
  const I hi = std::min<I>(a.last(), b.last());
  if (hi < lo)
    return out;
  // Smallest solution >= lo.
  I firstSol = x0;
  if (firstSol < lo)
    firstSol += (lo - firstSol + lcm - 1) / lcm * lcm;
  else
    firstSol -= (firstSol - lo) / lcm * lcm;
  if (firstSol > hi)
    return out;
  out.first = static_cast<pb::Value>(firstSol);
  out.stride = static_cast<pb::Value>(lcm);
  out.count = static_cast<pb::Value>((hi - firstSol) / lcm + 1);
  return out;
}

bool BoundaryLattice::empty() const {
  for (const DimProgression& p : dims)
    if (p.empty())
      return true;
  return false;
}

pb::Value BoundaryLattice::size() const {
  pb::Value n = 1;
  for (const DimProgression& p : dims)
    n *= p.count;
  return n;
}

pb::Tuple BoundaryLattice::lexmin() const {
  PIPOLY_CHECK(!empty());
  std::vector<pb::Value> v;
  v.reserve(dims.size());
  for (const DimProgression& p : dims)
    v.push_back(p.first);
  return pb::Tuple(v);
}

pb::Tuple BoundaryLattice::lexmax() const {
  PIPOLY_CHECK(!empty());
  std::vector<pb::Value> v;
  v.reserve(dims.size());
  for (const DimProgression& p : dims)
    v.push_back(p.last());
  return pb::Tuple(v);
}

bool BoundaryLattice::contains(const pb::Tuple& t) const {
  PIPOLY_CHECK(t.size() == dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d)
    if (!dims[d].contains(t[d]))
      return false;
  return true;
}

std::optional<pb::Tuple> BoundaryLattice::lexCeil(const pb::Tuple& x) const {
  PIPOLY_CHECK(x.size() == dims.size());
  if (empty())
    return std::nullopt;
  const std::size_t n = dims.size();
  // The deepest position whose prefix can stay tight: dims before it hold
  // their exact coordinate of x.
  std::size_t mismatch = n;
  for (std::size_t d = 0; d < n; ++d)
    if (!dims[d].contains(x[d])) {
      mismatch = d;
      break;
    }
  if (mismatch == n)
    return pb::Tuple(x); // x itself is a lattice point
  // Candidates keep x's coordinates on a prefix, take the smallest
  // progression element >= (resp. >) x at one position, and the minima
  // after it. Deeper positions give lex-smaller candidates, so scan from
  // the mismatch backwards and return the first that exists.
  for (std::size_t d = mismatch + 1; d-- > 0;) {
    const std::optional<pb::Value> v = d == mismatch
                                           ? dims[d].ceil(x[d])
                                           : dims[d].ceilStrict(x[d]);
    if (!v.has_value())
      continue;
    std::vector<pb::Value> out(x.begin(), x.begin() + d);
    out.push_back(*v);
    for (std::size_t e = d + 1; e < n; ++e)
      out.push_back(dims[e].first);
    return pb::Tuple(std::move(out));
  }
  return std::nullopt;
}

pb::IntTupleSet BoundaryLattice::points(pb::Space space) const {
  PIPOLY_CHECK(space.arity() == dims.size());
  if (empty() || dims.empty())
    return empty() ? pb::IntTupleSet(space)
                   : pb::IntTupleSet(space, {pb::Tuple()});
  const std::size_t n = dims.size();
  pb::RowBuffer data;
  data.reserve(static_cast<std::size_t>(size()) * n);
  std::vector<pb::Value> cur;
  cur.reserve(n);
  for (const DimProgression& p : dims)
    cur.push_back(p.first);
  for (;;) {
    pb::rows::append(data, cur.data(), n);
    std::size_t d = n;
    while (d-- > 0) {
      cur[d] += dims[d].stride;
      if (cur[d] <= dims[d].last())
        break;
      cur[d] = dims[d].first;
      if (d == 0)
        return pb::IntTupleSet::fromSortedRows(space, std::move(data));
    }
  }
}

BoundaryLattice intersect(const BoundaryLattice& a, const BoundaryLattice& b) {
  PIPOLY_CHECK(a.arity() == b.arity());
  BoundaryLattice out;
  out.dims.reserve(a.dims.size());
  for (std::size_t d = 0; d < a.dims.size(); ++d)
    out.dims.push_back(intersect(a.dims[d], b.dims[d]));
  return out;
}

pb::Value unionSize(const std::vector<BoundaryLattice>& lattices) {
  std::vector<const BoundaryLattice*> live;
  for (const BoundaryLattice& l : lattices)
    if (!l.empty())
      live.push_back(&l);
  const std::size_t k = live.size();
  PIPOLY_CHECK_MSG(k <= 20, "inclusion-exclusion over too many lattices");
  pb::Value total = 0;
  for (std::size_t mask = 1; mask < (std::size_t{1} << k); ++mask) {
    BoundaryLattice inter;
    bool first = true;
    int bits = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (!(mask & (std::size_t{1} << i)))
        continue;
      ++bits;
      inter = first ? *live[i] : intersect(inter, *live[i]);
      first = false;
      if (inter.empty())
        break;
    }
    if (inter.empty())
      continue;
    total += (bits % 2 == 1) ? inter.size() : -inter.size();
  }
  return total;
}

bool unionContains(const std::vector<BoundaryLattice>& lattices,
                   const pb::Tuple& x) {
  for (const BoundaryLattice& l : lattices)
    if (!l.empty() && l.contains(x))
      return true;
  return false;
}

std::optional<pb::Tuple>
unionLexCeil(const std::vector<BoundaryLattice>& lattices,
             const pb::Tuple& x) {
  std::optional<pb::Tuple> best;
  for (const BoundaryLattice& l : lattices) {
    if (l.empty())
      continue;
    std::optional<pb::Tuple> c = l.lexCeil(x);
    if (c.has_value() && (!best.has_value() || *c < *best))
      best = std::move(c);
  }
  return best;
}

} // namespace pipoly::pipeline
