#include "tasking/timing_layer.hpp"

#include "support/assert.hpp"
#include "support/stopwatch.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace pipoly::tasking {

namespace {
double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

/// The wrapped task: times the inner function around its execution. The
/// trampoline owns a copy of the original input (the inner layer will
/// copy the trampoline pointer struct, not the user payload, so the
/// payload must outlive the task).
struct TimingLayer::Trampoline {
  TimingLayer* layer;
  std::size_t index;
  TaskFunction fn;
  std::vector<std::byte> payload;

  void recordInto(double start, double finish);
};

namespace {
void runTimed(void* raw) {
  auto* t = *static_cast<TimingLayer::Trampoline**>(raw);
  const double start = nowSeconds();
  t->fn(t->payload.data());
  const double finish = nowSeconds();
  t->recordInto(start, finish);
}
} // namespace

// Out-of-line so the anonymous-namespace trampoline body can call back.
void TimingLayer::Trampoline::recordInto(double start, double finish) {
  std::lock_guard lock(layer->mutex_);
  layer->timings_.push_back(
      TimedTask{index, start - layer->runStart_, finish - layer->runStart_});
}

TimingLayer::TimingLayer(std::unique_ptr<TaskingLayer> inner)
    : inner_(std::move(inner)) {
  PIPOLY_CHECK(inner_ != nullptr);
}

TimingLayer::~TimingLayer() = default;

void TimingLayer::createTask(TaskFunction f, const void* input,
                             std::size_t inputSize, std::int64_t outDepend,
                             int outIdx, const std::int64_t* inDepend,
                             const int* inIdx, std::size_t dependNum) {
  auto tramp = std::make_unique<Trampoline>();
  tramp->layer = this;
  tramp->index = created_++;
  tramp->fn = f;
  tramp->payload.resize(inputSize);
  std::memcpy(tramp->payload.data(), input, inputSize);
  Trampoline* raw = tramp.get();
  trampolines_.push_back(std::move(tramp));
  inner_->createTask(&runTimed, &raw, sizeof(raw), outDepend, outIdx,
                     inDepend, inIdx, dependNum);
}

void TimingLayer::reserveDependencySlots(std::size_t numSlots) {
  inner_->reserveDependencySlots(numSlots);
}

void TimingLayer::run(const std::function<void()>& spawner) {
  timings_.clear();
  trampolines_.clear();
  created_ = 0;
  runStart_ = nowSeconds();
  inner_->run(spawner);
  lastRunSeconds_ = nowSeconds() - runStart_;
  std::lock_guard lock(mutex_);
  std::sort(timings_.begin(), timings_.end(),
            [](const TimedTask& a, const TimedTask& b) {
              return a.index < b.index;
            });
}

double TimingLayer::totalBusySeconds() const {
  double total = 0.0;
  for (const TimedTask& t : timings_)
    total += t.finish - t.start;
  return total;
}

} // namespace pipoly::tasking
