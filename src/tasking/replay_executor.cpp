#include "tasking/replay_executor.hpp"

#include "support/assert.hpp"
#include "tasking/channel_backend.hpp"
#include "tasking/task_launch.hpp"
#include "trace/trace.hpp"

#include <thread>
#include <utility>

namespace pipoly::tasking {

namespace {

/// The per-run payload handed to the frozen graph: the program is stable
/// across replays, the executor changes per call.
struct ReplayRun {
  const codegen::TaskProgram* program;
  const BatchStatementExecutor* exec;
};

void runGraphNode(void* context, rt::ReplayGraph::NodeId node,
                  std::size_t batch) {
  const ReplayRun& run = *static_cast<ReplayRun*>(context);
  const codegen::Task& task = run.program->tasks[node];
  for (const pb::Tuple& it : task.iterations)
    (*run.exec)(batch, task.stmtIdx, it);
}

/// Adapts a single-run StatementExecutor to the batch signature without
/// re-wrapping per task.
BatchStatementExecutor dropBatch(const StatementExecutor& exec) {
  return [&exec](std::size_t, std::size_t stmtIdx, const pb::Tuple& it) {
    exec(stmtIdx, it);
  };
}

} // namespace

/// Checked non-reentrancy: overlapping replays on one instance would
/// share the graph's ready counters.
class CompiledPipeline::ReplayGuard {
public:
  explicit ReplayGuard(CompiledPipeline& self) : self_(self) {
    PIPOLY_CHECK_MSG(!self_.replaying_.exchange(true),
                     "overlapping replay calls on one CompiledPipeline");
  }
  ~ReplayGuard() { self_.replaying_.store(false); }

private:
  CompiledPipeline& self_;
};

CompiledPipeline::CompiledPipeline(
    std::shared_ptr<const codegen::TaskProgram> program, Options options)
    : program_(std::move(program)), options_(options) {
  PIPOLY_CHECK_MSG(program_ != nullptr,
                   "CompiledPipeline needs a non-null program (it keeps the "
                   "program alive for the tasks' raw pointers)");
  compile(nullptr);
}

CompiledPipeline::CompiledPipeline(
    std::shared_ptr<const codegen::TaskProgram> program,
    const opt::SlotTable& slots, Options options)
    : program_(std::move(program)), options_(options) {
  PIPOLY_CHECK_MSG(program_ != nullptr,
                   "CompiledPipeline needs a non-null program (it keeps the "
                   "program alive for the tasks' raw pointers)");
  PIPOLY_CHECK_MSG(slots.compatibleWith(*program_),
                   "slot table does not match the task program");
  compile(&slots);
}

CompiledPipeline::CompiledPipeline(codegen::TaskProgram program,
                                   Options options)
    : CompiledPipeline(std::make_shared<const codegen::TaskProgram>(
                           std::move(program)),
                       options) {}

// Out of line: ChannelPipeline is incomplete in the header.
CompiledPipeline::~CompiledPipeline() = default;

void CompiledPipeline::compile(const opt::SlotTable* slots) {
  trace::Span span("replay.compile");
  numThreads_ = options_.numThreads != 0
                    ? options_.numThreads
                    : std::max(1u, std::thread::hardware_concurrency());

  const std::size_t n = program_->tasks.size();
  // Resolve every in-dependency to its producer exactly once. With a
  // caller-provided slot table the producers are already interned (slot
  // id == producing task id); otherwise one hashed owner-index pass.
  opt::SlotTable built;
  if (slots == nullptr) {
    built = opt::buildSlotTable(*program_);
    slots = &built;
  }
  inOffsets_.assign(slots->inOffsets.begin(), slots->inOffsets.end());
  flatInSlots_.reserve(slots->inSlots.size());
  for (std::uint32_t producer : slots->inSlots)
    flatInSlots_.push_back(static_cast<std::int64_t>(producer));
  flatInIdx_.assign(flatInSlots_.size(), 0);

  std::vector<rt::ReplayGraph::NodeId> preds;
  for (std::size_t i = 0; i < n; ++i) {
    preds.assign(slots->inBegin(i), slots->inEnd(i));
    graph_.addNode(preds);
  }
  // One batch group per statement: forward reads inside a statement's
  // iteration space (self neighbourhoods) make later blocks batch-b
  // writers of data earlier blocks read in batch b+1 — a backward
  // dependence no RAW edge captures. Grouping keeps each statement
  // batch-serial while statements still overlap, matching the channel
  // route's stage semantics (see ReplayGraph's class comment).
  {
    const std::size_t numStmts = program_->numStatements;
    std::vector<std::vector<rt::ReplayGraph::NodeId>> byStmt(numStmts);
    for (std::size_t i = 0; i < n; ++i)
      byStmt[program_->tasks[i].stmtIdx].push_back(
          static_cast<rt::ReplayGraph::NodeId>(i));
    std::vector<std::uint32_t> stmtGroup;
    stmtGroup.reserve(numStmts);
    for (const std::vector<rt::ReplayGraph::NodeId>& members : byStmt)
      stmtGroup.push_back(graph_.addBatchGroup(members));

    // Cross-statement anti edges: a writer statement may not start batch
    // b+1 before every statement reading its output finished batch b.
    // The per-node anti tokens cover direct graph consumers only, and
    // transitive reduction can remove ALL direct edges between a
    // producer/reader pair whose block edges are implied by a longer
    // path — statementReadership carries the relation independently.
    const std::vector<std::vector<std::size_t>> readers =
        codegen::statementReadership(*program_);
    for (std::size_t s = 0; s < numStmts; ++s)
      for (std::size_t r : readers[s])
        if (r != s && stmtGroup[s] != rt::ReplayGraph::kNoGroup &&
            stmtGroup[r] != rt::ReplayGraph::kNoGroup)
          graph_.addGroupAntiEdge(stmtGroup[r], stmtGroup[s]);
  }
  graph_.freeze();

  // Linear chain: task 0 is free and task i depends exactly on i - 1.
  linear_ = true;
  for (std::size_t i = 0; i < n && linear_; ++i) {
    const std::size_t k = inOffsets_[i + 1] - inOffsets_[i];
    if (i == 0)
      linear_ = k == 0;
    else
      linear_ = k == 1 &&
                flatInSlots_[inOffsets_[i]] == static_cast<std::int64_t>(i - 1);
  }

  if (options_.channels) {
    ChannelOptions channelOptions;
    channelOptions.numWorkers = options_.numThreads;
    channelOptions.defaultCapacitySlots = options_.channelCapacitySlots;
    channelOptions.topology = options_.topology;
    channelOptions.placementLambda = options_.placementLambda;
    channelOptions.topologyAwarePlacement = options_.topologyAwarePlacement;
    channelOptions.emulateRemoteNsPerByte = options_.emulateRemoteNsPerByte;
    channels_ = std::make_unique<ChannelPipeline>(program_, channelOptions,
                                                  options_.comm);
  }
}

void CompiledPipeline::ensurePool() {
  if (!pool_)
    pool_ = std::make_unique<rt::DependencyThreadPool>(numThreads_);
}

void CompiledPipeline::runSerial(std::size_t numBatches,
                                 const BatchStatementExecutor& exec) {
  // Creation order is a valid topological order of any TaskProgram
  // (validated: in-dependencies name earlier tasks), so the in-order
  // loop is a legal schedule; batches follow each other unoverlapped.
  for (std::size_t b = 0; b < numBatches; ++b)
    for (const codegen::Task& task : program_->tasks)
      for (const pb::Tuple& it : task.iterations)
        exec(b, task.stmtIdx, it);
}

void CompiledPipeline::replay(const StatementExecutor& exec) {
  ReplayGuard guard(*this);
  trace::Span span("replay.run");
  ++stats_.replays;
  if (channels_ != nullptr) {
    channels_->replay(exec);
    return;
  }
  const BatchStatementExecutor batched = dropBatch(exec);
  if ((linear_ && options_.linearFastPath) || numThreads_ == 1 ||
      program_->tasks.size() <= 1) {
    ++stats_.linearReplays;
    runSerial(1, batched);
    return;
  }
  ensurePool();
  ReplayRun run{program_.get(), &batched};
  pool_->runGraph(graph_, 1, &runGraphNode, &run);
}

void CompiledPipeline::replayBatches(std::size_t numBatches,
                                     const BatchStatementExecutor& exec) {
  if (numBatches == 0)
    return;
  ReplayGuard guard(*this);
  trace::Span span("replay.stream");
  trace::counter("replay.batches", static_cast<double>(numBatches));
  stats_.batches += numBatches;
  if (channels_ != nullptr) {
    channels_->replayBatches(numBatches, exec);
    return;
  }
  // Streaming a linear chain is the classic Pipeflow case: parallelism
  // comes from overlapping batches, so the chain goes through the graph
  // machinery — only a single-threaded pipeline runs batches in-order.
  if (numThreads_ == 1 || program_->tasks.empty()) {
    runSerial(numBatches, exec);
    return;
  }
  ensurePool();
  ReplayRun run{program_.get(), &exec};
  pool_->runGraph(graph_, numBatches, &runGraphNode, &run);
}

std::size_t CompiledPipeline::retainedBytes() const {
  std::size_t bytes = graph_.storageBytes();
  bytes += flatInSlots_.capacity() * sizeof(std::int64_t) +
           flatInIdx_.capacity() * sizeof(int) +
           inOffsets_.capacity() * sizeof(std::uint32_t);
  if (channels_ != nullptr)
    bytes += channels_->retainedBytes();
  return bytes;
}

void CompiledPipeline::replayThrough(TaskingLayer& layer,
                                     const StatementExecutor& exec) {
  ReplayGuard guard(*this);
  trace::Span span("replay.backend");
  ++stats_.backendReplays;
  const std::vector<codegen::Task>& tasks = program_->tasks;
  layer.run([&] {
    layer.reserveDependencySlots(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      detail::TaskLaunch launch{&tasks[i], &exec};
      const std::size_t nIn = inOffsets_[i + 1] - inOffsets_[i];
      layer.createTask(&detail::runBlock, &launch, sizeof(detail::TaskLaunch),
                       static_cast<std::int64_t>(i), 0,
                       nIn != 0 ? flatInSlots_.data() + inOffsets_[i]
                                : detail::kEmptyDepend,
                       nIn != 0 ? flatInIdx_.data() + inOffsets_[i]
                                : detail::kEmptyIdx,
                       nIn);
    }
  });
}

} // namespace pipoly::tasking
