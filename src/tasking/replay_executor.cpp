#include "tasking/replay_executor.hpp"

#include "support/assert.hpp"
#include "tasking/task_launch.hpp"
#include "trace/trace.hpp"

#include <thread>
#include <utility>

namespace pipoly::tasking {

namespace {

/// The per-run payload handed to the frozen graph: the program is stable
/// across replays, the executor changes per call.
struct ReplayRun {
  const codegen::TaskProgram* program;
  const BatchStatementExecutor* exec;
};

void runGraphNode(void* context, rt::ReplayGraph::NodeId node,
                  std::size_t batch) {
  const ReplayRun& run = *static_cast<ReplayRun*>(context);
  const codegen::Task& task = run.program->tasks[node];
  for (const pb::Tuple& it : task.iterations)
    (*run.exec)(batch, task.stmtIdx, it);
}

/// Adapts a single-run StatementExecutor to the batch signature without
/// re-wrapping per task.
BatchStatementExecutor dropBatch(const StatementExecutor& exec) {
  return [&exec](std::size_t, std::size_t stmtIdx, const pb::Tuple& it) {
    exec(stmtIdx, it);
  };
}

} // namespace

/// Checked non-reentrancy: overlapping replays on one instance would
/// share the graph's ready counters.
class CompiledPipeline::ReplayGuard {
public:
  explicit ReplayGuard(CompiledPipeline& self) : self_(self) {
    PIPOLY_CHECK_MSG(!self_.replaying_.exchange(true),
                     "overlapping replay calls on one CompiledPipeline");
  }
  ~ReplayGuard() { self_.replaying_.store(false); }

private:
  CompiledPipeline& self_;
};

CompiledPipeline::CompiledPipeline(
    std::shared_ptr<const codegen::TaskProgram> program, Options options)
    : program_(std::move(program)), options_(options) {
  PIPOLY_CHECK_MSG(program_ != nullptr,
                   "CompiledPipeline needs a non-null program (it keeps the "
                   "program alive for the tasks' raw pointers)");
  compile(nullptr);
}

CompiledPipeline::CompiledPipeline(
    std::shared_ptr<const codegen::TaskProgram> program,
    const opt::SlotTable& slots, Options options)
    : program_(std::move(program)), options_(options) {
  PIPOLY_CHECK_MSG(program_ != nullptr,
                   "CompiledPipeline needs a non-null program (it keeps the "
                   "program alive for the tasks' raw pointers)");
  PIPOLY_CHECK_MSG(slots.compatibleWith(*program_),
                   "slot table does not match the task program");
  compile(&slots);
}

CompiledPipeline::CompiledPipeline(codegen::TaskProgram program,
                                   Options options)
    : CompiledPipeline(std::make_shared<const codegen::TaskProgram>(
                           std::move(program)),
                       options) {}

void CompiledPipeline::compile(const opt::SlotTable* slots) {
  trace::Span span("replay.compile");
  numThreads_ = options_.numThreads != 0
                    ? options_.numThreads
                    : std::max(1u, std::thread::hardware_concurrency());

  const std::size_t n = program_->tasks.size();
  // Resolve every in-dependency to its producer exactly once. With a
  // caller-provided slot table the producers are already interned (slot
  // id == producing task id); otherwise one hashed owner-index pass.
  opt::SlotTable built;
  if (slots == nullptr) {
    built = opt::buildSlotTable(*program_);
    slots = &built;
  }
  inOffsets_.assign(slots->inOffsets.begin(), slots->inOffsets.end());
  flatInSlots_.reserve(slots->inSlots.size());
  for (std::uint32_t producer : slots->inSlots)
    flatInSlots_.push_back(static_cast<std::int64_t>(producer));
  flatInIdx_.assign(flatInSlots_.size(), 0);

  std::vector<rt::ReplayGraph::NodeId> preds;
  for (std::size_t i = 0; i < n; ++i) {
    preds.assign(slots->inBegin(i), slots->inEnd(i));
    graph_.addNode(preds);
  }
  graph_.freeze();

  // Linear chain: task 0 is free and task i depends exactly on i - 1.
  linear_ = true;
  for (std::size_t i = 0; i < n && linear_; ++i) {
    const std::size_t k = inOffsets_[i + 1] - inOffsets_[i];
    if (i == 0)
      linear_ = k == 0;
    else
      linear_ = k == 1 &&
                flatInSlots_[inOffsets_[i]] == static_cast<std::int64_t>(i - 1);
  }
}

void CompiledPipeline::ensurePool() {
  if (!pool_)
    pool_ = std::make_unique<rt::DependencyThreadPool>(numThreads_);
}

void CompiledPipeline::runSerial(std::size_t numBatches,
                                 const BatchStatementExecutor& exec) {
  // Creation order is a valid topological order of any TaskProgram
  // (validated: in-dependencies name earlier tasks), so the in-order
  // loop is a legal schedule; batches follow each other unoverlapped.
  for (std::size_t b = 0; b < numBatches; ++b)
    for (const codegen::Task& task : program_->tasks)
      for (const pb::Tuple& it : task.iterations)
        exec(b, task.stmtIdx, it);
}

void CompiledPipeline::replay(const StatementExecutor& exec) {
  ReplayGuard guard(*this);
  trace::Span span("replay.run");
  ++stats_.replays;
  const BatchStatementExecutor batched = dropBatch(exec);
  if ((linear_ && options_.linearFastPath) || numThreads_ == 1 ||
      program_->tasks.size() <= 1) {
    ++stats_.linearReplays;
    runSerial(1, batched);
    return;
  }
  ensurePool();
  ReplayRun run{program_.get(), &batched};
  pool_->runGraph(graph_, 1, &runGraphNode, &run);
}

void CompiledPipeline::replayBatches(std::size_t numBatches,
                                     const BatchStatementExecutor& exec) {
  if (numBatches == 0)
    return;
  ReplayGuard guard(*this);
  trace::Span span("replay.stream");
  trace::counter("replay.batches", static_cast<double>(numBatches));
  stats_.batches += numBatches;
  // Streaming a linear chain is the classic Pipeflow case: parallelism
  // comes from overlapping batches, so the chain goes through the graph
  // machinery — only a single-threaded pipeline runs batches in-order.
  if (numThreads_ == 1 || program_->tasks.empty()) {
    runSerial(numBatches, exec);
    return;
  }
  ensurePool();
  ReplayRun run{program_.get(), &exec};
  pool_->runGraph(graph_, numBatches, &runGraphNode, &run);
}

void CompiledPipeline::replayThrough(TaskingLayer& layer,
                                     const StatementExecutor& exec) {
  ReplayGuard guard(*this);
  trace::Span span("replay.backend");
  ++stats_.backendReplays;
  const std::vector<codegen::Task>& tasks = program_->tasks;
  layer.run([&] {
    layer.reserveDependencySlots(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      detail::TaskLaunch launch{&tasks[i], &exec};
      const std::size_t nIn = inOffsets_[i + 1] - inOffsets_[i];
      layer.createTask(&detail::runBlock, &launch, sizeof(detail::TaskLaunch),
                       static_cast<std::int64_t>(i), 0,
                       nIn != 0 ? flatInSlots_.data() + inOffsets_[i]
                                : detail::kEmptyDepend,
                       nIn != 0 ? flatInIdx_.data() + inOffsets_[i]
                                : detail::kEmptyIdx,
                       nIn);
    }
  });
}

} // namespace pipoly::tasking
