#pragma once

// The persistent replay executor: compile once, stream many batches.
//
// executeTaskProgram() re-resolves the whole dependency graph on every
// call — per run it hashes every (idx, tag) pair (or walks the slot
// table), copies every TaskLaunch input buffer, allocates pool nodes and
// registers dependent edges, and on the threadpool backend even spins up
// a fresh DependencyThreadPool. For a compiler that executes a program
// once that is fine; for server/streaming workloads that run the same
// compiled pipeline over thousands of data batches the compile cost is
// paid per batch (the ROADMAP's "Persistent pipeline executor" item).
//
// CompiledPipeline freezes a TaskProgram into a reusable artifact:
//   * construction resolves every in-dependency to its producing task
//     exactly once (reusing a prebuilt opt::SlotTable when given one)
//     and builds an rt::ReplayGraph — a frozen successor-list graph with
//     per-task ready-count templates;
//   * replay(exec) re-executes the program on a persistent worker pool
//     by resetting the atomic ready counters — no createTask calls, no
//     dependency hashing, no input-buffer copies, no thread spawns;
//   * a linear chain of tasks (the common shape after chain fusion, and
//     the only shape with no parallelism at all) skips the dependency
//     machinery entirely: replay degenerates to an in-order loop on the
//     calling thread;
//   * replayBatches(n, exec) streams n batches through the pipeline
//     Pipeflow-style — stage s of batch b+1 may start once stage s of
//     batch b finished (plus the write-after-read anti constraint
//     against s's direct consumers; see rt::ReplayGraph) — so the fill/
//     drain overlap of Fig. 10 happens *across* batches too;
//   * replayThrough(layer) is the compatibility path for backends the
//     pool cannot replace (OpenMP): it still spawns via CreateTask each
//     run, but from the frozen pre-interned slot arrays, so the per-run
//     dependency hashing disappears.
//
// Ownership: the pipeline holds the TaskProgram by shared_ptr. Worker
// threads execute raw `const codegen::Task*` pointers into it (see the
// TaskLaunch lifetime contract in task_launch.hpp), so the program must
// outlive every replay — shared ownership makes that hold even after the
// caller dropped its own reference.
//
// Thread safety: distinct CompiledPipelines are independent; calls on
// one instance must not overlap (checked — overlapping replays would
// share one set of ready counters).

#include "opt/optimizer.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/topology.hpp"
#include "tasking/executor.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace pipoly::pipeline {
struct CommInfo;
} // namespace pipoly::pipeline

namespace pipoly::tasking {

class ChannelPipeline;

/// Executes one dynamic statement instance of one batch of a stream.
using BatchStatementExecutor = std::function<void(
    std::size_t batch, std::size_t stmtIdx, const pb::Tuple& iteration)>;

/// Construction-time knobs of CompiledPipeline. Defined at namespace
/// scope (not nested) so it is complete where the constructors default
/// it — a nested aggregate with default member initializers cannot be a
/// default argument inside its own enclosing class.
struct ReplayOptions {
  /// Worker threads of the persistent pool (0 = hardware concurrency).
  /// 1 executes replays in creation order on the calling thread.
  unsigned numThreads = 0;
  /// Allow the serial in-order fast path when the program is a single
  /// linear chain (mostly a testing/benchmarking toggle).
  bool linearFastPath = true;
  /// Route replay()/replayBatches() through the channel engine
  /// (tasking/channel_backend.hpp): persistent per-stage workers
  /// connected by bounded SPSC token rings instead of the ready-counter
  /// graph. Same results, no shared counter cache lines, backpressure by
  /// construction. replayThrough() is unaffected.
  bool channels = false;
  /// Optional communication analysis (pipeline::analyzeCommunication of
  /// the SCoP this program was compiled from) used to size the per-edge
  /// rings on the channel route. Borrowed only during construction.
  const pipeline::CommInfo* comm = nullptr;
  /// Ring capacity for channel edges `comm` did not size.
  std::uint32_t channelCapacitySlots = 8;
  /// Hardware topology for channel-route stage placement (see
  /// ChannelOptions::topology). Unset = topology-agnostic placement.
  std::optional<rt::Topology> topology;
  /// λ of the topology placement objective and the A/B placement switch
  /// + synthetic-NUMA knob, forwarded to ChannelOptions verbatim.
  double placementLambda = 1.0;
  bool topologyAwarePlacement = true;
  double emulateRemoteNsPerByte = 0.0;
};

class CompiledPipeline {
public:
  using Options = ReplayOptions;

  /// Shared ownership: the pipeline keeps `program` alive across every
  /// replay. Throws on a null program or a malformed dependency.
  explicit CompiledPipeline(
      std::shared_ptr<const codegen::TaskProgram> program,
      Options options = {});

  /// Same, reusing a prebuilt slot table (opt::buildSlotTable of this
  /// very program) instead of re-resolving producers through the hashed
  /// owner index. Throws when the table does not match the program.
  CompiledPipeline(std::shared_ptr<const codegen::TaskProgram> program,
                   const opt::SlotTable& slots, Options options = {});

  /// Convenience: takes ownership of the program by value.
  explicit CompiledPipeline(codegen::TaskProgram program,
                            Options options = {});

  ~CompiledPipeline();

  const codegen::TaskProgram& program() const { return *program_; }
  std::size_t numTasks() const { return program_->tasks.size(); }
  unsigned numThreads() const { return numThreads_; }

  /// True when the task graph is one linear dependence chain in creation
  /// order — every task depends exactly on its predecessor. Such a
  /// program admits a single execution order, so replay() runs it
  /// in-order on the calling thread with zero scheduling overhead.
  bool linear() const { return linear_; }

  /// True when replays run through the channel engine (options.channels).
  bool channelRoute() const { return channels_ != nullptr; }

  /// Approximate bytes kept allocated between replays: the frozen graph
  /// (ready counters + CSR adjacency), the pre-interned slot arrays, and
  /// — on the channel route — the per-edge rings and stage tables. Same
  /// diagnostic contract as TaskingLayer::retainedBytes().
  std::size_t retainedBytes() const;

  /// Re-executes the compiled program once. Blocks until every task
  /// finished; rethrows the first exception thrown by `exec`.
  void replay(const StatementExecutor& exec);

  /// Streams `numBatches` executions through the pipeline, overlapping
  /// consecutive batches under the constraints documented above. `exec`
  /// receives the batch index; with shared state it observes exactly the
  /// effect of `numBatches` back-to-back replay() calls.
  void replayBatches(std::size_t numBatches,
                     const BatchStatementExecutor& exec);

  /// Compatibility path: spawns one run through an arbitrary tasking
  /// backend from the frozen pre-interned slot arrays (per-run
  /// CreateTask, but no per-run dependency resolution or hashing).
  void replayThrough(TaskingLayer& layer, const StatementExecutor& exec);

  struct Stats {
    std::uint64_t replays = 0;       // replay() calls
    std::uint64_t batches = 0;       // batches streamed via replayBatches
    std::uint64_t linearReplays = 0; // replays served by the linear path
    std::uint64_t backendReplays = 0; // replayThrough() calls
  };
  const Stats& stats() const { return stats_; }

private:
  void compile(const opt::SlotTable* slots);
  void ensurePool();
  void runSerial(std::size_t numBatches, const BatchStatementExecutor& exec);

  class ReplayGuard;

  std::shared_ptr<const codegen::TaskProgram> program_;
  Options options_;
  unsigned numThreads_ = 1;
  bool linear_ = false;
  rt::ReplayGraph graph_;
  // Frozen dense slot arrays for replayThrough: per task, the producer
  // ids of its in-dependencies (already in createTask's int64 form).
  std::vector<std::int64_t> flatInSlots_;
  std::vector<int> flatInIdx_;
  std::vector<std::uint32_t> inOffsets_;
  std::unique_ptr<rt::DependencyThreadPool> pool_; // lazily created
  std::unique_ptr<ChannelPipeline> channels_;      // options.channels route
  std::atomic<bool> replaying_{false};
  Stats stats_;
};

} // namespace pipoly::tasking
