#pragma once

// A decorating tasking layer that emits one trace span per executed task
// into the active trace::Session (src/trace). Unlike TimingLayer it keeps
// no state of its own: when no session is active the per-task cost is a
// single relaxed atomic load, so the layer can stay installed permanently.
//
// The span is named "task" with the creation-order index as its argument,
// and is recorded on whichever thread the inner backend runs the body —
// so Chrome-trace export naturally yields one track per worker.

#include "tasking/tasking.hpp"

#include <vector>

namespace pipoly::tasking {

class TracingLayer final : public TaskingLayer {
public:
  explicit TracingLayer(std::unique_ptr<TaskingLayer> inner);
  ~TracingLayer() override;

  std::string_view name() const override { return "tracing"; }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override;

  void reserveDependencySlots(std::size_t numSlots) override;

  void run(const std::function<void()>& spawner) override;

  /// Implementation detail of the traced dispatch (public only because
  /// the C-style task function needs to name it).
  struct Trampoline;

private:
  std::unique_ptr<TaskingLayer> inner_;
  std::vector<std::unique_ptr<Trampoline>> trampolines_;
  std::size_t created_ = 0;
};

} // namespace pipoly::tasking
