#pragma once

// Bridges the backend-agnostic TaskProgram (§5.4 output) and the tasking
// layer (§5.5): spawns one task per block through the paper's CreateTask
// API. The statement bodies are provided by the caller as a callback that
// executes one dynamic instance (stmtIdx, iteration vector) — the stand-in
// for the function the prototype extracts out of the pipeline-loop body.

#include "codegen/task_program.hpp"
#include "opt/optimizer.hpp"
#include "tasking/tasking.hpp"

#include <functional>

namespace pipoly::tasking {

/// Executes one dynamic statement instance.
using StatementExecutor =
    std::function<void(std::size_t stmtIdx, const pb::Tuple& iteration)>;

/// Runs the whole task program on the given backend. Blocks until every
/// task finished.
///
/// Lifetime: the launch records handed to the backend carry raw pointers
/// into `program` (and into `exec`); both must stay alive until the call
/// returns. They may be destroyed afterwards — for repeated execution
/// beyond the caller's scope use tasking::CompiledPipeline
/// (replay_executor.hpp), which shares ownership of the program.
void executeTaskProgram(const codegen::TaskProgram& program,
                        TaskingLayer& layer, const StatementExecutor& exec);

/// Same, but spawns through the interned dependency slots of `slots`
/// (opt::buildSlotTable of this very program): the backend is handed
/// dense (0, slot) keys and the reserveDependencySlots hint, so backends
/// that honour it resolve every dependency with O(1) array indexing. The
/// executed schedule is semantically identical to the generic overload.
void executeTaskProgram(const codegen::TaskProgram& program,
                        const opt::SlotTable& slots, TaskingLayer& layer,
                        const StatementExecutor& exec);

/// Reference execution: runs every statement's iterations in original
/// program order without tasking. Used as ground truth by tests and
/// benchmarks.
void executeSequential(const scop::Scop& scop, const StatementExecutor& exec);

} // namespace pipoly::tasking
