#include "tasking/tracing_layer.hpp"

#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <cstring>

namespace pipoly::tasking {

/// The wrapped task: brackets the inner function with a trace span. The
/// trampoline owns a copy of the original input (the inner layer will
/// copy the trampoline pointer struct, not the user payload, so the
/// payload must outlive the task).
struct TracingLayer::Trampoline {
  std::size_t index;
  TaskFunction fn;
  std::vector<std::byte> payload;
};

namespace {
void runTraced(void* raw) {
  auto* t = *static_cast<TracingLayer::Trampoline**>(raw);
  trace::Span span("task", static_cast<std::int64_t>(t->index));
  t->fn(t->payload.data());
}
} // namespace

TracingLayer::TracingLayer(std::unique_ptr<TaskingLayer> inner)
    : inner_(std::move(inner)) {
  PIPOLY_CHECK(inner_ != nullptr);
}

TracingLayer::~TracingLayer() = default;

void TracingLayer::createTask(TaskFunction f, const void* input,
                              std::size_t inputSize, std::int64_t outDepend,
                              int outIdx, const std::int64_t* inDepend,
                              const int* inIdx, std::size_t dependNum) {
  auto tramp = std::make_unique<Trampoline>();
  tramp->index = created_++;
  tramp->fn = f;
  tramp->payload.resize(inputSize);
  if (inputSize > 0)
    std::memcpy(tramp->payload.data(), input, inputSize);
  Trampoline* raw = tramp.get();
  trampolines_.push_back(std::move(tramp));
  inner_->createTask(&runTraced, &raw, sizeof(raw), outDepend, outIdx,
                     inDepend, inIdx, dependNum);
}

void TracingLayer::reserveDependencySlots(std::size_t numSlots) {
  inner_->reserveDependencySlots(numSlots);
}

void TracingLayer::run(const std::function<void()>& spawner) {
  trampolines_.clear();
  created_ = 0;
  trace::Span span("tasking.run");
  inner_->run(spawner);
}

} // namespace pipoly::tasking
