#pragma once

// §5.5 — the minimal, language-agnostic tasking layer. The interface
// mirrors the paper's CreateTask signature (Fig. 7):
//
//   void CreateTask(void (*f)(void*), void* input,
//                   int outDepend, int outIdx,
//                   int* inDepend, int* inIdx,
//                   int inputSize, int dependNum);
//
// Semantics (matching OpenMP task depend, Fig. 8):
//   * the task publishes dependency slot (outIdx, outDepend);
//   * it waits for the most recently created task publishing each slot
//     (inIdx[k], inDepend[k]) — a slot nobody published is ready;
//   * `input` is copied (inputSize bytes); the copy is released after the
//     task body ran. inputSize == 0 is valid (input may then be null; the
//     body receives an unspecified, possibly null pointer);
//   * tasks must be created from inside run() — from the spawner (the
//     analogue of the `omp parallel` + `omp single` region the generated
//     code uses) or, on the threadpool backend, also from running task
//     bodies (createTask is thread-safe there; serial runs bodies on the
//     spawner thread so nested creation is trivially safe, and the
//     openmp backend requires creation from the single region only).
//
// Three backends implement the interface — the paper's §7 portability
// claim made concrete:
//   * serial      — creation order execution (reference semantics);
//   * threadpool  — our dependency-tracking thread pool;
//   * openmp      — real OpenMP tasks with depend clauses, including the
//                   iterator-based variable-length in-dependency list.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace pipoly::tasking {

using TaskFunction = void (*)(void*);

class TaskingLayer {
public:
  virtual ~TaskingLayer() = default;

  virtual std::string_view name() const = 0;

  /// The paper's CreateTask (Fig. 7), with size_t/int64 where the paper's
  /// prototype used int.
  virtual void createTask(TaskFunction f, const void* input,
                          std::size_t inputSize, std::int64_t outDepend,
                          int outIdx, const std::int64_t* inDepend,
                          const int* inIdx, std::size_t dependNum) = 0;

  /// Optional dense-slot protocol (the task-graph optimizer's slot
  /// interning, src/opt): announces that until run() returns, every
  /// createTask call uses idx == 0 and 0 <= tag < numSlots for its out-
  /// and in-dependencies. Backends may then resolve dependency slots by
  /// array indexing instead of associative lookups. Must be called from
  /// inside run(), before the first createTask of that run; the hint
  /// expires when run() returns. The default implementation ignores the
  /// hint — correctness never depends on it, since dense slot ids are
  /// ordinary (idx, tag) keys to a backend that resolves them generically.
  virtual void reserveDependencySlots(std::size_t numSlots) {
    (void)numSlots;
  }

  /// Runs `spawner` inside the backend's parallel region and waits until
  /// every created task has finished.
  virtual void run(const std::function<void()>& spawner) = 0;

  /// Approximate bytes of per-run bookkeeping (dependency-slot tables,
  /// per-function counters, ...) the backend keeps allocated between
  /// run() calls. Backends follow a reuse-or-release policy: capacity is
  /// kept while it is within a small factor of what the last run used —
  /// so steady-state replays allocate nothing — and released once a run
  /// needs much less, so one oversized program does not pin its
  /// high-water memory across thousands of later runs. Diagnostic
  /// accounting only; 0 when the backend keeps no per-run state.
  virtual std::size_t retainedBytes() const { return 0; }
};

std::unique_ptr<TaskingLayer> makeSerialBackend();
std::unique_ptr<TaskingLayer> makeThreadPoolBackend(unsigned numThreads);

/// Returns nullptr when the library was built without OpenMP support.
///
/// With `funcCountOrdering` the backend additionally implements the
/// paper's Fig. 8 funcCount protocol *literally*: tasks created with the
/// same function pointer are chained through per-function dependency
/// slots (`depend(in: self[funcCount-1]) depend(out: self[funcCount])`),
/// so same-nest blocks run in creation order even when the caller passes
/// no explicit self dependencies.
std::unique_ptr<TaskingLayer> makeOpenMPBackend(bool funcCountOrdering = false);

/// True when makeOpenMPBackend() returns a real backend.
bool openMPAvailable();

} // namespace pipoly::tasking
