#pragma once

// A decorating tasking layer that records real wall-clock start/finish
// times of every task it runs. Two purposes:
//
//  * on multi-core hosts, it produces a *measured* Fig.-2 timeline to set
//    against the simulator's predicted one;
//  * on any host it validates the machine-simulator substitution: the
//    measured serialized execution time must match the simulator's
//    1-worker makespan for the same cost model (see bench_validation).

#include "tasking/tasking.hpp"

#include <mutex>
#include <vector>

namespace pipoly::tasking {

struct TimedTask {
  std::size_t index; // creation order
  double start;      // seconds since run() began
  double finish;
};

class TimingLayer final : public TaskingLayer {
public:
  explicit TimingLayer(std::unique_ptr<TaskingLayer> inner);
  ~TimingLayer() override;

  std::string_view name() const override { return "timing"; }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override;

  void reserveDependencySlots(std::size_t numSlots) override;

  void run(const std::function<void()>& spawner) override;

  /// Records of the most recent run(), in creation order.
  const std::vector<TimedTask>& timings() const { return timings_; }

  /// Wall-clock duration of the most recent run().
  double lastRunSeconds() const { return lastRunSeconds_; }

  /// Sum of task body durations of the most recent run().
  double totalBusySeconds() const;

  /// Implementation detail of the timed dispatch (public only because the
  /// C-style task function needs to name it).
  struct Trampoline;

private:
  std::unique_ptr<TaskingLayer> inner_;
  std::mutex mutex_;
  std::vector<TimedTask> timings_;
  std::vector<std::unique_ptr<Trampoline>> trampolines_;
  double runStart_ = 0.0;
  double lastRunSeconds_ = 0.0;
  std::size_t created_ = 0;
};

} // namespace pipoly::tasking
