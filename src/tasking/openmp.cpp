#include "tasking/tasking.hpp"

#include "support/assert.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

namespace pipoly::tasking {

#ifdef _OPENMP

namespace {

/// OpenMP backend following Fig. 8: a global dependency array provides the
/// addresses for the depend clauses; in-dependencies use the iterator
/// modifier so a task can wait on a variable number of slots; the input is
/// malloc'ed, memcpy'ed and freed inside the task.
///
/// The paper addresses dependArr as [writeNum*outDepend + outIdx], which
/// works when block tags are small and dense. Our linearised tags are
/// sparse, so slots are remapped densely on first use — the depend-clause
/// semantics (same (idx, tag) => same address) are unchanged. A std::deque
/// keeps element addresses stable as slots are added.
///
/// When the caller pre-interned the tags (reserveDependencySlots, the
/// src/opt slot table), the remapping disappears entirely: the dense
/// dependency array is allocated up front and addressed directly by tag,
/// exactly the paper's dependArr layout.
class OpenMPBackend final : public TaskingLayer {
public:
  explicit OpenMPBackend(bool funcCountOrdering)
      : funcCountOrdering_(funcCountOrdering) {}

  std::string_view name() const override { return "openmp"; }

  void reserveDependencySlots(std::size_t numSlots) override {
    PIPOLY_CHECK_MSG(inRegion_, "reserveDependencySlots outside of run()");
    denseSlots_.assign(numSlots, 0);
  }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override {
    PIPOLY_CHECK_MSG(inRegion_, "createTask outside of run()");

    char* outAddr = slotAddress(outIdx, outDepend);
    std::vector<char*> inAddrs;
    inAddrs.reserve(dependNum + 1);
    for (std::size_t k = 0; k < dependNum; ++k)
      inAddrs.push_back(slotAddress(inIdx[k], inDepend[k]));

    // Fig. 8's funcCount protocol: tasks sharing a function pointer are
    // chained through per-function slots — the paper's way of keeping the
    // blocks of one loop nest in order. The function pointer plays the
    // role of `self`; funcCount_[f] is the per-nest task counter.
    char* funcOutAddr = nullptr;
    if (funcCountOrdering_) {
      std::size_t count = funcCount_[f]++;
      if (count > 0)
        inAddrs.push_back(funcSlotAddress(f, count - 1));
      funcOutAddr = funcSlotAddress(f, count);
    }

    // Fig. 8: copy the task input; the task frees it after running.
    // malloc(0) may legally return nullptr and memcpy from/to null is UB
    // even for zero bytes, so a zero-size input (null `input` allowed)
    // skips the allocation entirely — the body sees a null pointer and
    // free(nullptr) is a no-op.
    PIPOLY_CHECK_MSG(input != nullptr || inputSize == 0,
                     "null task input with non-zero size");
    void* inputCopy = nullptr;
    if (inputSize > 0) {
      inputCopy = std::malloc(inputSize);
      PIPOLY_CHECK(inputCopy != nullptr);
      std::memcpy(inputCopy, input, inputSize);
    }

    char** inArr = inAddrs.data();
    const std::size_t numIn = inAddrs.size();
    char* outArr[2] = {outAddr, funcOutAddr ? funcOutAddr : outAddr};
    const std::size_t numOut = funcOutAddr ? 2 : 1;
    // References inside depend clauses are invisible to -Wunused.
    (void)inArr;
    (void)outArr;
// The depend lists are evaluated at task-creation time, so the local
// arrays are safe to use inside the clauses.
#pragma omp task firstprivate(f, inputCopy)                                   \
    depend(iterator(k = 0 : numIn), in : inArr[k][0])                         \
    depend(iterator(k = 0 : numOut), out : outArr[k][0])
    {
      f(inputCopy);
      std::free(inputCopy);
    }
  }

  void run(const std::function<void()>& spawner) override {
    // The generated code of §5.4 launches the task-spawning function in
    // `omp parallel` + `omp single`; the implicit barrier at the end of
    // the parallel region waits for all tasks.
    inRegion_ = true;
#pragma omp parallel default(shared)
#pragma omp single
    spawner();
    inRegion_ = false;
    // Reuse-or-release (mirrors the threadpool backend): clear for the
    // next run, but release the backing storage once the retained
    // capacity exceeds twice what this run used, so one oversized
    // program does not pin its high-water memory across thousands of
    // replays.
    const std::size_t usedSlots = slots_.size();
    const std::size_t usedIndex = slotIndex_.size();
    const std::size_t usedFuncs = funcCount_.size();
    const std::size_t usedFuncSlots = funcSlotIndex_.size();
    const std::size_t usedDense = denseSlots_.size();
    slots_.clear();
    slotIndex_.clear();
    funcCount_.clear();
    funcSlotIndex_.clear();
    denseSlots_.clear();
    slotsCapacity_ = std::max(slotsCapacity_, usedSlots);
    if (slotsCapacity_ > 2 * std::max<std::size_t>(usedSlots, 64)) {
      // Released storage must drop out of the accounting too — raising
      // the high-water afterwards would resurrect it in retainedBytes().
      decltype(slots_)().swap(slots_);
      slotsCapacity_ = 0;
    }
    if (slotIndex_.bucket_count() > 2 * std::max<std::size_t>(usedIndex, 16))
      decltype(slotIndex_)().swap(slotIndex_);
    if (funcCount_.bucket_count() > 2 * std::max<std::size_t>(usedFuncs, 16))
      decltype(funcCount_)().swap(funcCount_);
    if (funcSlotIndex_.bucket_count() >
        2 * std::max<std::size_t>(usedFuncSlots, 16))
      decltype(funcSlotIndex_)().swap(funcSlotIndex_);
    if (denseSlots_.capacity() > 2 * std::max<std::size_t>(usedDense, 64))
      decltype(denseSlots_)().swap(denseSlots_);
  }

  std::size_t retainedBytes() const override {
    // std::deque exposes no capacity; the tracked high-water stands in.
    return slotsCapacity_ * sizeof(char) +
           denseSlots_.capacity() * sizeof(char) +
           slotIndex_.bucket_count() *
               (sizeof(void*) + sizeof(std::pair<const std::pair<int, std::int64_t>,
                                                 std::size_t>)) +
           funcCount_.bucket_count() *
               (sizeof(void*) +
                sizeof(std::pair<const TaskFunction, std::size_t>)) +
           funcSlotIndex_.bucket_count() *
               (sizeof(void*) +
                sizeof(std::pair<const std::pair<TaskFunction, std::size_t>,
                                 std::size_t>));
  }

private:
  char* slotAddress(int idx, std::int64_t tag) {
    // Dense fast path: interned tags index the preallocated dependency
    // array directly (no growth, so the addresses are stable).
    if (idx == 0 && tag >= 0 &&
        static_cast<std::size_t>(tag) < denseSlots_.size())
      return &denseSlots_[static_cast<std::size_t>(tag)];
    auto [it, fresh] = slotIndex_.try_emplace({idx, tag}, slots_.size());
    if (fresh)
      slots_.push_back(0);
    return &slots_[it->second];
  }

  char* funcSlotAddress(TaskFunction f, std::size_t count) {
    auto [it, fresh] = funcSlotIndex_.try_emplace({f, count}, slots_.size());
    if (fresh)
      slots_.push_back(0);
    return &slots_[it->second];
  }

  bool funcCountOrdering_;
  bool inRegion_ = false;
  // High-water element count of slots_ across runs (std::deque has no
  // capacity(); this drives the reuse-or-release accounting instead).
  std::size_t slotsCapacity_ = 0;
  std::deque<char> slots_;
  std::unordered_map<std::pair<int, std::int64_t>, std::size_t, PairHash>
      slotIndex_;
  std::unordered_map<TaskFunction, std::size_t> funcCount_;
  std::unordered_map<std::pair<TaskFunction, std::size_t>, std::size_t,
                     PairHash>
      funcSlotIndex_;
  std::vector<char> denseSlots_;
};

} // namespace

std::unique_ptr<TaskingLayer> makeOpenMPBackend(bool funcCountOrdering) {
  return std::make_unique<OpenMPBackend>(funcCountOrdering);
}

bool openMPAvailable() { return true; }

#else // !_OPENMP

std::unique_ptr<TaskingLayer> makeOpenMPBackend(bool) { return nullptr; }

bool openMPAvailable() { return false; }

#endif

} // namespace pipoly::tasking
