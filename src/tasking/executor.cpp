#include "tasking/executor.hpp"

#include "support/assert.hpp"
#include "tasking/task_launch.hpp"

#include <vector>

namespace pipoly::tasking {

void executeTaskProgram(const codegen::TaskProgram& program,
                        TaskingLayer& layer, const StatementExecutor& exec) {
  layer.run([&] {
    std::vector<std::int64_t> inDepend;
    std::vector<int> inIdx;
    for (const codegen::Task& task : program.tasks) {
      inDepend.clear();
      inIdx.clear();
      for (const codegen::TaskDep& dep : task.in) {
        inDepend.push_back(dep.tag);
        inIdx.push_back(dep.idx);
      }
      detail::TaskLaunch launch{&task, &exec};
      // Empty in-dependency lists are normalized to valid zero-length
      // arrays (task_launch.hpp) — data() of an empty vector may be null.
      layer.createTask(&detail::runBlock, &launch, sizeof(detail::TaskLaunch),
                       task.out.tag, task.out.idx,
                       inDepend.empty() ? detail::kEmptyDepend
                                        : inDepend.data(),
                       inIdx.empty() ? detail::kEmptyIdx : inIdx.data(),
                       inDepend.size());
    }
  });
}

void executeTaskProgram(const codegen::TaskProgram& program,
                        const opt::SlotTable& slots, TaskingLayer& layer,
                        const StatementExecutor& exec) {
  PIPOLY_CHECK_MSG(slots.compatibleWith(program),
                   "slot table does not match the task program");
  layer.run([&] {
    layer.reserveDependencySlots(slots.numSlots);
    std::vector<std::int64_t> inDepend;
    std::vector<int> inIdx;
    for (const codegen::Task& task : program.tasks) {
      inDepend.clear();
      for (const std::uint32_t* s = slots.inBegin(task.id);
           s != slots.inEnd(task.id); ++s)
        inDepend.push_back(static_cast<std::int64_t>(*s));
      inIdx.assign(inDepend.size(), 0);
      detail::TaskLaunch launch{&task, &exec};
      // Same normalization as the generic overload: a task with an empty
      // interned in-dependency list must not hand possibly-null data()
      // pointers to the backend.
      layer.createTask(&detail::runBlock, &launch, sizeof(detail::TaskLaunch),
                       static_cast<std::int64_t>(task.id), 0,
                       inDepend.empty() ? detail::kEmptyDepend
                                        : inDepend.data(),
                       inIdx.empty() ? detail::kEmptyIdx : inIdx.data(),
                       inDepend.size());
    }
  });
}

void executeSequential(const scop::Scop& scop, const StatementExecutor& exec) {
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    for (const pb::Tuple& it : scop.statement(s).domain().points())
      exec(s, it);
}

} // namespace pipoly::tasking
