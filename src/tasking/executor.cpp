#include "tasking/executor.hpp"

#include "support/assert.hpp"

#include <vector>

namespace pipoly::tasking {

namespace {

/// The per-task input structure handed through the void* CreateTask API
/// (the paper integrates the task's arguments into a struct, §5.5).
struct TaskLaunch {
  const codegen::Task* task;
  const StatementExecutor* exec;
};

/// The extracted task function: runs every iteration of one block.
void runBlock(void* raw) {
  const TaskLaunch& launch = *static_cast<TaskLaunch*>(raw);
  for (const pb::Tuple& it : launch.task->iterations)
    (*launch.exec)(launch.task->stmtIdx, it);
}

} // namespace

void executeTaskProgram(const codegen::TaskProgram& program,
                        TaskingLayer& layer, const StatementExecutor& exec) {
  layer.run([&] {
    std::vector<std::int64_t> inDepend;
    std::vector<int> inIdx;
    for (const codegen::Task& task : program.tasks) {
      inDepend.clear();
      inIdx.clear();
      for (const codegen::TaskDep& dep : task.in) {
        inDepend.push_back(dep.tag);
        inIdx.push_back(dep.idx);
      }
      TaskLaunch launch{&task, &exec};
      layer.createTask(&runBlock, &launch, sizeof(TaskLaunch), task.out.tag,
                       task.out.idx, inDepend.data(), inIdx.data(),
                       inDepend.size());
    }
  });
}

void executeTaskProgram(const codegen::TaskProgram& program,
                        const opt::SlotTable& slots, TaskingLayer& layer,
                        const StatementExecutor& exec) {
  PIPOLY_CHECK_MSG(slots.numSlots == program.tasks.size(),
                   "slot table does not match the task program");
  layer.run([&] {
    layer.reserveDependencySlots(slots.numSlots);
    std::vector<std::int64_t> inDepend;
    std::vector<int> inIdx;
    for (const codegen::Task& task : program.tasks) {
      inDepend.clear();
      for (const std::uint32_t* s = slots.inBegin(task.id);
           s != slots.inEnd(task.id); ++s)
        inDepend.push_back(static_cast<std::int64_t>(*s));
      inIdx.assign(inDepend.size(), 0);
      TaskLaunch launch{&task, &exec};
      layer.createTask(&runBlock, &launch, sizeof(TaskLaunch),
                       static_cast<std::int64_t>(task.id), 0, inDepend.data(),
                       inIdx.data(), inDepend.size());
    }
  });
}

void executeSequential(const scop::Scop& scop, const StatementExecutor& exec) {
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    for (const pb::Tuple& it : scop.statement(s).domain().points())
      exec(s, it);
}

} // namespace pipoly::tasking
