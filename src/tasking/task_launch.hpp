#pragma once

// Internal to src/tasking: the per-task launch record shared by the
// one-shot executor (executor.cpp) and the replay executor
// (replay_executor.cpp), plus the empty-dependency-list normalization.
//
// LIFETIME CONTRACT — TaskLaunch carries a *raw* `const codegen::Task*`
// into the TaskProgram it was built from. The backend copies the launch
// record (Fig. 8's memcpy), not the Task: the pointed-to Task — and
// therefore the whole TaskProgram — must stay alive until the backend's
// run() returns (parallel backends run bodies long after createTask).
// Callers that outlive a single run() must own the program for as long
// as launches exist: CompiledPipeline does so by holding a shared_ptr to
// the program (a checked borrow at construction), which is what makes
// replaying safe after the caller's own reference is gone.

#include "codegen/task_program.hpp"
#include "tasking/executor.hpp"

#include <cstdint>

namespace pipoly::tasking::detail {

/// The per-task input structure handed through the void* CreateTask API
/// (the paper integrates the task's arguments into a struct, §5.5).
struct TaskLaunch {
  const codegen::Task* task;
  const StatementExecutor* exec;
};

/// The extracted task function: runs every iteration of one block.
inline void runBlock(void* raw) {
  const TaskLaunch& launch = *static_cast<TaskLaunch*>(raw);
  for (const pb::Tuple& it : launch.task->iterations)
    (*launch.exec)(launch.task->stmtIdx, it);
}

/// Normalization for tasks with no in-dependencies: `data()` of an empty
/// vector may be null, and handing (nullptr, nullptr, 0) to a backend
/// leaves the null pointers to flow into depend-clause address
/// arithmetic (the OpenMP iterator clause evaluates its base array even
/// for an empty range). Mirroring the zero-size input fix, an empty list
/// is passed as valid zero-length arrays instead.
inline constexpr std::int64_t kEmptyDepend[1] = {0};
inline constexpr int kEmptyIdx[1] = {0};

} // namespace pipoly::tasking::detail
