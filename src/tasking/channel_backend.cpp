#include "tasking/channel_backend.hpp"

#include "opt/optimizer.hpp"
#include "runtime/placement.hpp"
#include "runtime/spsc_queue.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pipoly::tasking {

// Stage placement itself lives in rt/placement.{hpp,cpp}: the PR 8
// comm-weighted DP (placeStagesBalanced, kept bit-identical) and the
// topology-weighted partitioner (placeStagesTopology) are shared with
// the simulator and the optimizer, so all three layers place against
// the same objective.

std::optional<unsigned> parseChannelBackoff(const char* text) {
  if (text == nullptr)
    return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*text)))
    ++text;
  // strtoul silently accepts a leading minus (wrapping the value), so
  // reject anything that does not start with a digit outright.
  if (!std::isdigit(static_cast<unsigned char>(*text)))
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (errno == ERANGE || end == text)
    return std::nullopt;
  while (std::isspace(static_cast<unsigned char>(*end)))
    ++end;
  if (*end != '\0') // trailing garbage ("4k", "64 128", ...)
    return std::nullopt;
  if (v == 0 || v > UINT_MAX)
    return std::nullopt;
  return static_cast<unsigned>(v);
}

namespace {

/// PIPOLY_CHANNEL_BACKOFF: idle-poll count at which a stage worker's
/// backoff ladder moves from yielding to 50us sleeps. Parsed once;
/// malformed input is a hard error (same parse-and-reject contract as
/// PIPOLY_POOL_WAKE_CAP), never a silent default.
unsigned channelBackoffCap() {
  static const unsigned cap = [] {
    const char* text = std::getenv("PIPOLY_CHANNEL_BACKOFF");
    if (text == nullptr)
      return 16384u;
    const std::optional<unsigned> parsed = parseChannelBackoff(text);
    PIPOLY_CHECK_MSG(parsed.has_value(),
                     "PIPOLY_CHANNEL_BACKOFF must be a positive integer "
                     "(idle polls before the worker sleeps)");
    return *parsed;
  }();
  return cap;
}

/// Deterministic producer-side transfer emulation (see
/// ChannelOptions::emulateRemoteNsPerByte): burn `ns` on the clock, not
/// the scheduler, so an emulated remote push costs the same on every
/// run and A/B placement ratios are stable.
void spinNanos(std::uint32_t ns) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Best-effort affinity pin of the calling thread to a domain's cpu
/// list. A failed pin degrades to an unpinned worker, never an error —
/// the list may describe another machine (a replayed spec file).
void pinThreadToCpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty())
    return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus)
    if (c >= 0 && c < CPU_SETSIZE)
      CPU_SET(c, &set);
  if (CPU_COUNT(&set) > 0)
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpus;
#endif
}

} // namespace

/// The stage/edge state machines plus the persistent worker threads.
/// Shared by ChannelPipeline (stages = statements of a TaskProgram) and
/// the channel TaskingLayer (stages = out-dependency idx groups of one
/// run's CreateTask calls).
class ChannelEngine {
public:
  /// One directed channel: producer stage `src` feeds consumer `tgt`.
  /// `reqTokens[k]` is the number of src tokens consumer task k needs
  /// before it may run (0 = unconstrained). The builder monotonizes the
  /// vector (running max): tasks run in order within a stage, so waiting
  /// for the max-so-far adds no delay, and it guarantees the last task
  /// of a batch needs that batch's tokens — which bounds the number of
  /// outstanding batch acks to the reverse ring's capacity.
  struct EdgeSpec {
    std::size_t src = 0;
    std::size_t tgt = 0;
    std::uint32_t capacitySlots = 2;
    /// Traffic estimate for worker placement (bytes per batch when the
    /// communication analysis supplied it, 1 otherwise — edge count).
    std::uint64_t weightBytes = 1;
    /// No forward tokens — only the per-batch ack flows (tgt back to
    /// src). Carries the write-after-read constraint for a reader whose
    /// forward block edges transitive reduction removed entirely: the
    /// reader still gets the data (in-batch ordering holds transitively
    /// through the surviving chain), but without the ack the producer
    /// would overwrite it batches ahead of the read.
    bool ackOnly = false;
    std::vector<std::uint64_t> reqTokens;
  };

  /// Runs one task: stage-local position `pos` of `stage`, batch `batch`.
  using TaskRunner =
      std::function<void(std::size_t stage, std::size_t pos,
                         std::size_t batch)>;

  ChannelEngine(std::vector<std::size_t> stageTasks,
                std::vector<EdgeSpec> specs, const ChannelOptions& options) {
    const std::size_t numStages = stageTasks.size();
    for (std::size_t s = 0; s < numStages; ++s) {
      stages_.emplace_back();
      stages_.back().numTasks = stageTasks[s];
    }
    // Validate and monotonize the specs up front; the edge objects are
    // only built after placement, which decides ring sizing (cross-domain
    // rings grow by the pair's cost class) and transfer emulation.
    for (EdgeSpec& spec : specs) {
      PIPOLY_CHECK_MSG(spec.src < numStages && spec.tgt < numStages &&
                           spec.src != spec.tgt,
                       "channel edge endpoints out of range");
      PIPOLY_CHECK_MSG(spec.reqTokens.size() == stageTasks[spec.tgt],
                       "channel edge requirement vector size mismatch");
      std::uint64_t runningMax = 0;
      for (std::uint64_t& r : spec.reqTokens)
        r = runningMax = std::max(runningMax, r);
    }
    unsigned workers = options.numWorkers != 0
                           ? options.numWorkers
                           : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, std::max<std::size_t>(numStages, 1)));
    numWorkers_ = workers;

    if (options.topology.has_value()) {
      hasTopology_ = true;
      topology_ = options.topology->numWorkers() == workers
                      ? *options.topology
                      : options.topology->resized(workers);
      topology_.validate();
    }

    std::vector<rt::StageEdge> weightedEdges;
    weightedEdges.reserve(specs.size());
    for (const EdgeSpec& spec : specs)
      weightedEdges.push_back(
          {spec.src, spec.tgt,
           std::max<std::uint64_t>(spec.weightBytes, 1)});
    if (numStages != 0) {
      if (hasTopology_ && options.topologyAwarePlacement) {
        rt::PlacementOptions popts;
        popts.lambda = options.placementLambda;
        placement_ = rt::placeStagesTopology(stageTasks, workers,
                                             weightedEdges, topology_, popts);
      } else {
        placement_ =
            rt::placeStagesBalanced(stageTasks, workers, weightedEdges);
        // The A/B baseline (old DP on a real topology) still charges
        // domains per the topology: emulation and ring sizing see the
        // same machine model, only the placement differs.
        if (hasTopology_)
          for (std::size_t s = 0; s < numStages; ++s)
            placement_.domainOfStage[s] =
                topology_.domainOfWorker[placement_.workerOfStage[s]];
      }
    } else {
      placement_.ownedStages.assign(workers, {});
    }
    ownedStages_ = placement_.ownedStages;

    for (EdgeSpec& spec : specs) {
      // Token-ring sizing: comm-derived capacitySlots is a lower bound
      // (it models data slots: the ASAP no-stall guarantee), but the
      // ring itself carries 4-byte block indices, not data — the data
      // lives in the arrays, whose footprint the batch acks already
      // bound to one batch of skew. Sizing the ring below a producer
      // batch therefore saves nothing and forces a consumer handoff
      // every few tasks, which on an oversubscribed host is a context
      // switch each. Two batches of tokens can be outstanding (producer
      // one batch ahead, consumer not yet drained), hence the factor.
      const std::uint32_t idx = static_cast<std::uint32_t>(edges_.size());
      std::uint64_t tokenCapacity = std::max<std::uint64_t>(
          spec.capacitySlots,
          std::min<std::size_t>(2 * stageTasks[spec.src] + 2, UINT32_MAX));
      const bool crossWorker =
          placement_.workerOfStage[spec.src] !=
          placement_.workerOfStage[spec.tgt];
      const unsigned da = placement_.domainOfStage[spec.src];
      const unsigned db = placement_.domainOfStage[spec.tgt];
      const double cls = hasTopology_ ? topology_.costClass(da, db) : 1.0;
      // A cross-domain ring is the slow link: size it up by the cost
      // class so the producer can run further ahead and the (emulated or
      // real) extra latency amortizes over a deeper ring.
      if (da != db && cls > 1.0)
        tokenCapacity = std::min<std::uint64_t>(
            tokenCapacity *
                static_cast<std::uint64_t>(std::ceil(cls)),
            UINT32_MAX);
      std::uint32_t emulateNs = 0;
      if (crossWorker && !spec.ackOnly &&
          options.emulateRemoteNsPerByte > 0.0) {
        const double bytesPerToken =
            static_cast<double>(std::max<std::uint64_t>(spec.weightBytes,
                                                        1)) /
            static_cast<double>(std::max<std::size_t>(
                stageTasks[spec.src], 1));
        emulateNs = static_cast<std::uint32_t>(std::min(
            options.emulateRemoteNsPerByte * bytesPerToken * cls, 1.0e9));
      }
      edges_.emplace_back(spec.src, spec.tgt,
                          static_cast<std::uint32_t>(tokenCapacity),
                          spec.ackOnly, std::move(spec.reqTokens));
      edges_.back().emulateNs = emulateNs;
      stages_[spec.src].outEdges.push_back(idx);
      stages_[spec.tgt].inEdges.push_back(idx);
    }

    // One worker runs the whole network cooperatively on the calling
    // thread; threads exist only when there is real parallelism to host.
    if (workers > 1) {
      threads_.reserve(workers);
      for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
    }
  }

  ~ChannelEngine() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_)
      t.join();
  }

  std::size_t numStages() const { return stages_.size(); }
  unsigned numWorkers() const { return numWorkers_; }
  const rt::Placement& placement() const { return placement_; }

  void run(std::size_t numBatches, const TaskRunner& runner) {
    if (numBatches == 0)
      return;
    PIPOLY_CHECK_MSG(!running_.exchange(true),
                     "overlapping runs on one channel engine");
    struct Release {
      std::atomic<bool>& flag;
      ~Release() { flag.store(false); }
    } release{running_};

    resetRuntime(numBatches, &runner);
    stats_.replays += 1;
    stats_.batches += numBatches;
    if (stages_.empty())
      return;
    if (threads_.empty()) {
      WorkerStats local;
      runStages(ownedStages_[0], local);
      mergeStats(local);
    } else {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        remaining_ = threads_.size();
        ++runGen_;
      }
      cv_.notify_all();
      std::unique_lock<std::mutex> lock(mutex_);
      doneCv_.wait(lock, [this] { return remaining_ == 0; });
    }
    if (firstError_ != nullptr) {
      std::exception_ptr error = firstError_;
      firstError_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  ChannelPipeline::Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  std::size_t retainedBytes() const {
    std::size_t bytes = 0;
    for (const Edge& e : edges_)
      bytes += e.ring.storageBytes() + e.ack.storageBytes() +
               e.reqTokens.capacity() * sizeof(std::uint64_t);
    for (const Stage& s : stages_)
      bytes += (s.inEdges.capacity() + s.outEdges.capacity()) *
               sizeof(std::uint32_t);
    bytes += stages_.size() * sizeof(Stage) + edges_.size() * sizeof(Edge);
    return bytes;
  }

private:
  struct Stage {
    std::size_t numTasks = 0;
    std::vector<std::uint32_t> inEdges;
    std::vector<std::uint32_t> outEdges;
    // Run state, owned by the stage's worker while a run is active.
    std::size_t batch = 0;
    std::size_t pos = 0;
    std::atomic<bool> finished{false};
  };

  struct Edge {
    Edge(std::size_t srcStage, std::size_t tgtStage, std::uint32_t capacity,
         bool ackOnlyEdge, std::vector<std::uint64_t> req)
        : src(srcStage), tgt(tgtStage), ackOnly(ackOnlyEdge),
          reqTokens(std::move(req)), ring(ackOnlyEdge ? 2 : capacity),
          ack(2) {}

    std::size_t src;
    std::size_t tgt;
    bool ackOnly;
    /// Producer-side spin per pushed token (synthetic NUMA emulation;
    /// 0 = off). Set once at construction from the placed domain pair.
    std::uint32_t emulateNs = 0;
    std::vector<std::uint64_t> reqTokens;
    rt::SpscQueue<std::uint32_t> ring; // forward: block-completion tokens
    rt::SpscQueue<std::uint8_t> ack;   // reverse: one token per batch
    // Producer-side counters (written only by src's worker).
    std::uint64_t pushed = 0;
    std::uint64_t acksSeen = 0;
    // Consumer-side counter (written only by tgt's worker).
    std::uint64_t received = 0;
  };

  struct WorkerStats {
    std::uint64_t tokensPushed = 0;
    std::uint64_t pushStalls = 0;
    std::uint64_t tokenWaits = 0;
    std::uint64_t ackWaits = 0;
  };

  void resetRuntime(std::size_t numBatches, const TaskRunner* runner) {
    numBatches_ = numBatches;
    runner_ = runner;
    abort_.store(false, std::memory_order_relaxed);
    for (Stage& s : stages_) {
      s.batch = 0;
      s.pos = 0;
      s.finished.store(false, std::memory_order_relaxed);
    }
    for (Edge& e : edges_) {
      e.pushed = 0;
      e.acksSeen = 0;
      e.received = 0;
      e.ring.resetUnsafe();
      e.ack.resetUnsafe();
    }
  }

  void mergeStats(const WorkerStats& local) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.tokensPushed += local.tokensPushed;
    stats_.pushStalls += local.pushStalls;
    stats_.tokenWaits += local.tokenWaits;
    stats_.ackWaits += local.ackWaits;
  }

  void workerMain(unsigned w) {
    // Per-domain worker pinning: keep each stage worker on its domain's
    // cores so a domain-local ring really is socket-local traffic.
    if (hasTopology_ && !topology_.cpusOfDomain.empty() &&
        w < topology_.domainOfWorker.size())
      pinThreadToCpus(topology_.cpusOfDomain[topology_.domainOfWorker[w]]);
    std::uint64_t seenGen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || runGen_ > seenGen; });
        if (stop_)
          return;
        seenGen = runGen_;
      }
      WorkerStats local;
      runStages(ownedStages_[w], local);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.tokensPushed += local.tokensPushed;
        stats_.pushStalls += local.pushStalls;
        stats_.tokenWaits += local.tokenWaits;
        stats_.ackWaits += local.ackWaits;
        if (--remaining_ == 0)
          doneCv_.notify_all();
      }
    }
  }

  void runStages(const std::vector<std::size_t>& owned, WorkerStats& local) {
    const unsigned backoffCap = channelBackoffCap();
    const unsigned spinCap = std::min(64u, backoffCap);
    unsigned idle = 0;
    for (;;) {
      if (abort_.load(std::memory_order_relaxed)) {
        // Unwedge producers blocked on our rings, then bail out.
        for (const std::size_t si : owned)
          stages_[si].finished.store(true, std::memory_order_release);
        return;
      }
      bool progress = false;
      bool allDone = true;
      for (const std::size_t si : owned) {
        Stage& st = stages_[si];
        if (st.finished.load(std::memory_order_relaxed))
          continue;
        try {
          progress |= advanceStage(si, local);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            if (firstError_ == nullptr)
              firstError_ = std::current_exception();
          }
          abort_.store(true, std::memory_order_release);
        }
        if (st.batch >= numBatches_)
          st.finished.store(true, std::memory_order_release);
        else
          allDone = false;
      }
      if (allDone)
        return;
      if (progress) {
        idle = 0;
      } else if (++idle < spinCap) {
        // Tight spin: tokens usually arrive within a few polls.
      } else if (idle < backoffCap) {
        // Long yield phase before sleeping: on an oversubscribed host a
        // yield IS the handoff to the peer stage's worker (one scheduler
        // pass), while a timed sleep parks this worker for a fixed 50us
        // regardless of when the token arrives — at one batch of skew
        // that sleep lands on the critical path of every batch.
        std::this_thread::yield();
      } else {
        // Genuinely stalled: stop burning the core.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  /// Runs as many consecutive tasks of stage `si` as are currently
  /// unblocked. Returns whether anything ran.
  bool advanceStage(std::size_t si, WorkerStats& local) {
    Stage& st = stages_[si];
    bool progress = false;
    while (st.batch < numBatches_) {
      // Drain every in-ring into the received counters first: tokens are
      // pure counts, so consuming early is always sound, and it frees
      // producers even while this stage itself is blocked.
      for (const std::uint32_t ei : st.inEdges) {
        Edge& e = edges_[ei];
        while (e.ring.tryPop())
          ++e.received;
      }
      // Write-after-read batch barrier: batch b starts only after every
      // direct consumer acked batch b-1.
      if (st.pos == 0 && st.batch > 0) {
        bool acksOk = true;
        for (const std::uint32_t ei : st.outEdges) {
          Edge& e = edges_[ei];
          while (e.ack.tryPop())
            ++e.acksSeen;
          if (e.acksSeen < st.batch)
            acksOk = false;
        }
        if (!acksOk) {
          ++local.ackWaits;
          break;
        }
      }
      // The eq.-4 requirement of the next task, shifted by one producer
      // batch of tokens per streamed batch.
      bool tokensOk = true;
      for (const std::uint32_t ei : st.inEdges) {
        Edge& e = edges_[ei];
        if (e.ackOnly) // no forward tokens ever flow on an ack-only edge
          continue;
        const std::uint64_t need =
            static_cast<std::uint64_t>(st.batch) * stages_[e.src].numTasks +
            e.reqTokens[st.pos];
        if (e.received < need)
          tokensOk = false;
      }
      if (!tokensOk) {
        ++local.tokenWaits;
        break;
      }
      // Space on every out-ring, checked before running the task: the
      // pushes after the body can then never block. A finished consumer
      // stopped draining, but also no longer needs tokens.
      bool spaceOk = true;
      for (const std::uint32_t ei : st.outEdges) {
        Edge& e = edges_[ei];
        if (!e.ackOnly &&
            !stages_[e.tgt].finished.load(std::memory_order_acquire) &&
            !e.ring.canPush()) {
          spaceOk = false;
          break;
        }
      }
      if (!spaceOk) {
        ++local.pushStalls;
        break;
      }
      (*runner_)(si, st.pos, st.batch);
      for (const std::uint32_t ei : st.outEdges) {
        Edge& e = edges_[ei];
        if (e.ackOnly)
          continue;
        ++e.pushed;
        ++local.tokensPushed;
        if (e.emulateNs != 0)
          spinNanos(e.emulateNs);
        if (!e.ring.tryPush(static_cast<std::uint32_t>(st.pos)))
          PIPOLY_CHECK_MSG(
              stages_[e.tgt].finished.load(std::memory_order_acquire),
              "SPSC push failed with a live consumer");
      }
      if (++st.pos == st.numTasks) {
        st.pos = 0;
        // Ack the finished batch upstream — except after the final
        // batch, which nobody waits for (every ring ends the run empty).
        if (st.batch + 1 < numBatches_)
          for (const std::uint32_t ei : st.inEdges) {
            const bool pushed = edges_[ei].ack.tryPush(1);
            PIPOLY_CHECK_MSG(pushed, "batch-ack ring overflow");
          }
        ++st.batch;
      }
      progress = true;
    }
    return progress;
  }

  std::deque<Stage> stages_;
  std::deque<Edge> edges_;
  rt::Placement placement_;
  rt::Topology topology_;
  bool hasTopology_ = false;
  std::vector<std::vector<std::size_t>> ownedStages_;
  std::vector<std::thread> threads_;
  unsigned numWorkers_ = 1;

  // Per-run state, published under mutex_ before workers wake.
  std::size_t numBatches_ = 0;
  const TaskRunner* runner_ = nullptr;
  std::atomic<bool> abort_{false};
  std::atomic<bool> running_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  std::uint64_t runGen_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr firstError_;
  ChannelPipeline::Stats stats_;
};

namespace {

/// Stage/edge plan of a TaskProgram: one stage per statement (in
/// statement order), tasks in creation order within their stage.
struct ProgramPlan {
  std::vector<std::size_t> stageTasks;
  std::vector<ChannelEngine::EdgeSpec> edges;
  std::vector<std::vector<const codegen::Task*>> taskAt;
};

ProgramPlan buildProgramPlan(const codegen::TaskProgram& program,
                             const pipeline::CommInfo* comm,
                             std::uint32_t defaultCapacity) {
  ProgramPlan plan;
  // Stages: the statements that own at least one task, ascending.
  std::vector<std::size_t> stageOf(program.numStatements, SIZE_MAX);
  std::vector<std::size_t> stmtOf;
  for (const codegen::Task& task : program.tasks)
    if (stageOf[task.stmtIdx] == SIZE_MAX) {
      stageOf[task.stmtIdx] = 0; // mark; index assigned below
      stmtOf.push_back(task.stmtIdx);
    }
  std::sort(stmtOf.begin(), stmtOf.end());
  for (std::size_t s = 0; s < stmtOf.size(); ++s)
    stageOf[stmtOf[s]] = s;
  plan.stageTasks.assign(stmtOf.size(), 0);
  plan.taskAt.resize(stmtOf.size());

  // (stage, stage-local position) of every task, in creation order.
  std::vector<std::pair<std::size_t, std::size_t>> place(program.tasks.size());
  for (std::size_t i = 0; i < program.tasks.size(); ++i) {
    const std::size_t stage = stageOf[program.tasks[i].stmtIdx];
    place[i] = {stage, plan.stageTasks[stage]++};
    plan.taskAt[stage].push_back(&program.tasks[i]);
  }

  // Cross-stage dependencies become per-edge token requirements; the
  // slot table resolves every in-dependency to its producer task once.
  const opt::SlotTable slots = opt::buildSlotTable(program);
  std::unordered_map<std::uint64_t, std::size_t> edgeIndex;
  for (std::size_t i = 0; i < program.tasks.size(); ++i) {
    const auto [stage, pos] = place[i];
    for (auto it = slots.inBegin(i); it != slots.inEnd(i); ++it) {
      const auto [srcStage, srcPos] = place[*it];
      if (srcStage == stage) {
        PIPOLY_CHECK_MSG(srcPos < pos,
                         "same-stage dependency does not point backwards");
        continue;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(srcStage) << 32) | stage;
      auto [slot, fresh] = edgeIndex.try_emplace(key, plan.edges.size());
      if (fresh) {
        ChannelEngine::EdgeSpec spec;
        spec.src = srcStage;
        spec.tgt = stage;
        spec.capacitySlots =
            comm != nullptr
                ? comm->capacityFor(stmtOf[srcStage], stmtOf[stage],
                                    defaultCapacity)
                : defaultCapacity;
        if (comm != nullptr)
          if (const pipeline::EdgeComm* edge =
                  comm->edge(stmtOf[srcStage], stmtOf[stage]))
            spec.weightBytes = std::max<std::uint64_t>(edge->totalBytes, 1);
        spec.reqTokens.assign(plan.stageTasks[stage], 0);
        plan.edges.push_back(std::move(spec));
      }
      std::vector<std::uint64_t>& req = plan.edges[slot->second].reqTokens;
      req[pos] = std::max(req[pos], static_cast<std::uint64_t>(srcPos + 1));
    }
  }

  // Write-after-read coverage for reader pairs with no surviving forward
  // edge (transitive reduction removes block edges implied by a longer
  // path, but the reader still consumes the producer's arrays): an
  // ack-only channel carries the reader's per-batch release back to the
  // producer so it cannot lap a distant reader. See EdgeSpec::ackOnly.
  const std::vector<std::vector<std::size_t>> readership =
      codegen::statementReadership(program);
  for (std::size_t s = 0; s < readership.size(); ++s) {
    if (stageOf[s] == SIZE_MAX)
      continue;
    for (std::size_t r : readership[s]) {
      if (r == s || stageOf[r] == SIZE_MAX)
        continue;
      const std::size_t srcStage = stageOf[s];
      const std::size_t tgtStage = stageOf[r];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(srcStage) << 32) | tgtStage;
      if (edgeIndex.find(key) != edgeIndex.end())
        continue;
      ChannelEngine::EdgeSpec spec;
      spec.src = srcStage;
      spec.tgt = tgtStage;
      spec.ackOnly = true;
      spec.reqTokens.assign(plan.stageTasks[tgtStage], 0);
      edgeIndex.emplace(key, plan.edges.size());
      plan.edges.push_back(std::move(spec));
    }
  }
  return plan;
}

} // namespace

ChannelPipeline::ChannelPipeline(
    std::shared_ptr<const codegen::TaskProgram> program, Options options,
    const pipeline::CommInfo* comm)
    : program_(std::move(program)) {
  PIPOLY_CHECK_MSG(program_ != nullptr,
                   "ChannelPipeline needs a non-null program (it keeps the "
                   "program alive for the tasks' raw pointers)");
  trace::Span span("channel.compile");
  ProgramPlan plan =
      buildProgramPlan(*program_, comm, options.defaultCapacitySlots);
  taskAt_ = std::move(plan.taskAt);
  engine_ = std::make_unique<ChannelEngine>(
      std::move(plan.stageTasks), std::move(plan.edges), options);
}

ChannelPipeline::ChannelPipeline(codegen::TaskProgram program, Options options,
                                 const pipeline::CommInfo* comm)
    : ChannelPipeline(std::make_shared<const codegen::TaskProgram>(
                          std::move(program)),
                      options, comm) {}

ChannelPipeline::~ChannelPipeline() = default;

std::size_t ChannelPipeline::numStages() const { return engine_->numStages(); }
unsigned ChannelPipeline::numWorkers() const { return engine_->numWorkers(); }

const rt::Placement& ChannelPipeline::placement() const {
  return engine_->placement();
}

void ChannelPipeline::replay(const StatementExecutor& exec) {
  trace::Span span("channel.run");
  engine_->run(1, [this, &exec](std::size_t stage, std::size_t pos,
                                std::size_t) {
    const codegen::Task& task = *taskAt_[stage][pos];
    for (const pb::Tuple& it : task.iterations)
      exec(task.stmtIdx, it);
  });
}

void ChannelPipeline::replayBatches(std::size_t numBatches,
                                    const BatchStatementExecutor& exec) {
  if (numBatches == 0)
    return;
  trace::Span span("channel.stream");
  trace::counter("channel.batches", static_cast<double>(numBatches));
  engine_->run(numBatches, [this, &exec](std::size_t stage, std::size_t pos,
                                         std::size_t batch) {
    const codegen::Task& task = *taskAt_[stage][pos];
    for (const pb::Tuple& it : task.iterations)
      exec(batch, task.stmtIdx, it);
  });
}

ChannelPipeline::Stats ChannelPipeline::stats() const {
  return engine_->stats();
}

std::size_t ChannelPipeline::retainedBytes() const {
  std::size_t bytes = engine_->retainedBytes();
  for (const std::vector<const codegen::Task*>& stage : taskAt_)
    bytes += stage.capacity() * sizeof(const codegen::Task*);
  return bytes;
}

namespace {

/// The channel TaskingLayer: buffer one run's CreateTask calls on the
/// spawner thread, then execute them through a per-run channel engine.
/// Stages are the distinct out-dependency idx values in first-appearance
/// order; last-writer (idx, tag) resolution matches the other backends.
class ChannelBackend final : public TaskingLayer {
public:
  explicit ChannelBackend(ChannelOptions options) : options_(options) {}

  std::string_view name() const override { return "channel"; }

  void reserveDependencySlots(std::size_t numSlots) override {
    PIPOLY_CHECK_MSG(inRun_, "reserveDependencySlots outside of run()");
    denseWriter_.assign(numSlots, kNoWriter);
  }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override {
    PIPOLY_CHECK_MSG(inRun_, "createTask outside of run()");
    Rec rec;
    rec.fn = f;
    rec.payloadOffset = arena_.size();
    rec.payloadSize = inputSize;
    if (inputSize != 0) {
      arena_.resize(arena_.size() + inputSize);
      std::memcpy(arena_.data() + rec.payloadOffset, input, inputSize);
    }
    rec.outIdx = outIdx;
    rec.depBegin = producers_.size();
    for (std::size_t k = 0; k < dependNum; ++k) {
      std::size_t producer = kNoWriter;
      if (isDense(inIdx[k], inDepend[k]))
        producer = denseWriter_[static_cast<std::size_t>(inDepend[k])];
      else {
        const auto it = lastWriter_.find(key(inIdx[k], inDepend[k]));
        if (it != lastWriter_.end())
          producer = it->second;
      }
      if (producer != kNoWriter)
        producers_.push_back(producer);
    }
    rec.depEnd = producers_.size();
    const std::size_t id = recs_.size();
    if (isDense(outIdx, outDepend))
      denseWriter_[static_cast<std::size_t>(outDepend)] = id;
    else
      lastWriter_[key(outIdx, outDepend)] = id;
    recs_.push_back(rec);
  }

  void run(const std::function<void()>& spawner) override {
    PIPOLY_CHECK_MSG(!inRun_, "nested run() on the channel backend");
    inRun_ = true;
    try {
      spawner();
      execute();
    } catch (...) {
      reset();
      inRun_ = false;
      throw;
    }
    reset();
    inRun_ = false;
  }

  std::size_t retainedBytes() const override {
    return recs_.capacity() * sizeof(Rec) + arena_.capacity() +
           producers_.capacity() * sizeof(std::size_t) +
           denseWriter_.capacity() * sizeof(std::size_t) +
           lastWriter_.bucket_count() *
               (sizeof(void*) +
                sizeof(std::pair<const std::uint64_t, std::size_t>));
  }

private:
  struct Rec {
    TaskFunction fn = nullptr;
    std::size_t payloadOffset = 0;
    std::size_t payloadSize = 0;
    int outIdx = 0;
    std::size_t depBegin = 0;
    std::size_t depEnd = 0;
  };

  static constexpr std::size_t kNoWriter = SIZE_MAX;

  static std::uint64_t key(int idx, std::int64_t tag) {
    // idx is a statement slot (small); fold it above the tag bits.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(idx))
            << 48) ^
           static_cast<std::uint64_t>(tag);
  }

  bool isDense(int idx, std::int64_t tag) const {
    return idx == 0 && tag >= 0 &&
           static_cast<std::size_t>(tag) < denseWriter_.size();
  }

  void execute() {
    if (recs_.empty())
      return;
    // Stages by out-dependency idx, in first-appearance order; tasks in
    // creation order within their stage.
    std::unordered_map<int, std::size_t> stageOf;
    std::vector<std::size_t> stageTasks;
    std::vector<std::pair<std::size_t, std::size_t>> place(recs_.size());
    std::vector<std::vector<std::size_t>> taskAt;
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      const auto [it, fresh] =
          stageOf.try_emplace(recs_[i].outIdx, stageTasks.size());
      if (fresh) {
        stageTasks.push_back(0);
        taskAt.emplace_back();
      }
      place[i] = {it->second, stageTasks[it->second]++};
      taskAt[it->second].push_back(i);
    }
    std::vector<ChannelEngine::EdgeSpec> specs;
    std::unordered_map<std::uint64_t, std::size_t> edgeIndex;
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      const auto [stage, pos] = place[i];
      for (std::size_t d = recs_[i].depBegin; d < recs_[i].depEnd; ++d) {
        const auto [srcStage, srcPos] = place[producers_[d]];
        if (srcStage == stage)
          continue; // in-order execution within the stage covers it
        const std::uint64_t k =
            (static_cast<std::uint64_t>(srcStage) << 32) | stage;
        auto [slot, fresh] = edgeIndex.try_emplace(k, specs.size());
        if (fresh) {
          ChannelEngine::EdgeSpec spec;
          spec.src = srcStage;
          spec.tgt = stage;
          spec.capacitySlots = options_.defaultCapacitySlots;
          spec.reqTokens.assign(stageTasks[stage], 0);
          specs.push_back(std::move(spec));
        }
        std::vector<std::uint64_t>& req = specs[slot->second].reqTokens;
        req[pos] = std::max(req[pos], static_cast<std::uint64_t>(srcPos + 1));
      }
    }
    ChannelEngine engine(std::move(stageTasks), std::move(specs),
                         options_);
    engine.run(1, [this, &taskAt](std::size_t stage, std::size_t pos,
                                  std::size_t) {
      const Rec& rec = recs_[taskAt[stage][pos]];
      rec.fn(rec.payloadSize != 0 ? arena_.data() + rec.payloadOffset
                                  : nullptr);
    });
  }

  void reset() {
    // Reuse-or-release, mirroring the threadpool backend: keep the
    // high-water capacity for steady-state replays, release it once a
    // run needs much less than what is retained.
    const std::size_t usedRecs = recs_.size();
    const std::size_t usedArena = arena_.size();
    const std::size_t usedProducers = producers_.size();
    const std::size_t usedHash = lastWriter_.size();
    const std::size_t usedDense = denseWriter_.size();
    recs_.clear();
    arena_.clear();
    producers_.clear();
    lastWriter_.clear();
    denseWriter_.clear();
    if (recs_.capacity() > 2 * std::max<std::size_t>(usedRecs, 64))
      decltype(recs_)().swap(recs_);
    if (arena_.capacity() > 2 * std::max<std::size_t>(usedArena, 1024))
      decltype(arena_)().swap(arena_);
    if (producers_.capacity() > 2 * std::max<std::size_t>(usedProducers, 64))
      decltype(producers_)().swap(producers_);
    if (lastWriter_.bucket_count() > 2 * std::max<std::size_t>(usedHash, 16))
      decltype(lastWriter_)().swap(lastWriter_);
    if (denseWriter_.capacity() > 2 * std::max<std::size_t>(usedDense, 64))
      decltype(denseWriter_)().swap(denseWriter_);
  }

  ChannelOptions options_;
  bool inRun_ = false;
  std::vector<Rec> recs_;
  std::vector<char> arena_;
  std::vector<std::size_t> producers_;
  std::unordered_map<std::uint64_t, std::size_t> lastWriter_;
  std::vector<std::size_t> denseWriter_;
};

} // namespace

std::unique_ptr<TaskingLayer> makeChannelBackend(ChannelOptions options) {
  return std::make_unique<ChannelBackend>(options);
}

} // namespace pipoly::tasking
