#include "tasking/tasking.hpp"

#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"

#include <cstring>
#include <map>
#include <vector>

namespace pipoly::tasking {

namespace {

class ThreadPoolBackend final : public TaskingLayer {
public:
  explicit ThreadPoolBackend(unsigned numThreads) : numThreads_(numThreads) {}

  std::string_view name() const override { return "threadpool"; }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override {
    PIPOLY_CHECK_MSG(pool_ != nullptr, "createTask outside of run()");

    // Resolve in-dependencies against the last writer of each slot
    // (OpenMP depend semantics). Unpublished slots are ready.
    std::vector<rt::DependencyThreadPool::TaskId> deps;
    deps.reserve(dependNum);
    for (std::size_t k = 0; k < dependNum; ++k) {
      auto it = lastWriter_.find({inIdx[k], inDepend[k]});
      if (it != lastWriter_.end())
        deps.push_back(it->second);
    }

    auto copy = std::make_shared<std::vector<std::byte>>(inputSize);
    std::memcpy(copy->data(), input, inputSize);
    auto id = pool_->submit(
        [f, copy = std::move(copy)] { f(copy->data()); }, deps);
    lastWriter_[{outIdx, outDepend}] = id;
  }

  void run(const std::function<void()>& spawner) override {
    rt::DependencyThreadPool pool(numThreads_);
    pool_ = &pool;
    try {
      spawner();
      pool.waitAll();
    } catch (...) {
      pool_ = nullptr;
      lastWriter_.clear();
      throw;
    }
    pool_ = nullptr;
    lastWriter_.clear();
  }

private:
  unsigned numThreads_;
  rt::DependencyThreadPool* pool_ = nullptr;
  std::map<std::pair<int, std::int64_t>, rt::DependencyThreadPool::TaskId>
      lastWriter_;
};

} // namespace

std::unique_ptr<TaskingLayer> makeThreadPoolBackend(unsigned numThreads) {
  return std::make_unique<ThreadPoolBackend>(numThreads);
}

} // namespace pipoly::tasking
