#include "tasking/tasking.hpp"

#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pipoly::tasking {

namespace {

// The work-stealing DependencyThreadPool accepts submissions from any
// thread (task bodies included), and this backend matches that contract:
// createTask() may be called concurrently from the spawner and from
// running task bodies. The last-writer slot table is the only shared
// mutable state; a mutex held across resolve + submit + publish keeps
// each createTask's depend semantics atomic (concurrent publishers of
// the same slot race only in program order, exactly as OpenMP's
// last-writer rule does).
//
// Slot resolution has two tiers: when the caller announced interned
// dense slots (reserveDependencySlots, the src/opt slot table), the
// last-writer table is a flat vector indexed by tag — O(1), no hashing;
// otherwise a hashed map over the (idx, tag) pairs.
class ThreadPoolBackend final : public TaskingLayer {
public:
  explicit ThreadPoolBackend(unsigned numThreads) : numThreads_(numThreads) {}

  std::string_view name() const override { return "threadpool"; }

  void reserveDependencySlots(std::size_t numSlots) override {
    PIPOLY_CHECK_MSG(pool_ != nullptr,
                     "reserveDependencySlots outside of run()");
    std::lock_guard lock(lastWriterMutex_);
    denseWriter_.assign(numSlots, kNoWriter);
  }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override {
    PIPOLY_CHECK_MSG(pool_ != nullptr, "createTask outside of run()");
    PIPOLY_CHECK_MSG(input != nullptr || inputSize == 0,
                     "null task input with non-zero size");

    std::lock_guard lock(lastWriterMutex_);

    // Resolve in-dependencies against the last writer of each slot
    // (OpenMP depend semantics). Unpublished slots are ready.
    std::vector<rt::DependencyThreadPool::TaskId> deps;
    deps.reserve(dependNum);
    for (std::size_t k = 0; k < dependNum; ++k) {
      if (isDense(inIdx[k], inDepend[k])) {
        const auto id = denseWriter_[static_cast<std::size_t>(inDepend[k])];
        if (id != kNoWriter)
          deps.push_back(id);
      } else {
        auto it = lastWriter_.find({inIdx[k], inDepend[k]});
        if (it != lastWriter_.end())
          deps.push_back(it->second);
      }
    }

    rt::DependencyThreadPool::TaskId id;
    if (inputSize <= sizeof(InlinePayload)) {
      // Common case (the executor and timing layer pass pointer-sized
      // structs): carry the copy inside the closure itself instead of a
      // heap-allocated buffer. inputSize == 0 lands here with a null
      // input allowed — nothing is copied and f receives the (unused)
      // payload storage.
      InlinePayload payload{};
      if (inputSize > 0)
        std::memcpy(payload.bytes.data(), input, inputSize);
      id = pool_->submit([f, payload]() mutable { f(payload.bytes.data()); },
                         deps);
    } else {
      auto copy = std::make_shared<std::vector<std::byte>>(inputSize);
      std::memcpy(copy->data(), input, inputSize);
      id = pool_->submit([f, copy = std::move(copy)] { f(copy->data()); },
                         deps);
    }
    if (isDense(outIdx, outDepend))
      denseWriter_[static_cast<std::size_t>(outDepend)] = id;
    else
      lastWriter_[{outIdx, outDepend}] = id;
  }

  void run(const std::function<void()>& spawner) override {
    rt::DependencyThreadPool pool(numThreads_);
    pool_ = &pool;
    try {
      spawner();
      pool.waitAll();
    } catch (...) {
      reset();
      throw;
    }
    reset();
  }

  std::size_t retainedBytes() const override {
    return denseWriter_.capacity() * sizeof(rt::DependencyThreadPool::TaskId) +
           lastWriter_.bucket_count() *
               (sizeof(void*) +
                sizeof(std::pair<const std::pair<int, std::int64_t>,
                                 rt::DependencyThreadPool::TaskId>));
  }

private:
  struct InlinePayload {
    alignas(std::max_align_t) std::array<std::byte, 24> bytes;
  };

  static constexpr rt::DependencyThreadPool::TaskId kNoWriter =
      std::numeric_limits<rt::DependencyThreadPool::TaskId>::max();

  bool isDense(int idx, std::int64_t tag) const {
    return idx == 0 && tag >= 0 &&
           static_cast<std::size_t>(tag) < denseWriter_.size();
  }

  void reset() {
    pool_ = nullptr;
    // Reuse-or-release: clear() keeps the high-water capacity, which is
    // what repeated same-shape runs want (no steady-state allocations),
    // but would pin one oversized run's memory forever. Release the
    // backing storage once the capacity exceeds twice what this run
    // actually used (with a small floor so tiny runs keep their seed
    // allocation).
    const std::size_t usedHash = lastWriter_.size();
    const std::size_t usedDense = denseWriter_.size();
    lastWriter_.clear();
    denseWriter_.clear();
    if (lastWriter_.bucket_count() > 2 * std::max<std::size_t>(usedHash, 16))
      decltype(lastWriter_)().swap(lastWriter_);
    if (denseWriter_.capacity() > 2 * std::max<std::size_t>(usedDense, 64))
      decltype(denseWriter_)().swap(denseWriter_);
  }

  unsigned numThreads_;
  rt::DependencyThreadPool* pool_ = nullptr;
  std::mutex lastWriterMutex_;
  // Both tables guarded by lastWriterMutex_.
  std::unordered_map<std::pair<int, std::int64_t>,
                     rt::DependencyThreadPool::TaskId, PairHash>
      lastWriter_;
  std::vector<rt::DependencyThreadPool::TaskId> denseWriter_;
};

} // namespace

std::unique_ptr<TaskingLayer> makeThreadPoolBackend(unsigned numThreads) {
  return std::make_unique<ThreadPoolBackend>(numThreads);
}

} // namespace pipoly::tasking
