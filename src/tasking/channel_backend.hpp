#pragma once

// The channel execution route: pipeline stages as persistent workers
// connected by bounded lock-free SPSC rings (rt::SpscQueue) carrying
// block-completion tokens — the process-network alternative to the
// task-depend route (Alias, *Improving Communication Patterns in
// Polyhedral Process Networks*).
//
// One stage per statement (chain fusion inside a statement reduces the
// token traffic but never merges statements, so the fused program's
// statements *are* the stages). Stage workers run a cooperative state
// machine: a stage executes its next task once
//   * every in-edge delivered the tokens the task's eq.-4 requirement
//     asks for (tokens are drained eagerly into a counter at every poll,
//     so a full ring never wedges the producer), and
//   * every out-edge ring has a free slot (checked *before* executing —
//     the push after the task body can then never block).
// Stages are multiplexed round-robin onto the workers, so the engine
// degrades gracefully to one thread on small machines (one worker runs
// the whole network cooperatively on the calling thread, no spawns).
//
// There is no per-block task creation, no dependency hashing and no
// shared ready-counter cache lines: the only cross-thread traffic is the
// ring head/tail pair of each edge. Backpressure is by construction —
// a producer stage stalls (skips to another owned stage) when a ring is
// full, i.e. when its consumer genuinely fell behind by more than the
// sized capacity.
//
// Streaming: replayBatches() runs the whole network `numBatches` times
// with consecutive batches overlapped. Requirements shift by one
// producer-batch of tokens per batch, and a write-after-read barrier
// keeps the skew bounded: a stage may enter batch b+1 only after every
// direct consumer finished batch b (one ack token per edge and batch on
// a small reverse ring) — the same skew-<=-1 guarantee the replay
// graph's anti tokens give, so with shared state the result equals
// back-to-back replay() calls, exactly like CompiledPipeline.
//
// Ring capacities come from the communication analysis
// (pipeline::analyzeCommunication): the per-edge peak in-flight token
// count of the ASAP lockstep schedule, so a consumer keeping pace never
// stalls its producer. Edges without an analyzed capacity use
// ChannelOptions::defaultCapacitySlots.

#include "codegen/task_program.hpp"
#include "pipeline/comm.hpp"
#include "runtime/placement.hpp"
#include "runtime/topology.hpp"
#include "tasking/replay_executor.hpp"
#include "tasking/tasking.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace pipoly::tasking {

struct ChannelOptions {
  /// Worker threads for the stage state machines. 0 = min(stage count,
  /// hardware concurrency). 1 runs the whole network cooperatively on
  /// the calling thread (no worker spawns at all).
  unsigned numWorkers = 0;
  /// Ring capacity for edges the communication analysis did not size.
  std::uint32_t defaultCapacitySlots = 8;
  /// Hardware topology for stage placement (rt/topology.hpp). Unset =
  /// the topology-agnostic PR 8 route, byte for byte. When set:
  /// placement is topology-weighted (placeStagesTopology), workers are
  /// pinned to their domain's cpu list when the topology carries one,
  /// and cross-domain rings are sized larger (by the pair's cost class)
  /// to amortize the slower link.
  std::optional<rt::Topology> topology;
  /// λ of the placement objective (rt::PlacementOptions::lambda).
  double placementLambda = 1.0;
  /// Force the topology-agnostic PR 8 DP even when `topology` is set.
  /// Pinning, ring sizing and emulation still honor the topology — this
  /// is the A/B baseline of the `bench_channel --numa` gate (same
  /// machine model, old placement).
  bool topologyAwarePlacement = true;
  /// Synthetic NUMA emulation for benchmarks/tests on single-socket
  /// hosts: every cross-worker token push costs
  ///   emulateRemoteNsPerByte × (edge bytes per token) × cost class
  /// nanoseconds of producer-side spin (same-worker edges are free —
  /// nothing moves). 0 disables. Deterministic by construction, so A/B
  /// placement comparisons measure the placement, not scheduler noise.
  double emulateRemoteNsPerByte = 0.0;
};

/// Strict parser for PIPOLY_CHANNEL_BACKOFF (the idle-poll count at
/// which a stage worker's backoff ladder moves from yielding to timed
/// sleeps; see ChannelEngine::runStages). Same contract as
/// rt::parseWakeCap: empty optional on garbage, zero, negative or
/// out-of-range input — the engine turns that into a hard error, not a
/// silent default. Exposed for tests.
std::optional<unsigned> parseChannelBackoff(const char* text);

/// A TaskProgram compiled onto the channel engine: built once (stages,
/// edges, rings, persistent workers), replayed many times. The same
/// ownership and non-reentrancy contracts as CompiledPipeline.
class ChannelPipeline {
public:
  using Options = ChannelOptions;

  /// `comm` (optional, borrowed only during construction) sizes the
  /// per-edge rings; its edges are keyed by statement pair.
  explicit ChannelPipeline(std::shared_ptr<const codegen::TaskProgram> program,
                           Options options = {},
                           const pipeline::CommInfo* comm = nullptr);
  explicit ChannelPipeline(codegen::TaskProgram program, Options options = {},
                           const pipeline::CommInfo* comm = nullptr);
  ~ChannelPipeline();

  ChannelPipeline(const ChannelPipeline&) = delete;
  ChannelPipeline& operator=(const ChannelPipeline&) = delete;

  const codegen::TaskProgram& program() const { return *program_; }
  std::size_t numStages() const;
  unsigned numWorkers() const;

  /// The stage placement the engine runs with (owned stages per worker,
  /// domain map, objective diagnostics). Stable for the pipeline's
  /// lifetime.
  const rt::Placement& placement() const;

  /// One run of the program through the channel network.
  void replay(const StatementExecutor& exec);

  /// Streams `numBatches` runs with bounded batch skew (see above).
  void replayBatches(std::size_t numBatches,
                     const BatchStatementExecutor& exec);

  struct Stats {
    std::uint64_t replays = 0; // replay() + replayBatches() calls
    std::uint64_t batches = 0;
    std::uint64_t tokensPushed = 0;
    /// Polls where a stage could not run its next task: a full out-ring
    /// (backpressure) / missing in-tokens / missing batch acks.
    std::uint64_t pushStalls = 0;
    std::uint64_t tokenWaits = 0;
    std::uint64_t ackWaits = 0;
  };
  Stats stats() const;

  /// Bytes held between replays: ring storage, stage/edge tables.
  std::size_t retainedBytes() const;

private:
  std::shared_ptr<const codegen::TaskProgram> program_;
  /// Per stage, the program's tasks in stage-local position order.
  std::vector<std::vector<const codegen::Task*>> taskAt_;
  std::unique_ptr<class ChannelEngine> engine_;
};

/// The fourth TaskingLayer ("channel"): buffers the CreateTask calls of
/// one run() on the spawner thread, partitions them into stages by their
/// out-dependency idx (the generated code publishes the statement index
/// there), resolves the last-writer dependencies to stage-local token
/// requirements, and executes the run through the channel engine. The
/// dense-slot protocol (idx always 0) degenerates to a single serial
/// stage — correct, but the stage structure worth running concurrently
/// only reaches this backend through the generic protocol or through
/// ChannelPipeline.
std::unique_ptr<TaskingLayer> makeChannelBackend(ChannelOptions options = {});

} // namespace pipoly::tasking
