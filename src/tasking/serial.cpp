#include "tasking/tasking.hpp"

#include "support/assert.hpp"

#include <cstring>
#include <vector>

namespace pipoly::tasking {

namespace {

/// Reference backend: tasks run immediately at creation. Creation order is
/// always a valid topological order of the dependency graph (an
/// in-dependency can only name an earlier task under OpenMP last-writer
/// semantics), so immediate execution trivially satisfies every
/// dependency.
class SerialBackend final : public TaskingLayer {
public:
  std::string_view name() const override { return "serial"; }

  void createTask(TaskFunction f, const void* input, std::size_t inputSize,
                  std::int64_t outDepend, int outIdx,
                  const std::int64_t* inDepend, const int* inIdx,
                  std::size_t dependNum) override {
    PIPOLY_CHECK_MSG(inRegion_, "createTask outside of run()");
    PIPOLY_CHECK_MSG(input != nullptr || inputSize == 0,
                     "null task input with non-zero size");
    (void)outDepend;
    (void)outIdx;
    (void)inDepend;
    (void)inIdx;
    (void)dependNum;
    // Copy-in mirrors the malloc/memcpy of Fig. 8 even though the body
    // runs synchronously, so f sees identical lifetime semantics on every
    // backend. A zero-size input (null `input` allowed) skips the copy:
    // memcpy with a null pointer is UB even for zero bytes.
    std::vector<std::byte> copy(inputSize);
    if (inputSize > 0)
      std::memcpy(copy.data(), input, inputSize);
    f(copy.data());
  }

  void run(const std::function<void()>& spawner) override {
    inRegion_ = true;
    try {
      spawner();
    } catch (...) {
      inRegion_ = false;
      throw;
    }
    inRegion_ = false;
  }

private:
  bool inRegion_ = false;
};

} // namespace

std::unique_ptr<TaskingLayer> makeSerialBackend() {
  return std::make_unique<SerialBackend>();
}

} // namespace pipoly::tasking
