#pragma once

// The SCoP intermediate representation: the instantiated counterpart of
// Polly's static control part. A Scop is an ordered list of consecutive
// loop nests (one statement per nest, as in the paper's program model,
// §1/§4), each with an iteration domain and affine read/write accesses
// into shared arrays.

#include "presburger/affine.hpp"
#include "presburger/map.hpp"
#include "presburger/polyhedron.hpp"
#include "presburger/set.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pipoly::scop {

/// A shared array with instantiated extents.
struct Array {
  std::string name;
  std::vector<pb::Value> shape;

  std::size_t rank() const { return shape.size(); }
  pb::Space space() const { return pb::Space(name, shape.size()); }
};

/// One affine access of a statement into an array. `subscripts` maps the
/// statement's iteration dimensions — optionally extended by auxiliary
/// dimensions — to array subscripts. Auxiliary dimensions express
/// multi-element accesses such as "row i of A" (subscript (i, k) with k an
/// aux dim ranging over [0, auxExtents[0])), which the matrix-multiplication
/// kernels of the paper's second benchmark set need.
struct Access {
  std::size_t arrayId;
  pb::AffineMap subscripts;
  std::vector<pb::Value> auxExtents;

  std::size_t numAuxDims() const { return auxExtents.size(); }
};

/// The declared combination operator of a reduction statement
/// `A[f(i)] = A[f(i)] ⊕ expr`. The SCoP representation is otherwise
/// semantics-opaque, so the operator is an explicit statement property
/// (Polly reads it off the LLVM-IR instruction chain; the builder DSL
/// declares it). All five operators are exactly associative and
/// commutative over uint64 (Add/Mul wrap mod 2^64), which keeps the
/// integer oracle fingerprints bit-exact under any partial-combine order.
enum class ReductionOp : unsigned char { None, Add, Mul, Xor, Min, Max };

std::string_view reductionOpName(ReductionOp op);

/// ⊕ and its identity element (op(x, identity) == x), so folding an
/// untouched partial slot is a no-op.
std::uint64_t applyReductionOp(ReductionOp op, std::uint64_t a,
                               std::uint64_t b);
std::uint64_t reductionIdentity(ReductionOp op);

/// A statement: the body of one loop nest, executed once per point of its
/// iteration domain.
class Statement {
public:
  Statement(std::string name, std::size_t depth, pb::Polyhedron domainPoly,
            pb::IntTupleSet domain, std::vector<Access> writes,
            std::vector<Access> reads,
            ReductionOp reductionOp = ReductionOp::None)
      : name_(std::move(name)), depth_(depth),
        domainPoly_(std::move(domainPoly)), domain_(std::move(domain)),
        writes_(std::move(writes)), reads_(std::move(reads)),
        reductionOp_(reductionOp) {}

  const std::string& name() const { return name_; }
  std::size_t depth() const { return depth_; }
  const pb::Polyhedron& domainPolyhedron() const { return domainPoly_; }
  const pb::IntTupleSet& domain() const { return domain_; }
  const std::vector<Access>& writes() const { return writes_; }
  const std::vector<Access>& reads() const { return reads_; }
  ReductionOp reductionOp() const { return reductionOp_; }
  pb::Space space() const { return domain_.space(); }

private:
  std::string name_;
  std::size_t depth_;
  pb::Polyhedron domainPoly_;
  pb::IntTupleSet domain_;
  std::vector<Access> writes_;
  std::vector<Access> reads_;
  ReductionOp reductionOp_ = ReductionOp::None;
};

class Scop {
public:
  Scop(std::string name, std::vector<Array> arrays,
       std::vector<Statement> statements)
      : name_(std::move(name)), arrays_(std::move(arrays)),
        statements_(std::move(statements)) {}

  const std::string& name() const { return name_; }
  const std::vector<Array>& arrays() const { return arrays_; }
  const std::vector<Statement>& statements() const { return statements_; }
  std::size_t numStatements() const { return statements_.size(); }
  const Statement& statement(std::size_t i) const { return statements_.at(i); }
  const Array& array(std::size_t i) const { return arrays_.at(i); }

  /// The explicit access relation of one access:
  /// { stmt iteration -> array element }.
  pb::IntMap accessRelation(std::size_t stmtIdx, const Access& access) const;

  /// Union of all write (resp. read) access relations of a statement into
  /// one array.
  pb::IntMap writeRelation(std::size_t stmtIdx, std::size_t arrayId) const;
  pb::IntMap readRelation(std::size_t stmtIdx, std::size_t arrayId) const;

  /// Arrays the statement writes (resp. reads), each listed once.
  std::vector<std::size_t> arraysWrittenBy(std::size_t stmtIdx) const;
  std::vector<std::size_t> arraysReadBy(std::size_t stmtIdx) const;

  std::string toString() const;

private:
  std::string name_;
  std::vector<Array> arrays_;
  std::vector<Statement> statements_;
};

} // namespace pipoly::scop
