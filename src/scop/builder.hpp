#pragma once

// A small fluent DSL for assembling SCoPs programmatically — the stand-in
// for Polly's SCoP detection on LLVM-IR. The benchmark kernels and tests
// describe their loop nests through this builder.
//
//   ScopBuilder b("listing1");
//   auto A = b.array("A", {N, N});
//   auto B = b.array("B", {N, N});
//   {
//     auto S = b.statement("S", 2);
//     S.bound(0, 0, N - 1);          // for (i = 0; i < N-1; ++i)
//     S.bound(1, 0, N - 1);          // for (j = 0; j < N-1; ++j)
//     S.write(A, {S.dim(0), S.dim(1)});
//     S.read(A, {S.dim(0), S.dim(1) + 1});
//   }
//   Scop scop = b.build();
//
// Bounds may be affine in outer dimensions (triangular nests) and are
// half-open: bound(k, lo, hi) means lo <= dim_k < hi.

#include "scop/scop.hpp"

#include <memory>
#include <string>
#include <vector>

namespace pipoly::scop {

class ScopBuilder;

/// Handle for one statement under construction.
class StatementBuilder {
public:
  /// The affine expression for iteration dimension `k` (over this
  /// statement's depth).
  pb::AffineExpr dim(std::size_t k) const;
  /// A constant expression over this statement's dimensions.
  pb::AffineExpr constant(pb::Value v) const;

  /// lo <= dim_k < hi, with constant bounds.
  StatementBuilder& bound(std::size_t k, pb::Value lo, pb::Value hi);
  /// Affine bounds (may reference outer dims only).
  StatementBuilder& bound(std::size_t k, const pb::AffineExpr& lo,
                          const pb::AffineExpr& hi);
  /// Extra constraint on the domain.
  StatementBuilder& constraint(pb::Constraint c);

  StatementBuilder& write(std::size_t arrayId,
                          std::vector<pb::AffineExpr> subscripts);
  StatementBuilder& read(std::size_t arrayId,
                         std::vector<pb::AffineExpr> subscripts);

  /// Declares this statement as the accumulation
  /// `array[subs] = array[subs] ⊕ ...` — shorthand for a write and a read
  /// with identical subscripts plus the declared operator (which the
  /// reduction-aware detection route may relax; see pipeline/reduction.hpp).
  StatementBuilder& reduce(std::size_t arrayId,
                           std::vector<pb::AffineExpr> subscripts,
                           ReductionOp op);
  /// Sets the operator alone (e.g. for statements assembled from explicit
  /// write()/read() calls).
  StatementBuilder& reductionOp(ReductionOp op);

  /// A read that touches a whole slab: `subscripts` is affine over
  /// depth + auxExtents.size() input dims; the trailing inputs are
  /// auxiliary dims ranging over [0, auxExtents[k]). Example — reading all
  /// of row i of NxN array A: readRange(A, {dim, aux0}, {N}).
  StatementBuilder& readRange(std::size_t arrayId,
                              std::vector<pb::AffineExpr> subscripts,
                              std::vector<pb::Value> auxExtents);
  StatementBuilder& writeRange(std::size_t arrayId,
                               std::vector<pb::AffineExpr> subscripts,
                               std::vector<pb::Value> auxExtents);

  /// Expression helpers for readRange/writeRange subscripts, which are
  /// affine over depth + numAux dims.
  pb::AffineExpr rangeDim(std::size_t k, std::size_t numAux) const;
  pb::AffineExpr rangeAux(std::size_t k, std::size_t numAux) const;

private:
  friend class ScopBuilder;
  StatementBuilder(ScopBuilder& parent, std::size_t index, std::size_t depth)
      : parent_(&parent), index_(index), depth_(depth) {}

  ScopBuilder* parent_;
  std::size_t index_;
  std::size_t depth_;
};

class ScopBuilder {
public:
  explicit ScopBuilder(std::string name) : name_(std::move(name)) {}

  /// Declares an array; returns its id.
  std::size_t array(std::string name, std::vector<pb::Value> shape);

  /// Starts a new statement (the body of the next consecutive loop nest).
  StatementBuilder statement(std::string name, std::size_t depth);

  /// Instantiates all domains and produces the immutable Scop.
  Scop build() const;

private:
  friend class StatementBuilder;

  struct PendingStatement {
    std::string name;
    std::size_t depth;
    pb::Polyhedron domain;
    std::vector<Access> writes;
    std::vector<Access> reads;
    ReductionOp reductionOp = ReductionOp::None;
  };

  std::string name_;
  std::vector<Array> arrays_;
  std::vector<PendingStatement> pending_;
};

} // namespace pipoly::scop
