#pragma once

// A SCoP whose sizes stay symbolic. The explicit scop::Scop materialises
// every iteration domain at construction (an IntTupleSet per statement),
// which caps the N it can even represent; a ParamScop keeps the bounds,
// array extents and access offsets as ParamExprs and lowers onto the
// explicit representation only when a ParamBindings fixes the parameters.
//
// The shape mirrors the paper's program model (§1): consecutive
// rectangular loop nests with affine accesses — subscripts are affine in
// the iteration dims with parameter-affine constant terms. Division (the
// N/2 bounds of Listing 1, the per-nest clipped bounds of the Table-9
// suite) is modelled with derived parameters bound at instantiation,
// exactly like presburger/param.hpp.
//
// This is the input of the N-independent detection route
// (pipeline/param_detect.hpp): detectParametric() analyses a ParamScop
// once, and its summaries are then O(1) per binding, while instantiate()
// feeds the differential harness that proves the route bit-identical to
// the explicit one at small N.

#include "presburger/param.hpp"
#include "scop/scop.hpp"

#include <string>
#include <vector>

namespace pipoly::scop {

/// An array with parameter-affine extents.
struct ParamArray {
  std::string name;
  std::vector<pb::ParamExpr> shape;
};

/// One affine access with symbolic offsets:
///   subscript_d = sum_k coeffs[d][k] * dim_k + offsets[d].
struct ParamAccess {
  std::size_t arrayId;
  std::vector<std::vector<pb::Value>> coeffs; // [subscript][iteration dim]
  std::vector<pb::ParamExpr> offsets;         // one per subscript

  std::size_t rank() const { return coeffs.size(); }
};

/// A statement over a parametric rectangle: lo_d <= dim_d < hi_d.
struct ParamStatement {
  std::string name;
  std::vector<std::pair<pb::ParamExpr, pb::ParamExpr>> bounds;
  std::vector<ParamAccess> writes;
  std::vector<ParamAccess> reads;

  std::size_t depth() const { return bounds.size(); }
};

class ParamScop {
public:
  explicit ParamScop(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  std::size_t addArray(ParamArray array);
  std::size_t addStatement(ParamStatement stmt);

  const std::vector<ParamArray>& arrays() const { return arrays_; }
  const std::vector<ParamStatement>& statements() const {
    return statements_;
  }
  std::size_t numStatements() const { return statements_.size(); }
  const ParamStatement& statement(std::size_t i) const {
    return statements_.at(i);
  }

  /// Lowers onto the explicit representation: evaluates every extent,
  /// bound and offset under `bindings` and materialises the domains
  /// through ScopBuilder — same statement/array order and names, so the
  /// result is interchangeable with a hand-built Scop.
  Scop instantiate(const pb::ParamBindings& bindings) const;

private:
  std::string name_;
  std::vector<ParamArray> arrays_;
  std::vector<ParamStatement> statements_;
};

} // namespace pipoly::scop
