#include "scop/scop.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <sstream>

namespace pipoly::scop {

std::string_view reductionOpName(ReductionOp op) {
  switch (op) {
  case ReductionOp::None:
    return "none";
  case ReductionOp::Add:
    return "add";
  case ReductionOp::Mul:
    return "mul";
  case ReductionOp::Xor:
    return "xor";
  case ReductionOp::Min:
    return "min";
  case ReductionOp::Max:
    return "max";
  }
  return "?";
}

std::uint64_t applyReductionOp(ReductionOp op, std::uint64_t a,
                               std::uint64_t b) {
  switch (op) {
  case ReductionOp::None:
    break;
  case ReductionOp::Add:
    return a + b;
  case ReductionOp::Mul:
    return a * b;
  case ReductionOp::Xor:
    return a ^ b;
  case ReductionOp::Min:
    return a < b ? a : b;
  case ReductionOp::Max:
    return a > b ? a : b;
  }
  PIPOLY_CHECK_MSG(false, "applyReductionOp on ReductionOp::None");
  return 0;
}

std::uint64_t reductionIdentity(ReductionOp op) {
  switch (op) {
  case ReductionOp::None:
    break;
  case ReductionOp::Add:
  case ReductionOp::Xor:
  case ReductionOp::Max:
    return 0;
  case ReductionOp::Min:
    return ~std::uint64_t{0};
  case ReductionOp::Mul:
    return 1;
  }
  PIPOLY_CHECK_MSG(false, "reductionIdentity on ReductionOp::None");
  return 0;
}

pb::IntMap Scop::accessRelation(std::size_t stmtIdx,
                                const Access& access) const {
  const Statement& stmt = statement(stmtIdx);
  const Array& arr = array(access.arrayId);
  PIPOLY_CHECK_MSG(access.subscripts.numOutputs() == arr.rank(),
                   "subscript count does not match rank of array " + arr.name);
  PIPOLY_CHECK_MSG(access.subscripts.numInputs() ==
                       stmt.depth() + access.numAuxDims(),
                   "subscript function arity mismatch for " + stmt.name());

  // Auxiliary dimensions range over a rectangle; enumerate it once.
  std::vector<pb::Tuple> auxPoints;
  if (access.numAuxDims() == 0)
    auxPoints.push_back(pb::Tuple{});
  else
    for (pb::TupleView aux : pb::IntTupleSet::rectangle(
                                 pb::Space("aux", access.numAuxDims()),
                                 access.auxExtents)
                                 .points())
      auxPoints.emplace_back(aux);

  const std::size_t depth = stmt.depth(), rank = arr.rank();
  pb::RowBuffer rows;
  rows.reserve(stmt.domain().size() * auxPoints.size() * (depth + rank));
  for (pb::TupleView itv : stmt.domain().points()) {
    const pb::Tuple it(itv);
    for (const pb::Tuple& aux : auxPoints) {
      pb::Tuple subs = access.subscripts.evaluate(concat(it, aux));
      for (std::size_t d = 0; d < rank; ++d)
        PIPOLY_CHECK_MSG(subs[d] >= 0 && subs[d] < arr.shape[d],
                         "access out of bounds: " + stmt.name() +
                             it.toString() + " -> " + arr.name +
                             subs.toString());
      pb::rows::append(rows, it.data(), depth);
      pb::rows::append(rows, subs.data(), rank);
    }
  }
  // Domain iteration is in order; with a single aux point the rows come
  // out sorted and fromRows skips the sort after one linear check.
  return pb::IntMap::fromRows(stmt.space(), arr.space(), std::move(rows));
}

namespace {
pb::IntMap unionOfAccessRelations(const Scop& scop, std::size_t stmtIdx,
                                  std::size_t arrayId,
                                  const std::vector<Access>& accesses) {
  pb::IntMap result(scop.statement(stmtIdx).space(),
                    scop.array(arrayId).space());
  for (const Access& a : accesses)
    if (a.arrayId == arrayId)
      result = result.unite(scop.accessRelation(stmtIdx, a));
  return result;
}

std::vector<std::size_t> uniqueArrayIds(const std::vector<Access>& accesses) {
  std::vector<std::size_t> ids;
  for (const Access& a : accesses)
    ids.push_back(a.arrayId);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}
} // namespace

pb::IntMap Scop::writeRelation(std::size_t stmtIdx,
                               std::size_t arrayId) const {
  return unionOfAccessRelations(*this, stmtIdx, arrayId,
                                statement(stmtIdx).writes());
}

pb::IntMap Scop::readRelation(std::size_t stmtIdx, std::size_t arrayId) const {
  return unionOfAccessRelations(*this, stmtIdx, arrayId,
                                statement(stmtIdx).reads());
}

std::vector<std::size_t> Scop::arraysWrittenBy(std::size_t stmtIdx) const {
  return uniqueArrayIds(statement(stmtIdx).writes());
}

std::vector<std::size_t> Scop::arraysReadBy(std::size_t stmtIdx) const {
  return uniqueArrayIds(statement(stmtIdx).reads());
}

std::string Scop::toString() const {
  std::ostringstream os;
  os << "scop " << name_ << " {\n";
  for (const Array& a : arrays_) {
    os << "  array " << a.name << '[';
    for (std::size_t i = 0; i < a.shape.size(); ++i)
      os << (i ? ", " : "") << a.shape[i];
    os << "]\n";
  }
  for (const Statement& s : statements_) {
    os << "  statement " << s.name() << " depth=" << s.depth()
       << " |domain|=" << s.domain().size();
    if (s.reductionOp() != ReductionOp::None)
      os << " reduce=" << reductionOpName(s.reductionOp());
    os << '\n';
  }
  os << "}";
  return os.str();
}

} // namespace pipoly::scop
