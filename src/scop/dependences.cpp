#include "scop/dependences.hpp"

#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::scop {

namespace {

/// { i -> j : from relates i to element m, to relates j to the same m },
/// i.e. to^-1 ( from ) with `from`'s range and `to`'s range in the same
/// array space.
pb::IntMap joinOnArray(const pb::IntMap& from, const pb::IntMap& to) {
  return to.inverse().compose(from);
}

pb::IntMap keepLexIncreasing(const pb::IntMap& m) {
  std::vector<pb::IntMap::Pair> pairs;
  for (const auto& [i, j] : m.pairs())
    if (i < j)
      pairs.emplace_back(i, j);
  return pb::IntMap(m.domainSpace(), m.rangeSpace(), std::move(pairs));
}

} // namespace

pb::IntMap flowDependences(const Scop& scop, std::size_t srcIdx,
                           std::size_t tgtIdx) {
  const Statement& src = scop.statement(srcIdx);
  const Statement& tgt = scop.statement(tgtIdx);
  pb::IntMap result(src.space(), tgt.space());
  for (std::size_t arrayId : scop.arraysWrittenBy(srcIdx)) {
    pb::IntMap wr = scop.writeRelation(srcIdx, arrayId);
    pb::IntMap rd = scop.readRelation(tgtIdx, arrayId);
    if (wr.empty() || rd.empty())
      continue;
    result = result.unite(joinOnArray(wr, rd));
  }
  if (srcIdx == tgtIdx)
    result = keepLexIncreasing(result);
  return result;
}

bool dependsOn(const Scop& scop, std::size_t tgtIdx, std::size_t srcIdx) {
  PIPOLY_CHECK_MSG(srcIdx <= tgtIdx,
                   "dependsOn expects source textually before target");
  return !flowDependences(scop, srcIdx, tgtIdx).empty();
}

pb::IntMap selfDependences(const Scop& scop, std::size_t stmtIdx) {
  const Statement& stmt = scop.statement(stmtIdx);
  pb::IntMap result(stmt.space(), stmt.space());

  for (std::size_t arrayId : scop.arraysWrittenBy(stmtIdx)) {
    pb::IntMap wr = scop.writeRelation(stmtIdx, arrayId);
    // Flow: write at i, read at j.
    pb::IntMap rd = scop.readRelation(stmtIdx, arrayId);
    if (!rd.empty()) {
      result = result.unite(joinOnArray(wr, rd)); // flow (i writes, j reads)
      result = result.unite(joinOnArray(rd, wr)); // anti (i reads, j writes)
    }
    // Output: write at i, write at j.
    result = result.unite(joinOnArray(wr, wr));
  }
  return keepLexIncreasing(result);
}

void validateProgramModel(const Scop& scop) {
  for (std::size_t t = 0; t < scop.numStatements(); ++t) {
    for (std::size_t arrayId : scop.arraysWrittenBy(t)) {
      for (std::size_t s = 0; s < t; ++s) {
        const bool earlierWrites =
            !scop.writeRelation(s, arrayId).empty();
        const bool earlierReads = !scop.readRelation(s, arrayId).empty();
        PIPOLY_CHECK_MSG(
            !earlierWrites && !earlierReads,
            "statement " + scop.statement(t).name() + " writes array " +
                scop.array(arrayId).name + " that earlier statement " +
                scop.statement(s).name() +
                " accesses — outside the paper's program model");
      }
    }
  }
}

std::vector<bool> parallelDims(const Scop& scop, std::size_t stmtIdx) {
  const Statement& stmt = scop.statement(stmtIdx);
  std::vector<bool> parallel(stmt.depth(), true);
  const pb::IntMap deps = selfDependences(scop, stmtIdx);
  for (const auto& [i, j] : deps.pairs()) {
    for (std::size_t d = 0; d < stmt.depth(); ++d) {
      if (i[d] != j[d]) {
        parallel[d] = false; // dependence carried at depth d
        break;
      }
    }
  }
  return parallel;
}

} // namespace pipoly::scop
