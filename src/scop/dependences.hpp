#pragma once

// Dependence analysis over the SCoP:
//
//  * cross-statement flow dependences (writer statement -> reader
//    statement), which Algorithm 1 consults to decide whether a pipeline
//    map between a pair of statements exists at all, and which the
//    execution validator uses as ground truth;
//
//  * intra-statement carried-dependence analysis (flow, anti and output
//    self-dependences), which the Polly-like baseline uses to decide which
//    loop dimensions are parallelizable.

#include "presburger/map.hpp"
#include "scop/scop.hpp"

#include <vector>

namespace pipoly::scop {

/// Flow dependences from iterations of `srcIdx` to iterations of `tgtIdx`
/// (over all arrays): { i -> j : src writes some element at i that tgt
/// reads at j }. For srcIdx == tgtIdx only pairs with i lex< j are kept.
pb::IntMap flowDependences(const Scop& scop, std::size_t srcIdx,
                           std::size_t tgtIdx);

/// True when some iteration of `tgtIdx` reads a value written by `srcIdx`.
/// Requires srcIdx < tgtIdx (textual order) or srcIdx == tgtIdx.
bool dependsOn(const Scop& scop, std::size_t tgtIdx, std::size_t srcIdx);

/// Per-dimension parallelism of one statement's nest: dimension d is
/// parallel iff no self-dependence (flow, anti or output) is carried at
/// depth d — i.e. no dependent iteration pair first differs at dim d.
std::vector<bool> parallelDims(const Scop& scop, std::size_t stmtIdx);

/// All self-dependences (flow + anti + output) of one statement, restricted
/// to lexicographically increasing pairs.
pb::IntMap selfDependences(const Scop& scop, std::size_t stmtIdx);

/// Enforces the paper's program model (§1): consecutive loop nests where
/// an iteration may depend on earlier iterations of its own nest and on
/// nests before it. Concretely: a later statement must not write to any
/// array an earlier statement reads or writes (no cross-nest anti or
/// output dependences). Throws on violation.
void validateProgramModel(const Scop& scop);

} // namespace pipoly::scop
