#include "scop/builder.hpp"

#include "support/assert.hpp"

namespace pipoly::scop {

pb::AffineExpr StatementBuilder::dim(std::size_t k) const {
  PIPOLY_CHECK(k < depth_);
  return pb::AffineExpr::dim(depth_, k);
}

pb::AffineExpr StatementBuilder::constant(pb::Value v) const {
  return pb::AffineExpr::constant(depth_, v);
}

pb::AffineExpr StatementBuilder::rangeDim(std::size_t k,
                                          std::size_t numAux) const {
  PIPOLY_CHECK(k < depth_);
  return pb::AffineExpr::dim(depth_ + numAux, k);
}

pb::AffineExpr StatementBuilder::rangeAux(std::size_t k,
                                          std::size_t numAux) const {
  PIPOLY_CHECK(k < numAux);
  return pb::AffineExpr::dim(depth_ + numAux, depth_ + k);
}

StatementBuilder& StatementBuilder::bound(std::size_t k, pb::Value lo,
                                          pb::Value hi) {
  return bound(k, constant(lo), constant(hi));
}

StatementBuilder& StatementBuilder::bound(std::size_t k,
                                          const pb::AffineExpr& lo,
                                          const pb::AffineExpr& hi) {
  PIPOLY_CHECK(k < depth_);
  // Bounds may only reference outer dimensions.
  for (std::size_t d = k; d < depth_; ++d) {
    PIPOLY_CHECK_MSG(lo.coeff(d) == 0 && hi.coeff(d) == 0,
                     "loop bound references a non-outer dimension");
  }
  auto& domain = parent_->pending_[index_].domain;
  domain.add(pb::Constraint::le(lo, dim(k)));
  domain.add(pb::Constraint::lt(dim(k), hi));
  return *this;
}

StatementBuilder& StatementBuilder::constraint(pb::Constraint c) {
  parent_->pending_[index_].domain.add(std::move(c));
  return *this;
}

StatementBuilder& StatementBuilder::write(std::size_t arrayId,
                                          std::vector<pb::AffineExpr> subs) {
  return writeRange(arrayId, std::move(subs), {});
}

StatementBuilder& StatementBuilder::read(std::size_t arrayId,
                                         std::vector<pb::AffineExpr> subs) {
  return readRange(arrayId, std::move(subs), {});
}

namespace {
Access makeAccess(std::size_t arrayId, std::size_t numInputs,
                  std::vector<pb::AffineExpr> subs,
                  std::vector<pb::Value> auxExtents) {
  for (const pb::AffineExpr& e : subs)
    PIPOLY_CHECK_MSG(e.numDims() == numInputs,
                     "subscript expression arity mismatch");
  return Access{arrayId, pb::AffineMap(numInputs, std::move(subs)),
                std::move(auxExtents)};
}
} // namespace

StatementBuilder&
StatementBuilder::readRange(std::size_t arrayId,
                            std::vector<pb::AffineExpr> subs,
                            std::vector<pb::Value> auxExtents) {
  const std::size_t numInputs = depth_ + auxExtents.size();
  parent_->pending_[index_].reads.push_back(
      makeAccess(arrayId, numInputs, std::move(subs), std::move(auxExtents)));
  return *this;
}

StatementBuilder&
StatementBuilder::writeRange(std::size_t arrayId,
                             std::vector<pb::AffineExpr> subs,
                             std::vector<pb::Value> auxExtents) {
  const std::size_t numInputs = depth_ + auxExtents.size();
  parent_->pending_[index_].writes.push_back(
      makeAccess(arrayId, numInputs, std::move(subs), std::move(auxExtents)));
  return *this;
}

StatementBuilder& StatementBuilder::reduce(std::size_t arrayId,
                                           std::vector<pb::AffineExpr> subs,
                                           ReductionOp op) {
  PIPOLY_CHECK_MSG(op != ReductionOp::None,
                   "reduce() needs a concrete operator");
  std::vector<pb::AffineExpr> readSubs = subs;
  write(arrayId, std::move(subs));
  read(arrayId, std::move(readSubs));
  return reductionOp(op);
}

StatementBuilder& StatementBuilder::reductionOp(ReductionOp op) {
  parent_->pending_[index_].reductionOp = op;
  return *this;
}

std::size_t ScopBuilder::array(std::string name, std::vector<pb::Value> shape) {
  arrays_.push_back(Array{std::move(name), std::move(shape)});
  return arrays_.size() - 1;
}

StatementBuilder ScopBuilder::statement(std::string name, std::size_t depth) {
  pending_.push_back(PendingStatement{std::move(name), depth,
                                      pb::Polyhedron(depth), {}, {}});
  return StatementBuilder(*this, pending_.size() - 1, depth);
}

Scop ScopBuilder::build() const {
  std::vector<Statement> statements;
  statements.reserve(pending_.size());
  for (const PendingStatement& p : pending_) {
    pb::IntTupleSet domain = pb::IntTupleSet::fromPolyhedron(
        pb::Space(p.name, p.depth), p.domain);
    // Zero-extent nests are legal: they have no iterations, no accesses
    // and no dependences, and pipeline detection gives them zero blocks.
    statements.emplace_back(p.name, p.depth, p.domain, std::move(domain),
                            p.writes, p.reads, p.reductionOp);
  }
  return Scop(name_, arrays_, std::move(statements));
}

} // namespace pipoly::scop
