#include "scop/param_scop.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"

namespace pipoly::scop {

std::size_t ParamScop::addArray(ParamArray array) {
  arrays_.push_back(std::move(array));
  return arrays_.size() - 1;
}

std::size_t ParamScop::addStatement(ParamStatement stmt) {
  PIPOLY_CHECK_MSG(stmt.depth() > 0, "parametric statement needs depth >= 1");
  auto checkAccess = [&](const ParamAccess& a) {
    PIPOLY_CHECK_MSG(a.arrayId < arrays_.size(), "access to unknown array");
    PIPOLY_CHECK_MSG(a.rank() == arrays_[a.arrayId].shape.size(),
                     "access rank must match the array rank");
    PIPOLY_CHECK_MSG(a.offsets.size() == a.rank(),
                     "one offset per subscript");
    for (const std::vector<pb::Value>& row : a.coeffs)
      PIPOLY_CHECK_MSG(row.size() == stmt.depth(),
                       "subscript coefficients must cover every dim");
  };
  for (const ParamAccess& a : stmt.writes)
    checkAccess(a);
  for (const ParamAccess& a : stmt.reads)
    checkAccess(a);
  statements_.push_back(std::move(stmt));
  return statements_.size() - 1;
}

Scop ParamScop::instantiate(const pb::ParamBindings& bindings) const {
  ScopBuilder b(name_);
  for (const ParamArray& a : arrays_) {
    std::vector<pb::Value> shape;
    shape.reserve(a.shape.size());
    for (const pb::ParamExpr& e : a.shape)
      shape.push_back(e.evaluate(bindings));
    b.array(a.name, std::move(shape));
  }
  for (const ParamStatement& s : statements_) {
    StatementBuilder sb = b.statement(s.name, s.depth());
    for (std::size_t d = 0; d < s.depth(); ++d)
      sb.bound(d, s.bounds[d].first.evaluate(bindings),
               s.bounds[d].second.evaluate(bindings));
    auto subscripts = [&](const ParamAccess& a) {
      std::vector<pb::AffineExpr> subs;
      subs.reserve(a.rank());
      for (std::size_t r = 0; r < a.rank(); ++r) {
        pb::AffineExpr e(s.depth(), a.offsets[r].evaluate(bindings));
        for (std::size_t k = 0; k < s.depth(); ++k)
          e.coeff(k) = a.coeffs[r][k];
        subs.push_back(std::move(e));
      }
      return subs;
    };
    for (const ParamAccess& a : s.writes)
      sb.write(a.arrayId, subscripts(a));
    for (const ParamAccess& a : s.reads)
      sb.read(a.arrayId, subscripts(a));
  }
  return b.build();
}

} // namespace pipoly::scop
