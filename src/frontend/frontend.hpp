#pragma once

// A miniature C-like frontend: parses programs of consecutive for-loop
// nests into SCoPs, playing the role Polly's SCoP detection on LLVM-IR
// plays for the paper's prototype. Grammar (whitespace-insensitive):
//
//   program   := (arrayDecl | paramDecl | nest)*
//   paramDecl := 'param' NAME '=' INT ';'
//   arrayDecl := 'array' NAME ('[' expr ']')+ ';'
//   nest      := loop
//   loop      := 'for' '(' NAME '=' expr ';' NAME '<' expr ';' NAME '++' ')'
//                 (loop | stmt)
//   stmt      := NAME ':' access '=' NAME '(' access (',' access)* ')' ';'
//   access    := NAME ('[' expr ']')+
//   expr      := affine expression over parameters and enclosing
//                iterators: INT, NAME, unary -, +, -, INT '*' NAME, (...)
//
// Each nest contains exactly one statement (the paper's program model);
// the statement's first access (left of '=') is its write, the call
// arguments are its reads. The function name (`f`, `g`, ...) is kept as
// metadata — the frontend describes memory behaviour, not arithmetic.
//
// Example (the paper's Listing 1):
//
//   param N = 20;
//   array A[N][N]; array B[N][N];
//   for (i = 0; i < N - 1; i++)
//     for (j = 0; j < N - 1; j++)
//       S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
//   for (i = 0; i < N/2 - 1; i++)
//     for (j = 0; j < N/2 - 1; j++)
//       R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);

#include "scop/scop.hpp"

#include <map>
#include <string>
#include <string_view>

namespace pipoly::frontend {

using ParamOverrides = std::map<std::string, pb::Value>;

/// Parses a program; `overrides` replaces the values of declared
/// parameters (a parameter must still be declared in the source).
/// Throws pipoly::Error with a line-annotated message on any syntax or
/// semantic problem (unknown array, rank mismatch, non-affine subscript,
/// iterator reuse, ...).
scop::Scop parseProgram(std::string_view source,
                        const ParamOverrides& overrides = {});

/// The statement "body" metadata the parser collects: the called function
/// name per statement, in statement order.
std::vector<std::string> parseFunctionNames(std::string_view source,
                                            const ParamOverrides& overrides = {});

} // namespace pipoly::frontend
