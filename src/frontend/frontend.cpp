#include "frontend/frontend.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace pipoly::frontend {

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

struct Token {
  enum class Kind {
    Ident,
    Int,
    KwParam,
    KwArray,
    KwFor,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Assign,
    PlusAssign,
    Lt,
    Le,
    Plus,
    Minus,
    Star,
    Slash,
    Increment,
    End,
  };
  Kind kind;
  std::string text;
  pb::Value value = 0;
  int line = 0;
};

class Lexer {
public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  bool accept(Token::Kind k) {
    if (current_.kind != k)
      return false;
    advance();
    return true;
  }

  Token expect(Token::Kind k, const char* what) {
    PIPOLY_CHECK_MSG(current_.kind == k,
                     "frontend: line " + std::to_string(current_.line) +
                         ": expected " + what + " near '" + current_.text +
                         "'");
    return take();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw Error("frontend: line " + std::to_string(current_.line) + ": " +
                message);
  }

private:
  void advance() {
    skipWhitespaceAndComments();
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::End, "<end>", 0, line_};
      return;
    }
    const char c = text_[pos_];
    auto single = [&](Token::Kind k) {
      current_ = {k, std::string(1, c), 0, line_};
      ++pos_;
    };
    switch (c) {
    case '(':
      return single(Token::Kind::LParen);
    case ')':
      return single(Token::Kind::RParen);
    case '[':
      return single(Token::Kind::LBracket);
    case ']':
      return single(Token::Kind::RBracket);
    case ',':
      return single(Token::Kind::Comma);
    case ';':
      return single(Token::Kind::Semicolon);
    case ':':
      return single(Token::Kind::Colon);
    case '=':
      return single(Token::Kind::Assign);
    case '*':
      return single(Token::Kind::Star);
    case '/':
      return single(Token::Kind::Slash);
    case '-':
      return single(Token::Kind::Minus);
    case '+':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '+') {
        current_ = {Token::Kind::Increment, "++", 0, line_};
        pos_ += 2;
        return;
      }
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        current_ = {Token::Kind::PlusAssign, "+=", 0, line_};
        pos_ += 2;
        return;
      }
      return single(Token::Kind::Plus);
    case '<':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        current_ = {Token::Kind::Le, "<=", 0, line_};
        pos_ += 2;
        return;
      }
      return single(Token::Kind::Lt);
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      std::string num(text_.substr(start, pos_ - start));
      current_ = {Token::Kind::Int, num, std::stoll(num), line_};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      std::string word(text_.substr(start, pos_ - start));
      Token::Kind kind = Token::Kind::Ident;
      if (word == "param")
        kind = Token::Kind::KwParam;
      else if (word == "array")
        kind = Token::Kind::KwArray;
      else if (word == "for")
        kind = Token::Kind::KwFor;
      current_ = {kind, std::move(word), 0, line_};
      return;
    }
    throw Error("frontend: line " + std::to_string(line_) +
                ": unexpected character '" + std::string(1, c) + "'");
  }

  void skipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n')
          ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------
// Linear expressions over named iterators (parameters fold to constants).
// ---------------------------------------------------------------------

struct LinExpr {
  std::map<std::string, pb::Value> coeffs; // iterator name -> coefficient
  pb::Value constant = 0;

  bool isConstant() const { return coeffs.empty(); }

  LinExpr& operator+=(const LinExpr& o) {
    for (const auto& [n, c] : o.coeffs)
      if ((coeffs[n] += c) == 0)
        coeffs.erase(n);
    constant += o.constant;
    return *this;
  }
  LinExpr& operator-=(const LinExpr& o) {
    for (const auto& [n, c] : o.coeffs)
      if ((coeffs[n] -= c) == 0)
        coeffs.erase(n);
    constant -= o.constant;
    return *this;
  }
  void scale(pb::Value k) {
    if (k == 0) {
      coeffs.clear();
      constant = 0;
      return;
    }
    for (auto& [n, c] : coeffs)
      c *= k;
    constant *= k;
  }
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct LoopLevel {
  std::string iterator;
  LinExpr lower;
  LinExpr upperExclusive;
};

class Parser {
public:
  Parser(std::string_view source, const ParamOverrides& overrides)
      : lexer_(source), overrides_(overrides), builder_("program") {}

  scop::Scop run() {
    while (lexer_.peek().kind != Token::Kind::End) {
      switch (lexer_.peek().kind) {
      case Token::Kind::KwParam:
        parseParam();
        break;
      case Token::Kind::KwArray:
        parseArray();
        break;
      case Token::Kind::KwFor:
        parseNest();
        break;
      default:
        lexer_.fail("expected 'param', 'array' or 'for'");
      }
    }
    PIPOLY_CHECK_MSG(statementCount_ > 0,
                     "frontend: program has no loop nests");
    return builder_.build();
  }

  std::vector<std::string> functionNames() && {
    return std::move(functionNames_);
  }

private:
  void parseParam() {
    lexer_.expect(Token::Kind::KwParam, "'param'");
    Token name = lexer_.expect(Token::Kind::Ident, "parameter name");
    lexer_.expect(Token::Kind::Assign, "'='");
    LinExpr value = parseExpr();
    if (!value.isConstant())
      lexer_.fail("parameter initialiser must be constant");
    lexer_.expect(Token::Kind::Semicolon, "';'");
    auto it = overrides_.find(name.text);
    params_[name.text] = it != overrides_.end() ? it->second : value.constant;
  }

  void parseArray() {
    lexer_.expect(Token::Kind::KwArray, "'array'");
    Token name = lexer_.expect(Token::Kind::Ident, "array name");
    if (arrays_.count(name.text))
      lexer_.fail("array '" + name.text + "' already declared");
    std::vector<pb::Value> shape;
    while (lexer_.accept(Token::Kind::LBracket)) {
      LinExpr extent = parseExpr();
      if (!extent.isConstant())
        lexer_.fail("array extents must be constant");
      if (extent.constant <= 0)
        lexer_.fail("array extents must be positive");
      shape.push_back(extent.constant);
      lexer_.expect(Token::Kind::RBracket, "']'");
    }
    if (shape.empty())
      lexer_.fail("array needs at least one dimension");
    lexer_.expect(Token::Kind::Semicolon, "';'");
    arrays_[name.text] = builder_.array(name.text, shape);
  }

  void parseNest() {
    PIPOLY_CHECK(loops_.empty());
    parseLoopOrStatement();
    PIPOLY_CHECK(loops_.empty());
  }

  void parseLoopOrStatement() {
    if (lexer_.peek().kind == Token::Kind::KwFor) {
      parseLoop();
      return;
    }
    parseStatement();
  }

  void parseLoop() {
    lexer_.expect(Token::Kind::KwFor, "'for'");
    lexer_.expect(Token::Kind::LParen, "'('");
    Token iter = lexer_.expect(Token::Kind::Ident, "iterator");
    for (const LoopLevel& l : loops_)
      if (l.iterator == iter.text)
        lexer_.fail("iterator '" + iter.text + "' reused in nested loop");
    if (params_.count(iter.text))
      lexer_.fail("iterator '" + iter.text + "' shadows a parameter");
    lexer_.expect(Token::Kind::Assign, "'='");
    LinExpr lower = parseExpr();
    lexer_.expect(Token::Kind::Semicolon, "';'");
    Token cmpVar = lexer_.expect(Token::Kind::Ident, "iterator");
    if (cmpVar.text != iter.text)
      lexer_.fail("loop condition must test the loop iterator");
    bool inclusive = false;
    if (lexer_.accept(Token::Kind::Le))
      inclusive = true;
    else
      lexer_.expect(Token::Kind::Lt, "'<' or '<='");
    LinExpr upper = parseExpr();
    if (inclusive)
      upper.constant += 1;
    lexer_.expect(Token::Kind::Semicolon, "';'");
    Token incVar = lexer_.expect(Token::Kind::Ident, "iterator");
    if (incVar.text != iter.text)
      lexer_.fail("loop increment must update the loop iterator");
    lexer_.expect(Token::Kind::Increment, "'++'");
    lexer_.expect(Token::Kind::RParen, "')'");

    loops_.push_back(LoopLevel{iter.text, std::move(lower), std::move(upper)});
    parseLoopOrStatement();
    loops_.pop_back();
  }

  void parseStatement() {
    Token name = lexer_.expect(Token::Kind::Ident, "statement label");
    lexer_.expect(Token::Kind::Colon, "':'");
    if (loops_.empty())
      lexer_.fail("statement outside of a loop nest");
    if (!statementNames_.insert(name.text).second)
      lexer_.fail("statement '" + name.text + "' already defined");

    const std::size_t depth = loops_.size();
    auto stmt = builder_.statement(name.text, depth);
    for (std::size_t k = 0; k < depth; ++k)
      stmt.bound(k, lowerToAffine(loops_[k].lower, depth),
                 lowerToAffine(loops_[k].upperExclusive, depth));

    auto [writeArray, writeSubs] = parseAccess(depth);
    if (lexer_.accept(Token::Kind::PlusAssign)) {
      // A[subs] += f(...): an Add accumulation — the write plus an
      // implicit read of the same element, with the declared operator the
      // reduction-aware detection route may relax.
      stmt.reduce(writeArray, std::move(writeSubs), scop::ReductionOp::Add);
    } else {
      lexer_.expect(Token::Kind::Assign, "'=' or '+='");
      stmt.write(writeArray, std::move(writeSubs));
    }
    Token fn = lexer_.expect(Token::Kind::Ident, "function name");
    functionNames_.push_back(fn.text);
    lexer_.expect(Token::Kind::LParen, "'('");
    if (lexer_.peek().kind != Token::Kind::RParen) {
      do {
        auto [readArray, readSubs] = parseAccess(depth);
        stmt.read(readArray, std::move(readSubs));
      } while (lexer_.accept(Token::Kind::Comma));
    }
    lexer_.expect(Token::Kind::RParen, "')'");
    lexer_.expect(Token::Kind::Semicolon, "';'");
    ++statementCount_;
  }

  std::pair<std::size_t, std::vector<pb::AffineExpr>>
  parseAccess(std::size_t depth) {
    Token name = lexer_.expect(Token::Kind::Ident, "array name");
    auto it = arrays_.find(name.text);
    if (it == arrays_.end())
      lexer_.fail("unknown array '" + name.text + "'");
    std::vector<pb::AffineExpr> subs;
    while (lexer_.accept(Token::Kind::LBracket)) {
      subs.push_back(lowerToAffine(parseExpr(), depth));
      lexer_.expect(Token::Kind::RBracket, "']'");
    }
    if (subs.empty())
      lexer_.fail("array access needs subscripts");
    return {it->second, std::move(subs)};
  }

  pb::AffineExpr lowerToAffine(const LinExpr& e, std::size_t depth) const {
    pb::AffineExpr out(depth, e.constant);
    for (const auto& [iterName, coeff] : e.coeffs) {
      std::optional<std::size_t> dim;
      for (std::size_t k = 0; k < loops_.size() && k < depth; ++k)
        if (loops_[k].iterator == iterName)
          dim = k;
      PIPOLY_CHECK_MSG(dim.has_value(),
                       "frontend: unknown iterator '" + iterName + "'");
      out.coeff(*dim) += coeff;
    }
    return out;
  }

  // expr := term (('+'|'-') term)*
  LinExpr parseExpr() {
    LinExpr acc = parseTerm();
    while (true) {
      if (lexer_.accept(Token::Kind::Plus))
        acc += parseTerm();
      else if (lexer_.accept(Token::Kind::Minus))
        acc -= parseTerm();
      else
        return acc;
    }
  }

  // term := factor (('*'|'/') factor)*   with affine restrictions
  LinExpr parseTerm() {
    LinExpr acc = parseFactor();
    while (true) {
      if (lexer_.accept(Token::Kind::Star)) {
        LinExpr rhs = parseFactor();
        if (acc.isConstant()) {
          pb::Value k = acc.constant;
          acc = rhs;
          acc.scale(k);
        } else if (rhs.isConstant()) {
          acc.scale(rhs.constant);
        } else {
          lexer_.fail("non-affine product of two iterators");
        }
      } else if (lexer_.accept(Token::Kind::Slash)) {
        LinExpr rhs = parseFactor();
        if (!acc.isConstant() || !rhs.isConstant())
          lexer_.fail("division is only supported between constants");
        if (rhs.constant == 0)
          lexer_.fail("division by zero");
        acc.constant /= rhs.constant;
      } else {
        return acc;
      }
    }
  }

  LinExpr parseFactor() {
    if (lexer_.accept(Token::Kind::Minus)) {
      LinExpr e = parseFactor();
      e.scale(-1);
      return e;
    }
    if (lexer_.accept(Token::Kind::LParen)) {
      LinExpr e = parseExpr();
      lexer_.expect(Token::Kind::RParen, "')'");
      return e;
    }
    if (lexer_.peek().kind == Token::Kind::Int) {
      LinExpr e;
      e.constant = lexer_.take().value;
      return e;
    }
    Token id = lexer_.expect(Token::Kind::Ident, "identifier or number");
    LinExpr e;
    if (auto p = params_.find(id.text); p != params_.end()) {
      e.constant = p->second;
    } else {
      bool known = false;
      for (const LoopLevel& l : loops_)
        known = known || l.iterator == id.text;
      if (!known)
        lexer_.fail("unknown identifier '" + id.text + "'");
      e.coeffs[id.text] = 1;
    }
    return e;
  }

  Lexer lexer_;
  const ParamOverrides& overrides_;
  scop::ScopBuilder builder_;
  std::map<std::string, pb::Value> params_;
  std::map<std::string, std::size_t> arrays_;
  std::set<std::string> statementNames_;
  std::vector<LoopLevel> loops_;
  std::vector<std::string> functionNames_;
  std::size_t statementCount_ = 0;
};

} // namespace

scop::Scop parseProgram(std::string_view source,
                        const ParamOverrides& overrides) {
  Parser parser(source, overrides);
  return parser.run();
}

std::vector<std::string> parseFunctionNames(std::string_view source,
                                            const ParamOverrides& overrides) {
  Parser parser(source, overrides);
  (void)parser.run();
  return std::move(parser).functionNames();
}

} // namespace pipoly::frontend
