#pragma once

// §5.4 — code generation. The bodies of the pipeline loops are extracted
// into tasks; dependency vectors become integer tags (each dimension is
// multiplied by a large stride and summed — the paper's linearisation) and
// are paired with a statement index to distinguish the pw_multi_affs.
//
// The result, TaskProgram, is the backend-agnostic task-parallel program:
// a creation-ordered list of tasks, each with
//   * its statement and block identity,
//   * the block's member iterations (what the extracted function executes),
//   * one out-dependency (idx, tag),
//   * in-dependencies (idx, tag) from the Q_S maps, plus the same-nest
//     ordering dependency (the funcCount protocol of Fig. 8) expressed as
//     an in-dependency on the previous block of the same statement.

#include "ast/ast.hpp"
#include "pipeline/detect.hpp"
#include "presburger/tuple.hpp"
#include "scop/scop.hpp"
#include "support/hash.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pipoly::codegen {

/// (statement slot, linearised block vector) — the depend-clause key.
struct TaskDep {
  int idx;
  std::int64_t tag;
  /// True for the same-statement ordering dependency (funcCount protocol).
  bool selfOrdering = false;

  friend bool operator==(const TaskDep&, const TaskDep&) = default;
};

/// What a task executes. Block tasks run statement iterations; a
/// ReductionCombine task folds the partial accumulators of a relaxed
/// reduction statement back into its array (one fold call per partial,
/// in deterministic block order).
enum class TaskKind : unsigned char { Block, ReductionCombine };

struct Task {
  std::size_t id; // creation order, 0-based
  std::size_t stmtIdx;
  pb::Tuple blockRep;
  /// For Block tasks: member iterations of the block (arity = statement
  /// depth, lexicographic order). For ReductionCombine tasks: one fold
  /// step per partial block, encoded as arity depth+1 tuples
  /// (k, 0, ..., 0) for partial index k — executors pass them through
  /// the same StatementExecutor callback, and reduction-aware runners
  /// tell the two apart by tuple arity (see kernels/reduction_runner.hpp).
  std::vector<pb::Tuple> iterations;
  TaskDep out;
  std::vector<TaskDep> in;
  TaskKind kind = TaskKind::Block;
};

/// Hashed (idx, tag) -> producing task id index. Built once and shared by
/// validation, the exports, the simulator and the optimizer so dependency
/// resolution is O(1) expected instead of a per-lookup ordered-map walk.
using OutOwnerIndex =
    std::unordered_map<std::pair<int, std::int64_t>, std::size_t, PairHash>;

/// Cheap census of a task program, used by the exports and benchmark
/// reports to show pre/post-optimization graph shrinkage.
struct ProgramCounts {
  std::size_t tasks = 0;
  std::size_t inEdges = 0;
};

/// Lifetime: consumers that defer execution (the tasking executor's launch
/// records, tasking::CompiledPipeline) hold raw `const Task*` pointers into
/// `tasks`. The vector is stable once lowering returns — nothing appends to
/// a finished program — but the TaskProgram object itself must outlive any
/// such consumer. executeTaskProgram only needs it alive for the duration
/// of the call; CompiledPipeline takes shared ownership instead so replay
/// handles can outlive the caller's scope (see tasking/replay_executor.hpp).
struct TaskProgram {
  std::vector<Task> tasks; // creation order: statement order, blocks lex
  std::size_t numStatements = 0;
  /// writeNum of §5.5: number of statements that are sources of others.
  std::size_t writeNum = 0;
  /// True when every statement uses the paper's strict same-nest block
  /// chain (Fig. 8 funcCount); false when the §7 relaxation replaced the
  /// chain with exact self-dependence edges.
  bool chainOrdering = true;
  /// For each statement, the distinct OTHER statements that read its
  /// output (from the Q_S data-flow requirements; sorted, self excluded).
  /// Recorded at lowering because streaming replay needs direct
  /// readership to bound cross-batch skew, and transitive reduction
  /// legitimately drops the block edges it could otherwise be read off
  /// of (a reader whose edges are all implied by a longer path keeps no
  /// direct edge). Empty for hand-assembled programs; consumers then
  /// fall back to statement-level reachability over the surviving edges,
  /// which reduction preserves.
  std::vector<std::vector<std::size_t>> stmtReaders;

  /// Index of the task with the given out-dependency; tasks are unique per
  /// (idx, tag). Linear scan — for bulk resolution build the owner index
  /// once with buildOutOwnerIndex() instead.
  std::optional<std::size_t> taskWithOut(const TaskDep& dep) const;

  /// Builds the (idx, tag) -> task id index in one O(tasks) pass.
  OutOwnerIndex buildOutOwnerIndex() const;

  /// Task and in-edge counts (for shrinkage reporting).
  ProgramCounts counts() const;

  /// Checks the program is well formed: every in-dependency names the out
  /// tag of an *earlier* task (OpenMP depend semantics), iterations
  /// partition domains, etc. Throws on violation.
  void validate(const scop::Scop& scop) const;

  std::string toString() const;
};

/// Statement-level readership for streaming executors: stmtReaders when
/// the program records it (exact direct readership), otherwise the
/// transitive closure of the statement-level projection of the surviving
/// in-dependencies — an over-approximation that reduction preserves.
/// Entry s lists the statements (self excluded, ascending) whose batch b
/// must complete before statement s may overwrite its arrays in batch
/// b+1.
std::vector<std::vector<std::size_t>>
statementReadership(const TaskProgram& program);

/// The paper's vector-to-integer linearisation. Every coordinate must be
/// in [0, kLinearStride).
inline constexpr std::int64_t kLinearStride = std::int64_t(1) << 20;
std::int64_t linearizeBlockVector(const pb::Tuple& blockRep);

/// The depend-clause slot of a statement's combine task. Offset by
/// numStatements so combine tags can never collide with the statement's
/// block tags (which use idx == stmtIdx).
TaskDep combineDep(std::size_t numStatements, std::size_t stmtIdx);

/// Lowers the AST to the task program.
TaskProgram lowerToTasks(const scop::Scop& scop, const ast::Ast& ast);

/// Convenience: full front-to-back pipeline compilation
/// (detect -> schedule -> AST -> tasks). Options forward to Algorithm 1
/// (block integration mode, task granularity).
TaskProgram compilePipeline(const scop::Scop& scop,
                            const pipeline::DetectOptions& options = {});

} // namespace pipoly::codegen
