#include "codegen/task_program.hpp"

#include "pipeline/detect.hpp"
#include "schedule/build.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace pipoly::codegen {

std::int64_t linearizeBlockVector(const pb::Tuple& blockRep) {
  std::int64_t tag = 0;
  for (pb::Value v : blockRep) {
    PIPOLY_CHECK_MSG(v >= 0 && v < kLinearStride,
                     "block coordinate out of range for linearisation");
    PIPOLY_CHECK_MSG(tag <= (std::numeric_limits<std::int64_t>::max() -
                             kLinearStride) /
                                kLinearStride,
                     "block vector too large to linearise");
    tag = tag * kLinearStride + v;
  }
  return tag;
}

TaskDep combineDep(std::size_t numStatements, std::size_t stmtIdx) {
  return TaskDep{static_cast<int>(numStatements + stmtIdx), 0};
}

std::optional<std::size_t> TaskProgram::taskWithOut(const TaskDep& dep) const {
  for (const Task& t : tasks)
    if (t.out.idx == dep.idx && t.out.tag == dep.tag)
      return t.id;
  return std::nullopt;
}

OutOwnerIndex TaskProgram::buildOutOwnerIndex() const {
  OutOwnerIndex owner;
  owner.reserve(tasks.size() * 2);
  for (const Task& t : tasks)
    owner.emplace(std::make_pair(t.out.idx, t.out.tag), t.id);
  return owner;
}

ProgramCounts TaskProgram::counts() const {
  ProgramCounts c;
  c.tasks = tasks.size();
  for (const Task& t : tasks)
    c.inEdges += t.in.size();
  return c;
}

void TaskProgram::validate(const scop::Scop& scop) const {
  trace::Span span("codegen.validate");
  PIPOLY_CHECK(numStatements == scop.numStatements());
  PIPOLY_CHECK_MSG(stmtReaders.empty() || stmtReaders.size() == numStatements,
                   "stmtReaders must be absent or cover every statement");
  for (const std::vector<std::size_t>& readers : stmtReaders)
    for (std::size_t r : readers)
      PIPOLY_CHECK_MSG(r < numStatements, "stmtReaders index out of range");

  // Out-dependencies are unique and tasks are creation-ordered by id.
  // O(n) expected through the hashed owner index.
  OutOwnerIndex outOwner;
  outOwner.reserve(tasks.size() * 2);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    PIPOLY_CHECK(tasks[i].id == i);
    auto [it, fresh] = outOwner.try_emplace(
        std::make_pair(tasks[i].out.idx, tasks[i].out.tag), i);
    PIPOLY_CHECK_MSG(fresh, "duplicate out-dependency tag");
  }

  // Every in-dependency must resolve to an earlier task (OpenMP depend
  // "last writer" semantics with our creation order). O(deps) expected.
  for (const Task& t : tasks) {
    for (const TaskDep& dep : t.in) {
      auto it = outOwner.find({dep.idx, dep.tag});
      PIPOLY_CHECK_MSG(it != outOwner.end(),
                       "in-dependency with no producing task");
      PIPOLY_CHECK_MSG(it->second < t.id,
                       "in-dependency on a later task (creation order)");
    }
  }

  // Per statement: iterations across Block tasks partition the domain,
  // blocks in lexicographic order, and self-ordering chain intact. One
  // pass over the task list with per-statement running state (the former
  // per-statement rescan was O(statements * tasks)). Combine tasks are
  // checked separately: fold steps enumerate the statement's partial
  // blocks in order, and the in-dependencies cover every partial.
  std::vector<const Task*> prev(scop.numStatements(), nullptr);
  std::vector<std::vector<pb::Tuple>> all(scop.numStatements());
  std::vector<const Task*> combine(scop.numStatements(), nullptr);
  std::vector<std::vector<TaskDep>> blockOuts(scop.numStatements());
  for (const Task& t : tasks) {
    PIPOLY_CHECK_MSG(t.stmtIdx < scop.numStatements(),
                     "task statement index out of range");
    PIPOLY_CHECK(!t.iterations.empty());
    PIPOLY_CHECK_MSG(std::is_sorted(t.iterations.begin(), t.iterations.end()),
                     "task iterations must be in lexicographic order");
    PIPOLY_CHECK_MSG(t.iterations.back() == t.blockRep,
                     "block representative must be the last iteration");
    if (t.kind == TaskKind::ReductionCombine) {
      PIPOLY_CHECK_MSG(combine[t.stmtIdx] == nullptr,
                       "at most one combine task per statement");
      combine[t.stmtIdx] = &t;
      const std::size_t arity = scop.statement(t.stmtIdx).depth() + 1;
      for (std::size_t k = 0; k < t.iterations.size(); ++k) {
        PIPOLY_CHECK_MSG(t.iterations[k].size() == arity,
                         "combine fold tuple arity must be depth + 1");
        PIPOLY_CHECK_MSG(t.iterations[k][0] ==
                             static_cast<pb::Value>(k),
                         "combine fold steps must enumerate partials in "
                         "order");
        for (std::size_t d = 1; d < arity; ++d)
          PIPOLY_CHECK_MSG(t.iterations[k][d] == 0,
                           "combine fold tuple padding must be zero");
      }
      continue;
    }
    PIPOLY_CHECK_MSG(combine[t.stmtIdx] == nullptr,
                     "partial blocks must precede their combine task");
    blockOuts[t.stmtIdx].push_back(t.out);
    if (const Task* p = prev[t.stmtIdx]) {
      PIPOLY_CHECK_MSG(p->blockRep < t.blockRep,
                       "blocks of one statement must be ordered");
      if (chainOrdering) {
        bool hasSelfDep =
            std::any_of(t.in.begin(), t.in.end(), [&](const TaskDep& d) {
              return d.selfOrdering && d.idx == p->out.idx &&
                     d.tag == p->out.tag;
            });
        PIPOLY_CHECK_MSG(hasSelfDep,
                         "missing same-statement ordering dependency");
      }
    }
    all[t.stmtIdx].insert(all[t.stmtIdx].end(), t.iterations.begin(),
                          t.iterations.end());
    prev[t.stmtIdx] = &t;
  }
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    std::sort(all[s].begin(), all[s].end());
    PIPOLY_CHECK_MSG(pb::IntTupleSet(scop.statement(s).space(), all[s]) ==
                         scop.statement(s).domain(),
                     "task iterations must partition the statement domain");
    if (const Task* c = combine[s]) {
      PIPOLY_CHECK_MSG(c->iterations.size() == blockOuts[s].size(),
                       "combine must fold exactly one partial per block "
                       "task");
      for (const TaskDep& out : blockOuts[s]) {
        const bool covered =
            std::any_of(c->in.begin(), c->in.end(), [&](const TaskDep& d) {
              return d.idx == out.idx && d.tag == out.tag;
            });
        PIPOLY_CHECK_MSG(covered,
                         "combine task must depend on every partial block");
      }
    }
  }
}

std::vector<std::vector<std::size_t>>
statementReadership(const TaskProgram& program) {
  const std::size_t numStmts = program.numStatements;
  if (program.stmtReaders.size() == numStmts)
    return program.stmtReaders;
  // Fallback for hand-assembled programs: statement-level reachability
  // over the surviving edges (in-dependency idx IS the producer's
  // statement slot). Floyd–Warshall; statement counts are small.
  std::vector<std::vector<bool>> reach(numStmts,
                                       std::vector<bool>(numStmts, false));
  for (const Task& t : program.tasks)
    for (const TaskDep& dep : t.in) {
      // Combine tags live at idx == numStatements + stmtIdx; fold them
      // back onto their statement for the reachability projection.
      std::size_t src = static_cast<std::size_t>(dep.idx);
      if (dep.idx >= 0 && src >= numStmts && src < 2 * numStmts)
        src -= numStmts;
      if (dep.idx >= 0 && src < numStmts)
        reach[src][t.stmtIdx] = true;
    }
  for (std::size_t k = 0; k < numStmts; ++k)
    for (std::size_t s = 0; s < numStmts; ++s)
      if (reach[s][k])
        for (std::size_t t = 0; t < numStmts; ++t)
          if (reach[k][t])
            reach[s][t] = true;
  std::vector<std::vector<std::size_t>> readers(numStmts);
  for (std::size_t s = 0; s < numStmts; ++s)
    for (std::size_t t = 0; t < numStmts; ++t)
      if (s != t && reach[s][t])
        readers[s].push_back(t);
  return readers;
}

TaskProgram lowerToTasks(const scop::Scop& scop, const ast::Ast& ast) {
  trace::Span span("codegen.lower");
  TaskProgram prog;
  prog.numStatements = scop.numStatements();

  // writeNum (§5.5): statements that are sources of other statements.
  std::vector<bool> isSource(scop.numStatements(), false);
  for (const ast::AstLoopNest& nest : ast.nests)
    for (const pipeline::InRequirement& req : nest.annotation.inRequirements)
      isSource[req.srcStmtIdx] = true;
  prog.writeNum = static_cast<std::size_t>(
      std::count(isSource.begin(), isSource.end(), true));

  // Statement-level readership (see the field comment): one entry per
  // Q_S requirement, deduplicated.
  prog.stmtReaders.assign(scop.numStatements(), {});
  for (const ast::AstLoopNest& nest : ast.nests)
    for (const pipeline::InRequirement& req : nest.annotation.inRequirements)
      if (req.srcStmtIdx != nest.stmtIdx)
        prog.stmtReaders[req.srcStmtIdx].push_back(nest.stmtIdx);
  for (std::vector<std::size_t>& readers : prog.stmtReaders) {
    std::sort(readers.begin(), readers.end());
    readers.erase(std::unique(readers.begin(), readers.end()), readers.end());
  }

  for (const ast::AstLoopNest& nest : ast.nests) {
    const int stmtSlot = static_cast<int>(nest.stmtIdx);
    std::optional<TaskDep> prevOut;
    for (const pb::Tuple& rep : nest.blockReps.points()) {
      Task task;
      task.id = prog.tasks.size();
      task.stmtIdx = nest.stmtIdx;
      task.blockRep = rep;
      task.iterations = nest.expansion.imagesOf(rep);
      PIPOLY_CHECK(!task.iterations.empty());
      task.out = TaskDep{stmtSlot, linearizeBlockVector(rep)};

      // Cross-statement in-dependencies from the Q_S maps (single-valued
      // under chain ordering; exact data-flow edges, possibly several,
      // under relaxed ordering). A viaCombine requirement depends on the
      // source's combine task instead of any block.
      for (const pipeline::InRequirement& req :
           nest.annotation.inRequirements) {
        if (req.viaCombine) {
          task.in.push_back(combineDep(prog.numStatements, req.srcStmtIdx));
          continue;
        }
        for (const pb::Tuple& image : req.map.imagesOf(rep))
          task.in.push_back(TaskDep{static_cast<int>(req.srcStmtIdx),
                                    linearizeBlockVector(image)});
      }

      if (nest.annotation.chainOrdering) {
        // Same-statement ordering (the funcCount protocol of Fig. 8).
        if (prevOut)
          task.in.push_back(
              TaskDep{prevOut->idx, prevOut->tag, /*selfOrdering=*/true});
      } else {
        // §7 relaxation: only the actual cross-block self-dependences.
        prog.chainOrdering = false;
        for (const pb::Tuple& required :
             nest.annotation.selfEdges.imagesOf(rep))
          task.in.push_back(TaskDep{stmtSlot,
                                    linearizeBlockVector(required),
                                    /*selfOrdering=*/true});
      }

      // Deduplicate dependency slots (exact data-flow edges can name the
      // same source block several times); keep the selfOrdering flag if
      // any duplicate carried it.
      std::sort(task.in.begin(), task.in.end(),
                [](const TaskDep& a, const TaskDep& b) {
                  return std::tie(a.idx, a.tag, b.selfOrdering) <
                         std::tie(b.idx, b.tag, a.selfOrdering);
                });
      task.in.erase(std::unique(task.in.begin(), task.in.end(),
                                [](const TaskDep& a, const TaskDep& b) {
                                  return a.idx == b.idx && a.tag == b.tag;
                                }),
                    task.in.end());

      prevOut = task.out;
      prog.tasks.push_back(std::move(task));
    }

    // Relaxed reduction nest: append the combine task. It folds the
    // partial accumulators into the array, one fold step per partial
    // block in deterministic (block) order, after every partial
    // finished. Readers of this statement depend on its combine tag (see
    // the viaCombine branch above).
    if (nest.annotation.reduction.relaxed && !nest.blockReps.empty()) {
      Task task;
      task.id = prog.tasks.size();
      task.stmtIdx = nest.stmtIdx;
      task.kind = TaskKind::ReductionCombine;
      const std::size_t arity = nest.blockReps.space().arity() + 1;
      std::size_t k = 0;
      for (const pb::Tuple& rep : nest.blockReps.points()) {
        std::vector<pb::Value> fold(arity, 0);
        fold[0] = static_cast<pb::Value>(k++);
        task.iterations.emplace_back(fold.data(), arity);
        task.in.push_back(TaskDep{stmtSlot, linearizeBlockVector(rep)});
      }
      task.blockRep = task.iterations.back();
      task.out = combineDep(prog.numStatements, nest.stmtIdx);
      prog.tasks.push_back(std::move(task));
    }
  }
  return prog;
}

TaskProgram compilePipeline(const scop::Scop& scop,
                            const pipeline::DetectOptions& options) {
  trace::Span span("compile");
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop, options);
  std::unique_ptr<sched::ScheduleNode> tree;
  {
    trace::Span schedule("compile.schedule");
    tree = sched::buildPipelineSchedule(scop, info);
  }
  ast::Ast loweredAst;
  {
    trace::Span astSpan("compile.ast");
    loweredAst = ast::buildAst(scop, *tree);
  }
  TaskProgram prog = lowerToTasks(scop, loweredAst);
  prog.validate(scop);
  return prog;
}

std::string TaskProgram::toString() const {
  std::ostringstream os;
  os << "task program: " << tasks.size() << " tasks, " << numStatements
     << " statements, writeNum=" << writeNum << '\n';
  for (const Task& t : tasks) {
    os << "  task " << t.id << ": stmt " << t.stmtIdx
       << (t.kind == TaskKind::ReductionCombine ? " combine " : " block ")
       << t.blockRep << " (" << t.iterations.size() << " its) out=("
       << t.out.idx << ',' << t.out.tag << ')';
    for (const TaskDep& d : t.in)
      os << " in=(" << d.idx << ',' << d.tag << (d.selfOrdering ? ",self" : "")
         << ')';
    os << '\n';
  }
  return os.str();
}

} // namespace pipoly::codegen
