#pragma once

// Graphviz export of a task program's dependency DAG: one node per task
// (grouped into clusters per statement), one edge per dependency, with
// the same-nest ordering edges drawn dashed. Handy for inspecting what
// the pipeline detection produced — `dot -Tsvg graph.dot`.

#include "codegen/task_program.hpp"
#include "pipeline/comm.hpp"

#include <optional>
#include <string>

namespace pipoly::codegen {

/// When `preOptCounts` is given (the counts of the program before the
/// task-graph optimizer ran), the graph label reports the pre/post task
/// and edge counts so shrinkage is visible on the rendered graph. With a
/// communication analysis the first dependency edge of every statement
/// pair carries the edge's volume and sized channel capacity as a label.
std::string toDot(const TaskProgram& program, const scop::Scop& scop,
                  const std::optional<ProgramCounts>& preOptCounts =
                      std::nullopt,
                  const pipeline::CommInfo* comm = nullptr);

} // namespace pipoly::codegen
