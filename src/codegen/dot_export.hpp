#pragma once

// Graphviz export of a task program's dependency DAG: one node per task
// (grouped into clusters per statement), one edge per dependency, with
// the same-nest ordering edges drawn dashed. Handy for inspecting what
// the pipeline detection produced — `dot -Tsvg graph.dot`.

#include "codegen/task_program.hpp"

#include <string>

namespace pipoly::codegen {

std::string toDot(const TaskProgram& program, const scop::Scop& scop);

} // namespace pipoly::codegen
