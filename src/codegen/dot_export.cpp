#include "codegen/dot_export.hpp"

#include "support/assert.hpp"

#include <sstream>

namespace pipoly::codegen {

std::string toDot(const TaskProgram& program, const scop::Scop& scop) {
  std::ostringstream os;
  os << "digraph tasks {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10];\n";

  // One cluster per statement, tasks in block order.
  for (std::size_t s = 0; s < program.numStatements; ++s) {
    os << "  subgraph cluster_" << s << " {\n"
       << "    label=\"" << scop.statement(s).name() << "\";\n";
    for (const Task& t : program.tasks) {
      if (t.stmtIdx != s)
        continue;
      os << "    t" << t.id << " [label=\"" << scop.statement(s).name()
         << t.blockRep.toString() << "\\n" << t.iterations.size()
         << " its\"];\n";
    }
    os << "  }\n";
  }

  for (const Task& t : program.tasks) {
    for (const TaskDep& dep : t.in) {
      std::optional<std::size_t> src = program.taskWithOut(dep);
      PIPOLY_CHECK(src.has_value());
      os << "  t" << *src << " -> t" << t.id;
      if (dep.selfOrdering)
        os << " [style=dashed]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace pipoly::codegen
