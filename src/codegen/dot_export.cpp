#include "codegen/dot_export.hpp"

#include "support/assert.hpp"

#include <set>
#include <sstream>

namespace pipoly::codegen {

std::string toDot(const TaskProgram& program, const scop::Scop& scop,
                  const std::optional<ProgramCounts>& preOptCounts,
                  const pipeline::CommInfo* comm) {
  std::ostringstream os;
  os << "digraph tasks {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=10];\n";
  if (preOptCounts) {
    const ProgramCounts after = program.counts();
    os << "  label=\"optimized: " << preOptCounts->tasks << " -> "
       << after.tasks << " tasks, " << preOptCounts->inEdges << " -> "
       << after.inEdges << " edges\";\n  labelloc=t;\n";
  }

  // One cluster per statement, tasks in block order.
  for (std::size_t s = 0; s < program.numStatements; ++s) {
    os << "  subgraph cluster_" << s << " {\n"
       << "    label=\"" << scop.statement(s).name() << "\";\n";
    for (const Task& t : program.tasks) {
      if (t.stmtIdx != s)
        continue;
      if (t.kind == TaskKind::ReductionCombine) {
        // The relaxed-reduction combine step: double octagon, fold count.
        os << "    t" << t.id << " [shape=doubleoctagon, label=\""
           << scop.statement(s).name() << " combine\\n"
           << t.iterations.size() << " partials\"];\n";
        continue;
      }
      os << "    t" << t.id << " [label=\"" << scop.statement(s).name()
         << t.blockRep.toString() << "\\n" << t.iterations.size()
         << " its\"];\n";
    }
    os << "  }\n";
  }

  // Resolve edges through the owner index built once — the per-edge
  // taskWithOut() scan was O(tasks * edges) on large graphs.
  const OutOwnerIndex owner = program.buildOutOwnerIndex();
  std::set<std::pair<std::size_t, std::size_t>> labelled;
  for (const Task& t : program.tasks) {
    for (const TaskDep& dep : t.in) {
      auto src = owner.find({dep.idx, dep.tag});
      PIPOLY_CHECK(src != owner.end());
      os << "  t" << src->second << " -> t" << t.id;
      if (dep.selfOrdering) {
        os << " [style=dashed]";
      } else if (comm != nullptr) {
        // Volume/capacity label on the first edge of each statement pair
        // only: the numbers are per-pair, repeating them is pure clutter.
        const std::size_t srcStmt = program.tasks[src->second].stmtIdx;
        if (srcStmt != t.stmtIdx &&
            labelled.emplace(srcStmt, t.stmtIdx).second)
          if (const pipeline::EdgeComm* e = comm->edge(srcStmt, t.stmtIdx))
            os << " [label=\"" << e->totalBytes << " B, cap "
               << e->capacitySlots << "\", fontsize=9]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace pipoly::codegen
