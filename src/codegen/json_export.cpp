#include "codegen/json_export.hpp"

#include "support/assert.hpp"

#include <sstream>

namespace pipoly::codegen {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\')
      out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

} // namespace

std::string toJson(const TaskProgram& program, const scop::Scop& scop,
                   const std::optional<ProgramCounts>& preOptCounts,
                   const pipeline::CommInfo* comm) {
  const OutOwnerIndex owner = program.buildOutOwnerIndex();

  std::vector<std::size_t> blocksPerStmt(scop.numStatements(), 0);
  for (const Task& t : program.tasks)
    ++blocksPerStmt[t.stmtIdx];

  std::ostringstream os;
  os << "{\n  \"scop\": \"" << escape(scop.name()) << "\",\n"
     << "  \"chainOrdering\": " << (program.chainOrdering ? "true" : "false");
  if (preOptCounts) {
    const ProgramCounts after = program.counts();
    os << ",\n  \"optimization\": {\"tasksBefore\": " << preOptCounts->tasks
       << ", \"tasks\": " << after.tasks
       << ", \"edgesBefore\": " << preOptCounts->inEdges
       << ", \"edges\": " << after.inEdges << '}';
  }
  if (comm != nullptr) {
    os << ",\n  \"communication\": {\"totalBytes\": " << comm->totalBytes()
       << ", \"edges\": [\n";
    for (std::size_t k = 0; k < comm->edges.size(); ++k) {
      const pipeline::EdgeComm& e = comm->edges[k];
      os << "    {\"src\": " << e.srcIdx << ", \"tgt\": " << e.tgtIdx
         << ", \"elements\": " << e.elements << ", \"bytes\": "
         << e.totalBytes << ", \"maxBlockBytes\": " << e.maxBlockBytes
         << ", \"peakTokens\": " << e.peakInFlightTokens
         << ", \"peakBytes\": " << e.peakInFlightBytes << ", \"capacity\": "
         << e.capacitySlots << ", \"parametric\": "
         << (e.parametric ? "true" : "false") << '}'
         << (k + 1 < comm->edges.size() ? "," : "") << '\n';
    }
    os << "  ]}";
  }
  os << ",\n  \"statements\": [\n";
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const scop::Statement& stmt = scop.statement(s);
    os << "    {\"name\": \"" << escape(stmt.name()) << "\", \"depth\": "
       << stmt.depth() << ", \"iterations\": " << stmt.domain().size()
       << ", \"blocks\": " << blocksPerStmt[s] << '}'
       << (s + 1 < scop.numStatements() ? "," : "") << '\n';
  }
  os << "  ],\n  \"tasks\": [\n";
  for (const Task& t : program.tasks) {
    os << "    {\"id\": " << t.id << ", \"stmt\": " << t.stmtIdx
       << ", \"block\": [";
    for (std::size_t d = 0; d < t.blockRep.size(); ++d)
      os << (d ? ", " : "") << t.blockRep[d];
    os << "], \"iterations\": " << t.iterations.size();
    if (t.kind == TaskKind::ReductionCombine)
      os << ", \"combine\": true";
    os << ", \"deps\": [";
    for (std::size_t k = 0; k < t.in.size(); ++k) {
      auto it = owner.find({t.in[k].idx, t.in[k].tag});
      PIPOLY_CHECK(it != owner.end());
      os << (k ? ", " : "") << "{\"task\": " << it->second << ", \"self\": "
         << (t.in[k].selfOrdering ? "true" : "false") << '}';
    }
    os << "]}" << (t.id + 1 < program.tasks.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

} // namespace pipoly::codegen
