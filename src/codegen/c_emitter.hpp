#pragma once

// §5.4/§5.5 — source-level code generation. Where the paper's prototype
// rewrites LLVM-IR to call its high-level CreateTask function (Fig. 7),
// this emitter produces a *self-contained C program* with the same
// structure:
//
//   * the CreateTask function over OpenMP `task depend` (Fig. 8),
//     including the dependArr dependency array and the iterator-based
//     variable-length in-dependency list;
//   * one extracted task function executing the iterations of one block
//     (the body of the pipeline loop);
//   * static tables describing every task (statement, iteration range,
//     dependency slots) — the lowered form of the Q_S / Q_S^out maps;
//   * a main() that runs the program both sequentially and task-parallel
//     and compares order-sensitive checksums, exiting 0 on a match.
//
// Statement bodies hash-combine their operands (the same semantics as the
// test suite's InterpretedKernel), so the emitted program is a
// self-checking witness that the generated task graph preserves the
// original program's dataflow.

#include "codegen/task_program.hpp"

#include <string>

namespace pipoly::codegen {

std::string emitOpenMPProgram(const scop::Scop& scop,
                              const TaskProgram& program);

} // namespace pipoly::codegen
