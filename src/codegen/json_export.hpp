#pragma once

// JSON export of the compilation result, for downstream tooling (IDE
// visualisers, external schedulers, CI dashboards). The schema:
//
// {
//   "scop": "...",
//   "statements": [ { "name", "depth", "iterations", "blocks" } ],
//   "tasks": [ { "id", "stmt", "block": [..], "iterations",
//                "deps": [ { "task", "self" } ] } ]
// }

#include "codegen/task_program.hpp"

#include <string>

namespace pipoly::codegen {

std::string toJson(const TaskProgram& program, const scop::Scop& scop);

} // namespace pipoly::codegen
