#pragma once

// JSON export of the compilation result, for downstream tooling (IDE
// visualisers, external schedulers, CI dashboards). The schema:
//
// {
//   "scop": "...",
//   "optimization": { "tasksBefore", "tasks", "edgesBefore", "edges" },
//   "statements": [ { "name", "depth", "iterations", "blocks" } ],
//   "tasks": [ { "id", "stmt", "block": [..], "iterations",
//                "deps": [ { "task", "self" } ] } ]
// }
//
// The "optimization" object is present only when the caller passes the
// pre-optimization counts (compare against program.counts() to see how
// much the task-graph optimizer shrank the program). With a
// communication analysis (pipeline::analyzeCommunication) the export
// additionally carries a "communication" object: per pipeline edge the
// polyhedral volume, peak in-flight footprint and sized channel
// capacity.

#include "codegen/task_program.hpp"
#include "pipeline/comm.hpp"

#include <optional>
#include <string>

namespace pipoly::codegen {

std::string toJson(const TaskProgram& program, const scop::Scop& scop,
                   const std::optional<ProgramCounts>& preOptCounts =
                       std::nullopt,
                   const pipeline::CommInfo* comm = nullptr);

} // namespace pipoly::codegen
