#include "opt/optimizer.hpp"

#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pipoly::opt {

namespace {

using codegen::Task;
using codegen::TaskDep;
using codegen::TaskKind;
using codegen::TaskProgram;

std::size_t countEdges(const TaskProgram& program) {
  std::size_t edges = 0;
  for (const Task& t : program.tasks)
    edges += t.in.size();
  return edges;
}

/// Resolves every in-dependency of every task to the producing task id.
/// Returns the flattened per-task predecessor lists (offsets like
/// SlotTable). O(tasks + edges) through the hashed owner index.
struct PredLists {
  std::vector<std::uint32_t> preds;
  std::vector<std::uint32_t> offsets;
};

PredLists resolvePredecessors(const TaskProgram& program) {
  const codegen::OutOwnerIndex owner = program.buildOutOwnerIndex();
  PredLists lists;
  lists.offsets.reserve(program.tasks.size() + 1);
  lists.offsets.push_back(0);
  for (const Task& t : program.tasks) {
    for (const TaskDep& dep : t.in) {
      auto it = owner.find({dep.idx, dep.tag});
      PIPOLY_CHECK_MSG(it != owner.end(),
                       "optimizer: in-dependency with no producing task");
      PIPOLY_CHECK_MSG(it->second < t.id,
                       "optimizer: in-dependency on a later task");
      lists.preds.push_back(static_cast<std::uint32_t>(it->second));
    }
    lists.offsets.push_back(static_cast<std::uint32_t>(lists.preds.size()));
  }
  return lists;
}

/// Pass 1: transitive reduction. Creation order is a topological order
/// (validated: every in-dependency names an earlier task), so one forward
/// sweep computes each task's ancestor set as the union of its direct
/// predecessors' ancestor sets plus the predecessors themselves. An edge
/// p -> v is implied exactly when p is an ancestor of another direct
/// predecessor of v; dropping it leaves the closure untouched.
///
/// Under chainOrdering the same-statement funcCount edge is kept even if
/// implied — TaskProgram::validate() requires the chain to be explicit,
/// and backends with funcCountOrdering re-derive it anyway.
///
/// Bitset ancestor sets: O(V^2/64) memory, O(V*E/64) time. The programs
/// this repository generates are a few thousand tasks at the extreme
/// (P1-P10 at N=16 are tens to hundreds), so the dense representation is
/// both the fastest and the simplest correct choice.
std::size_t transitiveReduce(TaskProgram& program) {
  const std::size_t n = program.tasks.size();
  if (n == 0)
    return 0;
  const PredLists lists = resolvePredecessors(program);
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> ancestors(n * words, 0);
  std::vector<std::uint64_t> predUnion(words);

  std::size_t removed = 0;
  for (Task& t : program.tasks) {
    std::fill(predUnion.begin(), predUnion.end(), 0);
    const std::uint32_t* predBegin = lists.preds.data() + lists.offsets[t.id];
    const std::uint32_t* predEnd =
        lists.preds.data() + lists.offsets[t.id + 1];
    for (const std::uint32_t* p = predBegin; p != predEnd; ++p) {
      const std::uint64_t* row = ancestors.data() + std::size_t{*p} * words;
      for (std::size_t w = 0; w < words; ++w)
        predUnion[w] |= row[w];
    }

    // An edge is redundant iff its producer is an ancestor of another
    // direct predecessor (a task is never its own ancestor, so membership
    // in the union is exactly that test).
    std::vector<TaskDep> kept;
    kept.reserve(t.in.size());
    for (std::size_t k = 0; k < t.in.size(); ++k) {
      const std::uint32_t p = predBegin[k];
      const bool implied = (predUnion[p / 64] >> (p % 64)) & 1;
      if (implied && !(program.chainOrdering && t.in[k].selfOrdering)) {
        ++removed;
        continue;
      }
      kept.push_back(t.in[k]);
    }
    t.in = std::move(kept);

    // ancestors(t) = union of predecessors' ancestors + the predecessors.
    // Computed from the *original* edges — the reduction preserves the
    // closure, so either edge set yields the same ancestor sets.
    std::uint64_t* row = ancestors.data() + t.id * words;
    std::copy(predUnion.begin(), predUnion.end(), row);
    for (const std::uint32_t* p = predBegin; p != predEnd; ++p)
      row[*p / 64] |= std::uint64_t{1} << (*p % 64);
  }
  return removed;
}

/// Placement score of the program's current channel structure: stage the
/// statements exactly like the channel backend (distinct statements,
/// ascending; one stage each), weight the surviving cross-stage
/// dependency pairs with the analyzed per-edge bytes, place onto the
/// topology, and read off the partitioner's communication objective.
/// This is the bytes-moved-on-the-placed-topology number the
/// placement-aware passes are scored by.
struct PlacedScore {
  rt::Placement placement;
  /// Per statement: the largest cost class of any cross-domain channel
  /// edge incident to it (1.0 when all its edges are domain-local) —
  /// the fusion-width scaling factor.
  std::vector<double> maxClassOfStmt;
};

PlacedScore scorePlacement(const TaskProgram& program,
                           const pipeline::CommInfo& comm,
                           const std::optional<rt::Topology>& topology,
                           double lambda) {
  PlacedScore score;
  score.maxClassOfStmt.assign(program.numStatements, 1.0);

  // Stage structure: one stage per statement owning tasks, ascending.
  std::vector<std::size_t> stageOf(program.numStatements, SIZE_MAX);
  std::vector<std::size_t> stmtOf;
  for (const Task& t : program.tasks)
    if (stageOf[t.stmtIdx] == SIZE_MAX) {
      stageOf[t.stmtIdx] = 0;
      stmtOf.push_back(t.stmtIdx);
    }
  std::sort(stmtOf.begin(), stmtOf.end());
  for (std::size_t s = 0; s < stmtOf.size(); ++s)
    stageOf[stmtOf[s]] = s;
  const std::size_t numStages = stmtOf.size();
  if (numStages == 0)
    return score;
  std::vector<std::size_t> stageTasks(numStages, 0);
  for (const Task& t : program.tasks)
    ++stageTasks[stageOf[t.stmtIdx]];

  // Surviving cross-stage dependency pairs = the channels the backend
  // would build; bytes from the analysis (1 when unanalyzed).
  const PredLists lists = resolvePredecessors(program);
  std::vector<std::vector<bool>> seen(numStages,
                                      std::vector<bool>(numStages, false));
  std::vector<rt::StageEdge> edges;
  for (const Task& t : program.tasks) {
    const std::size_t tgt = stageOf[t.stmtIdx];
    for (std::size_t k = lists.offsets[t.id]; k < lists.offsets[t.id + 1];
         ++k) {
      const std::size_t src =
          stageOf[program.tasks[lists.preds[k]].stmtIdx];
      if (src == tgt || seen[src][tgt])
        continue;
      seen[src][tgt] = true;
      std::uint64_t bytes = 1;
      if (const pipeline::EdgeComm* e = comm.edge(stmtOf[src], stmtOf[tgt]))
        bytes = std::max<std::uint64_t>(e->totalBytes, 1);
      edges.push_back({src, tgt, bytes});
    }
  }

  const rt::Topology topo =
      topology.has_value()
          ? (topology->numWorkers() == numStages
                 ? *topology
                 : topology->resized(static_cast<unsigned>(numStages)))
          : rt::Topology::uma(static_cast<unsigned>(numStages));
  rt::PlacementOptions popts;
  popts.lambda = lambda;
  score.placement = rt::placeStagesTopology(
      stageTasks, static_cast<unsigned>(numStages), edges, topo, popts);

  for (const rt::StageEdge& e : edges) {
    const unsigned da = score.placement.domainOfStage[e.src];
    const unsigned db = score.placement.domainOfStage[e.tgt];
    if (da == db)
      continue;
    const double cls = topo.costClass(da, db);
    score.maxClassOfStmt[stmtOf[e.src]] =
        std::max(score.maxClassOfStmt[stmtOf[e.src]], cls);
    score.maxClassOfStmt[stmtOf[e.tgt]] =
        std::max(score.maxClassOfStmt[stmtOf[e.tgt]], cls);
  }
  return score;
}

/// Pass 2: chain fusion. Fuses task `next` into `merged` when
///   * they are adjacent tasks of the same statement (lowerToTasks emits
///     each nest's blocks contiguously, so adjacency in creation order is
///     adjacency in block order — which the C emitter's contiguous
///     iteration ranges rely on),
///   * the tail of `merged` has exactly one dependent (`next`),
///   * `next`'s only in-dependency is on that tail, and
///   * the concatenated iteration list stays lexicographically sorted
///     (validate() and the sequential-per-task execution order need it).
std::size_t fuseChains(TaskProgram& program, std::size_t width,
                       const std::vector<std::size_t>* stmtWidth = nullptr) {
  const std::size_t n = program.tasks.size();
  const std::size_t maxWidth =
      stmtWidth != nullptr && !stmtWidth->empty()
          ? *std::max_element(stmtWidth->begin(), stmtWidth->end())
          : width;
  if (n < 2 || maxWidth < 2)
    return 0;
  const PredLists lists = resolvePredecessors(program);
  std::vector<std::uint32_t> dependents(n, 0);
  for (std::uint32_t p : lists.preds)
    ++dependents[p];

  std::vector<Task> fused;
  fused.reserve(n);
  std::size_t eliminated = 0;
  for (std::size_t i = 0; i < n;) {
    Task merged = std::move(program.tasks[i]);
    // Placement-aware widths: a statement whose channels cross domains
    // fuses wider — bigger blocks per token amortize the slower link,
    // mirroring how the channel engine deepens cross-domain rings.
    const std::size_t effWidth =
        stmtWidth != nullptr && merged.stmtIdx < stmtWidth->size()
            ? (*stmtWidth)[merged.stmtIdx]
            : width;
    std::size_t tail = i; // original id of the last task folded in
    std::size_t run = 1;
    while (run < effWidth && tail + 1 < n) {
      const Task& next = program.tasks[tail + 1];
      // Never fuse across task kinds: a combine task must stay a
      // separate fold step (its iterations use a different arity and the
      // reduction runners dispatch on it).
      if (next.stmtIdx != merged.stmtIdx || next.kind != merged.kind ||
          merged.kind != TaskKind::Block || dependents[tail] != 1 ||
          next.in.size() != 1 || next.in[0].idx != merged.out.idx ||
          next.in[0].tag != merged.out.tag ||
          !(merged.iterations.back() < next.iterations.front()))
        break;
      merged.iterations.insert(merged.iterations.end(),
                               next.iterations.begin(),
                               next.iterations.end());
      merged.out = next.out;
      merged.blockRep = next.blockRep;
      ++tail;
      ++run;
      ++eliminated;
    }
    merged.id = fused.size();
    fused.push_back(std::move(merged));
    i = tail + 1;
  }
  program.tasks = std::move(fused);
  return eliminated;
}

} // namespace

double OptimizeStats::edgeReductionPercent() const {
  if (edgesBefore == 0)
    return 0.0;
  return 100.0 * static_cast<double>(edgesBefore - edgesAfter) /
         static_cast<double>(edgesBefore);
}

double OptimizeStats::taskReductionPercent() const {
  if (tasksBefore == 0)
    return 0.0;
  return 100.0 * static_cast<double>(tasksBefore - tasksAfter) /
         static_cast<double>(tasksBefore);
}

std::string OptimizeStats::toString() const {
  std::ostringstream os;
  os << "opt: tasks " << tasksBefore << " -> " << tasksAfter << " (fused "
     << tasksFused << "), in-edges " << edgesBefore << " -> " << edgesAfter
     << " (reduction removed " << edgesRemoved << ")";
  if (placedCommCostBefore > 0.0 || placedCommCostAfter > 0.0)
    os << ", placed comm cost " << placedCommCostBefore << " -> "
       << placedCommCostAfter << " (cross-domain bytes "
       << crossDomainBytesBefore << " -> " << crossDomainBytesAfter << ")";
  return os.str();
}

OptimizeStats optimize(codegen::TaskProgram& program,
                       const OptimizeOptions& options) {
  trace::Span span("opt.optimize");
  OptimizeStats stats;
  stats.tasksBefore = stats.tasksAfter = program.tasks.size();
  stats.edgesBefore = stats.edgesAfter = countEdges(program);
  if (!options.enabled)
    return stats;
  // Placement-aware mode: score the untouched program first, derive the
  // per-statement fusion widths from where its channels land on the
  // topology, and re-score after the passes — the before/after pair is
  // the bytes-moved objective the mode optimizes for.
  std::vector<std::size_t> stmtWidths;
  const bool placementAware = options.comm != nullptr;
  if (placementAware) {
    const PlacedScore before = scorePlacement(
        program, *options.comm, options.topology, options.placementLambda);
    stats.placedCommCostBefore = before.placement.commCost;
    stats.crossDomainBytesBefore = before.placement.crossDomainBytes;
    if (options.fusionWidth > 1) {
      stmtWidths.assign(program.numStatements, options.fusionWidth);
      for (std::size_t s = 0; s < before.maxClassOfStmt.size(); ++s)
        stmtWidths[s] = std::min<std::size_t>(
            options.fusionWidth *
                static_cast<std::size_t>(
                    std::ceil(before.maxClassOfStmt[s])),
            4 * options.fusionWidth);
    }
  }
  if (options.transitiveReduction) {
    trace::Span pass("opt.transitive_reduction");
    stats.edgesRemoved = transitiveReduce(program);
  }
  if (options.fusionWidth > 1) {
    trace::Span pass("opt.chain_fusion");
    stats.tasksFused = fuseChains(program, options.fusionWidth,
                                  stmtWidths.empty() ? nullptr : &stmtWidths);
  }
  if (placementAware) {
    const PlacedScore after = scorePlacement(
        program, *options.comm, options.topology, options.placementLambda);
    stats.placedCommCostAfter = after.placement.commCost;
    stats.crossDomainBytesAfter = after.placement.crossDomainBytes;
  }
  stats.tasksAfter = program.tasks.size();
  stats.edgesAfter = countEdges(program);
  trace::counter("opt.edges_removed",
                 static_cast<double>(stats.edgesBefore - stats.edgesAfter));
  trace::counter("opt.tasks_fused", static_cast<double>(stats.tasksFused));
  return stats;
}

bool SlotTable::compatibleWith(const codegen::TaskProgram& program) const {
  const std::size_t n = program.tasks.size();
  if (numSlots != n || inOffsets.size() != n + 1)
    return false;
  if (!inOffsets.empty() &&
      (inOffsets.front() != 0 || inOffsets.back() != inSlots.size()))
    return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (inOffsets[i] > inOffsets[i + 1])
      return false;
    if (inCount(i) != program.tasks[i].in.size())
      return false;
    for (const std::uint32_t* s = inBegin(i); s != inEnd(i); ++s)
      if (*s >= i)
        return false;
  }
  return true;
}

SlotTable buildSlotTable(const codegen::TaskProgram& program) {
  trace::Span span("opt.slot_table");
  PredLists lists = resolvePredecessors(program);
  SlotTable table;
  table.numSlots = static_cast<std::uint32_t>(program.tasks.size());
  table.inSlots = std::move(lists.preds);
  table.inOffsets = std::move(lists.offsets);
  return table;
}

} // namespace pipoly::opt
