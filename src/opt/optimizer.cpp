#include "opt/optimizer.hpp"

#include "support/assert.hpp"
#include "trace/trace.hpp"

#include <algorithm>
#include <sstream>

namespace pipoly::opt {

namespace {

using codegen::Task;
using codegen::TaskDep;
using codegen::TaskKind;
using codegen::TaskProgram;

std::size_t countEdges(const TaskProgram& program) {
  std::size_t edges = 0;
  for (const Task& t : program.tasks)
    edges += t.in.size();
  return edges;
}

/// Resolves every in-dependency of every task to the producing task id.
/// Returns the flattened per-task predecessor lists (offsets like
/// SlotTable). O(tasks + edges) through the hashed owner index.
struct PredLists {
  std::vector<std::uint32_t> preds;
  std::vector<std::uint32_t> offsets;
};

PredLists resolvePredecessors(const TaskProgram& program) {
  const codegen::OutOwnerIndex owner = program.buildOutOwnerIndex();
  PredLists lists;
  lists.offsets.reserve(program.tasks.size() + 1);
  lists.offsets.push_back(0);
  for (const Task& t : program.tasks) {
    for (const TaskDep& dep : t.in) {
      auto it = owner.find({dep.idx, dep.tag});
      PIPOLY_CHECK_MSG(it != owner.end(),
                       "optimizer: in-dependency with no producing task");
      PIPOLY_CHECK_MSG(it->second < t.id,
                       "optimizer: in-dependency on a later task");
      lists.preds.push_back(static_cast<std::uint32_t>(it->second));
    }
    lists.offsets.push_back(static_cast<std::uint32_t>(lists.preds.size()));
  }
  return lists;
}

/// Pass 1: transitive reduction. Creation order is a topological order
/// (validated: every in-dependency names an earlier task), so one forward
/// sweep computes each task's ancestor set as the union of its direct
/// predecessors' ancestor sets plus the predecessors themselves. An edge
/// p -> v is implied exactly when p is an ancestor of another direct
/// predecessor of v; dropping it leaves the closure untouched.
///
/// Under chainOrdering the same-statement funcCount edge is kept even if
/// implied — TaskProgram::validate() requires the chain to be explicit,
/// and backends with funcCountOrdering re-derive it anyway.
///
/// Bitset ancestor sets: O(V^2/64) memory, O(V*E/64) time. The programs
/// this repository generates are a few thousand tasks at the extreme
/// (P1-P10 at N=16 are tens to hundreds), so the dense representation is
/// both the fastest and the simplest correct choice.
std::size_t transitiveReduce(TaskProgram& program) {
  const std::size_t n = program.tasks.size();
  if (n == 0)
    return 0;
  const PredLists lists = resolvePredecessors(program);
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> ancestors(n * words, 0);
  std::vector<std::uint64_t> predUnion(words);

  std::size_t removed = 0;
  for (Task& t : program.tasks) {
    std::fill(predUnion.begin(), predUnion.end(), 0);
    const std::uint32_t* predBegin = lists.preds.data() + lists.offsets[t.id];
    const std::uint32_t* predEnd =
        lists.preds.data() + lists.offsets[t.id + 1];
    for (const std::uint32_t* p = predBegin; p != predEnd; ++p) {
      const std::uint64_t* row = ancestors.data() + std::size_t{*p} * words;
      for (std::size_t w = 0; w < words; ++w)
        predUnion[w] |= row[w];
    }

    // An edge is redundant iff its producer is an ancestor of another
    // direct predecessor (a task is never its own ancestor, so membership
    // in the union is exactly that test).
    std::vector<TaskDep> kept;
    kept.reserve(t.in.size());
    for (std::size_t k = 0; k < t.in.size(); ++k) {
      const std::uint32_t p = predBegin[k];
      const bool implied = (predUnion[p / 64] >> (p % 64)) & 1;
      if (implied && !(program.chainOrdering && t.in[k].selfOrdering)) {
        ++removed;
        continue;
      }
      kept.push_back(t.in[k]);
    }
    t.in = std::move(kept);

    // ancestors(t) = union of predecessors' ancestors + the predecessors.
    // Computed from the *original* edges — the reduction preserves the
    // closure, so either edge set yields the same ancestor sets.
    std::uint64_t* row = ancestors.data() + t.id * words;
    std::copy(predUnion.begin(), predUnion.end(), row);
    for (const std::uint32_t* p = predBegin; p != predEnd; ++p)
      row[*p / 64] |= std::uint64_t{1} << (*p % 64);
  }
  return removed;
}

/// Pass 2: chain fusion. Fuses task `next` into `merged` when
///   * they are adjacent tasks of the same statement (lowerToTasks emits
///     each nest's blocks contiguously, so adjacency in creation order is
///     adjacency in block order — which the C emitter's contiguous
///     iteration ranges rely on),
///   * the tail of `merged` has exactly one dependent (`next`),
///   * `next`'s only in-dependency is on that tail, and
///   * the concatenated iteration list stays lexicographically sorted
///     (validate() and the sequential-per-task execution order need it).
std::size_t fuseChains(TaskProgram& program, std::size_t width) {
  const std::size_t n = program.tasks.size();
  if (n < 2 || width < 2)
    return 0;
  const PredLists lists = resolvePredecessors(program);
  std::vector<std::uint32_t> dependents(n, 0);
  for (std::uint32_t p : lists.preds)
    ++dependents[p];

  std::vector<Task> fused;
  fused.reserve(n);
  std::size_t eliminated = 0;
  for (std::size_t i = 0; i < n;) {
    Task merged = std::move(program.tasks[i]);
    std::size_t tail = i; // original id of the last task folded in
    std::size_t run = 1;
    while (run < width && tail + 1 < n) {
      const Task& next = program.tasks[tail + 1];
      // Never fuse across task kinds: a combine task must stay a
      // separate fold step (its iterations use a different arity and the
      // reduction runners dispatch on it).
      if (next.stmtIdx != merged.stmtIdx || next.kind != merged.kind ||
          merged.kind != TaskKind::Block || dependents[tail] != 1 ||
          next.in.size() != 1 || next.in[0].idx != merged.out.idx ||
          next.in[0].tag != merged.out.tag ||
          !(merged.iterations.back() < next.iterations.front()))
        break;
      merged.iterations.insert(merged.iterations.end(),
                               next.iterations.begin(),
                               next.iterations.end());
      merged.out = next.out;
      merged.blockRep = next.blockRep;
      ++tail;
      ++run;
      ++eliminated;
    }
    merged.id = fused.size();
    fused.push_back(std::move(merged));
    i = tail + 1;
  }
  program.tasks = std::move(fused);
  return eliminated;
}

} // namespace

double OptimizeStats::edgeReductionPercent() const {
  if (edgesBefore == 0)
    return 0.0;
  return 100.0 * static_cast<double>(edgesBefore - edgesAfter) /
         static_cast<double>(edgesBefore);
}

double OptimizeStats::taskReductionPercent() const {
  if (tasksBefore == 0)
    return 0.0;
  return 100.0 * static_cast<double>(tasksBefore - tasksAfter) /
         static_cast<double>(tasksBefore);
}

std::string OptimizeStats::toString() const {
  std::ostringstream os;
  os << "opt: tasks " << tasksBefore << " -> " << tasksAfter << " (fused "
     << tasksFused << "), in-edges " << edgesBefore << " -> " << edgesAfter
     << " (reduction removed " << edgesRemoved << ")";
  return os.str();
}

OptimizeStats optimize(codegen::TaskProgram& program,
                       const OptimizeOptions& options) {
  trace::Span span("opt.optimize");
  OptimizeStats stats;
  stats.tasksBefore = stats.tasksAfter = program.tasks.size();
  stats.edgesBefore = stats.edgesAfter = countEdges(program);
  if (!options.enabled)
    return stats;
  if (options.transitiveReduction) {
    trace::Span pass("opt.transitive_reduction");
    stats.edgesRemoved = transitiveReduce(program);
  }
  if (options.fusionWidth > 1) {
    trace::Span pass("opt.chain_fusion");
    stats.tasksFused = fuseChains(program, options.fusionWidth);
  }
  stats.tasksAfter = program.tasks.size();
  stats.edgesAfter = countEdges(program);
  trace::counter("opt.edges_removed",
                 static_cast<double>(stats.edgesBefore - stats.edgesAfter));
  trace::counter("opt.tasks_fused", static_cast<double>(stats.tasksFused));
  return stats;
}

bool SlotTable::compatibleWith(const codegen::TaskProgram& program) const {
  const std::size_t n = program.tasks.size();
  if (numSlots != n || inOffsets.size() != n + 1)
    return false;
  if (!inOffsets.empty() &&
      (inOffsets.front() != 0 || inOffsets.back() != inSlots.size()))
    return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (inOffsets[i] > inOffsets[i + 1])
      return false;
    if (inCount(i) != program.tasks[i].in.size())
      return false;
    for (const std::uint32_t* s = inBegin(i); s != inEnd(i); ++s)
      if (*s >= i)
        return false;
  }
  return true;
}

SlotTable buildSlotTable(const codegen::TaskProgram& program) {
  trace::Span span("opt.slot_table");
  PredLists lists = resolvePredecessors(program);
  SlotTable table;
  table.numSlots = static_cast<std::uint32_t>(program.tasks.size());
  table.inSlots = std::move(lists.preds);
  table.inOffsets = std::move(lists.offsets);
  return table;
}

} // namespace pipoly::opt
