#pragma once

// Task-graph optimization — a pass over codegen::TaskProgram that runs
// between compilePipeline() and execution. The raw eq.-4 lowering emits
// one task per block with every derived dependency edge; this module
// legally thins that graph before any backend sees it:
//
//   1. Transitive reduction — drop every in-dependency already implied by
//      the happens-before closure of the remaining edges. Chain-ordered
//      programs especially re-name edges the funcCount chain already
//      enforces (a cross-statement edge to a source block that an earlier
//      same-statement block, reachable through the chain, already waited
//      for). The closure of the reduced graph is *identical* to the
//      original, so every execution order legal before stays legal and
//      vice versa; only the OpenMP depend lists / threadpool resolve work
//      shrink.
//
//   2. Chain fusion — collapse runs of adjacent same-statement tasks
//      where the predecessor has exactly one dependent and the successor
//      exactly one in-dependency (on that predecessor) into one fused
//      task with concatenated iteration lists. Such a pair admits no
//      schedule in which anything runs between them usefully — the
//      successor could never start before the predecessor finished, and
//      nothing else waits on the predecessor — so fusing changes no
//      happens-before fact at block granularity. `fusionWidth` bounds the
//      run length so the fill/drain overlap of the pipeline (Fig. 10) is
//      preserved.
//
//   3. Dependency-slot interning (SlotTable) — out-dependency tags are
//      unique per task (validated), so every live (idx, tag) pair can be
//      interned to the dense uint32 id of its producing task. Backends
//      that honour TaskingLayer::reserveDependencySlots then resolve
//      dependencies with O(1) array indexing instead of
//      std::map<std::pair<int, int64>> lookups; the simulator does the
//      same through the precomputed producer lists.
//
// Legality argument, in one line: (1) preserves the happens-before
// closure by construction, (2) only merges pairs already totally ordered
// with no external observer of the intermediate state, (3) renames
// without reordering. The property test (tests/opt_test.cpp) checks
// closure equality at block granularity for all three combined.

#include "codegen/task_program.hpp"
#include "pipeline/comm.hpp"
#include "runtime/placement.hpp"
#include "runtime/topology.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pipoly::opt {

struct OptimizeOptions {
  /// Master switch. When false, optimize() is a no-op and the program is
  /// bit-identical to the legacy (unoptimized) lowering.
  bool enabled = true;
  /// Pass 1: drop transitively-implied in-dependency edges.
  bool transitiveReduction = true;
  /// Pass 2: maximum number of original tasks merged into one fused
  /// task. 1 disables fusion; the default keeps tasks small enough that
  /// the pipeline's fill/drain overlap survives.
  std::size_t fusionWidth = 8;
  /// Placement-aware mode: when set, the passes are scored by the bytes
  /// the optimized program moves on the *placed* topology (class-weighted
  /// cross-worker bytes, the channel partitioner's objective), not by
  /// edge count alone — removing ten 1-byte edges is no longer "better"
  /// than removing one cross-socket megabyte. The per-edge bytes come
  /// from this communication analysis (borrowed for the optimize() call).
  const pipeline::CommInfo* comm = nullptr;
  /// Topology the scoring places onto. Unset = uma over one worker per
  /// stage (the score then degenerates to total cross-stage bytes).
  std::optional<rt::Topology> topology;
  /// λ of the scoring placement objective (rt::PlacementOptions).
  double placementLambda = 1.0;
};

struct OptimizeStats {
  std::size_t tasksBefore = 0;
  std::size_t tasksAfter = 0;
  std::size_t edgesBefore = 0; // in-dependency edges
  std::size_t edgesAfter = 0;
  std::size_t edgesRemoved = 0; // by transitive reduction alone
  std::size_t tasksFused = 0;   // original tasks folded into a neighbour

  /// Placement-aware mode only (OptimizeOptions::comm set): the
  /// partitioner's communication objective — bytes × cost class summed
  /// over cross-worker channel edges of the placed program — before and
  /// after the passes, plus the raw cross-domain byte counts. "Moved"
  /// is per streamed batch, like EdgeComm::totalBytes.
  double placedCommCostBefore = 0.0;
  double placedCommCostAfter = 0.0;
  std::uint64_t crossDomainBytesBefore = 0;
  std::uint64_t crossDomainBytesAfter = 0;

  double edgeReductionPercent() const;
  double taskReductionPercent() const;
  std::string toString() const;
};

/// Runs the configured passes in place. With options.enabled == false the
/// program is left untouched (stats then report the unchanged counts).
/// The optimized program still satisfies TaskProgram::validate(): the
/// same-statement funcCount chain is never removed under chainOrdering,
/// tasks stay creation-ordered, and iterations still partition domains.
OptimizeStats optimize(codegen::TaskProgram& program,
                       const OptimizeOptions& options = {});

/// Dense dependency-slot interning of a (possibly optimized) program.
/// Slot ids are the producing task ids: out tags are unique per task and
/// every in-dependency names some earlier task's out tag, so task ids
/// are exactly the live slots, numbered densely in creation order.
struct SlotTable {
  std::uint32_t numSlots = 0;           // == program.tasks.size()
  std::vector<std::uint32_t> inSlots;   // flattened producer slots
  std::vector<std::uint32_t> inOffsets; // per task: [k], [k+1]) into inSlots

  /// Producer slots of task `id`'s in-dependencies.
  const std::uint32_t* inBegin(std::size_t id) const {
    return inSlots.data() + inOffsets[id];
  }
  const std::uint32_t* inEnd(std::size_t id) const {
    return inSlots.data() + inOffsets[id + 1];
  }
  std::size_t inCount(std::size_t id) const {
    return inOffsets[id + 1] - inOffsets[id];
  }

  /// True when this table could have been built from `program`: one slot
  /// per task, per-task dependency counts matching, and every interned
  /// producer slot naming an *earlier* task. O(tasks + edges). Lets a
  /// table built once be reused across executions (the slot-table
  /// executeTaskProgram overload and CompiledPipeline both check this
  /// instead of rebuilding the table per run).
  bool compatibleWith(const codegen::TaskProgram& program) const;
};

/// Interns every (idx, tag) pair of the program. O(tasks + edges).
SlotTable buildSlotTable(const codegen::TaskProgram& program);

} // namespace pipoly::opt
