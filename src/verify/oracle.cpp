#include "verify/oracle.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pipoly::verify {

InterpretedKernel::InterpretedKernel(const scop::Scop& scop) : scop_(&scop) {
  arrays_.reserve(scop.arrays().size());
  for (const scop::Array& a : scop.arrays()) {
    std::size_t size = 1;
    for (pb::Value extent : a.shape)
      size *= static_cast<std::size_t>(extent);
    arrays_.emplace_back(size);
  }
  reset();
}

void InterpretedKernel::reset() {
  for (std::size_t a = 0; a < arrays_.size(); ++a)
    for (std::size_t i = 0; i < arrays_[a].size(); ++i)
      arrays_[a][i] = hashCombine(0x9042'1fb2'55aa'11eeULL + a, i);
}

std::size_t InterpretedKernel::flatten(const scop::Array& arr,
                                       const pb::Tuple& subs) {
  std::size_t flat = 0;
  for (std::size_t d = 0; d < subs.size(); ++d)
    flat = flat * static_cast<std::size_t>(arr.shape[d]) +
           static_cast<std::size_t>(subs[d]);
  return flat;
}

template <typename Fn>
void InterpretedKernel::forEachElement(const scop::Access& access,
                                       const pb::Tuple& iteration, Fn&& fn) {
  const scop::Array& arr = scop_->array(access.arrayId);
  if (access.numAuxDims() == 0) {
    fn(access.arrayId, flatten(arr, access.subscripts.evaluate(iteration)));
    return;
  }
  std::vector<pb::Value> full(iteration.begin(), iteration.end());
  full.resize(iteration.size() + access.numAuxDims(), 0);
  while (true) {
    fn(access.arrayId,
       flatten(arr, access.subscripts.evaluate(pb::Tuple(full))));
    std::size_t k = access.numAuxDims();
    while (k > 0) {
      --k;
      std::size_t pos = iteration.size() + k;
      if (++full[pos] < access.auxExtents[k])
        break;
      full[pos] = 0;
      if (k == 0)
        return;
    }
  }
}

void InterpretedKernel::execute(std::size_t stmtIdx,
                                const pb::Tuple& iteration) {
  const scop::Statement& stmt = scop_->statement(stmtIdx);
  std::uint64_t acc = hashCombine(0xf00d, stmtIdx);
  for (pb::Value v : iteration)
    acc = hashCombine(acc, static_cast<std::uint64_t>(v));
  for (const scop::Access& read : stmt.reads())
    forEachElement(read, iteration,
                   [&](std::size_t arrayId, std::size_t flat) {
                     acc = hashCombine(acc, arrays_[arrayId][flat]);
                   });
  for (const scop::Access& write : stmt.writes())
    forEachElement(write, iteration,
                   [&](std::size_t arrayId, std::size_t flat) {
                     arrays_[arrayId][flat] = acc;
                   });
}

std::uint64_t InterpretedKernel::fingerprint() const {
  std::uint64_t acc = 0x5eed;
  for (const auto& arr : arrays_)
    for (std::uint64_t v : arr)
      acc = hashCombine(acc, v);
  return acc;
}

std::uint64_t sequentialFingerprint(const scop::Scop& scop) {
  InterpretedKernel kernel(scop);
  tasking::executeSequential(scop, kernel.executor());
  return kernel.fingerprint();
}

VerifyResult selfCheck(const scop::Scop& scop,
                       const codegen::TaskProgram& program,
                       tasking::TaskingLayer& layer, int repetitions) {
  PIPOLY_CHECK(repetitions >= 1);
  VerifyResult result;
  result.backend = std::string(layer.name());
  result.expected = sequentialFingerprint(scop);
  result.ok = true;
  for (int rep = 0; rep < repetitions; ++rep) {
    InterpretedKernel kernel(scop);
    tasking::executeTaskProgram(program, layer, kernel.executor());
    result.actual = kernel.fingerprint();
    result.ok = result.ok && result.actual == result.expected;
  }
  return result;
}

} // namespace pipoly::verify
