#pragma once

// Semantic verification oracle. Executes a SCoP with "interpreted"
// statement bodies: each dynamic instance hash-combines the values it
// reads (per the declared accesses) with its statement id and iteration
// vector and stores the result at its write locations. Any dependence
// violation in a parallel run perturbs the final contents with
// overwhelming probability, so fingerprint equality against the
// sequential execution is a strong end-to-end correctness check for a
// compiled task program — usable by downstream integrations, the test
// suite and pipolyc's --verify.

#include "codegen/task_program.hpp"
#include "scop/scop.hpp"
#include "tasking/executor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace pipoly::verify {

class InterpretedKernel {
public:
  explicit InterpretedKernel(const scop::Scop& scop);

  /// Re-initialises every array element deterministically.
  void reset();

  /// Executes one dynamic instance (thread-safe across instances that are
  /// independent under the declared accesses).
  void execute(std::size_t stmtIdx, const pb::Tuple& iteration);

  tasking::StatementExecutor executor() {
    return [this](std::size_t stmtIdx, const pb::Tuple& it) {
      execute(stmtIdx, it);
    };
  }

  /// Fingerprint of all array contents.
  std::uint64_t fingerprint() const;

private:
  template <typename Fn>
  void forEachElement(const scop::Access& access, const pb::Tuple& iteration,
                      Fn&& fn);
  static std::size_t flatten(const scop::Array& arr, const pb::Tuple& subs);

  const scop::Scop* scop_;
  std::vector<std::vector<std::uint64_t>> arrays_;
};

/// Fingerprint after a plain sequential run.
std::uint64_t sequentialFingerprint(const scop::Scop& scop);

struct VerifyResult {
  bool ok = false;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
  std::string backend;
};

/// Runs `program` on `layer` with interpreted bodies and compares against
/// the sequential execution. `repetitions` > 1 re-runs the parallel
/// execution to better expose races.
VerifyResult selfCheck(const scop::Scop& scop,
                       const codegen::TaskProgram& program,
                       tasking::TaskingLayer& layer, int repetitions = 1);

} // namespace pipoly::verify
