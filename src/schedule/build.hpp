#pragma once

// Algorithm 2 — schedule-tree computation. For every statement S:
//
//   D_Σ  = Domain(Σ_S)   (all iterations)
//   R_Σ  = Range(Σ_S)    (block representatives)
//
//   sch1 = domain(R_Σ) ∘ band(identity(R_Σ))        — iterate over blocks
//   sch2 = domain(D_Σ) ∘ mark(Q_S, Q_S^out)
//                      ∘ band(identity(D_Σ))        — iterate inside blocks
//   sch_S = expand(sch1, sch2, contraction = Σ_S)
//
// and the final schedule is sequence(sch_S for all S in the SCoP).

#include "pipeline/detect.hpp"
#include "schedule/tree.hpp"
#include "scop/scop.hpp"

#include <memory>

namespace pipoly::sched {

/// Builds the expanded schedule tree of one statement (Algorithm 2 body).
std::unique_ptr<ScheduleNode>
buildStatementSchedule(const scop::Scop& scop,
                       const pipeline::PipelineInfo& info,
                       std::size_t stmtIdx);

/// Algorithm 2: the full pipelined schedule — a sequence over all
/// statements' expanded trees.
std::unique_ptr<ScheduleNode>
buildPipelineSchedule(const scop::Scop& scop,
                      const pipeline::PipelineInfo& info);

/// The original (untransformed) schedule the SCoP comes with: a sequence
/// of per-statement domain+band subtrees iterating each nest in source
/// order — what Polly's input schedule looks like before the pipeline
/// transformation. Useful as the before-side of before/after displays.
std::unique_ptr<ScheduleNode> buildOriginalSchedule(const scop::Scop& scop);

/// Structural validation of a pipelined schedule tree: per statement
/// subtree, checks the domain/band/expansion/mark/band/leaf chain and that
/// the contraction is consistent with the band domains. Throws on
/// violation.
void validatePipelineSchedule(const ScheduleNode& root,
                              const scop::Scop& scop);

/// Interprets a pipelined schedule tree: the sequence of dynamic
/// statement instances it prescribes when executed serially (sequence
/// children in order; per statement, blocks in the outer band's
/// lexicographic order and block members in the inner band's order).
/// Independent of codegen; tests use it to check that Algorithm 2
/// preserves each statement's original iteration order.
std::vector<std::pair<std::size_t, pb::Tuple>>
flattenExecutionOrder(const ScheduleNode& root);

} // namespace pipoly::sched
