#pragma once

// Schedule trees (§3.1, §5.2) — the isl-style tree representation of
// execution orders, restricted to the node types the paper uses: domain,
// band, sequence, mark, expansion and leaf nodes.
//
// Band nodes carry a partial schedule (an IntMap from domain elements to
// schedule time); in Algorithm 2 these are identity maps, meaning
// "iterate this set in lexicographic order".

#include "pipeline/detect.hpp"
#include "presburger/map.hpp"
#include "presburger/set.hpp"

#include <memory>
#include <string>
#include <vector>

namespace pipoly::sched {

enum class NodeKind { Domain, Band, Sequence, Mark, Expansion, Leaf };

std::string_view nodeKindName(NodeKind kind);

/// The payload of the mark node Algorithm 2 inserts above the intra-block
/// band: the dependency information of the statement's tasks (the
/// pw_multi_aff_list / pw_multi_aff pair of §5.2 in explicit form).
struct PipelineMark {
  std::size_t stmtIdx = 0;
  std::vector<pipeline::InRequirement> inRequirements;
  pb::IntMap outDependency;
  /// Same-nest ordering mode and (when relaxed) the cross-block
  /// self-dependence edges; see StatementPipelineInfo.
  bool chainOrdering = true;
  pb::IntMap selfEdges;
  /// Reduction relaxation of this statement; see StatementPipelineInfo.
  pipeline::ReductionInfo reduction;
};

class ScheduleNode {
public:
  static std::unique_ptr<ScheduleNode> domain(pb::IntTupleSet set);
  static std::unique_ptr<ScheduleNode> band(pb::IntMap partialSchedule);
  static std::unique_ptr<ScheduleNode> sequence();
  static std::unique_ptr<ScheduleNode> mark(std::string id, PipelineMark info);
  /// contraction maps expanded (inner) domain elements to the elements of
  /// the outer schedule (Σ_S in Algorithm 2).
  static std::unique_ptr<ScheduleNode> expansion(pb::IntMap contraction);
  static std::unique_ptr<ScheduleNode> leaf();

  NodeKind kind() const { return kind_; }

  ScheduleNode& addChild(std::unique_ptr<ScheduleNode> child);
  std::size_t numChildren() const { return children_.size(); }
  const ScheduleNode& child(std::size_t i) const { return *children_.at(i); }
  ScheduleNode& child(std::size_t i) { return *children_.at(i); }

  // Payload accessors; each checks the node kind.
  const pb::IntTupleSet& domainSet() const;
  const pb::IntMap& partialSchedule() const;
  const std::string& markId() const;
  const PipelineMark& markInfo() const;
  const pb::IntMap& contraction() const;

  /// Depth-first search for the first mark node with the given id under
  /// this node (inclusive); nullptr when absent.
  const ScheduleNode* findMark(std::string_view id) const;

  std::string toString(int indent = 0) const;

private:
  explicit ScheduleNode(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::vector<std::unique_ptr<ScheduleNode>> children_;

  pb::IntTupleSet domain_;
  pb::IntMap map_; // band partial schedule or expansion contraction
  std::string markId_;
  PipelineMark markInfo_{};
};

/// Identifier of the mark nodes Algorithm 2 inserts.
inline constexpr std::string_view kPipelineMarkId = "pipeline";

} // namespace pipoly::sched
