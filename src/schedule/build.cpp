#include "schedule/build.hpp"

#include "support/assert.hpp"

namespace pipoly::sched {

std::unique_ptr<ScheduleNode>
buildStatementSchedule(const scop::Scop& scop,
                       const pipeline::PipelineInfo& info,
                       std::size_t stmtIdx) {
  const pipeline::StatementPipelineInfo& st = info.statements.at(stmtIdx);
  const pb::IntTupleSet rangeSigma = st.blockReps;          // R_Σ
  const pb::IntTupleSet domainSigma = st.blocking.domain(); // D_Σ
  PIPOLY_CHECK_MSG(domainSigma == scop.statement(stmtIdx).domain(),
                   "pipeline info does not match the SCoP");

  // sch1: domain(R_Σ) -> band(identity(R_Σ)) — the loops over blocks.
  auto root = ScheduleNode::domain(rangeSigma);
  ScheduleNode* cursor =
      &root->addChild(ScheduleNode::band(pb::IntMap::identity(rangeSigma)));

  // expand(sch1, sch2, Σ): the expansion node splices sch2 (the intra-block
  // schedule) under sch1 with Σ as the contraction.
  cursor = &cursor->addChild(ScheduleNode::expansion(st.blocking));

  // sch2: mark(Q_S, Q_S^out) -> band(identity(D_Σ)). The mark sits before
  // the intra-block band so the AST phase can locate the pipeline loop.
  PipelineMark mark{stmtIdx, st.inRequirements, st.outDependency,
                    st.chainOrdering, st.selfEdges, st.reduction};
  cursor = &cursor->addChild(
      ScheduleNode::mark(std::string(kPipelineMarkId), std::move(mark)));
  cursor = &cursor->addChild(
      ScheduleNode::band(pb::IntMap::identity(domainSigma)));
  cursor->addChild(ScheduleNode::leaf());
  return root;
}

std::unique_ptr<ScheduleNode>
buildPipelineSchedule(const scop::Scop& scop,
                      const pipeline::PipelineInfo& info) {
  PIPOLY_CHECK(info.statements.size() == scop.numStatements());
  auto seq = ScheduleNode::sequence();
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    seq->addChild(buildStatementSchedule(scop, info, s));
  return seq;
}

std::unique_ptr<ScheduleNode> buildOriginalSchedule(const scop::Scop& scop) {
  auto seq = ScheduleNode::sequence();
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const pb::IntTupleSet& domain = scop.statement(s).domain();
    ScheduleNode& d = seq->addChild(ScheduleNode::domain(domain));
    ScheduleNode& band =
        d.addChild(ScheduleNode::band(pb::IntMap::identity(domain)));
    band.addChild(ScheduleNode::leaf());
  }
  return seq;
}

namespace {

void validateStatementSubtree(const ScheduleNode& node, const scop::Scop& scop,
                              std::size_t stmtIdx) {
  PIPOLY_CHECK_MSG(node.kind() == NodeKind::Domain,
                   "statement subtree must start with a domain node");
  const pb::IntTupleSet& blockReps = node.domainSet();

  const ScheduleNode& blockBand = node.child(0);
  PIPOLY_CHECK(blockBand.kind() == NodeKind::Band);
  PIPOLY_CHECK_MSG(blockBand.partialSchedule().domain() == blockReps,
                   "block band must schedule exactly the block reps");

  const ScheduleNode& expansion = blockBand.child(0);
  PIPOLY_CHECK(expansion.kind() == NodeKind::Expansion);
  const pb::IntMap& contraction = expansion.contraction();
  PIPOLY_CHECK_MSG(contraction.range() == blockReps,
                   "contraction must map onto the block reps");
  PIPOLY_CHECK_MSG(contraction.domain() == scop.statement(stmtIdx).domain(),
                   "contraction must cover the statement domain");

  const ScheduleNode& mark = expansion.child(0);
  PIPOLY_CHECK(mark.kind() == NodeKind::Mark);
  PIPOLY_CHECK(mark.markId() == kPipelineMarkId);
  PIPOLY_CHECK(mark.markInfo().stmtIdx == stmtIdx);

  const ScheduleNode& innerBand = mark.child(0);
  PIPOLY_CHECK(innerBand.kind() == NodeKind::Band);
  PIPOLY_CHECK_MSG(innerBand.partialSchedule().domain() ==
                       scop.statement(stmtIdx).domain(),
                   "inner band must schedule the full iteration domain");

  PIPOLY_CHECK(innerBand.child(0).kind() == NodeKind::Leaf);
}

} // namespace

void validatePipelineSchedule(const ScheduleNode& root,
                              const scop::Scop& scop) {
  PIPOLY_CHECK_MSG(root.kind() == NodeKind::Sequence,
                   "pipelined schedule must be rooted at a sequence node");
  PIPOLY_CHECK_MSG(root.numChildren() == scop.numStatements(),
                   "sequence must have one child per statement");
  for (std::size_t s = 0; s < root.numChildren(); ++s)
    validateStatementSubtree(root.child(s), scop, s);
}

std::vector<std::pair<std::size_t, pb::Tuple>>
flattenExecutionOrder(const ScheduleNode& root) {
  PIPOLY_CHECK(root.kind() == NodeKind::Sequence);
  std::vector<std::pair<std::size_t, pb::Tuple>> order;
  for (std::size_t s = 0; s < root.numChildren(); ++s) {
    const ScheduleNode& domainNode = root.child(s);
    PIPOLY_CHECK(domainNode.kind() == NodeKind::Domain);
    const ScheduleNode& blockBand = domainNode.child(0);
    const ScheduleNode& expansion = blockBand.child(0);
    const ScheduleNode& mark = expansion.child(0);
    const std::size_t stmtIdx = mark.markInfo().stmtIdx;

    // The outer band schedules block reps with an identity partial
    // schedule: walk its domain in lexicographic (= schedule) order and
    // expand each block through the contraction's inverse, again in the
    // inner band's lexicographic order.
    const pb::IntMap expand = expansion.contraction().inverse();
    const pb::IntTupleSet blockOrder = blockBand.partialSchedule().domain();
    for (const pb::Tuple& rep : blockOrder.points())
      for (const pb::Tuple& it : expand.imagesOf(rep))
        order.emplace_back(stmtIdx, it);
  }
  return order;
}

} // namespace pipoly::sched
