#include "schedule/tree.hpp"

#include "support/assert.hpp"

#include <sstream>

namespace pipoly::sched {

std::string_view nodeKindName(NodeKind kind) {
  switch (kind) {
  case NodeKind::Domain:
    return "domain";
  case NodeKind::Band:
    return "band";
  case NodeKind::Sequence:
    return "sequence";
  case NodeKind::Mark:
    return "mark";
  case NodeKind::Expansion:
    return "expansion";
  case NodeKind::Leaf:
    return "leaf";
  }
  PIPOLY_UNREACHABLE("node kind");
}

std::unique_ptr<ScheduleNode> ScheduleNode::domain(pb::IntTupleSet set) {
  auto n = std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Domain));
  n->domain_ = std::move(set);
  return n;
}

std::unique_ptr<ScheduleNode> ScheduleNode::band(pb::IntMap partialSchedule) {
  auto n = std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Band));
  n->map_ = std::move(partialSchedule);
  return n;
}

std::unique_ptr<ScheduleNode> ScheduleNode::sequence() {
  return std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Sequence));
}

std::unique_ptr<ScheduleNode> ScheduleNode::mark(std::string id,
                                                 PipelineMark info) {
  auto n = std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Mark));
  n->markId_ = std::move(id);
  n->markInfo_ = std::move(info);
  return n;
}

std::unique_ptr<ScheduleNode> ScheduleNode::expansion(pb::IntMap contraction) {
  auto n = std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Expansion));
  n->map_ = std::move(contraction);
  return n;
}

std::unique_ptr<ScheduleNode> ScheduleNode::leaf() {
  return std::unique_ptr<ScheduleNode>(new ScheduleNode(NodeKind::Leaf));
}

ScheduleNode& ScheduleNode::addChild(std::unique_ptr<ScheduleNode> child) {
  PIPOLY_CHECK_MSG(kind_ != NodeKind::Leaf, "leaf nodes have no children");
  PIPOLY_CHECK_MSG(kind_ == NodeKind::Sequence || children_.empty(),
                   "only sequence nodes may have multiple children");
  children_.push_back(std::move(child));
  return *children_.back();
}

const pb::IntTupleSet& ScheduleNode::domainSet() const {
  PIPOLY_CHECK(kind_ == NodeKind::Domain);
  return domain_;
}

const pb::IntMap& ScheduleNode::partialSchedule() const {
  PIPOLY_CHECK(kind_ == NodeKind::Band);
  return map_;
}

const std::string& ScheduleNode::markId() const {
  PIPOLY_CHECK(kind_ == NodeKind::Mark);
  return markId_;
}

const PipelineMark& ScheduleNode::markInfo() const {
  PIPOLY_CHECK(kind_ == NodeKind::Mark);
  return markInfo_;
}

const pb::IntMap& ScheduleNode::contraction() const {
  PIPOLY_CHECK(kind_ == NodeKind::Expansion);
  return map_;
}

const ScheduleNode* ScheduleNode::findMark(std::string_view id) const {
  if (kind_ == NodeKind::Mark && markId_ == id)
    return this;
  for (const auto& c : children_)
    if (const ScheduleNode* found = c->findMark(id))
      return found;
  return nullptr;
}

std::string ScheduleNode::toString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << nodeKindName(kind_);
  switch (kind_) {
  case NodeKind::Domain:
    os << " |set|=" << domain_.size() << " space=" << domain_.space().name();
    break;
  case NodeKind::Band:
    os << " |sched|=" << map_.size();
    break;
  case NodeKind::Mark:
    os << " \"" << markId_ << "\" stmt=" << markInfo_.stmtIdx
       << " inDeps=" << markInfo_.inRequirements.size();
    break;
  case NodeKind::Expansion:
    os << " |contraction|=" << map_.size();
    break;
  default:
    break;
  }
  os << '\n';
  for (const auto& c : children_)
    os << c->toString(indent + 1);
  return os.str();
}

} // namespace pipoly::sched
