#pragma once

// Deterministic, seedable PRNG used by tests, property sweeps and the
// synthetic compute kernels. We deliberately avoid std::mt19937 so that
// the benchmark workloads are bit-identical across standard libraries.

#include <cstdint>

namespace pipoly {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform value in [lo, hi] (inclusive).
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

private:
  std::uint64_t state_;
};

/// Stateless mixing of an arbitrary number of integers into one hash.
/// Used to derive per-instance seeds from iteration vectors.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) noexcept {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

} // namespace pipoly
