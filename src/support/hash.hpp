#pragma once

// Hashing for the hot dependency-slot tables. The backends, the simulator
// and the exports key state on (statement slot, linearised block tag)
// pairs; std::map kept them ordered but paid a pointer chase per level.
// The flat tables use this avalanche-mixed pair hash instead.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace pipoly {

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
inline std::uint64_t hashMix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash functor for std::pair keys (e.g. the (idx, tag) dependency slots
/// or (function pointer, count) funcCount slots).
struct PairHash {
  template <class A, class B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    const auto a = static_cast<std::uint64_t>(std::hash<A>{}(p.first));
    const auto b = static_cast<std::uint64_t>(std::hash<B>{}(p.second));
    return static_cast<std::size_t>(
        hashMix64(a ^ (b * 0x9e3779b97f4a7c15ULL)));
  }
};

} // namespace pipoly
