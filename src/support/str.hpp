#pragma once

// Small string helpers shared by the printers and benchmark tables.

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace pipoly {

/// Joins the elements of a range with a separator, using operator<<.
template <typename Range>
std::string join(const Range& range, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first)
      os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Splits on a single-character separator; keeps empty fields.
inline std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

inline std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
    ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
    --e;
  return std::string(s.substr(b, e - b));
}

} // namespace pipoly
