#pragma once

// Always-on checked assertions for library invariants.
//
// PIPOLY_CHECK is used for conditions that guard correctness of the
// polyhedral computations (they stay on in release builds: a silently
// wrong dependence analysis is far worse than a small branch cost).
// PIPOLY_ASSERT is a debug-only assertion for hot paths.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pipoly {

/// Exception thrown on any violated library invariant or misuse of the API.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* cond, const std::string& msg,
                                     const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << cond;
  if (!msg.empty())
    os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace pipoly

#define PIPOLY_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pipoly::detail::checkFailed(#cond, {}, std::source_location::current()); \
  } while (0)

#define PIPOLY_CHECK_MSG(cond, msg)                                            \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pipoly::detail::checkFailed(#cond, (msg),                              \
                                    std::source_location::current());          \
  } while (0)

#ifdef NDEBUG
#define PIPOLY_ASSERT(cond) ((void)0)
#else
#define PIPOLY_ASSERT(cond) PIPOLY_CHECK(cond)
#endif

#define PIPOLY_UNREACHABLE(msg)                                                \
  ::pipoly::detail::checkFailed("unreachable", (msg),                          \
                                std::source_location::current())
