#pragma once

// Flat metrics summary distilled from a drained Trace: per-span-name
// duration statistics, per-counter-name sample statistics and instant
// counts. The JSON serialization is intentionally restricted (fixed key
// order, integers for durations) so it round-trips exactly through
// parseMetricsJson — the property the metrics tests pin down.

#include "trace/trace.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace pipoly::trace {

struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t totalNanos = 0;
  std::int64_t minNanos = 0;
  std::int64_t maxNanos = 0;

  bool operator==(const SpanStat&) const = default;
};

struct CounterStat {
  std::string name;
  std::uint64_t count = 0; // samples
  double last = 0.0;       // value of the latest sample (by timestamp)
  double max = 0.0;

  bool operator==(const CounterStat&) const = default;
};

struct InstantStat {
  std::string name;
  std::uint64_t count = 0;

  bool operator==(const InstantStat&) const = default;
};

struct MetricsSummary {
  std::vector<SpanStat> spans;       // sorted by name
  std::vector<CounterStat> counters; // sorted by name
  std::vector<InstantStat> instants; // sorted by name

  bool operator==(const MetricsSummary&) const = default;
};

/// Aggregates span durations (matching Begin/End per thread — drained
/// traces are balanced by construction), counter samples and instants
/// across all threads, keyed by event name.
MetricsSummary summarizeTrace(const Trace& trace);

/// Serializes a summary as JSON.
std::string toJson(const MetricsSummary& summary);

/// Parses the exact JSON produced by toJson (round-trip inverse).
/// Throws pipoly::Error on malformed input.
MetricsSummary parseMetricsJson(const std::string& json);

} // namespace pipoly::trace
