#pragma once

// Structured tracing & metrics — the observability substrate every layer
// of the stack emits into. The design goals, in priority order:
//
//  1. **Near-zero cost when off.** Every emit begins with one relaxed
//     atomic load of the active-session pointer; with no session active
//     nothing else happens — no allocation, no lock, no clock read. This
//     is what lets the compile passes and the runtime keep their probes
//     compiled in unconditionally (bench_micro's detect numbers budget
//     <=1% for the disabled probes).
//
//  2. **No cross-thread contention when on.** Each thread appends raw
//     events to its own thread-local buffer; buffers register themselves
//     with the session on a thread's first event and are drained only at
//     Session::stop(). Threads never contend on a shared event sink.
//
//  3. **Race-free teardown without a thread registry.** stop() retires
//     the global session pointer and then waits out a grace period on a
//     global in-flight counter (emitters bracket their work with
//     fetch_add/fetch_sub): any emit that saw the session completes
//     before the drain starts, and any emit that starts after the
//     retirement sees no session and backs off. This makes it safe to
//     trace threads the session does not own — pool workers that keep
//     running (and parking/unparking) after the traced region ended.
//
// Event model: Begin/End span pairs (thread-scoped, nestable), Instant
// markers, and Counter samples. Spans left open when the session stops
// are closed at the stop timestamp; stray End events (from a session
// started mid-span) are dropped — a drained Trace always has balanced,
// per-thread-monotone Begin/End pairs, which the exporters and the
// schema tests rely on.
//
// Concurrency contract: at most one Session is active at a time
// (start() enforces it); start()/stop() may be called from any one
// thread; emits may come from any thread at any moment.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pipoly::trace {

/// Sentinel for "no argument" on spans and instants.
inline constexpr std::int64_t kNoArg = -1;

enum class EventKind : std::uint8_t { Begin, End, Instant, Counter };

/// One drained event. `tid` is the dense per-session thread index (the
/// order threads first emitted); `tsNanos` is steady-clock time since
/// Session::start().
struct TraceEvent {
  EventKind kind = EventKind::Instant;
  std::string name;
  std::int64_t arg = kNoArg; // optional payload (task index, unit index)
  std::int64_t tsNanos = 0;
  std::uint64_t tid = 0;
  double value = 0.0; // counters only

  bool operator==(const TraceEvent&) const = default;
};

/// A trace track: one per thread that emitted during the session, plus
/// any synthetic tracks appended afterwards (the simulator's predicted
/// timeline). `pid` groups tracks into processes in the Chrome viewer.
struct ThreadInfo {
  std::string name;
  int pid = 1;

  bool operator==(const ThreadInfo&) const = default;
};

/// The drained, post-session form of a trace: events grouped by tid (in
/// per-thread emission order, timestamps monotone within a tid).
struct Trace {
  std::vector<TraceEvent> events;
  std::vector<ThreadInfo> threads; // indexed by tid
};

class Session {
public:
  Session() = default;
  ~Session(); // stops the session if still active

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Installs this session as the process-wide active one and starts the
  /// clock. Throws pipoly::Error if another session is active.
  void start();

  /// Retires the session, waits for in-flight emits, drains every thread
  /// buffer and normalizes the result (balanced spans, dense tids).
  /// Idempotent; a session cannot be restarted after stop().
  void stop();

  bool isActive() const;

  /// The drained trace. Valid after stop().
  const Trace& trace() const { return trace_; }
  Trace& trace() { return trace_; }

private:
  friend void detail_record(Session* s, EventKind kind, const char* name,
                            std::int64_t arg, double value);

  struct RawEvent {
    EventKind kind;
    const char* name; // static string, always non-null
    std::int64_t arg;
    std::int64_t tsNanos;
    double value;
  };

  /// Single-writer append buffer; the owning thread is the only mutator
  /// while the session is active, the stopping thread the only reader
  /// after the grace period — the in-flight counter orders the two.
  struct ThreadBuffer {
    std::vector<RawEvent> events;
    std::string threadName;
  };

  void record(EventKind kind, const char* name, std::int64_t arg,
              double value);
  ThreadBuffer* registerThisThread();

  std::chrono::steady_clock::time_point begin_{};
  std::uint64_t epoch_ = 0; // unique per start(), keys the TLS cache
  bool started_ = false;
  bool stopped_ = false;

  std::mutex registryMutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_; // guarded by mutex

  Trace trace_; // populated by stop()
};

/// True while a session is active. One relaxed atomic load — callers may
/// use it to skip argument construction, but every emit function below
/// performs the check itself.
bool enabled();

/// Names the calling thread for all traces it subsequently appears in
/// (sticky thread-local state, not tied to any session). Threads that
/// never call this appear as "thread-<tid>".
void setThreadName(std::string name);

// Emit functions. All are no-ops (one relaxed load) without an active
// session and safe to call from any thread at any time.
void beginSpan(const char* name, std::int64_t arg = kNoArg);
void endSpan(const char* name, std::int64_t arg = kNoArg);
void instant(const char* name, std::int64_t arg = kNoArg);
void counter(const char* name, double value);

/// RAII Begin/End pair. The name must be a static string (it is stored
/// by pointer until the session drains).
class Span {
public:
  explicit Span(const char* name, std::int64_t arg = kNoArg)
      : name_(name), arg_(arg) {
    beginSpan(name_, arg_);
  }
  ~Span() { endSpan(name_, arg_); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  const char* name_;
  std::int64_t arg_;
};

} // namespace pipoly::trace
