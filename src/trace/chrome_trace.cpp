#include "trace/chrome_trace.hpp"

#include "support/assert.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>

namespace pipoly::trace {

namespace {

/// Microsecond timestamp with fixed sub-microsecond precision — fixed
/// format keeps the output stable for the golden tests.
std::string micros(std::int64_t nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", nanos / 1000,
                static_cast<int>(nanos % 1000));
  return buf;
}

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

} // namespace

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\r':
      out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string toChromeJson(const Trace& trace) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  auto line = [&]() -> std::ostringstream& {
    if (!first)
      os << ",\n";
    first = false;
    return os;
  };

  // Metadata: one process_name per distinct pid, one thread_name per tid.
  std::set<int> pids;
  for (const ThreadInfo& t : trace.threads)
    pids.insert(t.pid);
  for (int pid : pids)
    line() << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
           << ", \"tid\": 0, \"args\": {\"name\": \""
           << (pid == 1 ? "pipoly" : "predicted (simulator)") << "\"}}";
  for (std::size_t tid = 0; tid < trace.threads.size(); ++tid)
    line() << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
           << trace.threads[tid].pid << ", \"tid\": " << tid
           << ", \"args\": {\"name\": \""
           << jsonEscape(trace.threads[tid].name) << "\"}}";

  for (const TraceEvent& ev : trace.events) {
    PIPOLY_CHECK_MSG(ev.tid < trace.threads.size(),
                     "trace event names an unknown thread");
    const int pid = trace.threads[ev.tid].pid;
    const char* ph = nullptr;
    switch (ev.kind) {
    case EventKind::Begin:
      ph = "B";
      break;
    case EventKind::End:
      ph = "E";
      break;
    case EventKind::Instant:
      ph = "i";
      break;
    case EventKind::Counter:
      ph = "C";
      break;
    }
    line() << "  {\"name\": \"" << jsonEscape(ev.name) << "\", \"ph\": \""
           << ph << "\", \"ts\": " << micros(ev.tsNanos)
           << ", \"pid\": " << pid << ", \"tid\": " << ev.tid;
    if (ev.kind == EventKind::Instant)
      os << ", \"s\": \"t\"";
    if (ev.kind == EventKind::Counter)
      os << ", \"args\": {\"value\": " << number(ev.value) << "}";
    else if (ev.arg != kNoArg)
      os << ", \"args\": {\"arg\": " << ev.arg << "}";
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

} // namespace pipoly::trace
