#include "trace/trace.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <thread>

namespace pipoly::trace {

namespace {

// The active session and the grace-period counter. The Dekker-style
// pairing: an emitter bumps gInFlight (seq_cst) and *then* re-reads
// gActive (seq_cst); stop() retires gActive (seq_cst) and *then* reads
// gInFlight (seq_cst). In the seq_cst total order either the emitter's
// re-read sees the retirement (it backs off without touching the
// session), or stop()'s read sees the bump (it waits for the matching
// fetch_sub, whose release pairs with the wait loop's seq_cst loads to
// publish the buffered events).
std::atomic<Session*> gActive{nullptr};
std::atomic<int> gInFlight{0};
std::atomic<std::uint64_t> gEpochCounter{0};

struct TlsCache {
  std::uint64_t epoch = 0; // matches Session::epoch_ when buffer is valid
  void* buffer = nullptr;  // Session::ThreadBuffer*, owned by the session
};
thread_local TlsCache tlsCache;
thread_local std::string tlsThreadName;

void emit(EventKind kind, const char* name, std::int64_t arg, double value) {
  if (gActive.load(std::memory_order_relaxed) == nullptr)
    return; // fast path: tracing off
  gInFlight.fetch_add(1, std::memory_order_seq_cst);
  if (Session* s = gActive.load(std::memory_order_seq_cst))
    detail_record(s, kind, name, arg, value);
  gInFlight.fetch_sub(1, std::memory_order_release);
}

} // namespace

void detail_record(Session* s, EventKind kind, const char* name,
                   std::int64_t arg, double value) {
  s->record(kind, name, arg, value);
}

bool enabled() {
  return gActive.load(std::memory_order_relaxed) != nullptr;
}

void setThreadName(std::string name) { tlsThreadName = std::move(name); }

void beginSpan(const char* name, std::int64_t arg) {
  emit(EventKind::Begin, name, arg, 0.0);
}
void endSpan(const char* name, std::int64_t arg) {
  emit(EventKind::End, name, arg, 0.0);
}
void instant(const char* name, std::int64_t arg) {
  emit(EventKind::Instant, name, arg, 0.0);
}
void counter(const char* name, double value) {
  emit(EventKind::Counter, name, kNoArg, value);
}

Session::~Session() {
  if (isActive())
    stop();
}

bool Session::isActive() const {
  return gActive.load(std::memory_order_relaxed) == this;
}

void Session::start() {
  PIPOLY_CHECK_MSG(!started_, "a trace::Session cannot be restarted");
  begin_ = std::chrono::steady_clock::now();
  epoch_ = gEpochCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  started_ = true;
  Session* expected = nullptr;
  PIPOLY_CHECK_MSG(
      gActive.compare_exchange_strong(expected, this,
                                      std::memory_order_seq_cst),
      "another trace::Session is already active");
}

Session::ThreadBuffer* Session::registerThisThread() {
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->threadName = tlsThreadName;
  ThreadBuffer* raw = buffer.get();
  {
    std::lock_guard lock(registryMutex_);
    buffers_.push_back(std::move(buffer));
  }
  tlsCache = TlsCache{epoch_, raw};
  return raw;
}

void Session::record(EventKind kind, const char* name, std::int64_t arg,
                     double value) {
  // The grace period (emit()'s in-flight bracket) guarantees this session
  // is not being drained, so the TLS-cached buffer pointer is safe.
  ThreadBuffer* buffer = tlsCache.epoch == epoch_
                             ? static_cast<ThreadBuffer*>(tlsCache.buffer)
                             : registerThisThread();
  const std::int64_t ts =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin_)
          .count();
  buffer->events.push_back(RawEvent{kind, name, arg, ts, value});
}

void Session::stop() {
  if (!started_ || stopped_)
    return;
  stopped_ = true;
  Session* expected = this;
  const bool wasActive = gActive.compare_exchange_strong(
      expected, nullptr, std::memory_order_seq_cst);
  PIPOLY_CHECK_MSG(wasActive, "stopping a session that is not active");
  // Grace period: any emitter that observed this session finishes its
  // append before we read the buffers.
  while (gInFlight.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();

  const std::int64_t endTs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin_)
          .count();

  std::lock_guard lock(registryMutex_);
  trace_.events.clear();
  trace_.threads.clear();
  for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
    const ThreadBuffer& buffer = *buffers_[tid];
    trace_.threads.push_back(ThreadInfo{
        buffer.threadName.empty() ? "thread-" + std::to_string(tid)
                                  : buffer.threadName,
        /*pid=*/1});
    // Normalize this thread's span structure: a stray End (its Begin
    // predates the session) is dropped; Begins left open at stop are
    // closed at the stop timestamp. Timestamps are already monotone —
    // steady_clock reads from a single thread never go backwards and the
    // buffer preserves emission order.
    std::vector<const RawEvent*> open;
    for (const RawEvent& raw : buffer.events) {
      if (raw.kind == EventKind::End) {
        if (open.empty())
          continue; // unmatched End
        open.pop_back();
      } else if (raw.kind == EventKind::Begin) {
        open.push_back(&raw);
      }
      trace_.events.push_back(TraceEvent{raw.kind, raw.name, raw.arg,
                                         raw.tsNanos, tid, raw.value});
    }
    for (std::size_t k = open.size(); k-- > 0;)
      trace_.events.push_back(TraceEvent{EventKind::End, open[k]->name,
                                         open[k]->arg, endTs, tid, 0.0});
  }
}

} // namespace pipoly::trace
