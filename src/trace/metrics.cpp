#include "trace/metrics.hpp"

#include "support/assert.hpp"
#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

namespace pipoly::trace {

MetricsSummary summarizeTrace(const Trace& trace) {
  std::map<std::string, SpanStat> spans;
  std::map<std::string, CounterStat> counters;
  std::map<std::string, InstantStat> instants;
  // Latest-sample tracking for counters (events are monotone per tid but
  // interleave across tids).
  std::map<std::string, std::int64_t> counterLastTs;

  // Per-tid stacks of open Begin events; a drained Trace is balanced per
  // tid, which stop() guarantees.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> open;
  for (const TraceEvent& ev : trace.events) {
    switch (ev.kind) {
    case EventKind::Begin:
      open[ev.tid].push_back(&ev);
      break;
    case EventKind::End: {
      auto& stack = open[ev.tid];
      PIPOLY_CHECK_MSG(!stack.empty(), "unbalanced End event in trace");
      const TraceEvent* begin = stack.back();
      stack.pop_back();
      SpanStat& s = spans[begin->name];
      const std::int64_t dur = ev.tsNanos - begin->tsNanos;
      if (s.count == 0) {
        s.name = begin->name;
        s.minNanos = s.maxNanos = dur;
      }
      s.count += 1;
      s.totalNanos += dur;
      s.minNanos = std::min(s.minNanos, dur);
      s.maxNanos = std::max(s.maxNanos, dur);
      break;
    }
    case EventKind::Instant: {
      InstantStat& s = instants[ev.name];
      s.name = ev.name;
      s.count += 1;
      break;
    }
    case EventKind::Counter: {
      CounterStat& s = counters[ev.name];
      if (s.count == 0) {
        s.name = ev.name;
        s.max = ev.value;
        counterLastTs[ev.name] = ev.tsNanos;
        s.last = ev.value;
      }
      s.count += 1;
      s.max = std::max(s.max, ev.value);
      auto& lastTs = counterLastTs[ev.name];
      if (ev.tsNanos >= lastTs) {
        lastTs = ev.tsNanos;
        s.last = ev.value;
      }
      break;
    }
    }
  }

  MetricsSummary summary;
  for (auto& [name, s] : spans)
    summary.spans.push_back(std::move(s));
  for (auto& [name, s] : counters)
    summary.counters.push_back(std::move(s));
  for (auto& [name, s] : instants)
    summary.instants.push_back(std::move(s));
  return summary;
}

namespace {

std::string numberJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

} // namespace

std::string toJson(const MetricsSummary& summary) {
  std::ostringstream os;
  os << "{\n  \"spans\": [";
  for (std::size_t i = 0; i < summary.spans.size(); ++i) {
    const SpanStat& s = summary.spans[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << jsonEscape(s.name)
       << "\", \"count\": " << s.count << ", \"total_ns\": " << s.totalNanos
       << ", \"min_ns\": " << s.minNanos << ", \"max_ns\": " << s.maxNanos
       << "}";
  }
  os << (summary.spans.empty() ? "" : "\n  ") << "],\n  \"counters\": [";
  for (std::size_t i = 0; i < summary.counters.size(); ++i) {
    const CounterStat& s = summary.counters[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << jsonEscape(s.name)
       << "\", \"count\": " << s.count << ", \"last\": " << numberJson(s.last)
       << ", \"max\": " << numberJson(s.max) << "}";
  }
  os << (summary.counters.empty() ? "" : "\n  ") << "],\n  \"instants\": [";
  for (std::size_t i = 0; i < summary.instants.size(); ++i) {
    const InstantStat& s = summary.instants[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << jsonEscape(s.name)
       << "\", \"count\": " << s.count << "}";
  }
  os << (summary.instants.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

namespace {

/// Minimal recursive-descent parser for the restricted JSON toJson
/// emits: an object of arrays of flat objects with string/number values.
class Cursor {
public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    PIPOLY_CHECK_MSG(consume(c), std::string("metrics JSON: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        PIPOLY_CHECK_MSG(pos_ < text_.size(),
                         "metrics JSON: truncated escape");
        char e = text_[pos_++];
        switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u': {
          PIPOLY_CHECK_MSG(pos_ + 4 <= text_.size(),
                           "metrics JSON: truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              PIPOLY_CHECK_MSG(false, "metrics JSON: bad \\u escape");
          }
          PIPOLY_CHECK_MSG(code < 0x80,
                           "metrics JSON: only ASCII \\u escapes supported");
          out += static_cast<char>(code);
          break;
        }
        default:
          PIPOLY_CHECK_MSG(false, "metrics JSON: unsupported escape");
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  double parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    PIPOLY_CHECK_MSG(pos_ > start, "metrics JSON: expected a number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  std::string parseKey() {
    std::string key = parseString();
    expect(':');
    return key;
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

} // namespace

MetricsSummary parseMetricsJson(const std::string& json) {
  Cursor c(json);
  MetricsSummary summary;
  c.expect('{');
  bool firstSection = true;
  while (!c.consume('}')) {
    if (!firstSection)
      c.expect(',');
    firstSection = false;
    const std::string section = c.parseKey();
    c.expect('[');
    bool firstEntry = true;
    while (!c.consume(']')) {
      if (!firstEntry)
        c.expect(',');
      firstEntry = false;
      c.expect('{');
      std::string name;
      std::map<std::string, double> fields;
      bool firstField = true;
      while (!c.consume('}')) {
        if (!firstField)
          c.expect(',');
        firstField = false;
        const std::string key = c.parseKey();
        if (key == "name")
          name = c.parseString();
        else
          fields[key] = c.parseNumber();
      }
      if (section == "spans") {
        SpanStat s;
        s.name = name;
        s.count = static_cast<std::uint64_t>(fields.at("count"));
        s.totalNanos = static_cast<std::int64_t>(fields.at("total_ns"));
        s.minNanos = static_cast<std::int64_t>(fields.at("min_ns"));
        s.maxNanos = static_cast<std::int64_t>(fields.at("max_ns"));
        summary.spans.push_back(std::move(s));
      } else if (section == "counters") {
        CounterStat s;
        s.name = name;
        s.count = static_cast<std::uint64_t>(fields.at("count"));
        s.last = fields.at("last");
        s.max = fields.at("max");
        summary.counters.push_back(std::move(s));
      } else if (section == "instants") {
        InstantStat s;
        s.name = name;
        s.count = static_cast<std::uint64_t>(fields.at("count"));
        summary.instants.push_back(std::move(s));
      } else {
        PIPOLY_CHECK_MSG(false, "metrics JSON: unknown section '" + section +
                                    "'");
      }
    }
  }
  PIPOLY_CHECK_MSG(c.atEnd(), "metrics JSON: trailing content");
  return summary;
}

} // namespace pipoly::trace
