#pragma once

// Chrome Trace Event Format export of a drained Trace: load the output
// in chrome://tracing or https://ui.perfetto.dev. One JSON object per
// line (the schema tests parse it line-wise); spans become B/E pairs,
// instants "i" events, counters "C" events, and every track gets
// process_name/thread_name metadata so compile phases, real workers and
// the simulator's predicted timeline render as separate named tracks.

#include "trace/trace.hpp"

#include <string>

namespace pipoly::trace {

/// Serializes the trace as Chrome Trace Event Format JSON. Timestamps
/// are exported in microseconds (the format's unit).
std::string toChromeJson(const Trace& trace);

/// Escapes a string for embedding in a JSON literal (used by every trace
/// exporter; exposed for tests).
std::string jsonEscape(const std::string& text);

} // namespace pipoly::trace
