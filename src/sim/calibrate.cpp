#include "sim/calibrate.hpp"

#include "support/assert.hpp"
#include "support/stopwatch.hpp"

#include <algorithm>

namespace pipoly::sim {

CostModel calibrate(const scop::Scop& scop,
                    const tasking::StatementExecutor& exec,
                    const CalibrationOptions& options) {
  PIPOLY_CHECK(options.samplesPerStatement >= 1 && options.repetitions >= 1);
  CostModel model;
  model.iterationCost.reserve(scop.numStatements());

  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const auto& points = scop.statement(s).domain().points();
    // Evenly spread sample of the domain.
    std::vector<pb::Tuple> sample;
    const std::size_t count =
        std::min(options.samplesPerStatement, points.size());
    for (std::size_t k = 0; k < count; ++k)
      sample.push_back(points[k * points.size() / count]);

    // Warm-up pass, then timed repetitions.
    for (const pb::Tuple& it : sample)
      exec(s, it);
    Stopwatch sw;
    for (int rep = 0; rep < options.repetitions; ++rep)
      for (const pb::Tuple& it : sample)
        exec(s, it);
    model.iterationCost.push_back(
        sw.seconds() /
        (static_cast<double>(options.repetitions) *
         static_cast<double>(sample.size())));
  }
  return model;
}

} // namespace pipoly::sim
