#pragma once

// Cost-model calibration: measures the average per-iteration wall-clock
// cost of each statement by sampling real executions of its instances.
// This is how the benchmark harnesses turn real kernels into simulator
// cost models; exposed as an API so downstream users can do the same for
// their own statement bodies.

#include "scop/scop.hpp"
#include "sim/simulator.hpp"
#include "tasking/executor.hpp"

namespace pipoly::sim {

struct CalibrationOptions {
  /// Instances sampled per statement (spread evenly over the domain).
  std::size_t samplesPerStatement = 64;
  /// Timing repetitions over the sample (averaged).
  int repetitions = 3;
};

/// Runs samples of every statement through `exec` and returns a CostModel
/// with measured per-iteration costs. The executor is invoked on real
/// domain points, so statement bodies with data-dependent cost are
/// averaged over a representative spread. `taskOverhead` is left at 0;
/// combine with bench-style overhead measurement if needed.
CostModel calibrate(const scop::Scop& scop,
                    const tasking::StatementExecutor& exec,
                    const CalibrationOptions& options = {});

} // namespace pipoly::sim
