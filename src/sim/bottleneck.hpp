#pragma once

// §4.4 analysis support: decomposes a simulated pipelined execution into
// the paper's eq. 6 terms
//
//   time(pipeline) = starting time + time(L_max) + finishing time
//
// where L_max is the most expensive loop nest, the starting time is the
// span before L_max's first block begins, and the finishing time the span
// after its last block ends. Also reports each statement's share of the
// critical path — "which nest is the bottleneck".

#include "codegen/task_program.hpp"
#include "sim/simulator.hpp"

#include <string>
#include <vector>

namespace pipoly::sim {

struct BottleneckReport {
  std::size_t maxNest = 0;     // statement index of L_max
  double maxNestTime = 0.0;    // time(L_max) under the cost model
  double startingTime = 0.0;   // eq. 6 term
  double finishingTime = 0.0;  // eq. 6 term
  double makespan = 0.0;
  /// Per-statement total simulated busy time.
  std::vector<double> perStatementWork;
  /// Per-statement span (first start to last finish).
  std::vector<double> perStatementSpan;

  /// Slack between the measured makespan and the eq. 6 decomposition
  /// (>= 0 when L_max does not run back to back).
  double overlapGap() const {
    return makespan - (startingTime + maxNestTime + finishingTime);
  }
};

BottleneckReport analyzeBottleneck(const SimResult& result,
                                   const codegen::TaskProgram& program,
                                   const scop::Scop& scop,
                                   const CostModel& model);

std::string renderBottleneckReport(const BottleneckReport& report,
                                   const scop::Scop& scop);

} // namespace pipoly::sim
