#include "sim/granularity_tuner.hpp"

#include "codegen/task_program.hpp"
#include "support/assert.hpp"

namespace pipoly::sim {

GranularityChoice chooseGranularity(const scop::Scop& scop,
                                    const CostModel& model,
                                    const SimConfig& config,
                                    const pipeline::DetectOptions& baseOptions,
                                    std::size_t maxFactor) {
  PIPOLY_CHECK(maxFactor >= 1);
  GranularityChoice choice;

  std::size_t previousTasks = 0;
  for (std::size_t factor = 1;; factor *= 2) {
    pipeline::DetectOptions opt = baseOptions;
    opt.coarsening = factor;
    codegen::TaskProgram prog = codegen::compilePipeline(scop, opt);

    // Stop once coarsening no longer reduces the task count (every nest
    // has collapsed to a single block).
    if (previousTasks != 0 && prog.tasks.size() == previousTasks &&
        prog.tasks.size() == scop.numStatements())
      break;
    previousTasks = prog.tasks.size();

    GranularityCandidate candidate;
    candidate.coarsening = factor;
    candidate.tasks = prog.tasks.size();
    candidate.makespan = simulate(prog, model, config).makespan;
    choice.sweep.push_back(candidate);

    if (choice.best.tasks == 0 ||
        candidate.makespan < choice.best.makespan)
      choice.best = candidate;
    if (factor >= maxFactor)
      break;
  }
  return choice;
}

} // namespace pipoly::sim
