#pragma once

// Discrete-event simulation of a k-worker machine executing a TaskProgram
// under greedy (list-scheduling) dispatch. This is the documented
// substitution for the paper's quad-core (8 hardware threads) testbed:
// the evaluation host has a single CPU, so parallel wall-clock speedups
// are reproduced as makespans of the real task graph under a measured
// cost model instead. The simulator realises exactly the §4.4 performance
// model: time(L_max) <= time(pipeline) <= time(sequential), with the
// start/finish phases of eq. 6 emerging from the dependency structure.

#include "codegen/task_program.hpp"
#include "opt/optimizer.hpp"
#include "pipeline/comm.hpp"
#include "runtime/placement.hpp"
#include "runtime/topology.hpp"
#include "scop/scop.hpp"
#include "trace/trace.hpp"

#include <cstdint>
#include <vector>

namespace pipoly::sim {

/// Per-statement cost model. Iteration costs are in seconds and typically
/// come from measuring the real kernel on the host (see bench/).
struct CostModel {
  std::vector<double> iterationCost; // indexed by statement
  double taskOverhead = 0.0;         // per-task spawn/dispatch cost
  double dependOverhead = 0.0;       // per-in-dependency resolve cost
  /// Communication term (channel route): seconds per byte moved across a
  /// pipeline edge — the inter-stage transfer cost the task-depend model
  /// hides inside dependOverhead. 0 models infinitely fast channels.
  double commCostPerByte = 0.0;
  /// Per-token channel cost (push + pop + the consumer's poll), the
  /// channel analogue of taskOverhead/dependOverhead.
  double channelTokenOverhead = 0.0;

  double taskCost(const codegen::Task& task) const {
    return taskOverhead +
           dependOverhead * static_cast<double>(task.in.size()) +
           static_cast<double>(task.iterations.size()) *
               iterationCost.at(task.stmtIdx);
  }
};

struct SimConfig {
  unsigned workers = 8;

  /// Dispatch order among ready tasks.
  enum class Policy {
    /// Task creation order (what an OpenMP runtime roughly does with a
    /// FIFO queue) — the default used for all paper reproductions.
    CreationOrder,
    /// Highest bottom-level first (critical-path scheduling).
    CriticalPathFirst,
    /// Longest task first.
    LongestTaskFirst,
  };
  Policy policy = Policy::CreationOrder;
};

/// One scheduled task execution (for timeline rendering, cf. Fig. 2).
struct ScheduleEvent {
  std::size_t taskId;
  unsigned worker;
  double start;
  double finish;
};

struct SimResult {
  double makespan = 0.0;
  double totalWork = 0.0;    // sum of all task costs
  double criticalPath = 0.0; // longest cost-weighted dependency chain
  unsigned workers = 0;
  std::size_t numTasks = 0;
  std::vector<ScheduleEvent> events; // in dispatch order

  double utilization() const {
    return makespan > 0.0 ? totalWork / (makespan * workers) : 0.0;
  }
  double speedupOver(double sequentialTime) const {
    return makespan > 0.0 ? sequentialTime / makespan : 0.0;
  }
};

/// Greedy non-preemptive list scheduling of the task graph on `workers`
/// identical workers; ready tasks are dispatched in creation order.
SimResult simulate(const codegen::TaskProgram& program, const CostModel& model,
                   const SimConfig& config);

/// Same, but resolves the dependency edges through the interned slot
/// table (opt::buildSlotTable of this very program): O(1) array indexing
/// per edge instead of an associative lookup. The schedule is identical.
SimResult simulate(const codegen::TaskProgram& program,
                   const opt::SlotTable& slots, const CostModel& model,
                   const SimConfig& config);

/// Channel occupancy and communication load of one pipeline edge under
/// the channel-route simulation.
struct ChannelEdgeLoad {
  std::size_t srcStmt = 0;
  std::size_t tgtStmt = 0;
  std::uint64_t totalBytes = 0; // from the communication analysis
  double bytesPerToken = 0.0;   // totalBytes / producer task count
  std::uint32_t capacitySlots = 0; // sized ring capacity (analysis)
  std::uint32_t peakTokens = 0;    // simulated peak in-flight tokens
};

struct ChannelSimResult {
  double makespan = 0.0;
  double commTime = 0.0; // total edge-latency seconds paid (all tokens)
  std::uint64_t bytesMoved = 0;
  /// Bytes on edges whose placed endpoints live in different topology
  /// domains (0 on the placement-free overload).
  std::uint64_t crossDomainBytes = 0;
  std::size_t numStages = 0;
  std::vector<ChannelEdgeLoad> edges;

  double speedupOver(double other) const {
    return makespan > 0.0 ? other / makespan : 0.0;
  }
};

/// Predicts the channel execution route (tasking/channel_backend): one
/// persistent worker per statement stage, tasks in creation order within
/// a stage, a cross-stage dependency satisfied `edgeLatency` after its
/// producer finishes, where
///   edgeLatency = channelTokenOverhead + commCostPerByte * bytesPerToken.
/// Channels are modelled unbounded — capacities from the communication
/// analysis are sized so a keeping-pace consumer never stalls its
/// producer, so backpressure only binds when the consumer is the
/// bottleneck anyway; the per-edge peak occupancy is reported so the
/// sizing can be checked against the simulated schedule. Task bodies
/// cost iterations x iterationCost only: the channel route spawns no
/// tasks and resolves no dependency slots, which is exactly the overhead
/// difference this model exposes against simulate().
ChannelSimResult simulateChannels(const codegen::TaskProgram& program,
                                  const pipeline::CommInfo& comm,
                                  const CostModel& model);

/// Topology-aware variant: predicts the channel route under a concrete
/// stage placement (rt::placeStagesTopology / placeStagesBalanced output
/// for this program's stages) on a concrete topology. Differences from
/// the placement-free overload:
///   * stages sharing a worker serialize — a worker clock joins the
///     per-stage clock, so the predicted makespan reflects worker
///     contention, not one-idealized-worker-per-stage;
///   * a cross-worker edge's latency scales with the placed domain
///     pair's cost class:
///       latency = channelTokenOverhead
///               + commCostPerByte * bytesPerToken * classCost(da, db),
///     while a same-worker edge pays only channelTokenOverhead (nothing
///     moves).
/// Ranking simulateChannels over candidate placements is the predicted
/// side of the E22 ablation; the bench's measured ranking must agree
/// (spot-checked in sim_test).
ChannelSimResult simulateChannels(const codegen::TaskProgram& program,
                                  const pipeline::CommInfo& comm,
                                  const CostModel& model,
                                  const rt::Topology& topology,
                                  const rt::Placement& placement);

/// Bytes crossing statement boundaries through the program's dependency
/// edges: for every statement pair connected by at least one cross-stage
/// in-dependency, the analyzed volume of that pipeline edge. The
/// optimizer's second objective — transitive reduction that removes the
/// last dependency between two statements removes the whole channel, and
/// this is the byte count that removal saves.
std::uint64_t crossStageBytes(const codegen::TaskProgram& program,
                              const pipeline::CommInfo& comm);

/// Time of the original (un-pipelined) program: all iterations in order.
double sequentialTime(const scop::Scop& scop, const CostModel& model);

/// Running time of the single most expensive loop nest — the paper's
/// time(L_max) lower bound of eq. 5.
double maxNestTime(const scop::Scop& scop, const CostModel& model);

/// Renders the simulated schedule as an ASCII Gantt chart (the paper's
/// Fig. 2 visualisation): one row per worker, each task drawn as a run of
/// its statement's letter. `width` is the number of character columns the
/// makespan is scaled onto.
std::string renderTimeline(const SimResult& result,
                           const codegen::TaskProgram& program,
                           const scop::Scop& scop, std::size_t width = 80);

/// Exports the simulated schedule in Chrome Trace Event Format (JSON):
/// load the output in chrome://tracing or https://ui.perfetto.dev to
/// inspect the pipeline interactively. Workers appear as threads; each
/// task is a complete ("X") event named after its statement and block.
std::string exportChromeTrace(const SimResult& result,
                              const codegen::TaskProgram& program,
                              const scop::Scop& scop);

/// Appends the simulated schedule to a drained trace as a separate set of
/// tracks (pid 2, "predicted worker k"): the predicted Fig.-2 timeline
/// rendered next to the measured one in the same Chrome-trace file. Each
/// ScheduleEvent becomes a Begin/End span named after its statement and
/// block, with simulated seconds mapped onto the trace's nanosecond axis.
void appendPredictedTimeline(trace::Trace& trace, const SimResult& result,
                             const codegen::TaskProgram& program,
                             const scop::Scop& scop);

} // namespace pipoly::sim
