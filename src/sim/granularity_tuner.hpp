#pragma once

// §7 future work made concrete: "an interesting idea would be to develop
// an algorithm to choose a good task granularity when there are multiple
// choices". The tuner sweeps block-coarsening factors geometrically,
// simulates each compiled program under the given cost model, and picks
// the factor with the smallest makespan — amortising task overhead
// without giving up the overlap the fine blocks provide.

#include "pipeline/detect.hpp"
#include "scop/scop.hpp"
#include "sim/simulator.hpp"

#include <vector>

namespace pipoly::sim {

struct GranularityCandidate {
  std::size_t coarsening = 1;
  double makespan = 0.0;
  std::size_t tasks = 0;
};

struct GranularityChoice {
  GranularityCandidate best;
  std::vector<GranularityCandidate> sweep; // all evaluated candidates
};

/// Evaluates coarsening factors 1, 2, 4, ... up to `maxFactor` (plus the
/// degenerate one-block-per-nest point) and returns the winner. Options
/// other than `coarsening` are taken from `baseOptions`.
GranularityChoice
chooseGranularity(const scop::Scop& scop, const CostModel& model,
                  const SimConfig& config,
                  const pipeline::DetectOptions& baseOptions = {},
                  std::size_t maxFactor = 256);

} // namespace pipoly::sim
