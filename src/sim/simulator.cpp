#include "sim/simulator.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace pipoly::sim {

namespace {

/// Runs the discrete-event machine given the already-resolved dependent
/// lists — shared by the generic (hashed resolution) and interned-slot
/// (array-indexed resolution) entry points.
SimResult simulateResolved(const codegen::TaskProgram& program,
                           const CostModel& model, const SimConfig& config,
                           const std::vector<std::vector<std::size_t>>&
                               dependents,
                           std::vector<std::size_t> indegree) {
  PIPOLY_CHECK(config.workers >= 1);
  const std::size_t n = program.tasks.size();

  std::vector<double> cost(n);
  SimResult result;
  result.workers = config.workers;
  result.numTasks = n;
  for (const codegen::Task& t : program.tasks) {
    cost[t.id] = model.taskCost(t);
    result.totalWork += cost[t.id];
  }

  // Critical path (tasks are creation-ordered, edges point forward).
  std::vector<double> cp(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    cp[i] += cost[i];
    result.criticalPath = std::max(result.criticalPath, cp[i]);
    for (std::size_t d : dependents[i])
      cp[d] = std::max(cp[d], cp[i]);
  }

  // Bottom level (longest path from a task to the exit, inclusive), the
  // priority of critical-path-first scheduling.
  std::vector<double> bottomLevel(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double best = 0.0;
    for (std::size_t d : dependents[i])
      best = std::max(best, bottomLevel[d]);
    bottomLevel[i] = cost[i] + best;
  }

  // Greedy list scheduling with the configured ready-queue policy.
  auto priority = [&](std::size_t task) -> double {
    switch (config.policy) {
    case SimConfig::Policy::CreationOrder:
      return 0.0;
    case SimConfig::Policy::CriticalPathFirst:
      return -bottomLevel[task];
    case SimConfig::Policy::LongestTaskFirst:
      return -cost[task];
    }
    PIPOLY_UNREACHABLE("policy");
  };
  using ReadyKey = std::pair<double, std::size_t>; // (priority, id)
  std::set<ReadyKey> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0)
      ready.emplace(priority(i), i);

  // (finish time, task, worker)
  using Event = std::tuple<double, std::size_t, unsigned>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  std::vector<unsigned> freeWorkers;
  for (unsigned w = config.workers; w-- > 0;)
    freeWorkers.push_back(w);
  double now = 0.0;
  std::size_t finished = 0;
  result.events.reserve(n);

  while (finished < n) {
    // Dispatch as many ready tasks as there are free workers.
    while (!ready.empty() && !freeWorkers.empty()) {
      std::size_t task = ready.begin()->second;
      ready.erase(ready.begin());
      unsigned worker = freeWorkers.back();
      freeWorkers.pop_back();
      result.events.push_back(
          ScheduleEvent{task, worker, now, now + cost[task]});
      running.emplace(now + cost[task], task, worker);
    }
    PIPOLY_CHECK_MSG(!running.empty(),
                     "deadlock in task graph simulation (cycle?)");
    auto [finishTime, task, worker] = running.top();
    running.pop();
    now = finishTime;
    freeWorkers.push_back(worker);
    ++finished;
    for (std::size_t d : dependents[task])
      if (--indegree[d] == 0)
        ready.emplace(priority(d), d);
  }
  result.makespan = now;
  return result;
}

} // namespace

SimResult simulate(const codegen::TaskProgram& program, const CostModel& model,
                   const SimConfig& config) {
  const std::size_t n = program.tasks.size();

  // Build predecessor edges from the dependency tags (tags are unique per
  // task, validated by TaskProgram::validate).
  const codegen::OutOwnerIndex outOwner = program.buildOutOwnerIndex();
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> indegree(n, 0);
  for (const codegen::Task& t : program.tasks) {
    for (const codegen::TaskDep& d : t.in) {
      auto it = outOwner.find({d.idx, d.tag});
      PIPOLY_CHECK_MSG(it != outOwner.end(), "unresolved task dependency");
      dependents[it->second].push_back(t.id);
      ++indegree[t.id];
    }
  }
  return simulateResolved(program, model, config, dependents,
                          std::move(indegree));
}

SimResult simulate(const codegen::TaskProgram& program,
                   const opt::SlotTable& slots, const CostModel& model,
                   const SimConfig& config) {
  const std::size_t n = program.tasks.size();
  PIPOLY_CHECK_MSG(slots.numSlots == n,
                   "slot table does not match the task program");

  // Producer slot ids are task ids: O(1) per edge, no hashing.
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t id = 0; id < n; ++id) {
    for (const std::uint32_t* s = slots.inBegin(id); s != slots.inEnd(id);
         ++s) {
      dependents[*s].push_back(id);
      ++indegree[id];
    }
  }
  return simulateResolved(program, model, config, dependents,
                          std::move(indegree));
}

namespace {

/// (stage, stage-local position) of every task plus per-stage counts —
/// the same stage structure the channel backend builds (stage == the
/// task's statement; tasks in creation order within their stage).
struct StagePlacement {
  std::vector<std::size_t> stageOf;    // per statement, SIZE_MAX if empty
  std::vector<std::size_t> stmtOf;     // per stage, the statement
  std::vector<std::size_t> stageTasks; // per stage, task count
  std::vector<std::pair<std::size_t, std::size_t>> place; // per task
};

StagePlacement placeStages(const codegen::TaskProgram& program) {
  StagePlacement p;
  p.stageOf.assign(program.numStatements, SIZE_MAX);
  for (const codegen::Task& t : program.tasks)
    if (p.stageOf[t.stmtIdx] == SIZE_MAX) {
      p.stageOf[t.stmtIdx] = 0;
      p.stmtOf.push_back(t.stmtIdx);
    }
  std::sort(p.stmtOf.begin(), p.stmtOf.end());
  for (std::size_t s = 0; s < p.stmtOf.size(); ++s)
    p.stageOf[p.stmtOf[s]] = s;
  p.stageTasks.assign(p.stmtOf.size(), 0);
  p.place.resize(program.tasks.size());
  for (std::size_t i = 0; i < program.tasks.size(); ++i) {
    const std::size_t stage = p.stageOf[program.tasks[i].stmtIdx];
    p.place[i] = {stage, p.stageTasks[stage]++};
  }
  return p;
}

} // namespace

namespace {

/// Shared DES of the channel route. `topology`/`placement` null = the
/// placement-free model (one idealized worker per stage, every transfer
/// class 1) — the original PR 8 prediction, unchanged.
ChannelSimResult
simulateChannelsImpl(const codegen::TaskProgram& program,
                     const pipeline::CommInfo& comm, const CostModel& model,
                     const rt::Topology* topology,
                     const rt::Placement* placement) {
  ChannelSimResult result;
  const std::size_t n = program.tasks.size();
  if (n == 0)
    return result;
  const StagePlacement p = placeStages(program);
  result.numStages = p.stmtOf.size();
  if (placement != nullptr)
    PIPOLY_CHECK_MSG(placement->workerOfStage.size() == result.numStages,
                     "placement does not match the program's stage count");
  const opt::SlotTable slots = opt::buildSlotTable(program);

  // Channel edges present in this program: distinct cross-stage pairs.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edgeIdx;
  auto edgeFor = [&](std::size_t srcStage, std::size_t tgtStage) {
    const auto [it, fresh] =
        edgeIdx.try_emplace({srcStage, tgtStage}, result.edges.size());
    if (fresh) {
      ChannelEdgeLoad load;
      load.srcStmt = p.stmtOf[srcStage];
      load.tgtStmt = p.stmtOf[tgtStage];
      if (const pipeline::EdgeComm* e =
              comm.edge(load.srcStmt, load.tgtStmt)) {
        load.totalBytes = e->totalBytes;
        load.capacitySlots = e->capacitySlots;
      }
      load.bytesPerToken = p.stageTasks[srcStage] > 0
                               ? static_cast<double>(load.totalBytes) /
                                     static_cast<double>(
                                         p.stageTasks[srcStage])
                               : 0.0;
      result.edges.push_back(load);
    }
    return it->second;
  };

  // Single-pass DES: tasks in creation order is a topological order, and
  // within a stage it is *the* execution order of the channel route. A
  // task starts when its stage predecessor finished and every cross-stage
  // token arrived (producer finish + edge latency); its body costs only
  // the iterations — the route spawns no tasks and hashes no slots.
  // Under a placement, stages sharing a worker additionally serialize on
  // that worker's clock, and cross-worker transfers pay the placed
  // domain pair's cost class.
  std::vector<double> finish(n, 0.0);
  std::vector<double> stageClock(result.numStages, 0.0);
  std::vector<double> workerClock(
      placement != nullptr ? placement->ownedStages.size() : 0, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const codegen::Task& task = program.tasks[i];
    const auto [stage, pos] = p.place[i];
    (void)pos;
    double start = stageClock[stage];
    if (placement != nullptr)
      start = std::max(start, workerClock[placement->workerOfStage[stage]]);
    for (const std::uint32_t* s = slots.inBegin(i); s != slots.inEnd(i);
         ++s) {
      const std::size_t srcStage = p.place[*s].first;
      if (srcStage == stage) {
        start = std::max(start, finish[*s]);
        continue;
      }
      const ChannelEdgeLoad& load = result.edges[edgeFor(srcStage, stage)];
      double latency = model.channelTokenOverhead;
      if (placement == nullptr) {
        latency += model.commCostPerByte * load.bytesPerToken;
      } else if (placement->workerOfStage[srcStage] !=
                 placement->workerOfStage[stage]) {
        const double cls =
            topology != nullptr
                ? topology->costClass(placement->domainOfStage[srcStage],
                                      placement->domainOfStage[stage])
                : 1.0;
        latency += model.commCostPerByte * load.bytesPerToken * cls;
      } // same-worker edge: the token is a local counter bump, no move
      start = std::max(start, finish[*s] + latency);
      result.commTime += latency;
    }
    finish[i] = start + static_cast<double>(task.iterations.size()) *
                            model.iterationCost.at(task.stmtIdx);
    stageClock[stage] = finish[i];
    if (placement != nullptr)
      workerClock[placement->workerOfStage[stage]] = finish[i];
    result.makespan = std::max(result.makespan, finish[i]);
  }

  // Peak occupancy per edge: a token appears at its producer's finish
  // and is retired at the start of the earliest consumer task depending
  // on that producer (tokens nobody waits on stay in flight to the end).
  for (const auto& [pair, ei] : edgeIdx) {
    std::vector<std::pair<double, int>> deltas;
    std::vector<double> retire(n, -1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (p.place[i].first != pair.second)
        continue;
      const double start = finish[i] - static_cast<double>(
                                           program.tasks[i].iterations.size()) *
                                           model.iterationCost.at(
                                               program.tasks[i].stmtIdx);
      for (const std::uint32_t* s = slots.inBegin(i); s != slots.inEnd(i);
           ++s)
        if (p.place[*s].first == pair.first &&
            (retire[*s] < 0.0 || start < retire[*s]))
          retire[*s] = start;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (p.place[i].first != pair.first)
        continue;
      deltas.emplace_back(finish[i], +1);
      if (retire[i] >= 0.0)
        deltas.emplace_back(retire[i], -1);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) {
                // Retire before push at equal timestamps: the consumer's
                // poll drains before the producer's next push lands.
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });
    int live = 0, peak = 0;
    for (const auto& [ts, delta] : deltas)
      peak = std::max(peak, live += delta);
    result.edges[ei].peakTokens = static_cast<std::uint32_t>(peak);
    result.bytesMoved += result.edges[ei].totalBytes;
    if (placement != nullptr &&
        placement->domainOfStage[pair.first] !=
            placement->domainOfStage[pair.second])
      result.crossDomainBytes += result.edges[ei].totalBytes;
  }
  return result;
}

} // namespace

ChannelSimResult simulateChannels(const codegen::TaskProgram& program,
                                  const pipeline::CommInfo& comm,
                                  const CostModel& model) {
  return simulateChannelsImpl(program, comm, model, nullptr, nullptr);
}

ChannelSimResult simulateChannels(const codegen::TaskProgram& program,
                                  const pipeline::CommInfo& comm,
                                  const CostModel& model,
                                  const rt::Topology& topology,
                                  const rt::Placement& placement) {
  return simulateChannelsImpl(program, comm, model, &topology, &placement);
}

std::uint64_t crossStageBytes(const codegen::TaskProgram& program,
                              const pipeline::CommInfo& comm) {
  const StagePlacement p = placeStages(program);
  const opt::SlotTable slots = opt::buildSlotTable(program);
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < program.tasks.size(); ++i)
    for (const std::uint32_t* s = slots.inBegin(i); s != slots.inEnd(i); ++s)
      if (p.place[*s].first != p.place[i].first)
        pairs.emplace(p.place[*s].first, p.place[i].first);
  std::uint64_t bytes = 0;
  for (const auto& [src, tgt] : pairs)
    if (const pipeline::EdgeComm* e =
            comm.edge(p.stmtOf[src], p.stmtOf[tgt]))
      bytes += e->totalBytes;
  return bytes;
}

double sequentialTime(const scop::Scop& scop, const CostModel& model) {
  double total = 0.0;
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    total += static_cast<double>(scop.statement(s).domain().size()) *
             model.iterationCost.at(s);
  return total;
}

double maxNestTime(const scop::Scop& scop, const CostModel& model) {
  double best = 0.0;
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    best = std::max(best,
                    static_cast<double>(scop.statement(s).domain().size()) *
                        model.iterationCost.at(s));
  return best;
}

std::string renderTimeline(const SimResult& result,
                           const codegen::TaskProgram& program,
                           const scop::Scop& scop, std::size_t width) {
  PIPOLY_CHECK(width >= 10);
  std::string out;
  if (result.makespan <= 0.0)
    return out;
  const double scale = static_cast<double>(width) / result.makespan;

  std::vector<std::string> rows(result.workers, std::string(width, '.'));
  for (const ScheduleEvent& ev : result.events) {
    const std::size_t stmt = program.tasks.at(ev.taskId).stmtIdx;
    const char symbol = scop.statement(stmt).name().empty()
                            ? '?'
                            : scop.statement(stmt).name().front();
    auto begin = static_cast<std::size_t>(ev.start * scale);
    auto end = static_cast<std::size_t>(ev.finish * scale);
    begin = std::min(begin, width - 1);
    end = std::min(std::max(end, begin + 1), width);
    for (std::size_t c = begin; c < end; ++c)
      rows[ev.worker][c] = symbol;
  }

  std::ostringstream os;
  os << "time 0";
  for (std::size_t c = 6; c + 12 < width; ++c)
    os << ' ';
  os << "-> " << result.makespan << " s\n";
  for (unsigned w = 0; w < result.workers; ++w)
    os << 'w' << w << " |" << rows[w] << "|\n";
  return os.str();
}

std::string exportChromeTrace(const SimResult& result,
                              const codegen::TaskProgram& program,
                              const scop::Scop& scop) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const ScheduleEvent& ev : result.events) {
    const codegen::Task& task = program.tasks.at(ev.taskId);
    if (!first)
      os << ",\n";
    first = false;
    // Durations in microseconds, as the trace format expects.
    os << "  {\"name\": \"" << scop.statement(task.stmtIdx).name()
       << task.blockRep.toString() << "\", \"cat\": \"task\", "
       << "\"ph\": \"X\", \"ts\": " << ev.start * 1e6
       << ", \"dur\": " << (ev.finish - ev.start) * 1e6
       << ", \"pid\": 1, \"tid\": " << ev.worker
       << ", \"args\": {\"task\": " << ev.taskId << ", \"iterations\": "
       << task.iterations.size() << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

void appendPredictedTimeline(trace::Trace& trace, const SimResult& result,
                             const codegen::TaskProgram& program,
                             const scop::Scop& scop) {
  const std::uint64_t base = trace.threads.size();
  for (unsigned w = 0; w < result.workers; ++w)
    trace.threads.push_back(trace::ThreadInfo{
        "predicted worker " + std::to_string(w), /*pid=*/2});

  // Keep per-tid timestamps monotone: group events by worker (they are
  // already non-overlapping and start-ordered within one worker).
  for (unsigned w = 0; w < result.workers; ++w) {
    for (const ScheduleEvent& ev : result.events) {
      if (ev.worker != w)
        continue;
      const codegen::Task& task = program.tasks.at(ev.taskId);
      const std::string name =
          scop.statement(task.stmtIdx).name() + task.blockRep.toString();
      const std::uint64_t tid = base + w;
      trace::TraceEvent begin;
      begin.kind = trace::EventKind::Begin;
      begin.name = name;
      begin.arg = static_cast<std::int64_t>(ev.taskId);
      begin.tsNanos = static_cast<std::int64_t>(ev.start * 1e9);
      begin.tid = tid;
      trace::TraceEvent end = begin;
      end.kind = trace::EventKind::End;
      end.tsNanos = static_cast<std::int64_t>(ev.finish * 1e9);
      trace.events.push_back(std::move(begin));
      trace.events.push_back(std::move(end));
    }
  }
}

} // namespace pipoly::sim
