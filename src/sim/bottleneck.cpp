#include "sim/bottleneck.hpp"

#include "support/assert.hpp"

#include <algorithm>
#include <sstream>

namespace pipoly::sim {

BottleneckReport analyzeBottleneck(const SimResult& result,
                                   const codegen::TaskProgram& program,
                                   const scop::Scop& scop,
                                   const CostModel& model) {
  PIPOLY_CHECK_MSG(result.events.size() == program.tasks.size(),
                   "simulate the program before analysing it");
  BottleneckReport report;
  report.makespan = result.makespan;

  const std::size_t n = scop.numStatements();
  report.perStatementWork.assign(n, 0.0);
  std::vector<double> firstStart(n, 0.0), lastFinish(n, 0.0);
  std::vector<bool> seen(n, false);
  for (const ScheduleEvent& ev : result.events) {
    const std::size_t s = program.tasks.at(ev.taskId).stmtIdx;
    report.perStatementWork[s] += ev.finish - ev.start;
    if (!seen[s]) {
      firstStart[s] = ev.start;
      lastFinish[s] = ev.finish;
      seen[s] = true;
    } else {
      firstStart[s] = std::min(firstStart[s], ev.start);
      lastFinish[s] = std::max(lastFinish[s], ev.finish);
    }
  }
  report.perStatementSpan.assign(n, 0.0);
  for (std::size_t s = 0; s < n; ++s)
    report.perStatementSpan[s] = lastFinish[s] - firstStart[s];

  // L_max per the cost model (matches maxNestTime()).
  report.maxNest = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const double t = static_cast<double>(scop.statement(s).domain().size()) *
                     model.iterationCost.at(s);
    if (t > report.maxNestTime) {
      report.maxNestTime = t;
      report.maxNest = s;
    }
  }
  report.startingTime = firstStart[report.maxNest];
  report.finishingTime = result.makespan - lastFinish[report.maxNest];
  return report;
}

std::string renderBottleneckReport(const BottleneckReport& report,
                                   const scop::Scop& scop) {
  std::ostringstream os;
  os << "bottleneck analysis (eq. 6 decomposition):\n";
  os << "  L_max nest: " << scop.statement(report.maxNest).name() << " ("
     << report.maxNestTime * 1e3 << " ms of work)\n";
  os << "  starting time:  " << report.startingTime * 1e3 << " ms\n";
  os << "  finishing time: " << report.finishingTime * 1e3 << " ms\n";
  os << "  makespan:       " << report.makespan * 1e3 << " ms (gap above "
     << "start + L_max + finish: " << report.overlapGap() * 1e3 << " ms)\n";
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    os << "  " << scop.statement(s).name() << ": busy "
       << report.perStatementWork[s] * 1e3 << " ms over a span of "
       << report.perStatementSpan[s] * 1e3 << " ms\n";
  return os.str();
}

} // namespace pipoly::sim
