#include "kernels/chains.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"

namespace pipoly::kernels {

scop::Scop jacobiChain(std::size_t stages, pb::Value n) {
  PIPOLY_CHECK(stages >= 1 && n >= 4);
  scop::ScopBuilder b("jacobi_chain");
  std::size_t input = b.array("G0", {n, n});
  std::vector<std::size_t> grids{input};
  for (std::size_t k = 1; k <= stages; ++k)
    grids.push_back(b.array("G" + std::to_string(k), {n, n}));

  for (std::size_t k = 1; k <= stages; ++k) {
    auto S = b.statement("J" + std::to_string(k), 2);
    // Interior points only: the 3x3 stencil stays in bounds.
    S.bound(0, 1, n - 1).bound(1, 1, n - 1);
    S.write(grids[k], {S.dim(0), S.dim(1)});
    for (pb::Value di = -1; di <= 1; ++di)
      for (pb::Value dj = -1; dj <= 1; ++dj)
        S.read(grids[k - 1], {S.dim(0) + di, S.dim(1) + dj});
    // Serial within the stage: previous column of the own grid.
    S.read(grids[k], {S.dim(0), S.dim(1) - 1});
    S.read(grids[k], {S.dim(0) - 1, S.dim(1)});
  }
  return b.build();
}

scop::Scop seidelChain(std::size_t stages, pb::Value n) {
  PIPOLY_CHECK(stages >= 1 && n >= 3);
  scop::ScopBuilder b("seidel_chain");
  std::size_t input = b.array("G0", {n, n});
  std::vector<std::size_t> grids{input};
  for (std::size_t k = 1; k <= stages; ++k)
    grids.push_back(b.array("G" + std::to_string(k), {n, n}));

  for (std::size_t k = 1; k <= stages; ++k) {
    auto S = b.statement("GS" + std::to_string(k), 2);
    S.bound(0, 1, n).bound(1, 1, n);
    S.write(grids[k], {S.dim(0), S.dim(1)});
    S.read(grids[k - 1], {S.dim(0), S.dim(1)});
    // The classic Gauss-Seidel sweep dependencies within the stage.
    S.read(grids[k], {S.dim(0) - 1, S.dim(1)});
    S.read(grids[k], {S.dim(0), S.dim(1) - 1});
  }
  return b.build();
}

scop::Scop shrinkingChain(std::size_t stages, pb::Value n, pb::Value shrink) {
  PIPOLY_CHECK(stages >= 1);
  PIPOLY_CHECK_MSG(n - static_cast<pb::Value>(stages - 1) * shrink >= 2,
                   "chain shrinks to an empty stage");
  scop::ScopBuilder b("shrinking_chain");
  std::vector<std::size_t> grids;
  grids.push_back(b.array("L0", {n, n}));
  for (std::size_t k = 1; k <= stages; ++k)
    grids.push_back(b.array("L" + std::to_string(k), {n, n}));

  for (std::size_t k = 1; k <= stages; ++k) {
    const pb::Value extent = n - static_cast<pb::Value>(k - 1) * shrink;
    auto S = b.statement("C" + std::to_string(k), 2);
    S.bound(0, 0, extent - 1).bound(1, 0, extent - 1);
    S.write(grids[k], {S.dim(0), S.dim(1)});
    S.read(grids[k - 1], {S.dim(0), S.dim(1)});
    S.read(grids[k - 1], {S.dim(0) + 1, S.dim(1) + 1});
    // Keep each stage serial.
    S.read(grids[k], {S.dim(0), S.dim(1) + 1});
    S.read(grids[k], {S.dim(0) + 1, S.dim(1) + 1});
  }
  return b.build();
}

scop::Scop fdtdChain(std::size_t stages, pb::Value n) {
  PIPOLY_CHECK(stages >= 1 && n >= 3);
  scop::ScopBuilder b("fdtd_chain");
  std::vector<std::size_t> ex, ey;
  ex.push_back(b.array("Ex0", {n, n}));
  ey.push_back(b.array("Ey0", {n, n}));
  for (std::size_t k = 1; k <= stages; ++k) {
    ex.push_back(b.array("Ex" + std::to_string(k), {n, n}));
    ey.push_back(b.array("Ey" + std::to_string(k), {n, n}));
  }
  for (std::size_t k = 1; k <= stages; ++k) {
    auto S = b.statement("F" + std::to_string(k), 2);
    S.bound(0, 0, n - 1).bound(1, 0, n - 1);
    // Multi-write: both field components of this time step.
    S.write(ex[k], {S.dim(0), S.dim(1)});
    S.write(ey[k], {S.dim(0), S.dim(1)});
    S.read(ex[k - 1], {S.dim(0), S.dim(1)});
    S.read(ex[k - 1], {S.dim(0) + 1, S.dim(1)});
    S.read(ey[k - 1], {S.dim(0), S.dim(1)});
    S.read(ey[k - 1], {S.dim(0), S.dim(1) + 1});
    // Keep the stage serial in both dimensions.
    S.read(ex[k], {S.dim(0), S.dim(1) + 1});
    S.read(ey[k], {S.dim(0) + 1, S.dim(1)});
  }
  return b.build();
}

std::vector<double> defaultStageWeights(std::size_t stages) {
  // A hump-shaped profile: the middle stage is the heaviest — the §4.4
  // average case where L_max sits in the middle (Fig. 5).
  std::vector<double> weights(stages, 1.0);
  for (std::size_t k = 0; k < stages; ++k) {
    const double x = stages <= 1
                         ? 0.0
                         : static_cast<double>(k) /
                               static_cast<double>(stages - 1);
    weights[k] = 1.0 + 3.0 * (1.0 - (2.0 * x - 1.0) * (2.0 * x - 1.0));
  }
  return weights;
}

} // namespace pipoly::kernels
