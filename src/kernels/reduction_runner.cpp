#include "kernels/reduction_runner.hpp"

#include "kernels/compute.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pipoly::kernels {

ReductionRunner::ReductionRunner(const scop::Scop& scop, int computeSize)
    : scop_(&scop), computeSize_(computeSize),
      slotOf_(scop.numStatements()), partials_(scop.numStatements()) {
  arrays_.reserve(scop.arrays().size());
  for (const scop::Array& a : scop.arrays()) {
    std::size_t total = 1;
    for (pb::Value extent : a.shape)
      total *= static_cast<std::size_t>(extent);
    arrays_.emplace_back(total);
  }
  reset();
}

ReductionRunner::ReductionRunner(const scop::Scop& scop,
                                 const codegen::TaskProgram& program,
                                 int computeSize)
    : ReductionRunner(scop, computeSize) {
  // Partial slots exist exactly for the statements the lowering gave a
  // combine task; Block tasks claim slots in task order, which is also
  // the order the combine folds them back.
  std::vector<bool> hasCombine(scop.numStatements(), false);
  for (const codegen::Task& t : program.tasks)
    if (t.kind == codegen::TaskKind::ReductionCombine)
      hasCombine[t.stmtIdx] = true;
  for (const codegen::Task& t : program.tasks) {
    if (t.kind != codegen::TaskKind::Block || !hasCombine[t.stmtIdx])
      continue;
    const std::size_t slot = partials_[t.stmtIdx].size();
    for (const pb::Tuple& it : t.iterations)
      slotOf_[t.stmtIdx].emplace(it, slot);
    const scop::Statement& stmt = scop.statement(t.stmtIdx);
    PIPOLY_CHECK(stmt.reductionOp() != scop::ReductionOp::None);
    const std::size_t arrayId = stmt.writes().front().arrayId;
    partials_[t.stmtIdx].emplace_back(
        arrays_[arrayId].size(),
        scop::reductionIdentity(stmt.reductionOp()));
  }
}

void ReductionRunner::reset() {
  for (std::size_t a = 0; a < arrays_.size(); ++a)
    for (std::size_t i = 0; i < arrays_[a].size(); ++i)
      arrays_[a][i] = hashCombine(0xabcd + a, i);
  for (std::size_t s = 0; s < partials_.size(); ++s) {
    if (partials_[s].empty())
      continue;
    const std::uint64_t id =
        scop::reductionIdentity(scop_->statement(s).reductionOp());
    for (auto& copy : partials_[s])
      std::fill(copy.begin(), copy.end(), id);
  }
}

std::size_t ReductionRunner::flatIndex(std::size_t arrayId,
                                       const pb::Tuple& subs) const {
  const scop::Array& arr = scop_->array(arrayId);
  std::size_t flat = 0;
  for (std::size_t d = 0; d < subs.size(); ++d)
    flat = flat * static_cast<std::size_t>(arr.shape[d]) +
           static_cast<std::size_t>(subs[d]);
  return flat;
}

std::uint64_t ReductionRunner::contributionSeed(std::size_t stmtIdx,
                                                const pb::Tuple& it,
                                                bool skipReductionReads) {
  const scop::Statement& stmt = scop_->statement(stmtIdx);
  std::uint64_t seed = hashCombine(0x5u, stmtIdx);
  for (std::size_t d = 0; d < it.size(); ++d)
    seed = hashCombine(seed, static_cast<std::uint64_t>(it[d]));
  const std::size_t accArray =
      stmt.writes().empty() ? ~std::size_t{0} : stmt.writes().front().arrayId;
  for (const scop::Access& read : stmt.reads()) {
    // The accumulator read is the ⊕ itself, not part of the contribution.
    if (skipReductionReads && read.arrayId == accArray)
      continue;
    seed = hashCombine(
        seed,
        arrays_[read.arrayId][flatIndex(read.arrayId,
                                        read.subscripts.evaluate(it))]);
  }
  return computeSize_ > 0 ? computeKernel(seed, 64, computeSize_) : seed;
}

void ReductionRunner::execute(std::size_t stmtIdx, const pb::Tuple& it) {
  const scop::Statement& stmt = scop_->statement(stmtIdx);

  if (it.size() == stmt.depth() + 1) {
    // Combine fold (k, 0, ..., 0): fold private copy k into the array and
    // reset it to the identity (the next replay reuses the slot).
    const scop::ReductionOp op = stmt.reductionOp();
    PIPOLY_CHECK(op != scop::ReductionOp::None);
    const std::size_t k = static_cast<std::size_t>(it[0]);
    PIPOLY_CHECK(k < partials_[stmtIdx].size());
    const std::size_t arrayId = stmt.writes().front().arrayId;
    std::vector<std::uint64_t>& partial = partials_[stmtIdx][k];
    std::vector<std::uint64_t>& arr = arrays_[arrayId];
    const std::uint64_t id = scop::reductionIdentity(op);
    for (std::size_t e = 0; e < arr.size(); ++e) {
      arr[e] = scop::applyReductionOp(op, arr[e], partial[e]);
      partial[e] = id;
    }
    return;
  }

  if (stmt.reductionOp() == scop::ReductionOp::None) {
    const std::uint64_t value =
        contributionSeed(stmtIdx, it, /*skipReductionReads=*/false);
    for (const scop::Access& write : stmt.writes())
      arrays_[write.arrayId]
             [flatIndex(write.arrayId, write.subscripts.evaluate(it))] = value;
    return;
  }

  // Accumulation instance: fold the contribution into the partial copy of
  // this iteration's block (task mode) or straight into the array (oracle
  // mode / off-mode programs, whose chain serializes the statement).
  const scop::ReductionOp op = stmt.reductionOp();
  const std::uint64_t c = contributionSeed(stmtIdx, it,
                                           /*skipReductionReads=*/true);
  const scop::Access& write = stmt.writes().front();
  const std::size_t flat =
      flatIndex(write.arrayId, write.subscripts.evaluate(it));
  if (!slotOf_[stmtIdx].empty()) {
    const auto slot = slotOf_[stmtIdx].find(it);
    PIPOLY_CHECK_MSG(slot != slotOf_[stmtIdx].end(),
                     "iteration missing from the partial-slot map");
    std::uint64_t& cell = partials_[stmtIdx][slot->second][flat];
    cell = scop::applyReductionOp(op, cell, c);
  } else {
    std::uint64_t& cell = arrays_[write.arrayId][flat];
    cell = scop::applyReductionOp(op, cell, c);
  }
}

std::uint64_t ReductionRunner::fingerprint() const {
  std::uint64_t acc = 0x2718;
  for (const auto& arr : arrays_)
    for (std::uint64_t v : arr)
      acc = hashCombine(acc, v);
  return acc;
}

} // namespace pipoly::kernels
