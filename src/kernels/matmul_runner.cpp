#include "kernels/matmul_runner.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

#include <cmath>

namespace pipoly::kernels {

MatmulRunner::MatmulRunner(MatmulVariant variant, std::size_t chainLength,
                           pb::Value n)
    : variant_(variant), chainLength_(chainLength), n_(n) {
  const auto size = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  input_.resize(size);
  operands_.assign(chainLength, std::vector<double>(size));
  results_.assign(chainLength, std::vector<double>(size));
  reset();
}

void MatmulRunner::reset() {
  SplitMix64 rng(12345);
  auto fill = [&](std::vector<double>& m, double scale) {
    for (double& v : m)
      v = scale * (static_cast<double>(rng.nextBelow(1000)) / 1000.0 - 0.5);
  };
  fill(input_, 1.0);
  for (auto& op : operands_)
    fill(op, 0.25); // keep the chain numerically tame
  for (auto& res : results_)
    fill(res, 0.125); // initial values matter for the generalized variant
}

double& MatmulRunner::result(std::size_t stage, pb::Value i, pb::Value j) {
  return results_[stage][static_cast<std::size_t>(i * n_ + j)];
}

double MatmulRunner::operand(std::size_t stage, pb::Value k,
                             pb::Value j) const {
  // Transposed variants store B^T, so "column j" is a contiguous row.
  const auto idx = isTransposed(variant_)
                       ? static_cast<std::size_t>(j * n_ + k)
                       : static_cast<std::size_t>(k * n_ + j);
  return operands_[stage][idx];
}

void MatmulRunner::execute(std::size_t stmtIdx, const pb::Tuple& iteration) {
  PIPOLY_CHECK(stmtIdx < chainLength_);
  const pb::Value i = iteration[0], j = iteration[1];
  const std::vector<double>& prev =
      stmtIdx == 0 ? input_ : results_[stmtIdx - 1];
  double dot = 0.0;
  for (pb::Value k = 0; k < n_; ++k)
    dot += prev[static_cast<std::size_t>(i * n_ + k)] *
           operand(stmtIdx, k, j);
  if (isGeneralized(variant_)) {
    // gnmm: multiply by C[i+1][j] + C[i][j-1] of the result matrix.
    dot *= result(stmtIdx, i + 1, j) + result(stmtIdx, i, j - 1);
  }
  result(stmtIdx, i, j) = dot;
}

std::uint64_t MatmulRunner::fingerprint() const {
  std::uint64_t acc = 0x1234;
  for (const auto& res : results_)
    for (double v : res)
      acc = hashCombine(acc,
                        static_cast<std::uint64_t>(std::llround(v * 1e6)));
  return acc;
}

} // namespace pipoly::kernels
