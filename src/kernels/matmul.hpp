#pragma once

// The paper's second benchmark set (Fig. 11): chains of matrix
// multiplications in four variants, built — as in the paper — as
// consecutive *vector-matrix* multiplication nests so the prototype's
// depth-2 / one-task-per-nest code generation applies:
//
//   nmm   — n consecutive multiplications   M_k = M_{k-1} * B_k
//   nmmt  — same, with the second operand transposed beforehand
//   gnmm  — generalized: each element is additionally multiplied by
//           (C[i+1][j] + C[i][j-1]) of the result matrix, which puts a
//           carried dependence on both loop dimensions (Polly finds
//           nothing to parallelize)
//   gnmmt — gnmm with the transposed second operand
//
// Statement S_k computes one element M_k[i][j] as a dot product: it reads
// the whole row i of M_{k-1} (an auxiliary-dimension range access) and
// the column/row j of the constant operand B_k.

#include "scop/scop.hpp"

#include <string>

namespace pipoly::kernels {

enum class MatmulVariant { NMM, NMMT, GNMM, GNMMT };

std::string variantName(MatmulVariant v);
bool isTransposed(MatmulVariant v);
bool isGeneralized(MatmulVariant v);

/// Builds the SCoP of `chainLength` consecutive multiplications of
/// N x N matrices ("2mm" = chainLength 2, etc.).
scop::Scop matmulChain(MatmulVariant variant, std::size_t chainLength,
                       pb::Value n);

/// Measures the per-element cost (seconds) of the dot-product body on this
/// host: a length-n dot product with column access (plain), row access
/// (transposed), or the per-element cost of a cache-tiled multiplication
/// (what Polly's tiling achieves).
double measureDotCost(pb::Value n, bool transposed);
double measureTiledMatmulCostPerElement(pb::Value n);

} // namespace pipoly::kernels
