#include "kernels/suite_runner.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pipoly::kernels {

SuiteRunner::SuiteRunner(const ProgramSpec& spec, const scop::Scop& scop,
                         int size)
    : spec_(&spec), scop_(&scop), size_(size) {
  PIPOLY_CHECK(spec.nums.size() == scop.numStatements());
  arrays_.reserve(scop.arrays().size());
  for (const scop::Array& a : scop.arrays()) {
    std::size_t total = 1;
    for (pb::Value extent : a.shape)
      total *= static_cast<std::size_t>(extent);
    arrays_.emplace_back(total);
  }
  reset();
}

void SuiteRunner::reset() {
  for (std::size_t a = 0; a < arrays_.size(); ++a)
    for (std::size_t i = 0; i < arrays_[a].size(); ++i)
      arrays_[a][i] = hashCombine(0xabcd + a, i);
}

std::uint64_t& SuiteRunner::element(std::size_t arrayId,
                                    const pb::Tuple& subs) {
  const scop::Array& arr = scop_->array(arrayId);
  std::size_t flat = 0;
  for (std::size_t d = 0; d < subs.size(); ++d)
    flat = flat * static_cast<std::size_t>(arr.shape[d]) +
           static_cast<std::size_t>(subs[d]);
  return arrays_[arrayId][flat];
}

void SuiteRunner::execute(std::size_t stmtIdx, const pb::Tuple& iteration) {
  const scop::Statement& stmt = scop_->statement(stmtIdx);
  // Element-wise combination of the operands (the paper adds the input
  // arguments element-wise before next_prime).
  std::uint64_t seed = hashCombine(0x5u, stmtIdx);
  for (const scop::Access& read : stmt.reads())
    seed = hashCombine(seed,
                       element(read.arrayId,
                               read.subscripts.evaluate(iteration)));
  const std::uint64_t value =
      computeKernel(seed, spec_->nums[stmtIdx], size_);
  for (const scop::Access& write : stmt.writes())
    element(write.arrayId, write.subscripts.evaluate(iteration)) = value;
}

std::uint64_t SuiteRunner::fingerprint() const {
  std::uint64_t acc = 0x2718;
  for (const auto& arr : arrays_)
    for (std::uint64_t v : arr)
      acc = hashCombine(acc, v);
  return acc;
}

} // namespace pipoly::kernels
