#include "kernels/reduction_kernels.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"

namespace pipoly::kernels {

scop::Scop dotProductChain(pb::Value n) {
  PIPOLY_CHECK(n >= 2);
  scop::ScopBuilder b("dot_product_chain");
  const std::size_t X = b.array("X", {n, n});
  const std::size_t dot = b.array("dot", {1});
  const std::size_t out = b.array("out", {n});

  {
    auto S = b.statement("gen", 2);
    S.bound(0, 0, n).bound(1, 1, n);
    S.write(X, {S.dim(0), S.dim(1)});
    S.read(X, {S.dim(0), S.dim(1) - 1}); // serial in j
  }
  {
    auto S = b.statement("dotacc", 2);
    S.bound(0, 0, n).bound(1, 1, n);
    S.reduce(dot, {S.constant(0)}, scop::ReductionOp::Add);
    S.read(X, {S.dim(0), S.dim(1)});
  }
  {
    auto S = b.statement("post", 1);
    S.bound(0, 1, n);
    S.write(out, {S.dim(0)});
    S.read(dot, {S.constant(0)});
    S.read(out, {S.dim(0) - 1}); // serial consumer
  }
  return b.build();
}

scop::Scop histogramKernel(pb::Value n, pb::Value bins) {
  PIPOLY_CHECK(bins >= 1 && n >= bins);
  PIPOLY_CHECK_MSG(n % bins == 0, "histogram needs bins to divide n");
  const pb::Value chunk = n / bins;
  scop::ScopBuilder b("histogram");
  const std::size_t data = b.array("data", {n});
  const std::size_t hist = b.array("hist", {bins});
  const std::size_t out = b.array("out", {bins});

  {
    auto S = b.statement("load", 1);
    S.bound(0, 1, n);
    S.write(data, {S.dim(0)});
    S.read(data, {S.dim(0) - 1}); // serial producer
  }
  {
    auto S = b.statement("binacc", 2);
    S.bound(0, 0, bins).bound(1, 0, chunk);
    S.reduce(hist, {S.dim(0)}, scop::ReductionOp::Xor);
    S.read(data, {S.dim(0) * chunk + S.dim(1)});
  }
  {
    auto S = b.statement("norm", 1);
    S.bound(0, 0, bins);
    S.write(out, {S.dim(0)});
    S.read(hist, {S.dim(0)});
  }
  return b.build();
}

scop::Scop stencilAccumulate(pb::Value n) {
  PIPOLY_CHECK(n >= 4);
  scop::ScopBuilder b("stencil_accumulate");
  const std::size_t G = b.array("G", {n, n});
  const std::size_t acc = b.array("acc", {n});
  const std::size_t out = b.array("out", {n});

  {
    auto S = b.statement("relax", 2);
    S.bound(0, 1, n - 1).bound(1, 1, n - 1);
    S.write(G, {S.dim(0), S.dim(1)});
    S.read(G, {S.dim(0), S.dim(1) - 1});
    S.read(G, {S.dim(0) - 1, S.dim(1)});
  }
  {
    auto S = b.statement("rowmin", 2);
    S.bound(0, 1, n - 1).bound(1, 1, n - 1);
    S.reduce(acc, {S.dim(0)}, scop::ReductionOp::Min);
    S.read(G, {S.dim(0) - 1, S.dim(1)});
    S.read(G, {S.dim(0), S.dim(1)});
    S.read(G, {S.dim(0) + 1, S.dim(1)});
  }
  {
    auto S = b.statement("scale", 1);
    S.bound(0, 1, n - 1);
    S.write(out, {S.dim(0)});
    S.read(acc, {S.dim(0)});
    S.read(out, {S.dim(0) - 1}); // serial consumer
  }
  return b.build();
}

scop::Scop normAccumulate(pb::Value n) {
  PIPOLY_CHECK(n >= 2);
  scop::ScopBuilder b("norm_accumulate");
  const std::size_t A = b.array("A", {n, n});
  const std::size_t norm = b.array("norm", {1});
  const std::size_t out = b.array("out", {n});

  {
    auto S = b.statement("normacc", 2);
    S.bound(0, 0, n).bound(1, 0, n);
    S.reduce(norm, {S.constant(0)}, scop::ReductionOp::Add);
    S.read(A, {S.dim(0), S.dim(1)}); // A is input-only: no producer edge
  }
  {
    auto S = b.statement("post", 1);
    S.bound(0, 1, n);
    S.write(out, {S.dim(0)});
    S.read(norm, {S.constant(0)});
    S.read(out, {S.dim(0) - 1}); // serial consumer
  }
  return b.build();
}

namespace {

scop::Scop buildHistogram8(pb::Value n) { return histogramKernel(n, 8); }

} // namespace

const std::vector<ReductionKernelSpec>& reductionKernels() {
  static const std::vector<ReductionKernelSpec> kKernels = {
      {"dot_product_chain", &dotProductChain, 1, scop::ReductionOp::Add},
      {"histogram", &buildHistogram8, 1, scop::ReductionOp::Xor},
      {"stencil_accumulate", &stencilAccumulate, 1, scop::ReductionOp::Min},
      {"norm_accumulate", &normAccumulate, 0, scop::ReductionOp::Add},
  };
  return kKernels;
}

const ReductionKernelSpec& reductionKernelByName(const std::string& name) {
  for (const ReductionKernelSpec& spec : reductionKernels())
    if (spec.name == name)
      return spec;
  PIPOLY_CHECK_MSG(false, "unknown reduction kernel: " + name);
}

} // namespace pipoly::kernels
