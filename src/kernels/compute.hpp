#pragma once

// The compute-intensive kernel of the paper's first benchmark set.
//
// The paper calls GMP's next_prime on arrays of `SIZE` multi-precision
// integers, `num` times per statement instance. GMP is not available
// offline, so we substitute a deterministic 64-bit Miller–Rabin
// next_prime iterated over a SIZE-element buffer: like the original it is
// pure CPU work whose cost scales roughly linearly in both `num` and
// `SIZE`, which is the only property the benchmark uses (DESIGN.md,
// substitution table).

#include <cstdint>

namespace pipoly::kernels {

/// Deterministic primality test, exact for all 64-bit integers
/// (Miller–Rabin with the 12 known-sufficient bases).
bool isPrime(std::uint64_t n);

/// Smallest prime strictly greater than n.
std::uint64_t nextPrime(std::uint64_t n);

/// One statement-instance worth of work: a SIZE-element buffer seeded from
/// `seed` is advanced to the next prime `num` times, mixing elements
/// between rounds (mimicking element-wise addition + next_prime of the
/// paper's gmp_data). Returns a checksum so the work cannot be optimised
/// away.
std::uint64_t computeKernel(std::uint64_t seed, int num, int size);

/// Measures the average wall-clock seconds of one computeKernel(num, size)
/// call on this host (used to calibrate the simulator's cost model).
double measureComputeCost(int num, int size);

} // namespace pipoly::kernels
