#pragma once

// The paper's first benchmark set (Table 9 / Fig. 10): programs P1–P10,
// each a sequence of 2–4 serial depth-2 loop nests calling the
// compute-intensive kernel. Statement S_k writes its own N x N matrix
// A_k[i][j] and reads earlier matrices with the per-program affine
// patterns of Table 9; every statement also reads its own A_k[i][j+...]
// neighbourhood so that no loop dimension is parallelizable (the paper:
// "Polly cannot parallelize the loops").
//
// NOTE on fidelity: the Memory-access column of Table 9 is partially
// garbled in the available text. The nest counts and num values are
// verbatim; read patterns marked [reconstructed] below were restored from
// the legible fragments to preserve each program's dependence shape
// (which source feeds which statement, and with which affine stride).

#include "scop/param_scop.hpp"
#include "scop/scop.hpp"

#include <string>
#include <vector>

namespace pipoly::kernels {

/// One cross-nest read: statement `target` reads
/// A_source[r0i*i + r0j*j + r0c][r1i*i + r1j*j + r1c].
struct ReadPattern {
  std::size_t source; // 0-based nest index
  int r0i, r0j, r0c;  // first subscript
  int r1i, r1j, r1c;  // second subscript
};

struct ProgramSpec {
  std::string name;
  std::vector<int> nums;              // per-nest `num` (Table 9)
  std::vector<std::vector<ReadPattern>> reads; // per-nest cross reads
};

/// The ten programs of Table 9.
const std::vector<ProgramSpec>& table9Programs();

/// Instantiates a Table-9 program as a SCoP with parameter N (arrays are
/// N x N; per-nest bounds shrink so every read stays in bounds, as the
/// paper sets "lower and upper bounds of the loops accordingly").
scop::Scop buildProgram(const ProgramSpec& spec, pb::Value n);

/// The per-nest square bounds buildProgram(spec, n) uses: each nest's
/// domain is [0, B_k)^2 with B_k clipped so every read stays inside the
/// written region of its source nest.
std::vector<pb::Value> nestBounds(const ProgramSpec& spec, pb::Value n);

/// A Table-9 program with its sizes kept symbolic: the scop is built once
/// over parameters N (array extents) and B1..Bk (the clipped per-nest
/// bounds, which involve division and therefore stay derived parameters),
/// and bindingsFor(n) produces the instantiation for a concrete N —
/// scop.instantiate(bindingsFor(n)) equals buildProgram(spec, n).
struct ParamProgram {
  scop::ParamScop scop;
  ProgramSpec spec;

  pb::ParamBindings bindingsFor(pb::Value n) const;
};

/// Builds the symbolic form of a Table-9 program (the input of the
/// N-independent detection route).
ParamProgram buildParamProgram(const ProgramSpec& spec);

/// Looks a program up by name ("P1".."P10").
const ProgramSpec& programByName(const std::string& name);

/// Renders the Table-9-style description of one program (specification
/// column: nest count and num values; memory-access column: the cross
/// reads of every statement).
std::string describeProgram(const ProgramSpec& spec);

/// Renders a program as source in the pipolyc loop-nest dialect
/// (docs/FORMAT.md): parsing the result through the frontend yields the
/// same SCoP as buildProgram(spec, n). The per-nest bounds are emitted as
/// literals (the dialect has no general min/div arithmetic).
std::string renderProgramSource(const ProgramSpec& spec, pb::Value n);

} // namespace pipoly::kernels
