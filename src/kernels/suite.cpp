#include "kernels/suite.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"

#include <algorithm>

namespace pipoly::kernels {

const std::vector<ProgramSpec>& table9Programs() {
  // Read patterns: {source nest, (r0i, r0j, r0c), (r1i, r1j, r1c)} means
  // "reads A_source[r0i*i + r0j*j + r0c][r1i*i + r1j*j + r1c]".
  static const std::vector<ProgramSpec> programs = {
      // P1: 2 nests, num1,2 = 1; S2 <- A1[i][j].
      {"P1", {1, 1}, {{}, {{0, 1, 0, 0, 0, 1, 0}}}},
      // P2: 2 nests, num1 = 2, num2 = 6; S2 <- A1[2i][2j].
      {"P2", {2, 6}, {{}, {{0, 2, 0, 0, 0, 2, 0}}}},
      // P3: 3 nests, num1,2,3 = 1; S2,S3 <- A1[i][j]; S3 <- A2[i][j].
      {"P3",
       {1, 1, 1},
       {{},
        {{0, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 0, 0, 0, 1, 0}, {1, 1, 0, 0, 0, 1, 0}}}},
      // P4: 3 nests, num1,2 = 2, num3 = 8; S2 <- A1[i+j][j];
      // S3 <- A1[2i+j][2j] [reconstructed], A2[2i][2j].
      {"P4",
       {2, 2, 8},
       {{},
        {{0, 1, 1, 0, 0, 1, 0}},
        {{0, 2, 1, 0, 0, 2, 0}, {1, 2, 0, 0, 0, 2, 0}}}},
      // P5: 4 nests, num = 1 everywhere; S2,S3,S4 <- A1[i][j];
      // S3,S4 <- A2[i][j]; S4 <- A3[i][j].
      {"P5",
       {1, 1, 1, 1},
       {{},
        {{0, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 0, 0, 0, 1, 0}, {1, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 0, 0, 0, 1, 0},
         {1, 1, 0, 0, 0, 1, 0},
         {2, 1, 0, 0, 0, 1, 0}}}},
      // P6: 4 nests, num1 = 1, num2 = 8, num3,4 = 32;
      // S2,S3,S4 <- A1[i+j][j] [reconstructed]; S3,S4 <- A2[i][j];
      // S4 <- A3[i][j].
      {"P6",
       {1, 8, 32, 32},
       {{},
        {{0, 1, 1, 0, 0, 1, 0}},
        {{0, 1, 1, 0, 0, 1, 0}, {1, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 1, 0, 0, 1, 0},
         {1, 1, 0, 0, 0, 1, 0},
         {2, 1, 0, 0, 0, 1, 0}}}},
      // P7: 4 nests, num1 = 1, num2,3,4 = 8; S2,S3 <- A1[2i][2j];
      // S3 <- A2[2i][2j]; S4 <- A1[i][j], A2[i][j].
      {"P7",
       {1, 8, 8, 8},
       {{},
        {{0, 2, 0, 0, 0, 2, 0}},
        {{0, 2, 0, 0, 0, 2, 0}, {1, 2, 0, 0, 0, 2, 0}},
        {{0, 1, 0, 0, 0, 1, 0}, {1, 1, 0, 0, 0, 1, 0}}}},
      // P8: 4 nests, num = 1 everywhere; S2,S3 <- A1[i][j];
      // S4 <- A1[i][j], A3[i][j] [reconstructed].
      {"P8",
       {1, 1, 1, 1},
       {{},
        {{0, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 0, 0, 0, 1, 0}},
        {{0, 1, 0, 0, 0, 1, 0}, {2, 1, 0, 0, 0, 1, 0}}}},
      // P9: 4 nests, num = 1 everywhere; S2,S4 <- A1[i][2j];
      // S3 <- A1[i][j], A2[i][2j]; S4 <- A3[i][j] [reconstructed].
      {"P9",
       {1, 1, 1, 1},
       {{},
        {{0, 1, 0, 0, 0, 2, 0}},
        {{0, 1, 0, 0, 0, 1, 0}, {1, 1, 0, 0, 0, 2, 0}},
        {{0, 1, 0, 0, 0, 2, 0}, {2, 1, 0, 0, 0, 1, 0}}}},
      // P10: 4 nests, num1 = 1, num2,3,4 = 2; S2 <- A1[i+j][j];
      // S3 <- A2[i][j]; S4 <- A3[i][j].
      {"P10",
       {1, 2, 2, 2},
       {{},
        {{0, 1, 1, 0, 0, 1, 0}},
        {{1, 1, 0, 0, 0, 1, 0}},
        {{2, 1, 0, 0, 0, 1, 0}}}},
  };
  return programs;
}

const ProgramSpec& programByName(const std::string& name) {
  for (const ProgramSpec& p : table9Programs())
    if (p.name == name)
      return p;
  PIPOLY_UNREACHABLE("unknown Table-9 program " + name);
}

namespace {

std::string renderSubscript(int ci, int cj, int c) {
  std::string out;
  auto term = [&](int coeff, const char* var) {
    if (coeff == 0)
      return;
    if (!out.empty())
      out += "+";
    if (coeff != 1)
      out += std::to_string(coeff) + "*";
    out += var;
  };
  term(ci, "i");
  term(cj, "j");
  if (c != 0 || out.empty()) {
    if (!out.empty() && c > 0)
      out += "+";
    if (c != 0 || out.empty())
      out += std::to_string(c);
  }
  return out;
}

} // namespace

std::string describeProgram(const ProgramSpec& spec) {
  std::string out = spec.name + ": " + std::to_string(spec.nums.size()) +
                    " for-loops, num = {";
  for (std::size_t k = 0; k < spec.nums.size(); ++k)
    out += (k ? ", " : "") + std::to_string(spec.nums[k]);
  out += "}\n";
  for (std::size_t k = 0; k < spec.reads.size(); ++k) {
    for (const ReadPattern& r : spec.reads[k])
      out += "  S" + std::to_string(k + 1) + " <- A" +
             std::to_string(r.source + 1) + "[" +
             renderSubscript(r.r0i, r.r0j, r.r0c) + "][" +
             renderSubscript(r.r1i, r.r1j, r.r1c) + "]\n";
  }
  return out;
}

namespace {

pb::Value nestBoundForSource(const std::vector<ReadPattern>& reads,
                             pb::Value n,
                             const std::vector<pb::Value>& sourceBounds);

} // namespace

std::string renderProgramSource(const ProgramSpec& spec, pb::Value n) {
  std::string out = "// " + spec.name + " of Table 9, N = " +
                    std::to_string(n) + "\n";
  const std::size_t nests = spec.nums.size();
  for (std::size_t k = 0; k < nests; ++k)
    out += "array A" + std::to_string(k + 1) + "[" + std::to_string(n) +
           "][" + std::to_string(n) + "];\n";

  std::vector<pb::Value> bounds;
  for (std::size_t k = 0; k < nests; ++k) {
    const pb::Value bound = nestBoundForSource(spec.reads[k], n, bounds);
    bounds.push_back(bound);
    const std::string self = "A" + std::to_string(k + 1);
    out += "for (i = 0; i < " + std::to_string(bound) + "; i++)\n";
    out += "  for (j = 0; j < " + std::to_string(bound) + "; j++)\n";
    out += "    S" + std::to_string(k + 1) + ": " + self + "[i][j] = f" +
           std::to_string(spec.nums[k]) + "(" + self + "[i][j], " + self +
           "[i][j+1], " + self + "[i+1][j+1]";
    for (const ReadPattern& r : spec.reads[k]) {
      auto sub = [](int ci, int cj, int c) {
        std::string s;
        if (ci)
          s += (ci != 1 ? std::to_string(ci) + "*" : "") + std::string("i");
        if (cj) {
          if (!s.empty())
            s += " + ";
          s += (cj != 1 ? std::to_string(cj) + "*" : "") + std::string("j");
        }
        if (c || s.empty()) {
          if (!s.empty())
            s += " + ";
          s += std::to_string(c);
        }
        return s;
      };
      out += ", A" + std::to_string(r.source + 1) + "[" +
             sub(r.r0i, r.r0j, r.r0c) + "][" + sub(r.r1i, r.r1j, r.r1c) +
             "]";
    }
    out += ");\n";
  }
  return out;
}

namespace {

/// Largest square bound B (domain [0,B) per dim) of nest `k` so that all
/// its reads stay inside N x N source arrays whose writers cover
/// [0, sourceBound) per dim. The self reads A_k[i][j] and A_k[i+1][j+1]
/// additionally require B <= N - 1.
pb::Value nestBoundForSource(const std::vector<ReadPattern>& reads, pb::Value n,
                    const std::vector<pb::Value>& sourceBounds) {
  pb::Value bound = n - 1; // self read [i+1][j+1] within an N x N array
  for (const ReadPattern& r : reads) {
    // Reading beyond what the source nest wrote would consume
    // uninitialised data; keep reads within the written region.
    const pb::Value srcExtent = sourceBounds.at(r.source);
    for (auto [ci, cj, c] : {std::tuple{r.r0i, r.r0j, r.r0c},
                             std::tuple{r.r1i, r.r1j, r.r1c}}) {
      const pb::Value sum = ci + cj;
      if (sum <= 0)
        continue;
      // ci*(B-1) + cj*(B-1) + c <= srcExtent - 1.
      bound = std::min(bound, (srcExtent - 1 - c) / sum + 1);
    }
  }
  PIPOLY_CHECK_MSG(bound >= 2, "N too small for this program's patterns");
  return bound;
}

} // namespace

std::vector<pb::Value> nestBounds(const ProgramSpec& spec, pb::Value n) {
  PIPOLY_CHECK(spec.nums.size() == spec.reads.size());
  std::vector<pb::Value> bounds;
  bounds.reserve(spec.nums.size());
  for (std::size_t k = 0; k < spec.nums.size(); ++k)
    bounds.push_back(nestBoundForSource(spec.reads[k], n, bounds));
  return bounds;
}

pb::ParamBindings ParamProgram::bindingsFor(pb::Value n) const {
  pb::ParamBindings bindings{{"N", n}};
  const std::vector<pb::Value> bounds = nestBounds(spec, n);
  for (std::size_t k = 0; k < bounds.size(); ++k)
    bindings["B" + std::to_string(k + 1)] = bounds[k];
  return bindings;
}

ParamProgram buildParamProgram(const ProgramSpec& spec) {
  PIPOLY_CHECK(spec.nums.size() == spec.reads.size());
  const std::size_t nests = spec.nums.size();
  scop::ParamScop pscop(spec.name);

  const pb::ParamExpr N = pb::ParamExpr::param("N");
  std::vector<std::size_t> arrays;
  arrays.reserve(nests);
  for (std::size_t k = 0; k < nests; ++k)
    arrays.push_back(
        pscop.addArray({"A" + std::to_string(k + 1), {N, N}}));

  for (std::size_t k = 0; k < nests; ++k) {
    // The clipped bound involves min/div arithmetic, so it stays a
    // derived parameter B_{k+1} (bound by bindingsFor, which evaluates
    // the same nestBounds the explicit builder uses).
    const pb::ParamExpr B = pb::ParamExpr::param("B" + std::to_string(k + 1));
    scop::ParamStatement stmt;
    stmt.name = "S" + std::to_string(k + 1);
    stmt.bounds = {{pb::ParamExpr(0), B}, {pb::ParamExpr(0), B}};
    stmt.writes = {{arrays[k], {{1, 0}, {0, 1}}, {0, 0}}};
    // The serial self neighbourhood of buildProgram: A_k[i][j],
    // A_k[i][j+1], A_k[i+1][j+1].
    stmt.reads = {{arrays[k], {{1, 0}, {0, 1}}, {0, 0}},
                  {arrays[k], {{1, 0}, {0, 1}}, {0, 1}},
                  {arrays[k], {{1, 0}, {0, 1}}, {1, 1}}};
    for (const ReadPattern& r : spec.reads[k])
      stmt.reads.push_back({arrays[r.source],
                            {{r.r0i, r.r0j}, {r.r1i, r.r1j}},
                            {r.r0c, r.r1c}});
    pscop.addStatement(std::move(stmt));
  }
  return ParamProgram{std::move(pscop), spec};
}

scop::Scop buildProgram(const ProgramSpec& spec, pb::Value n) {
  PIPOLY_CHECK(spec.nums.size() == spec.reads.size());
  const std::size_t nests = spec.nums.size();

  scop::ScopBuilder b(spec.name);
  std::vector<std::size_t> arrays;
  arrays.reserve(nests);
  for (std::size_t k = 0; k < nests; ++k)
    arrays.push_back(b.array("A" + std::to_string(k + 1), {n, n}));

  std::vector<pb::Value> bounds;
  for (std::size_t k = 0; k < nests; ++k) {
    const pb::Value bound = nestBoundForSource(spec.reads[k], n, bounds);
    bounds.push_back(bound);

    auto S = b.statement("S" + std::to_string(k + 1), 2);
    S.bound(0, 0, bound).bound(1, 0, bound);
    S.write(arrays[k], {S.dim(0), S.dim(1)});
    // Serial self accesses, as in Listing 1: A[i][j+1] carries the inner
    // dimension, A[i+1][j+1] the outer one — Polly can parallelize neither.
    S.read(arrays[k], {S.dim(0), S.dim(1)});
    S.read(arrays[k], {S.dim(0), S.dim(1) + 1});
    S.read(arrays[k], {S.dim(0) + 1, S.dim(1) + 1});
    for (const ReadPattern& r : spec.reads[k]) {
      S.read(arrays[r.source],
             {r.r0i * S.dim(0) + r.r0j * S.dim(1) + r.r0c,
              r.r1i * S.dim(0) + r.r1j * S.dim(1) + r.r1c});
    }
  }
  return b.build();
}

} // namespace pipoly::kernels
