#pragma once

// Real (floating-point) execution of the matmul-chain kernels: statement
// instances compute actual dot products on double matrices. Used by the
// examples, by correctness tests, and for real wall-clock runs on hosts
// with multiple cores.

#include "kernels/matmul.hpp"
#include "tasking/executor.hpp"

#include <cstdint>
#include <vector>

namespace pipoly::kernels {

class MatmulRunner {
public:
  MatmulRunner(MatmulVariant variant, std::size_t chainLength, pb::Value n);

  void reset();

  /// Executes one dynamic instance of statement `stmtIdx` (= chain stage).
  void execute(std::size_t stmtIdx, const pb::Tuple& iteration);

  tasking::StatementExecutor executor() {
    return [this](std::size_t stmt, const pb::Tuple& it) {
      execute(stmt, it);
    };
  }

  /// Quantised checksum over all result matrices (stable across orderings
  /// that respect the dependences).
  std::uint64_t fingerprint() const;

private:
  double& result(std::size_t stage, pb::Value i, pb::Value j);
  double operand(std::size_t stage, pb::Value k, pb::Value j) const;

  MatmulVariant variant_;
  std::size_t chainLength_;
  pb::Value n_;
  std::vector<double> input_;
  std::vector<std::vector<double>> operands_;
  std::vector<std::vector<double>> results_;
};

} // namespace pipoly::kernels
