#pragma once

// Real execution of a Table-9 program: every statement instance runs the
// actual compute kernel (next_prime over a SIZE-element buffer) on real
// arrays. Used for end-to-end correctness checks against the sequential
// run, and for real wall-clock measurements on hosts with multiple cores.

#include "kernels/compute.hpp"
#include "kernels/suite.hpp"
#include "scop/scop.hpp"
#include "tasking/executor.hpp"

#include <vector>

namespace pipoly::kernels {

class SuiteRunner {
public:
  /// The runner needs the spec (for the per-nest num values), the built
  /// SCoP, and the SIZE parameter of the compute kernel.
  SuiteRunner(const ProgramSpec& spec, const scop::Scop& scop, int size);

  void reset();

  /// Executes one dynamic instance: mixes the values this instance reads
  /// (per the declared accesses), runs the compute kernel with the nest's
  /// num, and stores the result.
  void execute(std::size_t stmtIdx, const pb::Tuple& iteration);

  tasking::StatementExecutor executor() {
    return [this](std::size_t stmtIdx, const pb::Tuple& it) {
      execute(stmtIdx, it);
    };
  }

  std::uint64_t fingerprint() const;

private:
  std::uint64_t& element(std::size_t arrayId, const pb::Tuple& subs);

  const ProgramSpec* spec_;
  const scop::Scop* scop_;
  int size_;
  std::vector<std::vector<std::uint64_t>> arrays_;
};

} // namespace pipoly::kernels
