#pragma once

// Real execution of a reduction-chain kernel with exact integer payloads.
//
// A statement with a declared reduction operator has the semantics
// A[f(it)] = A[f(it)] ⊕ g(other reads, it): the contribution g never
// reads the accumulator, so any execution order that folds every
// contribution exactly once yields the bit-identical result (all
// ReductionOp operators are exactly associative and commutative over
// uint64). That is what makes the sequential run an exact oracle for the
// relaxed parallel schedule.
//
// Two modes:
//  - oracle mode (no TaskProgram): accumulates straight into the array —
//    also the right executor for reductionMode=off programs, whose block
//    chain serializes the accumulation.
//  - task mode (with a TaskProgram containing ReductionCombine tasks):
//    every partial block accumulates into a private copy of the reduction
//    array (initialized to the operator's identity); the combine task's
//    fold k folds partial copy k back into the real array in block order
//    and resets it to the identity (so replayed programs stay correct).

#include "codegen/task_program.hpp"
#include "scop/scop.hpp"
#include "tasking/executor.hpp"

#include <cstdint>
#include <map>
#include <vector>

namespace pipoly::kernels {

class ReductionRunner {
public:
  /// Oracle / off-mode executor. `computeSize` > 0 runs the real compute
  /// kernel per instance (for wall-clock benchmarks); 0 keeps the pure
  /// hash payload (fast, for correctness tests).
  explicit ReductionRunner(const scop::Scop& scop, int computeSize = 0);

  /// Task-mode executor for `program` (lowered from the same SCoP):
  /// derives the iteration -> partial-slot map from the program's Block
  /// tasks for every statement that has a ReductionCombine task.
  ReductionRunner(const scop::Scop& scop, const codegen::TaskProgram& program,
                  int computeSize = 0);

  void reset();

  /// Executes one dynamic instance. A tuple of arity depth+1 is a combine
  /// fold (k, 0, ..., 0): fold partial copy k into the array.
  void execute(std::size_t stmtIdx, const pb::Tuple& iteration);

  tasking::StatementExecutor executor() {
    return [this](std::size_t stmtIdx, const pb::Tuple& it) {
      execute(stmtIdx, it);
    };
  }

  std::uint64_t fingerprint() const;

private:
  std::size_t flatIndex(std::size_t arrayId, const pb::Tuple& subs) const;
  std::uint64_t contributionSeed(std::size_t stmtIdx, const pb::Tuple& it,
                                 bool skipReductionReads);

  const scop::Scop* scop_;
  int computeSize_;
  std::vector<std::vector<std::uint64_t>> arrays_;
  // Per statement: iteration -> partial slot (empty when the statement has
  // no combine task in the program / in oracle mode).
  std::vector<std::map<pb::Tuple, std::size_t>> slotOf_;
  // Per statement: one private accumulator array copy per partial slot.
  std::vector<std::vector<std::vector<std::uint64_t>>> partials_;
};

} // namespace pipoly::kernels
