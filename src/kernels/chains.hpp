#pragma once

// Additional realistic pipeline-chain workloads beyond the paper's two
// benchmark sets — the kind of imbalanced, serial-per-stage programs the
// paper's introduction motivates (§1: "well suited to handle imbalanced
// iterations"). All fit the paper's program model: consecutive depth-2
// nests, each writing its own array and reading earlier ones.

#include "scop/scop.hpp"

#include <vector>

namespace pipoly::kernels {

/// `stages` Jacobi-style smoothing stages: stage k reads a 3x3
/// neighbourhood of stage k-1's grid plus its own previous column
/// (making each stage serial), on an n x n grid.
scop::Scop jacobiChain(std::size_t stages, pb::Value n);

/// Gauss–Seidel-style chain: each stage reads its *own* grid at
/// [i-1][j] and [i][j-1] (the classic sweep dependencies, serial in both
/// dims) plus the previous stage's grid at [i][j].
scop::Scop seidelChain(std::size_t stages, pb::Value n);

/// An imbalanced chain: `stages` nests whose iteration domains shrink by
/// `shrink` per stage (stage k is ((n - k*shrink) x (n - k*shrink))),
/// each reading the previous stage point-wise. Models a coarsening
/// multigrid-like pipeline where time(L_max) dominates (§4.4's average
/// case, Fig. 5).
scop::Scop shrinkingChain(std::size_t stages, pb::Value n, pb::Value shrink);

/// Per-stage relative weights for an imbalanced cost model: stage k of a
/// shrinking chain gets weight `weights[k]`.
std::vector<double> defaultStageWeights(std::size_t stages);

/// FDTD-like chain: each stage statement updates *two* field arrays
/// (multi-write statements) from the previous stage's fields plus its own
/// neighbourhood — exercises union write relations through the whole
/// stack.
scop::Scop fdtdChain(std::size_t stages, pb::Value n);

} // namespace pipoly::kernels
