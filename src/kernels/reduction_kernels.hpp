#pragma once

// Reduction-heavy pipeline chains: each kernel is a producer nest, an
// accumulation nest (a statement of the form A[f(i)] = A[f(i)] ⊕ expr
// with a declared associative-commutative operator), and a consumer nest
// reading the accumulated result. Under DetectOptions::reductionMode ==
// Auto the middle nest's reduction self-dependences are relaxed
// (pipeline/reduction.hpp) and it splits into parallel partial blocks
// plus a combine task; with reductionMode == Off the legacy serial
// chain-ordered route handles it bit-identically to earlier releases.

#include "scop/scop.hpp"

#include <string>
#include <vector>

namespace pipoly::kernels {

/// for i, j: X[i][j] = f(X[i][j-1])       (serial producer)
/// for i, j: dot[0] += g(X[i][j])         (scalar Add reduction)
/// for i:    out[i] = h(dot[0], out[i-1]) (consumer of the combined value)
scop::Scop dotProductChain(pb::Value n);

/// for i:    data[i] = f(data[i-1])                     (serial producer)
/// for b, t: hist[b] ^= g(data[b*chunk + t])            (binned Xor)
/// for b:    out[b] = h(hist[b])                        (per-bin consumer)
/// with chunk = n / bins; requires bins to divide n.
scop::Scop histogramKernel(pb::Value n, pb::Value bins);

/// for i, j: G[i][j] = f(G[i][j-1], G[i-1][j])          (serial stencil)
/// for i, j: acc[i] = min(acc[i], g(G[i-1..i+1][j]))    (row Min reduction)
/// for i:    out[i] = h(acc[i], out[i-1])               (serial consumer)
scop::Scop stencilAccumulate(pb::Value n);

/// for i, j: norm[0] += g(A[i][j])       (scalar Add over an input array)
/// for i:    out[i] = h(norm[0], out[i-1]) (serial consumer)
/// A has no producer statement, so no incoming pipeline map subdivides
/// the accumulation nest: its partial-block split comes entirely from
/// DetectOptions::reductionBlocks (the pure-accumulation route of
/// Algorithm 1). The granularity ablation sweeps that knob on this
/// kernel.
scop::Scop normAccumulate(pb::Value n);

/// One row of the reduction kernel grid (the Table-9-style extension for
/// the reduction route): name, builder, and the statement index / operator
/// of the accumulation nest for reporting.
struct ReductionKernelSpec {
  std::string name;
  scop::Scop (*build)(pb::Value n);
  std::size_t reductionStmt; // index of the accumulation statement
  scop::ReductionOp op;
};

/// The four grid kernels (dot_product_chain, histogram,
/// stencil_accumulate, and norm_accumulate; histogram fixes bins = 8).
const std::vector<ReductionKernelSpec>& reductionKernels();

/// Looks a grid kernel up by name.
const ReductionKernelSpec& reductionKernelByName(const std::string& name);

} // namespace pipoly::kernels
