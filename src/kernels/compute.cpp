#include "kernels/compute.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

#include <array>
#include <vector>

namespace pipoly::kernels {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1)
      result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

} // namespace

bool isPrime(std::uint64_t n) {
  if (n < 2)
    return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0)
      return n == p;
  }
  // n - 1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These bases are known to be a deterministic witness set for all
  // 64-bit integers (Sorenson & Webster).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1)
      continue;
    bool witness = true;
    for (int i = 1; i < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness)
      return false;
  }
  return true;
}

std::uint64_t nextPrime(std::uint64_t n) {
  std::uint64_t candidate = n + 1;
  if (candidate <= 2)
    return 2;
  if ((candidate & 1) == 0)
    ++candidate;
  while (!isPrime(candidate))
    candidate += 2;
  return candidate;
}

std::uint64_t computeKernel(std::uint64_t seed, int num, int size) {
  PIPOLY_CHECK(num >= 1 && size >= 1);
  // Seed the SIZE "limbs" deterministically; keep values in a 40-bit range
  // so a next_prime step costs microseconds, like a small mpz.
  constexpr std::uint64_t kMask = (std::uint64_t(1) << 40) - 1;
  std::vector<std::uint64_t> buffer(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    buffer[static_cast<std::size_t>(i)] =
        (hashCombine(seed, static_cast<std::uint64_t>(i)) & kMask) | 1;

  for (int round = 0; round < num; ++round) {
    for (int i = 0; i < size; ++i) {
      auto idx = static_cast<std::size_t>(i);
      // Element-wise mix (the paper adds input arguments element-wise)
      // followed by next_prime.
      std::uint64_t mixed =
          (buffer[idx] +
           buffer[static_cast<std::size_t>((i + 1) % size)]) &
          kMask;
      buffer[idx] = nextPrime(mixed | 1);
    }
  }

  std::uint64_t checksum = 0;
  for (std::uint64_t v : buffer)
    checksum = hashCombine(checksum, v);
  return checksum;
}

double measureComputeCost(int num, int size) {
  // Warm up once, then time enough repetitions for a stable average.
  volatile std::uint64_t sink = computeKernel(1, num, size);
  const int reps = 3;
  Stopwatch sw;
  for (int r = 0; r < reps; ++r)
    sink = computeKernel(static_cast<std::uint64_t>(r) + 2, num, size);
  (void)sink;
  return sw.seconds() / reps;
}

} // namespace pipoly::kernels
