#include "kernels/matmul.hpp"

#include "scop/builder.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace pipoly::kernels {

std::string variantName(MatmulVariant v) {
  switch (v) {
  case MatmulVariant::NMM:
    return "nmm";
  case MatmulVariant::NMMT:
    return "nmmt";
  case MatmulVariant::GNMM:
    return "gnmm";
  case MatmulVariant::GNMMT:
    return "gnmmt";
  }
  PIPOLY_UNREACHABLE("variant");
}

bool isTransposed(MatmulVariant v) {
  return v == MatmulVariant::NMMT || v == MatmulVariant::GNMMT;
}

bool isGeneralized(MatmulVariant v) {
  return v == MatmulVariant::GNMM || v == MatmulVariant::GNMMT;
}

scop::Scop matmulChain(MatmulVariant variant, std::size_t chainLength,
                       pb::Value n) {
  PIPOLY_CHECK(chainLength >= 1);
  const bool generalized = isGeneralized(variant);

  scop::ScopBuilder b(variantName(variant) + std::to_string(chainLength));
  std::size_t input = b.array("In", {n, n});
  std::vector<std::size_t> operands, results;
  for (std::size_t k = 0; k < chainLength; ++k) {
    operands.push_back(b.array("B" + std::to_string(k + 1), {n, n}));
    results.push_back(b.array("M" + std::to_string(k + 1), {n, n}));
  }

  for (std::size_t k = 0; k < chainLength; ++k) {
    auto S = b.statement("S" + std::to_string(k + 1), 2);
    if (generalized) {
      // Domain shrunk so the C[i+1][j] / C[i][j-1] reads stay in bounds.
      S.bound(0, 0, n - 1).bound(1, 1, n);
    } else {
      S.bound(0, 0, n).bound(1, 0, n);
    }
    S.write(results[k], {S.dim(0), S.dim(1)});

    // Row i of the previous result (or of the input matrix for k = 0).
    const std::size_t prev = k == 0 ? input : results[k - 1];
    S.readRange(prev, {S.rangeDim(0, 1), S.rangeAux(0, 1)}, {n});
    // Column j of the operand — or row j when transposed beforehand. The
    // dependence shape is identical; only the memory layout (and thus the
    // measured cost) differs.
    if (isTransposed(variant))
      S.readRange(operands[k], {S.rangeDim(1, 1), S.rangeAux(0, 1)}, {n});
    else
      S.readRange(operands[k], {S.rangeAux(0, 1), S.rangeDim(1, 1)}, {n});

    if (generalized) {
      // C[i][j] *= C[i+1][j] + C[i][j-1]: carried dependences in both
      // dimensions of this nest.
      S.read(results[k], {S.dim(0) + 1, S.dim(1)});
      S.read(results[k], {S.dim(0), S.dim(1) - 1});
    }
  }
  return b.build();
}

namespace {
double timeLoop(const std::function<double()>& body, int reps) {
  volatile double sink = body(); // warm-up
  Stopwatch sw;
  for (int r = 0; r < reps; ++r)
    sink = body();
  (void)sink;
  return sw.seconds() / reps;
}
} // namespace

double measureDotCost(pb::Value n, bool transposed) {
  const auto size = static_cast<std::size_t>(n);
  std::vector<double> a(size * size, 1.5), bmat(size * size, 2.5);
  // Average over a full row of dot products so cache effects show up.
  double perCall = timeLoop(
      [&] {
        double acc = 0;
        for (std::size_t j = 0; j < size; ++j) {
          double dot = 0;
          for (std::size_t k = 0; k < size; ++k)
            dot += a[k] * (transposed ? bmat[j * size + k]
                                      : bmat[k * size + j]);
          acc += dot;
        }
        return acc;
      },
      5);
  return perCall / static_cast<double>(size); // per element
}

double measureTiledMatmulCostPerElement(pb::Value n) {
  const auto size = static_cast<std::size_t>(n);
  constexpr std::size_t kTile = 32;
  std::vector<double> a(size * size, 1.5), bmat(size * size, 2.5),
      c(size * size, 0.0);
  double perCall = timeLoop(
      [&] {
        std::fill(c.begin(), c.end(), 0.0);
        for (std::size_t ii = 0; ii < size; ii += kTile)
          for (std::size_t kk = 0; kk < size; kk += kTile)
            for (std::size_t jj = 0; jj < size; jj += kTile)
              for (std::size_t i = ii; i < std::min(ii + kTile, size); ++i)
                for (std::size_t k = kk; k < std::min(kk + kTile, size); ++k) {
                  const double av = a[i * size + k];
                  for (std::size_t j = jj; j < std::min(jj + kTile, size);
                       ++j)
                    c[i * size + j] += av * bmat[k * size + j];
                }
        return c[size + 1];
      },
      2);
  return perCall / static_cast<double>(size * size); // per element
}

} // namespace pipoly::kernels
