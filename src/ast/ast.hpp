#pragma once

// §5.3 — AST generation. The schedule tree is lowered to an AST whose
// shape mirrors Fig. 6: one loop nest per statement, where the loops
// iterate over block coordinates, the innermost block loop is the
// *pipeline loop*, and its body is a task annotated (via the schedule
// tree's mark nodes) with the pipeline dependency information.
//
// Because the library operates on instantiated SCoPs, the AST keeps the
// explicit block structure (block representatives + expansion relation)
// rather than symbolic bounds; the printer renders Fig.-6-style pseudo-C
// with concrete bounds for inspection.

#include "pipeline/detect.hpp"
#include "schedule/tree.hpp"
#include "scop/scop.hpp"

#include <string>
#include <vector>

namespace pipoly::ast {

/// The task annotation attached to the body of a pipeline loop
/// (§5.3: "they also contain the pipeline dependency information").
struct TaskAnnotation {
  std::size_t stmtIdx = 0;
  std::vector<pipeline::InRequirement> inRequirements;
  pb::IntMap outDependency;
  /// Same-nest ordering mode; see pipeline::StatementPipelineInfo.
  bool chainOrdering = true;
  pb::IntMap selfEdges;
  /// Reduction relaxation of this statement; when `reduction.relaxed`
  /// the lowering appends a combine task after the partial blocks.
  pipeline::ReductionInfo reduction;
};

/// One loop nest of the generated AST.
struct AstLoopNest {
  std::size_t stmtIdx;
  std::string stmtName;
  /// Iteration space of the block loops (= block representatives, walked
  /// lexicographically).
  pb::IntTupleSet blockReps;
  /// block representative -> member iterations (intra-block loops).
  pb::IntMap expansion;
  /// Depth of the pipeline loop within the block loops (the innermost
  /// block dimension).
  std::size_t pipelineLoopDepth;
  TaskAnnotation annotation;
};

struct Ast {
  std::vector<AstLoopNest> nests; // textual (sequence) order
};

/// Lowers a pipelined schedule tree (Algorithm 2 output) to the AST.
Ast buildAst(const scop::Scop& scop, const sched::ScheduleNode& root);

/// Renders the AST as Fig.-6-style pseudo-C, with `// task` annotations on
/// every pipeline loop body.
std::string printAst(const Ast& ast, const scop::Scop& scop);

/// Renders the AST as OpenMP-annotated pseudo-source: the pipeline-loop
/// body becomes `#pragma omp task depend(...)` with symbolic in/out
/// dependency expressions — the presentation form of the paper's
/// generated code (§5.4/§5.5).
std::string printAnnotatedSource(const Ast& ast, const scop::Scop& scop);

} // namespace pipoly::ast
