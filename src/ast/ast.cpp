#include "ast/ast.hpp"

#include "schedule/build.hpp"
#include "support/assert.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace pipoly::ast {

Ast buildAst(const scop::Scop& scop, const sched::ScheduleNode& root) {
  sched::validatePipelineSchedule(root, scop);
  Ast ast;
  ast.nests.reserve(root.numChildren());
  for (std::size_t s = 0; s < root.numChildren(); ++s) {
    const sched::ScheduleNode& domainNode = root.child(s);
    const sched::ScheduleNode& blockBand = domainNode.child(0);
    const sched::ScheduleNode& expansion = blockBand.child(0);
    const sched::ScheduleNode& mark = expansion.child(0);
    const sched::PipelineMark& info = mark.markInfo();

    AstLoopNest nest;
    nest.stmtIdx = info.stmtIdx;
    nest.stmtName = scop.statement(info.stmtIdx).name();
    nest.blockReps = domainNode.domainSet();
    nest.expansion = expansion.contraction().inverse();
    nest.pipelineLoopDepth = nest.blockReps.space().arity() - 1;
    nest.annotation =
        TaskAnnotation{info.stmtIdx, info.inRequirements, info.outDependency,
                       info.chainOrdering, info.selfEdges, info.reduction};
    ast.nests.push_back(std::move(nest));
  }
  return ast;
}

namespace {

/// Per-outer-value bounds of the last coordinate of a set; used to print
/// loop bounds. Returns (uniformLower, uniformUpper) when the bounds do
/// not depend on the outer coordinates, nullopt components otherwise.
struct LastDimBounds {
  bool uniform;
  pb::Value lower = 0, upper = 0;
};

LastDimBounds lastDimBounds(const pb::IntTupleSet& set) {
  std::map<pb::Tuple, std::pair<pb::Value, pb::Value>> byPrefix;
  const std::size_t d = set.space().arity();
  for (const pb::Tuple& t : set.points()) {
    pb::Tuple prefix = t.slice(0, d - 1);
    pb::Value v = t[d - 1];
    auto [it, fresh] = byPrefix.try_emplace(prefix, v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  }
  LastDimBounds out{true};
  bool first = true;
  for (const auto& [prefix, mm] : byPrefix) {
    if (first) {
      out.lower = mm.first;
      out.upper = mm.second;
      first = false;
    } else if (mm.first != out.lower || mm.second != out.upper) {
      out.uniform = false;
    }
  }
  return out;
}

void printLoopHeader(std::ostream& os, int indent, std::size_t dim,
                     pb::Value lo, pb::Value hi, pb::Value stride,
                     bool uniform, bool isPipelineLoop) {
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
  os << "for (c" << dim << " = " << lo << "; c" << dim << " <= " << hi
     << "; c" << dim << " += " << (stride > 0 ? stride : 1) << ")";
  if (!uniform)
    os << " /* bounds vary with outer dims; shown: hull */";
  if (isPipelineLoop)
    os << " // pipeline loop";
  os << " {\n";
}

} // namespace

std::string printAst(const Ast& ast, const scop::Scop& scop) {
  std::ostringstream os;
  for (const AstLoopNest& nest : ast.nests) {
    const std::size_t depth = nest.blockReps.space().arity();
    os << "// loop nest of statement " << nest.stmtName << " ("
       << nest.blockReps.size() << " blocks, "
       << scop.statement(nest.stmtIdx).domain().size() << " iterations)\n";

    // Outer block loops: print hull bounds and the detected stride per
    // dimension (e.g. the even-column block boundaries of Listing 1 show
    // as `c1 += 2`).
    const std::vector<pb::DimBounds> hull = nest.blockReps.rectangularHull();
    for (std::size_t d = 0; d < depth; ++d) {
      bool uniform = true;
      if (d + 1 == depth) {
        LastDimBounds b = lastDimBounds(nest.blockReps);
        uniform = b.uniform;
      }
      printLoopHeader(os, static_cast<int>(d), d, hull[d].lower,
                      hull[d].upper, nest.blockReps.strideOfDim(d), uniform,
                      d == nest.pipelineLoopDepth);
    }

    const std::string bodyPad(depth * 2, ' ');
    os << bodyPad << "// task: " << nest.stmtName << " block [c0..c"
       << depth - 1 << "]";
    os << "; out-dep: (" << nest.stmtIdx << ", block)";
    for (const pipeline::InRequirement& req : nest.annotation.inRequirements)
      os << "; in-dep: stmt " << req.srcStmtIdx
         << (req.viaCombine ? " via combine" : " via Q");
    if (nest.annotation.reduction.relaxed)
      os << "; reduction("
         << scop::reductionOpName(nest.annotation.reduction.op)
         << ") -> partial blocks + combine";
    os << '\n';
    os << bodyPad << nest.stmtName << "_block(c0..c" << depth - 1 << ");\n";

    for (std::size_t d = depth; d-- > 0;)
      os << std::string(d * 2, ' ') << "}\n";
  }
  return os.str();
}

std::string printAnnotatedSource(const Ast& ast, const scop::Scop& scop) {
  std::ostringstream os;
  os << "#pragma omp parallel\n#pragma omp single\n{\n";
  for (const AstLoopNest& nest : ast.nests) {
    const std::size_t depth = nest.blockReps.space().arity();
    const std::vector<pb::DimBounds> hull = nest.blockReps.rectangularHull();
    std::string pad = "  ";
    for (std::size_t d = 0; d < depth; ++d) {
      os << pad << "for (c" << d << " = " << hull[d].lower << "; c" << d
         << " <= " << hull[d].upper << "; c" << d << " += "
         << std::max<pb::Value>(1, nest.blockReps.strideOfDim(d)) << ")";
      if (d == nest.pipelineLoopDepth)
        os << " /* pipeline loop */";
      os << "\n";
      pad += "  ";
    }
    // The task pragma: out-dependency on this block's slot, in-deps from
    // the Q_S maps (symbolically: the source statement's dependency slot
    // indexed by the requirement map) plus the same-nest ordering.
    os << pad << "#pragma omp task \\\n"
       << pad << "    depend(out: dep_" << nest.stmtName << "[c0..c"
       << depth - 1 << "])";
    for (const pipeline::InRequirement& req : nest.annotation.inRequirements)
      os << " \\\n"
         << pad << "    depend(in: dep_"
         << scop.statement(req.srcStmtIdx).name() << "[Q_"
         << nest.stmtName << "^" << scop.statement(req.srcStmtIdx).name()
         << "(c0..c" << depth - 1 << ")])";
    if (nest.annotation.chainOrdering)
      os << " \\\n"
         << pad << "    depend(in: self[funcCount[" << nest.stmtIdx
         << "] - 1]) depend(out: self[funcCount[" << nest.stmtIdx << "]])";
    os << "\n" << pad << nest.stmtName << "_block(c0..c" << depth - 1
       << ");\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace pipoly::ast
