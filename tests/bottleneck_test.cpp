#include "sim/bottleneck.hpp"

#include "codegen/task_program.hpp"
#include "kernels/chains.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::sim {
namespace {

TEST(BottleneckTest, IdentifiesHeaviestNest) {
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost = {1e-5, 5e-5, 1e-5}; // middle nest dominates
  SimResult r = simulate(prog, model, SimConfig{8});
  BottleneckReport report = analyzeBottleneck(r, prog, scop, model);
  EXPECT_EQ(report.maxNest, 1u);
  EXPECT_DOUBLE_EQ(report.maxNestTime, 81 * 5e-5);
}

TEST(BottleneckTest, Equation6TermsAreConsistent) {
  scop::Scop scop = kernels::shrinkingChain(4, 20, 4);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost = kernels::defaultStageWeights(4);
  for (double& w : model.iterationCost)
    w *= 1e-5;
  SimResult r = simulate(prog, model, SimConfig{8});
  BottleneckReport report = analyzeBottleneck(r, prog, scop, model);
  EXPECT_GE(report.startingTime, 0.0);
  EXPECT_GE(report.finishingTime, 0.0);
  EXPECT_GE(report.overlapGap(), -1e-9)
      << "makespan must be at least start + L_max + finish";
  EXPECT_DOUBLE_EQ(report.makespan, r.makespan);
}

TEST(BottleneckTest, PerStatementWorkSumsToTotal) {
  scop::Scop scop = testing::listing3(14);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost.assign(3, 2e-5);
  SimResult r = simulate(prog, model, SimConfig{4});
  BottleneckReport report = analyzeBottleneck(r, prog, scop, model);
  double sum = 0;
  for (double w : report.perStatementWork)
    sum += w;
  EXPECT_NEAR(sum, r.totalWork, 1e-9);
}

TEST(BottleneckTest, RenderMentionsEveryStatement) {
  scop::Scop scop = testing::listing3(12);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost.assign(3, 1e-5);
  SimResult r = simulate(prog, model, SimConfig{4});
  std::string text = renderBottleneckReport(
      analyzeBottleneck(r, prog, scop, model), scop);
  for (const char* needle : {"L_max nest", "starting time",
                             "finishing time", "S:", "R:", "U:"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(BottleneckTest, RequiresSimulatedEvents) {
  scop::Scop scop = testing::listing1(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost.assign(2, 1e-5);
  SimResult empty; // no events
  EXPECT_THROW((void)analyzeBottleneck(empty, prog, scop, model), Error);
}

TEST(ChromeTraceTest, WellFormedOutput) {
  scop::Scop scop = testing::listing1(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  model.iterationCost.assign(2, 1e-5);
  SimResult r = simulate(prog, model, SimConfig{2});
  std::string json = exportChromeTrace(r, prog, scop);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"cat\": \"task\"", pos)) != std::string::npos) {
    ++events;
    ++pos;
  }
  EXPECT_EQ(events, prog.tasks.size());
}

} // namespace
} // namespace pipoly::sim
