#include "pipeline/detect.hpp"

#include "codegen/task_program.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "tasking/tasking.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

namespace pipoly::pipeline {
namespace {

TEST(DetectOptionsTest, CoarseningReducesTaskCount) {
  scop::Scop scop = testing::listing1(20);
  std::size_t prev = detectPipeline(scop).totalBlocks();
  for (std::size_t factor : {2u, 4u, 8u}) {
    DetectOptions opt;
    opt.coarsening = factor;
    std::size_t blocks = detectPipeline(scop, opt).totalBlocks();
    EXPECT_LT(blocks, prev) << "factor " << factor;
    prev = blocks;
  }
}

TEST(DetectOptionsTest, CoarseningKeepsPartition) {
  scop::Scop scop = testing::listing3(16);
  DetectOptions opt;
  opt.coarsening = 3;
  PipelineInfo info = detectPipeline(scop, opt);
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    const StatementPipelineInfo& st = info.statements[s];
    std::size_t total = 0;
    for (const pb::Tuple& rep : st.blockReps.points())
      total += st.expansion.imagesOf(rep).size();
    EXPECT_EQ(total, scop.statement(s).domain().size());
  }
}

TEST(DetectOptionsTest, CoarseningFactorOneIsDefault) {
  scop::Scop scop = testing::listing1(12);
  DetectOptions opt;
  opt.coarsening = 1;
  EXPECT_EQ(detectPipeline(scop, opt).totalBlocks(),
            detectPipeline(scop).totalBlocks());
}

/// Every options combination must still produce a correct program: the
/// strongest check is end-to-end execution equivalence.
class DetectOptionsCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(DetectOptionsCorrectnessTest, ExecutionMatchesSequential) {
  auto [mode, coarsening] = GetParam();
  DetectOptions opt;
  opt.integration = mode == 0 ? DetectOptions::Integration::LexminUnion
                              : DetectOptions::Integration::FirstMapOnly;
  opt.coarsening = coarsening;

  for (auto scop : {testing::listing1(14), testing::listing3(14),
                    testing::chain(4, 9)}) {
    codegen::TaskProgram prog = codegen::compilePipeline(scop, opt);
    EXPECT_NO_THROW(prog.validate(scop));
    const std::uint64_t expected = testing::sequentialFingerprint(scop);
    testing::InterpretedKernel kernel(scop);
    auto layer = tasking::makeThreadPoolBackend(4);
    tasking::executeTaskProgram(prog, *layer, kernel.executor());
    EXPECT_EQ(kernel.fingerprint(), expected)
        << "mode=" << mode << " coarsening=" << coarsening;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectOptionsCorrectnessTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{16})));

TEST(DetectOptionsTest, IntegratedBlocksBeatFirstMapOnly) {
  // §4.2's claim (Fig. 4): the optimal (integrated) blocks maximise the
  // number of concurrently runnable blocks. On Listing 3 the integrated
  // blocking must never yield a worse simulated makespan.
  scop::Scop scop = testing::listing3(20);
  sim::CostModel model;
  model.iterationCost.assign(scop.numStatements(), 1.0);

  codegen::TaskProgram integrated = codegen::compilePipeline(scop);
  DetectOptions firstOnly;
  firstOnly.integration = DetectOptions::Integration::FirstMapOnly;
  codegen::TaskProgram naive = codegen::compilePipeline(scop, firstOnly);

  double mIntegrated =
      sim::simulate(integrated, model, sim::SimConfig{8}).makespan;
  double mNaive = sim::simulate(naive, model, sim::SimConfig{8}).makespan;
  EXPECT_LE(mIntegrated, mNaive + 1e-9);
}

TEST(DetectOptionsTest, ExtremeCoarseningDegeneratesToOneTaskPerNest) {
  scop::Scop scop = testing::listing1(12);
  DetectOptions opt;
  opt.coarsening = 1000000;
  PipelineInfo info = detectPipeline(scop, opt);
  for (const StatementPipelineInfo& st : info.statements)
    EXPECT_EQ(st.blockReps.size(), 1u);
}

} // namespace
} // namespace pipoly::pipeline
