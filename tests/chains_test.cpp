#include "kernels/chains.hpp"

#include "codegen/task_program.hpp"
#include "kernels/matmul_runner.hpp"
#include "scop/dependences.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "tasking/tasking.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

namespace pipoly::kernels {
namespace {

void expectEquivalent(const scop::Scop& scop) {
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  prog.validate(scop);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  testing::InterpretedKernel kernel(scop);
  auto layer = tasking::makeThreadPoolBackend(4);
  tasking::executeTaskProgram(prog, *layer, kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);
}

TEST(JacobiChainTest, BuildsAndIsSerialPerStage) {
  scop::Scop scop = jacobiChain(3, 10);
  EXPECT_EQ(scop.numStatements(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    auto par = scop::parallelDims(scop, s);
    EXPECT_FALSE(par[0]);
    EXPECT_FALSE(par[1]);
  }
}

TEST(JacobiChainTest, PipelinesAndExecutesCorrectly) {
  scop::Scop scop = jacobiChain(3, 10);
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_EQ(info.maps.size(), 2u); // consecutive stages only
  expectEquivalent(scop);
}

TEST(SeidelChainTest, PipelinesAndExecutesCorrectly) {
  scop::Scop scop = seidelChain(3, 10);
  EXPECT_TRUE(pipeline::detectPipeline(scop).hasPipeline());
  expectEquivalent(scop);
}

TEST(ShrinkingChainTest, DomainsShrink) {
  scop::Scop scop = shrinkingChain(4, 16, 3);
  EXPECT_GT(scop.statement(0).domain().size(),
            scop.statement(3).domain().size());
  expectEquivalent(scop);
}

TEST(ShrinkingChainTest, TooMuchShrinkThrows) {
  EXPECT_THROW((void)shrinkingChain(8, 10, 3), Error);
}

TEST(ShrinkingChainTest, LmaxBoundHolds) {
  // §4.4 / Fig. 5: with imbalanced stages the pipeline is bounded below
  // by the heaviest stage and above by the sequential sum.
  scop::Scop scop = shrinkingChain(4, 20, 4);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  sim::CostModel model;
  model.iterationCost = defaultStageWeights(4);
  for (double& w : model.iterationCost)
    w *= 1e-5;
  sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{8});
  EXPECT_GE(r.makespan, sim::maxNestTime(scop, model) - 1e-12);
  EXPECT_LE(r.makespan, sim::sequentialTime(scop, model) + 1e-12);
  // And pipelining does overlap something.
  EXPECT_LT(r.makespan, 0.95 * sim::sequentialTime(scop, model));
}

TEST(FdtdChainTest, MultiWriteStagesPipelineCorrectly) {
  scop::Scop scop = fdtdChain(3, 9);
  EXPECT_EQ(scop.numStatements(), 3u);
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_EQ(info.maps.size(), 2u); // consecutive stages
  expectEquivalent(scop);
}

TEST(FdtdChainTest, WritesAreUnionOfTwoArrays) {
  scop::Scop scop = fdtdChain(2, 8);
  EXPECT_EQ(scop.arraysWrittenBy(0).size(), 2u);
  // Both components must be injectively written.
  for (std::size_t arrayId : scop.arraysWrittenBy(0))
    EXPECT_TRUE(scop.writeRelation(0, arrayId).isInjective());
}

TEST(StageWeightsTest, HumpShaped) {
  auto w = defaultStageWeights(5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_GT(w[2], w[0]);
  EXPECT_GT(w[2], w[4]);
}

TEST(MatmulRunnerTest, PipelinedMatchesSequentialAllVariants) {
  for (auto v : {MatmulVariant::NMM, MatmulVariant::NMMT,
                 MatmulVariant::GNMM, MatmulVariant::GNMMT}) {
    scop::Scop scop = matmulChain(v, 2, 10);
    codegen::TaskProgram prog = codegen::compilePipeline(scop);

    MatmulRunner seq(v, 2, 10);
    tasking::executeSequential(scop, seq.executor());

    MatmulRunner par(v, 2, 10);
    auto layer = tasking::makeThreadPoolBackend(4);
    tasking::executeTaskProgram(prog, *layer, par.executor());
    EXPECT_EQ(par.fingerprint(), seq.fingerprint()) << variantName(v);
  }
}

TEST(MatmulRunnerTest, DeterministicAcrossRuns) {
  MatmulRunner a(MatmulVariant::GNMM, 2, 8);
  MatmulRunner b(MatmulVariant::GNMM, 2, 8);
  scop::Scop scop = matmulChain(MatmulVariant::GNMM, 2, 8);
  tasking::executeSequential(scop, a.executor());
  tasking::executeSequential(scop, b.executor());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SchedulingPolicyTest, PoliciesAreCorrectAndComparable) {
  scop::Scop scop = shrinkingChain(4, 18, 3);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  sim::CostModel model;
  model.iterationCost.assign(scop.numStatements(), 1e-5);
  double fifo = 0;
  for (auto policy : {sim::SimConfig::Policy::CreationOrder,
                      sim::SimConfig::Policy::CriticalPathFirst,
                      sim::SimConfig::Policy::LongestTaskFirst}) {
    sim::SimConfig cfg{4};
    cfg.policy = policy;
    sim::SimResult r = sim::simulate(prog, model, cfg);
    // All policies obey dependencies: makespan >= critical path, and all
    // tasks run.
    EXPECT_GE(r.makespan, r.criticalPath - 1e-12);
    EXPECT_EQ(r.events.size(), prog.tasks.size());
    if (policy == sim::SimConfig::Policy::CreationOrder)
      fifo = r.makespan;
    else
      // Alternative policies must stay within 2x of FIFO here (sanity).
      EXPECT_LT(r.makespan, 2.0 * fifo);
  }
}

} // namespace
} // namespace pipoly::kernels
