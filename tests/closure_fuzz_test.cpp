// Transitive-closure tests plus fuzz tests for the two parsers (the
// isl-style set/map parser and the mini-C frontend): malformed input of
// any shape must raise pipoly::Error, never crash or hang.

#include "frontend/frontend.hpp"
#include "presburger/map.hpp"
#include "presburger/parser.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pipoly {
namespace {

using pb::IntMap;
using pb::IntTupleSet;
using pb::Space;
using pb::Tuple;

const Space kN("N", 1);

TEST(TransitiveClosureTest, Chain) {
  IntMap m(kN, kN, {{{0}, {1}}, {{1}, {2}}, {{2}, {3}}});
  IntMap closure = m.transitiveClosure();
  EXPECT_EQ(closure.size(), 6u);
  EXPECT_TRUE(closure.contains(Tuple{0}, Tuple{3}));
  EXPECT_TRUE(closure.contains(Tuple{1}, Tuple{3}));
  EXPECT_FALSE(closure.contains(Tuple{3}, Tuple{0}));
}

TEST(TransitiveClosureTest, Diamond) {
  IntMap m(kN, kN, {{{0}, {1}}, {{0}, {2}}, {{1}, {3}}, {{2}, {3}}});
  IntMap closure = m.transitiveClosure();
  EXPECT_TRUE(closure.contains(Tuple{0}, Tuple{3}));
  EXPECT_EQ(closure.imagesOf(Tuple{0}).size(), 3u);
}

TEST(TransitiveClosureTest, CycleThrows) {
  IntMap m(kN, kN, {{{0}, {1}}, {{1}, {0}}});
  EXPECT_THROW((void)m.transitiveClosure(), Error);
}

TEST(TransitiveClosureTest, EmptyAndSpaceMismatch) {
  EXPECT_TRUE(IntMap(kN, kN).transitiveClosure().empty());
  IntMap crossSpace(kN, Space("M", 1), {{{0}, {1}}});
  EXPECT_THROW((void)crossSpace.transitiveClosure(), Error);
}

TEST(TransitiveClosureTest, ClosureIsIdempotent) {
  SplitMix64 rng(99);
  // Random DAG: edges only increase.
  std::vector<IntMap::Pair> pairs;
  for (int i = 0; i < 30; ++i) {
    pb::Value a = rng.nextInRange(0, 12);
    pb::Value b = a + rng.nextInRange(1, 4);
    pairs.push_back({Tuple{a}, Tuple{b}});
  }
  IntMap m(kN, kN, std::move(pairs));
  IntMap once = m.transitiveClosure();
  EXPECT_EQ(once.transitiveClosure(), once);
}

// ---------------------------------------------------------------------
// Parser fuzzing
// ---------------------------------------------------------------------

std::string randomGarbage(SplitMix64& rng, std::size_t length) {
  static constexpr char alphabet[] =
      "{}[]()<>=+-*/;:, \n\tfor paramarray0123456789ijkNXYZ_S";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(alphabet[rng.nextBelow(sizeof(alphabet) - 1)]);
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, SetParserNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string input = randomGarbage(rng, 1 + rng.nextBelow(60));
    try {
      (void)pb::parseSet(input);
    } catch (const Error&) {
      // expected for garbage
    }
  }
}

TEST_P(ParserFuzzTest, FrontendNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x5a5a);
  for (int round = 0; round < 50; ++round) {
    std::string input = randomGarbage(rng, 1 + rng.nextBelow(120));
    try {
      (void)frontend::parseProgram(input);
    } catch (const Error&) {
      // expected for garbage
    }
  }
}

TEST_P(ParserFuzzTest, FrontendMutationsOfValidProgram) {
  // Start from a valid program and flip random characters: every mutation
  // must either parse or throw Error.
  static const std::string valid = R"(
    param N = 8;
    array A[N][N];
    array B[N][N];
    for (i = 0; i < N - 1; i++)
      for (j = 0; j < N - 1; j++)
        S: A[i][j] = f(A[i][j+1]);
    for (i = 0; i < N - 1; i++)
      for (j = 0; j < N - 1; j++)
        R: B[i][j] = g(A[i][j], B[i][j+1]);
  )";
  SplitMix64 rng(GetParam() ^ 0xc0ffee);
  for (int round = 0; round < 40; ++round) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.nextBelow(4);
    for (std::size_t k = 0; k < flips; ++k)
      mutated[rng.nextBelow(mutated.size())] =
          "{}[]()+-*/;:x5"[rng.nextBelow(14)];
    try {
      (void)frontend::parseProgram(mutated);
    } catch (const Error&) {
      // fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace pipoly
