#include "codegen/json_export.hpp"

#include "codegen/task_program.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::codegen {
namespace {

TEST(JsonExportTest, ContainsExpectedFields) {
  scop::Scop scop = testing::listing1(12);
  TaskProgram prog = compilePipeline(scop);
  std::string json = toJson(prog, scop);
  for (const char* needle :
       {"\"scop\": \"listing1\"", "\"statements\":", "\"tasks\":",
        "\"chainOrdering\": true", "\"name\": \"S\"", "\"name\": \"R\"",
        "\"deps\":", "\"self\": true"})
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing '" << needle << "'";
}

TEST(JsonExportTest, TaskCountMatches) {
  scop::Scop scop = testing::listing3(12);
  TaskProgram prog = compilePipeline(scop);
  std::string json = toJson(prog, scop);
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("{\"id\": ", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, prog.tasks.size());
}

TEST(JsonExportTest, BalancedBracesAndBrackets) {
  scop::Scop scop = testing::chain(3, 8);
  TaskProgram prog = compilePipeline(scop);
  std::string json = toJson(prog, scop);
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(JsonExportTest, RelaxedOrderingFlag) {
  scop::Scop scop = testing::listing1(12);
  pipeline::DetectOptions opt;
  opt.relaxSameNestOrdering = true;
  TaskProgram prog = compilePipeline(scop, opt);
  std::string json = toJson(prog, scop);
  EXPECT_NE(json.find("\"chainOrdering\": false"), std::string::npos);
}

} // namespace
} // namespace pipoly::codegen
