// Determinism of parallel pipeline detection: detectPipeline with
// numThreads > 0 dispatches Algorithm 1's per-pair, per-statement and
// per-map units onto the work-stealing DependencyThreadPool, and must
// produce a PipelineInfo bit-identical to the inline serial reference
// (numThreads == 0) on every kernel and option combination.

#include "pipeline/detect.hpp"

#include "kernels/suite.hpp"
#include "scop/builder.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::pipeline {
namespace {

void expectInfoEqual(const PipelineInfo& a, const PipelineInfo& b,
                     const std::string& label) {
  ASSERT_EQ(a.maps.size(), b.maps.size()) << label;
  for (std::size_t i = 0; i < a.maps.size(); ++i) {
    EXPECT_EQ(a.maps[i].srcIdx, b.maps[i].srcIdx) << label << " map " << i;
    EXPECT_EQ(a.maps[i].tgtIdx, b.maps[i].tgtIdx) << label << " map " << i;
    EXPECT_EQ(a.maps[i].map, b.maps[i].map) << label << " map " << i;
  }
  ASSERT_EQ(a.statements.size(), b.statements.size()) << label;
  for (std::size_t s = 0; s < a.statements.size(); ++s) {
    const StatementPipelineInfo& x = a.statements[s];
    const StatementPipelineInfo& y = b.statements[s];
    EXPECT_EQ(x.blocking, y.blocking) << label << " stmt " << s;
    EXPECT_EQ(x.expansion, y.expansion) << label << " stmt " << s;
    EXPECT_EQ(x.blockReps, y.blockReps) << label << " stmt " << s;
    EXPECT_EQ(x.outDependency, y.outDependency) << label << " stmt " << s;
    EXPECT_EQ(x.chainOrdering, y.chainOrdering) << label << " stmt " << s;
    EXPECT_EQ(x.selfEdges, y.selfEdges) << label << " stmt " << s;
    ASSERT_EQ(x.inRequirements.size(), y.inRequirements.size())
        << label << " stmt " << s;
    for (std::size_t r = 0; r < x.inRequirements.size(); ++r) {
      EXPECT_EQ(x.inRequirements[r].srcStmtIdx, y.inRequirements[r].srcStmtIdx)
          << label << " stmt " << s << " req " << r;
      EXPECT_EQ(x.inRequirements[r].map, y.inRequirements[r].map)
          << label << " stmt " << s << " req " << r;
    }
  }
}

void expectParallelMatchesSerial(const scop::Scop& scop, DetectOptions opt,
                                 const std::string& label) {
  opt.numThreads = 0;
  const PipelineInfo serial = detectPipeline(scop, opt);
  for (unsigned threads : {1u, 2u, 4u}) {
    opt.numThreads = threads;
    const PipelineInfo parallel = detectPipeline(scop, opt);
    expectInfoEqual(serial, parallel,
                    label + " threads=" + std::to_string(threads));
  }
}

TEST(DetectParallelTest, MatchesSerialOnFixtureKernels) {
  expectParallelMatchesSerial(testing::listing1(16), {}, "listing1");
  expectParallelMatchesSerial(testing::listing3(16), {}, "listing3");
  expectParallelMatchesSerial(testing::chain(5, 9), {}, "chain");
}

TEST(DetectParallelTest, MatchesSerialOnTable9Suite) {
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    scop::Scop scop = kernels::buildProgram(spec, 12);
    expectParallelMatchesSerial(scop, {}, spec.name);
  }
}

TEST(DetectParallelTest, MatchesSerialAcrossOptionCombinations) {
  const scop::Scop scop = testing::listing3(14);
  {
    DetectOptions opt;
    opt.coarsening = 3;
    expectParallelMatchesSerial(scop, opt, "coarsening=3");
  }
  {
    DetectOptions opt;
    opt.integration = DetectOptions::Integration::FirstMapOnly;
    expectParallelMatchesSerial(scop, opt, "first-map-only");
  }
  {
    DetectOptions opt;
    opt.relaxSameNestOrdering = true;
    expectParallelMatchesSerial(scop, opt, "relaxed-ordering");
  }
}

TEST(DetectParallelTest, RepeatedParallelRunsAreIdentical) {
  const scop::Scop scop = testing::listing3(14);
  DetectOptions opt;
  opt.numThreads = 4;
  const PipelineInfo first = detectPipeline(scop, opt);
  for (int rep = 0; rep < 3; ++rep)
    expectInfoEqual(first, detectPipeline(scop, opt),
                    "rep " + std::to_string(rep));
}

TEST(DetectParallelTest, ParallelHandlesEmptyDomainStatements) {
  scop::ScopBuilder b("holes");
  std::size_t A = b.array("A", {8});
  std::size_t E = b.array("E", {8});
  std::size_t C = b.array("C", {8});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 8).write(A, {S.dim(0)});
  auto M = b.statement("M", 1); // zero-extent nest
  M.bound(0, 0, 0).write(E, {M.dim(0)}).read(A, {M.dim(0)});
  auto U = b.statement("U", 1);
  U.bound(0, 0, 8).write(C, {U.dim(0)}).read(A, {U.dim(0)});
  const scop::Scop scop = b.build();
  expectParallelMatchesSerial(scop, {}, "empty-domain");
}

} // namespace
} // namespace pipoly::pipeline
