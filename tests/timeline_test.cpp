#include "sim/simulator.hpp"

#include "codegen/task_program.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::sim {
namespace {

struct Fixture {
  scop::Scop scop = testing::listing3(12);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel model;
  Fixture() { model.iterationCost.assign(scop.numStatements(), 1.0); }
};

TEST(TimelineTest, EventsCoverEveryTaskExactlyOnce) {
  Fixture s;
  SimResult r = simulate(s.prog, s.model, SimConfig{4});
  ASSERT_EQ(r.events.size(), s.prog.tasks.size());
  std::vector<bool> seen(s.prog.tasks.size(), false);
  for (const ScheduleEvent& ev : r.events) {
    EXPECT_FALSE(seen[ev.taskId]);
    seen[ev.taskId] = true;
    EXPECT_LT(ev.worker, 4u);
    EXPECT_LE(ev.start, ev.finish);
    EXPECT_LE(ev.finish, r.makespan + 1e-9);
  }
}

TEST(TimelineTest, NoWorkerOverlap) {
  Fixture s;
  SimResult r = simulate(s.prog, s.model, SimConfig{3});
  // Per worker, sorted events must not overlap.
  std::vector<std::vector<ScheduleEvent>> perWorker(3);
  for (const ScheduleEvent& ev : r.events)
    perWorker[ev.worker].push_back(ev);
  for (auto& events : perWorker) {
    std::sort(events.begin(), events.end(),
              [](const ScheduleEvent& a, const ScheduleEvent& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < events.size(); ++i)
      EXPECT_GE(events[i].start, events[i - 1].finish - 1e-9);
  }
}

TEST(TimelineTest, DependenciesRespectedInTime) {
  Fixture s;
  SimResult r = simulate(s.prog, s.model, SimConfig{8});
  std::vector<double> finish(s.prog.tasks.size(), 0.0);
  std::vector<double> start(s.prog.tasks.size(), 0.0);
  for (const ScheduleEvent& ev : r.events) {
    finish[ev.taskId] = ev.finish;
    start[ev.taskId] = ev.start;
  }
  for (const codegen::Task& t : s.prog.tasks)
    for (const codegen::TaskDep& d : t.in) {
      auto src = s.prog.taskWithOut(d);
      ASSERT_TRUE(src.has_value());
      EXPECT_GE(start[t.id], finish[*src] - 1e-9)
          << "task " << t.id << " started before its dependency " << *src;
    }
}

TEST(TimelineTest, RenderShape) {
  Fixture s;
  SimResult r = simulate(s.prog, s.model, SimConfig{4});
  std::string text = renderTimeline(r, s.prog, s.scop, 60);
  // One row per worker plus the header.
  auto lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, 5u);
  // Statement letters appear.
  EXPECT_NE(text.find('S'), std::string::npos);
  EXPECT_NE(text.find('R'), std::string::npos);
  EXPECT_NE(text.find('U'), std::string::npos);
  // Pipelining: S and R run concurrently somewhere — both letters occur
  // in the same column on different rows. Extract worker rows.
  std::vector<std::string> rows;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t bar = text.find('|', pos);
    if (bar == std::string::npos)
      break;
    std::size_t end = text.find('|', bar + 1);
    rows.push_back(text.substr(bar + 1, end - bar - 1));
    pos = text.find('\n', end) + 1;
  }
  ASSERT_EQ(rows.size(), 4u);
  bool overlap = false;
  for (std::size_t c = 0; c < rows[0].size(); ++c) {
    bool hasS = false, hasOther = false;
    for (const std::string& row : rows) {
      hasS = hasS || row[c] == 'S';
      hasOther = hasOther || row[c] == 'R' || row[c] == 'U';
    }
    overlap = overlap || (hasS && hasOther);
  }
  EXPECT_TRUE(overlap) << "expected cross-loop overlap in:\n" << text;
}

TEST(TimelineTest, SingleWorkerSerializes) {
  Fixture s;
  SimResult r = simulate(s.prog, s.model, SimConfig{1});
  for (std::size_t i = 1; i < r.events.size(); ++i)
    EXPECT_GE(r.events[i].start, r.events[i - 1].finish - 1e-9);
}

} // namespace
} // namespace pipoly::sim
