#include "pipeline/report.hpp"

#include "pipeline/detect.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::pipeline {
namespace {

std::string reportFor(const scop::Scop& scop) {
  return renderReport(scop, detectPipeline(scop));
}

TEST(ReportTest, Listing1MentionsAllParts) {
  std::string text = reportFor(testing::listing1(20));
  for (const char* needle :
       {"statement S", "statement R", "serial", "pipeline S -> R",
        "stage boundaries", "blocking (eq. 3)", "total tasks"})
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << text;
}

TEST(ReportTest, Listing1StrideIsTwo) {
  // The S -> R stage boundaries sit at even columns of S.
  std::string text = reportFor(testing::listing1(20));
  EXPECT_NE(text.find("source boundary stride (1, 2)"), std::string::npos)
      << text;
}

TEST(ReportTest, NoPipelineCase) {
  scop::ScopBuilder b("solo");
  std::size_t A = b.array("A", {4});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 4).write(A, {S.dim(0)});
  std::string text = reportFor(b.build());
  EXPECT_NE(text.find("no cross-loop pipeline opportunities"),
            std::string::npos);
}

TEST(ReportTest, ParallelStatementIsCalledOut) {
  scop::ScopBuilder b("par");
  std::size_t A = b.array("A", {4, 4});
  std::size_t B = b.array("B", {4, 4});
  auto S = b.statement("S", 2);
  S.bound(0, 0, 4).bound(1, 0, 4);
  S.write(B, {S.dim(0), S.dim(1)});
  S.read(A, {S.dim(0), S.dim(1)});
  std::string text = reportFor(b.build());
  EXPECT_NE(text.find("fully parallel"), std::string::npos);
}

TEST(ReportTest, Listing3CountsThreePipelines) {
  std::string text = reportFor(testing::listing3(16));
  EXPECT_NE(text.find("pipeline S -> R"), std::string::npos);
  EXPECT_NE(text.find("pipeline S -> U"), std::string::npos);
  EXPECT_NE(text.find("pipeline R -> U"), std::string::npos);
}

} // namespace
} // namespace pipoly::pipeline
