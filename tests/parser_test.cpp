#include "presburger/parser.hpp"

#include "support/assert.hpp"

#include <gtest/gtest.h>

namespace pipoly::pb {
namespace {

TEST(ParserTest, SimpleInterval) {
  IntTupleSet s = parseSet("{ S[i] : 0 <= i < 4 }");
  EXPECT_EQ(s.space().name(), "S");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(Tuple{3}));
}

TEST(ParserTest, DefaultSpaceName) {
  IntTupleSet s = parseSet("{ [i] : 0 <= i < 2 }");
  EXPECT_EQ(s.space().name(), "S");
}

TEST(ParserTest, ChainedComparisons) {
  IntTupleSet s = parseSet("{ S[i, j] : 0 <= i < j <= 3 }");
  // i < j means pairs (0,1..3), (1,2..3), (2,3).
  EXPECT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.contains(Tuple{0, 3}));
  EXPECT_FALSE(s.contains(Tuple{2, 2}));
}

TEST(ParserTest, ParameterBinding) {
  IntTupleSet s = parseSet("{ S[i, j] : 0 <= i < N and 0 <= j < N }",
                           {{"N", 3}});
  EXPECT_EQ(s.size(), 9u);
}

TEST(ParserTest, UnknownIdentifierThrows) {
  EXPECT_THROW((void)parseSet("{ S[i] : 0 <= i < M }"), Error);
}

TEST(ParserTest, ArithmeticInConditions) {
  IntTupleSet s =
      parseSet("{ S[i, j] : 0 <= i < 10 and j = 2*i + 1 and j < 10 }");
  EXPECT_EQ(s.size(), 5u); // j in {1,3,5,7,9}
  EXPECT_TRUE(s.contains(Tuple{4, 9}));
}

TEST(ParserTest, ImplicitMultiplication) {
  IntTupleSet a = parseSet("{ S[i, j] : 0 <= i < 4 and j = 2 i }");
  IntTupleSet b = parseSet("{ S[i, j] : 0 <= i < 4 and j = 2*i }");
  EXPECT_EQ(a, b);
}

TEST(ParserTest, NegativeTermsAndParens) {
  IntTupleSet s = parseSet("{ S[i] : -(2 - i) >= 0 and i <= 4 }");
  EXPECT_EQ(s.lexmin(), (Tuple{2}));
  EXPECT_EQ(s.lexmax(), (Tuple{4}));
}

TEST(ParserTest, SimpleMap) {
  IntMap m = parseMap("{ S[i] -> A[a] : 0 <= i < 3 and a = i + 1 }");
  EXPECT_EQ(m.domainSpace().name(), "S");
  EXPECT_EQ(m.rangeSpace().name(), "A");
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains(Tuple{2}, Tuple{3}));
}

TEST(ParserTest, MultiDimMap) {
  IntMap m = parseMap(
      "{ S[i, j] -> A[a, b] : 0 <= i < 2 and 0 <= j < 2 and a = i and b = 2*j "
      "}");
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(m.contains(Tuple{1, 1}, Tuple{1, 2}));
}

TEST(ParserTest, MapWithCouplingBetweenSides) {
  IntMap m =
      parseMap("{ S[i] -> T[j] : 0 <= i < 4 and i <= j and j < 4 }");
  // i -> j >= i.
  EXPECT_EQ(m.size(), 10u);
  EXPECT_TRUE(m.contains(Tuple{0}, Tuple{3}));
  EXPECT_FALSE(m.contains(Tuple{3}, Tuple{0}));
}

TEST(ParserTest, EqualitySpelledBothWays) {
  IntMap a = parseMap("{ S[i] -> T[j] : 0 <= i < 3 and j = i }");
  IntMap b = parseMap("{ S[i] -> T[j] : 0 <= i < 3 and j == i }");
  EXPECT_EQ(a, b);
}

TEST(ParserTest, UnboundedSetThrows) {
  EXPECT_THROW((void)parseSet("{ S[i] : i >= 0 }"), Error);
}

TEST(ParserTest, MalformedInputThrows) {
  EXPECT_THROW((void)parseSet("{ S[i : 0 <= i < 3 }"), Error);
  EXPECT_THROW((void)parseSet("S[i] : 0 <= i < 3"), Error);
  EXPECT_THROW((void)parseSet("{ S[i] : 0 <= i < 3 } trailing"), Error);
}

TEST(ParserTest, DuplicateMapVariableThrows) {
  EXPECT_THROW((void)parseMap("{ S[i] -> T[i] : 0 <= i < 3 }"), Error);
}

} // namespace
} // namespace pipoly::pb
