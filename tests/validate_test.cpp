// Failure-injection tests: corrupted task programs must be rejected by
// TaskProgram::validate. The validator is the last line of defence
// between the polyhedral analysis and the runtime, so it has to catch
// every class of structural damage.

#include "codegen/task_program.hpp"

#include "support/assert.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::codegen {
namespace {

TaskProgram freshProgram() {
  return compilePipeline(testing::listing1(12));
}

scop::Scop fixtureScop() { return testing::listing1(12); }

TEST(ValidateTest, PristineProgramPasses) {
  EXPECT_NO_THROW(freshProgram().validate(fixtureScop()));
}

TEST(ValidateTest, RejectsDroppedSelfOrderingDependency) {
  TaskProgram prog = freshProgram();
  // Find a task with a self-ordering dep and drop it.
  for (Task& t : prog.tasks) {
    auto it = std::find_if(t.in.begin(), t.in.end(),
                           [](const TaskDep& d) { return d.selfOrdering; });
    if (it != t.in.end()) {
      t.in.erase(it);
      break;
    }
  }
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsDanglingInDependency) {
  TaskProgram prog = freshProgram();
  prog.tasks.back().in.push_back(TaskDep{0, 999999});
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsForwardDependency) {
  TaskProgram prog = freshProgram();
  // Make an early task depend on the last task's out slot.
  const Task& last = prog.tasks.back();
  prog.tasks.front().in.push_back(TaskDep{last.out.idx, last.out.tag});
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsDuplicateOutTags) {
  TaskProgram prog = freshProgram();
  prog.tasks[1].out = prog.tasks[0].out;
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsLostIterations) {
  TaskProgram prog = freshProgram();
  for (Task& t : prog.tasks) {
    if (t.iterations.size() > 1) {
      t.iterations.erase(t.iterations.begin());
      break;
    }
  }
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsDuplicatedIterations) {
  TaskProgram prog = freshProgram();
  // Move an iteration from one task into another (double execution).
  Task* donor = nullptr;
  for (Task& t : prog.tasks)
    if (t.stmtIdx == 0 && t.iterations.size() > 1)
      donor = &t;
  ASSERT_NE(donor, nullptr);
  for (Task& t : prog.tasks) {
    if (&t != donor && t.stmtIdx == 0) {
      t.iterations.push_back(donor->iterations.front());
      std::sort(t.iterations.begin(), t.iterations.end());
      break;
    }
  }
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsMisorderedIterationsWithinTask) {
  TaskProgram prog = freshProgram();
  for (Task& t : prog.tasks) {
    if (t.iterations.size() > 1) {
      std::swap(t.iterations.front(), t.iterations.back());
      break;
    }
  }
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsWrongBlockRepresentative) {
  TaskProgram prog = freshProgram();
  for (Task& t : prog.tasks) {
    if (t.iterations.size() > 1) {
      t.blockRep = t.iterations.front(); // must be the *last* iteration
      break;
    }
  }
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

TEST(ValidateTest, RejectsWrongScop) {
  TaskProgram prog = freshProgram();
  EXPECT_THROW(prog.validate(testing::listing1(16)), Error);
  EXPECT_THROW(prog.validate(testing::listing3(12)), Error);
}

TEST(ValidateTest, RejectsRenumberedIds) {
  TaskProgram prog = freshProgram();
  prog.tasks[2].id = 99;
  EXPECT_THROW(prog.validate(fixtureScop()), Error);
}

} // namespace
} // namespace pipoly::codegen
