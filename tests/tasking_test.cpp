#include "tasking/tasking.hpp"

#include "codegen/task_program.hpp"
#include "opt/optimizer.hpp"
#include "support/assert.hpp"
#include "tasking/executor.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace pipoly::tasking {
namespace {

std::vector<std::unique_ptr<TaskingLayer>> allBackends() {
  std::vector<std::unique_ptr<TaskingLayer>> layers;
  layers.push_back(makeSerialBackend());
  layers.push_back(makeThreadPoolBackend(4));
  if (auto omp = makeOpenMPBackend())
    layers.push_back(std::move(omp));
  return layers;
}

struct Payload {
  std::atomic<int>* counter;
  int expectedBefore;
};

void checkAndBump(void* raw) {
  auto* p = static_cast<Payload*>(raw);
  EXPECT_GE(p->counter->fetch_add(1), p->expectedBefore);
}

TEST(TaskingLayerTest, OpenMPBackendIsAvailableInThisBuild) {
  // The build links OpenMP; the paper's primary backend must exist.
  EXPECT_TRUE(openMPAvailable());
  EXPECT_NE(makeOpenMPBackend(), nullptr);
}

TEST(TaskingLayerTest, ChainedDependenciesRunInOrder) {
  for (auto& layer : allBackends()) {
    std::atomic<int> counter{0};
    layer->run([&] {
      // Chain: task k depends on slot of task k-1.
      for (int k = 0; k < 20; ++k) {
        Payload p{&counter, k};
        std::int64_t inDep = k - 1;
        int inIdx = 0;
        layer->createTask(&checkAndBump, &p, sizeof(p),
                          /*outDepend=*/k, /*outIdx=*/0,
                          k > 0 ? &inDep : nullptr, k > 0 ? &inIdx : nullptr,
                          k > 0 ? 1u : 0u);
      }
    });
    EXPECT_EQ(counter.load(), 20) << layer->name();
  }
}

TEST(TaskingLayerTest, CreateTaskOutsideRunThrows) {
  // OpenMP backend cannot detect this cheaply in a parallel-safe way on
  // all runtimes, but serial and threadpool must.
  auto serial = makeSerialBackend();
  Payload p{nullptr, 0};
  EXPECT_THROW(serial->createTask(&checkAndBump, &p, sizeof(p), 0, 0, nullptr,
                                  nullptr, 0),
               Error);
  auto pool = makeThreadPoolBackend(2);
  EXPECT_THROW(pool->createTask(&checkAndBump, &p, sizeof(p), 0, 0, nullptr,
                                nullptr, 0),
               Error);
}

TEST(TaskingLayerTest, InputIsCopiedAtCreation) {
  // The paper's Fig. 8 memcpy: mutating the input struct after createTask
  // must not affect the task.
  for (auto& layer : allBackends()) {
    static std::atomic<int> observed;
    observed = -1;
    struct Value {
      int v;
    };
    auto fn = +[](void* raw) { observed = static_cast<Value*>(raw)->v; };
    layer->run([&] {
      Value val{7};
      layer->createTask(fn, &val, sizeof(val), 0, 0, nullptr, nullptr, 0);
      val.v = 99; // must not be visible to the task
    });
    EXPECT_EQ(observed.load(), 7) << layer->name();
  }
}

std::atomic<int> gZeroSizeRuns{0};

void zeroSizeBody(void*) { gZeroSizeRuns.fetch_add(1); }

TEST(TaskingLayerTest, ZeroSizeInputWithNullPointerIsValid) {
  // inputSize == 0 with a null input must not crash on any backend:
  // malloc(0)/memcpy-on-null are UB, so the backends skip the copy.
  for (auto& layer : allBackends()) {
    gZeroSizeRuns = 0;
    layer->run([&] {
      for (std::int64_t k = 0; k < 8; ++k)
        layer->createTask(&zeroSizeBody, nullptr, 0, k, 0, nullptr, nullptr,
                          0);
    });
    EXPECT_EQ(gZeroSizeRuns.load(), 8) << layer->name();
  }
}

TEST(TaskingLayerTest, ZeroSizeInputTasksStillHonorDependencies) {
  for (auto& layer : allBackends()) {
    static std::atomic<int> order;
    order = 0;
    static std::atomic<int> firstSeen, secondSeen;
    firstSeen = -1;
    secondSeen = -1;
    auto first = +[](void*) { firstSeen = order.fetch_add(1); };
    auto second = +[](void*) { secondSeen = order.fetch_add(1); };
    layer->run([&] {
      layer->createTask(first, nullptr, 0, /*outDepend=*/7, /*outIdx=*/0,
                        nullptr, nullptr, 0);
      std::int64_t inDep = 7;
      int inIdx = 0;
      layer->createTask(second, nullptr, 0, 8, 0, &inDep, &inIdx, 1);
    });
    EXPECT_EQ(firstSeen.load(), 0) << layer->name();
    EXPECT_EQ(secondSeen.load(), 1) << layer->name();
  }
}

/// Payload for tasks that create follow-up tasks from their own body —
/// the threadpool backend advertises thread-safe createTask, so the
/// last-writer table must be guarded (this test races task-body
/// submissions against spawner submissions; TSAN validates the guard).
struct SpawnerPayload {
  TaskingLayer* layer;
  std::atomic<int>* counter;
  std::int64_t slot;
};

void leafBody(void* raw) {
  static_cast<SpawnerPayload*>(raw)->counter->fetch_add(1);
}

void rootBody(void* raw) {
  auto* p = static_cast<SpawnerPayload*>(raw);
  p->counter->fetch_add(1);
  // Children chain on this root's published slot and publish their own.
  for (int c = 0; c < 8; ++c) {
    SpawnerPayload child{p->layer, p->counter, 0};
    std::int64_t inDep = p->slot;
    int inIdx = 1;
    p->layer->createTask(&leafBody, &child, sizeof(child),
                         /*outDepend=*/p->slot * 100 + c, /*outIdx=*/2,
                         &inDep, &inIdx, 1);
  }
}

TEST(TaskingLayerTest, TaskBodiesMayCreateTasksOnThreadPoolBackend) {
  auto layer = makeThreadPoolBackend(4);
  std::atomic<int> counter{0};
  layer->run([&] {
    for (std::int64_t r = 0; r < 16; ++r) {
      SpawnerPayload p{layer.get(), &counter, r};
      layer->createTask(&rootBody, &p, sizeof(p), /*outDepend=*/r,
                        /*outIdx=*/1, nullptr, nullptr, 0);
    }
  });
  EXPECT_EQ(counter.load(), 16 + 16 * 8);
}

TEST(TaskingLayerTest, UnpublishedSlotIsImmediatelyReady) {
  for (auto& layer : allBackends()) {
    std::atomic<int> counter{0};
    layer->run([&] {
      Payload p{&counter, 0};
      std::int64_t dep = 12345; // nobody publishes this slot
      int idx = 3;
      layer->createTask(&checkAndBump, &p, sizeof(p), 0, 0, &dep, &idx, 1);
    });
    EXPECT_EQ(counter.load(), 1) << layer->name();
  }
}

/// Records, for every executed task, the set of tasks finished before it
/// started; used to verify dependency enforcement on parallel backends.
struct OrderRecorder {
  std::mutex mutex;
  std::set<std::int64_t> finished;
  bool violation = false;
};

struct OrderedPayload {
  OrderRecorder* rec;
  std::int64_t self;
  std::int64_t requires0; // -1 = none
  std::int64_t requires1; // -1 = none
};

void orderedBody(void* raw) {
  auto* p = static_cast<OrderedPayload*>(raw);
  std::lock_guard lock(p->rec->mutex);
  if (p->requires0 >= 0 && !p->rec->finished.count(p->requires0))
    p->rec->violation = true;
  if (p->requires1 >= 0 && !p->rec->finished.count(p->requires1))
    p->rec->violation = true;
  p->rec->finished.insert(p->self);
}

TEST(TaskingLayerTest, CrossSlotDependenciesEnforced) {
  for (auto& layer : allBackends()) {
    OrderRecorder rec;
    layer->run([&] {
      // Two producer chains on idx 0 and idx 1, plus consumers on idx 2
      // depending on both.
      for (std::int64_t k = 0; k < 10; ++k) {
        for (int chain = 0; chain < 2; ++chain) {
          OrderedPayload p{&rec, chain * 100 + k,
                           k > 0 ? chain * 100 + (k - 1) : -1, -1};
          std::int64_t inDep = k - 1;
          int inIdx = chain;
          layer->createTask(&orderedBody, &p, sizeof(p), k, chain,
                            k > 0 ? &inDep : nullptr,
                            k > 0 ? &inIdx : nullptr, k > 0 ? 1u : 0u);
        }
      }
      for (std::int64_t k = 0; k < 10; ++k) {
        OrderedPayload p{&rec, 200 + k, 0 * 100 + k, 1 * 100 + k};
        std::int64_t inDeps[2] = {k, k};
        int inIdxs[2] = {0, 1};
        layer->createTask(&orderedBody, &p, sizeof(p), k, 2, inDeps, inIdxs,
                          2);
      }
    });
    EXPECT_FALSE(rec.violation) << layer->name();
    EXPECT_EQ(rec.finished.size(), 30u) << layer->name();
  }
}

class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, PipelinedExecutionMatchesSequential) {
  const int which = GetParam();
  scop::Scop scop = which == 0   ? testing::listing1(14)
                    : which == 1 ? testing::listing3(14)
                    : which == 2 ? testing::chain(3, 9)
                                 : testing::chain(5, 7);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  for (auto& layer : allBackends()) {
    testing::InterpretedKernel kernel(scop);
    executeTaskProgram(prog, *layer, kernel.executor());
    EXPECT_EQ(kernel.fingerprint(), expected)
        << "backend " << layer->name() << " produced different results";
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, EndToEndTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(EndToEndTest, SlotExecutorHandlesEmptyDependencyLists) {
  // Regression: the slot-table overload used to pass `.data()` of empty
  // in-dependency vectors — possibly null — straight into createTask.
  // Every program's root tasks have empty lists, so any backend that
  // dereferences or UB-checks the pointers would trip here.
  for (int which = 0; which < 2; ++which) {
    scop::Scop scop = which == 0 ? testing::listing1(12) : testing::chain(3, 8);
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    const opt::SlotTable slots = opt::buildSlotTable(prog);
    const std::uint64_t expected = testing::sequentialFingerprint(scop);
    std::size_t rootTasks = 0;
    for (const codegen::Task& t : prog.tasks)
      if (t.in.empty()) ++rootTasks;
    ASSERT_GT(rootTasks, 0u) << "fixture must exercise empty dep lists";
    for (auto& layer : allBackends()) {
      testing::InterpretedKernel kernel(scop);
      executeTaskProgram(prog, slots, *layer, kernel.executor());
      EXPECT_EQ(kernel.fingerprint(), expected) << layer->name();
    }
  }
}

TEST(TaskingLayerTest, PerRunStateIsReusedOrReleased) {
  // Regression: per-run bookkeeping (last-writer tables, slot arrays,
  // funcCount maps) was cleared but never shrunk, so one oversized run
  // pinned its high-water allocation forever. Policy now: keep capacity
  // while it matches the workload (steady-state runs allocate nothing),
  // release it once a run uses far less.
  auto noop = +[](void*) {};
  for (auto& layer : allBackends()) {
    auto runProgram = [&](std::int64_t numTasks) {
      layer->run([&] {
        for (std::int64_t k = 0; k < numTasks; ++k) {
          std::int64_t inDep = k - 1;
          int inIdx = 0;
          layer->createTask(noop, nullptr, 0, k, 0, k > 0 ? &inDep : nullptr,
                            k > 0 ? &inIdx : nullptr, k > 0 ? 1u : 0u);
        }
      });
    };

    runProgram(4000); // oversized run establishes a high-water mark
    const std::size_t afterBig = layer->retainedBytes();

    runProgram(16); // a far smaller run must trigger the release
    const std::size_t afterSmall = layer->retainedBytes();
    if (afterBig > 0) {
      EXPECT_LT(afterSmall, afterBig) << layer->name();
    }

    // Steady state: identical runs must not change the footprint (the
    // capacity is reused, not reallocated or released).
    runProgram(16);
    const std::size_t steady1 = layer->retainedBytes();
    runProgram(16);
    EXPECT_EQ(layer->retainedBytes(), steady1) << layer->name();
  }
}

TEST(EndToEndTest, RepeatedRunsAreDeterministic) {
  scop::Scop scop = testing::listing3(12);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  auto layer = makeThreadPoolBackend(4);
  std::uint64_t first = 0;
  for (int rep = 0; rep < 5; ++rep) {
    testing::InterpretedKernel kernel(scop);
    executeTaskProgram(prog, *layer, kernel.executor());
    if (rep == 0)
      first = kernel.fingerprint();
    else
      EXPECT_EQ(kernel.fingerprint(), first) << "rep " << rep;
  }
}

} // namespace
} // namespace pipoly::tasking
