#include "codegen/task_program.hpp"

#include "pipeline/detect.hpp"
#include "schedule/build.hpp"
#include "scop/dependences.hpp"
#include "support/assert.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace pipoly::codegen {
namespace {

using pb::Tuple;

TEST(LinearizeTest, Scheme) {
  EXPECT_EQ(linearizeBlockVector(Tuple{}), 0);
  EXPECT_EQ(linearizeBlockVector(Tuple{7}), 7);
  EXPECT_EQ(linearizeBlockVector(Tuple{1, 2}), kLinearStride + 2);
  EXPECT_EQ(linearizeBlockVector(Tuple{3, 0, 5}),
            3 * kLinearStride * kLinearStride + 5);
}

TEST(LinearizeTest, InjectiveOnDistinctVectors) {
  std::set<std::int64_t> tags;
  for (pb::Value a = 0; a < 7; ++a)
    for (pb::Value b = 0; b < 7; ++b)
      EXPECT_TRUE(tags.insert(linearizeBlockVector(Tuple{a, b})).second);
}

TEST(LinearizeTest, RejectsOutOfRange) {
  EXPECT_THROW((void)linearizeBlockVector(Tuple{-1}), Error);
  EXPECT_THROW((void)linearizeBlockVector(Tuple{kLinearStride}), Error);
}

TEST(TaskProgramTest, Listing1Lowering) {
  scop::Scop scop = testing::listing1(12);
  TaskProgram prog = compilePipeline(scop);
  EXPECT_EQ(prog.numStatements, 2u);
  EXPECT_EQ(prog.writeNum, 1u); // only S is a source
  EXPECT_NO_THROW(prog.validate(scop));

  // Every task of R (stmt 1) except possibly the remainder must have a
  // cross-statement in-dep on S (stmt 0).
  std::size_t crossDeps = 0;
  for (const Task& t : prog.tasks) {
    if (t.stmtIdx != 1)
      continue;
    for (const TaskDep& d : t.in)
      if (!d.selfOrdering && d.idx == 0)
        ++crossDeps;
  }
  EXPECT_GT(crossDeps, 0u);
}

TEST(TaskProgramTest, CreationOrderResolvesDependencies) {
  // validate() checks that every in-dep names an *earlier* task, which is
  // exactly what OpenMP's depend clause needs with sequential creation.
  for (pb::Value n : {8, 12, 20})
    EXPECT_NO_THROW(compilePipeline(testing::listing1(n)));
  EXPECT_NO_THROW(compilePipeline(testing::listing3(16)));
  EXPECT_NO_THROW(compilePipeline(testing::chain(4, 9)));
}

TEST(TaskProgramTest, TaskCountMatchesBlockCount) {
  scop::Scop scop = testing::listing3(16);
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  TaskProgram prog = compilePipeline(scop);
  EXPECT_EQ(prog.tasks.size(), info.totalBlocks());
}

TEST(TaskProgramTest, TaskWithOutLookup) {
  scop::Scop scop = testing::listing1(12);
  TaskProgram prog = compilePipeline(scop);
  const Task& t = prog.tasks.at(3);
  EXPECT_EQ(prog.taskWithOut(t.out), t.id);
  EXPECT_EQ(prog.taskWithOut(TaskDep{99, 0}), std::nullopt);
}

TEST(TaskProgramTest, SelfOrderingChainIsComplete) {
  scop::Scop scop = testing::listing3(20);
  TaskProgram prog = compilePipeline(scop);
  // Per statement, every task but the first must carry a self dep on the
  // previous block; validate() enforces this, re-check one chain directly.
  std::vector<const Task*> rTasks;
  for (const Task& t : prog.tasks)
    if (t.stmtIdx == 1)
      rTasks.push_back(&t);
  ASSERT_GT(rTasks.size(), 1u);
  for (std::size_t k = 1; k < rTasks.size(); ++k) {
    bool found = false;
    for (const TaskDep& d : rTasks[k]->in)
      if (d.selfOrdering && d.tag == rTasks[k - 1]->out.tag)
        found = true;
    EXPECT_TRUE(found);
  }
}

TEST(TaskProgramTest, WriteNumCountsSources) {
  // chain(4): S0, S1, S2 are sources (S3 is a sink).
  TaskProgram prog = compilePipeline(testing::chain(4, 9));
  EXPECT_EQ(prog.writeNum, 3u);
}

/// Semantic ground truth: executing tasks in any topological order of the
/// declared dependency edges must respect every flow dependence of the
/// original SCoP. We check the strongest form: for each flow dep
/// (i of src) -> (j of tgt), the task owning j must transitively depend on
/// the task owning i.
void checkTransitiveCoverage(const scop::Scop& scop) {
  TaskProgram prog = compilePipeline(scop);

  // Map (stmt, iteration) -> task id.
  std::map<std::pair<std::size_t, Tuple>, std::size_t> owner;
  for (const Task& t : prog.tasks)
    for (const Tuple& it : t.iterations)
      owner[{t.stmtIdx, it}] = t.id;

  // Transitive reachability over dependency edges (dep -> dependent).
  const std::size_t n = prog.tasks.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const Task& t : prog.tasks) {
    for (const TaskDep& d : t.in) {
      std::optional<std::size_t> from = prog.taskWithOut(d);
      ASSERT_TRUE(from.has_value());
      reach[*from][t.id] = true;
    }
    reach[t.id][t.id] = true;
  }
  // Tasks are creation-ordered and edges only go forward: one forward pass
  // of transitive closure suffices.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      if (reach[i][k])
        for (std::size_t j = k; j < n; ++j)
          if (reach[k][j])
            reach[i][j] = true;

  for (std::size_t t = 0; t < scop.numStatements(); ++t) {
    for (std::size_t s = 0; s < t; ++s) {
      pb::IntMap flow = scop::flowDependences(scop, s, t);
      for (const auto& [i, j] : flow.pairs()) {
        std::size_t srcTask = owner.at({s, i});
        std::size_t tgtTask = owner.at({t, j});
        EXPECT_TRUE(reach[srcTask][tgtTask])
            << "flow dep " << i << " -> " << j << " (stmts " << s << " -> "
            << t << ") not enforced by the task graph";
      }
    }
  }
}

TEST(TaskProgramSemanticsTest, Listing1FlowCoverage) {
  checkTransitiveCoverage(testing::listing1(12));
}

TEST(TaskProgramSemanticsTest, Listing3FlowCoverage) {
  checkTransitiveCoverage(testing::listing3(12));
}

TEST(TaskProgramSemanticsTest, Chain3FlowCoverage) {
  checkTransitiveCoverage(testing::chain(3, 7));
}

} // namespace
} // namespace pipoly::codegen
