// The differential harness for the reduction-aware detection route
// (pipeline/reduction.hpp):
//
//  * reductionMode=Off is bit-identical to Auto on every reduction-free
//    program (all of Table 9 plus a 220-iteration randomized corpus),
//    and ignores declared operators entirely (a scop with ops and its
//    op-free twin produce bit-identical Off results).
//  * Auto only *adds* parallelism: a relaxed statement keeps at least as
//    many blocks as under Off, runs them without self edges, and every
//    statement that is neither relaxed nor downstream of a relaxed
//    source keeps its Off result bit for bit.
//  * The reduction kernel grid splits each accumulation nest into >1
//    partial block plus one combine task, and executing the lowered
//    programs on all four backends (serial / threadpool / OpenMP /
//    channel), with and without the task-graph optimizer, reproduces the
//    sequential oracle fingerprint exactly — integer payloads, no
//    tolerance. Replay and batch streaming stay bit-identical over long
//    runs.

#include "ast/ast.hpp"
#include "codegen/task_program.hpp"
#include "kernels/reduction_kernels.hpp"
#include "kernels/reduction_runner.hpp"
#include "kernels/suite.hpp"
#include "opt/optimizer.hpp"
#include "pipeline/detect.hpp"
#include "pipeline/reduction.hpp"
#include "schedule/build.hpp"
#include "scop/builder.hpp"
#include "scop/dependences.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "tasking/channel_backend.hpp"
#include "tasking/executor.hpp"
#include "tasking/replay_executor.hpp"
#include "tasking/tasking.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace pipoly;
using pipeline::DetectOptions;
using RMode = DetectOptions::ReductionMode;

DetectOptions optionsFor(RMode mode, bool nonInjective = false) {
  DetectOptions opt;
  opt.reductionMode = mode;
  opt.allowNonInjectiveWrites = nonInjective;
  return opt;
}

/// Full bit-identity over the semantic fields of PipelineInfo, including
/// the reduction-route additions (viaCombine, reduction).
void expectInfoEqual(const pipeline::PipelineInfo& a,
                     const pipeline::PipelineInfo& b, const std::string& what) {
  ASSERT_EQ(a.maps.size(), b.maps.size()) << what;
  for (std::size_t i = 0; i < a.maps.size(); ++i) {
    EXPECT_EQ(a.maps[i].srcIdx, b.maps[i].srcIdx) << what << " map " << i;
    EXPECT_EQ(a.maps[i].tgtIdx, b.maps[i].tgtIdx) << what << " map " << i;
    EXPECT_TRUE(a.maps[i].map == b.maps[i].map) << what << " map " << i;
  }
  ASSERT_EQ(a.statements.size(), b.statements.size()) << what;
  for (std::size_t s = 0; s < a.statements.size(); ++s) {
    const pipeline::StatementPipelineInfo& x = a.statements[s];
    const pipeline::StatementPipelineInfo& y = b.statements[s];
    EXPECT_TRUE(x.blocking == y.blocking) << what << " S" << s;
    EXPECT_TRUE(x.expansion == y.expansion) << what << " S" << s;
    EXPECT_TRUE(x.blockReps == y.blockReps) << what << " S" << s;
    EXPECT_TRUE(x.outDependency == y.outDependency) << what << " S" << s;
    EXPECT_EQ(x.chainOrdering, y.chainOrdering) << what << " S" << s;
    EXPECT_TRUE(x.selfEdges == y.selfEdges) << what << " S" << s;
    EXPECT_EQ(x.reduction.relaxed, y.reduction.relaxed) << what << " S" << s;
    ASSERT_EQ(x.inRequirements.size(), y.inRequirements.size())
        << what << " S" << s;
    for (std::size_t r = 0; r < x.inRequirements.size(); ++r) {
      EXPECT_EQ(x.inRequirements[r].srcStmtIdx, y.inRequirements[r].srcStmtIdx)
          << what << " S" << s << " req " << r;
      EXPECT_TRUE(x.inRequirements[r].map == y.inRequirements[r].map)
          << what << " S" << s << " req " << r;
      EXPECT_EQ(x.inRequirements[r].viaCombine, y.inRequirements[r].viaCombine)
          << what << " S" << s << " req " << r;
    }
  }
}

/// The routes must partition the candidates (now including Reduction).
void expectStatsConsistent(const pipeline::DetectStats& st,
                           const std::string& what) {
  EXPECT_EQ(st.parametricPairs + st.symbolicPairs + st.explicitPairs +
                st.independentPairs + st.reductionPairs,
            st.candidatePairs)
      << what;
}

codegen::TaskProgram lowerProgram(const scop::Scop& scop,
                                  const pipeline::PipelineInfo& info) {
  const std::unique_ptr<sched::ScheduleNode> tree =
      sched::buildPipelineSchedule(scop, info);
  const ast::Ast lowered = ast::buildAst(scop, *tree);
  codegen::TaskProgram prog = codegen::lowerToTasks(scop, lowered);
  prog.validate(scop);
  return prog;
}

// --- Randomized corpus ------------------------------------------------

/// A random 2-4 nest program in the shape of the parametric harness
/// (identity writes, mostly-separable cross reads), where one nest may be
/// turned into an accumulation `acc[f(i)] (⊕)= g(earlier reads)`. Builds
/// the scop twice from the same draw: `plain` carries the accumulator
/// write+read WITHOUT a declared operator, `reduced` declares it — the
/// accesses are bit-identical, so reductionMode=Off must not tell them
/// apart.
struct CorpusDraw {
  scop::Scop plain;
  scop::Scop reduced;
  std::optional<std::size_t> reductionStmt; // nest that accumulates
};

CorpusDraw randomCorpusScop(SplitMix64& rng, std::uint64_t tag) {
  const std::size_t nests = 2 + rng.nextBelow(3);
  const std::size_t depth = 1 + rng.nextBelow(2);

  struct ReadSpec {
    std::size_t src;
    std::vector<pb::Value> c, o;
  };
  struct StmtSpec {
    std::vector<pb::Value> lo, hi;
    std::vector<ReadSpec> reads;
    bool readsAccumulator = false;
  };

  std::vector<StmtSpec> stmts(nests);
  for (std::size_t k = 0; k < nests; ++k) {
    for (std::size_t d = 0; d < depth; ++d) {
      const pb::Value lo = static_cast<pb::Value>(rng.nextBelow(3));
      stmts[k].lo.push_back(lo);
      stmts[k].hi.push_back(lo + 2 +
                            static_cast<pb::Value>(rng.nextBelow(15)));
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (rng.nextBelow(10) >= 6)
        continue;
      ReadSpec r;
      r.src = s;
      for (std::size_t d = 0; d < depth; ++d) {
        const pb::Value c = 1 + static_cast<pb::Value>(rng.nextBelow(2));
        const pb::Value minOffset = -c * stmts[k].lo[d];
        const pb::Value o =
            minOffset + static_cast<pb::Value>(rng.nextBelow(
                            static_cast<std::uint64_t>(3 - minOffset + 1)));
        r.c.push_back(c);
        r.o.push_back(o);
      }
      stmts[k].reads.push_back(std::move(r));
    }
  }

  // Pick the accumulation nest: any nest, ~2/3 of the draws. Its write
  // collapses to acc[dim0] (depth 2) or acc[0] (depth 1) — non-injective
  // over a domain with >1 point per accumulator cell.
  std::optional<std::size_t> redStmt;
  if (rng.nextBelow(3) != 0) {
    redStmt = rng.nextBelow(nests);
    // A depth-1 nest writing acc[0] needs >= 2 iterations for a
    // self-dependence; the generator guarantees hi - lo >= 2.
    // Downstream nests read acc[lo0] (always written) half the time so
    // combine edges actually occur.
    for (std::size_t k = *redStmt + 1; k < nests; ++k)
      if (rng.nextBelow(2) == 0)
        stmts[k].readsAccumulator = true;
  }
  const std::array<scop::ReductionOp, 5> ops = {
      scop::ReductionOp::Add, scop::ReductionOp::Mul, scop::ReductionOp::Xor,
      scop::ReductionOp::Min, scop::ReductionOp::Max};
  const scop::ReductionOp op = ops[rng.nextBelow(ops.size())];

  // Array shapes large enough for every reader.
  std::vector<std::vector<pb::Value>> shapes(nests);
  for (std::size_t k = 0; k < nests; ++k)
    shapes[k] = stmts[k].hi;
  for (std::size_t k = 0; k < nests; ++k)
    for (const ReadSpec& r : stmts[k].reads)
      for (std::size_t d = 0; d < depth; ++d) {
        const pb::Value maxSub = r.c[d] * (stmts[k].hi[d] - 1) + r.o[d];
        shapes[r.src][d] = std::max(shapes[r.src][d], maxSub + 1);
      }

  const auto build = [&](bool declareOp) {
    scop::ScopBuilder b("redrand" + std::to_string(tag));
    std::vector<std::size_t> arrays;
    for (std::size_t k = 0; k < nests; ++k) {
      if (redStmt && k == *redStmt)
        arrays.push_back(b.array("acc", {shapes[k][0]}));
      else
        arrays.push_back(b.array("A" + std::to_string(k), shapes[k]));
    }
    for (std::size_t k = 0; k < nests; ++k) {
      auto S = b.statement("S" + std::to_string(k), depth);
      std::vector<pb::AffineExpr> identity;
      for (std::size_t d = 0; d < depth; ++d) {
        S.bound(d, stmts[k].lo[d], stmts[k].hi[d]);
        identity.push_back(S.dim(d));
      }
      if (redStmt && k == *redStmt) {
        const std::vector<pb::AffineExpr> accSubs = {
            depth == 1 ? S.constant(0) : S.dim(0)};
        S.write(arrays[k], accSubs);
        S.read(arrays[k], accSubs);
        if (declareOp)
          S.reductionOp(op);
      } else {
        S.write(arrays[k], identity);
      }
      for (const ReadSpec& r : stmts[k].reads) {
        if (redStmt && r.src == *redStmt)
          continue; // accumulator cross reads handled below
        std::vector<pb::AffineExpr> subs;
        for (std::size_t d = 0; d < depth; ++d)
          subs.push_back(r.c[d] * S.dim(d) + r.o[d]);
        S.read(arrays[r.src], subs);
      }
      if (stmts[k].readsAccumulator)
        S.read(arrays[*redStmt], {S.constant(stmts[*redStmt].lo[0])});
    }
    return b.build();
  };
  return CorpusDraw{build(false), build(true), redStmt};
}

// --- Off bit-identity -------------------------------------------------

TEST(ReductionDetect, OffMatchesAutoOnTable9) {
  // No Table-9 program declares a reduction operator: the classifier must
  // relax nothing and Auto must reproduce Off bit for bit.
  std::size_t built = 0;
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    for (pb::Value n : {4, 8, 16}) {
      std::optional<scop::Scop> scop;
      try {
        scop.emplace(kernels::buildProgram(spec, n));
      } catch (const pipoly::Error&) {
        continue;
      }
      ++built;
      const std::string what = spec.name + " N=" + std::to_string(n);
      const pipeline::PipelineInfo off =
          pipeline::detectPipeline(*scop, optionsFor(RMode::Off));
      const pipeline::PipelineInfo aut =
          pipeline::detectPipeline(*scop, optionsFor(RMode::Auto));
      expectInfoEqual(off, aut, what);
      EXPECT_EQ(aut.stats.reductionStatements, 0u) << what;
      EXPECT_EQ(aut.stats.reductionPairs, 0u) << what;
      expectStatsConsistent(aut.stats, what);
    }
  }
  EXPECT_GE(built, 25u);
}

TEST(ReductionDetect, RandomizedDifferentialHarness) {
  SplitMix64 rng(0x51ce7a9b3d24f1c8ULL);
  std::size_t relaxedTotal = 0, combineEdges = 0;
  for (std::uint64_t iter = 0; iter < 220; ++iter) {
    const CorpusDraw draw = randomCorpusScop(rng, iter);
    const std::string what = "iter " + std::to_string(iter);

    // Accumulator writes are non-injective; detection needs the §7 knob
    // in every mode, exactly like the pre-reduction route did.
    const pipeline::PipelineInfo plainOff = pipeline::detectPipeline(
        draw.plain, optionsFor(RMode::Off, /*nonInjective=*/true));
    const pipeline::PipelineInfo reducedOff = pipeline::detectPipeline(
        draw.reduced, optionsFor(RMode::Off, /*nonInjective=*/true));
    // Off ignores declared operators entirely.
    expectInfoEqual(plainOff, reducedOff, what + " off op-blind");

    // Auto on the op-free twin changes nothing either.
    expectInfoEqual(plainOff,
                    pipeline::detectPipeline(
                        draw.plain, optionsFor(RMode::Auto, true)),
                    what + " plain auto");

    const pipeline::PipelineInfo aut = pipeline::detectPipeline(
        draw.reduced, optionsFor(RMode::Auto, /*nonInjective=*/true));
    expectStatsConsistent(aut.stats, what);

    if (!draw.reductionStmt) {
      expectInfoEqual(plainOff, aut, what + " no-reduction auto");
      EXPECT_EQ(aut.stats.reductionStatements, 0u) << what;
      continue;
    }

    const std::size_t rs = *draw.reductionStmt;
    const pipeline::ReductionInfo cls =
        pipeline::classifyReduction(draw.reduced, rs);
    ASSERT_TRUE(aut.statements.size() == plainOff.statements.size());
    EXPECT_EQ(aut.statements[rs].reduction.relaxed, cls.relaxed) << what;
    if (!cls.relaxed) {
      // Classifier rejected (e.g. an accumulation with no second
      // iteration hitting the same cell): Auto falls back to Off bits.
      expectInfoEqual(plainOff, aut, what + " rejected auto");
      continue;
    }
    ++relaxedTotal;
    EXPECT_EQ(aut.stats.reductionStatements, 1u) << what;

    // Adds-parallelism: the relaxed statement keeps at least as many
    // blocks, runs them with no self edges and no chain ordering.
    EXPECT_GE(aut.statements[rs].blockReps.size(),
              plainOff.statements[rs].blockReps.size())
        << what;
    EXPECT_FALSE(aut.statements[rs].chainOrdering) << what;
    EXPECT_TRUE(aut.statements[rs].selfEdges.empty()) << what;

    // Statements neither relaxed nor downstream of the relaxed source
    // keep their Off result bit for bit.
    for (std::size_t s = 0; s < aut.statements.size(); ++s) {
      if (s == rs)
        continue;
      bool viaCombine = false;
      for (const pipeline::InRequirement& req : aut.statements[s].inRequirements)
        viaCombine = viaCombine || req.viaCombine;
      if (viaCombine) {
        ++combineEdges;
        continue;
      }
      const pipeline::StatementPipelineInfo& x = plainOff.statements[s];
      const pipeline::StatementPipelineInfo& y = aut.statements[s];
      EXPECT_TRUE(x.blocking == y.blocking) << what << " S" << s;
      EXPECT_TRUE(x.blockReps == y.blockReps) << what << " S" << s;
      EXPECT_TRUE(x.selfEdges == y.selfEdges) << what << " S" << s;
      EXPECT_EQ(x.chainOrdering, y.chainOrdering) << what << " S" << s;
    }

    // Every relaxed dependence is a genuine self-dependence of the
    // statement (the subset legality fact, exhaustively re-checked by
    // the fuzz suite).
    const pb::IntMap relaxed =
        pipeline::relaxedSelfDependences(draw.reduced, rs);
    const pb::IntMap all = scop::selfDependences(draw.reduced, rs);
    for (const auto& [i, j] : relaxed.pairs())
      EXPECT_TRUE(all.contains(i, j)) << what;

    // Lowered programs validate, with exactly one combine task.
    const codegen::TaskProgram prog = lowerProgram(draw.reduced, aut);
    std::size_t combines = 0;
    for (const codegen::Task& t : prog.tasks)
      combines += t.kind == codegen::TaskKind::ReductionCombine ? 1 : 0;
    EXPECT_EQ(combines, aut.statements[rs].blockReps.empty() ? 0u : 1u)
        << what;
  }
  // The corpus must genuinely exercise the route.
  EXPECT_GT(relaxedTotal, 80u);
  EXPECT_GT(combineEdges, 30u);
}

// --- The reduction kernel grid ----------------------------------------

TEST(ReductionDetect, GridKernelsSplitAndCombine) {
  for (const kernels::ReductionKernelSpec& spec : kernels::reductionKernels()) {
    const pb::Value n = 16;
    const scop::Scop scop = spec.build(n);
    const pipeline::PipelineInfo aut =
        pipeline::detectPipeline(scop, optionsFor(RMode::Auto));
    EXPECT_EQ(aut.stats.reductionStatements, 1u) << spec.name;
    const pipeline::StatementPipelineInfo& st =
        aut.statements[spec.reductionStmt];
    ASSERT_TRUE(st.reduction.relaxed) << spec.name;
    EXPECT_EQ(st.reduction.op, spec.op) << spec.name;
    // The acceptance bar: every accumulation nest splits into more than
    // one parallel partial block.
    EXPECT_GT(st.blockReps.size(), 1u) << spec.name;
    EXPECT_TRUE(st.selfEdges.empty()) << spec.name;

    const codegen::TaskProgram prog = lowerProgram(scop, aut);
    std::size_t combines = 0, partialBlocks = 0;
    for (const codegen::Task& t : prog.tasks) {
      if (t.kind == codegen::TaskKind::ReductionCombine) {
        ++combines;
        EXPECT_EQ(t.stmtIdx, spec.reductionStmt) << spec.name;
        EXPECT_EQ(t.iterations.size(), st.blockReps.size()) << spec.name;
      } else if (t.stmtIdx == spec.reductionStmt) {
        ++partialBlocks;
      }
    }
    EXPECT_EQ(combines, 1u) << spec.name;
    EXPECT_EQ(partialBlocks, st.blockReps.size()) << spec.name;

    // The consumer depends on the combine tag, not on any partial.
    const codegen::TaskDep combineTag =
        codegen::combineDep(prog.numStatements, spec.reductionStmt);
    bool consumerSeen = false;
    for (const codegen::Task& t : prog.tasks)
      for (const codegen::TaskDep& d : t.in)
        if (d.idx == combineTag.idx && d.tag == combineTag.tag) {
          consumerSeen = true;
          EXPECT_GT(t.stmtIdx, spec.reductionStmt) << spec.name;
        }
    EXPECT_TRUE(consumerSeen) << spec.name;
  }
}

// --- Kernel-oracle execution coverage ---------------------------------

std::uint64_t sequentialOracle(const scop::Scop& scop,
                               std::size_t repetitions = 1) {
  kernels::ReductionRunner oracle(scop);
  for (std::size_t r = 0; r < repetitions; ++r)
    tasking::executeSequential(scop, oracle.executor());
  return oracle.fingerprint();
}

std::vector<std::pair<std::string, std::unique_ptr<tasking::TaskingLayer>>>
allBackends() {
  std::vector<std::pair<std::string, std::unique_ptr<tasking::TaskingLayer>>>
      backends;
  backends.emplace_back("serial", tasking::makeSerialBackend());
  backends.emplace_back("threadpool", tasking::makeThreadPoolBackend(4));
  if (auto omp = tasking::makeOpenMPBackend())
    backends.emplace_back("openmp", std::move(omp));
  backends.emplace_back("channel", tasking::makeChannelBackend());
  return backends;
}

TEST(ReductionExecution, KernelOracleOnAllBackends) {
  for (const kernels::ReductionKernelSpec& spec : kernels::reductionKernels()) {
    const pb::Value n = 16;
    const scop::Scop scop = spec.build(n);
    const std::uint64_t expected = sequentialOracle(scop);

    for (RMode mode : {RMode::Auto, RMode::Off}) {
      const pipeline::PipelineInfo info = pipeline::detectPipeline(
          scop, optionsFor(mode, /*nonInjective=*/mode == RMode::Off));
      codegen::TaskProgram prog = lowerProgram(scop, info);
      for (const bool optimize : {false, true}) {
        if (optimize) {
          opt::optimize(prog);
          prog.validate(scop);
        }
        for (auto& [name, layer] : allBackends()) {
          kernels::ReductionRunner runner(scop, prog);
          tasking::executeTaskProgram(prog, *layer, runner.executor());
          EXPECT_EQ(runner.fingerprint(), expected)
              << spec.name << " mode=" << (mode == RMode::Auto ? "auto" : "off")
              << (optimize ? " optimized" : "") << " backend=" << name;
        }
      }
    }
  }
}

TEST(ReductionExecution, ReplayBitIdentityOverThousandRuns) {
  // One compile, 1000 replays with shared state: the accumulators keep
  // evolving (each replay folds fresh contributions computed from the
  // arrays the previous replay left behind), and the result must equal
  // 1000 back-to-back sequential runs exactly.
  const scop::Scop scop = kernels::dotProductChain(8);
  const std::uint64_t expected = sequentialOracle(scop, 1000);

  const pipeline::PipelineInfo info =
      pipeline::detectPipeline(scop, optionsFor(RMode::Auto));
  codegen::TaskProgram prog = lowerProgram(scop, info);
  auto shared = std::make_shared<const codegen::TaskProgram>(std::move(prog));
  tasking::CompiledPipeline pipe(shared);
  kernels::ReductionRunner runner(scop, *shared);
  for (std::size_t r = 0; r < 1000; ++r)
    pipe.replay(runner.executor());
  EXPECT_EQ(runner.fingerprint(), expected);
  EXPECT_EQ(pipe.stats().replays, 1000u);
}

TEST(ReductionExecution, BatchStreamingMatchesBackToBackReplays) {
  for (const kernels::ReductionKernelSpec& spec : kernels::reductionKernels()) {
    const scop::Scop scop = spec.build(16);
    const std::uint64_t expected = sequentialOracle(scop, 50);

    const pipeline::PipelineInfo info =
        pipeline::detectPipeline(scop, optionsFor(RMode::Auto));
    auto shared = std::make_shared<const codegen::TaskProgram>(
        lowerProgram(scop, info));
    tasking::CompiledPipeline pipe(shared);
    kernels::ReductionRunner runner(scop, *shared);
    pipe.replayBatches(50, [&](std::size_t, std::size_t stmtIdx,
                               const pb::Tuple& it) {
      runner.execute(stmtIdx, it);
    });
    EXPECT_EQ(runner.fingerprint(), expected) << spec.name;
  }
}

TEST(ReductionExecution, ResetRestoresTheInitialFingerprint) {
  const scop::Scop scop = kernels::stencilAccumulate(12);
  const std::uint64_t once = sequentialOracle(scop);
  kernels::ReductionRunner runner(scop);
  for (int round = 0; round < 3; ++round) {
    runner.reset();
    tasking::executeSequential(scop, runner.executor());
    EXPECT_EQ(runner.fingerprint(), once) << "round " << round;
  }
}

} // namespace
