// The symbolic fast path must be bit-identical to the explicit pipeline
// map wherever it applies.

#include "pipeline/symbolic.hpp"

#include "kernels/matmul.hpp"
#include "kernels/suite.hpp"
#include "pipeline/pipeline_map.hpp"
#include "scop/builder.hpp"
#include "support/rng.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::pipeline {
namespace {

void expectFastMatchesExplicit(const scop::Scop& scop, std::size_t s,
                               std::size_t t) {
  auto fast = trySymbolicPipelineMap(scop, s, t);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, pipelineMap(scop, s, t))
      << "pair (" << s << ", " << t << ") in " << scop.name();
}

TEST(SymbolicPipelineTest, AppliesToListing1) {
  scop::Scop scop = testing::listing1(20);
  EXPECT_TRUE(symbolicPipelineApplies(scop, 0, 1));
  expectFastMatchesExplicit(scop, 0, 1);
}

TEST(SymbolicPipelineTest, AppliesToListing3AllPairs) {
  scop::Scop scop = testing::listing3(16);
  for (auto [s, t] : {std::pair<std::size_t, std::size_t>{0, 1},
                      {0, 2},
                      {1, 2}})
    expectFastMatchesExplicit(scop, s, t);
}

TEST(SymbolicPipelineTest, AppliesToWholeTable9Suite) {
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    scop::Scop scop = kernels::buildProgram(spec, 14);
    for (std::size_t t = 1; t < scop.numStatements(); ++t)
      for (std::size_t s = 0; s < t; ++s) {
        auto fast = trySymbolicPipelineMap(scop, s, t);
        ASSERT_TRUE(fast.has_value()) << spec.name;
        EXPECT_EQ(*fast, pipelineMap(scop, s, t))
            << spec.name << " pair (" << s << ", " << t << ")";
      }
  }
}

TEST(SymbolicPipelineTest, AppliesToMatmulRowReads) {
  for (auto v : {kernels::MatmulVariant::NMM, kernels::MatmulVariant::GNMM}) {
    scop::Scop scop = kernels::matmulChain(v, 3, 10);
    for (std::size_t t = 1; t < scop.numStatements(); ++t)
      expectFastMatchesExplicit(scop, t - 1, t);
  }
}

TEST(SymbolicPipelineTest, RejectsNonIdentityWrites) {
  scop::ScopBuilder b("shiftwrite");
  std::size_t A = b.array("A", {10});
  std::size_t B = b.array("B", {10});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 8);
  S.write(A, {S.dim(0) + 1}); // shifted, not the identity
  auto T = b.statement("T", 1);
  T.bound(0, 1, 9);
  T.write(B, {T.dim(0)});
  T.read(A, {T.dim(0)});
  scop::Scop scop = b.build();
  EXPECT_FALSE(symbolicPipelineApplies(scop, 0, 1));
  EXPECT_EQ(trySymbolicPipelineMap(scop, 0, 1), std::nullopt);
  // The explicit path still handles it.
  EXPECT_FALSE(pipelineMap(scop, 0, 1).empty());
}

TEST(SymbolicPipelineTest, RandomSeparablePatternsAgree) {
  SplitMix64 rng(4242);
  for (int round = 0; round < 12; ++round) {
    const pb::Value n = 6 + static_cast<pb::Value>(rng.nextBelow(5));
    scop::ScopBuilder b("rand");
    std::size_t A = b.array("A", {4 * n, 4 * n});
    std::size_t B = b.array("B", {4 * n, 4 * n});
    auto S = b.statement("S", 2);
    S.bound(0, 0, n).bound(1, 0, n);
    S.write(A, {S.dim(0), S.dim(1)});
    auto T = b.statement("T", 2);
    T.bound(0, 0, n).bound(1, 0, n);
    T.write(B, {T.dim(0), T.dim(1)});
    const int numReads = 1 + static_cast<int>(rng.nextBelow(3));
    for (int r = 0; r < numReads; ++r) {
      pb::Value ci = static_cast<pb::Value>(rng.nextBelow(3));
      pb::Value cj = static_cast<pb::Value>(rng.nextBelow(3));
      pb::Value oi = static_cast<pb::Value>(rng.nextBelow(3));
      pb::Value oj = static_cast<pb::Value>(rng.nextBelow(3));
      // Cross terms on purpose — the scan handles non-separable too.
      T.read(A, {ci * T.dim(0) + cj * T.dim(1) + oi,
                 cj * T.dim(1) + oj});
    }
    scop::Scop scop = b.build();
    auto fast = trySymbolicPipelineMap(scop, 0, 1);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(*fast, pipelineMap(scop, 0, 1)) << "round " << round;
  }
}

TEST(SymbolicPipelineTest, EmptyWhenNoSharedArrays) {
  scop::ScopBuilder b("nodep");
  std::size_t A = b.array("A", {4});
  std::size_t B = b.array("B", {4});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 4).write(A, {S.dim(0)});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 4).write(B, {T.dim(0)});
  scop::Scop scop = b.build();
  auto fast = trySymbolicPipelineMap(scop, 0, 1);
  ASSERT_TRUE(fast.has_value());
  EXPECT_TRUE(fast->empty());
}

} // namespace
} // namespace pipoly::pipeline
