#include "pipeline/blocking.hpp"

#include "pipeline/pipeline_map.hpp"
#include "presburger/parser.hpp"
#include "support/assert.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::pipeline {
namespace {

using pb::IntTupleSet;
using pb::Space;
using pb::Tuple;

const Space kS("S", 1);

TEST(BlockingMapTest, SimpleBoundaries) {
  IntTupleSet domain(kS, {{0}, {1}, {2}, {3}, {4}, {5}});
  IntTupleSet bounds(kS, {{1}, {3}});
  pb::IntMap v = blockingMap(domain, bounds);
  EXPECT_EQ(v.singleImageOf(Tuple{0}), (Tuple{1}));
  EXPECT_EQ(v.singleImageOf(Tuple{1}), (Tuple{1}));
  EXPECT_EQ(v.singleImageOf(Tuple{2}), (Tuple{3}));
  EXPECT_EQ(v.singleImageOf(Tuple{3}), (Tuple{3}));
  // Remainder block: mapped to lexmax of the domain.
  EXPECT_EQ(v.singleImageOf(Tuple{4}), (Tuple{5}));
  EXPECT_EQ(v.singleImageOf(Tuple{5}), (Tuple{5}));
}

TEST(BlockingMapTest, MatchesNaiveFormula) {
  IntTupleSet domain(kS, {{0}, {1}, {2}, {3}, {4}, {5}, {6}});
  IntTupleSet bounds(kS, {{2}, {4}});
  EXPECT_EQ(blockingMap(domain, bounds), blockingMapNaive(domain, bounds));
  // Empty boundary set: one big block.
  EXPECT_EQ(blockingMap(domain, IntTupleSet(kS)),
            blockingMapNaive(domain, IntTupleSet(kS)));
  // Boundary at the very end.
  IntTupleSet endBound(kS, {{6}});
  EXPECT_EQ(blockingMap(domain, endBound),
            blockingMapNaive(domain, endBound));
}

TEST(BlockingMapTest, NoBoundariesGivesSingleBlock) {
  IntTupleSet domain(kS, {{0}, {1}, {2}});
  pb::IntMap v = blockingMap(domain, IntTupleSet(kS));
  EXPECT_EQ(v.range(), IntTupleSet(kS, {Tuple{2}}));
}

TEST(BlockingMapTest, BoundariesOutsideDomainThrow) {
  IntTupleSet domain(kS, {{0}, {1}});
  IntTupleSet bounds(kS, {{5}});
  EXPECT_THROW((void)blockingMap(domain, bounds), Error);
}

TEST(BlockingMapTest, TotalAndIdempotent) {
  IntTupleSet domain(kS, {{0}, {1}, {2}, {3}, {4}});
  IntTupleSet bounds(kS, {{0}, {2}});
  pb::IntMap v = blockingMap(domain, bounds);
  EXPECT_EQ(v.domain(), domain);
  for (const Tuple& t : domain.points()) {
    Tuple rep = *v.singleImageOf(t);
    EXPECT_EQ(*v.singleImageOf(rep), rep) << "not idempotent at " << t;
    EXPECT_GE(rep, t);
  }
}

TEST(BlockingMapTest, PaperSourceBlockingExample) {
  // §4.1, Listing 1 with N = 20: the source blocking map of S contains
  //   S[1,1] -> S[1,2], S[1,2] -> S[1,2], S[1,3] -> S[1,4], S[1,4] -> S[1,4].
  scop::Scop scop = testing::listing1(20);
  pb::IntMap t = pipelineMap(scop, 0, 1);
  pb::IntMap v = sourceBlockingMap(scop.statement(0).domain(), t);
  EXPECT_EQ(v.singleImageOf(Tuple{1, 1}), (Tuple{1, 2}));
  EXPECT_EQ(v.singleImageOf(Tuple{1, 2}), (Tuple{1, 2}));
  EXPECT_EQ(v.singleImageOf(Tuple{1, 3}), (Tuple{1, 4}));
  EXPECT_EQ(v.singleImageOf(Tuple{1, 4}), (Tuple{1, 4}));
}

TEST(BlockingMapTest, SourceRemainderBlock) {
  // Listing 1, N = 20: source iterations with i0 > 8 feed no target
  // iteration; they collapse into the remainder block rep S[18,18].
  scop::Scop scop = testing::listing1(20);
  pb::IntMap t = pipelineMap(scop, 0, 1);
  pb::IntMap v = sourceBlockingMap(scop.statement(0).domain(), t);
  EXPECT_EQ(v.singleImageOf(Tuple{9, 0}), (Tuple{18, 18}));
  EXPECT_EQ(v.singleImageOf(Tuple{18, 18}), (Tuple{18, 18}));
  // ... but iterations within the pipelined region do not.
  EXPECT_EQ(v.singleImageOf(Tuple{8, 16}), (Tuple{8, 16}));
}

TEST(BlockingMapTest, TargetBlocking) {
  scop::Scop scop = testing::listing1(20);
  pb::IntMap t = pipelineMap(scop, 0, 1);
  pb::IntMap y = targetBlockingMap(scop.statement(1).domain(), t);
  // Range(T) covers every target iteration, so each block is a singleton.
  EXPECT_EQ(y, pb::IntMap::identity(scop.statement(1).domain()));
}

TEST(IntegrateBlockingTest, LexminOfUnion) {
  IntTupleSet domain(kS, {{0}, {1}, {2}, {3}, {4}, {5}});
  pb::IntMap coarse = blockingMap(domain, IntTupleSet(kS, {Tuple{3}}));
  pb::IntMap fine = blockingMap(domain, IntTupleSet(kS, {{1}, {4}}));
  pb::IntMap sigma = integrateBlockingMaps({coarse, fine});
  // Boundary union {1, 3, 4} plus remainder to 5.
  EXPECT_EQ(sigma.singleImageOf(Tuple{0}), (Tuple{1}));
  EXPECT_EQ(sigma.singleImageOf(Tuple{2}), (Tuple{3}));
  EXPECT_EQ(sigma.singleImageOf(Tuple{4}), (Tuple{4}));
  EXPECT_EQ(sigma.singleImageOf(Tuple{5}), (Tuple{5}));
}

TEST(IntegrateBlockingTest, EquivalentToBlockingOverBoundaryUnion) {
  IntTupleSet domain(kS, {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}});
  IntTupleSet b1(kS, {{2}, {5}});
  IntTupleSet b2(kS, {{3}, {5}, {6}});
  pb::IntMap viaUnionOfMaps = integrateBlockingMaps(
      {blockingMap(domain, b1), blockingMap(domain, b2)});
  // Note: remainder reps (lexmax) also act as boundaries in the union, so
  // the boundary union always includes domain.lexmax() here.
  IntTupleSet boundaryUnion =
      b1.unite(b2).unite(IntTupleSet(kS, {domain.lexmax()}));
  EXPECT_EQ(viaUnionOfMaps, blockingMap(domain, boundaryUnion));
}

TEST(IntegrateBlockingTest, SingleMapIsIdentityOperation) {
  IntTupleSet domain(kS, {{0}, {1}, {2}});
  pb::IntMap v = blockingMap(domain, IntTupleSet(kS, {Tuple{1}}));
  EXPECT_EQ(integrateBlockingMaps({v}), v);
}

} // namespace
} // namespace pipoly::pipeline
