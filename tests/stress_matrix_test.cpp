// The widest end-to-end net: random SCoPs through every combination of
// detection options, executed on every tasking backend, must always be
// (a) structurally valid and (b) bit-identical to sequential execution.

#include "codegen/task_program.hpp"
#include "scop/builder.hpp"
#include "support/rng.hpp"
#include "tasking/tasking.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

namespace pipoly {
namespace {

scop::Scop randomScop(std::uint64_t seed) {
  SplitMix64 rng(seed);
  const pb::Value n = 5 + static_cast<pb::Value>(rng.nextBelow(5));
  const std::size_t nests = 2 + rng.nextBelow(3);
  scop::ScopBuilder b("stress");
  std::vector<std::size_t> arrays;
  // std::string{} + to_string instead of `"A" + std::to_string(k)`: the
  // const char* + string&& overload trips GCC 12's -Wrestrict false
  // positive (PR105651) depending on inlining, and CI builds -Werror.
  for (std::size_t k = 0; k < nests; ++k)
    arrays.push_back(b.array(std::string("A") + std::to_string(k),
                             {3 * n, 3 * n}));
  for (std::size_t k = 0; k < nests; ++k) {
    auto S = b.statement(std::string("S") + std::to_string(k), 2);
    S.bound(0, 0, n).bound(1, 0, n);
    S.write(arrays[k], {S.dim(0), S.dim(1)});
    // Randomly serial or parallel nest.
    if (rng.nextBelow(2))
      S.read(arrays[k], {S.dim(0), S.dim(1) + 1});
    if (rng.nextBelow(2))
      S.read(arrays[k], {S.dim(0) + 1, S.dim(1)});
    // Cross reads from random earlier nests.
    const std::size_t numReads = k == 0 ? 0 : 1 + rng.nextBelow(2);
    for (std::size_t r = 0; r < numReads; ++r) {
      std::size_t src = arrays[rng.nextBelow(k)];
      pb::Value ci = 1 + static_cast<pb::Value>(rng.nextBelow(2));
      pb::Value cj = 1 + static_cast<pb::Value>(rng.nextBelow(2));
      S.read(src, {ci * S.dim(0) + static_cast<pb::Value>(rng.nextBelow(2)),
                   cj * S.dim(1) + static_cast<pb::Value>(rng.nextBelow(2))});
    }
  }
  return b.build();
}

class StressMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(StressMatrixTest, AllOptionsAllBackends) {
  auto [seed, optionIdx] = GetParam();
  scop::Scop scop = randomScop(seed);

  pipeline::DetectOptions opt;
  switch (optionIdx) {
  case 0:
    break; // paper defaults
  case 1:
    opt.coarsening = 3;
    break;
  case 2:
    opt.integration = pipeline::DetectOptions::Integration::FirstMapOnly;
    break;
  case 3:
    opt.relaxSameNestOrdering = true;
    break;
  default:
    opt.relaxSameNestOrdering = true;
    opt.coarsening = 2;
    break;
  }

  codegen::TaskProgram prog = codegen::compilePipeline(scop, opt);
  ASSERT_NO_THROW(prog.validate(scop));

  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  std::vector<std::unique_ptr<tasking::TaskingLayer>> layers;
  layers.push_back(tasking::makeSerialBackend());
  layers.push_back(tasking::makeThreadPoolBackend(3));
  if (auto omp = tasking::makeOpenMPBackend())
    layers.push_back(std::move(omp));
  for (auto& layer : layers) {
    testing::InterpretedKernel kernel(scop);
    tasking::executeTaskProgram(prog, *layer, kernel.executor());
    ASSERT_EQ(kernel.fingerprint(), expected)
        << "seed " << seed << " option " << optionIdx << " backend "
        << layer->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressMatrixTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 22, 33, 44, 55,
                                                        66),
                       ::testing::Values(0, 1, 2, 3, 4)));

} // namespace
} // namespace pipoly
