#include "presburger/map.hpp"

#include "presburger/parser.hpp"
#include "support/assert.hpp"

#include <gtest/gtest.h>

namespace pipoly::pb {
namespace {

const Space kI("I", 1);
const Space kJ("J", 1);
const Space kM("M", 1);

IntMap mapOf(Space in, Space out, std::vector<IntMap::Pair> pairs) {
  return IntMap(std::move(in), std::move(out), std::move(pairs));
}

TEST(IntMapTest, ConstructionSortsAndDeduplicates) {
  IntMap m = mapOf(kI, kJ, {{{1}, {2}}, {{0}, {1}}, {{1}, {2}}});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(Tuple{0}, Tuple{1}));
  EXPECT_TRUE(m.contains(Tuple{1}, Tuple{2}));
}

TEST(IntMapTest, DomainAndRange) {
  IntMap m = mapOf(kI, kJ, {{{0}, {5}}, {{0}, {6}}, {{2}, {5}}});
  EXPECT_EQ(m.domain(), IntTupleSet(kI, {Tuple{0}, Tuple{2}}));
  EXPECT_EQ(m.range(), IntTupleSet(kJ, {Tuple{5}, Tuple{6}}));
}

TEST(IntMapTest, Inverse) {
  IntMap m = mapOf(kI, kJ, {{{0}, {5}}, {{1}, {6}}});
  IntMap inv = m.inverse();
  EXPECT_EQ(inv.domainSpace(), kJ);
  EXPECT_EQ(inv.rangeSpace(), kI);
  EXPECT_TRUE(inv.contains(Tuple{5}, Tuple{0}));
  EXPECT_EQ(inv.inverse(), m);
}

TEST(IntMapTest, Composition) {
  // rd: J -> M, wrInv: M -> I; wrInv(rd): J -> I.
  IntMap rd = mapOf(kJ, kM, {{{0}, {10}}, {{1}, {11}}, {{1}, {12}}});
  IntMap wrInv = mapOf(kM, kI, {{{10}, {0}}, {{11}, {4}}, {{12}, {9}}});
  IntMap p = wrInv.compose(rd);
  EXPECT_EQ(p.domainSpace(), kJ);
  EXPECT_EQ(p.rangeSpace(), kI);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_TRUE(p.contains(Tuple{0}, Tuple{0}));
  EXPECT_TRUE(p.contains(Tuple{1}, Tuple{4}));
  EXPECT_TRUE(p.contains(Tuple{1}, Tuple{9}));
}

TEST(IntMapTest, CompositionSpaceMismatchThrows) {
  IntMap rd = mapOf(kJ, kM, {});
  IntMap other = mapOf(kJ, kI, {});
  EXPECT_THROW((void)other.compose(rd), Error);
}

TEST(IntMapTest, ApplyAndImages) {
  IntMap m = mapOf(kI, kJ, {{{0}, {3}}, {{0}, {4}}, {{1}, {5}}});
  IntTupleSet in(kI, {Tuple{0}});
  EXPECT_EQ(m.apply(in), IntTupleSet(kJ, {Tuple{3}, Tuple{4}}));
  EXPECT_EQ(m.imagesOf(Tuple{1}), (std::vector<Tuple>{Tuple{5}}));
  EXPECT_TRUE(m.imagesOf(Tuple{9}).empty());
}

TEST(IntMapTest, SingleImageOf) {
  IntMap m = mapOf(kI, kJ, {{{0}, {3}}, {{0}, {4}}, {{1}, {5}}});
  EXPECT_EQ(m.singleImageOf(Tuple{1}), Tuple{5});
  EXPECT_EQ(m.singleImageOf(Tuple{7}), std::nullopt);
  EXPECT_THROW((void)m.singleImageOf(Tuple{0}), Error);
}

TEST(IntMapTest, LexmaxPerDomain) {
  const Space s2("S", 2);
  IntMap m(kI, s2,
           {{{0}, {1, 9}}, {{0}, {2, 0}}, {{1}, {0, 0}}, {{1}, {0, 1}}});
  IntMap mx = m.lexmaxPerDomain();
  EXPECT_EQ(mx.size(), 2u);
  EXPECT_TRUE(mx.contains(Tuple{0}, Tuple{2, 0})); // [2,0] lex> [1,9]
  EXPECT_TRUE(mx.contains(Tuple{1}, Tuple{0, 1}));
  EXPECT_TRUE(mx.isSingleValued());
}

TEST(IntMapTest, LexminPerDomain) {
  const Space s2("S", 2);
  IntMap m(kI, s2, {{{0}, {1, 9}}, {{0}, {2, 0}}, {{1}, {0, 1}}});
  IntMap mn = m.lexminPerDomain();
  EXPECT_TRUE(mn.contains(Tuple{0}, Tuple{1, 9}));
  EXPECT_TRUE(mn.contains(Tuple{1}, Tuple{0, 1}));
  EXPECT_TRUE(mn.isSingleValued());
}

TEST(IntMapTest, Identity) {
  IntTupleSet s(kI, {Tuple{3}, Tuple{5}});
  IntMap id = IntMap::identity(s);
  EXPECT_EQ(id.size(), 2u);
  EXPECT_TRUE(id.contains(Tuple{3}, Tuple{3}));
  EXPECT_TRUE(id.isInjective());
  EXPECT_TRUE(id.isSingleValued());
}

TEST(IntMapTest, LexLeSet) {
  IntTupleSet from(kI, {Tuple{0}, Tuple{1}, Tuple{2}, Tuple{3}});
  IntTupleSet bounds(kI, {Tuple{1}, Tuple{3}});
  IntMap m = IntMap::lexLeSet(from, bounds);
  // 0 -> {1,3}; 1 -> {1,3}; 2 -> {3}; 3 -> {3}
  EXPECT_EQ(m.size(), 6u);
  IntMap blocking = m.lexminPerDomain();
  EXPECT_TRUE(blocking.contains(Tuple{0}, Tuple{1}));
  EXPECT_TRUE(blocking.contains(Tuple{1}, Tuple{1}));
  EXPECT_TRUE(blocking.contains(Tuple{2}, Tuple{3}));
  EXPECT_TRUE(blocking.contains(Tuple{3}, Tuple{3}));
}

TEST(IntMapTest, LexGeContains) {
  IntTupleSet s(kI, {Tuple{0}, Tuple{1}, Tuple{2}});
  IntMap m = IntMap::lexGeContains(s);
  // x -> y for y <= x: sizes 1 + 2 + 3.
  EXPECT_EQ(m.size(), 6u);
  EXPECT_TRUE(m.contains(Tuple{2}, Tuple{0}));
  EXPECT_FALSE(m.contains(Tuple{0}, Tuple{2}));
}

TEST(IntMapTest, RestrictDomainAndRange) {
  IntMap m = mapOf(kI, kJ, {{{0}, {3}}, {{1}, {4}}, {{2}, {5}}});
  IntTupleSet dom(kI, {Tuple{0}, Tuple{2}});
  EXPECT_EQ(m.restrictDomain(dom).size(), 2u);
  IntTupleSet ran(kJ, {Tuple{4}});
  IntMap r = m.restrictRange(ran);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.contains(Tuple{1}, Tuple{4}));
}

TEST(IntMapTest, UniteAndProperties) {
  IntMap a = mapOf(kI, kJ, {{{0}, {3}}});
  IntMap b = mapOf(kI, kJ, {{{1}, {3}}});
  IntMap u = a.unite(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_FALSE(u.isInjective()); // two inputs share output 3
  EXPECT_TRUE(u.isSingleValued());
  IntMap c = mapOf(kI, kJ, {{{0}, {3}}, {{0}, {4}}});
  EXPECT_FALSE(c.isSingleValued());
  EXPECT_TRUE(c.isInjective());
}

TEST(IntMapTest, FromFunction) {
  IntTupleSet dom(kI, {Tuple{0}, Tuple{1}, Tuple{2}});
  IntMap m = IntMap::fromFunction(
      dom, kJ, [](const Tuple& t) { return Tuple{t[0] * 2}; });
  EXPECT_TRUE(m.contains(Tuple{2}, Tuple{4}));
  EXPECT_TRUE(m.isSingleValued());
}

TEST(IntMapTest, CompositionMatchesPaperNotation) {
  // The paper's P = Wr^-1(Rd): apply Rd first, then Wr^-1.
  // Wr: S[i] -> M[2i] on 0<=i<4; Rd: T[j] -> M[j] on 0<=j<8.
  IntMap wr = parseMap("{ S[i] -> M[m] : 0 <= i < 4 and m = 2*i }");
  IntMap rd = parseMap("{ T[j] -> M[m] : 0 <= j < 8 and m = j }");
  IntMap p = wr.inverse().compose(rd);
  // T[j] -> S[j/2] for even j.
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.contains(Tuple{0}, Tuple{0}));
  EXPECT_TRUE(p.contains(Tuple{6}, Tuple{3}));
  EXPECT_FALSE(p.contains(Tuple{1}, Tuple{0}));
}

} // namespace
} // namespace pipoly::pb
