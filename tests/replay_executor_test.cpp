// Tests for the persistent replay executor (tasking::CompiledPipeline):
// bit-identity against executeTaskProgram and the sequential oracle,
// long-run determinism on every engine, batch streaming semantics, the
// linear fast path, and the TaskProgram lifetime contract.

#include "tasking/replay_executor.hpp"

#include "codegen/task_program.hpp"
#include "kernels/suite.hpp"
#include "opt/optimizer.hpp"
#include "support/assert.hpp"
#include "tasking/tasking.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pipoly::tasking {
namespace {

scop::Scop fixtureScop(int which) {
  switch (which) {
  case 0:
    return testing::listing1(12);
  case 1:
    return testing::listing3(12);
  case 2:
    return testing::chain(3, 8);
  default:
    return testing::chain(5, 6);
  }
}

std::shared_ptr<const codegen::TaskProgram>
compileShared(const scop::Scop& scop, bool optimized) {
  auto prog = std::make_shared<codegen::TaskProgram>(
      codegen::compilePipeline(scop));
  if (optimized)
    opt::optimize(*prog);
  return prog;
}

/// Fixture × optimizer on/off × thread count.
class ReplayEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, bool, unsigned>> {};

TEST_P(ReplayEquivalenceTest, ReplayMatchesSequentialAndExecutor) {
  const auto [which, optimized, threads] = GetParam();
  const scop::Scop scop = fixtureScop(which);
  auto prog = compileShared(scop, optimized);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);

  // Reference: the one-shot executor on the threadpool backend.
  {
    testing::InterpretedKernel kernel(scop);
    auto layer = makeThreadPoolBackend(4);
    executeTaskProgram(*prog, *layer, kernel.executor());
    ASSERT_EQ(kernel.fingerprint(), expected);
  }

  CompiledPipeline pipe(prog, CompiledPipeline::Options{threads, true});
  for (int rep = 0; rep < 3; ++rep) {
    testing::InterpretedKernel kernel(scop);
    pipe.replay(kernel.executor());
    EXPECT_EQ(kernel.fingerprint(), expected)
        << "rep " << rep << " threads " << threads << " opt " << optimized;
  }
  EXPECT_EQ(pipe.stats().replays, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ReplayEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Bool(),
                       ::testing::Values(1u, 4u)));

TEST(ReplayTable9Test, ReplayBitIdenticalToExecutorOnAllPrograms) {
  // P1–P10, optimizer on and off: replay() must reproduce exactly what
  // executeTaskProgram produces (which itself must match sequential).
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    const scop::Scop scop = kernels::buildProgram(spec, 10);
    const std::uint64_t expected = testing::sequentialFingerprint(scop);
    for (bool optimized : {false, true}) {
      auto prog = compileShared(scop, optimized);

      testing::InterpretedKernel viaExecutor(scop);
      auto layer = makeThreadPoolBackend(4);
      executeTaskProgram(*prog, *layer, viaExecutor.executor());
      ASSERT_EQ(viaExecutor.fingerprint(), expected)
          << spec.name << " opt " << optimized;

      CompiledPipeline pipe(prog, CompiledPipeline::Options{4, true});
      testing::InterpretedKernel viaReplay(scop);
      pipe.replay(viaReplay.executor());
      EXPECT_EQ(viaReplay.fingerprint(), expected)
          << spec.name << " opt " << optimized;
    }
  }
}

TEST(ReplayDeterminismTest, ThousandReplaysAreBitIdenticalOnEveryEngine) {
  // The ISSUE's determinism gate: >= 1000 replays on the serial engine,
  // the persistent pool and (via replayThrough) the OpenMP backend, with
  // the optimizer both off and on, all reproducing the sequential
  // fingerprint bit for bit.
  const scop::Scop scop = testing::listing3(8);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  constexpr int kReplays = 1000;

  for (bool optimized : {false, true}) {
    auto prog = compileShared(scop, optimized);

    CompiledPipeline serial(prog, CompiledPipeline::Options{1, true});
    CompiledPipeline pooled(prog, CompiledPipeline::Options{4, true});
    auto omp = makeOpenMPBackend();

    for (int rep = 0; rep < kReplays; ++rep) {
      testing::InterpretedKernel kernel(scop);
      serial.replay(kernel.executor());
      ASSERT_EQ(kernel.fingerprint(), expected)
          << "serial rep " << rep << " opt " << optimized;

      kernel.reset();
      pooled.replay(kernel.executor());
      ASSERT_EQ(kernel.fingerprint(), expected)
          << "pooled rep " << rep << " opt " << optimized;

      if (omp) {
        kernel.reset();
        pooled.replayThrough(*omp, kernel.executor());
        ASSERT_EQ(kernel.fingerprint(), expected)
            << "openmp rep " << rep << " opt " << optimized;
      }
    }
    EXPECT_EQ(serial.stats().replays, static_cast<std::uint64_t>(kReplays));
    EXPECT_EQ(pooled.stats().replays, static_cast<std::uint64_t>(kReplays));
    if (omp) {
      EXPECT_EQ(pooled.stats().backendReplays,
                static_cast<std::uint64_t>(kReplays));
    }
  }
}

TEST(ReplayStreamTest, EveryStreamedBatchMatchesTheSingleRunFingerprint) {
  const scop::Scop scop = testing::listing1(10);
  auto prog = compileShared(scop, true);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  constexpr std::size_t kBatches = 16;

  // One kernel instance per batch: batches touch disjoint state, so the
  // cross-batch overlap replayBatches allows is harmless and each batch
  // must independently reproduce the single-run result.
  std::vector<std::unique_ptr<testing::InterpretedKernel>> kernels;
  for (std::size_t b = 0; b < kBatches; ++b)
    kernels.push_back(std::make_unique<testing::InterpretedKernel>(scop));

  CompiledPipeline pipe(prog, CompiledPipeline::Options{4, true});
  pipe.replayBatches(kBatches, [&](std::size_t batch, std::size_t stmtIdx,
                                   const pb::Tuple& it) {
    kernels[batch]->execute(stmtIdx, it);
  });
  for (std::size_t b = 0; b < kBatches; ++b)
    EXPECT_EQ(kernels[b]->fingerprint(), expected) << "batch " << b;
  EXPECT_EQ(pipe.stats().batches, kBatches);
}

TEST(ReplayStreamTest, BatchesOfOneInstanceArriveInOrder) {
  // Per dynamic instance (stmtIdx, iteration), the stream must deliver
  // batches 0, 1, 2, ... in order — the write-after-write constraint of
  // the streaming protocol observed from the outside.
  const scop::Scop scop = testing::listing3(8);
  auto prog = compileShared(scop, false);
  constexpr std::size_t kBatches = 12;

  std::mutex mutex;
  std::map<std::pair<std::size_t, pb::Tuple>, std::size_t> nextBatch;
  bool violation = false;

  CompiledPipeline pipe(prog, CompiledPipeline::Options{4, true});
  pipe.replayBatches(kBatches, [&](std::size_t batch, std::size_t stmtIdx,
                                   const pb::Tuple& it) {
    std::lock_guard lock(mutex);
    std::size_t& next = nextBatch[{stmtIdx, it}];
    if (batch != next)
      violation = true;
    ++next;
  });
  EXPECT_FALSE(violation);
  for (const auto& [instance, count] : nextBatch)
    EXPECT_EQ(count, kBatches);
}

TEST(ReplayStreamTest, StreamOnOneThreadRunsBatchesBackToBack) {
  const scop::Scop scop = testing::listing1(8);
  auto prog = compileShared(scop, true);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);

  std::vector<std::unique_ptr<testing::InterpretedKernel>> kernels;
  for (std::size_t b = 0; b < 4; ++b)
    kernels.push_back(std::make_unique<testing::InterpretedKernel>(scop));
  CompiledPipeline pipe(prog, CompiledPipeline::Options{1, true});
  pipe.replayBatches(4, [&](std::size_t batch, std::size_t stmtIdx,
                            const pb::Tuple& it) {
    kernels[batch]->execute(stmtIdx, it);
  });
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_EQ(kernels[b]->fingerprint(), expected) << "batch " << b;
}

/// A hand-built linear chain: task i depends exactly on task i - 1.
codegen::TaskProgram linearChainProgram(std::size_t n) {
  codegen::TaskProgram prog;
  prog.numStatements = 1;
  for (std::size_t i = 0; i < n; ++i) {
    codegen::Task task;
    task.id = i;
    task.stmtIdx = 0;
    task.blockRep = pb::Tuple{static_cast<pb::Value>(i)};
    task.iterations = {pb::Tuple{static_cast<pb::Value>(i)}};
    task.out = {0, static_cast<std::int64_t>(i)};
    if (i > 0)
      task.in = {{0, static_cast<std::int64_t>(i - 1), true}};
    prog.tasks.push_back(std::move(task));
  }
  return prog;
}

TEST(ReplayLinearTest, LinearChainTakesTheSerialFastPath) {
  constexpr std::size_t kTasks = 24;
  CompiledPipeline pipe(linearChainProgram(kTasks),
                        CompiledPipeline::Options{4, true});
  EXPECT_TRUE(pipe.linear());

  // The fast path runs in creation order on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<pb::Value> order;
  bool offThread = false;
  pipe.replay([&](std::size_t, const pb::Tuple& it) {
    if (std::this_thread::get_id() != caller)
      offThread = true;
    order.push_back(it[0]);
  });
  EXPECT_FALSE(offThread);
  ASSERT_EQ(order.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(order[i], static_cast<pb::Value>(i));
  EXPECT_EQ(pipe.stats().linearReplays, 1u);
}

TEST(ReplayLinearTest, DisabledFastPathStillRunsChainInOrder) {
  constexpr std::size_t kTasks = 24;
  CompiledPipeline pipe(linearChainProgram(kTasks),
                        CompiledPipeline::Options{4, false});
  EXPECT_TRUE(pipe.linear());

  // Through the graph machinery the chain's dependencies still admit
  // exactly one order.
  std::mutex mutex;
  std::vector<pb::Value> order;
  pipe.replay([&](std::size_t, const pb::Tuple& it) {
    std::lock_guard lock(mutex);
    order.push_back(it[0]);
  });
  ASSERT_EQ(order.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(order[i], static_cast<pb::Value>(i));
  EXPECT_EQ(pipe.stats().linearReplays, 0u);
}

TEST(ReplayLinearTest, PipelineProgramsAreNotMisdetectedAsLinear) {
  const scop::Scop scop = testing::listing1(12);
  CompiledPipeline pipe(compileShared(scop, false),
                        CompiledPipeline::Options{4, true});
  // Listing 1 has two statements with cross-statement dependencies — a
  // real DAG, not a single chain.
  EXPECT_FALSE(pipe.linear());
}

TEST(ReplayLifetimeTest, PipelineOutlivesTheCallersProgramHandle) {
  // The lifetime contract (task_launch.hpp): worker threads execute raw
  // Task pointers, so CompiledPipeline takes shared ownership. Dropping
  // the caller's handle — or handing the program over by value — must
  // leave every later replay valid (ASan-visible if violated).
  const scop::Scop scop = testing::listing3(10);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);

  auto prog = compileShared(scop, true);
  CompiledPipeline shared(prog, CompiledPipeline::Options{4, true});
  prog.reset(); // pipeline keeps the only reference now
  testing::InterpretedKernel kernel(scop);
  shared.replay(kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);

  codegen::TaskProgram byValue = codegen::compilePipeline(scop);
  opt::optimize(byValue);
  CompiledPipeline owned(std::move(byValue),
                         CompiledPipeline::Options{4, true});
  kernel.reset();
  owned.replay(kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);

  EXPECT_THROW(
      CompiledPipeline(std::shared_ptr<const codegen::TaskProgram>{}), Error);
}

TEST(ReplaySlotTableTest, PrebuiltSlotTableGivesIdenticalReplays) {
  const scop::Scop scop = testing::listing3(10);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  auto prog = compileShared(scop, true);
  const opt::SlotTable slots = opt::buildSlotTable(*prog);

  CompiledPipeline pipe(prog, slots, CompiledPipeline::Options{4, true});
  testing::InterpretedKernel kernel(scop);
  pipe.replay(kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);

  // A table built from a different program must be rejected.
  auto other = compileShared(testing::listing1(12), false);
  EXPECT_THROW(CompiledPipeline(other, slots), Error);
}

TEST(ReplayEdgeCaseTest, EmptyProgramAndZeroBatchesAreNoOps) {
  CompiledPipeline pipe(codegen::TaskProgram{},
                        CompiledPipeline::Options{4, true});
  int calls = 0;
  pipe.replay([&](std::size_t, const pb::Tuple&) { ++calls; });
  pipe.replayBatches(8, [&](std::size_t, std::size_t, const pb::Tuple&) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);

  CompiledPipeline real(compileShared(testing::listing1(8), true),
                        CompiledPipeline::Options{4, true});
  real.replayBatches(0,
                     [&](std::size_t, std::size_t, const pb::Tuple&) {
                       ++calls;
                     });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(real.stats().batches, 0u);
}

TEST(ReplayEdgeCaseTest, ExceptionsFromTheExecutorPropagateAndClearState) {
  const scop::Scop scop = testing::listing3(10);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  auto prog = compileShared(scop, false);
  CompiledPipeline pipe(prog, CompiledPipeline::Options{4, true});

  EXPECT_THROW(pipe.replay([&](std::size_t, const pb::Tuple&) {
    throw Error("executor failure");
  }),
               Error);

  // The pipeline must stay usable after a failed replay.
  testing::InterpretedKernel kernel(scop);
  pipe.replay(kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);
}

TEST(ReplayThroughTest, BackendPathMatchesOnEveryBackend) {
  const scop::Scop scop = testing::listing3(10);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  for (bool optimized : {false, true}) {
    CompiledPipeline pipe(compileShared(scop, optimized),
                          CompiledPipeline::Options{4, true});
    std::vector<std::unique_ptr<TaskingLayer>> layers;
    layers.push_back(makeSerialBackend());
    layers.push_back(makeThreadPoolBackend(4));
    if (auto omp = makeOpenMPBackend())
      layers.push_back(std::move(omp));
    for (auto& layer : layers) {
      testing::InterpretedKernel kernel(scop);
      pipe.replayThrough(*layer, kernel.executor());
      EXPECT_EQ(kernel.fingerprint(), expected)
          << layer->name() << " opt " << optimized;
    }
  }
}

} // namespace
} // namespace pipoly::tasking
