#include "presburger/set.hpp"

#include "support/assert.hpp"

#include <gtest/gtest.h>

namespace pipoly::pb {
namespace {

const Space kS("S", 2);

IntTupleSet makeSet(std::vector<Tuple> pts) { return IntTupleSet(kS, std::move(pts)); }

TEST(IntTupleSetTest, ConstructionSortsAndDeduplicates) {
  IntTupleSet s = makeSet({{1, 0}, {0, 1}, {1, 0}, {0, 0}});
  EXPECT_EQ(s.size(), 3u);
  std::vector<Tuple> expected{{0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(s.points(), expected);
}

TEST(IntTupleSetTest, ArityMismatchThrows) {
  EXPECT_THROW(IntTupleSet(kS, {Tuple{1}}), Error);
}

TEST(IntTupleSetTest, Rectangle) {
  IntTupleSet s = IntTupleSet::rectangle(kS, {2, 2});
  std::vector<Tuple> expected{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(s.points(), expected);
}

TEST(IntTupleSetTest, Contains) {
  IntTupleSet s = IntTupleSet::rectangle(kS, {3, 3});
  EXPECT_TRUE(s.contains(Tuple{2, 2}));
  EXPECT_FALSE(s.contains(Tuple{3, 0}));
}

TEST(IntTupleSetTest, SetAlgebra) {
  IntTupleSet a = makeSet({{0, 0}, {0, 1}, {1, 0}});
  IntTupleSet b = makeSet({{0, 1}, {1, 1}});
  EXPECT_EQ(a.unite(b).size(), 4u);
  EXPECT_EQ(a.intersect(b), makeSet({{0, 1}}));
  EXPECT_EQ(a.subtract(b), makeSet({{0, 0}, {1, 0}}));
  EXPECT_TRUE(makeSet({{0, 1}}).isSubsetOf(a));
  EXPECT_FALSE(a.isSubsetOf(b));
  EXPECT_TRUE(IntTupleSet(kS).isSubsetOf(b));
}

TEST(IntTupleSetTest, CrossSpaceOperationThrows) {
  IntTupleSet a = makeSet({{0, 0}});
  IntTupleSet b(Space("T", 2), {Tuple{0, 0}});
  EXPECT_THROW((void)a.unite(b), Error);
}

TEST(IntTupleSetTest, LexExtremes) {
  IntTupleSet s = makeSet({{2, 0}, {0, 5}, {2, 1}});
  EXPECT_EQ(s.lexmin(), (Tuple{0, 5}));
  EXPECT_EQ(s.lexmax(), (Tuple{2, 1}));
  EXPECT_THROW((void)IntTupleSet(kS).lexmin(), Error);
}

TEST(IntTupleSetTest, Filter) {
  IntTupleSet s = IntTupleSet::rectangle(kS, {4, 4});
  IntTupleSet even = s.filter([](const Tuple& t) { return t[0] % 2 == 0; });
  EXPECT_EQ(even.size(), 8u);
}

TEST(IntTupleSetTest, ToString) {
  IntTupleSet s = makeSet({{0, 1}});
  EXPECT_EQ(s.toString(), "{ S[0, 1] }");
}

} // namespace
} // namespace pipoly::pb
