// Property tests for the symbolic substrate of the parametric-first
// route: ParamExpr/ParamSet/ParamMap instantiation (presburger/param.hpp,
// pipeline/parametric.hpp) and the product-lattice closed forms
// (pipeline/lattice.hpp). Every check pits a closed form against a brute
// force over materialised points, under randomized coefficients, negative
// offsets, derived parameters and the SBO/arity corner cases.

#include "pipeline/lattice.hpp"
#include "pipeline/parametric.hpp"
#include "presburger/param.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace {

using namespace pipoly;
using pipeline::BoundaryLattice;
using pipeline::DimProgression;

// --- ParamExpr ---------------------------------------------------------

TEST(ParamFuzz, ExprArithmeticMatchesDirectEvaluation) {
  SplitMix64 rng(0x5bd1e995u);
  const std::vector<std::string> names = {"N", "M", "K"};
  for (int iter = 0; iter < 300; ++iter) {
    // Model: coefficient per parameter plus a constant, mutated by the
    // same random +, -, k* walk the ParamExpr takes.
    std::map<std::string, pb::Value> model;
    pb::Value modelConst =
        static_cast<pb::Value>(rng.nextInRange(-20, 20));
    pb::ParamExpr e(modelConst);
    const std::size_t steps = 1 + rng.nextBelow(6);
    for (std::size_t s = 0; s < steps; ++s) {
      const std::uint64_t op = rng.nextBelow(3);
      if (op == 0) {
        const std::string& p = names[rng.nextBelow(names.size())];
        const pb::Value c = static_cast<pb::Value>(rng.nextInRange(-5, 5));
        e = e + pb::ParamExpr::param(p, c);
        model[p] += c;
      } else if (op == 1) {
        const std::string& p = names[rng.nextBelow(names.size())];
        const pb::Value c = static_cast<pb::Value>(rng.nextInRange(-5, 5));
        const pb::Value k = static_cast<pb::Value>(rng.nextInRange(-7, 7));
        e = e - (pb::ParamExpr::param(p, c) + pb::ParamExpr(k));
        model[p] -= c;
        modelConst -= k;
      } else {
        const pb::Value k = static_cast<pb::Value>(rng.nextInRange(-3, 3));
        e = k * e;
        for (auto& [name, c] : model)
          c *= k;
        modelConst *= k;
      }
    }
    pb::ParamBindings bindings;
    for (const std::string& p : names)
      bindings[p] = static_cast<pb::Value>(rng.nextInRange(-15, 15));
    pb::Value expected = modelConst;
    for (const auto& [name, c] : model)
      expected += c * bindings[name];
    EXPECT_EQ(e.evaluate(bindings), expected) << e.toString();
  }
}

TEST(ParamFuzz, ExprCornerCases) {
  EXPECT_TRUE(pb::ParamExpr(7).isConstant());
  EXPECT_TRUE(pb::ParamExpr::param("N", 0).isConstant()); // zero coeff drops
  const pb::ParamExpr n = pb::ParamExpr::param("N");
  EXPECT_FALSE(n.isConstant());
  EXPECT_TRUE((n - n).isConstant()); // cancellation
  EXPECT_EQ((n - n).evaluate({{"N", 42}}), 0);
  EXPECT_EQ((0 * n).evaluate({{"N", 42}}), 0);
}

// --- ParamSet ----------------------------------------------------------

TEST(ParamFuzz, SetPointsMatchBruteForceUnderDerivedParameters) {
  SplitMix64 rng(0xa0761d6478bd642fULL);
  for (int iter = 0; iter < 120; ++iter) {
    const std::size_t dims = 1 + rng.nextBelow(2);
    pb::ParamSet set(pb::Space("S", dims));

    // Bounds are lo_d <= x < hi_d with lo a (possibly negative) constant
    // and hi = N, M + c, or a constant — M is the derived parameter bound
    // to N/2 at instantiation (division never exists symbolically).
    std::vector<pb::Value> lo(dims), hi(dims);
    const pb::Value n = static_cast<pb::Value>(rng.nextInRange(4, 24));
    const pb::ParamBindings bindings = {{"N", n}, {"M", n / 2}};
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = static_cast<pb::Value>(rng.nextInRange(-4, 3));
      const std::uint64_t kind = rng.nextBelow(3);
      pb::ParamExpr hiExpr(0);
      if (kind == 0) {
        hiExpr = pb::ParamExpr::param("N");
      } else if (kind == 1) {
        hiExpr = pb::ParamExpr::param("M") +
                 pb::ParamExpr(static_cast<pb::Value>(rng.nextInRange(0, 3)));
      } else {
        hiExpr = pb::ParamExpr(lo[d] +
                               static_cast<pb::Value>(rng.nextInRange(0, 6)));
      }
      hi[d] = hiExpr.evaluate(bindings);
      set.bound(d, pb::ParamExpr(lo[d]), hiExpr);
    }

    const pb::IntTupleSet got = set.points(bindings);

    std::vector<pb::Tuple> expected;
    if (dims == 1) {
      for (pb::Value x = lo[0]; x < hi[0]; ++x)
        expected.push_back({x});
    } else {
      for (pb::Value x = lo[0]; x < hi[0]; ++x)
        for (pb::Value y = lo[1]; y < hi[1]; ++y)
          expected.push_back({x, y});
    }
    EXPECT_TRUE(got == pb::IntTupleSet(pb::Space("S", dims), expected))
        << "iter " << iter << ": " << set.toString();
  }
}

// --- ParamMap via the closed-form pipeline map --------------------------

TEST(ParamFuzz, ParametricPipelineMapMatchesBruteForcePairEnumeration) {
  SplitMix64 rng(0xc2b2ae3d27d4eb4fULL);
  for (int iter = 0; iter < 150; ++iter) {
    // Depth up to 3: the instantiated map concatenates pairs to width 6,
    // past Tuple's inline capacity of 4, so the SBO spill path runs too.
    const std::size_t depth = 1 + rng.nextBelow(3);
    const pb::Value n = static_cast<pb::Value>(rng.nextInRange(3, 12));
    const pb::ParamBindings bindings = {{"N", n}};

    pipeline::ParamRectStatement src{"S", {}};
    pipeline::ParamRectStatement tgt{"T", {}};
    pipeline::SeparableRead read;
    std::vector<pb::Value> srcLo(depth), srcHi(depth), tgtLo(depth),
        tgtHi(depth), off(depth);
    for (std::size_t d = 0; d < depth; ++d) {
      srcLo[d] = static_cast<pb::Value>(rng.nextInRange(-2, 2));
      tgtLo[d] = static_cast<pb::Value>(rng.nextInRange(-2, 2));
      // Upper bounds mix constants and N so instantiation exercises the
      // parameter-affine path.
      const bool srcParamHi = rng.nextBelow(2) == 0;
      const bool tgtParamHi = rng.nextBelow(2) == 0;
      const pb::ParamExpr srcHiE =
          srcParamHi ? pb::ParamExpr::param("N") +
                           pb::ParamExpr(static_cast<pb::Value>(
                               rng.nextInRange(-1, 2)))
                     : pb::ParamExpr(srcLo[d] + static_cast<pb::Value>(
                                                    rng.nextInRange(1, 9)));
      const pb::ParamExpr tgtHiE =
          tgtParamHi ? pb::ParamExpr::param("N")
                     : pb::ParamExpr(tgtLo[d] + static_cast<pb::Value>(
                                                    rng.nextInRange(1, 9)));
      srcHi[d] = srcHiE.evaluate(bindings);
      tgtHi[d] = tgtHiE.evaluate(bindings);
      src.bounds.push_back({pb::ParamExpr(srcLo[d]), srcHiE});
      tgt.bounds.push_back({pb::ParamExpr(tgtLo[d]), tgtHiE});

      read.coeffs.push_back(static_cast<pb::Value>(rng.nextInRange(1, 3)));
      // Offsets: constant or parameter-affine (cN*N + c), may be negative.
      if (rng.nextBelow(3) == 0) {
        const pb::Value cn = static_cast<pb::Value>(rng.nextInRange(-1, 1));
        const pb::Value c = static_cast<pb::Value>(rng.nextInRange(-2, 2));
        off[d] = cn * n + c;
        read.offsets.push_back(pb::ParamExpr::param("N", cn) +
                               pb::ParamExpr(c));
      } else {
        off[d] = static_cast<pb::Value>(rng.nextInRange(-4, 4));
        read.offsets.push_back(pb::ParamExpr(off[d]));
      }
    }

    const pb::ParamMap pm = pipeline::parametricPipelineMap(src, tgt, read);
    const pb::IntMap got = pm.instantiate(bindings);

    // Brute force: every target point j whose read c⊙j+o lands inside the
    // source rectangle contributes the pair (c⊙j+o, j).
    std::vector<pb::IntMap::Pair> expected;
    std::vector<pb::Value> j(depth);
    const auto emit = [&](const auto& self, std::size_t d) -> void {
      if (d == depth) {
        std::vector<pb::Value> i(depth);
        for (std::size_t k = 0; k < depth; ++k) {
          i[k] = read.coeffs[k] * j[k] + off[k];
          if (i[k] < srcLo[k] || i[k] >= srcHi[k])
            return;
        }
        expected.push_back({pb::Tuple(i), pb::Tuple(j)});
        return;
      }
      for (j[d] = tgtLo[d]; j[d] < tgtHi[d]; ++j[d])
        self(self, d + 1);
    };
    emit(emit, 0);

    const pb::IntMap want(got.domainSpace(), got.rangeSpace(),
                          std::move(expected));
    EXPECT_TRUE(got == want)
        << "iter " << iter << " depth " << depth << " N=" << n << "\n got "
        << got.toString() << "\nwant " << want.toString();
  }
}

// --- DimProgression -----------------------------------------------------

std::vector<pb::Value> materialize(const DimProgression& p) {
  std::vector<pb::Value> v;
  for (pb::Value k = 0; k < p.count; ++k)
    v.push_back(p.first + p.stride * k);
  return v;
}

TEST(ParamFuzz, ProgressionQueriesMatchMaterializedPoints) {
  SplitMix64 rng(0x165667b19e3779f9ULL);
  for (int iter = 0; iter < 400; ++iter) {
    DimProgression p;
    p.first = static_cast<pb::Value>(rng.nextInRange(-12, 12));
    p.stride = static_cast<pb::Value>(rng.nextInRange(1, 5));
    p.count = static_cast<pb::Value>(rng.nextInRange(0, 14));
    const std::vector<pb::Value> pts = materialize(p);

    EXPECT_EQ(p.empty(), pts.empty());
    if (!pts.empty()) {
      EXPECT_EQ(p.last(), pts.back());
    }

    for (pb::Value v = p.first - 8; v <= p.first + p.stride * p.count + 8;
         ++v) {
      EXPECT_EQ(p.contains(v),
                std::find(pts.begin(), pts.end(), v) != pts.end())
          << "contains(" << v << ")";
      const auto ceilIt = std::lower_bound(pts.begin(), pts.end(), v);
      const auto got = p.ceil(v);
      if (ceilIt == pts.end()) {
        EXPECT_FALSE(got.has_value()) << "ceil(" << v << ")";
      } else {
        ASSERT_TRUE(got.has_value()) << "ceil(" << v << ")";
        EXPECT_EQ(*got, *ceilIt) << "ceil(" << v << ")";
      }
      const auto strictIt = std::upper_bound(pts.begin(), pts.end(), v);
      const auto gotStrict = p.ceilStrict(v);
      if (strictIt == pts.end()) {
        EXPECT_FALSE(gotStrict.has_value()) << "ceilStrict(" << v << ")";
      } else {
        ASSERT_TRUE(gotStrict.has_value()) << "ceilStrict(" << v << ")";
        EXPECT_EQ(*gotStrict, *strictIt) << "ceilStrict(" << v << ")";
      }
    }
  }
}

TEST(ParamFuzz, ProgressionIntersectionMatchesSetIntersection) {
  SplitMix64 rng(0x27d4eb2f165667c5ULL);
  for (int iter = 0; iter < 400; ++iter) {
    DimProgression a, b;
    a.first = static_cast<pb::Value>(rng.nextInRange(-10, 10));
    a.stride = static_cast<pb::Value>(rng.nextInRange(1, 6));
    a.count = static_cast<pb::Value>(rng.nextInRange(0, 16));
    b.first = static_cast<pb::Value>(rng.nextInRange(-10, 10));
    b.stride = static_cast<pb::Value>(rng.nextInRange(1, 6));
    b.count = static_cast<pb::Value>(rng.nextInRange(0, 16));

    const std::vector<pb::Value> pa = materialize(a), pbv = materialize(b);
    std::vector<pb::Value> want;
    std::set_intersection(pa.begin(), pa.end(), pbv.begin(), pbv.end(),
                          std::back_inserter(want));
    EXPECT_EQ(materialize(pipeline::intersect(a, b)), want)
        << "a={" << a.first << "," << a.stride << "," << a.count << "} b={"
        << b.first << "," << b.stride << "," << b.count << "}";
  }
}

// --- BoundaryLattice ----------------------------------------------------

BoundaryLattice randomLattice(SplitMix64& rng, std::size_t dims) {
  BoundaryLattice lat;
  for (std::size_t d = 0; d < dims; ++d) {
    DimProgression p;
    p.first = static_cast<pb::Value>(rng.nextInRange(-6, 6));
    p.stride = static_cast<pb::Value>(rng.nextInRange(1, 4));
    p.count = static_cast<pb::Value>(rng.nextInRange(1, 7));
    lat.dims.push_back(p);
  }
  return lat;
}

std::vector<pb::Tuple> materialize(const BoundaryLattice& lat) {
  std::vector<pb::Tuple> out;
  std::vector<pb::Value> x(lat.arity());
  const auto rec = [&](const auto& self, std::size_t d) -> void {
    if (d == lat.arity()) {
      out.push_back(pb::Tuple(x));
      return;
    }
    for (pb::Value k = 0; k < lat.dims[d].count; ++k) {
      x[d] = lat.dims[d].first + lat.dims[d].stride * k;
      self(self, d + 1);
    }
  };
  rec(rec, 0);
  std::sort(out.begin(), out.end());
  return out;
}

pb::Tuple randomProbe(SplitMix64& rng, std::size_t dims) {
  std::vector<pb::Value> x(dims);
  for (std::size_t d = 0; d < dims; ++d)
    x[d] = static_cast<pb::Value>(rng.nextInRange(-10, 20));
  return pb::Tuple(x);
}

TEST(ParamFuzz, LatticeQueriesMatchMaterializedPoints) {
  SplitMix64 rng(0x85ebca6b2f3a9defULL);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t dims = 1 + rng.nextBelow(3);
    const BoundaryLattice lat = randomLattice(rng, dims);
    const std::vector<pb::Tuple> pts = materialize(lat);

    ASSERT_FALSE(pts.empty());
    EXPECT_EQ(lat.size(), static_cast<pb::Value>(pts.size()));
    EXPECT_EQ(lat.lexmin(), pts.front());
    EXPECT_EQ(lat.lexmax(), pts.back());
    EXPECT_TRUE(lat.points(pb::Space("L", dims)) ==
                pb::IntTupleSet(pb::Space("L", dims), pts));

    for (int probe = 0; probe < 40; ++probe) {
      // Half the probes are lattice points or their neighbours, so the
      // exact-hit and just-past-boundary branches of lexCeil both run.
      pb::Tuple x = probe % 2 == 0 ? randomProbe(rng, dims)
                                   : pts[rng.nextBelow(pts.size())];
      if (probe % 4 == 1 && x.size() > 0)
        x[dims - 1] += 1;
      EXPECT_EQ(lat.contains(x),
                std::binary_search(pts.begin(), pts.end(), x))
          << x.toString();
      const auto it = std::lower_bound(pts.begin(), pts.end(), x);
      const auto got = lat.lexCeil(x);
      if (it == pts.end()) {
        EXPECT_FALSE(got.has_value()) << x.toString();
      } else {
        ASSERT_TRUE(got.has_value()) << x.toString();
        EXPECT_EQ(*got, *it) << x.toString();
      }
    }
  }
}

TEST(ParamFuzz, LatticeUnionsMatchBruteForceOverMaterializedPoints) {
  SplitMix64 rng(0x94d049bb133111ebULL);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t dims = 1 + rng.nextBelow(3);
    const std::size_t k = 2 + rng.nextBelow(2);
    std::vector<BoundaryLattice> lats;
    std::vector<pb::Tuple> all;
    for (std::size_t i = 0; i < k; ++i) {
      lats.push_back(randomLattice(rng, dims));
      const std::vector<pb::Tuple> pts = materialize(lats.back());
      all.insert(all.end(), pts.begin(), pts.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());

    EXPECT_EQ(pipeline::unionSize(lats), static_cast<pb::Value>(all.size()))
        << "iter " << iter;

    for (int probe = 0; probe < 40; ++probe) {
      pb::Tuple x = probe % 2 == 0 ? randomProbe(rng, dims)
                                   : all[rng.nextBelow(all.size())];
      EXPECT_EQ(pipeline::unionContains(lats, x),
                std::binary_search(all.begin(), all.end(), x))
          << x.toString();
      const auto it = std::lower_bound(all.begin(), all.end(), x);
      const auto got = pipeline::unionLexCeil(lats, x);
      if (it == all.end()) {
        EXPECT_FALSE(got.has_value()) << x.toString();
      } else {
        ASSERT_TRUE(got.has_value()) << x.toString();
        EXPECT_EQ(*got, *it) << x.toString();
      }
    }

    // Pairwise intersections against set intersection (feeds the
    // inclusion-exclusion terms directly).
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t l = i + 1; l < k; ++l) {
        const std::vector<pb::Tuple> pi = materialize(lats[i]);
        const std::vector<pb::Tuple> pl = materialize(lats[l]);
        std::vector<pb::Tuple> want;
        std::set_intersection(pi.begin(), pi.end(), pl.begin(), pl.end(),
                              std::back_inserter(want));
        EXPECT_EQ(materialize(pipeline::intersect(lats[i], lats[l])), want)
            << "iter " << iter;
      }
  }
}

TEST(ParamFuzz, LatticeArityZeroHoldsExactlyTheEmptyTuple) {
  const BoundaryLattice lat; // zero dims
  EXPECT_FALSE(lat.empty());
  EXPECT_EQ(lat.size(), 1);
  EXPECT_TRUE(lat.contains(pb::Tuple()));
  EXPECT_EQ(lat.lexmin(), pb::Tuple());
  EXPECT_EQ(lat.lexmax(), pb::Tuple());
  const auto ceil = lat.lexCeil(pb::Tuple());
  ASSERT_TRUE(ceil.has_value());
  EXPECT_EQ(*ceil, pb::Tuple());
  EXPECT_EQ(pipeline::unionSize({lat, lat}), 1);
  EXPECT_TRUE(pipeline::unionContains({lat}, pb::Tuple()));
}

TEST(ParamFuzz, LatticeWidthFivePastTupleInlineCapacity) {
  // Tuples spill to the heap past arity 4; the lattice closed forms must
  // not care.
  SplitMix64 rng(0xd6e8feb86659fd93ULL);
  for (int iter = 0; iter < 40; ++iter) {
    BoundaryLattice lat;
    for (std::size_t d = 0; d < 5; ++d) {
      DimProgression p;
      p.first = static_cast<pb::Value>(rng.nextInRange(-3, 3));
      p.stride = static_cast<pb::Value>(rng.nextInRange(1, 3));
      p.count = static_cast<pb::Value>(rng.nextInRange(1, 3));
      lat.dims.push_back(p);
    }
    const std::vector<pb::Tuple> pts = materialize(lat);
    EXPECT_EQ(lat.size(), static_cast<pb::Value>(pts.size()));
    EXPECT_EQ(lat.lexmin(), pts.front());
    EXPECT_EQ(lat.lexmax(), pts.back());
    for (int probe = 0; probe < 20; ++probe) {
      const pb::Tuple x = probe % 2 == 0 ? randomProbe(rng, 5)
                                         : pts[rng.nextBelow(pts.size())];
      const auto it = std::lower_bound(pts.begin(), pts.end(), x);
      const auto got = lat.lexCeil(x);
      if (it == pts.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, *it);
      }
    }
  }
}

} // namespace
