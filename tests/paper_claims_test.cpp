// Direct checks of claims the paper states in prose.

#include "codegen/task_program.hpp"
#include "kernels/suite.hpp"
#include "sim/simulator.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pipoly {
namespace {

/// Maximum number of tasks simultaneously in flight in a simulated
/// schedule.
std::size_t maxConcurrency(const sim::SimResult& r) {
  std::vector<std::pair<double, int>> deltas;
  for (const sim::ScheduleEvent& ev : r.events) {
    deltas.emplace_back(ev.start, +1);
    deltas.emplace_back(ev.finish, -1);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              // Process finishes before starts at equal times.
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  std::size_t best = 0;
  long current = 0;
  for (const auto& [t, d] : deltas) {
    current += d;
    best = std::max(best, static_cast<std::size_t>(std::max(0L, current)));
  }
  return best;
}

TEST(PaperClaimsTest, AtMostNTasksRunInParallel) {
  // §6: "for a program with n loop nests, there can be at most n tasks
  // running in parallel" (under the per-nest block chain).
  for (const char* name : {"P1", "P3", "P5", "P7"}) {
    scop::Scop scop =
        kernels::buildProgram(kernels::programByName(name), 14);
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    sim::CostModel model;
    model.iterationCost.assign(scop.numStatements(), 1e-5);
    sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{16});
    EXPECT_LE(maxConcurrency(r), scop.numStatements()) << name;
  }
}

TEST(PaperClaimsTest, Equation5HoldsAcrossTheSuite) {
  // §4.4: time(L_max) <= time(pipeline) <= time(sequential).
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    scop::Scop scop = kernels::buildProgram(spec, 12);
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    sim::CostModel model;
    for (int num : spec.nums)
      model.iterationCost.push_back(1e-6 * num);
    sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{8});
    EXPECT_GE(r.makespan, sim::maxNestTime(scop, model) - 1e-12)
        << spec.name;
    EXPECT_LE(r.makespan, sim::sequentialTime(scop, model) + 1e-12)
        << spec.name;
  }
}

TEST(PaperClaimsTest, CrossLoopPipeliningAlwaysGainsOnTheSuite) {
  // §6: "cross-loop pipelining always gains speed-up; however the amount
  // of it depends on the loops' access patterns".
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    scop::Scop scop = kernels::buildProgram(spec, 14);
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    sim::CostModel model;
    for (int num : spec.nums)
      model.iterationCost.push_back(2e-6 * num);
    model.taskOverhead = 1e-8;
    sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{8});
    const double speedup =
        r.speedupOver(sim::sequentialTime(scop, model));
    EXPECT_GT(speedup, 1.05) << spec.name;
  }
}

TEST(PaperClaimsTest, StatementIterationsRunInSequentialOrder) {
  // §1: "the iterations of each statement run in their sequential
  // order". Under the chain ordering, per statement, block start times
  // are ordered exactly like the blocks.
  scop::Scop scop = testing::listing3(14);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  sim::CostModel model;
  model.iterationCost.assign(scop.numStatements(), 1e-5);
  sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{8});

  std::vector<double> start(prog.tasks.size());
  for (const sim::ScheduleEvent& ev : r.events)
    start[ev.taskId] = ev.start;
  for (std::size_t s = 0; s < scop.numStatements(); ++s) {
    double prev = -1.0;
    for (const codegen::Task& t : prog.tasks) {
      if (t.stmtIdx != s)
        continue;
      EXPECT_GE(start[t.id], prev - 1e-12);
      prev = start[t.id];
    }
  }
}

TEST(PaperClaimsTest, TwoNestProgramsSaturateAtTwo) {
  // Fig. 2's structure: with the chain, a two-nest program can at best
  // halve the time (P1's 1.7-1.9x in Fig. 10).
  scop::Scop scop = kernels::buildProgram(kernels::programByName("P1"), 16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  sim::CostModel model;
  model.iterationCost.assign(2, 1e-5);
  sim::SimResult r = sim::simulate(prog, model, sim::SimConfig{8});
  const double speedup = r.speedupOver(sim::sequentialTime(scop, model));
  EXPECT_GT(speedup, 1.5);
  EXPECT_LE(speedup, 2.0 + 1e-9);
}

} // namespace
} // namespace pipoly
