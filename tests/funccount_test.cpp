// Tests the literal Fig.-8 funcCount protocol of the OpenMP backend:
// tasks sharing a function pointer run in creation order *without* any
// explicit self dependencies from the caller.

#include "tasking/tasking.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

namespace pipoly::tasking {
namespace {

struct Recorder {
  std::mutex mutex;
  std::vector<int> order;
};

struct Payload {
  Recorder* rec;
  int value;
};

void recordA(void* raw) {
  auto* p = static_cast<Payload*>(raw);
  std::lock_guard lock(p->rec->mutex);
  p->rec->order.push_back(p->value);
}

void recordB(void* raw) {
  auto* p = static_cast<Payload*>(raw);
  std::lock_guard lock(p->rec->mutex);
  p->rec->order.push_back(1000 + p->value);
}

TEST(FuncCountProtocolTest, SameFunctionTasksRunInOrder) {
  if (!openMPAvailable())
    GTEST_SKIP();
  auto layer = makeOpenMPBackend(/*funcCountOrdering=*/true);
  Recorder rec;
  layer->run([&] {
    // 30 independent tasks (no explicit deps) through the same function:
    // funcCount must serialize them in creation order.
    for (int k = 0; k < 30; ++k) {
      Payload p{&rec, k};
      layer->createTask(&recordA, &p, sizeof(p), /*outDepend=*/k,
                        /*outIdx=*/0, nullptr, nullptr, 0);
    }
  });
  ASSERT_EQ(rec.order.size(), 30u);
  for (int k = 0; k < 30; ++k)
    EXPECT_EQ(rec.order[static_cast<std::size_t>(k)], k);
}

TEST(FuncCountProtocolTest, DifferentFunctionsAreNotChained) {
  if (!openMPAvailable())
    GTEST_SKIP();
  auto layer = makeOpenMPBackend(/*funcCountOrdering=*/true);
  Recorder rec;
  layer->run([&] {
    for (int k = 0; k < 10; ++k) {
      Payload pa{&rec, k};
      layer->createTask(&recordA, &pa, sizeof(pa), k, 0, nullptr, nullptr,
                        0);
      Payload pb{&rec, k};
      layer->createTask(&recordB, &pb, sizeof(pb), k, 1, nullptr, nullptr,
                        0);
    }
  });
  ASSERT_EQ(rec.order.size(), 20u);
  // Within each function the order is preserved (subsequence check).
  std::vector<int> a, b;
  for (int v : rec.order)
    (v < 1000 ? a : b).push_back(v % 1000);
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_EQ(a[k], static_cast<int>(k));
  for (std::size_t k = 0; k < b.size(); ++k)
    EXPECT_EQ(b[k], static_cast<int>(k));
}

TEST(FuncCountProtocolTest, DefaultBackendDoesNotChain) {
  if (!openMPAvailable())
    GTEST_SKIP();
  // Sanity check of the mechanism under test: the default backend runs
  // same-function tasks with no implicit ordering, so explicit deps (the
  // paper's generated ones) remain necessary there. We only verify all
  // tasks execute.
  auto layer = makeOpenMPBackend(/*funcCountOrdering=*/false);
  Recorder rec;
  layer->run([&] {
    for (int k = 0; k < 20; ++k) {
      Payload p{&rec, k};
      layer->createTask(&recordA, &p, sizeof(p), k, 0, nullptr, nullptr, 0);
    }
  });
  EXPECT_EQ(rec.order.size(), 20u);
}

} // namespace
} // namespace pipoly::tasking
