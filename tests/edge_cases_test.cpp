// Edge-case hardening across the stack: minimal domains, multi-write
// statements, single-iteration nests, degenerate coarsening, the
// original-schedule builder, and the calibration API.

#include "codegen/task_program.hpp"
#include "pipeline/detect.hpp"
#include "schedule/build.hpp"
#include "scop/builder.hpp"
#include "sim/calibrate.hpp"
#include "support/assert.hpp"
#include "tasking/tasking.hpp"
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace pipoly {
namespace {

TEST(EdgeCaseTest, MinimalTwoByTwoPipeline) {
  scop::ScopBuilder b("tiny");
  std::size_t A = b.array("A", {2, 2});
  std::size_t B = b.array("B", {2, 2});
  auto S = b.statement("S", 2);
  S.bound(0, 0, 2).bound(1, 0, 2);
  S.write(A, {S.dim(0), S.dim(1)});
  auto T = b.statement("T", 2);
  T.bound(0, 0, 2).bound(1, 0, 2);
  T.write(B, {T.dim(0), T.dim(1)});
  T.read(A, {T.dim(0), T.dim(1)});
  scop::Scop scop = b.build();
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  EXPECT_NO_THROW(prog.validate(scop));
  auto layer = tasking::makeThreadPoolBackend(2);
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok);
}

TEST(EdgeCaseTest, SingleIterationNests) {
  scop::ScopBuilder b("singleton");
  std::size_t A = b.array("A", {1});
  std::size_t B = b.array("B", {1});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 1).write(A, {S.dim(0)});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 1).write(B, {T.dim(0)}).read(A, {T.dim(0)});
  scop::Scop scop = b.build();
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  EXPECT_EQ(prog.tasks.size(), 2u);
  auto layer = tasking::makeSerialBackend();
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok);
}

TEST(EdgeCaseTest, MultiWriteStatement) {
  // S writes two arrays; T reads both: P is the union over both arrays.
  scop::ScopBuilder b("multiwrite");
  std::size_t A = b.array("A", {6});
  std::size_t B = b.array("B", {6});
  std::size_t C = b.array("C", {6});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 6);
  S.write(A, {S.dim(0)});
  S.write(B, {S.dim(0)});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 3);
  T.write(C, {T.dim(0)});
  T.read(A, {2 * T.dim(0)});
  T.read(B, {T.dim(0) + 1});
  scop::Scop scop = b.build();
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  ASSERT_EQ(info.maps.size(), 1u);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  auto layer = tasking::makeThreadPoolBackend(2);
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok);
}

TEST(EdgeCaseTest, CoarseningLargerThanBlockCount) {
  scop::Scop scop = [&] {
    scop::ScopBuilder b("small");
    std::size_t A = b.array("A", {4});
    std::size_t B = b.array("B", {4});
    auto S = b.statement("S", 1);
    S.bound(0, 0, 4).write(A, {S.dim(0)});
    auto T = b.statement("T", 1);
    T.bound(0, 0, 4).write(B, {T.dim(0)}).read(A, {T.dim(0)});
    return b.build();
  }();
  pipeline::DetectOptions opt;
  opt.coarsening = 1000;
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop, opt);
  for (const auto& st : info.statements)
    EXPECT_EQ(st.blockReps.size(), 1u);
}

TEST(EdgeCaseTest, OriginalScheduleFlattensToProgramOrder) {
  scop::Scop scop = [&] {
    scop::ScopBuilder b("orig");
    std::size_t A = b.array("A", {3, 3});
    std::size_t B = b.array("B", {3, 3});
    auto S = b.statement("S", 2);
    S.bound(0, 0, 3).bound(1, 0, 3).write(A, {S.dim(0), S.dim(1)});
    auto T = b.statement("T", 2);
    T.bound(0, 0, 3).bound(1, 0, 3);
    T.write(B, {T.dim(0), T.dim(1)});
    T.read(A, {T.dim(0), T.dim(1)});
    return b.build();
  }();
  auto tree = sched::buildOriginalSchedule(scop);
  ASSERT_EQ(tree->kind(), sched::NodeKind::Sequence);
  ASSERT_EQ(tree->numChildren(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const sched::ScheduleNode& d = tree->child(s);
    EXPECT_EQ(d.kind(), sched::NodeKind::Domain);
    EXPECT_EQ(d.domainSet(), scop.statement(s).domain());
    EXPECT_EQ(d.child(0).kind(), sched::NodeKind::Band);
    EXPECT_EQ(d.child(0).child(0).kind(), sched::NodeKind::Leaf);
  }
}

TEST(EdgeCaseTest, CalibrationProducesPlausibleCosts) {
  scop::Scop scop = [&] {
    scop::ScopBuilder b("calib");
    std::size_t A = b.array("A", {8, 8});
    std::size_t B = b.array("B", {8, 8});
    auto S = b.statement("S", 2);
    S.bound(0, 0, 8).bound(1, 0, 8).write(A, {S.dim(0), S.dim(1)});
    auto T = b.statement("T", 2);
    T.bound(0, 0, 8).bound(1, 0, 8);
    T.write(B, {T.dim(0), T.dim(1)});
    T.read(A, {T.dim(0), T.dim(1)});
    return b.build();
  }();
  // Statement 1 spins ~10x longer than statement 0.
  auto spin = [](int iters) {
    volatile int sink = 0;
    for (int k = 0; k < iters; ++k)
      sink = sink + k;
  };
  sim::CostModel model = sim::calibrate(
      scop,
      [&](std::size_t stmt, const pb::Tuple&) {
        spin(stmt == 0 ? 200 : 2000);
      },
      {32, 3});
  ASSERT_EQ(model.iterationCost.size(), 2u);
  EXPECT_GT(model.iterationCost[0], 0.0);
  EXPECT_GT(model.iterationCost[1], 2.0 * model.iterationCost[0]);
}

TEST(EdgeCaseTest, SlabWriteThroughOracleAndPipeline) {
  // A statement that writes a whole row per iteration (aux-dim write).
  // Writes are non-injective across iterations? No: each iteration owns
  // one row, so the union write relation stays injective, and the target
  // reads single elements from those rows.
  scop::ScopBuilder b("slab");
  std::size_t A = b.array("A", {6, 4});
  std::size_t B = b.array("B", {6});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 6);
  S.writeRange(A, {S.rangeDim(0, 1), S.rangeAux(0, 1)}, {4});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 6);
  T.write(B, {T.dim(0)});
  T.read(A, {T.dim(0), T.constant(2)});
  T.read(B, {T.dim(0)});
  scop::Scop scop = b.build();
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  EXPECT_NO_THROW(prog.validate(scop));
  auto layer = tasking::makeThreadPoolBackend(2);
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok);
}

TEST(EdgeCaseTest, EmptyDomainStatementGetsZeroBlocks) {
  // A zero-extent nest has no iterations: detection must give it zero
  // blocks and no dependencies instead of tripping the "blocking an
  // empty domain" check.
  scop::ScopBuilder b("hole");
  std::size_t A = b.array("A", {8});
  std::size_t E = b.array("E", {8});
  std::size_t C = b.array("C", {8});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 8).write(A, {S.dim(0)});
  auto M = b.statement("M", 1);
  M.bound(0, 0, 0).write(E, {M.dim(0)}).read(A, {M.dim(0)});
  auto U = b.statement("U", 1);
  U.bound(0, 0, 8).write(C, {U.dim(0)}).read(A, {U.dim(0)});
  scop::Scop scop = b.build();

  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_TRUE(info.hasPipeline()); // S -> U still pipelines
  EXPECT_EQ(info.statements[1].blockReps.size(), 0u);
  EXPECT_TRUE(info.statements[1].blocking.empty());
  EXPECT_TRUE(info.statements[1].inRequirements.empty());
  for (const pipeline::PipelineMapEntry& entry : info.maps) {
    EXPECT_NE(entry.srcIdx, 1u);
    EXPECT_NE(entry.tgtIdx, 1u);
  }

  // The relaxed-ordering variant must survive empty domains too.
  pipeline::DetectOptions relaxed;
  relaxed.relaxSameNestOrdering = true;
  pipeline::PipelineInfo relaxedInfo = pipeline::detectPipeline(scop, relaxed);
  EXPECT_TRUE(relaxedInfo.statements[1].selfEdges.empty());
}

TEST(EdgeCaseTest, AllEmptyDomainsYieldNoPipeline) {
  scop::ScopBuilder b("void");
  std::size_t A = b.array("A", {4});
  std::size_t B = b.array("B", {4});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 0).write(A, {S.dim(0)});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 0).write(B, {T.dim(0)}).read(A, {T.dim(0)});
  scop::Scop scop = b.build();
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_FALSE(info.hasPipeline());
  EXPECT_EQ(info.totalBlocks(), 0u);
}

TEST(EdgeCaseTest, ZeroReadProducerChain) {
  // The first nest reads nothing at all; still pipelines into the second.
  scop::ScopBuilder b("noreads");
  std::size_t A = b.array("A", {6});
  std::size_t B = b.array("B", {6});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 6).write(A, {S.dim(0)});
  auto T = b.statement("T", 1);
  T.bound(0, 0, 6).write(B, {T.dim(0)}).read(A, {T.dim(0)});
  scop::Scop scop = b.build();
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_TRUE(info.hasPipeline());
  // S is fully parallel; with relaxed ordering its blocks are unchained.
  pipeline::DetectOptions opt;
  opt.relaxSameNestOrdering = true;
  pipeline::PipelineInfo relaxed = pipeline::detectPipeline(scop, opt);
  EXPECT_TRUE(relaxed.statements[0].selfEdges.empty());
}

} // namespace
} // namespace pipoly
