#include "baselines/polly_tasks.hpp"

#include "baselines/polly_like.hpp"
#include "kernels/matmul.hpp"
#include "sim/simulator.hpp"
#include "tasking/tasking.hpp"
#include "testing/fixtures.hpp"
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

namespace pipoly::baselines {
namespace {

TEST(PollyTasksTest, SerialNestsBecomeOneTaskEach) {
  scop::Scop scop = testing::listing1(12);
  codegen::TaskProgram prog = pollyTaskProgram(scop, 8);
  EXPECT_EQ(prog.tasks.size(), 2u); // both nests are serial
  EXPECT_NO_THROW(prog.validate(scop));
}

TEST(PollyTasksTest, ParallelNestsChunk) {
  scop::Scop scop = kernels::matmulChain(kernels::MatmulVariant::NMM, 2, 16);
  codegen::TaskProgram prog = pollyTaskProgram(scop, 4);
  EXPECT_EQ(prog.tasks.size(), 8u); // 2 nests x 4 chunks
  EXPECT_NO_THROW(prog.validate(scop));
}

TEST(PollyTasksTest, BarrierBetweenNests) {
  scop::Scop scop = kernels::matmulChain(kernels::MatmulVariant::NMM, 2, 16);
  codegen::TaskProgram prog = pollyTaskProgram(scop, 4);
  for (const codegen::Task& t : prog.tasks) {
    if (t.stmtIdx == 0)
      EXPECT_TRUE(t.in.empty());
    else
      EXPECT_EQ(t.in.size(), 4u) << "each chunk waits for all 4 producers";
  }
}

TEST(PollyTasksTest, ExecutionMatchesSequential) {
  for (auto scop :
       {testing::listing1(12),
        kernels::matmulChain(kernels::MatmulVariant::NMM, 2, 10),
        kernels::matmulChain(kernels::MatmulVariant::GNMM, 2, 10)}) {
    codegen::TaskProgram prog = pollyTaskProgram(scop, 4);
    auto layer = tasking::makeThreadPoolBackend(4);
    EXPECT_TRUE(verify::selfCheck(scop, prog, *layer, 2).ok)
        << scop.name();
  }
}

TEST(PollyTasksTest, SimulatedTimeMatchesAnalyticModel) {
  scop::Scop scop = kernels::matmulChain(kernels::MatmulVariant::NMM, 3, 16);
  sim::CostModel model;
  model.iterationCost.assign(scop.numStatements(), 1e-4);

  codegen::TaskProgram prog = pollyTaskProgram(scop, 4);
  double simulated =
      sim::simulate(prog, model, sim::SimConfig{4}).makespan;
  double analytic =
      pollyLikeSchedule(scop, model, PollyConfig{4}).totalTime;
  EXPECT_NEAR(simulated, analytic, 0.05 * analytic);
}

TEST(PollyTasksTest, MoreThreadsMoreChunksUpToRows) {
  scop::Scop scop = kernels::matmulChain(kernels::MatmulVariant::NMM, 1, 8);
  EXPECT_EQ(pollyTaskProgram(scop, 2).tasks.size(), 2u);
  EXPECT_EQ(pollyTaskProgram(scop, 8).tasks.size(), 8u);
  // Caps at the trip count of the parallel dimension (8 rows).
  EXPECT_EQ(pollyTaskProgram(scop, 64).tasks.size(), 8u);
}

} // namespace
} // namespace pipoly::baselines
