// Randomized soundness tests for the polyhedral layer: Fourier–Motzkin
// projection must over-approximate the integer shadow exactly enough for
// the enumeration to be exact, and enumeration must agree with brute
// force over the bounding box.

#include "presburger/polyhedron.hpp"

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pipoly::pb {
namespace {

/// A random bounded polyhedron in `dims` dimensions: a box plus a few
/// random half-spaces and occasionally an equality.
Polyhedron randomPolyhedron(SplitMix64& rng, std::size_t dims) {
  Polyhedron p(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    AffineExpr x = AffineExpr::dim(dims, d);
    Value lo = rng.nextInRange(-3, 0);
    Value hi = rng.nextInRange(1, 5);
    p.add(Constraint::ge(x - lo));
    p.add(Constraint::le(x, AffineExpr::constant(dims, hi)));
  }
  const std::size_t extra = rng.nextBelow(3);
  for (std::size_t k = 0; k < extra; ++k) {
    AffineExpr e(dims, rng.nextInRange(-4, 4));
    for (std::size_t d = 0; d < dims; ++d)
      e.coeff(d) = rng.nextInRange(-2, 2);
    if (rng.nextBelow(4) == 0)
      p.add(Constraint::eq(e));
    else
      p.add(Constraint::ge(e));
  }
  return p;
}

/// Brute-force enumeration over the per-dimension [-3, 5] box.
std::vector<Tuple> bruteForce(const Polyhedron& p) {
  std::vector<Tuple> out;
  std::vector<Value> current(p.numDims(), -3);
  while (true) {
    Tuple t(current);
    if (p.contains(t))
      out.push_back(t);
    std::size_t k = p.numDims();
    while (k > 0) {
      --k;
      if (++current[k] <= 5)
        break;
      current[k] = -3;
      if (k == 0)
        return out;
    }
    if (p.numDims() == 0)
      return out;
  }
}

class PolyhedronPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PolyhedronPropertyTest, EnumerationMatchesBruteForce2D) {
  SplitMix64 rng(GetParam());
  Polyhedron p = randomPolyhedron(rng, 2);
  std::vector<Tuple> expected = bruteForce(p);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(p.enumerate(), expected);
}

TEST_P(PolyhedronPropertyTest, EnumerationMatchesBruteForce3D) {
  SplitMix64 rng(GetParam() ^ 0xdead);
  Polyhedron p = randomPolyhedron(rng, 3);
  std::vector<Tuple> expected = bruteForce(p);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(p.enumerate(), expected);
}

TEST_P(PolyhedronPropertyTest, ProjectionContainsShadow) {
  SplitMix64 rng(GetParam() ^ 0xbeef);
  Polyhedron p = randomPolyhedron(rng, 3);
  Polyhedron proj = p.projectOutLastDim();
  for (const Tuple& t : p.enumerate())
    EXPECT_TRUE(proj.contains(t.slice(0, 2)))
        << "projection lost shadow point of " << t;
}

TEST_P(PolyhedronPropertyTest, BoundingBoxContainsAllPoints) {
  SplitMix64 rng(GetParam() ^ 0xfeed);
  Polyhedron p = randomPolyhedron(rng, 2);
  if (p.isEmpty())
    return;
  auto box = p.boundingBox();
  for (const Tuple& t : p.enumerate())
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_GE(t[d], box[d].lower);
      EXPECT_LE(t[d], box[d].upper);
    }
}

TEST_P(PolyhedronPropertyTest, EmptinessAgreesWithEnumeration) {
  SplitMix64 rng(GetParam() ^ 0xaaaa);
  Polyhedron p = randomPolyhedron(rng, 2);
  EXPECT_EQ(p.isEmpty(), p.enumerate().empty());
}

INSTANTIATE_TEST_SUITE_P(Random, PolyhedronPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace pipoly::pb
