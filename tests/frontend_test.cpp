#include "frontend/frontend.hpp"

#include "codegen/task_program.hpp"
#include "pipeline/pipeline_map.hpp"
#include "presburger/parser.hpp"
#include "scop/dependences.hpp"
#include "support/assert.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"
#include "tasking/tasking.hpp"

#include <gtest/gtest.h>

namespace pipoly::frontend {
namespace {

constexpr const char* kListing1 = R"(
  // The paper's Listing 1.
  param N = 20;
  array A[N][N];
  array B[N][N];
  for (i = 0; i < N - 1; i++)
    for (j = 0; j < N - 1; j++)
      S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
  for (i = 0; i < N/2 - 1; i++)
    for (j = 0; j < N/2 - 1; j++)
      R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
)";

TEST(FrontendTest, ParsesListing1) {
  scop::Scop scop = parseProgram(kListing1);
  ASSERT_EQ(scop.numStatements(), 2u);
  EXPECT_EQ(scop.statement(0).name(), "S");
  EXPECT_EQ(scop.statement(1).name(), "R");
  EXPECT_EQ(scop.statement(0).domain().size(), 19u * 19u);
  EXPECT_EQ(scop.statement(1).domain().size(), 9u * 9u);
  EXPECT_EQ(scop.arrays().size(), 2u);
}

TEST(FrontendTest, MatchesHandBuiltFixture) {
  // The frontend must produce the same accesses/domains as the hand-built
  // Listing 1 fixture: identical pipeline maps.
  scop::Scop parsed = parseProgram(kListing1);
  scop::Scop handBuilt = testing::listing1(20);
  EXPECT_EQ(pipeline::pipelineMap(parsed, 0, 1),
            pipeline::pipelineMap(handBuilt, 0, 1));
}

TEST(FrontendTest, PaperPipelineMapFromSource) {
  scop::Scop scop = parseProgram(kListing1);
  pb::IntMap expected = pb::parseMap(
      "{ S[i0, i1] -> R[o0, o1] : 0 <= i0 <= 8 and 0 <= i1 <= 16 and "
      "i1 = 2 o1 and o0 = i0 }");
  EXPECT_EQ(pipeline::pipelineMap(scop, 0, 1), expected);
}

TEST(FrontendTest, ParameterOverride) {
  scop::Scop scop = parseProgram(kListing1, {{"N", 12}});
  EXPECT_EQ(scop.statement(0).domain().size(), 11u * 11u);
}

TEST(FrontendTest, FunctionNames) {
  auto names = parseFunctionNames(kListing1);
  EXPECT_EQ(names, (std::vector<std::string>{"f", "g"}));
}

TEST(FrontendTest, InclusiveBound) {
  scop::Scop scop = parseProgram(R"(
    array A[10];
    for (i = 0; i <= 4; i++)
      S: A[i] = f(A[i+1]);
  )");
  EXPECT_EQ(scop.statement(0).domain().size(), 5u);
}

TEST(FrontendTest, TriangularBounds) {
  scop::Scop scop = parseProgram(R"(
    array A[8][8];
    for (i = 0; i < 8; i++)
      for (j = 0; j <= i; j++)
        S: A[i][j] = f();
  )");
  EXPECT_EQ(scop.statement(0).domain().size(), 36u);
}

TEST(FrontendTest, DepthThreeNest) {
  scop::Scop scop = parseProgram(R"(
    param N = 4;
    array A[N][N][N];
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        for (k = 0; k < N; k++)
          S: A[i][j][k] = f();
  )");
  EXPECT_EQ(scop.statement(0).depth(), 3u);
  EXPECT_EQ(scop.statement(0).domain().size(), 64u);
}

TEST(FrontendTest, EndToEndThroughTheWholeStack) {
  scop::Scop scop = parseProgram(kListing1, {{"N", 14}});
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  EXPECT_NO_THROW(prog.validate(scop));
  const std::uint64_t expected = pipoly::testing::sequentialFingerprint(scop);
  pipoly::testing::InterpretedKernel kernel(scop);
  auto layer = tasking::makeThreadPoolBackend(4);
  tasking::executeTaskProgram(prog, *layer, kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);
}

// --- diagnostics ---

TEST(FrontendDiagnosticsTest, UnknownArray) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4];
    for (i = 0; i < 4; i++)
      S: Z[i] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, UnknownIdentifier) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4];
    for (i = 0; i < M; i++)
      S: A[i] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, NonAffineSubscript) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4][4];
    for (i = 0; i < 4; i++)
      for (j = 0; j < 4; j++)
        S: A[i*j][0] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, DivisionByIterator) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4];
    for (i = 1; i < 4; i++)
      S: A[4/i] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, IteratorReuse) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4][4];
    for (i = 0; i < 4; i++)
      for (i = 0; i < 4; i++)
        S: A[i][i] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, DuplicateStatementName) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4]; array B[4];
    for (i = 0; i < 4; i++)
      S: A[i] = f();
    for (i = 0; i < 4; i++)
      S: B[i] = f(A[i]);
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, ConditionOnWrongVariable) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4][4];
    for (i = 0; i < 4; i++)
      for (j = 0; i < 4; j++)
        S: A[i][j] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, StatementOutsideLoop) {
  EXPECT_THROW((void)parseProgram(R"(
    array A[4];
    S: A[0] = f();
  )"),
               Error);
}

TEST(FrontendDiagnosticsTest, ErrorMessagesCarryLineNumbers) {
  try {
    (void)parseProgram("array A[4];\nfor (i = 0; i < 4; i++)\n  S: Z[i] = "
                       "f();\n");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FrontendDiagnosticsTest, EmptyProgram) {
  EXPECT_THROW((void)parseProgram("array A[4];"), Error);
}

} // namespace
} // namespace pipoly::frontend
