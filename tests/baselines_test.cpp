#include "baselines/polly_like.hpp"

#include "kernels/matmul.hpp"
#include "kernels/suite.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::baselines {
namespace {

sim::CostModel uniformModel(std::size_t n, double c) {
  sim::CostModel m;
  m.iterationCost.assign(n, c);
  return m;
}

TEST(PollyBaselineTest, ParallelizesIndependentNest) {
  scop::ScopBuilder b("par");
  std::size_t A = b.array("A", {8, 8});
  std::size_t B = b.array("B", {8, 8});
  auto S = b.statement("S", 2);
  S.bound(0, 0, 8).bound(1, 0, 8);
  S.write(B, {S.dim(0), S.dim(1)});
  S.read(A, {S.dim(0), S.dim(1)});
  scop::Scop scop = b.build();

  PollyResult r = pollyLikeSchedule(scop, uniformModel(1, 1.0),
                                    PollyConfig{4});
  ASSERT_EQ(r.nests.size(), 1u);
  EXPECT_TRUE(r.nests[0].parallelized);
  EXPECT_EQ(r.nests[0].parallelDim, 0u);
  EXPECT_DOUBLE_EQ(r.totalTime, 64.0 / 4.0);
}

TEST(PollyBaselineTest, SerialNestGetsNoSpeedup) {
  // Listing 1's S reads A[i+1][j+1]: both dims carry dependences.
  scop::Scop scop = testing::listing1(12);
  PollyResult r = pollyLikeSchedule(scop, uniformModel(2, 1.0),
                                    PollyConfig{8});
  EXPECT_EQ(r.numParallelNests, 0u);
  double work = static_cast<double>(scop.statement(0).domain().size() +
                                    scop.statement(1).domain().size());
  EXPECT_DOUBLE_EQ(r.totalTime, work);
}

TEST(PollyBaselineTest, Table9ProgramsAreAllSerial) {
  // The paper designed the first benchmark set so Polly finds nothing.
  for (const kernels::ProgramSpec& spec : kernels::table9Programs()) {
    scop::Scop scop = kernels::buildProgram(spec, 16);
    PollyResult r = pollyLikeSchedule(
        scop, uniformModel(scop.numStatements(), 1.0), PollyConfig{8});
    EXPECT_EQ(r.numParallelNests, 0u) << spec.name;
  }
}

TEST(PollyBaselineTest, NmmNestsAreParallelGnmmAreNot) {
  scop::Scop nmm = kernels::matmulChain(kernels::MatmulVariant::NMM, 2, 16);
  PollyResult rNmm = pollyLikeSchedule(
      nmm, uniformModel(nmm.numStatements(), 1.0), PollyConfig{8});
  EXPECT_EQ(rNmm.numParallelNests, nmm.numStatements());

  scop::Scop gnmm = kernels::matmulChain(kernels::MatmulVariant::GNMM, 2, 16);
  PollyResult rGnmm = pollyLikeSchedule(
      gnmm, uniformModel(gnmm.numStatements(), 1.0), PollyConfig{8});
  EXPECT_EQ(rGnmm.numParallelNests, 0u);
}

TEST(PollyBaselineTest, ThreadScalingCapsAtTripCount) {
  scop::ScopBuilder b("small");
  std::size_t A = b.array("A", {2, 64});
  std::size_t B = b.array("B", {2, 64});
  auto S = b.statement("S", 2);
  S.bound(0, 0, 2).bound(1, 0, 64);
  S.write(B, {S.dim(0), S.dim(1)});
  S.read(A, {S.dim(0), S.dim(1)});
  scop::Scop scop = b.build();
  PollyResult r = pollyLikeSchedule(scop, uniformModel(1, 1.0),
                                    PollyConfig{8});
  // Outer dim trip = 2; 8 threads cannot help beyond 2-way.
  EXPECT_DOUBLE_EQ(r.totalTime, 128.0 / 2.0);
}

TEST(PollyBaselineTest, ParallelOverheadCharged) {
  scop::ScopBuilder b("par");
  std::size_t A = b.array("A", {8});
  std::size_t B = b.array("B", {8});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 8).write(B, {S.dim(0)}).read(A, {S.dim(0)});
  scop::Scop scop = b.build();
  PollyConfig cfg{4};
  cfg.parallelOverheadPerNest = 10.0;
  PollyResult r = pollyLikeSchedule(scop, uniformModel(1, 1.0), cfg);
  EXPECT_DOUBLE_EQ(r.totalTime, 8.0 / 4.0 + 10.0);
}

} // namespace
} // namespace pipoly::baselines
