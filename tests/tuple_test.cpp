#include "presburger/tuple.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pipoly::pb {
namespace {

TEST(TupleTest, BasicAccessors) {
  Tuple t{3, -1, 7};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 3);
  EXPECT_EQ(t[1], -1);
  EXPECT_EQ(t[2], 7);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Tuple{}.empty());
}

TEST(TupleTest, ZerosFactory) {
  Tuple z = Tuple::zeros(4);
  EXPECT_EQ(z.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(z[i], 0);
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT((Tuple{0, 9}), (Tuple{1, 0}));
  EXPECT_LT((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_EQ((Tuple{1, 2}), (Tuple{1, 2}));
  EXPECT_GT((Tuple{2, 0}), (Tuple{1, 99}));
  // Shorter prefix compares less when it is a prefix.
  EXPECT_LT((Tuple{1}), (Tuple{1, 0}));
}

TEST(TupleTest, SortingIsLexicographic) {
  std::vector<Tuple> v{{1, 1}, {0, 2}, {1, 0}, {0, 0}};
  std::sort(v.begin(), v.end());
  std::vector<Tuple> expected{{0, 0}, {0, 2}, {1, 0}, {1, 1}};
  EXPECT_EQ(v, expected);
}

TEST(TupleTest, Concat) {
  EXPECT_EQ(concat(Tuple{1, 2}, Tuple{3}), (Tuple{1, 2, 3}));
  EXPECT_EQ(concat(Tuple{}, Tuple{5}), (Tuple{5}));
}

TEST(TupleTest, Slice) {
  Tuple t{4, 5, 6, 7};
  EXPECT_EQ(t.slice(1, 3), (Tuple{5, 6}));
  EXPECT_EQ(t.slice(0, 0), Tuple{});
  EXPECT_EQ(t.slice(0, 4), t);
}

TEST(TupleTest, ToString) {
  EXPECT_EQ((Tuple{1, -2}).toString(), "[1, -2]");
  EXPECT_EQ(Tuple{}.toString(), "[]");
}

TEST(TupleTest, MutableAccess) {
  Tuple t{0, 0};
  t[1] = 42;
  EXPECT_EQ(t, (Tuple{0, 42}));
}

} // namespace
} // namespace pipoly::pb
