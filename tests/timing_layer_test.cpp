#include "tasking/timing_layer.hpp"

#include "codegen/task_program.hpp"
#include "tasking/executor.hpp"
#include "tasking/tracing_layer.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

namespace pipoly::tasking {
namespace {

TEST(TimingLayerTest, RecordsEveryTask) {
  scop::Scop scop = testing::listing1(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  testing::InterpretedKernel kernel(scop);
  TimingLayer layer(makeThreadPoolBackend(2));
  executeTaskProgram(prog, layer, kernel.executor());
  EXPECT_EQ(layer.timings().size(), prog.tasks.size());
  for (const TimedTask& t : layer.timings()) {
    EXPECT_GE(t.start, 0.0);
    EXPECT_GE(t.finish, t.start);
    EXPECT_LE(t.finish, layer.lastRunSeconds() + 1e-3);
  }
}

TEST(TimingLayerTest, PreservesExecutionSemantics) {
  scop::Scop scop = testing::listing3(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  const std::uint64_t expected = testing::sequentialFingerprint(scop);
  testing::InterpretedKernel kernel(scop);
  TimingLayer layer(makeThreadPoolBackend(4));
  executeTaskProgram(prog, layer, kernel.executor());
  EXPECT_EQ(kernel.fingerprint(), expected);
}

TEST(TimingLayerTest, BusyTimeBoundedByWallTimesWorkers) {
  scop::Scop scop = testing::listing1(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  testing::InterpretedKernel kernel(scop);
  TimingLayer layer(makeThreadPoolBackend(2));
  executeTaskProgram(prog, layer, kernel.executor());
  EXPECT_LE(layer.totalBusySeconds(),
            2.0 * layer.lastRunSeconds() + 1e-3);
}

TEST(TimingLayerTest, MeasurableSpinTasks) {
  // Tasks with a known spin duration: busy time must be at least the sum
  // of the spins.
  TimingLayer layer(makeThreadPoolBackend(2));
  auto spin = +[](void*) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until)
      ;
  };
  int dummy = 0;
  layer.run([&] {
    for (int k = 0; k < 5; ++k)
      layer.createTask(spin, &dummy, sizeof(dummy), k, 0, nullptr, nullptr,
                       0);
  });
  EXPECT_EQ(layer.timings().size(), 5u);
  EXPECT_GE(layer.totalBusySeconds(), 5 * 0.002 - 1e-3);
}

TEST(TimingLayerTest, NoLostOrDuplicateRecordsUnderConcurrency) {
  // With the work-stealing backend, task records are appended from
  // every worker concurrently; none may be lost or double-counted, and
  // indices must come out dense (run() sorts by creation index).
  TimingLayer layer(makeThreadPoolBackend(8));
  auto noop = +[](void*) {};
  int dummy = 0;
  constexpr std::size_t kTasks = 500;
  for (int repeat = 0; repeat < 3; ++repeat) {
    layer.run([&] {
      for (std::size_t k = 0; k < kTasks; ++k)
        layer.createTask(noop, &dummy, sizeof(dummy),
                         static_cast<std::int64_t>(k), 0, nullptr, nullptr, 0);
    });
    ASSERT_EQ(layer.timings().size(), kTasks);
    for (std::size_t k = 0; k < kTasks; ++k)
      EXPECT_EQ(layer.timings()[k].index, k) << "lost or duplicated record";
  }
}

TEST(TimingLayerTest, DependentChainRecordsDoNotOverlap) {
  // A strict dependency chain must produce strictly ordered intervals
  // even when recorded from different worker threads.
  TimingLayer layer(makeThreadPoolBackend(4));
  auto noop = +[](void*) {};
  int dummy = 0;
  constexpr int kDepth = 64;
  layer.run([&] {
    for (int k = 0; k < kDepth; ++k) {
      std::int64_t dep = k - 1;
      int idx = 0;
      layer.createTask(noop, &dummy, sizeof(dummy), k, 0,
                       k > 0 ? &dep : nullptr, k > 0 ? &idx : nullptr,
                       k > 0 ? 1u : 0u);
    }
  });
  ASSERT_EQ(layer.timings().size(), static_cast<std::size_t>(kDepth));
  for (int k = 1; k < kDepth; ++k)
    EXPECT_LE(layer.timings()[static_cast<std::size_t>(k) - 1].finish,
              layer.timings()[static_cast<std::size_t>(k)].start + 1e-9)
        << "chained tasks " << k - 1 << " and " << k << " overlapped";
}

TEST(TimingLayerTest, AgreesWithTracingLayerOnSerializedRun) {
  // Compose timing(tracing(serial)): both layers observe the same
  // serialized execution, so the trace's per-task "task" spans must agree
  // with the timing records — same count, same creation indices, and
  // every span must enclose its timed interval (the span brackets the
  // timed body plus the record bookkeeping).
  trace::Session session;
  session.start();

  TimingLayer layer(
      std::make_unique<TracingLayer>(makeSerialBackend()));
  auto spin = +[](void*) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until)
      ;
  };
  int dummy = 0;
  constexpr std::size_t kTasks = 5;
  layer.run([&] {
    for (std::size_t k = 0; k < kTasks; ++k)
      layer.createTask(spin, &dummy, sizeof(dummy),
                       static_cast<std::int64_t>(k), 0, nullptr, nullptr, 0);
  });
  session.stop();

  // Collect span durations keyed by the task index carried in the arg.
  std::map<std::int64_t, double> spanStart, spanSeconds;
  for (const trace::TraceEvent& ev : session.trace().events) {
    if (ev.name != std::string("task"))
      continue;
    if (ev.kind == trace::EventKind::Begin) {
      EXPECT_EQ(spanStart.count(ev.arg), 0u) << "duplicate span " << ev.arg;
      spanStart[ev.arg] = static_cast<double>(ev.tsNanos) * 1e-9;
    } else if (ev.kind == trace::EventKind::End) {
      ASSERT_EQ(spanStart.count(ev.arg), 1u) << "unmatched End " << ev.arg;
      spanSeconds[ev.arg] =
          static_cast<double>(ev.tsNanos) * 1e-9 - spanStart[ev.arg];
    }
  }

  ASSERT_EQ(layer.timings().size(), kTasks);
  ASSERT_EQ(spanSeconds.size(), kTasks);
  for (std::size_t k = 0; k < kTasks; ++k) {
    const TimedTask& timed = layer.timings()[k];
    EXPECT_EQ(timed.index, k);
    ASSERT_EQ(spanSeconds.count(static_cast<std::int64_t>(k)), 1u);
    const double span = spanSeconds[static_cast<std::int64_t>(k)];
    const double inner = timed.finish - timed.start;
    EXPECT_GE(inner, 0.002 - 1e-4) << "task " << k << " spun too briefly";
    // The span encloses the timed interval; a generous upper slack keeps
    // the check robust under sanitizers.
    EXPECT_GE(span, inner - 1e-4) << "task " << k;
    EXPECT_LE(span, inner + 0.05) << "task " << k;
  }
}

TEST(TimingLayerTest, ResetsBetweenRuns) {
  TimingLayer layer(makeSerialBackend());
  auto noop = +[](void*) {};
  int dummy = 0;
  layer.run([&] {
    layer.createTask(noop, &dummy, sizeof(dummy), 0, 0, nullptr, nullptr, 0);
  });
  EXPECT_EQ(layer.timings().size(), 1u);
  layer.run([&] {
    for (int k = 0; k < 3; ++k)
      layer.createTask(noop, &dummy, sizeof(dummy), k, 0, nullptr, nullptr,
                       0);
  });
  EXPECT_EQ(layer.timings().size(), 3u);
}

} // namespace
} // namespace pipoly::tasking
