// Tests for the tracing & metrics layer (src/trace): session mechanics,
// the Chrome Trace Event exporter (golden file + schema validation of a
// real traced compile+execute run) and the metrics JSON round-trip.

#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

#include "codegen/task_program.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "tasking/executor.hpp"
#include "tasking/tracing_layer.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pipoly::trace {
namespace {

TEST(TraceTest, DisabledEmitsAreNoOps) {
  EXPECT_FALSE(enabled());
  beginSpan("orphan");
  endSpan("orphan");
  instant("nothing");
  counter("nope", 1.0);
  { Span span("scoped"); }
  // No session to drain — nothing to observe beyond "did not crash".
  EXPECT_FALSE(enabled());
}

TEST(TraceTest, RecordsSpansInstantsAndCounters) {
  Session session;
  session.start();
  EXPECT_TRUE(enabled());
  {
    Span span("outer", 7);
    instant("marker", 3);
    counter("gauge", 2.5);
  }
  session.stop();
  EXPECT_FALSE(enabled());

  const Trace& trace = session.trace();
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.events[0].kind, EventKind::Begin);
  EXPECT_EQ(trace.events[0].name, "outer");
  EXPECT_EQ(trace.events[0].arg, 7);
  EXPECT_EQ(trace.events[1].kind, EventKind::Instant);
  EXPECT_EQ(trace.events[1].arg, 3);
  EXPECT_EQ(trace.events[2].kind, EventKind::Counter);
  EXPECT_EQ(trace.events[2].value, 2.5);
  EXPECT_EQ(trace.events[3].kind, EventKind::End);
  EXPECT_EQ(trace.threads.size(), 1u);
}

TEST(TraceTest, SecondConcurrentSessionThrows) {
  Session first;
  first.start();
  Session second;
  EXPECT_THROW(second.start(), Error);
  first.stop();
}

TEST(TraceTest, SessionCannotRestart) {
  Session session;
  session.start();
  session.stop();
  EXPECT_THROW(session.start(), Error);
  session.stop(); // idempotent
}

TEST(TraceTest, OpenSpansAreClosedAtStop) {
  Session session;
  session.start();
  beginSpan("left.open", 1);
  beginSpan("nested.open");
  session.stop();

  const Trace& trace = session.trace();
  ASSERT_EQ(trace.events.size(), 4u);
  // Synthesized Ends close in LIFO order at the stop timestamp.
  EXPECT_EQ(trace.events[2].kind, EventKind::End);
  EXPECT_EQ(trace.events[2].name, "nested.open");
  EXPECT_EQ(trace.events[3].kind, EventKind::End);
  EXPECT_EQ(trace.events[3].name, "left.open");
  EXPECT_GE(trace.events[3].tsNanos, trace.events[1].tsNanos);
}

TEST(TraceTest, StrayEndsAreDropped) {
  Session session;
  session.start();
  endSpan("never.started");
  instant("kept");
  session.stop();
  ASSERT_EQ(session.trace().events.size(), 1u);
  EXPECT_EQ(session.trace().events[0].name, "kept");
}

TEST(TraceTest, TimestampsAreMonotonePerThread) {
  Session session;
  session.start();
  for (int i = 0; i < 100; ++i) {
    Span span("tick", i);
  }
  session.stop();
  std::int64_t last = -1;
  for (const TraceEvent& ev : session.trace().events) {
    EXPECT_GE(ev.tsNanos, last);
    last = ev.tsNanos;
  }
}

TEST(TraceTest, EveryEmittingThreadGetsItsOwnTrack) {
  Session session;
  session.start();
  setThreadName("primary");
  instant("from.main");
  std::thread helper([] {
    setThreadName("helper");
    Span span("from.helper");
  });
  helper.join();
  session.stop();

  const Trace& trace = session.trace();
  ASSERT_EQ(trace.threads.size(), 2u);
  std::set<std::string> names;
  for (const ThreadInfo& t : trace.threads)
    names.insert(t.name);
  EXPECT_TRUE(names.count("primary"));
  EXPECT_TRUE(names.count("helper"));
  std::set<std::uint64_t> tids;
  for (const TraceEvent& ev : trace.events)
    tids.insert(ev.tid);
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceTest, ThreadNameIsStickyAcrossSessions) {
  setThreadName("sticky");
  Session session;
  session.start();
  instant("ping");
  session.stop();
  ASSERT_EQ(session.trace().threads.size(), 1u);
  EXPECT_EQ(session.trace().threads[0].name, "sticky");
}

TEST(TraceTest, EmitsFromUnnamedThreadGetDefaultName) {
  Session session;
  session.start();
  std::thread anon([] { instant("anon.ping"); });
  anon.join();
  session.stop();
  ASSERT_EQ(session.trace().threads.size(), 1u);
  EXPECT_EQ(session.trace().threads[0].name, "thread-0");
}

// ---------------------------------------------------------------------
// Chrome Trace Event exporter.

TEST(ChromeTraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(ChromeTraceTest, GoldenExportOfHandBuiltTrace) {
  Trace trace;
  trace.threads.push_back(ThreadInfo{"main", 1});
  trace.threads.push_back(ThreadInfo{"predicted worker 0", 2});
  trace.events.push_back(
      TraceEvent{EventKind::Begin, "phase", kNoArg, 1000, 0, 0.0});
  trace.events.push_back(
      TraceEvent{EventKind::Instant, "mark", 4, 1500, 0, 0.0});
  trace.events.push_back(
      TraceEvent{EventKind::Counter, "gauge", kNoArg, 2000, 0, 1.5});
  trace.events.push_back(
      TraceEvent{EventKind::End, "phase", kNoArg, 2500, 0, 0.0});
  trace.events.push_back(
      TraceEvent{EventKind::Begin, "S[0,0]", 3, 0, 1, 0.0});
  trace.events.push_back(
      TraceEvent{EventKind::End, "S[0,0]", 3, 12345678, 1, 0.0});

  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"pipoly\"}},\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 0, "
      "\"args\": {\"name\": \"predicted (simulator)\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"main\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 1, "
      "\"args\": {\"name\": \"predicted worker 0\"}},\n"
      "  {\"name\": \"phase\", \"ph\": \"B\", \"ts\": 1.000, \"pid\": 1, "
      "\"tid\": 0},\n"
      "  {\"name\": \"mark\", \"ph\": \"i\", \"ts\": 1.500, \"pid\": 1, "
      "\"tid\": 0, \"s\": \"t\", \"args\": {\"arg\": 4}},\n"
      "  {\"name\": \"gauge\", \"ph\": \"C\", \"ts\": 2.000, \"pid\": 1, "
      "\"tid\": 0, \"args\": {\"value\": 1.5}},\n"
      "  {\"name\": \"phase\", \"ph\": \"E\", \"ts\": 2.500, \"pid\": 1, "
      "\"tid\": 0},\n"
      "  {\"name\": \"S[0,0]\", \"ph\": \"B\", \"ts\": 0.000, \"pid\": 2, "
      "\"tid\": 1, \"args\": {\"arg\": 3}},\n"
      "  {\"name\": \"S[0,0]\", \"ph\": \"E\", \"ts\": 12345.678, \"pid\": 2, "
      "\"tid\": 1, \"args\": {\"arg\": 3}}\n"
      "]}\n";
  EXPECT_EQ(toChromeJson(trace), expected);
}

// Minimal field extractors for the line-wise schema checks (the exporter
// guarantees one JSON object per line with a fixed key layout).
std::string fieldString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos)
    return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  return line.substr(start, end - start);
}

double fieldNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos)
    return -1.0;
  return std::stod(line.substr(at + needle.size()));
}

/// Compile + traced 2-worker execution of Listing 1, with the predicted
/// timeline appended — the exact artifact pipolyc --trace produces.
std::string tracedListing1Json(Trace* traceOut = nullptr) {
  scop::Scop scop = testing::listing1(12);
  Session session;
  setThreadName("main");
  session.start();
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  {
    testing::InterpretedKernel kernel(scop);
    tasking::TracingLayer layer(tasking::makeThreadPoolBackend(2));
    tasking::executeTaskProgram(prog, layer, kernel.executor());
  }
  session.stop();

  sim::CostModel model;
  model.iterationCost.assign(scop.numStatements(), 50e-6);
  model.taskOverhead = 1e-6;
  const sim::SimResult predicted =
      sim::simulate(prog, model, sim::SimConfig{2});
  sim::appendPredictedTimeline(session.trace(), predicted, prog, scop);
  if (traceOut)
    *traceOut = session.trace();
  return toChromeJson(session.trace());
}

TEST(ChromeTraceTest, RealTraceSatisfiesSchema) {
  const std::string json = tracedListing1Json();

  std::istringstream lines(json);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "{\"traceEvents\": [");

  std::map<double, std::vector<std::string>> spanStacks; // per tid
  std::map<double, double> lastTs;                       // per tid
  std::set<std::string> spanNames;
  std::set<std::string> threadNames;
  while (std::getline(lines, line)) {
    if (line == "]}")
      break;
    ASSERT_EQ(line.find("  {"), 0u) << line;
    const std::string ph = fieldString(line, "ph");
    const std::string name = fieldString(line, "name");
    ASSERT_FALSE(ph.empty()) << line;
    ASSERT_FALSE(name.empty()) << line;
    if (ph == "M") {
      if (name == "thread_name") {
        const std::string needle = "\"args\": {\"name\": \"";
        const std::size_t at = line.find(needle);
        ASSERT_NE(at, std::string::npos) << line;
        const std::size_t start = at + needle.size();
        threadNames.insert(line.substr(start, line.find('"', start) - start));
      }
      continue;
    }
    const double tid = fieldNumber(line, "tid");
    const double ts = fieldNumber(line, "ts");
    ASSERT_GE(tid, 0.0) << line;
    ASSERT_GE(ts, 0.0) << line;

    // Per-track timestamps must never go backwards.
    auto [it, fresh] = lastTs.try_emplace(tid, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "timestamps regressed on tid " << tid;
      it->second = ts;
    }

    if (ph == "B") {
      spanStacks[tid].push_back(name);
      spanNames.insert(name);
    } else if (ph == "E") {
      ASSERT_FALSE(spanStacks[tid].empty())
          << "unbalanced E for " << name << " on tid " << tid;
      EXPECT_EQ(spanStacks[tid].back(), name) << "mismatched B/E nesting";
      spanStacks[tid].pop_back();
    } else {
      EXPECT_TRUE(ph == "i" || ph == "C") << "unexpected ph " << ph;
    }
  }
  for (const auto& [tid, stack] : spanStacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;

  // All compile phases must be present...
  for (const char* phase :
       {"compile", "detect.pipeline", "detect.pairs", "detect.integrate",
        "detect.requirements", "compile.schedule", "compile.ast",
        "codegen.lower", "codegen.validate"})
    EXPECT_TRUE(spanNames.count(phase)) << "missing compile phase " << phase;
  // ...as are per-task spans and the per-worker + predicted tracks.
  EXPECT_TRUE(spanNames.count("task"));
  EXPECT_TRUE(threadNames.count("main"));
  EXPECT_TRUE(threadNames.count("pool worker 0"));
  EXPECT_TRUE(threadNames.count("predicted worker 0"));
}

TEST(ChromeTraceTest, PredictedTimelineIsItsOwnProcess) {
  Trace trace;
  tracedListing1Json(&trace);
  bool sawPredicted = false;
  for (std::size_t tid = 0; tid < trace.threads.size(); ++tid) {
    if (trace.threads[tid].name.rfind("predicted worker", 0) == 0) {
      sawPredicted = true;
      EXPECT_EQ(trace.threads[tid].pid, 2);
    } else {
      EXPECT_EQ(trace.threads[tid].pid, 1);
    }
  }
  EXPECT_TRUE(sawPredicted);
}

// ---------------------------------------------------------------------
// Metrics.

TEST(TraceMetricsTest, SummarizesHandBuiltTrace) {
  Trace trace;
  trace.threads.push_back(ThreadInfo{"t0", 1});
  auto push = [&](EventKind kind, const char* name, std::int64_t ts,
                  double value = 0.0) {
    trace.events.push_back(TraceEvent{kind, name, kNoArg, ts, 0, value});
  };
  push(EventKind::Begin, "work", 0);
  push(EventKind::Begin, "work", 100);
  push(EventKind::End, "work", 300);   // inner: 200ns
  push(EventKind::End, "work", 1000);  // outer: 1000ns
  push(EventKind::Instant, "blip", 1100);
  push(EventKind::Counter, "gauge", 1200, 5.0);
  push(EventKind::Counter, "gauge", 1300, 2.0);

  const MetricsSummary summary = summarizeTrace(trace);
  ASSERT_EQ(summary.spans.size(), 1u);
  EXPECT_EQ(summary.spans[0].name, "work");
  EXPECT_EQ(summary.spans[0].count, 2u);
  EXPECT_EQ(summary.spans[0].totalNanos, 1200);
  EXPECT_EQ(summary.spans[0].minNanos, 200);
  EXPECT_EQ(summary.spans[0].maxNanos, 1000);
  ASSERT_EQ(summary.counters.size(), 1u);
  EXPECT_EQ(summary.counters[0].count, 2u);
  EXPECT_EQ(summary.counters[0].last, 2.0);
  EXPECT_EQ(summary.counters[0].max, 5.0);
  ASSERT_EQ(summary.instants.size(), 1u);
  EXPECT_EQ(summary.instants[0].name, "blip");
  EXPECT_EQ(summary.instants[0].count, 1u);
}

TEST(TraceMetricsTest, JsonRoundTripsExactly) {
  Trace trace;
  tracedListing1Json(&trace);
  const MetricsSummary summary = summarizeTrace(trace);
  EXPECT_FALSE(summary.spans.empty());

  const std::string json = toJson(summary);
  const MetricsSummary parsed = parseMetricsJson(json);
  EXPECT_EQ(parsed, summary);
  // Idempotent: serializing the parse yields the same bytes.
  EXPECT_EQ(toJson(parsed), json);
}

TEST(TraceMetricsTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(parseMetricsJson(""), Error);
  EXPECT_THROW(parseMetricsJson("{"), Error);
  EXPECT_THROW(parseMetricsJson("{\"spans\": [}"), Error);
  EXPECT_THROW(parseMetricsJson("[1, 2]"), Error);
}

TEST(TraceMetricsTest, SummaryOfEmptyTraceIsEmpty) {
  const MetricsSummary summary = summarizeTrace(Trace{});
  EXPECT_TRUE(summary.spans.empty());
  EXPECT_TRUE(summary.counters.empty());
  EXPECT_TRUE(summary.instants.empty());
  const MetricsSummary parsed = parseMetricsJson(toJson(summary));
  EXPECT_EQ(parsed, summary);
}

} // namespace
} // namespace pipoly::trace
