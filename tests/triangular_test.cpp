// Non-rectangular (triangular) iteration domains through the whole
// stack: builder and frontend construction, pipeline detection, schedule,
// codegen, execution equivalence. The paper's formalism never assumes
// rectangles, and neither may the implementation.

#include "codegen/task_program.hpp"
#include "frontend/frontend.hpp"
#include "pipeline/detect.hpp"
#include "scop/builder.hpp"
#include "tasking/tasking.hpp"
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

namespace pipoly {
namespace {

/// Two triangular nests: S fills the lower triangle of A; T consumes it
/// over the same triangle.
scop::Scop triangularChain(pb::Value n) {
  scop::ScopBuilder b("triangular");
  std::size_t A = b.array("A", {n, n});
  std::size_t B = b.array("B", {n, n});
  auto S = b.statement("S", 2);
  S.bound(0, 0, n);
  S.bound(1, S.constant(0), S.dim(0) + 1); // 0 <= j <= i
  S.write(A, {S.dim(0), S.dim(1)});
  S.read(A, {S.dim(0), S.dim(1)}); // serial flavour
  auto T = b.statement("T", 2);
  T.bound(0, 0, n);
  T.bound(1, T.constant(0), T.dim(0) + 1);
  T.write(B, {T.dim(0), T.dim(1)});
  T.read(A, {T.dim(0), T.dim(1)});
  T.read(B, {T.dim(0), T.dim(1)});
  return b.build();
}

TEST(TriangularTest, DomainIsTriangular) {
  scop::Scop scop = triangularChain(6);
  EXPECT_EQ(scop.statement(0).domain().size(), 21u); // 6*7/2
}

TEST(TriangularTest, PipelinesAndValidates) {
  scop::Scop scop = triangularChain(8);
  pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  EXPECT_TRUE(info.hasPipeline());
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  EXPECT_NO_THROW(prog.validate(scop));
}

TEST(TriangularTest, ExecutionMatchesSequential) {
  scop::Scop scop = triangularChain(8);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  auto layer = tasking::makeThreadPoolBackend(4);
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer, 2).ok);
}

TEST(TriangularTest, RelaxedOrderingAndCoarseningStillCorrect) {
  scop::Scop scop = triangularChain(9);
  for (std::size_t coarsening : {1u, 3u}) {
    pipeline::DetectOptions opt;
    opt.relaxSameNestOrdering = true;
    opt.coarsening = coarsening;
    codegen::TaskProgram prog = codegen::compilePipeline(scop, opt);
    auto layer = tasking::makeThreadPoolBackend(4);
    EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok)
        << "coarsening " << coarsening;
  }
}

TEST(TriangularTest, FrontendTriangularProgram) {
  scop::Scop scop = frontend::parseProgram(R"(
    param N = 8;
    array A[N][N];
    array B[N][N];
    for (i = 0; i < N; i++)
      for (j = 0; j <= i; j++)
        S: A[i][j] = f(A[i][j]);
    for (i = 0; i < N; i++)
      for (j = 0; j <= i; j++)
        T: B[i][j] = g(A[i][j], B[i][j]);
  )");
  EXPECT_EQ(scop.statement(0).domain().size(), 36u);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  auto layer = tasking::makeThreadPoolBackend(2);
  EXPECT_TRUE(verify::selfCheck(scop, prog, *layer).ok);
}

} // namespace
} // namespace pipoly
