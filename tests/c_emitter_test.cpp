// Tests the OpenMP C emitter, including the strongest possible check:
// compiling the emitted program with the host compiler and running it —
// the program self-verifies that the task-parallel execution matches the
// sequential one.

#include "codegen/c_emitter.hpp"

#include "codegen/task_program.hpp"
#include "frontend/frontend.hpp"
#include "support/assert.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace pipoly::codegen {
namespace {

std::string emitFor(const scop::Scop& scop) {
  return emitOpenMPProgram(scop, compilePipeline(scop));
}

TEST(CEmitterTest, StructureOfEmittedProgram) {
  scop::Scop scop = testing::listing1(12);
  std::string code = emitFor(scop);
  for (const char* needle :
       {"#include <omp.h>", "static void CreateTask",
        "#pragma omp task", "depend(iterator", "depend(out : dependArr",
        "#pragma omp parallel", "#pragma omp single", "run_pipelined",
        "static const TaskDesc tasks[]", "stmt_0", "stmt_1",
        "int main(void)"})
    EXPECT_NE(code.find(needle), std::string::npos)
        << "missing '" << needle << "'";
}

TEST(CEmitterTest, EmitsOneInstanceFunctionPerStatement) {
  scop::Scop scop = testing::listing3(12);
  std::string code = emitFor(scop);
  EXPECT_NE(code.find("static void stmt_2("), std::string::npos);
  EXPECT_EQ(code.find("static void stmt_3("), std::string::npos);
}

TEST(CEmitterTest, SlabWritesRejected) {
  scop::ScopBuilder b("slabw");
  std::size_t A = b.array("A", {4, 4});
  auto S = b.statement("S", 1);
  S.bound(0, 0, 4);
  S.writeRange(A, {S.rangeDim(0, 1), S.rangeAux(0, 1)}, {4});
  scop::Scop scop = b.build();
  // Slab writes compile through the pipeline but the C emitter refuses.
  TaskProgram prog = compilePipeline(scop);
  EXPECT_THROW((void)emitOpenMPProgram(scop, prog), Error);
}

class CompileAndRunTest : public ::testing::TestWithParam<int> {};

TEST_P(CompileAndRunTest, EmittedProgramSelfVerifies) {
  scop::Scop scop = [&] {
    switch (GetParam()) {
    case 0:
      return testing::listing1(10);
    case 1:
      return testing::listing3(10);
    default:
      return testing::chain(3, 7);
    }
  }();
  std::string code = emitFor(scop);

  const std::string base =
      ::testing::TempDir() + "pipoly_emit_" + std::to_string(GetParam());
  const std::string cPath = base + ".c";
  const std::string binPath = base + ".bin";
  {
    std::ofstream out(cPath);
    ASSERT_TRUE(out.good());
    out << code;
  }
  const std::string compile =
      "cc -O1 -fopenmp -o " + binPath + " " + cPath + " 2>" + base + ".log";
  ASSERT_EQ(std::system(compile.c_str()), 0)
      << "emitted C failed to compile; see " << base << ".log";
  ASSERT_EQ(std::system((binPath + " > " + base + ".out").c_str()), 0)
      << "emitted program reported a checksum mismatch";

  std::ifstream in(base + ".out");
  std::string output((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(output.find("MATCH"), std::string::npos) << output;
}

INSTANTIATE_TEST_SUITE_P(Kernels, CompileAndRunTest,
                         ::testing::Values(0, 1, 2));

TEST(CompileAndRunTest, RelaxedOrderingAndCoarseningProgram) {
  // The emitter consumes any well-formed TaskProgram, including the §7
  // extension modes; the emitted program must still self-verify.
  scop::Scop scop = testing::listing3(10);
  pipeline::DetectOptions opt;
  opt.relaxSameNestOrdering = true;
  opt.coarsening = 2;
  std::string code = emitOpenMPProgram(scop, compilePipeline(scop, opt));

  const std::string base = ::testing::TempDir() + "pipoly_emit_relaxed";
  {
    std::ofstream out(base + ".c");
    ASSERT_TRUE(out.good());
    out << code;
  }
  ASSERT_EQ(std::system(("cc -O1 -fopenmp -o " + base + ".bin " + base +
                         ".c 2>" + base + ".log")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((base + ".bin > " + base + ".out").c_str()), 0);
  std::ifstream in(base + ".out");
  std::string output((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(output.find("MATCH"), std::string::npos) << output;
}

} // namespace
} // namespace pipoly::codegen
