// Coverage for the executor entry points and the small support
// utilities that everything else leans on.

#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"
#include "tasking/executor.hpp"

#include "codegen/task_program.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly {
namespace {

TEST(ExecuteSequentialTest, VisitsInProgramOrder) {
  scop::Scop scop = testing::listing1(8);
  std::vector<std::pair<std::size_t, pb::Tuple>> visited;
  tasking::executeSequential(scop, [&](std::size_t s, const pb::Tuple& it) {
    visited.emplace_back(s, it);
  });
  std::size_t expected = scop.statement(0).domain().size() +
                         scop.statement(1).domain().size();
  ASSERT_EQ(visited.size(), expected);
  // Statement 0 first, in lexicographic order; then statement 1.
  std::size_t split = scop.statement(0).domain().size();
  for (std::size_t k = 0; k < visited.size(); ++k)
    EXPECT_EQ(visited[k].first, k < split ? 0u : 1u);
  for (std::size_t k = 1; k < split; ++k)
    EXPECT_LT(visited[k - 1].second, visited[k].second);
}

TEST(ExecuteTaskProgramTest, EveryInstanceExactlyOnce) {
  scop::Scop scop = testing::listing3(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  std::mutex m;
  std::map<std::pair<std::size_t, pb::Tuple>, int> counts;
  auto layer = tasking::makeThreadPoolBackend(4);
  tasking::executeTaskProgram(prog, *layer,
                              [&](std::size_t s, const pb::Tuple& it) {
                                std::lock_guard lock(m);
                                ++counts[{s, it}];
                              });
  std::size_t total = 0;
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    total += scop.statement(s).domain().size();
  EXPECT_EQ(counts.size(), total);
  for (const auto& [key, count] : counts)
    EXPECT_EQ(count, 1);
}

TEST(ExecuteTaskProgramTest, EveryInstanceExactlyOnceManyWorkers) {
  // Same exactly-once property as above, but with more workers than the
  // host has cores: forces the work-stealing and parking paths of the
  // rewritten DependencyThreadPool backend.
  scop::Scop scop = testing::listing3(16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  std::mutex m;
  std::map<std::pair<std::size_t, pb::Tuple>, int> counts;
  auto layer = tasking::makeThreadPoolBackend(8);
  tasking::executeTaskProgram(prog, *layer,
                              [&](std::size_t s, const pb::Tuple& it) {
                                std::lock_guard lock(m);
                                ++counts[{s, it}];
                              });
  std::size_t total = 0;
  for (std::size_t s = 0; s < scop.numStatements(); ++s)
    total += scop.statement(s).domain().size();
  EXPECT_EQ(counts.size(), total);
  for (const auto& [key, count] : counts)
    EXPECT_EQ(count, 1);
}

TEST(ExecuteTaskProgramTest, RepeatedRunsOnOneBackendStayExactlyOnce) {
  // The backend clears its last-writer table between runs; repeated
  // executions must not leak dependencies or duplicate work.
  scop::Scop scop = testing::listing3(10);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  auto layer = tasking::makeThreadPoolBackend(4);
  std::mutex m;
  std::map<std::pair<std::size_t, pb::Tuple>, int> counts;
  for (int run = 0; run < 3; ++run)
    tasking::executeTaskProgram(prog, *layer,
                                [&](std::size_t s, const pb::Tuple& it) {
                                  std::lock_guard lock(m);
                                  ++counts[{s, it}];
                                });
  for (const auto& [key, count] : counts)
    EXPECT_EQ(count, 3);
}

TEST(SplitMix64Test, DeterministicAndRangeRespecting) {
  SplitMix64 a(42), b(42);
  for (int k = 0; k < 100; ++k)
    EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(7);
  for (int k = 0; k < 200; ++k) {
    auto v = c.nextInRange(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  for (int k = 0; k < 50; ++k)
    EXPECT_LT(c.nextBelow(10), 10u);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
  EXPECT_EQ(hashCombine(5, 9), hashCombine(5, 9));
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch sw;
  double a = sw.seconds();
  double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.milliseconds(), 0.0);
}

TEST(StrTest, JoinSplitTrim) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(join(v, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim("   "), "");
}

TEST(ScopPrintTest, ToStringListsArraysAndStatements) {
  scop::Scop scop = testing::listing1(10);
  std::string text = scop.toString();
  for (const char* needle :
       {"scop listing1", "array A[10, 10]", "array B[10, 10]",
        "statement S", "statement R", "depth=2"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

} // namespace
} // namespace pipoly
