#include "sim/simulator.hpp"

#include "codegen/task_program.hpp"
#include "support/assert.hpp"
#include "testing/fixtures.hpp"

#include <gtest/gtest.h>

namespace pipoly::sim {
namespace {

CostModel uniformModel(std::size_t numStatements, double cost) {
  CostModel m;
  m.iterationCost.assign(numStatements, cost);
  return m;
}

TEST(SimulatorTest, SequentialTimeIsSumOfWork) {
  scop::Scop scop = testing::chain(3, 9); // 3 nests, 9x9 iterations each
  CostModel m = uniformModel(3, 1.0);
  EXPECT_DOUBLE_EQ(sequentialTime(scop, m), 243.0);
  EXPECT_DOUBLE_EQ(maxNestTime(scop, m), 81.0);
}

TEST(SimulatorTest, OneWorkerEqualsTotalWork) {
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  SimResult r = simulate(prog, m, SimConfig{1});
  EXPECT_DOUBLE_EQ(r.makespan, r.totalWork);
  EXPECT_DOUBLE_EQ(r.totalWork, sequentialTime(scop, m));
}

TEST(SimulatorTest, PaperEquation5Bounds) {
  // time(L_max) <= time(pipeline) <= time(sequential) for several kernels
  // and worker counts.
  for (auto scop : {testing::chain(4, 9), testing::listing3(16)}) {
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    CostModel m = uniformModel(scop.numStatements(), 1.0);
    for (unsigned workers : {2u, 4u, 8u}) {
      SimResult r = simulate(prog, m, SimConfig{workers});
      EXPECT_GE(r.makespan, maxNestTime(scop, m) - 1e-9);
      EXPECT_LE(r.makespan, sequentialTime(scop, m) + 1e-9);
    }
  }
}

TEST(SimulatorTest, PipeliningBeatsSequentialOnChains) {
  // A chain of equal nests with element-wise coupling overlaps almost
  // completely: the makespan with enough workers approaches
  // time(L_max) plus the pipeline fill.
  scop::Scop scop = testing::chain(4, 15);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(4, 1.0);
  SimResult r = simulate(prog, m, SimConfig{8});
  const double seq = sequentialTime(scop, m);
  EXPECT_LT(r.makespan, 0.55 * seq) << "expected >1.8x speedup on a 4-chain";
}

TEST(SimulatorTest, MoreWorkersNeverSlower) {
  scop::Scop scop = testing::listing3(16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  double prev = simulate(prog, m, SimConfig{1}).makespan;
  for (unsigned workers : {2u, 3u, 4u, 8u}) {
    double cur = simulate(prog, m, SimConfig{workers}).makespan;
    EXPECT_LE(cur, prev + 1e-9) << workers << " workers";
    prev = cur;
  }
}

TEST(SimulatorTest, MakespanAtLeastCriticalPath) {
  scop::Scop scop = testing::listing3(16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  for (unsigned workers : {1u, 2u, 8u}) {
    SimResult r = simulate(prog, m, SimConfig{workers});
    EXPECT_GE(r.makespan, r.criticalPath - 1e-9);
  }
}

TEST(SimulatorTest, TaskOverheadIncreasesMakespan) {
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel cheap = uniformModel(3, 1.0);
  CostModel costly = cheap;
  costly.taskOverhead = 0.5;
  EXPECT_GT(simulate(prog, costly, SimConfig{4}).makespan,
            simulate(prog, cheap, SimConfig{4}).makespan);
}

TEST(SimulatorTest, UtilizationBounded) {
  scop::Scop scop = testing::chain(4, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(4, 1.0);
  SimResult r = simulate(prog, m, SimConfig{4});
  EXPECT_GT(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0 + 1e-9);
}

TEST(SimulatorTest, HeterogeneousCostsShiftTheBottleneck) {
  // Make the last nest dominant; the makespan must be at least its time
  // (eq. 5's L_max bound) even with many workers.
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m;
  m.iterationCost = {1.0, 1.0, 10.0};
  SimResult r = simulate(prog, m, SimConfig{8});
  EXPECT_GE(r.makespan, maxNestTime(scop, m) - 1e-9);
}

} // namespace
} // namespace pipoly::sim
