#include "sim/simulator.hpp"

#include "codegen/task_program.hpp"
#include "pipeline/comm.hpp"
#include "pipeline/detect.hpp"
#include "runtime/placement.hpp"
#include "runtime/topology.hpp"
#include "scop/builder.hpp"
#include "support/assert.hpp"
#include "tasking/channel_backend.hpp"
#include "testing/fixtures.hpp"
#include "testing/interpreted_kernel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pipoly::sim {
namespace {

CostModel uniformModel(std::size_t numStatements, double cost) {
  CostModel m;
  m.iterationCost.assign(numStatements, cost);
  return m;
}

TEST(SimulatorTest, SequentialTimeIsSumOfWork) {
  scop::Scop scop = testing::chain(3, 9); // 3 nests, 9x9 iterations each
  CostModel m = uniformModel(3, 1.0);
  EXPECT_DOUBLE_EQ(sequentialTime(scop, m), 243.0);
  EXPECT_DOUBLE_EQ(maxNestTime(scop, m), 81.0);
}

TEST(SimulatorTest, OneWorkerEqualsTotalWork) {
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  SimResult r = simulate(prog, m, SimConfig{1});
  EXPECT_DOUBLE_EQ(r.makespan, r.totalWork);
  EXPECT_DOUBLE_EQ(r.totalWork, sequentialTime(scop, m));
}

TEST(SimulatorTest, PaperEquation5Bounds) {
  // time(L_max) <= time(pipeline) <= time(sequential) for several kernels
  // and worker counts.
  for (auto scop : {testing::chain(4, 9), testing::listing3(16)}) {
    codegen::TaskProgram prog = codegen::compilePipeline(scop);
    CostModel m = uniformModel(scop.numStatements(), 1.0);
    for (unsigned workers : {2u, 4u, 8u}) {
      SimResult r = simulate(prog, m, SimConfig{workers});
      EXPECT_GE(r.makespan, maxNestTime(scop, m) - 1e-9);
      EXPECT_LE(r.makespan, sequentialTime(scop, m) + 1e-9);
    }
  }
}

TEST(SimulatorTest, PipeliningBeatsSequentialOnChains) {
  // A chain of equal nests with element-wise coupling overlaps almost
  // completely: the makespan with enough workers approaches
  // time(L_max) plus the pipeline fill.
  scop::Scop scop = testing::chain(4, 15);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(4, 1.0);
  SimResult r = simulate(prog, m, SimConfig{8});
  const double seq = sequentialTime(scop, m);
  EXPECT_LT(r.makespan, 0.55 * seq) << "expected >1.8x speedup on a 4-chain";
}

TEST(SimulatorTest, MoreWorkersNeverSlower) {
  scop::Scop scop = testing::listing3(16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  double prev = simulate(prog, m, SimConfig{1}).makespan;
  for (unsigned workers : {2u, 3u, 4u, 8u}) {
    double cur = simulate(prog, m, SimConfig{workers}).makespan;
    EXPECT_LE(cur, prev + 1e-9) << workers << " workers";
    prev = cur;
  }
}

TEST(SimulatorTest, MakespanAtLeastCriticalPath) {
  scop::Scop scop = testing::listing3(16);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(3, 1.0);
  for (unsigned workers : {1u, 2u, 8u}) {
    SimResult r = simulate(prog, m, SimConfig{workers});
    EXPECT_GE(r.makespan, r.criticalPath - 1e-9);
  }
}

TEST(SimulatorTest, TaskOverheadIncreasesMakespan) {
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel cheap = uniformModel(3, 1.0);
  CostModel costly = cheap;
  costly.taskOverhead = 0.5;
  EXPECT_GT(simulate(prog, costly, SimConfig{4}).makespan,
            simulate(prog, cheap, SimConfig{4}).makespan);
}

TEST(SimulatorTest, UtilizationBounded) {
  scop::Scop scop = testing::chain(4, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m = uniformModel(4, 1.0);
  SimResult r = simulate(prog, m, SimConfig{4});
  EXPECT_GT(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0 + 1e-9);
}

TEST(SimulatorTest, HeterogeneousCostsShiftTheBottleneck) {
  // Make the last nest dominant; the makespan must be at least its time
  // (eq. 5's L_max bound) even with many workers.
  scop::Scop scop = testing::chain(3, 9);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  CostModel m;
  m.iterationCost = {1.0, 1.0, 10.0};
  SimResult r = simulate(prog, m, SimConfig{8});
  EXPECT_GE(r.makespan, maxNestTime(scop, m) - 1e-9);
}

// A 4-statement serial chain whose only heavy channel edge is the middle
// one: S2 reads S1's full array, while S1 and S3 read just one element of
// their producer. On 2x-numa the topology-aware partitioner keeps S1 and
// S2 together (the PR 8 DP, forced to one stage per worker, must cut the
// heavy edge) — the fixture the placement-ranking tests are built on.
scop::Scop middleHeavyChain(pb::Value n) {
  scop::ScopBuilder b("middle_heavy");
  std::vector<std::size_t> arrays;
  const auto named = [](std::size_t k) {
    std::string name("A");
    name += std::to_string(k);
    return name;
  };
  for (std::size_t k = 0; k < 4; ++k)
    arrays.push_back(b.array(named(k), {n + 1, n + 1}));
  for (std::size_t k = 0; k < 4; ++k) {
    auto S = b.statement("S" + std::to_string(k), 2);
    S.bound(0, 0, n).bound(1, 0, n);
    S.write(arrays[k], {S.dim(0), S.dim(1)});
    S.read(arrays[k], {S.dim(0) + 1, S.dim(1) + 1}); // keeps the nest serial
    if (k == 2)
      S.read(arrays[1], {S.dim(0), S.dim(1)}); // heavy: the full array
    else if (k > 0)
      S.read(arrays[k - 1], {S.constant(0), S.constant(0)}); // one element
  }
  return b.build();
}

struct ChannelFixture {
  scop::Scop scop;
  pipeline::CommInfo comm;
  codegen::TaskProgram prog;
};

ChannelFixture channelFixture(pb::Value n) {
  scop::Scop scop = middleHeavyChain(n);
  const pipeline::PipelineInfo info = pipeline::detectPipeline(scop);
  pipeline::CommInfo comm = pipeline::analyzeCommunication(scop, info);
  codegen::TaskProgram prog = codegen::compilePipeline(scop);
  return {std::move(scop), std::move(comm), std::move(prog)};
}

std::vector<std::size_t> stageTaskCounts(const codegen::TaskProgram& prog) {
  std::vector<std::size_t> counts(prog.numStatements, 0);
  for (const codegen::Task& t : prog.tasks)
    ++counts[t.stmtIdx];
  return counts;
}

TEST(TopologySimTest, UmaOneWorkerPerStageMatchesThePlacementFreeModel) {
  // One worker per stage on a uma topology is exactly the machine the
  // placement-free overload idealizes: every cross-stage transfer is
  // cross-worker at class 1.0 and no stages share a worker clock — the
  // two predictions must agree to the bit.
  ChannelFixture f = channelFixture(12);
  CostModel m = uniformModel(4, 1e-6);
  m.channelTokenOverhead = 2e-6;
  m.commCostPerByte = 1e-7;

  const std::vector<std::size_t> tasks = stageTaskCounts(f.prog);
  const std::vector<rt::StageEdge> edges =
      f.comm.stageEdges({0, 1, 2, 3});
  const unsigned stages = static_cast<unsigned>(tasks.size());
  const rt::Placement p = rt::placeStagesBalanced(tasks, stages, edges);
  const rt::Topology uma = rt::Topology::uma(stages);

  const ChannelSimResult free = simulateChannels(f.prog, f.comm, m);
  const ChannelSimResult placed =
      simulateChannels(f.prog, f.comm, m, uma, p);
  EXPECT_DOUBLE_EQ(placed.makespan, free.makespan);
  EXPECT_DOUBLE_EQ(placed.commTime, free.commTime);
  EXPECT_EQ(placed.bytesMoved, free.bytesMoved);
  EXPECT_EQ(placed.crossDomainBytes, 0u);
}

TEST(TopologySimTest, SameWorkerEdgesPayNoTransferCost) {
  // All stages on one worker: tokens are local counter bumps, so with a
  // zero token overhead the predicted comm time vanishes entirely and
  // the makespan is the serial sum of the task bodies.
  ChannelFixture f = channelFixture(10);
  CostModel m = uniformModel(4, 1e-6);
  m.commCostPerByte = 1e-3; // would dominate if anything moved

  const std::vector<std::size_t> tasks = stageTaskCounts(f.prog);
  const std::vector<rt::StageEdge> edges =
      f.comm.stageEdges({0, 1, 2, 3});
  const rt::Placement p = rt::placeStagesBalanced(tasks, 1, edges);
  const rt::Topology uma = rt::Topology::uma(1);

  const ChannelSimResult r = simulateChannels(f.prog, f.comm, m, uma, p);
  EXPECT_DOUBLE_EQ(r.commTime, 0.0);
  EXPECT_EQ(r.crossDomainBytes, 0u);
  double serial = 0.0;
  for (const codegen::Task& t : f.prog.tasks)
    serial += static_cast<double>(t.iterations.size()) * 1e-6;
  EXPECT_NEAR(r.makespan, serial, 1e-12);
}

TEST(TopologySimTest, CrossDomainTrafficIsChargedTheClassCost) {
  // The same placement priced on uma vs 2x-numa: identical schedule
  // structure, but every cross-domain token pays the remote class, so
  // the numa prediction's comm time must be strictly larger and the
  // cross-domain byte accounting must light up.
  ChannelFixture f = channelFixture(12);
  CostModel m = uniformModel(4, 1e-6);
  m.commCostPerByte = 1e-7;

  const std::vector<std::size_t> tasks = stageTaskCounts(f.prog);
  const std::vector<rt::StageEdge> edges =
      f.comm.stageEdges({0, 1, 2, 3});
  const rt::Topology numa = rt::Topology::numa2(4, 8.0);
  // One stage per worker, forced: the heavy middle edge crosses domains.
  const rt::Placement onUma = rt::placeStagesBalanced(tasks, 4, edges);
  rt::Placement onNuma = onUma;
  for (std::size_t s = 0; s < onNuma.domainOfStage.size(); ++s)
    onNuma.domainOfStage[s] =
        numa.domainOfWorker[onNuma.workerOfStage[s]];

  const ChannelSimResult uma =
      simulateChannels(f.prog, f.comm, m, rt::Topology::uma(4), onUma);
  const ChannelSimResult remote =
      simulateChannels(f.prog, f.comm, m, numa, onNuma);
  EXPECT_GT(remote.commTime, uma.commTime);
  EXPECT_GT(remote.crossDomainBytes, 0u);
  EXPECT_EQ(uma.crossDomainBytes, 0u);
  EXPECT_EQ(remote.bytesMoved, uma.bytesMoved);
}

TEST(TopologySimTest, PredictedAndMeasuredPlacementRankingsAgree) {
  // The E22 acceptance check in miniature: take the two placements the
  // channel engine actually runs on 2x-numa (topology-aware vs the PR 8
  // baseline), predict both with the topology-aware simulator, measure
  // both with the engine under deterministic remote-transfer emulation —
  // the predicted ranking must match the measured one.
  ChannelFixture f = channelFixture(14);
  auto prog = std::make_shared<const codegen::TaskProgram>(f.prog);
  const rt::Topology numa = rt::Topology::numa2(4, 4.0);

  auto makePipe = [&](bool aware) {
    tasking::ChannelOptions options;
    options.numWorkers = 4;
    options.topology = numa;
    options.topologyAwarePlacement = aware;
    options.emulateRemoteNsPerByte = 1000.0;
    return std::make_unique<tasking::ChannelPipeline>(prog, options,
                                                      &f.comm);
  };
  auto pipeAware = makePipe(true);
  auto pipeBase = makePipe(false);

  // The fixture is built so the two placements genuinely differ: the
  // aware route keeps the heavy S1->S2 edge off the remote link.
  ASSERT_NE(pipeAware->placement().workerOfStage,
            pipeBase->placement().workerOfStage);
  ASSERT_LT(pipeAware->placement().commCost, pipeBase->placement().commCost);

  // Predicted, under a comm-dominant model mirroring the emulation.
  CostModel m = uniformModel(4, 1e-9);
  m.commCostPerByte = 1e-6; // 1000 ns/byte, the emulated link speed
  const double predictedAware =
      simulateChannels(f.prog, f.comm, m, numa, pipeAware->placement())
          .makespan;
  const double predictedBase =
      simulateChannels(f.prog, f.comm, m, numa, pipeBase->placement())
          .makespan;

  // Measured: min over repetitions of a real replay through the engine.
  auto measure = [&](tasking::ChannelPipeline& pipe) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      testing::InterpretedKernel kernel(f.scop);
      const auto start = std::chrono::steady_clock::now();
      pipe.replay(kernel.executor());
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
    }
    return best;
  };
  const double measuredAware = measure(*pipeAware);
  const double measuredBase = measure(*pipeBase);

  EXPECT_LT(predictedAware, predictedBase)
      << "simulator prefers the placement that cuts the heavy edge";
  EXPECT_LT(measuredAware, measuredBase)
      << "measured ranking disagrees with the predicted one (aware "
      << measuredAware << "s vs baseline " << measuredBase << "s)";
}

} // namespace
} // namespace pipoly::sim
